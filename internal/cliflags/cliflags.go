// Package cliflags centralizes the flag groups the benchmark CLIs share —
// scheduling policy and broadcast topology, fault-plan injection, the
// compiled-plan cache toggle, and the parallel-sweep worker count — so the
// four front-ends (trace, convbench, scale, ablation) register identical
// spellings and help text instead of four hand-copied blocks.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"geompc/internal/bench"
	"geompc/internal/runtime"
	"geompc/internal/solver"
)

// Set selects which flag groups Register installs; or the groups together.
type Set uint

const (
	// Sched registers -sched and -bcast.
	Sched Set = 1 << iota
	// Faults registers -faults.
	Faults
	// PlanCache registers -plan-cache.
	PlanCache
	// Workers registers -workers.
	Workers
	// EngineWorkers registers -engine-workers.
	EngineWorkers
	// Solver registers -solver.
	Solver
)

// Values holds the parsed values of the registered groups; fields of
// unregistered groups stay at their zero value. Read only after the flag
// set has been parsed.
type Values struct {
	// Sched and Bcast are the -sched / -bcast names (sched.ByName and
	// comm.TopologyByName spellings; empty = engine default).
	Sched string
	Bcast string
	// Faults is the -faults spec (runtime.ParseFaultSpec grammar; empty =
	// fault-free).
	Faults string
	// PlanCache is the -plan-cache toggle.
	PlanCache bool
	// Workers is the -workers count: 0 = serial, n > 0 = n-worker pool,
	// negative = GOMAXPROCS.
	Workers int
	// EngineWorkers is the -engine-workers count: 0 = the serial event
	// loop, n > 0 = the conservative parallel DES engine with n rank
	// loops, negative = auto (composed with -workers under one core
	// budget; see bench.SweepOpts.EnginePerPoint).
	EngineWorkers int
	// Solver is the -solver backend name (solver.ByName spelling;
	// "direct" unless overridden).
	Solver string
}

// Register installs the selected flag groups on fs and returns the holder
// their parsed values land in.
func Register(fs *flag.FlagSet, set Set) *Values {
	v := &Values{}
	if set&Sched != 0 {
		fs.StringVar(&v.Sched, "sched", "", "scheduling policy: fifo (default), locality, cp")
		fs.StringVar(&v.Bcast, "bcast", "", "broadcast topology: binomial (default), flat, chain")
	}
	if set&Faults != 0 {
		fs.StringVar(&v.Faults, "faults", "", "fault plan injected into every run (see runtime.ParseFaultSpec)")
	}
	if set&PlanCache != 0 {
		fs.BoolVar(&v.PlanCache, "plan-cache", false, "route runs through a compiled-plan cache and print the hit/miss/invalidation counters")
	}
	if set&Workers != 0 {
		fs.IntVar(&v.Workers, "workers", 0, "parallel sweep workers: 0 = serial, -1 = one per core; results are bit-identical at any setting")
	}
	if set&EngineWorkers != 0 {
		fs.IntVar(&v.EngineWorkers, "engine-workers", 0, "parallel DES engine rank loops per run: 0 = serial event loop, -1 = auto; schedules and factors are bit-identical at any setting")
	}
	if set&Solver != 0 {
		fs.StringVar(&v.Solver, "solver", "direct", "solver backend: direct (tile Cholesky) or cg (mixed-precision conjugate gradient)")
	}
	return v
}

// Backend resolves the -solver value against the backend registry.
func (v *Values) Backend() (solver.Backend, error) {
	return solver.ByName(v.Solver)
}

// SchedOpts assembles the bench-level sweep options from the parsed
// values (policy, topology and solver names plus the worker count).
func (v *Values) SchedOpts() bench.SchedOpts {
	return bench.SchedOpts{Policy: v.Sched, Bcast: v.Bcast, Solver: v.Solver, SweepOpts: v.SweepOpts()}
}

// SweepOpts returns just the sweep-execution knobs.
func (v *Values) SweepOpts() bench.SweepOpts {
	return bench.SweepOpts{Workers: v.Workers, EngineWorkers: v.EngineWorkers}
}

// Injector parses the -faults value against the platform's device count;
// an empty value returns a nil injector (fault-free).
func (v *Values) Injector(numDevices int) (runtime.FaultInjector, error) {
	if v.Faults == "" {
		return nil, nil
	}
	return runtime.ParseFaultSpec(v.Faults, numDevices)
}

// ParseSizes parses a comma-separated list of positive integers — the
// shared grammar of the -sizes and -nodes flags.
func ParseSizes(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		val, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || val <= 0 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, val)
	}
	return out, nil
}
