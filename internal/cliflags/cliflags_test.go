package cliflags

import (
	"flag"
	"strings"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{})
	return fs
}

func TestRegisterSelectsGroups(t *testing.T) {
	fs := newFS()
	v := Register(fs, Sched|Faults|PlanCache|Workers)
	err := fs.Parse([]string{
		"-sched", "locality", "-bcast", "chain",
		"-faults", "kill:dev=1,at=0.5", "-plan-cache", "-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Values{Sched: "locality", Bcast: "chain", Faults: "kill:dev=1,at=0.5", PlanCache: true, Workers: 4}
	if *v != want {
		t.Errorf("parsed %+v, want %+v", *v, want)
	}

	so := v.SchedOpts()
	if so.Policy != "locality" || so.Bcast != "chain" || so.Workers != 4 {
		t.Errorf("SchedOpts() = %+v", so)
	}
	if sw := v.SweepOpts(); sw.Workers != 4 {
		t.Errorf("SweepOpts() = %+v", sw)
	}
}

func TestRegisterEngineWorkers(t *testing.T) {
	fs := newFS()
	v := Register(fs, Workers|EngineWorkers)
	if err := fs.Parse([]string{"-workers", "2", "-engine-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if v.EngineWorkers != 3 {
		t.Errorf("EngineWorkers = %d, want 3", v.EngineWorkers)
	}
	if sw := v.SweepOpts(); sw.Workers != 2 || sw.EngineWorkers != 3 {
		t.Errorf("SweepOpts() = %+v, want Workers 2 EngineWorkers 3", sw)
	}
	if so := v.SchedOpts(); so.EngineWorkers != 3 {
		t.Errorf("SchedOpts() dropped EngineWorkers: %+v", so)
	}
	// Auto spelling parses too.
	fs2 := newFS()
	v2 := Register(fs2, EngineWorkers)
	if err := fs2.Parse([]string{"-engine-workers", "-1"}); err != nil {
		t.Fatal(err)
	}
	if v2.EngineWorkers != -1 {
		t.Errorf("EngineWorkers = %d, want -1", v2.EngineWorkers)
	}
}

func TestRegisterOmitsUnselectedGroups(t *testing.T) {
	fs := newFS()
	Register(fs, Workers)
	for _, name := range []string{"sched", "bcast", "faults", "plan-cache", "engine-workers"} {
		if fs.Lookup(name) != nil {
			t.Errorf("flag -%s registered without its group", name)
		}
	}
	if fs.Lookup("workers") == nil {
		t.Error("flag -workers missing")
	}
	if err := fs.Parse([]string{"-sched", "fifo"}); err == nil {
		t.Error("unregistered -sched accepted")
	}
}

func TestInjector(t *testing.T) {
	v := &Values{}
	if inj, err := v.Injector(2); err != nil || inj != nil {
		t.Errorf("empty spec: injector=%v err=%v, want nil/nil", inj, err)
	}
	v.Faults = "kill:dev=1,at=0.5"
	inj, err := v.Injector(2)
	if err != nil || inj == nil {
		t.Errorf("valid spec: injector=%v err=%v", inj, err)
	}
	v.Faults = "kill:dev=9,at=0.5"
	if _, err := v.Injector(2); err == nil {
		t.Error("out-of-range device accepted")
	}
	v.Faults = "nonsense"
	if _, err := v.Injector(2); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("16384, 32768,49152")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16384, 32768, 49152}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "12,abc", "12,,13", "0", "-4", "12;13"} {
		if out, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) = %v, want error", bad, out)
		}
	}
}

func TestRegisterSolver(t *testing.T) {
	fs := newFS()
	v := Register(fs, Solver)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if v.Solver != "direct" {
		t.Errorf("default Solver = %q, want direct", v.Solver)
	}
	be, err := v.Backend()
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "direct" {
		t.Errorf("Backend() = %q, want direct", be.Name())
	}

	fs2 := newFS()
	v2 := Register(fs2, Solver)
	if err := fs2.Parse([]string{"-solver", "cg"}); err != nil {
		t.Fatal(err)
	}
	if v2.Solver != "cg" {
		t.Errorf("Solver = %q, want cg", v2.Solver)
	}
	be2, err := v2.Backend()
	if err != nil {
		t.Fatal(err)
	}
	if be2.Name() != "cg" {
		t.Errorf("Backend() = %q, want cg", be2.Name())
	}
	if so := v2.SchedOpts(); so.Solver != "cg" {
		t.Errorf("SchedOpts() dropped Solver: %+v", so)
	}

	fs3 := newFS()
	v3 := Register(fs3, Solver)
	if err := fs3.Parse([]string{"-solver", "qr"}); err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Backend(); err == nil {
		t.Error("Backend() accepted unknown solver qr")
	}
}

func TestRegisterSolverOmitted(t *testing.T) {
	fs := newFS()
	Register(fs, Workers)
	if fs.Lookup("solver") != nil {
		t.Error("flag -solver registered without its group")
	}
}
