// Package bessel provides the modified Bessel function of the second kind
// K_ν(x) for arbitrary real order ν ≥ 0, required by the Matérn covariance
// family (§III-A). The implementation follows Temme's series for small
// arguments and Steed's continued fraction CF2 for large arguments, with
// stable upward recurrence in the order — the classical scheme used by
// numerical libraries for fractional-order K.
package bessel

import (
	"math"
)

const (
	eulerGamma = 0.57721566490153286060651209008240243
	maxIter    = 20000
	epsK       = 1e-16
	xCrossover = 2.0 // series below, continued fraction above
)

// K returns K_ν(x), the modified Bessel function of the second kind of
// order ν ≥ 0, for x > 0. It returns +Inf for x == 0 (K diverges at the
// origin), NaN for x < 0 or ν < 0 outside the reflection K_{-ν} = K_ν
// (negative ν is mapped through that symmetry).
func K(nu, x float64) float64 {
	if math.IsNaN(nu) || math.IsNaN(x) {
		return math.NaN()
	}
	if nu < 0 {
		nu = -nu // K_{-ν}(x) = K_ν(x)
	}
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return math.Inf(1)
	}
	// Half-integer orders have closed forms; handle the common Matérn
	// smoothness ν = 0.5 (exponential kernel) exactly and cheaply.
	if nu == 0.5 {
		return math.Sqrt(math.Pi/(2*x)) * math.Exp(-x)
	}

	// Reduce order: ν = μ + nl with |μ| ≤ 1/2.
	nl := int(nu + 0.5)
	mu := nu - float64(nl)

	var kmu, knu1 float64 // K_μ(x), K_{μ+1}(x)
	if x <= xCrossover {
		kmu, knu1 = temmeSeries(mu, x)
	} else {
		kmu, knu1 = steedCF2(mu, x)
	}

	// Upward recurrence K_{ν+1} = K_{ν-1} + (2ν/x)·K_ν, forward-stable for K.
	for i := 1; i <= nl; i++ {
		kmu, knu1 = knu1, (mu+float64(i))*(2/x)*knu1+kmu
	}
	return kmu
}

// temmeSeries evaluates K_μ(x) and K_{μ+1}(x) for |μ| ≤ 1/2 and 0 < x ≤ 2
// using Temme's power series (Temme 1975; cf. Numerical Recipes §6.7).
func temmeSeries(mu, x float64) (kmu, kmu1 float64) {
	x1 := 0.5 * x
	pimu := math.Pi * mu
	fact := 1.0
	if math.Abs(pimu) > 1e-15 {
		fact = pimu / math.Sin(pimu)
	}
	d := -math.Log(x1)
	e := mu * d
	fact2 := 1.0
	if math.Abs(e) > 1e-15 {
		fact2 = math.Sinh(e) / e
	}
	gam1, gam2, gampl, gammi := temmeGammas(mu)

	ff := fact * (gam1*math.Cosh(e) + gam2*fact2*d)
	sum := ff
	ee := math.Exp(e)
	p := 0.5 * ee / gampl
	q := 0.5 / (ee * gammi)
	c := 1.0
	dd := x1 * x1
	sum1 := p
	for i := 1; i <= maxIter; i++ {
		fi := float64(i)
		ff = (fi*ff + p + q) / (fi*fi - mu*mu)
		c *= dd / fi
		p /= fi - mu
		q /= fi + mu
		del := c * ff
		sum += del
		sum1 += c * (p - fi*ff)
		if math.Abs(del) < math.Abs(sum)*epsK {
			return sum, sum1 * (2 / x)
		}
	}
	// The series converges in a handful of terms for x ≤ 2; reaching here
	// indicates pathological input, so return the best estimate.
	return sum, sum1 * (2 / x)
}

// temmeGammas returns Temme's Γ1, Γ2 and the reciprocal gammas
// 1/Γ(1+μ), 1/Γ(1-μ) for |μ| ≤ 1/2.
func temmeGammas(mu float64) (gam1, gam2, gampl, gammi float64) {
	gampl = 1 / math.Gamma(1+mu)
	gammi = 1 / math.Gamma(1-mu)
	if math.Abs(mu) < 1e-8 {
		// gam1 = (1/Γ(1-μ) - 1/Γ(1+μ))/(2μ) → -γ as μ→0.
		gam1 = -eulerGamma
	} else {
		gam1 = (gammi - gampl) / (2 * mu)
	}
	gam2 = 0.5 * (gammi + gampl)
	return gam1, gam2, gampl, gammi
}

// steedCF2 evaluates K_μ(x) and K_{μ+1}(x) for |μ| ≤ 1/2 and x > 2 via
// Steed's continued fraction CF2 (Thompson–Barnett; cf. Numerical Recipes).
func steedCF2(mu, x float64) (kmu, kmu1 float64) {
	b := 2 * (1 + x)
	d := 1 / b
	h := d
	delh := d
	q1, q2 := 0.0, 1.0
	a1 := 0.25 - mu*mu
	q := a1
	c := a1
	a := -a1
	s := 1 + q*delh
	for i := 2; i <= maxIter; i++ {
		a -= 2 * float64(i-1)
		c = -a * c / float64(i)
		qnew := (q1 - b*q2) / a
		q1, q2 = q2, qnew
		q += c * qnew
		b += 2
		d = 1 / (b + a*d)
		delh = (b*d - 1) * delh
		h += delh
		dels := q * delh
		s += dels
		if math.Abs(dels/s) < epsK {
			break
		}
	}
	h = a1 * h
	kmu = math.Sqrt(math.Pi/(2*x)) * math.Exp(-x) / s
	kmu1 = kmu * (mu + x + 0.5 - h) / x
	return kmu, kmu1
}

// KScaled returns e^x · K_ν(x), useful to postpone underflow for large x.
func KScaled(nu, x float64) float64 {
	if x <= 0 {
		if x == 0 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	if nu < 0 {
		nu = -nu
	}
	if x > 700 {
		// Direct K underflows; use the uniform asymptotic expansion
		// e^x K_ν(x) ≈ sqrt(π/(2x))·(1 + (4ν²-1)/(8x) + ...).
		m := 4 * nu * nu
		s := 1 + (m-1)/(8*x) + (m-1)*(m-9)/(128*x*x) + (m-1)*(m-9)*(m-25)/(3072*x*x*x)
		return math.Sqrt(math.Pi/(2*x)) * s
	}
	return math.Exp(x) * K(nu, x)
}
