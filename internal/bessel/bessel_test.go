package bessel

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Reference values verified against the independent integral representation
// K_ν(x) = ∫₀^∞ e^{−x·cosh t}·cosh(νt) dt (composite Simpson, 2·10⁵ panels),
// which agrees with the classical tabulated values of K₀(1), K₁(1), K₀(2).
var refK = []struct {
	nu, x, want float64
}{
	{0, 0.1, 2.4270690247020166},
	{0, 1, 0.42102443824070834},
	{0, 2, 0.11389387274953343},
	{0, 5, 0.003691098334042594},
	{1, 0.1, 9.853844780870606},
	{1, 1, 0.6019072301972346},
	{1, 2, 0.13986588181652243},
	{2, 1, 1.6248388986351774},
	{0.5, 0.7, 0.74388325232066244}, // sqrt(pi/1.4)*exp(-0.7)
	{1.5, 1, 0.92213700889574435},   // (1+1/x)*K(0.5,x)
	{2.5, 2, 0.38979775889617185},   // half-integer via recurrence
	{0.25, 1, 0.43073977444855821},
	{0.75, 3, 0.03769642340592487},
	{1, 10, 1.8648773453824305e-05},
	{3.7, 4.2, 0.036896280760541696},
}

func TestKReferenceValues(t *testing.T) {
	for _, c := range refK {
		got := K(c.nu, c.x)
		rel := math.Abs(got-c.want) / c.want
		if rel > 1e-12 {
			t.Errorf("K(%g, %g) = %.17g, want %.17g (rel err %.2g)", c.nu, c.x, got, c.want, rel)
		}
	}
}

func TestKHalfClosedForm(t *testing.T) {
	for _, x := range []float64{0.01, 0.3, 1, 2.5, 10, 50} {
		want := math.Sqrt(math.Pi/(2*x)) * math.Exp(-x)
		if got := K(0.5, x); math.Abs(got-want) > 1e-14*want {
			t.Errorf("K(0.5, %g) = %g, want %g", x, got, want)
		}
	}
}

func TestKRecurrenceProperty(t *testing.T) {
	// K_{ν+1}(x) = K_{ν-1}(x) + (2ν/x)·K_ν(x) must hold for independent
	// evaluations at the three orders.
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 300; i++ {
		nu := 1 + rng.Float64()*3 // ν-1 ∈ [0,3]
		x := 0.05 + rng.Float64()*8
		km1 := K(nu-1, x)
		k0 := K(nu, x)
		kp1 := K(nu+1, x)
		want := km1 + (2*nu/x)*k0
		if rel := math.Abs(kp1-want) / kp1; rel > 1e-10 {
			t.Fatalf("recurrence violated at ν=%g x=%g: K_{ν+1}=%g, rhs=%g (rel %g)", nu, x, kp1, want, rel)
		}
	}
}

func TestKContinuityAcrossCrossover(t *testing.T) {
	// The series/CF2 switch at x=2 must be seamless.
	for _, nu := range []float64{0, 0.3, 0.5, 1, 1.7, 2.5} {
		lo := K(nu, 2*(1-1e-9))
		hi := K(nu, 2*(1+1e-9))
		if rel := math.Abs(lo-hi) / lo; rel > 1e-7 {
			t.Errorf("ν=%g: discontinuity at crossover: %g vs %g", nu, lo, hi)
		}
	}
}

func TestKContinuityInOrder(t *testing.T) {
	// K is smooth in ν; evaluations bracketing integers and half-integers
	// (where the order-reduction path changes) must agree.
	for _, nu := range []float64{0.5, 1, 1.5, 2} {
		for _, x := range []float64{0.5, 1.5, 3} {
			lo := K(nu-1e-7, x)
			hi := K(nu+1e-7, x)
			if rel := math.Abs(lo-hi) / lo; rel > 1e-5 {
				t.Errorf("ν=%g x=%g: kink in order: %g vs %g", nu, x, lo, hi)
			}
		}
	}
}

func TestKMonotoneInX(t *testing.T) {
	// K_ν is strictly decreasing in x.
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 200; i++ {
		nu := rng.Float64() * 3
		x := 0.05 + rng.Float64()*6
		if !(K(nu, x) > K(nu, x*1.1)) {
			t.Fatalf("K(%g,·) not decreasing at x=%g", nu, x)
		}
	}
}

func TestKMonotoneInOrder(t *testing.T) {
	// For fixed x, K_ν increases with ν ≥ 0.
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 200; i++ {
		nu := rng.Float64() * 3
		x := 0.1 + rng.Float64()*5
		if !(K(nu+0.3, x) > K(nu, x)) {
			t.Fatalf("K not increasing in order at ν=%g x=%g", nu, x)
		}
	}
}

func TestKEdgeCases(t *testing.T) {
	if !math.IsInf(K(1, 0), 1) {
		t.Error("K(1,0) should be +Inf")
	}
	if !math.IsNaN(K(1, -1)) {
		t.Error("K(1,-1) should be NaN")
	}
	if !math.IsNaN(K(math.NaN(), 1)) {
		t.Error("K(NaN,1) should be NaN")
	}
	// Symmetry in order.
	if K(-1.3, 2) != K(1.3, 2) {
		t.Error("K(-ν,x) != K(ν,x)")
	}
	// Very large x underflows gracefully to 0, not NaN.
	if v := K(1, 800); v != 0 || math.IsNaN(v) {
		t.Errorf("K(1,800) = %g, want exact underflow to 0", v)
	}
}

func TestKScaled(t *testing.T) {
	for _, c := range []struct{ nu, x float64 }{{0, 1}, {1, 5}, {0.5, 10}, {2.2, 3}} {
		want := math.Exp(c.x) * K(c.nu, c.x)
		if got := KScaled(c.nu, c.x); math.Abs(got-want) > 1e-12*want {
			t.Errorf("KScaled(%g,%g) = %g, want %g", c.nu, c.x, got, want)
		}
	}
	// Large-x regime must remain finite and close to sqrt(pi/(2x)).
	got := KScaled(0.5, 1000)
	want := math.Sqrt(math.Pi / 2000)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("KScaled(0.5,1000) = %g, want %g", got, want)
	}
}

func BenchmarkKSmallX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = K(1.0, 0.5)
	}
}

func BenchmarkKLargeX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = K(1.0, 5.0)
	}
}
