// Package tile provides the tile-partitioned symmetric matrix the adaptive
// mixed-precision Cholesky operates on (§V): a lower-triangular collection
// of square tiles, each carrying its own storage-precision metadata, mapped
// onto a P×Q process grid by 2D block-cyclic distribution.
package tile

import (
	"fmt"
	"math"

	"geompc/internal/linalg"
	"geompc/internal/prec"
)

// Desc describes the tiling and distribution of a symmetric N×N matrix.
type Desc struct {
	N  int // matrix order
	TS int // tile size (edge length of full tiles)
	NT int // number of tile rows/columns = ceil(N/TS)
	P  int // process-grid rows
	Q  int // process-grid columns (P ≤ Q, as square as possible)
}

// NewDesc validates and completes a descriptor. The process grid defaults
// to 1×1 when p or q is zero.
func NewDesc(n, ts, p, q int) (Desc, error) {
	if n <= 0 || ts <= 0 {
		return Desc{}, fmt.Errorf("tile: invalid dimensions n=%d ts=%d", n, ts)
	}
	if p <= 0 {
		p = 1
	}
	if q <= 0 {
		q = 1
	}
	if p > q {
		return Desc{}, fmt.Errorf("tile: process grid %dx%d violates P ≤ Q", p, q)
	}
	return Desc{N: n, TS: ts, NT: (n + ts - 1) / ts, P: p, Q: q}, nil
}

// SquarestGrid returns the most-square P×Q factorization of nranks with
// P ≤ Q, the layout rule of §VII-A.
func SquarestGrid(nranks int) (p, q int) {
	if nranks <= 0 {
		return 1, 1
	}
	for d := int(isqrt(nranks)); d >= 1; d-- {
		if nranks%d == 0 {
			return d, nranks / d
		}
	}
	return 1, nranks
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// TileDim returns the edge length of tile row/column k (the trailing tile
// may be partial).
func (d Desc) TileDim(k int) int {
	if k < 0 || k >= d.NT {
		panic(fmt.Sprintf("tile: index %d out of range [0,%d)", k, d.NT)) //geompc:nolint hotalloc panic rendering; never reached with an in-range tile index
	}
	if k == d.NT-1 {
		if r := d.N - k*d.TS; r != d.TS && r > 0 {
			return r
		}
	}
	return d.TS
}

// RankOf returns the owner rank of tile (i, j) under 2D block-cyclic
// distribution over the P×Q grid.
func (d Desc) RankOf(i, j int) int {
	return (i%d.P)*d.Q + j%d.Q
}

// Ranks returns the total number of ranks in the grid.
func (d Desc) Ranks() int { return d.P * d.Q }

// LowerTileCount returns the number of stored tiles NT·(NT+1)/2.
func (d Desc) LowerTileCount() int { return d.NT * (d.NT + 1) / 2 }

// Tile is one block of the matrix. In numeric mode Data holds the m×n block
// row-major (stride n); in phantom mode Data is nil and only the metadata
// participates in the simulation.
type Tile struct {
	I, J    int            // tile coordinates (I ≥ J: lower triangle)
	M, N    int            // block dimensions
	Data    []float64      // nil in phantom mode
	Storage prec.Precision // precision this tile is generated/stored in (§V)
}

// Norm returns the Frobenius norm of the tile's data. Phantom tiles panic;
// use the precmap sampled estimator for phantom norms.
func (t *Tile) Norm() float64 {
	if t.Data == nil {
		panic("tile: Norm on phantom tile")
	}
	return linalg.FrobeniusNormMat(t.M, t.N, t.Data, t.N)
}

// Quantize rounds the tile's data through its storage precision.
func (t *Tile) Quantize() {
	if t.Data != nil {
		prec.Quantize(t.Data, t.Storage)
	}
}

// Matrix is a symmetric matrix stored as its lower triangle of tiles.
type Matrix struct {
	Desc
	Phantom bool
	tiles   []*Tile // packed lower triangle, row-major: (i,j) at i(i+1)/2+j
}

// NewMatrix allocates the tile structure. If phantom is true no data slices
// are allocated. Storage precisions default to FP64 until SetStorage.
func NewMatrix(d Desc, phantom bool) *Matrix {
	m := &Matrix{Desc: d, Phantom: phantom, tiles: make([]*Tile, d.LowerTileCount())}
	for i := 0; i < d.NT; i++ {
		for j := 0; j <= i; j++ {
			t := &Tile{I: i, J: j, M: d.TileDim(i), N: d.TileDim(j), Storage: prec.FP64}
			if !phantom {
				t.Data = make([]float64, t.M*t.N)
			}
			m.tiles[i*(i+1)/2+j] = t
		}
	}
	return m
}

// At returns tile (i, j) of the lower triangle; it panics if j > i.
func (m *Matrix) At(i, j int) *Tile {
	if j > i || i >= m.NT || j < 0 {
		panic(fmt.Sprintf("tile: At(%d,%d) outside lower triangle NT=%d", i, j, m.NT))
	}
	return m.tiles[i*(i+1)/2+j]
}

// Fill populates every tile by calling gen with the tile and its global
// offsets; no-op in phantom mode.
func (m *Matrix) Fill(gen func(t *Tile, rowStart, colStart int)) {
	if m.Phantom {
		return
	}
	for _, t := range m.tiles {
		gen(t, t.I*m.TS, t.J*m.TS)
	}
}

// SetStorage applies a storage-precision map (indexed [i][j], lower
// triangle) to all tiles and quantizes numeric data accordingly, modeling
// the matrix-generation phase of §V where FP16-family tiles are generated
// directly in FP32.
func (m *Matrix) SetStorage(storage func(i, j int) prec.Precision) {
	for _, t := range m.tiles {
		t.Storage = storage(t.I, t.J)
		t.Quantize()
	}
}

// TileNorms returns the Frobenius norm of every lower tile, indexed like
// the packed triangle, plus the global Frobenius norm of the full symmetric
// matrix (off-diagonal tiles counted twice).
func (m *Matrix) TileNorms() (norms []float64, global float64) {
	if m.Phantom {
		panic("tile: TileNorms on phantom matrix")
	}
	norms = make([]float64, len(m.tiles))
	var ss float64
	for idx, t := range m.tiles {
		nm := t.Norm()
		norms[idx] = nm
		if t.I == t.J {
			ss += nm * nm
		} else {
			ss += 2 * nm * nm
		}
	}
	return norms, math.Sqrt(ss)
}

// ToDense reconstructs the full symmetric matrix (both triangles) into a
// fresh row-major slice — for tests and small-scale verification only.
func (m *Matrix) ToDense() []float64 {
	if m.Phantom {
		panic("tile: ToDense on phantom matrix")
	}
	n := m.N
	out := make([]float64, n*n)
	for _, t := range m.tiles {
		r0, c0 := t.I*m.TS, t.J*m.TS
		for i := 0; i < t.M; i++ {
			for j := 0; j < t.N; j++ {
				v := t.Data[i*t.N+j]
				out[(r0+i)*n+c0+j] = v
				out[(c0+j)*n+r0+i] = v
			}
		}
	}
	return out
}

// LowerToDense reconstructs only the lower triangle (upper left zero),
// as produced by the Cholesky factorization.
func (m *Matrix) LowerToDense() []float64 {
	if m.Phantom {
		panic("tile: LowerToDense on phantom matrix")
	}
	n := m.N
	out := make([]float64, n*n)
	for _, t := range m.tiles {
		r0, c0 := t.I*m.TS, t.J*m.TS
		for i := 0; i < t.M; i++ {
			for j := 0; j < t.N; j++ {
				gi, gj := r0+i, c0+j
				if gj <= gi {
					out[gi*n+gj] = t.Data[i*t.N+j]
				}
			}
		}
	}
	return out
}
