package tile

import (
	"math"
	"testing"
	"testing/quick"

	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/stats"
)

func TestNewDesc(t *testing.T) {
	d, err := NewDesc(100, 32, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NT != 4 {
		t.Errorf("NT = %d, want 4", d.NT)
	}
	if d.Ranks() != 6 {
		t.Errorf("Ranks = %d, want 6", d.Ranks())
	}
	if _, err := NewDesc(0, 32, 1, 1); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := NewDesc(100, 32, 3, 2); err == nil {
		t.Error("accepted P > Q")
	}
	// Defaults for zero grid.
	d2, err := NewDesc(10, 5, 0, 0)
	if err != nil || d2.P != 1 || d2.Q != 1 {
		t.Errorf("zero grid not defaulted: %+v, %v", d2, err)
	}
}

func TestTileDim(t *testing.T) {
	d, _ := NewDesc(100, 32, 1, 1)
	dims := []int{32, 32, 32, 4}
	for k, want := range dims {
		if got := d.TileDim(k); got != want {
			t.Errorf("TileDim(%d) = %d, want %d", k, got, want)
		}
	}
	// Exact multiple: all tiles full.
	d2, _ := NewDesc(96, 32, 1, 1)
	if d2.NT != 3 || d2.TileDim(2) != 32 {
		t.Errorf("exact multiple handled wrong: NT=%d last=%d", d2.NT, d2.TileDim(2))
	}
}

func TestSquarestGrid(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 12: {3, 4}, 7: {1, 7}, 36: {6, 6}, 384: {16, 24}}
	for n, want := range cases {
		p, q := SquarestGrid(n)
		if p != want[0] || q != want[1] {
			t.Errorf("SquarestGrid(%d) = %d×%d, want %d×%d", n, p, q, want[0], want[1])
		}
		if p*q != n || p > q {
			t.Errorf("SquarestGrid(%d) invalid: %d×%d", n, p, q)
		}
	}
}

func TestRankOfBlockCyclic(t *testing.T) {
	d, _ := NewDesc(320, 32, 2, 3)
	// Block-cyclic: rank depends on (i mod P, j mod Q).
	if d.RankOf(0, 0) != 0 || d.RankOf(1, 0) != 3 || d.RankOf(0, 1) != 1 || d.RankOf(2, 3) != 0 {
		t.Error("block-cyclic mapping wrong")
	}
	// Every rank must own at least one tile of a 10×10 grid.
	seen := make(map[int]bool)
	for i := 0; i < d.NT; i++ {
		for j := 0; j <= i; j++ {
			r := d.RankOf(i, j)
			if r < 0 || r >= d.Ranks() {
				t.Fatalf("rank %d out of range", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != d.Ranks() {
		t.Errorf("only %d of %d ranks own tiles", len(seen), d.Ranks())
	}
}

func TestMatrixStructure(t *testing.T) {
	d, _ := NewDesc(70, 32, 1, 1)
	m := NewMatrix(d, false)
	if got := d.LowerTileCount(); got != 6 {
		t.Errorf("LowerTileCount = %d, want 6", got)
	}
	// Partial trailing tiles.
	last := m.At(2, 2)
	if last.M != 6 || last.N != 6 {
		t.Errorf("trailing tile dims %dx%d, want 6x6", last.M, last.N)
	}
	edge := m.At(2, 0)
	if edge.M != 6 || edge.N != 32 {
		t.Errorf("edge tile dims %dx%d, want 6x32", edge.M, edge.N)
	}
	defer func() {
		if recover() == nil {
			t.Error("At above diagonal did not panic")
		}
	}()
	m.At(0, 1)
}

func TestFillAndToDense(t *testing.T) {
	rng := stats.NewRNG(1, 0)
	locs := geo.GenerateLocations(48, 2, rng)
	k := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.1}
	d, _ := NewDesc(48, 16, 1, 1)
	m := NewMatrix(d, false)
	m.Fill(func(t *Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, t.M, t.N, k, theta, 0, t.Data, t.N)
	})
	dense := m.ToDense()
	ref := geo.CovMatrix(locs, k, theta, 0)
	for i := range ref {
		if dense[i] != ref[i] {
			t.Fatalf("dense[%d] = %g, want %g", i, dense[i], ref[i])
		}
	}
}

func TestTileNormsMatchGlobal(t *testing.T) {
	rng := stats.NewRNG(2, 0)
	locs := geo.GenerateLocations(40, 2, rng)
	k := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.2}
	d, _ := NewDesc(40, 16, 1, 1)
	m := NewMatrix(d, false)
	m.Fill(func(t *Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, t.M, t.N, k, theta, 0, t.Data, t.N)
	})
	_, global := m.TileNorms()
	// Global from tiles must equal the dense Frobenius norm.
	dense := m.ToDense()
	var ss float64
	for _, v := range dense {
		ss += v * v
	}
	want := math.Sqrt(ss)
	if math.Abs(global-want) > 1e-10*want {
		t.Errorf("global norm %g, want %g", global, want)
	}
}

func TestSetStorageQuantizes(t *testing.T) {
	d, _ := NewDesc(8, 4, 1, 1)
	m := NewMatrix(d, false)
	m.Fill(func(t *Tile, r0, c0 int) {
		for i := range t.Data {
			t.Data[i] = math.Pi
		}
	})
	m.SetStorage(func(i, j int) prec.Precision {
		if i == j {
			return prec.FP64
		}
		return prec.FP32
	})
	if got := m.At(0, 0).Data[0]; got != math.Pi {
		t.Errorf("diagonal tile quantized: %v", got)
	}
	if got := m.At(1, 0).Data[0]; got != float64(float32(math.Pi)) {
		t.Errorf("off-diagonal tile not FP32-quantized: %v", got)
	}
	if m.At(1, 0).Storage != prec.FP32 {
		t.Error("storage precision not recorded")
	}
}

func TestPhantomMatrix(t *testing.T) {
	d, _ := NewDesc(1024, 128, 2, 2)
	m := NewMatrix(d, true)
	if m.At(3, 1).Data != nil {
		t.Error("phantom tile has data")
	}
	m.Fill(func(t *Tile, r0, c0 int) { t.Data = make([]float64, 1) }) // must be a no-op
	if m.At(0, 0).Data != nil {
		t.Error("Fill touched phantom matrix")
	}
	defer func() {
		if recover() == nil {
			t.Error("TileNorms on phantom did not panic")
		}
	}()
	m.TileNorms()
}

func TestDescProperties(t *testing.T) {
	if err := quick.Check(func(n16, ts16 uint16) bool {
		n, ts := int(n16%2000)+1, int(ts16%128)+1
		d, err := NewDesc(n, ts, 1, 1)
		if err != nil {
			return false
		}
		// Tile dims must sum to N and all be in (0, TS].
		sum := 0
		for k := 0; k < d.NT; k++ {
			td := d.TileDim(k)
			if td <= 0 || td > ts {
				return false
			}
			sum += td
		}
		return sum == n
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
