package cg

import (
	"fmt"
	"math"

	"geompc/internal/solver"
	"geompc/internal/stats"
)

// LogDetSLQ estimates log det Σ by stochastic Lanczos quadrature: for each
// of `probes` Rademacher vectors z it runs `iters` unpreconditioned CG
// iterations (through the same task-graph engine as the solve, so the
// probe cost is simulated and metered like any other solve), rebuilds the
// Lanczos tridiagonal T from the CG α/β coefficients, and evaluates
// n·e₁ᵀ log(T) e₁ by a Jacobi eigendecomposition of T. The mean over
// probes is the estimate. Probe p draws from the deterministic stream
// (seed, p), so the estimate is reproducible bit-for-bit.
//
// The per-probe stats/metrics accumulate into the returned Results slice
// so callers (the MLE loop) can meter the probes' simulated cost.
func LogDetSLQ(cfg solver.Config, probes, iters int, seed uint64) (float64, []*solver.Result, error) {
	if cfg.Matrix == nil || cfg.Matrix.Phantom {
		return 0, nil, fmt.Errorf("cg: SLQ log-det needs numeric tile data")
	}
	if probes <= 0 {
		probes = 4
	}
	if iters <= 0 {
		iters = 24
	}
	n := cfg.Desc.N
	pcfg := cfg
	pcfg.Iter.Precond = "none" // plain Lanczos recurrence
	pcfg.Iter.MaxIters = iters
	pcfg.Iter.Tol = 1e-300 // run the full Krylov depth

	est := 0.0
	results := make([]*solver.Result, 0, probes)
	for p := 0; p < probes; p++ {
		rng := stats.NewRNG(seed, uint64(p))
		z := make([]float64, n)
		for i := range z {
			z[i] = float64(2*rng.IntN(2) - 1) // Rademacher ±1
		}
		pcfg.RHS = z
		res, st, err := solve(pcfg, nil, true)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, res)
		if res.Err != nil {
			return 0, nil, fmt.Errorf("cg: SLQ probe %d: %w", p, res.Err)
		}
		v, err := probeLogDet(st, res.Iterations, n)
		if err != nil {
			return 0, nil, fmt.Errorf("cg: SLQ probe %d: %w", p, err)
		}
		est += v
	}
	return est / float64(probes), results, nil
}

// probeLogDet converts one probe's CG coefficients into its quadrature
// contribution n·Σᵢ (V₀ᵢ)² log λᵢ over the Lanczos tridiagonal's
// eigenpairs (λ, V).
func probeLogDet(st *state, m, n int) (float64, error) {
	if m < 1 {
		return 0, fmt.Errorf("no iterations completed")
	}
	// Lanczos T from the CG recurrence:
	//   T[j][j]   = 1/α_j + β_{j-1}/α_{j-1}
	//   T[j][j+1] = √β_j / α_j
	t := make([]float64, m*m)
	for j := 0; j < m; j++ {
		if st.alphas[j] == 0 {
			return 0, fmt.Errorf("zero CG step at iteration %d", j)
		}
		d := 1 / st.alphas[j]
		if j > 0 {
			d += st.betas[j-1] / st.alphas[j-1]
		}
		t[j*m+j] = d
		if j < m-1 {
			if st.betas[j] < 0 {
				return 0, fmt.Errorf("negative CG β at iteration %d", j)
			}
			o := math.Sqrt(st.betas[j]) / st.alphas[j]
			t[j*m+j+1] = o
			t[(j+1)*m+j] = o
		}
	}
	eig, vec := jacobiEig(t, m)
	sum := 0.0
	for i := 0; i < m; i++ {
		w := vec[i] // first row of V: e₁ᵀ v_i
		if w == 0 {
			continue
		}
		if eig[i] <= 0 {
			return 0, fmt.Errorf("non-positive Ritz value %g: %w", eig[i], ErrNotSPD)
		}
		sum += w * w * math.Log(eig[i])
	}
	return float64(n) * sum, nil
}

// jacobiEig diagonalizes the dense symmetric m×m matrix a (row-major,
// destroyed) by cyclic Jacobi rotations, returning the eigenvalues and the
// eigenvector matrix V (row-major: V[i*m+j] is component i of eigenvector
// j). Deterministic: fixed sweep order, fixed iteration cap.
func jacobiEig(a []float64, m int) (eig, v []float64) {
	v = make([]float64, m*m)
	for i := 0; i < m; i++ {
		v[i*m+i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		off := 0.0
		for p := 0; p < m; p++ {
			for q := p + 1; q < m; q++ {
				off += a[p*m+q] * a[p*m+q]
			}
		}
		if off <= 1e-30 {
			break
		}
		for p := 0; p < m; p++ {
			for q := p + 1; q < m; q++ {
				apq := a[p*m+q]
				if apq == 0 {
					continue
				}
				theta := (a[q*m+q] - a[p*m+p]) / (2 * apq)
				tt := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					tt = -tt
				}
				c := 1 / math.Sqrt(tt*tt+1)
				s := tt * c
				for k := 0; k < m; k++ {
					akp, akq := a[k*m+p], a[k*m+q]
					a[k*m+p] = c*akp - s*akq
					a[k*m+q] = s*akp + c*akq
				}
				for k := 0; k < m; k++ {
					apk, aqk := a[p*m+k], a[q*m+k]
					a[p*m+k] = c*apk - s*aqk
					a[q*m+k] = s*apk + c*aqk
				}
				for k := 0; k < m; k++ {
					vkp, vkq := v[k*m+p], v[k*m+q]
					v[k*m+p] = c*vkp - s*vkq
					v[k*m+q] = s*vkp + c*vkq
				}
			}
		}
	}
	eig = make([]float64, m)
	for i := 0; i < m; i++ {
		eig[i] = a[i*m+i]
	}
	return eig, v
}
