package cg

import (
	"geompc/internal/plan"
	"geompc/internal/solver"
)

// cgBackend registers the iterative solve path as solver backend "cg".
type cgBackend struct{}

func init() { solver.Register(cgBackend{}) }

// Name implements solver.Backend.
func (cgBackend) Name() string { return "cg" }

// Solve implements solver.Backend.
func (cgBackend) Solve(cfg solver.Config) (*solver.Result, error) { return Run(cfg) }

// SolveCached implements solver.Backend.
func (cgBackend) SolveCached(cfg solver.Config, c *plan.Cache) (*solver.Result, error) {
	return RunCached(cfg, c)
}
