package cg

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"geompc/internal/obs"
	"geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/runtime"
	"geompc/internal/solver"
)

// params is cfg.Iter with the defaults applied.
type params struct {
	tol      float64
	maxIters int
	chunk    int
	ladder   []prec.Precision
	rate     float64
	safety   float64
	precond  string
}

func resolve(it solver.IterParams, numeric bool) params {
	p := params{
		tol: it.Tol, maxIters: it.MaxIters, chunk: it.Chunk,
		ladder: it.Ladder, rate: it.Rate, safety: it.Safety, precond: it.Precond,
	}
	if p.tol <= 0 {
		p.tol = 1e-10
	}
	if p.maxIters <= 0 {
		if numeric {
			p.maxIters = 500
		} else {
			p.maxIters = 24
		}
	}
	if p.chunk <= 0 {
		p.chunk = 4
	}
	if len(p.ladder) == 0 {
		p.ladder = prec.CholeskySet
	}
	if p.rate <= 0 || p.rate >= 1 {
		p.rate = 0.25
	}
	if p.safety <= 0 {
		p.safety = 8
	}
	return p
}

// pick is the per-iteration precision-switch rule: the lowest ladder
// precision whose unit roundoff still clears the predicted relative
// residual by the safety margin (and the stagnation floor), falling back
// to the ladder's highest precision. This is the iterative analogue of the
// paper's tile-wise rule — accuracy demand grows as the residual shrinks,
// so early iterations run cheap and late iterations run exact.
func (p params) pick(relres, epsFloor float64) prec.Precision {
	budget := relres / p.safety
	best := p.ladder[0]
	for _, q := range p.ladder {
		if e := q.Eps(); e <= budget && e <= epsFloor && e > best.Eps() {
			best = q
		}
	}
	return best
}

// armedFaults mirrors the direct backend's rule: runs with a live fault
// plan never touch the plan cache.
func armedFaults(cfg solver.Config) bool {
	return cfg.Faults != nil && cfg.Platform != nil &&
		len(cfg.Faults.Plan(cfg.Platform.NumDevices())) > 0
}

// chunkSig hashes everything that determines one chunk's schedule except
// the precision maps and the vector contents: the problem shape, machine,
// strategy, scheduling knobs, and the chunk's precision schedule (its
// iteration count, execution precisions and wire formats). The chunk's
// global base iteration is deliberately excluded — two chunks with equal
// precision schedules replay the same plan.
func chunkSig(cfg solver.Config, cp chunkParams, precond string) uint64 {
	var d obs.Digest
	d.WriteString("geompc/plan/v1")
	d.WriteString("cg")
	d.WriteInt64(int64(cfg.Desc.N))
	d.WriteInt64(int64(cfg.Desc.TS))
	d.WriteInt64(int64(cfg.Desc.NT))
	d.WriteInt64(int64(cfg.Desc.P))
	d.WriteInt64(int64(cfg.Desc.Q))
	d.WriteInt64(int64(cfg.Platform.Ranks))
	d.WriteInt64(int64(cfg.Platform.DevPerRank))
	d.WriteString(cfg.Platform.Node.Name)
	d.WriteString(cfg.Platform.Node.GPU.Name)
	d.WriteInt64(int64(cfg.Strategy))
	pol := "fifo"
	if cfg.Sched != nil {
		pol = cfg.Sched.Name()
	}
	d.WriteString(pol)
	topo := "binomial"
	if cfg.Bcast != nil {
		topo = cfg.Bcast.Name()
	}
	d.WriteString(topo)
	la := 2
	if cfg.Lookahead > 0 {
		la = cfg.Lookahead
	}
	d.WriteInt64(int64(la))
	d.WriteString(precond)
	d.WriteInt64(int64(cp.iters))
	for _, p := range cp.precs {
		d.WriteInt64(int64(p))
	}
	for _, p := range cp.pwire {
		d.WriteInt64(int64(p))
	}
	return d.Sum()
}

// chunkOut is one engine run's worth of results.
type chunkOut struct {
	stats runtime.Stats
	reg   *obs.Registry
	sched []runtime.ScheduledTask
}

func planOpts(cfg solver.Config) plan.Options {
	return plan.Options{Policy: cfg.Sched, Bcast: cfg.Bcast, Lookahead: cfg.Lookahead, Audit: cfg.Audit, Workers: cfg.EngineWorkers}
}

// runChunk executes one chunk live or through the plan cache. Chunks with
// equal precision schedules share a compiled plan (the chunk signature
// excludes the base iteration), so a converging solve typically compiles
// two or three plans and replays the rest.
func runChunk(cfg solver.Config, cp chunkParams, st *state, errv *atomic.Value, c *plan.Cache, precond string) (chunkOut, error) {
	g, err := newGraph(cfg, cp, st, errv)
	if err != nil {
		return chunkOut{}, err
	}
	if c != nil && !armedFaults(cfg) {
		sig := chunkSig(cfg, cp, precond)
		precSig := cfg.Maps.Signature()
		if p := c.Lookup(sig); p != nil {
			if p.PrecSig == precSig {
				c.Hit()
				stats, err := p.Replay(g)
				if err != nil {
					return chunkOut{}, err
				}
				return chunkOut{stats: stats, reg: p.Metrics, sched: p.Schedule}, nil
			}
			inv, err := p.Invalidate(g)
			if err != nil {
				return chunkOut{}, err
			}
			c.Invalidated(len(inv.Dirty))
		} else {
			c.Miss()
		}
		p, err := plan.Compile(cfg.Platform, g, sig, precSig, planOpts(cfg))
		if err != nil {
			return chunkOut{}, err
		}
		c.Store(p)
		return chunkOut{stats: p.Stats, reg: p.Metrics, sched: p.Schedule}, nil
	}
	if c != nil {
		c.Bypass()
	}
	eng := runtime.New(cfg.Platform, g)
	eng.Trace = cfg.Trace
	eng.Audit = cfg.Audit
	eng.Inject(cfg.Faults)
	eng.Policy = cfg.Sched
	eng.Bcast = cfg.Bcast
	eng.EngineWorkers = cfg.EngineWorkers
	if cfg.Lookahead > 0 {
		eng.Lookahead = cfg.Lookahead
	}
	stats, err := eng.Run()
	if err != nil {
		return chunkOut{}, err
	}
	out := chunkOut{stats: stats, reg: eng.Metrics()}
	if cfg.Trace || cfg.Audit {
		out.sched = eng.ScheduleTrace()
	}
	return out, nil
}

// addStats accumulates one chunk into the solve totals; rates (Flops,
// AvgPower) are recomputed by the caller once the totals are final.
func addStats(dst *runtime.Stats, s runtime.Stats) {
	dst.Makespan += s.Makespan
	dst.TotalFlops += s.TotalFlops
	dst.BytesH2D += s.BytesH2D
	dst.BytesD2H += s.BytesD2H
	dst.BytesNet += s.BytesNet
	dst.SenderConversions += s.SenderConversions
	dst.ReceiverConversions += s.ReceiverConversions
	dst.Energy += s.Energy
	dst.Tasks += s.Tasks
	dst.DeviceFailures += s.DeviceFailures
	dst.TransientFaults += s.TransientFaults
	dst.RetriedTasks += s.RetriedTasks
	dst.ReplayedTasks += s.ReplayedTasks
	dst.RecoveryBytes += s.RecoveryBytes
}

// Run executes the preconditioned CG solve described by cfg: numeric when
// cfg.Matrix holds tile data and cfg.RHS is set, phantom (cost-only, a
// modeled residual trajectory) otherwise.
func Run(cfg solver.Config) (*solver.Result, error) {
	res, _, err := solve(cfg, nil, false)
	return res, err
}

// RunCached is Run through a compiled-plan cache: chunks whose precision
// schedule repeats replay their frozen plan.
func RunCached(cfg solver.Config, c *plan.Cache) (*solver.Result, error) {
	res, _, err := solve(cfg, c, false)
	return res, err
}

// solve drives the chunk loop. pure disables residual replacement — the
// SLQ estimator needs the uncorrected CG recurrence, whose α/β are the
// Lanczos coefficients.
func solve(cfg solver.Config, c *plan.Cache, pure bool) (*solver.Result, *state, error) {
	if cfg.Platform == nil {
		return nil, nil, fmt.Errorf("cg: nil platform")
	}
	if cfg.Maps == nil {
		return nil, nil, fmt.Errorf("cg: nil precision maps")
	}
	if cfg.Desc.NT <= 0 || cfg.Desc.N <= 0 {
		return nil, nil, fmt.Errorf("cg: empty tiling descriptor")
	}
	numeric := cfg.Matrix != nil && !cfg.Matrix.Phantom
	pr := resolve(cfg.Iter, numeric)

	var st *state
	if numeric {
		if cfg.RHS == nil {
			return nil, nil, fmt.Errorf("cg: numeric solves need a right-hand side (set Config.RHS)")
		}
		if len(cfg.RHS) != cfg.Desc.N {
			return nil, nil, fmt.Errorf("cg: RHS has %d entries, matrix is %d×%d", len(cfg.RHS), cfg.Desc.N, cfg.Desc.N)
		}
		var err error
		st, err = newState(cfg.Desc, cfg.Matrix, cfg.RHS, pr.precond, pr.maxIters)
		if err != nil {
			return nil, nil, err
		}
	}

	// Iteration budget: numeric runs until converged or maxIters; phantom
	// runs the modeled trajectory relres(t) = rate^t down to tol (capped).
	limit := pr.maxIters
	if !numeric {
		need := int(math.Ceil(math.Log(pr.tol) / math.Log(pr.rate)))
		if need < 1 {
			need = 1
		}
		if need < limit {
			limit = need
		}
	}

	errv := new(atomic.Value)
	curRes := 1.0
	epsFloor := math.Inf(1)
	incoming := prec.FP64
	if cfg.Strategy != solver.ForceTTC {
		incoming = prec.Wire(pr.pick(curRes, epsFloor))
	}
	if st != nil {
		prec.Quantize(st.p, incoming)
	}

	var total runtime.Stats
	var dig obs.Digest
	reg := obs.NewRegistry()
	var sched []solver.ScheduledTask
	offset := 0.0
	done, chunks := 0, 0
	converged := false

	for done < limit {
		k := pr.chunk
		if rem := limit - done; rem < k {
			k = rem
		}
		cp := chunkParams{
			iters: k, base: done,
			precs: make([]prec.Precision, k),
			pwire: make([]prec.Precision, k+1),
		}
		cp.pwire[0] = incoming
		for t := 0; t < k; t++ {
			pred := curRes * math.Pow(pr.rate, float64(t))
			cp.precs[t] = pr.pick(pred, epsFloor)
			if t > 0 {
				cp.pwire[t] = prec.FP64
				if cfg.Strategy != solver.ForceTTC {
					cp.pwire[t] = prec.Wire(cp.precs[t])
				}
			}
		}
		cp.pwire[k] = prec.FP64
		if cfg.Strategy != solver.ForceTTC {
			cp.pwire[k] = prec.Wire(pr.pick(curRes*math.Pow(pr.rate, float64(k)), epsFloor))
		}

		out, err := runChunk(cfg, cp, st, errv, c, pr.precond)
		if err != nil {
			return nil, nil, err
		}
		addStats(&total, out.stats)
		dig.WriteUint64(out.stats.ScheduleDigest)
		if out.reg != nil {
			reg.Merge(out.reg)
		}
		if len(out.sched) > 0 {
			for _, t := range out.sched {
				sched = append(sched, solver.ScheduledTask{
					Name:   TaskName(cfg.Desc.NT, k, done, t.ID),
					Device: t.Device,
					Start:  t.Start + offset,
					End:    t.End + offset,
				})
			}
		}
		offset += out.stats.Makespan
		for t := 0; t < k; t++ {
			reg.Counter("cg/iters/" + cp.precs[t].String()).Inc()
		}
		done += k
		chunks++
		incoming = cp.pwire[k]

		if numeric {
			if errv.Load() != nil {
				break // CG breakdown: report via Result.Err
			}
			measured := st.relres[done-1]
			if !pure {
				measured = st.refresh()
			}
			if measured > 0.9*curRes {
				// Stagnation: the chunk barely moved the residual — the
				// cheap end of the ladder is rounding away the progress.
				// Retire the lowest precision the chunk used.
				worst := 0.0
				for _, p := range cp.precs {
					if e := p.Eps(); e > worst {
						worst = e
					}
				}
				if f := worst / 2; f < epsFloor {
					epsFloor = f
				}
			}
			curRes = measured
			if measured <= pr.tol {
				converged = true
				break
			}
		} else {
			curRes = math.Pow(pr.rate, float64(done))
			if curRes <= pr.tol {
				converged = true
				break
			}
		}
	}

	if total.Makespan > 0 {
		total.Flops = total.TotalFlops / total.Makespan
		total.AvgPower = total.Energy / total.Makespan
	}
	total.ScheduleDigest = dig.Sum()

	res := &solver.Result{
		Stats:      total,
		Backend:    "cg",
		Strategy:   cfg.Strategy,
		Iterations: done,
		Residual:   curRes,
		Converged:  converged,
		Reg:        reg,
	}
	if v := errv.Load(); v != nil {
		res.Err = v.(error)
		res.Converged = false
	}
	reg.Gauge("cg/iterations").Set(float64(done))
	reg.Gauge("cg/chunks").Set(float64(chunks))
	reg.Gauge("cg/residual").Set(curRes)
	if len(sched) > 0 {
		sort.SliceStable(sched, func(i, j int) bool { return sched[i].Start < sched[j].Start })
		res.Schedule = sched
	}
	if st != nil && res.Err == nil {
		res.Solution = append([]float64(nil), st.x...)
	}
	return res, st, nil
}
