package cg

import (
	"math"
	"sync/atomic"
	"testing"

	_ "geompc/internal/cholesky" // registers the "direct" backend
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/linalg"
	"geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// problem assembles a jittered-grid sqexp covariance system Σx = b with a
// generous nugget (CG conditioning) plus its precision maps.
func problem(t *testing.T, n, ts int, ureq float64, ranks, devPerRank int) (solver.Config, []float64) {
	t.Helper()
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	p, q := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, p, q)
	if err != nil {
		t.Fatal(err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-2, tl.Data, tl.N)
	})
	maps := precmap.New(precmap.FromMatrix(mat, ureq, prec.CholeskySet), ureq)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	brng := stats.NewRNG(7, 1)
	for i := range rhs {
		rhs[i] = brng.Norm()
	}
	return solver.Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat, RHS: rhs}, rhs
}

// denseSolve solves the storage-quantized system exactly in FP64.
func denseSolve(t *testing.T, cfg solver.Config, rhs []float64) []float64 {
	t.Helper()
	n := cfg.Desc.N
	a := cfg.Matrix.ToDense()
	if err := linalg.PotrfLower(n, a, n); err != nil {
		t.Fatalf("reference factorization: %v", err)
	}
	x := append([]float64(nil), rhs...)
	linalg.TrsvLNN(n, a, n, x)
	linalg.TrsvLTN(n, a, n, x)
	return x
}

func relErr(x, ref []float64) float64 {
	num, den := 0.0, 0.0
	for i := range x {
		d := x[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	return math.Sqrt(num / den)
}

func TestGraphDegrees(t *testing.T) {
	// Successors must exactly mirror NumPredecessors for the engine's
	// commit counting; check a multi-iteration phantom chunk.
	cfg, _ := problem(t, 128, 32, 1e-4, 2, 2)
	cp := chunkParams{
		iters: 3,
		precs: []prec.Precision{prec.FP16, prec.FP32, prec.FP64},
		pwire: []prec.Precision{prec.FP16, prec.FP16, prec.FP32, prec.FP64},
	}
	g, err := newGraph(cfg, cp, nil, new(atomic.Value))
	if err != nil {
		t.Fatal(err)
	}
	indeg := make([]int, g.NumTasks())
	var buf []int
	for id := 0; id < g.NumTasks(); id++ {
		buf = g.Successors(id, buf[:0])
		for _, s := range buf {
			indeg[s]++
		}
	}
	for id := 0; id < g.NumTasks(); id++ {
		if indeg[id] != g.NumPredecessors(id) {
			op, it, i, j := g.decode(id)
			t.Fatalf("task %d (op=%d t=%d i=%d j=%d): in-degree %d vs declared %d",
				id, op, it, i, j, indeg[id], g.NumPredecessors(id))
		}
	}
}

func TestDifferentialVsDirect(t *testing.T) {
	// CG must reproduce the exact FP64 solve of the same storage-quantized
	// system across sizes, strategies and accuracy demands.
	for _, tc := range []struct {
		n, ts int
		ureq  float64
		strat solver.Strategy
	}{
		{96, 32, 1e-6, solver.Auto},
		{96, 32, 1e-6, solver.ForceTTC},
		{96, 32, 1e-2, solver.Auto},
		{160, 32, 1e-6, solver.Auto},
		{160, 32, 1e-2, solver.ForceTTC},
	} {
		cfg, rhs := problem(t, tc.n, tc.ts, tc.ureq, 2, 2)
		cfg.Strategy = tc.strat
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("n=%d ureq=%g %v: %v", tc.n, tc.ureq, tc.strat, err)
		}
		if res.Err != nil {
			t.Fatalf("n=%d ureq=%g %v: numeric failure %v", tc.n, tc.ureq, tc.strat, res.Err)
		}
		if !res.Converged {
			t.Fatalf("n=%d ureq=%g %v: no convergence after %d iterations (relres %g)",
				tc.n, tc.ureq, tc.strat, res.Iterations, res.Residual)
		}
		ref := denseSolve(t, cfg, rhs)
		if e := relErr(res.Solution, ref); e > 1e-6 {
			t.Errorf("n=%d ureq=%g %v: solution error %g vs exact solve (relres %g after %d iters)",
				tc.n, tc.ureq, tc.strat, e, res.Residual, res.Iterations)
		}
		if res.Iterations <= 0 || res.Iterations > 500 {
			t.Errorf("n=%d: implausible iteration count %d", tc.n, res.Iterations)
		}
	}
}

func TestDeterminismAcrossEngineWorkers(t *testing.T) {
	// The serial event loop and the conservative parallel DES must produce
	// bit-identical schedules, iteration counts and solution vectors.
	base, _ := problem(t, 160, 32, 1e-6, 2, 2)
	run := func(workers int) *solver.Result {
		cfg, _ := problem(t, 160, 32, 1e-6, 2, 2)
		cfg.EngineWorkers = workers
		cfg.Strategy = base.Strategy
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	parallel := run(4)
	if serial.Digest() != parallel.Digest() {
		t.Errorf("schedule digest diverged: serial %016x parallel %016x", serial.Digest(), parallel.Digest())
	}
	if serial.Iterations != parallel.Iterations {
		t.Errorf("iteration count diverged: serial %d parallel %d", serial.Iterations, parallel.Iterations)
	}
	for i := range serial.Solution {
		if serial.Solution[i] != parallel.Solution[i] {
			t.Fatalf("solution bit %d diverged: %x vs %x",
				i, math.Float64bits(serial.Solution[i]), math.Float64bits(parallel.Solution[i]))
		}
	}
	if serial.Residual != parallel.Residual {
		t.Errorf("residual diverged: %g vs %g", serial.Residual, parallel.Residual)
	}
}

func TestPlanCacheReplay(t *testing.T) {
	// A second identical solve must replay compiled chunk plans with
	// bit-identical stats and solution.
	c := plan.NewCache(nil)
	run := func() *solver.Result {
		cfg, _ := problem(t, 96, 32, 1e-6, 2, 2)
		res, err := RunCached(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res
	}
	first := run()
	misses := c.Stats().Misses
	if misses == 0 {
		t.Fatal("first solve compiled no plans")
	}
	second := run()
	if c.Stats().Hits == 0 {
		t.Error("second solve replayed no plans")
	}
	if c.Stats().Misses != misses {
		t.Errorf("second solve recompiled: misses %d → %d", misses, c.Stats().Misses)
	}
	if first.Digest() != second.Digest() {
		t.Errorf("replay digest %016x != compile digest %016x", second.Digest(), first.Digest())
	}
	if first.Stats.Makespan != second.Stats.Makespan || first.Stats.Energy != second.Stats.Energy {
		t.Errorf("replay stats diverged: makespan %g vs %g, energy %g vs %g",
			first.Stats.Makespan, second.Stats.Makespan, first.Stats.Energy, second.Stats.Energy)
	}
	for i := range first.Solution {
		if first.Solution[i] != second.Solution[i] {
			t.Fatalf("replayed solution bit %d diverged", i)
		}
	}
}

func TestPhantomRun(t *testing.T) {
	// Phantom mode models the iteration trajectory without tile data and
	// stays deterministic across engine modes.
	cfg, _ := problem(t, 160, 32, 1e-4, 2, 2)
	cfg.Matrix = nil
	cfg.RHS = nil
	run := func(workers int) *solver.Result {
		c := cfg
		c.EngineWorkers = workers
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(0)
	if !res.Converged || res.Iterations <= 0 {
		t.Fatalf("phantom run did not converge: %d iterations, relres %g", res.Iterations, res.Residual)
	}
	if res.Stats.Makespan <= 0 || res.Stats.Energy <= 0 || res.Stats.BytesNet <= 0 {
		t.Errorf("phantom run has degenerate stats: %+v", res.Stats)
	}
	if par := run(4); par.Digest() != res.Digest() {
		t.Errorf("phantom digest diverged across engine workers: %016x vs %016x", res.Digest(), par.Digest())
	}
	// Lower-precision iterations must actually be scheduled under Auto.
	low := res.Metrics().Counter("cg/iters/"+prec.FP16.String()).Value() +
		res.Metrics().Counter("cg/iters/"+prec.FP16x32.String()).Value() +
		res.Metrics().Counter("cg/iters/"+prec.FP32.String()).Value()
	if low == 0 {
		t.Error("no reduced-precision iterations under Auto")
	}
	if hi := res.Metrics().Counter("cg/iters/" + prec.FP64.String()).Value(); hi == 0 {
		t.Error("no FP64 refinement iterations near convergence")
	}
}

func TestSTCMovesFewerBytes(t *testing.T) {
	// Under Auto the search-direction broadcasts travel down-converted, so
	// network volume must be strictly below ForceTTC's for the same
	// iteration schedule (phantom mode: identical trajectories).
	cfg, _ := problem(t, 160, 32, 1e-4, 4, 1)
	cfg.Matrix = nil
	cfg.RHS = nil
	run := func(s solver.Strategy) *solver.Result {
		c := cfg
		c.Strategy = s
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stc, ttc := run(solver.Auto), run(solver.ForceTTC)
	if stc.Iterations != ttc.Iterations {
		t.Fatalf("strategies diverged in trajectory: %d vs %d iterations", stc.Iterations, ttc.Iterations)
	}
	if stc.Stats.BytesNet >= ttc.Stats.BytesNet {
		t.Errorf("STC moved %d net bytes, TTC %d — expected strictly fewer", stc.Stats.BytesNet, ttc.Stats.BytesNet)
	}
}

func TestSLQLogDet(t *testing.T) {
	cfg, _ := problem(t, 96, 32, 1e-6, 1, 2)
	n := cfg.Desc.N
	a := cfg.Matrix.ToDense()
	if err := linalg.PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	exact := 0.0
	for i := 0; i < n; i++ {
		exact += 2 * math.Log(a[i*n+i])
	}
	est, probeRes, err := LogDetSLQ(cfg, 8, 32, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(probeRes) != 8 {
		t.Fatalf("expected 8 probe results, got %d", len(probeRes))
	}
	if rel := math.Abs(est-exact) / math.Abs(exact); rel > 0.10 {
		t.Errorf("SLQ estimate %g vs exact %g (relative error %g)", est, exact, rel)
	}
	// Reproducibility: same seed, same estimate bits.
	est2, _, err := LogDetSLQ(cfg, 8, 32, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if est != est2 {
		t.Errorf("SLQ not reproducible: %x vs %x", math.Float64bits(est), math.Float64bits(est2))
	}
}

func TestBackendRegistry(t *testing.T) {
	names := solver.Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["direct"] || !seen["cg"] {
		t.Fatalf("backend registry missing entries: %v", names)
	}
	b, err := solver.ByName("")
	if err != nil || b.Name() != "direct" {
		t.Fatalf(`ByName("") = %v, %v; want the direct backend`, b, err)
	}
	if _, err := solver.ByName("nope"); err == nil {
		t.Fatal("unknown backend name did not error")
	}
	cgb, err := solver.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	cfg, rhs := problem(t, 96, 32, 1e-6, 1, 1)
	res, err := cgb.Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := denseSolve(t, cfg, rhs)
	if e := relErr(res.Solution, ref); e > 1e-6 {
		t.Errorf("interface-routed CG solution error %g", e)
	}
}
