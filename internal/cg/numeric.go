package cg

import (
	"errors"
	"fmt"
	"math"

	"geompc/internal/linalg"
	"geompc/internal/prec"
	"geompc/internal/tile"
)

// ErrNotSPD marks numeric failures that mean "Σ is not positive definite
// at working precision" — the iterative analogue of a failed Cholesky
// pivot. Callers (the MLE loop) treat it as an infeasible θ, not a bug.
var ErrNotSPD = errors.New("matrix not SPD")

// state is the numeric CG state threaded through the task bodies of every
// chunk. Vector segments are written by exactly one task per iteration and
// the reduction chain orders iterations transitively (the engine joins a
// task's body before its successors commit), so the single-buffer layout
// is race-free at every EngineWorkers setting.
type state struct {
	desc tile.Desc
	mat  *tile.Matrix

	b             []float64 // right-hand side, for residual replacement
	x, r, z, p, y []float64
	invdiag       []float64 // Jacobi preconditioner, nil for identity

	d1 []float64 // pᵀy partials, one per segment
	d2 []float64 // (zᵀr, rᵀr) partials, two per segment

	alpha, beta  float64 // current step scalars
	rhoOld       float64
	bnorm        float64
	alphas       []float64 // per global iteration, for the SLQ estimator
	betas        []float64
	relres       []float64 // measured ‖r‖/‖b‖ after each global iteration
	lowestEps    float64   // smallest eps any SpMV ran at (stagnation guard)
	iterationsIn int       // global iterations completed before this chunk
}

// newState initializes x=0, r=b, z=M⁻¹r, p=z (quantized later to the first
// chunk's wire format by the driver).
func newState(d tile.Desc, mat *tile.Matrix, rhs []float64, precond string, maxIters int) (*state, error) {
	n := d.N
	st := &state{
		desc: d, mat: mat,
		b: append([]float64(nil), rhs...),
		x: make([]float64, n), r: make([]float64, n),
		z: make([]float64, n), p: make([]float64, n),
		y:  make([]float64, n),
		d1: make([]float64, d.NT), d2: make([]float64, 2*d.NT),
		alphas: make([]float64, maxIters), betas: make([]float64, maxIters),
		relres:    make([]float64, maxIters),
		lowestEps: math.Inf(1),
	}
	copy(st.r, rhs)
	if precond == "" || precond == "jacobi" {
		st.invdiag = make([]float64, n)
		for i := 0; i < d.NT; i++ {
			t := mat.At(i, i)
			off := i * d.TS
			for k := 0; k < t.M; k++ {
				v := t.Data[k*t.N+k]
				if v <= 0 || math.IsNaN(v) {
					return nil, fmt.Errorf("cg: non-positive diagonal %g at row %d: %w", v, off+k, ErrNotSPD)
				}
				st.invdiag[off+k] = 1 / v
			}
		}
	} else if precond != "none" {
		return nil, fmt.Errorf("cg: unknown preconditioner %q (have jacobi, none)", precond)
	}
	st.applyPrecond()
	copy(st.p, st.z)
	st.rhoOld = dotSeg(st.z, st.r)
	st.bnorm = math.Sqrt(dotSeg(st.r, st.r))
	if st.bnorm == 0 {
		st.bnorm = 1 // b = 0: x = 0 is exact, relres stays 0
	}
	return st, nil
}

// seg slices segment i (tile row i's span) out of a length-N vector.
func (st *state) seg(v []float64, i int) []float64 {
	off := i * st.desc.TS
	return v[off : off+st.desc.TileDim(i)]
}

// applyPrecond sets z = M⁻¹ r over the whole vector.
func (st *state) applyPrecond() {
	if st.invdiag == nil {
		copy(st.z, st.r)
		return
	}
	for k, v := range st.r {
		st.z[k] = v * st.invdiag[k]
	}
}

// refresh performs residual replacement: it recomputes the true residual
// r = b − Ax in FP64, reapplies the preconditioner and resets ρ, and
// returns the true relative residual. Reduced-precision SpMVs make the CG
// recurrence residual drift away from b − Ax (the recurrence converges
// while the solution stalls), so the driver replaces the residual at every
// chunk boundary and lets the true residual drive both the convergence
// check and the precision-switch rule. The O(n²) FP64 host sweep is not
// metered — the same accounting convention as the direct backend's
// host-side triangular solves.
func (st *state) refresh() float64 {
	for k := range st.y {
		st.y[k] = 0
	}
	for i := 0; i < st.desc.NT; i++ {
		for j := 0; j <= i; j++ {
			tl := st.mat.At(i, j)
			linalg.GemvNPrec(prec.FP64, tl.M, tl.N, 1, tl.Data, tl.N, st.seg(st.x, j), 1, st.seg(st.y, i))
			if j < i {
				linalg.GemvTPrec(prec.FP64, tl.M, tl.N, 1, tl.Data, tl.N, st.seg(st.x, i), 1, st.seg(st.y, j))
			}
		}
	}
	for k := range st.r {
		st.r[k] = st.b[k] - st.y[k]
	}
	st.applyPrecond()
	st.rhoOld = dotSeg(st.z, st.r)
	return math.Sqrt(dotSeg(st.r, st.r)) / st.bnorm
}

// dotSeg is the dot-product reduction kernel of the CG inner loop.
//
//geompc:hot
func dotSeg(a, b []float64) float64 {
	s := 0.0
	for k, v := range a {
		s += v * b[k]
	}
	return s
}

// mvBody returns the numeric body of SpMV step (t,i,j):
// y_i (+)= A(i,j)·p_j at the iteration's execution precision, reading the
// stored lower tile (transposed when j > i).
func (g *graph) mvBody(t, i, j int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	ep := g.cp.precs[t]
	//geompc:nolint hotalloc numeric-mode task bodies capture (t,i,j) by design; pure-DES runs return nil above and stay allocation-free
	return func() {
		a, b, trans := mvTile(i, j)
		tl := st.mat.At(a, b)
		beta := 1.0
		if j == 0 {
			beta = 0
		}
		if trans {
			linalg.GemvTPrec(ep, tl.M, tl.N, 1, tl.Data, tl.N, st.seg(st.p, j), beta, st.seg(st.y, i))
		} else {
			linalg.GemvNPrec(ep, tl.M, tl.N, 1, tl.Data, tl.N, st.seg(st.p, j), beta, st.seg(st.y, i))
		}
	}
}

func (g *graph) dotBody(t, i int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() { st.d1[i] = dotSeg(st.seg(st.p, i), st.seg(st.y, i)) }
}

func (g *graph) red1Body(t int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	gt := g.cp.base + t
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		pap := 0.0
		for _, v := range st.d1 {
			pap += v
		}
		if !(pap > 0) {
			g.fail(fmt.Errorf("cg: breakdown at iteration %d: pᵀAp = %g: %w", gt, pap, ErrNotSPD))
			st.alpha = 0
			st.alphas[gt] = 0
			return
		}
		st.alpha = st.rhoOld / pap
		st.alphas[gt] = st.alpha
	}
}

func (g *graph) updBody(t, i int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		x, r, y, p := st.seg(st.x, i), st.seg(st.r, i), st.seg(st.y, i), st.seg(st.p, i)
		a := st.alpha
		for k := range x {
			x[k] += a * p[k]
			r[k] -= a * y[k]
		}
		z := st.seg(st.z, i)
		if st.invdiag == nil {
			copy(z, r)
		} else {
			d := st.seg(st.invdiag, i)
			for k := range z {
				z[k] = r[k] * d[k]
			}
		}
	}
}

func (g *graph) dot2Body(t, i int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		r, z := st.seg(st.r, i), st.seg(st.z, i)
		st.d2[2*i] = dotSeg(z, r)
		st.d2[2*i+1] = dotSeg(r, r)
	}
}

func (g *graph) red2Body(t int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	gt := g.cp.base + t
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		rhoNew, res2 := 0.0, 0.0
		for k := 0; k < len(st.d2); k += 2 {
			rhoNew += st.d2[k]
			res2 += st.d2[k+1]
		}
		if st.rhoOld != 0 {
			st.beta = rhoNew / st.rhoOld
		} else {
			st.beta = 0
		}
		st.betas[gt] = st.beta
		st.relres[gt] = math.Sqrt(math.Max(res2, 0)) / st.bnorm
		st.rhoOld = rhoNew
	}
}

// pupdBody updates the search direction p = z + βp and rounds it through
// the next iteration's wire format, so every consumer — local or remote —
// reads the same bits the broadcast carried.
func (g *graph) pupdBody(t, i int) func() {
	st := g.st
	if st == nil {
		return nil
	}
	wire := g.cp.pwire[t+1]
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		p, z := st.seg(st.p, i), st.seg(st.z, i)
		b := st.beta
		for k := range p {
			p[k] = z[k] + b*p[k]
		}
		prec.Quantize(p, wire)
	}
}
