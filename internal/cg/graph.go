// Package cg implements the iterative solver backend: a Jacobi-
// preconditioned conjugate gradient on the tiled covariance matrix, with
// per-iteration precision switching. Every iteration is emitted as engine
// tasks — a tile-parallel SpMV chain per segment, FP64 dot-product
// reductions, and the vector updates — so communication links, scheduling
// policies, broadcast topologies, fault injection, the auditor and the
// parallel DES engine all apply to it unchanged. Iterations are grouped
// into fixed-size chunks; each chunk is one engine run, and convergence is
// checked deterministically at chunk boundaries on the virtual clock.
// See DESIGN.md §6i for the DAG shape and the precision-switch rule.
package cg

import (
	"fmt"
	"sync/atomic"

	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/tile"
)

// Task opcodes of one iteration, in dependency order.
const (
	opMV   = iota // y_i += A(i,j)·p_j — the SpMV chain, one task per tile
	opDot         // segment partial of pᵀy
	opRed1        // α = ρ/(pᵀy), broadcast
	opUpd         // x += αp, r -= αy, z = M⁻¹r
	opDot2        // segment partials of zᵀr and rᵀr
	opRed2        // β = ρ'/ρ and the residual check, broadcast
	opPupd        // p' = z + βp, broadcast at the next iteration's precision
)

// ids lays one chunk's tasks out iteration-major: nt² SpMV tasks, then the
// two reduction trees (nt+1 tasks each) and the 2·nt vector updates.
type ids struct {
	nt, iters int
	per       int // tasks per iteration: nt² + 4·nt + 2
	total     int
}

func newIDs(nt, iters int) ids {
	per := nt*nt + 4*nt + 2
	return ids{nt: nt, iters: iters, per: per, total: iters * per}
}

func (s ids) mv(t, i, j int) int { return t*s.per + i*s.nt + j }
func (s ids) dot(t, i int) int   { return t*s.per + s.nt*s.nt + i }
func (s ids) red1(t int) int     { return t*s.per + s.nt*s.nt + s.nt }
func (s ids) upd(t, i int) int   { return t*s.per + s.nt*s.nt + s.nt + 1 + i }
func (s ids) dot2(t, i int) int  { return t*s.per + s.nt*s.nt + 2*s.nt + 1 + i }
func (s ids) red2(t int) int     { return t*s.per + s.nt*s.nt + 3*s.nt + 1 }
func (s ids) pupd(t, i int) int  { return t*s.per + s.nt*s.nt + 3*s.nt + 2 + i }

// decode splits a task id into (op, t, i, j); i/j are -1 where unused.
func (s ids) decode(id int) (op, t, i, j int) {
	t = id / s.per
	rem := id % s.per
	switch {
	case rem < s.nt*s.nt:
		return opMV, t, rem / s.nt, rem % s.nt
	case rem < s.nt*s.nt+s.nt:
		return opDot, t, rem - s.nt*s.nt, -1
	case rem == s.nt*s.nt+s.nt:
		return opRed1, t, -1, -1
	case rem < s.nt*s.nt+2*s.nt+1:
		return opUpd, t, rem - s.nt*s.nt - s.nt - 1, -1
	case rem < s.nt*s.nt+3*s.nt+1:
		return opDot2, t, rem - s.nt*s.nt - 2*s.nt - 1, -1
	case rem == s.nt*s.nt+3*s.nt+1:
		return opRed2, t, -1, -1
	default:
		return opPupd, t, rem - s.nt*s.nt - 3*s.nt - 2, -1
	}
}

// chunkParams freezes one chunk's shape: the iteration count, each
// iteration's execution precision, and the wire format every p generation
// travels in (pwire[0] is the incoming vector's format — decided by the
// previous chunk's outgoing publish — and pwire[iters] the outgoing one).
type chunkParams struct {
	iters int
	base  int // global iteration index of local t=0 (labeling only)
	// precs[t] is iteration t's SpMV execution precision.
	precs []prec.Precision
	// pwire[t] is the wire element format of p(t); len iters+1.
	pwire []prec.Precision
}

// graph is the runtime.Graph of one chunk.
type graph struct {
	ids
	desc  tile.Desc
	maps  *precmap.Maps
	plat  *runtime.Platform
	strat solver.Strategy
	cp    chunkParams

	st *state // nil in phantom mode

	// err is shared (by pointer) across shard views: any rank's numeric
	// failure (CG breakdown) is the run's failure.
	err *atomic.Value

	rankSeen []int64 // scratch: per-rank visit stamps for RemoteRanks dedupe
	stamp    int64
}

// ShardView implements runtime.ShardableGraph: Spec mutates the
// rankSeen/stamp dedupe scratch, so each rank shard clones it; everything
// else is immutable or internally synchronized and shared.
func (g *graph) ShardView() runtime.Graph {
	v := *g
	v.rankSeen = make([]int64, g.plat.Ranks)
	v.stamp = 0
	return &v
}

func (g *graph) NumTasks() int { return g.total }

// Data ids: the nt² tile block first (dense, like cholesky), then the
// vector generations — p(t,·) for t∈[0,iters], the y accumulators,
// the (x,r,z) state bundles for t∈[-1,iters-1), and the scalar slots.
func (g *graph) tileID(i, j int) runtime.DataID {
	return runtime.DataID(int64(i)*int64(g.nt) + int64(j))
}

func (g *graph) vecBase() int64 { return int64(g.nt) * int64(g.nt) }

func (g *graph) pID(t, i int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64(t*g.nt+i))
}

func (g *graph) yID(t, i int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((g.iters+1)*g.nt) + int64(t*g.nt+i))
}

func (g *graph) stateID(t, i int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((2*g.iters+1)*g.nt) + int64((t+1)*g.nt+i))
}

func (g *graph) d1ID(t, i int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((3*g.iters+2)*g.nt) + int64(t*g.nt+i))
}

func (g *graph) d2ID(t, i int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((4*g.iters+2)*g.nt) + int64(t*g.nt+i))
}

func (g *graph) aID(t int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((5*g.iters+2)*g.nt) + int64(t))
}

func (g *graph) bID(t int) runtime.DataID {
	return runtime.DataID(g.vecBase() + int64((5*g.iters+2)*g.nt) + int64(g.iters+t))
}

// DataIDBound implements runtime.DataBounder, letting the engine index
// host availability densely.
func (g *graph) DataIDBound() int64 {
	return g.vecBase() + int64((5*g.iters+2)*g.nt) + int64(2*g.iters)
}

// mvTile returns the stored tile the SpMV step (i,j) reads: the lower tile
// (max,min), transposed when j > i (Σ is symmetric, lower stored).
func mvTile(i, j int) (a, b int, trans bool) {
	if j > i {
		return j, i, true
	}
	return i, j, false
}

// deviceOf is owner-computes placement, identical to the direct backend's:
// 2D block-cyclic ranks, round-robin over the rank's GPUs.
func (g *graph) deviceOf(i, j int) int {
	rank := g.desc.RankOf(i, j)
	local := 0
	if g.plat.DevPerRank > 1 {
		local = (i/g.desc.P + j/g.desc.Q) % g.plat.DevPerRank
	}
	return g.plat.DeviceOf(rank, local)
}

// mvDevice is the device of SpMV step (i,j): the owner of its tile.
func (g *graph) mvDevice(i, j int) int {
	a, b, _ := mvTile(i, j)
	return g.deviceOf(a, b)
}

// segDevice is the device owning segment i's vector state: the diagonal
// tile's owner.
func (g *graph) segDevice(i int) int { return g.deviceOf(i, i) }

func (g *graph) segDim(i int) int     { return g.desc.TileDim(i) }
func (g *graph) segBytes(i int) int64 { return int64(g.segDim(i)) * 8 }

// NumPredecessors implements runtime.Graph. Cross-iteration data flows
// (p, the state bundle) are covered transitively by the reduction chain —
// every task of iteration t+1 is downstream of RED2(t) — so only the
// direct release edges are counted.
func (g *graph) NumPredecessors(id int) int {
	op, t, _, j := g.decode(id)
	switch op {
	case opMV:
		n := 0
		if j > 0 {
			n++ // the chain predecessor MV(t,i,j-1)
		}
		if t > 0 {
			n++ // PUPD(t-1,j) produced p(t,j)
		}
		return n
	case opDot:
		return 1 // MV(t,i,nt-1)
	case opRed1:
		return g.nt // DOT(t,·)
	case opUpd:
		return 1 // RED1(t)
	case opDot2:
		return 1 // UPD(t,i)
	case opRed2:
		return g.nt // DOT2(t,·)
	default: // opPupd
		return 1 // RED2(t)
	}
}

// Successors implements runtime.Graph, mirroring NumPredecessors exactly.
func (g *graph) Successors(id int, buf []int) []int {
	op, t, i, j := g.decode(id)
	switch op {
	case opMV:
		if j < g.nt-1 {
			buf = append(buf, g.mv(t, i, j+1))
		} else {
			buf = append(buf, g.dot(t, i))
		}
	case opDot:
		buf = append(buf, g.red1(t))
	case opRed1:
		for k := 0; k < g.nt; k++ {
			buf = append(buf, g.upd(t, k))
		}
	case opUpd:
		buf = append(buf, g.dot2(t, i))
	case opDot2:
		buf = append(buf, g.red2(t))
	case opRed2:
		for k := 0; k < g.nt; k++ {
			buf = append(buf, g.pupd(t, k))
		}
	case opPupd:
		if t < g.iters-1 {
			for k := 0; k < g.nt; k++ {
				buf = append(buf, g.mv(t+1, k, i))
			}
		}
	}
	return buf
}

// InitialData implements runtime.Graph: every lower tile starts host-
// resident at its owning rank, the incoming search direction p(0,·) is
// host-resident at every rank that consumes it (its broadcast was charged
// by the previous chunk's final PUPD — or, for the first chunk, by the
// untimed setup phase, like the direct backend's matrix generation), and
// the (x,r,z) bundles sit at their segment's rank.
func (g *graph) InitialData(visit func(d runtime.DataID, rank int)) {
	for i := 0; i < g.nt; i++ {
		for j := 0; j <= i; j++ {
			visit(g.tileID(i, j), g.desc.RankOf(i, j))
		}
	}
	seen := make([]bool, g.plat.Ranks)
	for j := 0; j < g.nt; j++ {
		for r := range seen {
			seen[r] = false
		}
		// p(0,j) feeds the SpMV column j on every tile owner's rank, and
		// its own segment rank (DOT/UPD/PUPD).
		seen[g.plat.RankOfDevice(g.segDevice(j))] = true
		visit(g.pID(0, j), g.plat.RankOfDevice(g.segDevice(j)))
		for i := 0; i < g.nt; i++ {
			r := g.plat.RankOfDevice(g.mvDevice(i, j))
			if !seen[r] {
				seen[r] = true
				visit(g.pID(0, j), r)
			}
		}
		visit(g.stateID(-1, j), g.plat.RankOfDevice(g.segDevice(j)))
	}
}

// priority runs earlier iterations (and within one, earlier pipeline
// stages) first — the iteration chain is the critical path.
func (g *graph) priority(id int) int64 { return int64(g.total - id) }

// consumerSpread collects the distinct ranks (≠ the producer's) among the
// devices listed by visit — the broadcast targets of a publish. Appends to
// buf (pass a recycled slice to stay allocation-free).
func (g *graph) consumerSpread(buf []int, prodDev int, devs func(visit func(dev int))) []int {
	g.stamp++
	prodRank := g.plat.RankOfDevice(prodDev)
	//geompc:nolint hotalloc visitor callback never escapes devs; Go keeps non-escaping closures off the heap
	devs(func(dev int) {
		r := g.plat.RankOfDevice(dev)
		if r == prodRank {
			return
		}
		if g.rankSeen[r] != g.stamp {
			g.rankSeen[r] = g.stamp
			buf = append(buf, r)
		}
	})
	return buf
}

// reusePublish hands back the spec's recycled PublishSpec or a fresh one.
func reusePublish(s *runtime.TaskSpec) *runtime.PublishSpec {
	if p := s.Publish; p != nil {
		return p
	}
	return &runtime.PublishSpec{} //geompc:nolint hotalloc first fill of the spec slot; the TaskSpec recycles it on every later emit
}

// Spec implements runtime.Graph.
func (g *graph) Spec(id int, s *runtime.TaskSpec) {
	op, t, i, j := g.decode(id)
	switch op {
	case opMV:
		g.specMV(s, id, t, i, j)
		s.Body = g.mvBody(t, i, j)
	case opDot:
		s.Kind = hw.KindGemm
		s.Device = g.segDevice(i)
		s.Prec = prec.FP64
		s.Flops = 2 * float64(g.segDim(i))
		s.Priority = g.priority(id)
		s.Inputs = append(s.Inputs[:0],
			g.vecInput(g.pID(t, i), g.segDim(i), g.cp.pwire[t]),
			g.vecInput(g.yID(t, i), g.segDim(i), prec.FP64))
		s.Output = runtime.OutputSpec{Data: g.d1ID(t, i), Bytes: 8, Prec: prec.FP64}
		s.Publish = g.scalarPublish(s, s.Device, 0)
		s.Body = g.dotBody(t, i)
	case opRed1:
		//geompc:nolint hotalloc index-mapper callback never escapes specReduce; Go keeps non-escaping closures off the heap
		g.specReduce(s, id, g.aID(t), func(k int) runtime.DataID { return g.d1ID(t, k) })
		s.Body = g.red1Body(t)
	case opUpd:
		s.Kind = hw.KindGemm
		s.Device = g.segDevice(i)
		s.Prec = prec.FP64
		s.Flops = 5 * float64(g.segDim(i))
		s.Priority = g.priority(id)
		s.Inputs = append(s.Inputs[:0],
			g.vecInput(g.aID(t), 1, prec.FP64),
			g.vecInput(g.yID(t, i), g.segDim(i), prec.FP64),
			g.vecInput(g.stateID(t-1, i), 3*g.segDim(i), prec.FP64),
			g.vecInput(g.pID(t, i), g.segDim(i), g.cp.pwire[t]))
		s.Output = runtime.OutputSpec{Data: g.stateID(t, i), Bytes: 3 * g.segBytes(i), Prec: prec.FP64}
		s.Publish = nil
		s.Body = g.updBody(t, i)
	case opDot2:
		s.Kind = hw.KindGemm
		s.Device = g.segDevice(i)
		s.Prec = prec.FP64
		s.Flops = 4 * float64(g.segDim(i))
		s.Priority = g.priority(id)
		s.Inputs = append(s.Inputs[:0],
			g.vecInput(g.stateID(t, i), 3*g.segDim(i), prec.FP64))
		s.Output = runtime.OutputSpec{Data: g.d2ID(t, i), Bytes: 16, Prec: prec.FP64}
		s.Publish = g.scalarPublish(s, s.Device, 1)
		s.Body = g.dot2Body(t, i)
	case opRed2:
		//geompc:nolint hotalloc index-mapper callback never escapes specReduce; Go keeps non-escaping closures off the heap
		g.specReduce(s, id, g.bID(t), func(k int) runtime.DataID { return g.d2ID(t, k) })
		s.Body = g.red2Body(t)
	case opPupd:
		g.specPupd(s, id, t, i)
		s.Body = g.pupdBody(t, i)
	}
	s.ID = id
}

// specMV fills the spec of one SpMV chain step — the hot emit path of the
// CG inner loop: NT² of these per iteration, refilled allocation-free.
//
//geompc:hot
func (g *graph) specMV(s *runtime.TaskSpec, id, t, i, j int) {
	a, b, _ := mvTile(i, j)
	td := g.desc // value copy: binding the TileDim method would allocate its closure
	execFmt := prec.Wire(g.cp.precs[t])
	s.Kind = hw.KindGemm
	s.Device = g.deviceOf(a, b)
	s.Prec = g.cp.precs[t]
	s.Flops = 2 * float64(td.TileDim(i)) * float64(td.TileDim(j))
	s.Priority = g.priority(id)

	s.Inputs = s.Inputs[:0]
	// The stored tile, traveling at its storage wire format.
	tileWire := prec.Wire(g.maps.Storage[a][b])
	in := runtime.InputSpec{
		Data:      g.tileID(a, b),
		WireBytes: int64(td.TileDim(a)) * int64(td.TileDim(b)) * int64(tileWire.InputBytes()),
		WirePrec:  tileWire,
	}
	if tileWire != execFmt {
		in.ConvertElems = td.TileDim(a) * td.TileDim(b)
		in.ConvFrom, in.ConvTo = tileWire, execFmt
	}
	s.Inputs = append(s.Inputs, in)
	// The search direction segment, at its published wire format.
	pw := g.cp.pwire[t]
	in = runtime.InputSpec{
		Data:      g.pID(t, j),
		WireBytes: int64(td.TileDim(j)) * int64(pw.InputBytes()),
		WirePrec:  pw,
	}
	if pw != execFmt {
		in.ConvertElems = td.TileDim(j)
		in.ConvFrom, in.ConvTo = pw, execFmt
	}
	s.Inputs = append(s.Inputs, in)
	// The running accumulator, handed along the chain in FP64.
	if j > 0 {
		s.Inputs = append(s.Inputs, runtime.InputSpec{
			Data: g.yID(t, i), WireBytes: g.segBytes(i), WirePrec: prec.FP64,
		})
	}
	s.Output = runtime.OutputSpec{Data: g.yID(t, i), Bytes: g.segBytes(i), Prec: prec.FP64}

	// Publish the accumulator when the next chain step (or the closing
	// dot product) sits on another device.
	next := g.segDevice(i)
	if j < g.nt-1 {
		next = g.mvDevice(i, j+1)
	}
	if next == s.Device {
		s.Publish = nil
		return
	}
	pub := reusePublish(s)
	remote := pub.RemoteRanks[:0]
	if r := g.plat.RankOfDevice(next); r != g.plat.RankOfDevice(s.Device) {
		remote = append(remote, r)
	}
	*pub = runtime.PublishSpec{WireBytes: g.segBytes(i), WirePrec: prec.FP64, RemoteRanks: remote}
	s.Publish = pub
}

// specReduce fills a reduction root (RED1/RED2): it gathers one scalar
// slot per segment on device 0 and broadcasts the result to every segment
// owner.
func (g *graph) specReduce(s *runtime.TaskSpec, id int, out runtime.DataID, in func(k int) runtime.DataID) {
	s.Kind = hw.KindGemm
	s.Device = 0
	s.Prec = prec.FP64
	s.Flops = 2 * float64(g.nt)
	s.Priority = g.priority(id)
	s.Inputs = s.Inputs[:0]
	for k := 0; k < g.nt; k++ {
		s.Inputs = append(s.Inputs, runtime.InputSpec{Data: in(k), WireBytes: 16, WirePrec: prec.FP64})
	}
	s.Output = runtime.OutputSpec{Data: out, Bytes: 8, Prec: prec.FP64}
	pub := reusePublish(s)
	//geompc:nolint hotalloc device-enumerator callback never escapes consumerSpread; Go keeps non-escaping closures off the heap
	remote := g.consumerSpread(pub.RemoteRanks[:0], s.Device, func(visit func(dev int)) {
		for k := 0; k < g.nt; k++ {
			visit(g.segDevice(k))
		}
	})
	*pub = runtime.PublishSpec{WireBytes: 8, WirePrec: prec.FP64, RemoteRanks: remote}
	s.Publish = pub
}

// specPupd fills the direction update p' = z + βp, whose publish carries
// the next iteration's wire format: under Auto the producer down-casts
// once (STC) and every SpMV consumer reads the wire copy conversion-free;
// under ForceTTC the vector travels in FP64 and each consumer converts.
func (g *graph) specPupd(s *runtime.TaskSpec, id, t, i int) {
	s.Kind = hw.KindGemm
	s.Device = g.segDevice(i)
	s.Prec = prec.FP64
	s.Flops = 2 * float64(g.segDim(i))
	s.Priority = g.priority(id)
	s.Inputs = append(s.Inputs[:0],
		g.vecInput(g.bID(t), 1, prec.FP64),
		g.vecInput(g.stateID(t, i), 3*g.segDim(i), prec.FP64),
		g.vecInput(g.pID(t, i), g.segDim(i), g.cp.pwire[t]))
	s.Output = runtime.OutputSpec{Data: g.pID(t+1, i), Bytes: g.segBytes(i), Prec: prec.FP64}

	wire := g.cp.pwire[t+1]
	pub := reusePublish(s)
	//geompc:nolint hotalloc device-enumerator callback never escapes consumerSpread; Go keeps non-escaping closures off the heap
	remote := g.consumerSpread(pub.RemoteRanks[:0], s.Device, func(visit func(dev int)) {
		for k := 0; k < g.nt; k++ {
			visit(g.mvDevice(k, i))
		}
	})
	*pub = runtime.PublishSpec{
		WireBytes:   int64(g.segDim(i)) * int64(wire.InputBytes()),
		WirePrec:    wire,
		RemoteRanks: remote,
	}
	if g.strat != solver.ForceTTC && wire != prec.FP64 {
		pub.ConvertElems = g.segDim(i)
		pub.ConvFrom, pub.ConvTo = prec.FP64, wire
	}
	s.Publish = pub
}

// vecInput reads a vector-generation datum resident with its consumer's
// segment: dots and updates run in FP64 on the retained copy, so no
// receiver conversion is charged (the SpMV consumers are the ones that
// convert — see specMV).
func (g *graph) vecInput(d runtime.DataID, elems int, wire prec.Precision) runtime.InputSpec {
	return runtime.InputSpec{Data: d, WireBytes: int64(elems) * int64(wire.InputBytes()), WirePrec: wire}
}

// scalarPublish publishes a dot partial toward the reduction root on
// device 0; extra widens the payload (DOT2 ships two scalars).
func (g *graph) scalarPublish(s *runtime.TaskSpec, dev, extra int) *runtime.PublishSpec {
	pub := reusePublish(s)
	remote := pub.RemoteRanks[:0]
	if g.plat.RankOfDevice(dev) != g.plat.RankOfDevice(0) {
		remote = append(remote, g.plat.RankOfDevice(0))
	}
	*pub = runtime.PublishSpec{WireBytes: int64(8 * (1 + extra)), WirePrec: prec.FP64, RemoteRanks: remote}
	return pub
}

// fail records the first numeric failure (CG breakdown).
func (g *graph) fail(err error) { g.err.CompareAndSwap(nil, err) }

// Err returns the first numeric failure of the run, if any.
func (g *graph) Err() error {
	if v := g.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

var (
	_ runtime.Graph          = (*graph)(nil)
	_ runtime.ShardableGraph = (*graph)(nil)
)

// newGraph validates the chunk configuration and builds its task graph.
func newGraph(cfg solver.Config, cp chunkParams, st *state, err *atomic.Value) (*graph, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("cg: nil platform")
	}
	if cfg.Maps == nil {
		return nil, fmt.Errorf("cg: nil precision maps")
	}
	if cfg.Maps.NT != cfg.Desc.NT {
		return nil, fmt.Errorf("cg: precision map NT=%d does not match descriptor NT=%d", cfg.Maps.NT, cfg.Desc.NT)
	}
	g := &graph{
		ids:      newIDs(cfg.Desc.NT, cp.iters),
		desc:     cfg.Desc,
		maps:     cfg.Maps,
		plat:     cfg.Platform,
		strat:    cfg.Strategy,
		cp:       cp,
		st:       st,
		err:      err,
		rankSeen: make([]int64, cfg.Platform.Ranks),
	}
	return g, nil
}

// TaskName renders a chunk-local task id in the iteration notation, with
// iteration numbers offset by base (the chunk's first global iteration).
func TaskName(nt, iters, base, id int) string {
	s := newIDs(nt, iters)
	op, t, i, j := s.decode(id)
	t += base
	switch op {
	case opMV:
		return fmt.Sprintf("SPMV(%d,%d,%d)", t, i, j)
	case opDot:
		return fmt.Sprintf("DOT(%d,%d)", t, i)
	case opRed1:
		return fmt.Sprintf("ALPHA(%d)", t)
	case opUpd:
		return fmt.Sprintf("AXPY(%d,%d)", t, i)
	case opDot2:
		return fmt.Sprintf("RHO(%d,%d)", t, i)
	case opRed2:
		return fmt.Sprintf("BETA(%d)", t)
	default:
		return fmt.Sprintf("DIR(%d,%d)", t, i)
	}
}
