// Package stats provides the deterministic random-number generation and
// summary statistics used by the Monte-Carlo evaluation harness (§VII-B):
// seeded PCG streams, standard-normal sampling, and five-number/box-plot
// summaries of parameter-estimate distributions.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is a deterministic random source. All randomness in the repository
// flows through explicitly seeded RNGs so every experiment is reproducible.
type RNG struct {
	r *rand.Rand
	// cached second Box-Muller variate
	spare    float64
	hasSpare bool
}

// NewRNG returns a PCG-backed generator seeded with (seed, stream). Distinct
// streams are statistically independent, which the Monte-Carlo harness uses
// to give each replica its own stream.
func NewRNG(seed, stream uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, stream))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform integer in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Norm returns a standard-normal variate via the polar Box-Muller method.
func (g *RNG) Norm() float64 {
	if g.hasSpare {
		g.hasSpare = false
		return g.spare
	}
	for {
		u := 2*g.r.Float64() - 1
		v := 2*g.r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			g.spare = v * f
			g.hasSpare = true
			return u * f
		}
	}
}

// NormVec fills dst with independent standard-normal variates and returns it.
func (g *RNG) NormVec(dst []float64) []float64 {
	for i := range dst {
		dst[i] = g.Norm()
	}
	return dst
}

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Summary holds the descriptive statistics of a sample, including the
// five-number summary rendered by the paper's box plots (Figs 5–6).
type Summary struct {
	N               int
	Mean, Std       float64
	Min, Q1, Median float64
	Q3, Max         float64
	IQR             float64 // Q3 - Q1
	WhiskerLo       float64 // smallest value ≥ Q1 - 1.5·IQR
	WhiskerHi       float64 // largest value ≤ Q3 + 1.5·IQR
}

// Summarize computes a Summary of x. It panics on an empty sample.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		panic("stats: empty sample")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	n := len(s)

	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}

	sm := Summary{
		N: n, Mean: mean, Std: std,
		Min: s[0], Max: s[n-1],
		Q1: quantileSorted(s, 0.25), Median: quantileSorted(s, 0.5), Q3: quantileSorted(s, 0.75),
	}
	sm.IQR = sm.Q3 - sm.Q1
	lo, hi := sm.Q1-1.5*sm.IQR, sm.Q3+1.5*sm.IQR
	sm.WhiskerLo, sm.WhiskerHi = sm.Max, sm.Min
	for _, v := range s {
		if v >= lo && v < sm.WhiskerLo {
			sm.WhiskerLo = v
		}
		if v <= hi && v > sm.WhiskerHi {
			sm.WhiskerHi = v
		}
	}
	return sm
}

// quantileSorted returns the linearly interpolated q-quantile (type-7,
// the R/NumPy default) of the sorted sample s.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return s[n-1]
	}
	frac := h - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// Quantile returns the q-quantile of an unsorted sample.
func Quantile(x []float64, q float64) float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// MeanStd returns the sample mean and (n-1)-normalized standard deviation.
func MeanStd(x []float64) (mean, std float64) {
	sm := Summarize(x)
	return sm.Mean, sm.Std
}

// RMSE returns the root-mean-square error of estimates against truth.
func RMSE(estimates []float64, truth float64) float64 {
	if len(estimates) == 0 {
		return math.NaN()
	}
	var ss float64
	for _, v := range estimates {
		d := v - truth
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(estimates)))
}
