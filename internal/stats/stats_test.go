package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1, 2), NewRNG(1, 2)
	for i := 0; i < 100; i++ {
		if a.Norm() != b.Norm() || a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(1, 3)
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different streams produced identical output")
	}
}

func TestNormMoments(t *testing.T) {
	g := NewRNG(99, 0)
	n := 200000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := g.Norm()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	mean := sum / float64(n)
	vr := sum2/float64(n) - mean*mean
	skew := sum3 / float64(n)
	kurt := sum4 / float64(n)
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(vr-1) > 0.02 {
		t.Errorf("var = %g, want ~1", vr)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("skew = %g, want ~0", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("kurtosis = %g, want ~3", kurt)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("five-number summary wrong: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles: Q1=%g Q3=%g, want 2, 4", s.Q1, s.Q3)
	}
	if math.Abs(s.Mean-3) > 1e-15 {
		t.Errorf("mean = %g, want 3", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-15 {
		t.Errorf("std = %g, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 || s.Std != 0 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestWhiskers(t *testing.T) {
	// Outlier 100 must be excluded from the upper whisker.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	s := Summarize(x)
	if s.WhiskerHi == 100 {
		t.Error("outlier included in whisker")
	}
	if s.WhiskerLo != 1 {
		t.Errorf("WhiskerLo = %g, want 1", s.WhiskerLo)
	}
}

func TestSummaryInvariants(t *testing.T) {
	g := NewRNG(5, 5)
	if err := quick.Check(func(seed uint64) bool {
		n := 1 + int(seed%50)
		x := make([]float64, n)
		for i := range x {
			x[i] = g.Norm() * 10
		}
		s := Summarize(x)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		whisker := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		meanIn := s.Mean >= s.Min && s.Mean <= s.Max
		return ordered && whisker && meanIn && s.IQR >= 0
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(x, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(x, 0.5); math.Abs(got-2.5) > 1e-15 {
		t.Errorf("median = %g, want 2.5", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 3}, 2); math.Abs(got-1) > 1e-15 {
		t.Errorf("RMSE = %g, want 1", got)
	}
	if got := RMSE([]float64{2, 2}, 2); got != 0 {
		t.Errorf("RMSE = %g, want 0", got)
	}
	if !math.IsNaN(RMSE(nil, 0)) {
		t.Error("RMSE(nil) should be NaN")
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(11, 0)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
