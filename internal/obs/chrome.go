package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event object (the "JSON Array Format" of
// the Trace Event specification, understood by chrome://tracing and
// Perfetto). Durations and timestamps are microseconds.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cname string         `json:"cname,omitempty"`
	Scope string         `json:"s,omitempty"` // instant-event scope ("t"/"p"/"g")
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object format.
type chromeFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Trace accumulates trace events for one run. Process/thread naming follows
// the convention used throughout this repo: one pid per simulated device (or
// NIC), one tid per stream within it.
type Trace struct {
	events []TraceEvent
	meta   map[string]any
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{meta: make(map[string]any)}
}

// SetMeta attaches a key to the file's otherData section (run parameters,
// config labels, digests).
func (t *Trace) SetMeta(key string, v any) { t.meta[key] = v }

// SetProcessName names a pid row ("dev0 (V100)", "rank0 NIC").
func (t *Trace) SetProcessName(pid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// SetThreadName names a tid row within a pid ("compute", "H2D", "D2H").
func (t *Trace) SetThreadName(pid, tid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Span appends a complete ("X") event covering [startSec, endSec), given in
// seconds and converted to the format's microseconds. cname selects one of
// the trace viewer's reserved color names ("" for the default palette);
// args may be nil.
func (t *Trace) Span(pid, tid int, name string, startSec, endSec float64, cname string, args map[string]any) {
	dur := (endSec - startSec) * 1e6
	if dur < 0 {
		dur = 0
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "X", TS: startSec * 1e6, Dur: dur,
		PID: pid, TID: tid, Cname: cname, Args: args,
	})
}

// Instant appends an instant ("i") event: a zero-duration marker rendered
// by the viewer as a vertical tick (used for injected fault times). Scope
// "t" pins the marker to its thread row.
func (t *Trace) Instant(pid, tid int, name string, atSec float64, args map[string]any) {
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "i", TS: atSec * 1e6, PID: pid, TID: tid,
		Scope: "t", Args: args,
	})
}

// CounterSample appends a counter ("C") event, rendered by the viewer as a
// stacked area chart (used for power traces).
func (t *Trace) CounterSample(pid int, name string, atSec float64, series map[string]float64) {
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "C", TS: atSec * 1e6, PID: pid, Args: args,
	})
}

// Len returns the number of accumulated events (metadata included).
func (t *Trace) Len() int { return len(t.events) }

// WriteJSON renders the trace as a Chrome trace-event JSON object. Events
// are sorted by (ts, pid, tid) with metadata first, so output is
// deterministic for a deterministic run.
func (t *Trace) WriteJSON(w io.Writer) error {
	evs := append([]TraceEvent(nil), t.events...)
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Phase == "M", evs[j].Phase == "M"
		if mi != mj {
			return mi
		}
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		if evs[i].PID != evs[j].PID {
			return evs[i].PID < evs[j].PID
		}
		return evs[i].TID < evs[j].TID
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData:       t.meta,
	})
}

// PrecisionColor maps a precision name to a reserved trace-viewer color so
// timeline rows read at a glance: heavy FP64 work is dark, half-precision
// work is light.
func PrecisionColor(prec string) string {
	switch prec {
	case "FP64":
		return "thread_state_uninterruptible" // dark red
	case "FP32":
		return "thread_state_iowait" // orange
	case "TF32", "BF16_32":
		return "thread_state_runnable" // blue
	case "FP16_32":
		return "thread_state_running" // green
	case "FP16":
		return "light_memory_dump" // pale
	default:
		return ""
	}
}
