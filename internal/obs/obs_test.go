package obs

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/count").Add(3)
	r.Counter("b/count").Inc()
	r.Gauge("a/gauge").Set(2.5)
	r.Gauge("a/gauge").SetMax(1.0) // must not lower
	h := r.Histogram("c/hist", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)

	if got := r.Counter("b/count").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := r.Gauge("a/gauge").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	if h.Count() != 3 || h.Sum() != 5050.5 {
		t.Errorf("hist count=%d sum=%g", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	if len(counts) != 4 || counts[0] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Errorf("bucket counts %v", counts)
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "b/count") || !strings.Contains(sb.String(), "count=3") {
		t.Errorf("rendered registry missing entries:\n%s", sb.String())
	}

	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Error("reset left metrics behind")
	}
}

func TestRegistryConcurrentSafe(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").SetMax(float64(j))
				r.Histogram("h", []float64{10}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("n").Value() != 800 {
		t.Errorf("concurrent counter = %d, want 800", r.Counter("n").Value())
	}
	if r.Histogram("h", nil).Count() != 800 {
		t.Errorf("concurrent hist count = %d", r.Histogram("h", nil).Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	if len(b) != 4 {
		t.Fatalf("got %d buckets", len(b))
	}
	for i := range b {
		if math.Abs(b[i]-want[i])/want[i] > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil {
		t.Error("invalid bucket parameters accepted")
	}
}

func TestDigestMatchesStdlibFNV(t *testing.T) {
	// Our incremental digest must agree with hash/fnv over the same bytes.
	d := NewDigest()
	d.WriteString("schedule")
	ref := fnv.New64a()
	ref.Write([]byte("schedule"))
	if d.Sum() != ref.Sum64() {
		t.Errorf("digest %x != stdlib fnv %x", d.Sum(), ref.Sum64())
	}

	d2 := NewDigest()
	d2.WriteUint64(0x0123456789abcdef)
	ref2 := fnv.New64a()
	ref2.Write([]byte{0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01})
	if d2.Sum() != ref2.Sum64() {
		t.Errorf("uint64 digest %x != stdlib %x", d2.Sum(), ref2.Sum64())
	}
}

func TestDigestSensitivity(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	a.WriteFloat64(1.0)
	b.WriteFloat64(math.Nextafter(1.0, 2.0))
	if a.Sum() == b.Sum() {
		t.Error("one-ULP difference not detected")
	}
	var zero Digest // zero value must behave like NewDigest
	zero.WriteInt64(7)
	fresh := NewDigest()
	fresh.WriteInt64(7)
	if zero.Sum() != fresh.Sum() {
		t.Error("zero-value digest differs from NewDigest")
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTrace()
	tr.SetMeta("config", "test")
	tr.SetProcessName(0, "dev0 (V100)")
	tr.SetThreadName(0, 0, "compute")
	tr.SetThreadName(0, 1, "H2D")
	tr.Span(0, 0, "GEMM(1,0,0)", 0.001, 0.002, PrecisionColor("FP16_32"), map[string]any{"prec": "FP16_32"})
	tr.Span(0, 1, "H2D 32 MiB", 0.0005, 0.0015, "", nil)
	tr.CounterSample(0, "power", 0.001, map[string]float64{"W": 250})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	if parsed.OtherData["config"] != "test" {
		t.Errorf("otherData missing: %v", parsed.OtherData)
	}
	var spans, meta int
	for _, e := range parsed.TraceEvents {
		switch e.Phase {
		case "X":
			spans++
			if e.Name == "GEMM(1,0,0)" {
				if math.Abs(e.TS-1000) > 1e-9 || math.Abs(e.Dur-1000) > 1e-9 {
					t.Errorf("span ts/dur = %g/%g µs, want 1000/1000", e.TS, e.Dur)
				}
			}
		case "M":
			meta++
		}
	}
	if spans != 2 || meta != 3 {
		t.Errorf("got %d spans, %d metadata events", spans, meta)
	}
	// Metadata must precede spans after sorting.
	if parsed.TraceEvents[0].Phase != "M" {
		t.Error("metadata events not first")
	}
}

func TestRegistryMerge(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c").Add(2)
	dst.Gauge("g").Set(1.5)
	dst.Histogram("h", []float64{1, 10}).Observe(0.5)

	src := NewRegistry()
	src.Counter("c").Add(3)
	src.Counter("c2").Add(7)
	src.Gauge("g").Set(2.5)
	src.Gauge("g2").Set(4)
	sh := src.Histogram("h", []float64{1, 10})
	sh.Observe(5)
	sh.Observe(500)
	src.Histogram("h2", []float64{2, 4}).Observe(3)

	dst.Merge(src)
	if got := dst.Counter("c").Value(); got != 5 {
		t.Errorf("merged counter c = %d, want 5", got)
	}
	if got := dst.Counter("c2").Value(); got != 7 {
		t.Errorf("merged counter c2 = %d, want 7", got)
	}
	if got := dst.Gauge("g").Value(); got != 4 {
		t.Errorf("merged gauge g = %g, want 4 (gauges add)", got)
	}
	if got := dst.Gauge("g2").Value(); got != 4 {
		t.Errorf("merged gauge g2 = %g, want 4", got)
	}
	h := dst.Histogram("h", []float64{1, 10})
	if h.Count() != 3 || h.Sum() != 505.5 {
		t.Errorf("merged histogram h: count=%d sum=%g, want 3/505.5", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("merged bucket counts = %v, want [1 1 1]", counts)
	}
	h2 := dst.Histogram("h2", []float64{2, 4})
	if h2.Count() != 1 || h2.Sum() != 3 {
		t.Errorf("merged new histogram h2: count=%d sum=%g", h2.Count(), h2.Sum())
	}

	// Merging nil or self must be a no-op.
	dst.Merge(nil)
	dst.Merge(dst)
	if got := dst.Counter("c").Value(); got != 5 {
		t.Errorf("counter after nil/self merge = %d, want 5", got)
	}
}

// TestRegistryMergeBoundsMismatch: a histogram merged under different bucket
// bounds keeps its summaries exact and folds the foreign buckets into +Inf.
func TestRegistryMergeBoundsMismatch(t *testing.T) {
	dst := NewRegistry()
	dh := dst.Histogram("h", []float64{1, 10})
	dh.Observe(0.5)
	src := NewRegistry()
	src.Histogram("h", []float64{100}).Observe(50)

	dst.Merge(src)
	if dh.Count() != 2 || dh.Sum() != 50.5 {
		t.Errorf("count=%d sum=%g, want 2/50.5", dh.Count(), dh.Sum())
	}
	_, counts := dh.Buckets()
	if counts[len(counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1 (foreign-bounds fold)", counts[len(counts)-1])
	}
}

// TestRegistryMergeDeterministic: merging the same shards in the same order
// yields bit-identical snapshots — the sweep executor's guarantee.
func TestRegistryMergeDeterministic(t *testing.T) {
	shard := func(i int) *Registry {
		r := NewRegistry()
		r.Counter("tasks").Add(int64(i))
		r.Gauge("busy").Add(0.1 * float64(i))
		r.Histogram("lat", []float64{1e-3, 1}).Observe(float64(i))
		return r
	}
	render := func() string {
		m := NewRegistry()
		for i := 0; i < 8; i++ {
			m.Merge(shard(i))
		}
		var sb strings.Builder
		if _, err := m.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two identical merge sequences rendered differently:\n%s\n---\n%s", a, b)
	}
}
