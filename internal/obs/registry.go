package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Add increments the gauge by v.
func (g *Gauge) Add(v float64) {
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into fixed upper-bound buckets plus
// count/sum/min/max summaries. Buckets are cumulative-style upper bounds;
// observations above the last bound land in an implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns the bucket upper bounds and per-bucket counts (the last
// count covers +Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...)
}

// MetricKind discriminates Snapshot entries.
type MetricKind int

// Snapshot entry kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// Metric is one Snapshot entry. For histograms, Value holds the sum and
// Count the number of observations.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value float64
	Count int64
}

// Registry is a deterministic, goroutine-safe collection of named metrics.
// Metrics are created on first use; snapshots iterate in sorted name order
// so rendered output is reproducible.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (bounds are ignored on later calls).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of src into r: counters and gauges add, and
// histograms with identical bucket bounds add bucket-wise (count, sum, min
// and max fold alongside; histograms whose bounds differ fold their
// summaries and drop src's bucket counts into r's +Inf bucket). Merging is
// the sweep executor's aggregation primitive — per-point registry shards
// fold into one merged registry in submission order, so repeated merges of
// the same shards in the same order produce bit-identical snapshots.
// Merge locks src before r is touched; do not call a.Merge(b) and
// b.Merge(a) concurrently.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	// Snapshot src's contents first (names sorted, values copied) so no two
	// registry locks are ever held at once.
	type histCopy struct {
		name   string
		bounds []float64
		counts []int64
		count  int64
		sum    float64
		min    float64
		max    float64
	}
	var (
		counterNames, gaugeNames []string
		counterVals              []int64
		gaugeVals                []float64
		hists                    []histCopy
	)
	src.mu.Lock()
	for name := range src.counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		counterVals = append(counterVals, src.counters[name].Value())
	}
	for name := range src.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		gaugeVals = append(gaugeVals, src.gauges[name].Value())
	}
	var histNames []string
	for name := range src.hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := src.hists[name]
		h.mu.Lock()
		hists = append(hists, histCopy{
			name:   name,
			bounds: append([]float64(nil), h.bounds...),
			counts: append([]int64(nil), h.counts...),
			count:  h.count, sum: h.sum, min: h.min, max: h.max,
		})
		h.mu.Unlock()
	}
	src.mu.Unlock()

	for i, name := range counterNames {
		if counterVals[i] != 0 {
			r.Counter(name).Add(counterVals[i])
		}
	}
	for i, name := range gaugeNames {
		r.Gauge(name).Add(gaugeVals[i])
	}
	for _, hc := range hists {
		r.Histogram(hc.name, hc.bounds).merge(hc.bounds, hc.counts, hc.count, hc.sum, hc.min, hc.max)
	}
}

// merge folds a copied histogram state into h (see Registry.Merge).
func (h *Histogram) merge(bounds []float64, counts []int64, count int64, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(bounds) == len(h.bounds) {
		same := true
		for i := range bounds {
			if bounds[i] != h.bounds[i] {
				same = false
				break
			}
		}
		if same {
			for i := range counts {
				h.counts[i] += counts[i]
			}
		} else {
			for _, c := range counts {
				h.counts[len(h.counts)-1] += c
			}
		}
	} else {
		for _, c := range counts {
			h.counts[len(h.counts)-1] += c
		}
	}
	if count > 0 {
		if h.count == 0 || min < h.min {
			h.min = min
		}
		if h.count == 0 || max > h.max {
			h.max = max
		}
		h.count += count
		h.sum += sum
	}
}

// Reset drops every metric (used between engine runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Snapshot returns every metric, sorted by name (counters and gauges first
// by name, histograms interleaved by name as well).
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Kind: KindCounter, Value: float64(c.Value()), Count: c.Value()})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Kind: KindGauge, Value: g.Value()})
	}
	for n, h := range r.hists {
		out = append(out, Metric{Name: n, Kind: KindHistogram, Value: h.Sum(), Count: h.Count()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTo renders the registry as aligned "name value" text lines in sorted
// order, implementing io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, m := range r.Snapshot() {
		var line string
		switch m.Kind {
		case KindCounter:
			line = fmt.Sprintf("%-44s %d\n", m.Name, m.Count)
		case KindGauge:
			line = fmt.Sprintf("%-44s %g\n", m.Name, m.Value)
		case KindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Value / float64(m.Count)
			}
			line = fmt.Sprintf("%-44s count=%d sum=%g mean=%g\n", m.Name, m.Count, m.Value, mean)
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at lo
// with the given growth factor — the usual shape for durations and sizes.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if n <= 0 || lo <= 0 || factor <= 1 || math.IsInf(lo, 0) {
		return nil
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
