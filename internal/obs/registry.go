package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// SetMax stores v if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Add increments the gauge by v.
func (g *Gauge) Add(v float64) {
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into fixed upper-bound buckets plus
// count/sum/min/max summaries. Buckets are cumulative-style upper bounds;
// observations above the last bound land in an implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets returns the bucket upper bounds and per-bucket counts (the last
// count covers +Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]int64(nil), h.counts...)
}

// MetricKind discriminates Snapshot entries.
type MetricKind int

// Snapshot entry kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// Metric is one Snapshot entry. For histograms, Value holds the sum and
// Count the number of observations.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value float64
	Count int64
}

// Registry is a deterministic, goroutine-safe collection of named metrics.
// Metrics are created on first use; snapshots iterate in sorted name order
// so rendered output is reproducible.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (bounds are ignored on later calls).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset drops every metric (used between engine runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Snapshot returns every metric, sorted by name (counters and gauges first
// by name, histograms interleaved by name as well).
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Kind: KindCounter, Value: float64(c.Value()), Count: c.Value()})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Kind: KindGauge, Value: g.Value()})
	}
	for n, h := range r.hists {
		out = append(out, Metric{Name: n, Kind: KindHistogram, Value: h.Sum(), Count: h.Count()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTo renders the registry as aligned "name value" text lines in sorted
// order, implementing io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, m := range r.Snapshot() {
		var line string
		switch m.Kind {
		case KindCounter:
			line = fmt.Sprintf("%-44s %d\n", m.Name, m.Count)
		case KindGauge:
			line = fmt.Sprintf("%-44s %g\n", m.Name, m.Value)
		case KindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Value / float64(m.Count)
			}
			line = fmt.Sprintf("%-44s count=%d sum=%g mean=%g\n", m.Name, m.Count, m.Value, mean)
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at lo
// with the given growth factor — the usual shape for durations and sizes.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if n <= 0 || lo <= 0 || factor <= 1 || math.IsInf(lo, 0) {
		return nil
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
