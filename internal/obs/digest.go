package obs

import "math"

// Digest is an FNV-1a 64-bit hash accumulator over a run's schedule. The
// engine feeds it one record per committed task — (kind, device, start, end,
// bytes) — so two runs with equal digests placed the same work on the same
// devices at the same virtual times. Task ids are deliberately *not* hashed:
// the PTG and DTD front-ends number the same tasks differently, and the
// digest exists to prove their schedules identical.
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns a digest at the FNV-1a offset basis.
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// Sum returns the current hash value.
func (d *Digest) Sum() uint64 {
	if d.h == 0 {
		return fnvOffset64 // zero value behaves like NewDigest()
	}
	return d.h
}

// WriteUint64 hashes v little-endian, byte by byte.
//
//geompc:hot
func (d *Digest) WriteUint64(v uint64) {
	h := d.h
	if h == 0 {
		h = fnvOffset64
	}
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.h = h
}

// WriteInt64 hashes v as its two's-complement bits.
func (d *Digest) WriteInt64(v int64) { d.WriteUint64(uint64(v)) }

// WriteFloat64 hashes the IEEE-754 bit pattern of v, so the digest is
// bit-exact: two schedules differing by one ULP anywhere hash differently.
func (d *Digest) WriteFloat64(v float64) { d.WriteUint64(math.Float64bits(v)) }

// WriteString hashes the raw bytes of s.
//
//geompc:hot
func (d *Digest) WriteString(s string) {
	h := d.h
	if h == 0 {
		h = fnvOffset64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	d.h = h
}
