// Package obs is the runtime observability layer: a typed metrics registry
// (counters, gauges, histograms), a Chrome trace-event exporter readable by
// chrome://tracing and Perfetto, and an FNV-1a schedule digest used to prove
// bit-identical schedules across GOMAXPROCS settings and across the PTG and
// DTD front-ends.
//
// The package is deliberately zero-dependency (standard library only) and
// knows nothing about the engine: internal/runtime populates a Registry
// during commit/complete/publish and renders its interval traces through
// Trace, so every consumer — the CLIs, the benches, the tests — reads run
// behaviour through one vocabulary instead of poking at engine internals.
package obs
