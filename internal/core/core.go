// Package core is the library's public face: it assembles the substrate
// packages into the workflow of the paper — generate or load geospatial
// data, fit a Gaussian-process model with the adaptive mixed-precision
// Cholesky under a required accuracy, predict at new locations, and project
// the performance/energy of a factorization on a chosen GPU machine.
//
// The three central ideas it exposes map directly to the paper's sections:
//
//   - adaptive tile precision via the Higham–Mary rule (§V) — Options.UReq;
//   - the automated STC/TTC conversion strategy (§VI) — Options.ForceTTC
//     toggles the baseline for comparison;
//   - calibrated GPU simulation (§IV, §VII) — Machine selects V100/A100/
//     H100 platforms and scales to multi-node Summit runs.
package core

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/mle"
	"geompc/internal/optimize"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// Re-exported kernel constructors.

// SqExp2D returns the 2D squared-exponential covariance (θ = σ², β).
func SqExp2D() geo.Kernel { return geo.SqExp{Dimension: 2} }

// SqExp3D returns the 3D squared-exponential covariance (θ = σ², β).
func SqExp3D() geo.Kernel { return geo.SqExp{Dimension: 3} }

// Matern2D returns the 2D Matérn covariance (θ = σ², β, ν).
func Matern2D() geo.Kernel { return geo.Matern{Dimension: 2} }

// Machine selects the simulated hardware.
type Machine struct {
	Node  *hw.NodeSpec
	Ranks int // number of processes (nodes)
	GPUs  int // GPUs per rank (0 = all of the node's)
}

// OneV100 is a single Summit V100; the paper's default single-GPU target.
func OneV100() Machine { return Machine{Node: hw.SummitNode, Ranks: 1, GPUs: 1} }

// OneA100 is a single Guyot A100.
func OneA100() Machine { return Machine{Node: hw.GuyotNode, Ranks: 1, GPUs: 1} }

// OneH100 is a single Haxane H100.
func OneH100() Machine { return Machine{Node: hw.HaxaneNode, Ranks: 1, GPUs: 1} }

// Summit returns `nodes` Summit nodes with all 6 GPUs each.
func Summit(nodes int) Machine { return Machine{Node: hw.SummitNode, Ranks: nodes} }

// Platform realizes the runtime platform.
func (m Machine) Platform() (*runtime.Platform, error) {
	n := m.Node
	if n == nil {
		n = hw.SummitNode
	}
	r := m.Ranks
	if r == 0 {
		r = 1
	}
	return runtime.NewPlatform(n, r, m.GPUs)
}

// Options tunes a fit or a factorization.
type Options struct {
	// UReq is the application-required accuracy driving the tile precision
	// map (paper: 1e-4 for 2D-sqexp, 1e-9 for 2D-Matérn, 1e-8 for
	// 3D-sqexp). 0 disables mixed precision (exact FP64).
	UReq float64
	// TileSize (default 64 for numeric runs; the paper uses 2048 on GPUs).
	TileSize int
	// ForceTTC disables the automated sender-side conversion, always
	// converting at the receiver — the baseline of Fig 8.
	ForceTTC bool
	// Machine to simulate on (default one V100).
	Machine Machine
	// Nugget regularizes the covariance diagonal (default 1e-8).
	Nugget float64
	// MaxEvals bounds likelihood evaluations during fitting (default 600).
	MaxEvals int
}

func (o Options) strategy() cholesky.Strategy {
	if o.ForceTTC {
		return cholesky.ForceTTC
	}
	return cholesky.Auto
}

func (o Options) nugget() float64 {
	if o.Nugget == 0 {
		return 1e-8
	}
	return o.Nugget
}

func (o Options) tileSize() int {
	if o.TileSize <= 0 {
		return 64
	}
	return o.TileSize
}

// Dataset is a set of observed locations and values.
type Dataset struct {
	Locs   []geo.Point
	Z      []float64
	Kernel geo.Kernel
}

// GenerateDataset draws a synthetic Gaussian random field of n locations in
// dim dimensions from kernel at theta — the Monte-Carlo data generator of
// §VII-B. The seed makes the dataset reproducible.
func GenerateDataset(n, dim int, kernel geo.Kernel, theta []float64, seed uint64) (*Dataset, error) {
	if len(theta) != kernel.NumParams() {
		return nil, fmt.Errorf("core: kernel %s needs %d parameters, got %d",
			kernel.Name(), kernel.NumParams(), len(theta))
	}
	rng := stats.NewRNG(seed, 0)
	locs := geo.GenerateLocations(n, dim, rng)
	z, err := geo.SimulateField(locs, kernel, theta, 1e-8, rng)
	if err != nil {
		return nil, err
	}
	return &Dataset{Locs: locs, Z: z, Kernel: kernel}, nil
}

// FitReport is the outcome of Fit: the estimates plus the simulated cost of
// obtaining them.
type FitReport struct {
	Theta      []float64
	ParamNames []string
	NegLogLik  float64
	Converged  bool

	// Simulated execution totals across all likelihood evaluations.
	Evaluations int
	Time        float64 // seconds of simulated machine time
	Energy      float64 // joules
	GflopsPerW  float64
	BytesH2D    int64
	BytesNet    int64
}

// Fit estimates the kernel parameters of ds by maximum likelihood using the
// adaptive mixed-precision Cholesky.
func Fit(ds *Dataset, opts Options) (*FitReport, error) {
	plat, err := opts.Machine.Platform()
	if err != nil {
		return nil, err
	}
	p := &mle.Problem{
		Locs: ds.Locs, Z: ds.Z, Kernel: ds.Kernel,
		Nugget:   opts.nugget(),
		TileSize: opts.tileSize(),
		UReq:     opts.UReq,
		Platform: plat,
		Strategy: opts.strategy(),
	}
	start, lo, hi := mle.DefaultBounds(ds.Kernel.NumParams())
	maxEvals := opts.MaxEvals
	if maxEvals <= 0 {
		maxEvals = 600
	}
	fit, err := mle.Fit(p, start, lo, hi, optimize.Options{Tol: 1e-9, MaxEvals: maxEvals})
	if err != nil {
		return nil, err
	}
	rep := &FitReport{
		Theta:       fit.Theta,
		ParamNames:  ds.Kernel.ParamNames(),
		NegLogLik:   fit.NegLogLik,
		Converged:   fit.Converged,
		Evaluations: fit.Stats.Evaluations,
		Time:        fit.Stats.Time,
		Energy:      fit.Stats.Energy,
		BytesH2D:    fit.Stats.BytesH2D,
		BytesNet:    fit.Stats.BytesNet,
	}
	if fit.Stats.Energy > 0 {
		rep.GflopsPerW = fit.Stats.Flops / 1e9 / fit.Stats.Energy
	}
	return rep, nil
}

// Predict computes the conditional mean of the fitted field at targets.
func Predict(ds *Dataset, theta []float64, targets []geo.Point, opts Options) ([]float64, error) {
	p := &mle.Problem{Locs: ds.Locs, Z: ds.Z, Kernel: ds.Kernel, Nugget: opts.nugget()}
	return mle.Predict(p, theta, targets)
}

// Projection reports the simulated execution of one factorization.
type Projection struct {
	N           int
	Gflops      float64
	Time        float64
	Energy      float64
	GflopsPerW  float64
	AvgPower    float64
	BytesH2D    int64
	BytesNet    int64
	STCTasks    int
	CommTasks   int
	TilesByPrec map[prec.Precision]int
}

// ProjectFactorization simulates (phantom mode) one adaptive MP Cholesky of
// an n×n covariance built from kernel/theta on the configured machine, with
// sampled tile norms — the tool behind the paper's performance figures.
func ProjectFactorization(n int, kernel geo.Kernel, theta []float64, opts Options, seed uint64) (*Projection, error) {
	plat, err := opts.Machine.Platform()
	if err != nil {
		return nil, err
	}
	ts := opts.TileSize
	if ts <= 0 {
		ts = 2048
	}
	pg, qg := tile.SquarestGrid(plat.Ranks)
	desc, err := tile.NewDesc(n, ts, pg, qg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, 1)
	locs := geo.GenerateLocations(n, kernel.Dim(), rng)
	var km [][]prec.Precision
	if opts.UReq > 0 {
		normFn, global := precmap.EstimateTileNorms(locs, desc, kernel, theta, opts.nugget(), 128, rng)
		km = precmap.NewKernelMap(desc.NT, normFn, global, opts.UReq, prec.CholeskySet)
	} else {
		km = precmap.UniformAll(desc.NT, prec.FP64)
	}
	maps := precmap.New(km, opts.UReq)
	res, err := cholesky.Run(cholesky.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: opts.strategy(),
	})
	if err != nil {
		return nil, err
	}
	return &Projection{
		N:           n,
		Gflops:      res.Stats.Flops / 1e9,
		Time:        res.Stats.Makespan,
		Energy:      res.Stats.Energy,
		GflopsPerW:  res.Stats.TotalFlops / 1e9 / res.Stats.Energy,
		AvgPower:    res.Stats.AvgPower,
		BytesH2D:    res.Stats.BytesH2D,
		BytesNet:    res.Stats.BytesNet,
		STCTasks:    res.STCTasks,
		CommTasks:   res.CommTasks,
		TilesByPrec: maps.Counts(),
	}, nil
}
