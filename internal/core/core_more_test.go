package core

import (
	"math"
	"testing"

	"geompc/internal/geo"
)

func TestFitMaternEndToEnd(t *testing.T) {
	truth := []float64{1.0, 0.1, 0.5}
	ds, err := GenerateDataset(196, 2, Matern2D(), truth, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(ds, Options{UReq: 1e-9, TileSize: 49, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Theta) != 3 || rep.ParamNames[2] != "nu" {
		t.Fatalf("Matern fit malformed: %+v", rep)
	}
	// Smoothness is the best-identified Matérn parameter at small n.
	if math.Abs(rep.Theta[2]-0.5) > 0.3 {
		t.Errorf("nu estimate %g far from 0.5", rep.Theta[2])
	}
}

func TestProjectFactorizationValidation(t *testing.T) {
	if _, err := ProjectFactorization(0, SqExp2D(), []float64{1, 0.1}, Options{}, 1); err == nil {
		t.Error("n=0 accepted")
	}
	bad := Options{Machine: Machine{Ranks: -1}}
	if _, err := ProjectFactorization(4096, SqExp2D(), []float64{1, 0.1}, bad, 1); err == nil {
		t.Error("negative ranks accepted")
	}
}

func TestProjectFactorizationSTCCounting(t *testing.T) {
	// A strongly-decaying kernel at loose accuracy yields STC somewhere.
	proj, err := ProjectFactorization(65536, SqExp2D(), []float64{1, 0.01},
		Options{UReq: 1e-2, TileSize: 2048, Machine: OneV100()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if proj.CommTasks == 0 {
		t.Fatal("no communication-issuing tasks counted")
	}
	if proj.STCTasks < 0 || proj.STCTasks > proj.CommTasks {
		t.Errorf("STC count %d outside [0,%d]", proj.STCTasks, proj.CommTasks)
	}
}

func TestMultiGPUProjectionScales(t *testing.T) {
	one, err := ProjectFactorization(65536, SqExp2D(), []float64{1, 0.1},
		Options{TileSize: 2048, Machine: OneV100()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	node, err := ProjectFactorization(65536, SqExp2D(), []float64{1, 0.1},
		Options{TileSize: 2048, Machine: Summit(1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if node.Time >= one.Time {
		t.Errorf("6 GPUs (%.3fs) not faster than 1 (%.3fs)", node.Time, one.Time)
	}
	if node.Gflops < 3*one.Gflops {
		t.Errorf("node speedup %.2fx below 3x", node.Gflops/one.Gflops)
	}
}

func TestPredictAtDistanceApproachesMean(t *testing.T) {
	// Kriging far from every observation approaches the process mean (0).
	ds, err := GenerateDataset(64, 2, SqExp2D(), []float64{1, 0.01}, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Predict(ds, []float64{1, 0.01}, []geo.Point{{X: 50, Y: 50}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 1e-6 {
		t.Errorf("far-field prediction %g, want ~0", got[0])
	}
}

func TestFitReportsDataMotion(t *testing.T) {
	ds, err := GenerateDataset(100, 2, SqExp2D(), []float64{1, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(ds, Options{TileSize: 25, MaxEvals: 60})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesH2D == 0 {
		t.Error("no H2D bytes accounted during fitting")
	}
	if rep.GflopsPerW <= 0 {
		t.Error("no energy efficiency reported")
	}
}
