package core_test

import (
	"fmt"
	"log"
	"math"

	"geompc/internal/core"
)

// Example demonstrates the end-to-end workflow: synthesize a field, fit it
// with the adaptive mixed-precision Cholesky at the paper's validated
// accuracy, and check the estimate against an exact FP64 fit.
func Example() {
	ds, err := core.GenerateDataset(144, 2, core.SqExp2D(), []float64{1, 0.1}, 3)
	if err != nil {
		log.Fatal(err)
	}
	mp, err := core.Fit(ds, core.Options{UReq: 1e-9, TileSize: 36, MaxEvals: 300})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.Fit(ds, core.Options{TileSize: 36, MaxEvals: 300})
	if err != nil {
		log.Fatal(err)
	}
	agree := true
	for i := range mp.Theta {
		if math.Abs(mp.Theta[i]-exact.Theta[i]) > 1e-2 {
			agree = false
		}
	}
	fmt.Println("mixed precision matches exact FP64:", agree)
	fmt.Println("simulated machine time accounted:", mp.Time > 0)
	// Output:
	// mixed precision matches exact FP64: true
	// simulated machine time accounted: true
}

// ExampleProjectFactorization shows the performance/energy projection of a
// production-scale factorization without materializing any data.
func ExampleProjectFactorization() {
	mp, err := core.ProjectFactorization(32768, core.SqExp2D(), []float64{1, 0.03},
		core.Options{UReq: 1e-4, TileSize: 2048, Machine: core.OneV100()}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fp64, err := core.ProjectFactorization(32768, core.SqExp2D(), []float64{1, 0.03},
		core.Options{TileSize: 2048, Machine: core.OneV100()}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MP faster than FP64:", mp.Time < fp64.Time)
	fmt.Println("MP saves energy:", mp.Energy < fp64.Energy)
	// Output:
	// MP faster than FP64: true
	// MP saves energy: true
}
