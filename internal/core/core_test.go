package core

import (
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/prec"
)

func TestGenerateDataset(t *testing.T) {
	ds, err := GenerateDataset(100, 2, SqExp2D(), []float64{1, 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Locs) != 100 || len(ds.Z) != 100 {
		t.Fatalf("dataset sizes wrong: %d locs, %d obs", len(ds.Locs), len(ds.Z))
	}
	// Reproducibility.
	ds2, err := GenerateDataset(100, 2, SqExp2D(), []float64{1, 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Z {
		if ds.Z[i] != ds2.Z[i] {
			t.Fatal("same seed produced different data")
		}
	}
	// Wrong parameter count.
	if _, err := GenerateDataset(10, 2, Matern2D(), []float64{1, 0.1}, 1); err == nil {
		t.Error("Matern with 2 params accepted")
	}
}

func TestFitEndToEnd(t *testing.T) {
	ds, err := GenerateDataset(144, 2, SqExp2D(), []float64{1, 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fit(ds, Options{UReq: 1e-9, TileSize: 36, MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Theta[1]-0.1) > 0.1 {
		t.Errorf("beta estimate %g far from 0.1", rep.Theta[1])
	}
	if rep.Time <= 0 || rep.Energy <= 0 || rep.Evaluations == 0 {
		t.Errorf("missing execution accounting: %+v", rep)
	}
	if len(rep.ParamNames) != 2 || rep.ParamNames[0] != "sigma2" {
		t.Errorf("param names wrong: %v", rep.ParamNames)
	}
}

func TestPredictEndToEnd(t *testing.T) {
	ds, err := GenerateDataset(100, 2, SqExp2D(), []float64{1, 0.2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Predict(ds, []float64{1, 0.2}, []geo.Point{ds.Locs[7]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-ds.Z[7]) > 1e-3 {
		t.Errorf("prediction at observed point %g, want %g", got[0], ds.Z[7])
	}
}

func TestProjectFactorization(t *testing.T) {
	proj, err := ProjectFactorization(16384, SqExp2D(), []float64{1, 0.03}, Options{
		UReq: 1e-4, TileSize: 1024, Machine: OneV100(),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Time <= 0 || proj.Gflops <= 0 || proj.Energy <= 0 {
		t.Errorf("empty projection: %+v", proj)
	}
	if proj.TilesByPrec[prec.FP64] == 0 {
		t.Error("no FP64 tiles (diagonal must be FP64)")
	}
	// The MP run must beat pure FP64 on the same machine.
	fp64, err := ProjectFactorization(16384, SqExp2D(), []float64{1, 0.03}, Options{
		TileSize: 1024, Machine: OneV100(),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Time >= fp64.Time {
		t.Errorf("MP time %g not below FP64 %g", proj.Time, fp64.Time)
	}
	if proj.Energy >= fp64.Energy {
		t.Errorf("MP energy %g not below FP64 %g", proj.Energy, fp64.Energy)
	}
}

func TestMachines(t *testing.T) {
	for _, m := range []Machine{OneV100(), OneA100(), OneH100(), Summit(4)} {
		p, err := m.Platform()
		if err != nil {
			t.Fatal(err)
		}
		if p.NumDevices() == 0 {
			t.Error("platform with no devices")
		}
	}
	if p, _ := Summit(64).Platform(); p.NumDevices() != 384 {
		t.Error("Summit(64) is not 384 GPUs")
	}
	// Zero-value machine defaults to one Summit node's worth of GPUs.
	var m Machine
	if _, err := m.Platform(); err != nil {
		t.Errorf("zero machine rejected: %v", err)
	}
}

func TestForceTTCSlower(t *testing.T) {
	base := Options{UReq: 1e-2, TileSize: 2048, Machine: OneV100()}
	stc, err := ProjectFactorization(32768, SqExp2D(), []float64{1, 0.01}, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	ttcOpts := base
	ttcOpts.ForceTTC = true
	ttc, err := ProjectFactorization(32768, SqExp2D(), []float64{1, 0.01}, ttcOpts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stc.Time > ttc.Time {
		t.Errorf("auto strategy %g slower than forced TTC %g", stc.Time, ttc.Time)
	}
}
