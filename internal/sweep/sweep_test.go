package sweep_test

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geompc/internal/obs"
	"geompc/internal/plan"
	"geompc/internal/sweep"
)

// TestRunOrderAndResults: results come back in submission order for every
// pool size, including pools larger than the grid.
func TestRunOrderAndResults(t *testing.T) {
	const n = 17
	for _, workers := range []int{0, 1, 3, runtime.NumCPU(), n + 5, -1} {
		got, err := sweep.Run(n, sweep.Options{Workers: workers}, func(i int, ctx *sweep.Context) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndNegative(t *testing.T) {
	got, err := sweep.Run(0, sweep.Options{Workers: 4}, func(i int, ctx *sweep.Context) (int, error) {
		t.Error("point called on empty grid")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Errorf("empty grid: results=%v err=%v", got, err)
	}
	if _, err := sweep.Run(-1, sweep.Options{}, func(i int, ctx *sweep.Context) (int, error) { return 0, nil }); err == nil {
		t.Error("negative grid size accepted")
	}
}

// TestRunLowestIndexError: the pool runs every point but reports the
// lowest-index failure — the same error the serial path stops at.
func TestRunLowestIndexError(t *testing.T) {
	const n = 12
	fail := map[int]bool{3: true, 7: true, 10: true}
	for _, workers := range []int{0, 1, 4} {
		var calls atomic.Int64
		_, err := sweep.Run(n, sweep.Options{Workers: workers}, func(i int, ctx *sweep.Context) (int, error) {
			calls.Add(1)
			if fail[i] {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "point 3 failed") {
			t.Errorf("workers=%d: err = %v, want lowest-index failure (point 3)", workers, err)
		}
		if workers == 0 && calls.Load() != 4 {
			t.Errorf("serial ran %d points, want early exit after 4", calls.Load())
		}
		if workers > 0 && calls.Load() != n {
			t.Errorf("workers=%d ran %d points, want all %d", workers, calls.Load(), n)
		}
	}
}

// TestRunMergedMetricsDeterministic: the merged registry renders
// bit-identically for every worker count (sweep/* gauges excluded — they
// are wall-clock derived).
func TestRunMergedMetricsDeterministic(t *testing.T) {
	const n = 23
	render := func(workers int) string {
		reg := obs.NewRegistry()
		_, err := sweep.Run(n, sweep.Options{Workers: workers, Registry: reg}, func(i int, ctx *sweep.Context) (int, error) {
			ctx.Reg.Counter("pt/count").Inc()
			ctx.Reg.Gauge("pt/sum").Add(0.1 * float64(i+1)) // order-sensitive float fold
			ctx.Reg.Histogram("pt/size", []float64{5, 15}).Observe(float64(i))
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, m := range reg.Snapshot() {
			if strings.HasPrefix(m.Name, "sweep/") {
				continue
			}
			fmt.Fprintf(&sb, "%s %d %x\n", m.Name, m.Count, m.Value)
		}
		return sb.String()
	}
	want := render(0)
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d merged metrics differ from serial:\n%s\n---\n%s", workers, got, want)
		}
	}
}

// TestRunErrorMergesPrefixOnly: on failure the merged registry holds
// exactly the shards before the failing index, pool or no pool.
func TestRunErrorMergesPrefixOnly(t *testing.T) {
	const n, failAt = 9, 5
	for _, workers := range []int{0, 3} {
		reg := obs.NewRegistry()
		_, err := sweep.Run(n, sweep.Options{Workers: workers, Registry: reg}, func(i int, ctx *sweep.Context) (int, error) {
			ctx.Reg.Counter("pt/ran").Inc()
			if i == failAt {
				return 0, errors.New("boom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if got := reg.Counter("pt/ran").Value(); got != failAt {
			t.Errorf("workers=%d: merged %d shards, want %d (prefix before failure)", workers, got, failAt)
		}
	}
}

// TestRunWorkerContexts: worker ids stay in range, every point gets a
// fresh registry shard, and cache wiring follows the options.
func TestRunWorkerContexts(t *testing.T) {
	const n, workers = 20, 4
	shared := plan.NewCache(nil)
	var badWorker, sharedMiss, dirtyShard atomic.Int64
	_, err := sweep.Run(n, sweep.Options{Workers: workers, Cache: shared}, func(i int, ctx *sweep.Context) (int, error) {
		if ctx.Worker < 0 || ctx.Worker >= workers {
			badWorker.Add(1)
		}
		if ctx.Cache != shared {
			sharedMiss.Add(1)
		}
		if len(ctx.Reg.Snapshot()) != 0 {
			dirtyShard.Add(1)
		}
		ctx.Reg.Counter("seen").Inc()
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if badWorker.Load() != 0 || sharedMiss.Load() != 0 || dirtyShard.Load() != 0 {
		t.Errorf("badWorker=%d sharedMiss=%d dirtyShard=%d", badWorker.Load(), sharedMiss.Load(), dirtyShard.Load())
	}

	// WorkerCache gives each worker a private, non-nil cache; serial gets
	// exactly one.
	caches := make([]*plan.Cache, workers)
	_, err = sweep.Run(n, sweep.Options{Workers: workers, WorkerCache: true}, func(i int, ctx *sweep.Context) (int, error) {
		if ctx.Cache == nil {
			t.Error("WorkerCache: nil cache")
			return 0, nil
		}
		if prev := caches[ctx.Worker]; prev != nil && prev != ctx.Cache {
			t.Errorf("worker %d cache changed between points", ctx.Worker)
		}
		caches[ctx.Worker] = ctx.Cache
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var serialCache *plan.Cache
	_, err = sweep.Run(3, sweep.Options{WorkerCache: true}, func(i int, ctx *sweep.Context) (int, error) {
		if ctx.Cache == nil {
			t.Error("serial WorkerCache: nil cache")
		}
		if serialCache == nil {
			serialCache = ctx.Cache
		} else if serialCache != ctx.Cache {
			t.Error("serial cache changed between points")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunSummaryAndGauges: the summary and sweep/* gauges report the run
// shape (points, workers, positive throughput).
func TestRunSummaryAndGauges(t *testing.T) {
	const n = 8
	var s sweep.Summary
	reg := obs.NewRegistry()
	_, err := sweep.Run(n, sweep.Options{Workers: 2, Registry: reg, Summary: &s}, func(i int, ctx *sweep.Context) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Points != n || s.Workers != 2 {
		t.Errorf("summary = %+v, want %d points / 2 workers", s, n)
	}
	if s.PointsPerSec <= 0 || s.Wall <= 0 {
		t.Errorf("summary throughput not positive: %+v", s)
	}
	if got := reg.Gauge("sweep/points").Value(); got != float64(n) {
		t.Errorf("sweep/points gauge = %g, want %d", got, n)
	}
	if got := reg.Gauge("sweep/workers").Value(); got != 2 {
		t.Errorf("sweep/workers gauge = %g, want 2", got)
	}
	if reg.Gauge("sweep/points_per_sec").Value() <= 0 {
		t.Error("sweep/points_per_sec gauge not positive")
	}
	if !strings.Contains(s.String(), "2 workers") {
		t.Errorf("summary string %q missing worker count", s.String())
	}

	var serial sweep.Summary
	if _, err := sweep.Run(n, sweep.Options{Summary: &serial}, func(i int, ctx *sweep.Context) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if serial.Workers != 0 || !strings.Contains(serial.String(), "serial") {
		t.Errorf("serial summary = %+v (%q)", serial, serial.String())
	}
}

// TestRunMergeQueueDepth: when point 0 is the last to finish, every other
// shard queues behind it, so the recorded depth reaches n-1.
func TestRunMergeQueueDepth(t *testing.T) {
	const n = 6
	release := make(chan struct{})
	var finished atomic.Int64
	var s sweep.Summary
	_, err := sweep.Run(n, sweep.Options{Workers: n, Summary: &s}, func(i int, ctx *sweep.Context) (int, error) {
		if i == 0 {
			// Hold the merge frontier until every other point finished,
			// then linger so their completion signals reach the merger
			// before this one does.
			<-release
			time.Sleep(100 * time.Millisecond)
		} else if finished.Add(1) == n-1 {
			close(release)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxMergeQueue != n-1 {
		t.Errorf("max merge queue = %d, want %d", s.MaxMergeQueue, n-1)
	}
}
