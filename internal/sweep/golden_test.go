package sweep_test

// The executor's reason to exist: a serial-vs-parallel golden-digest
// property test over the full cross product of scheduling policy ×
// broadcast topology × fault spec. Every grid point runs a real numeric
// Cholesky factorization; schedule digests AND factor-bit digests must be
// identical for every worker count.

import (
	"math"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/comm"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/stats"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

const (
	goldenNT = 5
	goldenTS = 16
)

// goldenPoint is one cell of the property grid.
type goldenPoint struct {
	policy, topo, faults string
}

// goldenGrid is the policy × topology × fault-spec cross product.
func goldenGrid() []goldenPoint {
	policies := []string{"fifo", "locality", "cp"}
	topos := []string{"binomial", "flat", "chain"}
	faults := []string{"", "kill:dev=1,at=0.02", "slow:dev=0,from=0.01,to=0.05,x=4;flaky:dev=1,at=0.03,backoff=1e-3"}
	var grid []goldenPoint
	for _, p := range policies {
		for _, tp := range topos {
			for _, f := range faults {
				grid = append(grid, goldenPoint{policy: p, topo: tp, faults: f})
			}
		}
	}
	return grid
}

// goldenConfig builds the numeric problem for one grid point: 5×5 tiles of
// 16, squared-exponential covariance, adaptive maps at 1e-8, one rank with
// two GPUs. Every call builds fresh state — the matrix is factorized in
// place, so points must never share it.
func goldenConfig(t testing.TB, gp goldenPoint) cholesky.Config {
	t.Helper()
	n := goldenNT * goldenTS
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	d, err := tile.NewDesc(n, goldenTS, 1, 1)
	if err != nil {
		t.Fatalf("NewDesc: %v", err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, geo.SqExp{Dimension: 2}, []float64{1, 0.05}, 1e-8, tl.Data, tl.N)
	})
	km := precmap.FromMatrix(mat, 1e-8, prec.CholeskySet)
	maps := precmap.New(km, 1e-8)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })

	plat, err := runtime.NewPlatform(hw.SummitNode, 1, 2)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	cfg := cholesky.Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat}
	if cfg.Sched, err = sched.ByName(gp.policy); err != nil {
		t.Fatalf("sched.ByName(%q): %v", gp.policy, err)
	}
	if cfg.Bcast, err = comm.TopologyByName(gp.topo); err != nil {
		t.Fatalf("TopologyByName(%q): %v", gp.topo, err)
	}
	if gp.faults != "" {
		fp, err := runtime.ParseFaultSpec(gp.faults, plat.NumDevices())
		if err != nil {
			t.Fatalf("ParseFaultSpec(%q): %v", gp.faults, err)
		}
		cfg.Faults = fp
	}
	return cfg
}

// goldenDigests is what one grid point must reproduce exactly: the
// engine's schedule digest, the virtual makespan bits, and an FNV digest
// of every factor element's bit pattern.
type goldenDigests struct {
	Schedule uint64
	Makespan uint64
	Factor   uint64
}

func runGoldenPoint(t testing.TB, gp goldenPoint, reg *obs.Registry) (goldenDigests, error) {
	cfg := goldenConfig(t, gp)
	res, err := cholesky.Run(cfg)
	if err != nil {
		return goldenDigests{}, err
	}
	if reg != nil {
		reg.Merge(res.Metrics())
	}
	var d obs.Digest
	for i := 0; i < cfg.Desc.NT; i++ {
		for j := 0; j <= i; j++ {
			for _, v := range cfg.Matrix.At(i, j).Data {
				d.WriteUint64(math.Float64bits(v))
			}
		}
	}
	return goldenDigests{
		Schedule: res.Stats.ScheduleDigest,
		Makespan: math.Float64bits(res.Stats.Makespan),
		Factor:   d.Sum(),
	}, nil
}

// TestGoldenDigestSerialVsParallel: for every point of the policy ×
// topology × fault grid, the parallel executor reproduces the serial
// digests bit for bit at every worker count.
func TestGoldenDigestSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("numeric property grid")
	}
	grid := goldenGrid()
	point := func(i int, ctx *sweep.Context) (goldenDigests, error) {
		return runGoldenPoint(t, grid[i], ctx.Reg)
	}

	ref, err := sweep.Run(len(grid), sweep.Options{Workers: 0}, point)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := sweep.Run(len(grid), sweep.Options{Workers: workers}, point)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range grid {
			if got[i] != ref[i] {
				t.Errorf("workers=%d point %+v: digests %+v != serial %+v", workers, grid[i], got[i], ref[i])
			}
		}
	}
}

// TestGoldenMergedMetricsMatchSerial: the merged engine metrics (schedule
// counters, conversion counts, traffic bytes — everything except the
// wall-clock sweep/* gauges) are bit-identical across worker counts.
func TestGoldenMergedMetricsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("numeric property grid")
	}
	grid := goldenGrid()[:6] // policy fifo × all topologies × fault specs is plenty
	render := func(workers int) []obs.Metric {
		reg := obs.NewRegistry()
		_, err := sweep.Run(len(grid), sweep.Options{Workers: workers, Registry: reg},
			func(i int, ctx *sweep.Context) (goldenDigests, error) {
				return runGoldenPoint(t, grid[i], ctx.Reg)
			})
		if err != nil {
			t.Fatal(err)
		}
		var out []obs.Metric
		for _, m := range reg.Snapshot() {
			if len(m.Name) >= 6 && m.Name[:6] == "sweep/" {
				continue
			}
			out = append(out, m)
		}
		return out
	}
	want := render(0)
	if len(want) == 0 {
		t.Fatal("serial sweep merged no engine metrics")
	}
	for _, workers := range []int{1, 4} {
		got := render(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d metrics, serial has %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: metric %q = %+v, serial %+v", workers, want[i].Name, got[i], want[i])
			}
		}
	}
}
