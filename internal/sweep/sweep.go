// Package sweep is the deterministic parallel sweep executor: it fans a
// grid of independent phantom-run configurations over a bounded worker
// pool while keeping every output bit-identical to the serial path.
//
// The determinism argument has three legs:
//
//   - Each grid point runs in an isolated context — its own engine state
//     (constructed inside the point function), its own obs.Registry shard,
//     and optionally its own plan.Cache — so no floating-point state is
//     shared between concurrently executing points.
//   - Results are keyed by grid index and stored into a pre-sized slice,
//     so the returned row order is the submission order regardless of
//     which worker finished first.
//   - Metric shards are folded into the merged registry by a frontier
//     merger that only ever advances in index order: shard i is merged
//     strictly after shard i-1, no matter the completion order, so the
//     non-associativity of float64 addition cannot leak scheduling noise
//     into the merged series.
//
// Error semantics match the serial path exactly: the serial executor stops
// at the first failing point, which — because it walks indices in order —
// is the lowest-index failure. The parallel executor runs every point and
// returns the lowest-index error, and the frontier merger stops folding
// shards at that index, so both the error and the merged metrics are
// identical to a serial run.
//
// The only nondeterministic outputs are the sweep/* throughput gauges
// (points/sec, worker busy fraction, merge-queue depth): they are derived
// from wall-clock time and exist for operators, not for golden pinning.
// Equivalence tests must exclude the "sweep/" prefix.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geompc/internal/obs"
	"geompc/internal/plan"
)

// Context is the isolated per-worker state handed to every point function.
// Reg is a fresh registry shard per POINT (not per worker): the point
// should route all engine metrics into it so the executor can fold shards
// deterministically. Cache, when non-nil, is safe for the point to use
// with cholesky.RunCached — it is either this worker's private cache or
// the sweep-wide shared cache (see Options.Cache).
type Context struct {
	// Worker is the pool slot running this point: 0..workers-1, and 0 in
	// serial mode.
	Worker int
	// Reg is this point's private metrics shard; merged in index order.
	Reg *obs.Registry
	// Cache is the plan cache for this point, nil unless Options enabled
	// one.
	Cache *plan.Cache
}

// Options configures one Run.
type Options struct {
	// Workers selects the pool size: 0 runs the points serially in the
	// calling goroutine (the reference path, with first-error early exit),
	// n > 0 runs an n-worker pool, and any negative value sizes the pool
	// to runtime.GOMAXPROCS(0). Pools larger than the grid are clamped.
	Workers int
	// Cache, when non-nil, is shared by every worker. The plan.Cache
	// concurrency contract makes this sound: results stay bit-identical
	// while hit/miss counters become scheduling-dependent diagnostics.
	Cache *plan.Cache
	// WorkerCache, when true and Cache is nil, gives each worker a private
	// plan.Cache — deterministic counters at the cost of recompiling
	// shapes that another worker already holds.
	WorkerCache bool
	// Registry, when non-nil, receives every point's metric shard (merged
	// in index order) plus the sweep/* throughput gauges.
	Registry *obs.Registry
	// Summary, when non-nil, is filled with the run's throughput figures.
	Summary *Summary
}

// Summary reports how one sweep executed. All fields derive from
// wall-clock measurements and are NOT deterministic.
type Summary struct {
	// Points is the number of grid points executed.
	Points int
	// Workers is the pool size used; 0 means the serial path ran.
	Workers int
	// Wall is the end-to-end sweep duration.
	Wall time.Duration
	// PointsPerSec is Points divided by Wall.
	PointsPerSec float64
	// BusyFrac is the fraction of total pool capacity spent inside point
	// functions (1.0 = perfectly busy pool).
	BusyFrac float64
	// MaxMergeQueue is the deepest the out-of-order merge queue got: the
	// largest number of completed shards held back waiting for a
	// lower-index point to finish.
	MaxMergeQueue int
}

// String renders the summary as a one-line human report.
func (s Summary) String() string {
	mode := "serial"
	if s.Workers > 0 {
		mode = fmt.Sprintf("%d workers", s.Workers)
	}
	return fmt.Sprintf("sweep: %d points in %v (%.1f points/sec, %s, busy %.0f%%, max merge queue %d)",
		s.Points, s.Wall.Round(time.Microsecond), s.PointsPerSec, mode, 100*s.BusyFrac, s.MaxMergeQueue)
}

// merger folds completed shards into the destination registry at the
// in-order frontier. Workers publish shards[i] and errs[i] before
// signalling index i (the signal channel provides the happens-before
// edge); add is only ever called from one goroutine.
type merger struct {
	reg    *obs.Registry
	shards []*obs.Registry
	errs   []error
	ready  []bool
	next   int // lowest index not yet folded
	depth  int // completed-but-unmerged shard count
	max    int
	err    error // lowest-index error seen at the frontier
}

// add marks point idx complete and advances the merge frontier as far as
// contiguously completed points allow. This is the sweep executor's inner
// loop — it runs once per grid point and must not allocate.
//
//geompc:hot
func (m *merger) add(idx int) {
	m.ready[idx] = true
	m.depth++
	for m.next < len(m.ready) && m.ready[m.next] {
		if m.err == nil && m.errs[m.next] != nil {
			m.err = m.errs[m.next]
		}
		if m.err == nil && m.reg != nil {
			m.reg.Merge(m.shards[m.next]) //geompc:nolint hotalloc one merge per completed run, not per event; copies are the shard-isolation contract
		}
		m.shards[m.next] = nil
		m.next++
		m.depth--
	}
	if m.depth > m.max {
		m.max = m.depth
	}
}

// Run executes point(i, ctx) for every i in [0, n) and returns the
// results in index order. With opts.Workers == 0 the points run serially
// in the calling goroutine and the first error aborts the sweep; with a
// worker pool every point runs and the lowest-index error is returned —
// the same error a serial run would have hit first. On error the results
// are nil and opts.Registry holds exactly the shards of the points before
// the failing index, matching the serial path bit for bit.
func Run[T any](n int, opts Options, point func(i int, ctx *Context) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: negative grid size %d", n)
	}
	start := time.Now()
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	m := &merger{
		reg:    opts.Registry,
		shards: make([]*obs.Registry, n),
		errs:   make([]error, n),
		ready:  make([]bool, n),
	}

	var busy time.Duration
	if workers == 0 {
		// Serial reference path: index order, first-error early exit.
		ctx := Context{Worker: 0, Cache: opts.Cache}
		if ctx.Cache == nil && opts.WorkerCache {
			ctx.Cache = plan.NewCache(nil)
		}
		for i := 0; i < n; i++ {
			ctx.Reg = obs.NewRegistry()
			t0 := time.Now()
			res, err := point(i, &ctx)
			busy += time.Since(t0)
			results[i] = res
			m.shards[i] = ctx.Reg
			m.errs[i] = err
			m.add(i)
			if err != nil {
				finish(opts, m, i+1, 0, start, busy, 1)
				return nil, err
			}
		}
		finish(opts, m, n, 0, start, busy, 1)
		return results, nil
	}

	// Pool path: workers claim indices from an atomic cursor, run the
	// point in an isolated context, publish the shard, then signal the
	// index; the calling goroutine advances the merge frontier.
	var cursor atomic.Int64
	completed := make(chan int, n)
	busyNs := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := Context{Worker: w, Cache: opts.Cache}
			if ctx.Cache == nil && opts.WorkerCache {
				ctx.Cache = plan.NewCache(nil)
			}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				ctx.Reg = obs.NewRegistry()
				t0 := time.Now()
				res, err := point(i, &ctx)
				busyNs[w] += int64(time.Since(t0))
				results[i] = res
				m.shards[i] = ctx.Reg
				m.errs[i] = err
				completed <- i
			}
		}(w)
	}
	for received := 0; received < n; received++ {
		m.add(<-completed)
	}
	wg.Wait()
	for _, ns := range busyNs {
		busy += time.Duration(ns)
	}
	finish(opts, m, n, workers, start, busy, workers)
	if m.err != nil {
		return nil, m.err
	}
	return results, nil
}

// finish computes the throughput figures, publishes the sweep/* gauges
// and fills the caller's Summary. slots is the pool capacity the busy
// fraction is charged against (1 for the serial path).
func finish(opts Options, m *merger, points, workers int, start time.Time, busy time.Duration, slots int) {
	wall := time.Since(start)
	s := Summary{Points: points, Workers: workers, Wall: wall, MaxMergeQueue: m.max}
	if wall > 0 {
		s.PointsPerSec = float64(points) / wall.Seconds()
		s.BusyFrac = busy.Seconds() / (wall.Seconds() * float64(slots))
	}
	if opts.Registry != nil {
		opts.Registry.Gauge("sweep/points").Set(float64(s.Points))
		opts.Registry.Gauge("sweep/workers").Set(float64(s.Workers))
		opts.Registry.Gauge("sweep/points_per_sec").Set(s.PointsPerSec)
		opts.Registry.Gauge("sweep/worker_busy_fraction").Set(s.BusyFrac)
		opts.Registry.Gauge("sweep/merge_queue_depth_max").Set(float64(s.MaxMergeQueue))
	}
	if opts.Summary != nil {
		*opts.Summary = s
	}
}
