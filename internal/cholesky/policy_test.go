package cholesky

import (
	"testing"

	"geompc/internal/comm"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// runWithPolicy executes one numeric factorization under the given policy,
// topology and front-end, with the invariant auditor on, and returns the
// factor as a dense array plus the run's result.
func runWithPolicy(t *testing.T, nt int, strat Strategy, pol sched.Policy, topo comm.Topology, dtd bool, ranks, devPerRank int) ([]float64, *Result) {
	t.Helper()
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	p, q := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, p, q)
	if err != nil {
		t.Fatal(err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, geo.SqExp{Dimension: 2}, []float64{1, 0.05}, 1e-8, tl.Data, tl.N)
	})
	maps := precmap.New(precmap.FromMatrix(mat, 1e-6, prec.CholeskySet), 1e-6)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat,
		Strategy: strat, Audit: true, Sched: pol, Bcast: topo}
	run := Run
	if dtd {
		run = RunDTD
	}
	name := "default"
	if pol != nil {
		name = pol.Name()
	}
	res, err := run(cfg)
	if err != nil {
		t.Fatalf("policy %s: %v", name, err)
	}
	if res.Err != nil {
		t.Fatalf("policy %s: numeric failure %v", name, res.Err)
	}
	return mat.ToDense(), res
}

// TestPolicyMatrixBitIdenticalFactor is the cross-policy property test:
// every scheduling policy, under both front-ends (PTG and DTD) and both
// communication strategies (Auto/STC and ForceTTC), must
//
//   - pass the run-invariant auditor (pin balance, per-link interval
//     consistency, energy conservation — Config.Audit fails the run on any
//     violation),
//   - produce the bit-identical numeric factor to the FIFO baseline of the
//     same front-end and strategy (policies move work in virtual time; they
//     never change what is computed), and
//   - execute the same number of tasks.
//
// The underlying graphs are structurally validated once per strategy.
func TestPolicyMatrixBitIdenticalFactor(t *testing.T) {
	const nt, ranks, devPerRank = 6, 2, 2
	for _, strat := range []Strategy{Auto, ForceTTC} {
		g := buildTestGraph(t, nt, 1e-4, nil, strat, ranks, devPerRank)
		if err := runtime.Validate(g); err != nil {
			t.Fatalf("strategy %v: %v", strat, err)
		}
	}
	for _, dtd := range []bool{false, true} {
		fe := "ptg"
		if dtd {
			fe = "dtd"
		}
		for _, strat := range []Strategy{Auto, ForceTTC} {
			ref, refRes := runWithPolicy(t, nt, strat, sched.FIFO{}, comm.Binomial{}, dtd, ranks, devPerRank)
			for _, pol := range sched.Policies() {
				if pol.Name() == "fifo" {
					continue
				}
				got, res := runWithPolicy(t, nt, strat, pol, comm.Binomial{}, dtd, ranks, devPerRank)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s/%v/%s: factor differs from FIFO at element %d: %g vs %g",
							fe, strat, pol.Name(), i, got[i], ref[i])
					}
				}
				if res.Stats.Tasks != refRes.Stats.Tasks {
					t.Errorf("%s/%v/%s: %d tasks, FIFO ran %d",
						fe, strat, pol.Name(), res.Stats.Tasks, refRes.Stats.Tasks)
				}
				if res.Stats.Energy <= 0 {
					t.Errorf("%s/%v/%s: no energy accounted", fe, strat, pol.Name())
				}
			}
		}
	}
}

// TestBcastTopologiesBitIdenticalFactor runs the multi-rank factorization
// under every broadcast topology: the factor must stay bit-identical (the
// topology shapes arrival times, not values) and the audit must stay clean.
func TestBcastTopologiesBitIdenticalFactor(t *testing.T) {
	const nt, ranks, devPerRank = 6, 3, 1
	ref, _ := runWithPolicy(t, nt, Auto, sched.FIFO{}, comm.Binomial{}, false, ranks, devPerRank)
	for _, topo := range comm.Topologies() {
		if topo.Name() == "binomial" {
			continue
		}
		got, _ := runWithPolicy(t, nt, Auto, sched.FIFO{}, topo, false, ranks, devPerRank)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("topology %s: factor differs at element %d", topo.Name(), i)
			}
		}
	}
}

// TestDefaultPolicyDigestUnchanged pins that an explicit FIFO+Binomial
// selection is the same run as the nil defaults, digest for digest.
func TestDefaultPolicyDigestUnchanged(t *testing.T) {
	const nt, ranks, devPerRank = 6, 2, 2
	_, def := runWithPolicy(t, nt, Auto, sched.FIFO{}, comm.Binomial{}, false, ranks, devPerRank)
	_, nilCfg := runWithPolicy(t, nt, Auto, nil, nil, false, ranks, devPerRank)
	if def.Digest() != nilCfg.Digest() {
		t.Errorf("explicit FIFO+Binomial digest %016x != default digest %016x", def.Digest(), nilCfg.Digest())
	}
}
