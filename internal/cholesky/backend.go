package cholesky

import (
	"fmt"

	"geompc/internal/linalg"
	"geompc/internal/plan"
	"geompc/internal/solver"
)

// directBackend adapts the tile Cholesky factorization to the pluggable
// solver layer: it is solver backend "direct", the paper's adaptive
// mixed-precision factorization. The historical entry points (Run,
// RunCached, Compile, Replay) remain the implementation — the backend is a
// thin wrapper over them, so every golden schedule digest, factor bit and
// plan-replay digest is untouched by the refactor.
type directBackend struct{}

func init() { solver.Register(directBackend{}) }

// Name implements solver.Backend.
func (directBackend) Name() string { return "direct" }

// Solve implements solver.Backend.
func (directBackend) Solve(cfg solver.Config) (*solver.Result, error) {
	return directSolve(cfg, nil, false)
}

// SolveCached implements solver.Backend.
func (directBackend) SolveCached(cfg solver.Config, c *plan.Cache) (*solver.Result, error) {
	return directSolve(cfg, c, true)
}

// directConfig maps the backend-agnostic config onto the historical one.
func directConfig(sc solver.Config) Config {
	return Config{
		Desc: sc.Desc, Maps: sc.Maps, Platform: sc.Platform, Matrix: sc.Matrix,
		Strategy: sc.Strategy, Trace: sc.Trace, Audit: sc.Audit,
		Lookahead: sc.Lookahead, Faults: sc.Faults, Sched: sc.Sched,
		Bcast: sc.Bcast, EngineWorkers: sc.EngineWorkers,
	}
}

func directSolve(sc solver.Config, c *plan.Cache, cached bool) (*solver.Result, error) {
	if sc.RHS != nil && len(sc.RHS) != sc.Desc.N {
		return nil, fmt.Errorf("cholesky: RHS has %d entries, matrix is %d×%d", len(sc.RHS), sc.Desc.N, sc.Desc.N)
	}
	cfg := directConfig(sc)
	var res *Result
	var err error
	if cached {
		res, err = RunCached(cfg, c)
	} else {
		res, err = Run(cfg)
	}
	if err != nil {
		return nil, err
	}
	out := &solver.Result{
		Stats:     res.Stats,
		Backend:   "direct",
		Strategy:  sc.Strategy,
		Converged: res.Err == nil,
		Err:       res.Err,
		Reg:       res.Metrics(),
	}
	if cfg.Trace || cfg.Audit {
		sched := res.Schedule(sc.Desc.NT)
		out.Schedule = make([]solver.ScheduledTask, len(sched))
		for i, t := range sched {
			out.Schedule[i] = solver.ScheduledTask(t)
		}
	}
	if sc.Matrix != nil && sc.RHS != nil && res.Err == nil {
		// Solve Σx = b against the factor: x = L⁻ᵀ(L⁻¹b) — O(n²) host-side
		// triangular solves, negligible next to the O(n³) factorization and
		// charged the same way the MLE quadratic form historically was.
		n := sc.Desc.N
		l := sc.Matrix.LowerToDense()
		x := append([]float64(nil), sc.RHS...)
		linalg.TrsvLNN(n, l, n, x)
		linalg.TrsvLTN(n, l, n, x)
		out.Solution = x
	}
	return out, nil
}
