package cholesky

import (
	"bytes"
	"encoding/json"
	"reflect"
	gort "runtime"
	"testing"
)

// TestDigestEqualAcrossGOMAXPROCS is the determinism satellite: the virtual
// schedule must be bit-identical whether the numeric task bodies run on one
// OS thread or eight, and the run digest must prove it.
func TestDigestEqualAcrossGOMAXPROCS(t *testing.T) {
	cfgA, cfgB := buildNumericConfig(t, 6, 2, 2)
	cfgA.Audit = true
	cfgB.Audit = true

	prev := gort.GOMAXPROCS(1)
	resA, errA := Run(cfgA)
	gort.GOMAXPROCS(8)
	resB, errB := Run(cfgB)
	gort.GOMAXPROCS(prev)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if resA.Digest() != resB.Digest() {
		t.Errorf("schedule digests differ across GOMAXPROCS: %016x vs %016x",
			resA.Digest(), resB.Digest())
	}
	if resA.Digest() == 0 {
		t.Error("digest is zero — nothing was hashed")
	}
	if !reflect.DeepEqual(resA.Stats, resB.Stats) {
		t.Errorf("stats differ across GOMAXPROCS:\n%+v\n%+v", resA.Stats, resB.Stats)
	}
	a := cfgA.Matrix.LowerToDense()
	b := cfgB.Matrix.LowerToDense()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("factor differs at %d across GOMAXPROCS", i)
		}
	}
}

// TestDigestEqualAcrossFrontEnds: the PTG and DTD front-ends number tasks
// differently but must produce the same schedule, and therefore the same
// digest (which deliberately excludes task ids).
func TestDigestEqualAcrossFrontEnds(t *testing.T) {
	cfgPTG, cfgDTD := buildNumericConfig(t, 6, 2, 2)
	cfgPTG.Audit = true
	cfgDTD.Audit = true
	ptg, err := Run(cfgPTG)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := RunDTD(cfgDTD)
	if err != nil {
		t.Fatal(err)
	}
	if ptg.Digest() != dtd.Digest() {
		t.Errorf("PTG digest %016x != DTD digest %016x", ptg.Digest(), dtd.Digest())
	}
}

// TestAuditedMultiRankRun exercises the invariant auditor on a scenario
// with STC conversions, D2H publishes and network broadcasts. Audit failures
// surface as Run errors.
func TestAuditedMultiRankRun(t *testing.T) {
	cfg, _ := buildNumericConfig(t, 6, 4, 1)
	cfg.Audit = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("audited multi-rank run failed: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.BytesNet == 0 {
		t.Error("4-rank run moved no network bytes — scenario too weak")
	}
}

// TestMetricsPopulated checks the engine's registry carries the run's
// observability counters after a factorization.
func TestMetricsPopulated(t *testing.T) {
	cfg, _ := buildNumericConfig(t, 6, 2, 1)
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if got := m.Counter("engine/tasks").Value(); int(got) != res.Stats.Tasks {
		t.Errorf("engine/tasks = %d, stats say %d", got, res.Stats.Tasks)
	}
	var h2d int64
	for _, metric := range m.Snapshot() {
		if len(metric.Name) > 16 && metric.Name[:16] == "engine/bytes_h2d" {
			h2d += int64(metric.Value)
		}
	}
	if h2d != res.Stats.BytesH2D {
		t.Errorf("per-precision H2D counters sum to %d, stats say %d", h2d, res.Stats.BytesH2D)
	}
}

// TestChromeTraceExport parses the Chrome trace JSON back and verifies the
// timeline shape: one named row (thread) per device stream, and every span
// lands on a declared row.
func TestChromeTraceExport(t *testing.T) {
	cfg, _ := buildNumericConfig(t, 6, 2, 1)
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf, 6); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}

	type row struct{ pid, tid int }
	rows := map[row]string{}
	spansPerRow := map[row]int{}
	for _, e := range parsed.TraceEvents {
		switch e.Phase {
		case "M":
			if e.Name == "thread_name" {
				rows[row{e.PID, e.TID}] = e.Args["name"].(string)
			}
		case "X":
			spansPerRow[row{e.PID, e.TID}]++
			if e.TS < 0 || e.Dur <= 0 {
				t.Errorf("span %q has ts=%g dur=%g", e.Name, e.TS, e.Dur)
			}
		}
	}
	// Both devices must declare all four stream rows.
	for pid := 0; pid < 2; pid++ {
		for tid, want := range []string{"compute", "convert", "H2D", "D2H"} {
			if got := rows[row{pid, tid}]; got != want {
				t.Errorf("dev%d tid%d named %q, want %q", pid, tid, got, want)
			}
		}
		if spansPerRow[row{pid, 0}] == 0 {
			t.Errorf("dev%d compute row has no spans", pid)
		}
		if spansPerRow[row{pid, 2}] == 0 {
			t.Errorf("dev%d H2D row has no spans", pid)
		}
	}
	// Every span must land on a declared row.
	for r, n := range spansPerRow {
		if _, ok := rows[r]; !ok {
			t.Errorf("%d span(s) on undeclared row pid=%d tid=%d", n, r.pid, r.tid)
		}
	}
	// A 2-rank run broadcasts: the NIC process rows must exist.
	var nic bool
	for r, name := range rows {
		if name == "send" && r.pid >= 2 {
			nic = true
		}
	}
	if !nic {
		t.Error("no NIC timeline row in a 2-rank run")
	}
}

// TestWriteChromeTraceRequiresTrace: exporting without Trace must fail
// loudly, not emit an empty file.
func TestWriteChromeTraceRequiresTrace(t *testing.T) {
	cfg, _ := buildNumericConfig(t, 4, 1, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf, 4); err == nil {
		t.Error("WriteChromeTrace succeeded on an untraced run")
	}
}
