package cholesky

import (
	"fmt"

	"geompc/internal/obs"
	"geompc/internal/plan"
	"geompc/internal/runtime"
)

// frontEnd names the DSL a plan was compiled through. Task ids differ
// between the two (algebraic vs insertion order), so plans never cross
// front-ends — the shape signature separates them.
type frontEnd string

const (
	frontPTG frontEnd = "ptg"
	frontDTD frontEnd = "dtd"
)

// planShapeSig hashes everything that determines a factorization's schedule
// except the precision maps and the numeric tile contents: solver backend,
// tiling, process grid, platform, conversion strategy, scheduling policy,
// broadcast topology, pipeline depth and front-end. Two configs with equal
// shape signatures and equal map signatures produce bit-identical
// schedules, so a plan compiled under one replays the other. The backend
// name keeps direct and iterative plans (internal/cg) from ever colliding
// in one cache.
func planShapeSig(cfg Config, fe frontEnd) uint64 {
	var d obs.Digest
	d.WriteString("geompc/plan/v1")
	d.WriteString("direct")
	d.WriteString(string(fe))
	d.WriteInt64(int64(cfg.Desc.N))
	d.WriteInt64(int64(cfg.Desc.TS))
	d.WriteInt64(int64(cfg.Desc.NT))
	d.WriteInt64(int64(cfg.Desc.P))
	d.WriteInt64(int64(cfg.Desc.Q))
	d.WriteInt64(int64(cfg.Platform.Ranks))
	d.WriteInt64(int64(cfg.Platform.DevPerRank))
	d.WriteString(cfg.Platform.Node.Name)
	d.WriteString(cfg.Platform.Node.GPU.Name)
	d.WriteInt64(int64(cfg.Strategy))
	pol := "fifo"
	if cfg.Sched != nil {
		pol = cfg.Sched.Name()
	}
	d.WriteString(pol)
	topo := "binomial"
	if cfg.Bcast != nil {
		topo = cfg.Bcast.Name()
	}
	d.WriteString(topo)
	la := 2
	if cfg.Lookahead > 0 {
		la = cfg.Lookahead
	}
	d.WriteInt64(int64(la))
	return d.Sum()
}

// armedFaults reports whether cfg carries a fault plan with at least one
// event — the runs the plan cache must not serve: faults perturb the
// schedule beyond what the graph alone determines, so they always run live.
func armedFaults(cfg Config) bool {
	return cfg.Faults != nil && cfg.Platform != nil &&
		len(cfg.Faults.Plan(cfg.Platform.NumDevices())) > 0
}

// planOpts converts a Config into plan compile options.
func planOpts(cfg Config) plan.Options {
	return plan.Options{Policy: cfg.Sched, Bcast: cfg.Bcast, Lookahead: cfg.Lookahead, Audit: cfg.Audit, Workers: cfg.EngineWorkers}
}

// buildFront constructs the task system for the chosen front-end: the
// runtime.Graph handed to the engine plus the underlying *graph (numeric
// error collection). For PTG the two coincide.
func buildFront(cfg Config, fe frontEnd) (runtime.Graph, *graph, error) {
	if fe == frontDTD {
		g, dtd, err := buildDTD(cfg)
		return dtd, g, err
	}
	g, err := newGraph(cfg)
	if err != nil {
		return nil, nil, err
	}
	return g, g, nil
}

// compileFront runs cfg once under the plan recorder and returns both the
// run's Result and the reusable plan.
func compileFront(cfg Config, fe frontEnd) (*Result, *plan.Plan, error) {
	if armedFaults(cfg) {
		return nil, nil, fmt.Errorf("cholesky: cannot compile a plan under an armed fault injector")
	}
	rg, g, err := buildFront(cfg, fe)
	if err != nil {
		return nil, nil, err
	}
	p, err := plan.Compile(cfg.Platform, rg, planShapeSig(cfg, fe), cfg.Maps.Signature(), planOpts(cfg))
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		Stats:    p.Stats,
		Strategy: cfg.Strategy,
		Err:      g.Err(),
		schedule: p.Schedule,
		metrics:  p.Metrics,
	}
	res.countConversions(cfg)
	return res, p, nil
}

// replayFront re-executes only the numeric bodies of cfg against p's frozen
// schedule.
func replayFront(cfg Config, p *plan.Plan, fe frontEnd) (*Result, error) {
	if armedFaults(cfg) {
		return nil, fmt.Errorf("cholesky: cannot replay a plan under an armed fault injector (run live)")
	}
	if sig := planShapeSig(cfg, fe); sig != p.Sig {
		return nil, fmt.Errorf("cholesky: plan shape signature %016x does not match config %016x", p.Sig, sig)
	}
	if ps := cfg.Maps.Signature(); ps != p.PrecSig {
		return nil, fmt.Errorf("cholesky: plan precision signature %016x does not match maps %016x (invalidate and recompile)", p.PrecSig, ps)
	}
	rg, g, err := buildFront(cfg, fe)
	if err != nil {
		return nil, err
	}
	stats, err := p.Replay(rg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Stats:    stats,
		Strategy: cfg.Strategy,
		Err:      g.Err(),
		schedule: p.Schedule,
		metrics:  p.Metrics,
	}
	res.countConversions(cfg)
	return res, nil
}

// PlanGraph builds the PTG task system cfg compiles to — what plan.Compile
// consumes and plan.Invalidate diffs. It exists for invalidation oracles
// (internal/plan's tests cross-check dirty closures against the graph's
// structure); normal callers use Compile/Replay/RunCached.
func PlanGraph(cfg Config) (runtime.Graph, error) {
	return newGraph(cfg)
}

// Compile runs cfg once through the PTG front-end and returns the compiled
// plan: the frozen task order, device placements, link bookings, broadcast
// shapes and conversion decisions of that factorization shape.
func Compile(cfg Config) (*plan.Plan, error) {
	_, p, err := compileFront(cfg, frontPTG)
	return p, err
}

// CompileDTD is Compile through the Dynamic Task Discovery front-end.
func CompileDTD(cfg Config) (*plan.Plan, error) {
	_, p, err := compileFront(cfg, frontDTD)
	return p, err
}

// Replay re-executes cfg's numeric bodies against a plan compiled by
// Compile for the same shape and precision signatures. The returned Result
// carries the plan's frozen Stats (schedule digest included) and, in
// numeric mode, cfg.Matrix holds the factor — bit-identical to a fresh Run.
func Replay(cfg Config, p *plan.Plan) (*Result, error) {
	return replayFront(cfg, p, frontPTG)
}

// ReplayDTD is Replay for plans compiled by CompileDTD.
func ReplayDTD(cfg Config, p *plan.Plan) (*Result, error) {
	return replayFront(cfg, p, frontDTD)
}

// RunCached is Run through a plan cache: the first run of a shape compiles
// a plan, subsequent runs with an unchanged precision map replay it (paying
// only the numeric bodies), a changed map is invalidated (the dirty
// downstream closure is measured and counted) and recompiled, and armed
// fault runs bypass the cache entirely — recovery needs live scheduling.
// A nil cache degrades to Run.
func RunCached(cfg Config, c *plan.Cache) (*Result, error) {
	return runCached(cfg, c, frontPTG, Run)
}

// RunCachedDTD is RunCached through the DTD front-end.
func RunCachedDTD(cfg Config, c *plan.Cache) (*Result, error) {
	return runCached(cfg, c, frontDTD, RunDTD)
}

func runCached(cfg Config, c *plan.Cache, fe frontEnd, live func(Config) (*Result, error)) (*Result, error) {
	if c == nil {
		return live(cfg)
	}
	if armedFaults(cfg) {
		c.Bypass()
		return live(cfg)
	}
	sig := planShapeSig(cfg, fe)
	if p := c.Lookup(sig); p != nil {
		if p.PrecSig == cfg.Maps.Signature() {
			c.Hit()
			return replayFront(cfg, p, fe)
		}
		// The precision map changed under this shape: measure the damage
		// (affected tasks + downstream closure), then recompile — timing is
		// coupled globally through device and link contention, so a partial
		// re-simulation would be unsound.
		rg, _, err := buildFront(cfg, fe)
		if err != nil {
			return nil, err
		}
		inv, err := p.Invalidate(rg)
		if err != nil {
			return nil, err
		}
		c.Invalidated(len(inv.Dirty))
	} else {
		c.Miss()
	}
	res, p, err := compileFront(cfg, fe)
	if err != nil {
		return nil, err
	}
	c.Store(p)
	return res, nil
}
