package cholesky

import (
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

// goldenDigests pins the FNV-1a schedule digests of four deterministic
// phantom scenarios under the default scheduling policy and broadcast
// topology (FIFO + binomial tree). These digests were recorded from the
// engine as of the observability/perf/chaos passes; any change to default
// scheduling, link timing, or broadcast arithmetic shows up here as a
// mismatch. CI runs this test in a dedicated golden-digest guard job.
var goldenDigests = map[string]uint64{
	"ptg-auto-1x3": 0x1dbdf1d2da7923cc,
	"ptg-ttc-1x3":  0x70a8ca09d2688edc,
	"ptg-auto-4x1": 0x49f6ecab7fde1e3e,
	"dtd-auto-1x2": 0xa5daf351112181b0,
	"ptg-fp64-2x2": 0x01a1b67b96361560,
}

func goldenScenario(t *testing.T, name string) (Config, bool) {
	t.Helper()
	build := func(n, ts, ranks, gpr int, off prec.Precision, strat Strategy) Config {
		d, err := tile.NewDesc(n, ts, 1, ranks)
		if err != nil {
			t.Fatal(err)
		}
		plat, err := runtime.NewPlatform(hw.SummitNode, ranks, gpr)
		if err != nil {
			t.Fatal(err)
		}
		maps := precmap.New(precmap.Uniform(d.NT, off), 1e-4)
		return Config{Desc: d, Maps: maps, Platform: plat, Strategy: strat}
	}
	switch name {
	case "ptg-auto-1x3":
		return build(16384, 2048, 1, 3, prec.FP16x32, Auto), false
	case "ptg-ttc-1x3":
		return build(16384, 2048, 1, 3, prec.FP16x32, ForceTTC), false
	case "ptg-auto-4x1":
		return build(16384, 2048, 4, 1, prec.FP16x32, Auto), false
	case "dtd-auto-1x2":
		return build(12288, 2048, 1, 2, prec.FP16x32, Auto), true
	case "ptg-fp64-2x2":
		return build(16384, 2048, 2, 2, prec.FP64, Auto), false
	}
	t.Fatalf("unknown scenario %q", name)
	return Config{}, false
}

// TestGoldenScheduleDigests is the golden-digest guard: under the default
// FIFO policy and binomial broadcast, every pinned scenario must reproduce
// its recorded schedule digest bit-for-bit.
func TestGoldenScheduleDigests(t *testing.T) {
	for name, want := range goldenDigests {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			cfg, dtd := goldenScenario(t, name)
			var (
				res *Result
				err error
			)
			if dtd {
				res, err = RunDTD(cfg)
			} else {
				res, err = Run(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("digest[%s] = %#016x (bytesH2D=%d tasks=%d)", name, res.Digest(), res.Stats.BytesH2D, res.Stats.Tasks)
			if res.Digest() != want {
				t.Errorf("schedule digest %#016x, want pinned %#016x", res.Digest(), want)
			}
		})
	}
}
