package cholesky

import (
	"fmt"

	"geompc/internal/linalg"
	"geompc/internal/prec"
)

// Numeric bodies. Each body runs when the engine processes the task, after
// all dependencies' bodies have completed, so reads of producer tiles and
// wire copies are race-free.
//
// The wire copy models the automated conversion strategy's numerical
// effect: when a producer's communication precision is below its storage
// precision (STC), every consumer on another device receives the down-cast
// data; consumers on the producer's own device read the retained
// storage-precision copy, exactly as §VI describes ("retain for tasks on
// the same process, broadcast for the others").

// publishWire materializes the communicated representation of tile (i,j)
// after its producing task body ran.
func (g *graph) publishWire(i, j int) {
	t := g.mat.At(i, j)
	wp := wireFormat(g.wirePrec(i, j))
	sp := wireFormat(g.maps.Storage[i][j])
	idx := i*(i+1)/2 + j
	if wp == sp {
		g.wire[idx] = t.Data // TTC: what is sent is what is stored
		return
	}
	g.wire[idx] = prec.QuantizeCopy(t.Data, wp)
}

// view returns tile (i,j)'s data as seen by a consumer on device dev.
func (g *graph) view(i, j, dev int) []float64 {
	if g.deviceOf(i, j) == dev {
		return g.mat.At(i, j).Data
	}
	w := g.wire[i*(i+1)/2+j]
	if w == nil {
		panic(fmt.Sprintf("cholesky: wire copy of tile (%d,%d) read before publish", i, j))
	}
	return w
}

func (g *graph) potrfBody(k int) func() {
	if g.mat == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		if g.Err() != nil {
			return
		}
		t := g.mat.At(k, k)
		p := g.maps.Kernel[k][k]
		var err error
		switch p {
		case prec.FP64:
			err = linalg.PotrfLower(t.M, t.Data, t.N)
		case prec.FP32:
			err = linalg.PotrfLower32(t.M, t.Data, t.N)
		default:
			err = fmt.Errorf("cholesky: POTRF cannot run in %v", p)
		}
		if err != nil {
			g.fail(fmt.Errorf("POTRF(%d): %w", k, err))
			return
		}
		if k < g.nt-1 {
			g.publishWire(k, k)
		}
	}
}

func (g *graph) trsmBody(m, k int) func() {
	if g.mat == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		if g.Err() != nil {
			return
		}
		dev := g.deviceOf(m, k)
		a := g.view(k, k, dev)
		t := g.mat.At(m, k)
		bk := g.desc.TileDim(k)
		linalg.TrsmRLTPrec(g.trsmExec(m, k), t.M, bk, a, bk, t.Data, t.N)
		g.publishWire(m, k)
	}
}

func (g *graph) syrkBody(m, k int) func() {
	if g.mat == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		if g.Err() != nil {
			return
		}
		dev := g.deviceOf(m, m)
		a := g.view(m, k, dev)
		c := g.mat.At(m, m)
		bk := g.desc.TileDim(k)
		linalg.SyrkLNPrec(g.maps.Kernel[m][m], c.M, bk, -1, a, bk, 1, c.Data, c.N)
	}
}

func (g *graph) gemmBody(m, n, k int) func() {
	if g.mat == nil {
		return nil
	}
	//geompc:nolint hotalloc numeric-mode task bodies are closures by design; pure-DES runs skip them and stay allocation-free
	return func() {
		if g.Err() != nil {
			return
		}
		dev := g.deviceOf(m, n)
		a := g.view(m, k, dev)
		b := g.view(n, k, dev)
		c := g.mat.At(m, n)
		bk := g.desc.TileDim(k)
		linalg.GemmNTPrec(g.maps.Kernel[m][n], c.M, c.N, bk, -1, a, bk, b, bk, 1, c.Data, c.N)
	}
}
