package cholesky

import (
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

// BenchmarkPhantomNT64 measures phantom-mode overhead per task on a small
// 4-node platform at NT=64 (~47k tasks) — the benchmark-trajectory point
// tracked in BENCH_kernels.json (allocs/op is the headline number: phantom
// task dispatch should be allocation-free in steady state).
func BenchmarkPhantomNT64(b *testing.B) {
	nt, ts := 64, 2048
	d, _ := tile.NewDesc(nt*ts, ts, 2, 2)
	maps := precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 4, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Desc: d, Maps: maps, Platform: plat})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(nt*(nt+1)*(nt+2)/6)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkPhantomLarge measures the engine's phantom-mode task throughput
// on a 24-node/144-GPU platform with NT=120 (~300k tasks) — the figure that
// bounds how long the Summit-scale Fig 12 simulations take.
func BenchmarkPhantomLarge(b *testing.B) {
	nt, ts := 120, 2048
	d, _ := tile.NewDesc(nt*ts, ts, 4, 6)
	maps := precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 24, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Desc: d, Maps: maps, Platform: plat})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(nt*(nt+1)*(nt+2)/6)/b.Elapsed().Seconds()*float64(b.N), "tasks/s")
}
