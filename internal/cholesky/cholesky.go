package cholesky

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"geompc/internal/comm"
	"geompc/internal/obs"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/tile"
)

// Config describes one factorization run.
type Config struct {
	// Desc is the tiling and process-grid layout.
	Desc tile.Desc
	// Maps holds the kernel/storage/comm precision maps.
	Maps *precmap.Maps
	// Platform is the simulated machine.
	Platform *runtime.Platform
	// Matrix, when non-nil, holds real tile data and enables numeric
	// execution; nil runs in phantom (cost-only) mode.
	Matrix *tile.Matrix
	// Strategy selects Auto (Algorithm 2) or ForceTTC communication.
	Strategy Strategy
	// Trace enables per-interval occupancy/power recording.
	Trace bool
	// Audit enables the runtime's invariant auditor (pin balance, LRU
	// residency, energy conservation); violations fail the run. Implies
	// Trace.
	Audit bool
	// Lookahead overrides the engine's stream pipeline depth (default 2).
	Lookahead int
	// Faults, when non-nil, arms the run with a deterministic fault plan
	// (device failures, transient kernel faults, host-link slowdowns); see
	// runtime.ParseFaultSpec for the CLI grammar. A nil injector — or one
	// with an empty plan — leaves the run bit-identical to a fault-free
	// engine.
	Faults runtime.FaultInjector
	// Sched selects the engine's scheduling policy (ready-queue order,
	// placement, failover). Nil means sched.FIFO{} — the historical
	// schedule, bit for bit. Any policy produces the bit-identical factor;
	// only virtual time and data motion change.
	Sched sched.Policy
	// Bcast selects the inter-rank broadcast topology. Nil means
	// comm.Binomial{}, the historical arithmetic.
	Bcast comm.Topology
	// EngineWorkers selects the engine's execution mode: 0 runs the classic
	// serial event loop, a positive value runs the conservative parallel DES
	// engine with at most that many rank loops executing concurrently, and
	// -1 means GOMAXPROCS. Statistics, schedule digests and the numeric
	// factor are bit-identical at every setting (see runtime.Engine).
	EngineWorkers int
}

// Result reports a completed factorization.
type Result struct {
	Stats    runtime.Stats
	Strategy Strategy
	// STCTasks/CommTasks count communication-issuing tasks using
	// sender-side conversion vs the total (Algorithm 2's decision).
	STCTasks, CommTasks int
	// Err is the first numeric failure (e.g. a non-SPD pivot), nil on
	// success or in phantom mode.
	Err error

	// Exactly one of the two is set: engine for live runs, the frozen
	// plan-backed state (schedule + compile-time metrics) for results
	// served by the plan cache (see RunCached).
	engine   *runtime.Engine
	schedule []runtime.ScheduledTask
	metrics  *obs.Registry
}

// DeviceTrace exposes the busy/transfer interval traces of device i
// recorded during a Trace-enabled run. Plan-backed results carry no
// interval traces and return nil slices.
func (r *Result) DeviceTrace(i int) (busy, xfer []runtime.Interval) {
	if r.engine == nil {
		return nil, nil
	}
	return r.engine.DeviceTrace(i)
}

// Digest returns the run's schedule digest (see runtime.Stats.ScheduleDigest).
func (r *Result) Digest() uint64 { return r.Stats.ScheduleDigest }

// Metrics returns the engine's metrics registry for this run. Plan-backed
// results return the compile run's frozen registry.
func (r *Result) Metrics() *obs.Registry {
	if r.engine == nil {
		if r.metrics == nil {
			return obs.NewRegistry()
		}
		return r.metrics
	}
	return r.engine.Metrics()
}

// WriteChromeTrace renders the run's timeline as Chrome trace-event JSON.
// nt, when positive, labels kernel spans in the paper's task notation
// (only meaningful for Run results; pass 0 for RunDTD's insertion ids).
// Plan-backed results carry no interval traces and return an error.
func (r *Result) WriteChromeTrace(w io.Writer, nt int) error {
	if r.engine == nil {
		return fmt.Errorf("cholesky: chrome traces need a live run (plan-backed result)")
	}
	var name func(id int) string
	if nt > 0 {
		name = func(id int) string { return TaskName(nt, id) }
	}
	return r.engine.WriteChromeTrace(w, name)
}

// Run executes the adaptive mixed-precision tile Cholesky described by cfg
// and returns its simulated statistics (and, in numeric mode, leaves the
// factor L in cfg.Matrix's lower tiles).
func Run(cfg Config) (*Result, error) {
	g, err := newGraph(cfg)
	if err != nil {
		return nil, err
	}
	eng := runtime.New(cfg.Platform, g)
	eng.Trace = cfg.Trace
	eng.Audit = cfg.Audit
	eng.Inject(cfg.Faults)
	eng.Policy = cfg.Sched
	eng.Bcast = cfg.Bcast
	eng.EngineWorkers = cfg.EngineWorkers
	if cfg.Lookahead > 0 {
		eng.Lookahead = cfg.Lookahead
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Stats:    stats,
		Strategy: cfg.Strategy,
		Err:      g.Err(),
		engine:   eng,
	}
	res.countConversions(cfg)
	return res, nil
}

// newGraph validates cfg and builds the PTG task graph of one
// factorization (shared by Run and the plan front-end).
func newGraph(cfg Config) (*graph, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("cholesky: nil platform")
	}
	if cfg.Maps == nil {
		return nil, fmt.Errorf("cholesky: nil precision maps")
	}
	g := &graph{
		ids:      newIDs(cfg.Desc.NT),
		desc:     cfg.Desc,
		maps:     cfg.Maps,
		plat:     cfg.Platform,
		strat:    cfg.Strategy,
		mat:      cfg.Matrix,
		err:      new(atomic.Value),
		rankSeen: make([]int64, cfg.Platform.Ranks),
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	if g.mat != nil {
		g.wire = make([][]float64, cfg.Desc.NT*(cfg.Desc.NT+1)/2)
	}
	return g, nil
}

// countConversions fills the STC/TTC task counters from the maps.
func (r *Result) countConversions(cfg Config) {
	if cfg.Strategy == ForceTTC {
		_, r.CommTasks = cfg.Maps.STCCount()
	} else {
		r.STCTasks, r.CommTasks = cfg.Maps.STCCount()
	}
}

// TheoreticalFlops returns the flop count of an N×N Cholesky, N³/3.
func TheoreticalFlops(n int) float64 {
	fn := float64(n)
	return fn * fn * fn / 3
}

// TaskName renders a task id as the paper's notation: POTRF(k), TRSM(m,k),
// SYRK(m,k) or GEMM(m,n,k).
func TaskName(nt, id int) string {
	s := newIDs(nt)
	op, m, n, k := s.decode(id)
	switch op {
	case opPotrf:
		return fmt.Sprintf("POTRF(%d)", k)
	case opTrsm:
		return fmt.Sprintf("TRSM(%d,%d)", m, k)
	case opSyrk:
		return fmt.Sprintf("SYRK(%d,%d)", m, k)
	default:
		return fmt.Sprintf("GEMM(%d,%d,%d)", m, n, k)
	}
}

// Schedule returns the simulated task timeline of a Trace-enabled run,
// labeled in the paper's notation — the Fig 3 execution demonstration.
// Labels are only meaningful for Run (PTG ids); RunDTD results use
// insertion-order ids and should not be passed here.
func (r *Result) Schedule(nt int) []ScheduledTask {
	raw := r.schedule
	if r.engine != nil {
		raw = r.engine.ScheduleTrace()
	}
	out := make([]ScheduledTask, len(raw))
	for i, t := range raw {
		out[i] = ScheduledTask{
			Name:   TaskName(nt, t.ID),
			Device: t.Device,
			Start:  t.Start,
			End:    t.End,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ScheduledTask is one labeled entry of the simulated timeline.
type ScheduledTask struct {
	Name       string
	Device     int
	Start, End float64
}
