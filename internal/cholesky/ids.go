// Package cholesky implements the adaptive mixed-precision tile Cholesky
// factorization of Algorithm 1 as a parameterized task graph over the
// runtime engine: POTRF, TRSM, SYRK and GEMM task classes with algebraic
// dependencies, per-tile kernel precisions from the precision map, and the
// automated conversion strategy of Algorithm 2 deciding the wire format of
// every communication (STC at the sender or TTC at the receiver).
package cholesky

import "fmt"

// Task kinds, in id-segment order.
const (
	opPotrf = iota
	opTrsm
	opSyrk
	opGemm
)

// ids maps between task coordinates and dense integer ids:
//
//	POTRF(k)     for 0 ≤ k < NT
//	TRSM(m,k)    for 0 ≤ k < m < NT
//	SYRK(m,k)    for 0 ≤ k < m < NT
//	GEMM(m,n,k)  for 0 ≤ k < n < m < NT
//
// GEMM triples use the combinatorial number system, so every mapping is
// O(1) or O(log NT) with no stored tables — the PTG property that keeps
// Summit-scale graphs (10⁷ tasks) in O(1) memory per task.
type ids struct {
	nt       int
	pairs    int // NT(NT-1)/2
	triples  int // C(NT,3)
	trsmBase int
	syrkBase int
	gemmBase int
	numTasks int
	// Inversion tables: pyr[m] = m(m-1)/2 and tri[m] = C(m,3) for
	// m ∈ [0, nt]. Decoding an id binary-searches these instead of taking
	// float square/cube roots — decode runs three-plus times per task on
	// the phantom scale path, and nt+1 ints stay cache-resident.
	pyr []int
	tri []int
}

func newIDs(nt int) ids {
	pairs := nt * (nt - 1) / 2
	triples := nt * (nt - 1) * (nt - 2) / 6
	pyr := make([]int, nt+1)
	tri := make([]int, nt+1)
	for m := 0; m <= nt; m++ {
		pyr[m] = m * (m - 1) / 2
		tri[m] = c3(m)
	}
	return ids{
		nt:       nt,
		pairs:    pairs,
		triples:  triples,
		trsmBase: nt,
		syrkBase: nt + pairs,
		gemmBase: nt + 2*pairs,
		numTasks: nt + 2*pairs + triples,
		pyr:      pyr,
		tri:      tri,
	}
}

func pairIdx(m, k int) int { return m*(m-1)/2 + k }

// unpair inverts pairIdx: returns (m, k) with k < m, where m is the largest
// value with pyr[m] ≤ idx.
//
//geompc:hot
func (s *ids) unpair(idx int) (m, k int) {
	lo, hi := 1, s.nt
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if s.pyr[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, idx - s.pyr[lo]
}

func c3(m int) int { return m * (m - 1) * (m - 2) / 6 }

func tripleIdx(m, n, k int) int { return c3(m) + n*(n-1)/2 + k }

// untriple inverts tripleIdx: returns (m, n, k) with k < n < m.
//
//geompc:hot
func (s *ids) untriple(idx int) (m, n, k int) {
	lo, hi := 2, s.nt
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if s.tri[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	n, k = s.unpair(idx - s.tri[lo])
	return lo, n, k
}

func (s ids) potrf(k int) int      { return k }
func (s ids) trsm(m, k int) int    { return s.trsmBase + pairIdx(m, k) }
func (s ids) syrk(m, k int) int    { return s.syrkBase + pairIdx(m, k) }
func (s ids) gemm(m, n, k int) int { return s.gemmBase + tripleIdx(m, n, k) }

// decode returns the kind and coordinates of a task id. For POTRF only k is
// meaningful; for TRSM/SYRK, (m, k); for GEMM, (m, n, k).
//
//geompc:hot
func (s ids) decode(id int) (op, m, n, k int) {
	switch {
	case id < s.trsmBase:
		return opPotrf, id, 0, id
	case id < s.syrkBase:
		m, k = s.unpair(id - s.trsmBase)
		return opTrsm, m, 0, k
	case id < s.gemmBase:
		m, k = s.unpair(id - s.syrkBase)
		return opSyrk, m, 0, k
	case id < s.numTasks:
		m, n, k = s.untriple(id - s.gemmBase)
		return opGemm, m, n, k
	}
	panic(fmt.Sprintf("cholesky: task id %d out of range [0,%d)", id, s.numTasks)) //geompc:nolint hotalloc panic rendering; decode is total over sealed graph ids
}
