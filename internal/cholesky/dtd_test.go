package cholesky

import (
	"testing"

	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// buildNumericConfig assembles a shared numeric configuration for the
// PTG-vs-DTD equivalence tests.
func buildNumericConfig(t *testing.T, nt int, ranks, devPerRank int) (Config, Config) {
	t.Helper()
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(21, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	pg, qg := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, pg, qg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		mat := tile.NewMatrix(d, false)
		mat.Fill(func(tl *tile.Tile, r0, c0 int) {
			geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
		})
		maps := precmap.New(precmap.FromMatrix(mat, 1e-6, prec.CholeskySet), 1e-6)
		mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
		plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat, Strategy: Auto}
	}
	return mk(), mk()
}

func TestDTDMatchesPTGNumeric(t *testing.T) {
	cfgPTG, cfgDTD := buildNumericConfig(t, 6, 1, 1)
	ptg, err := Run(cfgPTG)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := RunDTD(cfgDTD)
	if err != nil {
		t.Fatal(err)
	}
	if ptg.Err != nil || dtd.Err != nil {
		t.Fatal(ptg.Err, dtd.Err)
	}
	a := cfgPTG.Matrix.LowerToDense()
	b := cfgDTD.Matrix.LowerToDense()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("factor differs at %d: PTG %g vs DTD %g", i, a[i], b[i])
		}
	}
	if ptg.Stats.Tasks != dtd.Stats.Tasks {
		t.Errorf("task counts differ: %d vs %d", ptg.Stats.Tasks, dtd.Stats.Tasks)
	}
	if ptg.Stats.TotalFlops != dtd.Stats.TotalFlops {
		t.Errorf("flops differ: %g vs %g", ptg.Stats.TotalFlops, dtd.Stats.TotalFlops)
	}
}

func TestDTDMatchesPTGSchedule(t *testing.T) {
	// With identical specs, priorities and (semantically) identical edges,
	// the two front-ends must yield identical virtual statistics.
	cfgPTG, cfgDTD := buildNumericConfig(t, 8, 2, 2)
	ptg, err := Run(cfgPTG)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := RunDTD(cfgDTD)
	if err != nil {
		t.Fatal(err)
	}
	if ptg.Stats.Makespan != dtd.Stats.Makespan {
		t.Errorf("makespans differ: PTG %.9g vs DTD %.9g", ptg.Stats.Makespan, dtd.Stats.Makespan)
	}
	if ptg.Stats.BytesH2D != dtd.Stats.BytesH2D || ptg.Stats.BytesNet != dtd.Stats.BytesNet {
		t.Errorf("data motion differs: H2D %d/%d, net %d/%d",
			ptg.Stats.BytesH2D, dtd.Stats.BytesH2D, ptg.Stats.BytesNet, dtd.Stats.BytesNet)
	}
	if ptg.Stats.Energy != dtd.Stats.Energy {
		t.Errorf("energy differs: %g vs %g", ptg.Stats.Energy, dtd.Stats.Energy)
	}
}

func TestDTDPhantom(t *testing.T) {
	nt := 12
	d, _ := tile.NewDesc(nt*256, 256, 1, 1)
	maps := precmap.New(precmap.Uniform(nt, prec.FP16), 1e-2)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 1)
	cfg := Config{Desc: d, Maps: maps, Platform: plat}
	ptg, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := RunDTD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ptg.Stats.Makespan != dtd.Stats.Makespan {
		t.Errorf("phantom makespans differ: %g vs %g", ptg.Stats.Makespan, dtd.Stats.Makespan)
	}
}

func TestDTDGraphInference(t *testing.T) {
	// Direct DTD builder semantics: RAW, WAR, WAW edges.
	g := runtime.NewDTDGraph()
	g.Data(1, 0)
	spec := func() runtime.TaskSpec {
		return runtime.TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1}
	}
	w1, _ := g.Insert(spec(), runtime.Access{Data: 1, Mode: runtime.Write, WireBytes: 8})
	r1, _ := g.Insert(spec(), runtime.Access{Data: 1, Mode: runtime.Read, WireBytes: 8})
	r2, _ := g.Insert(spec(), runtime.Access{Data: 1, Mode: runtime.Read, WireBytes: 8})
	w2, _ := g.Insert(spec(), runtime.Access{Data: 1, Mode: runtime.Write, WireBytes: 8})

	if g.NumPredecessors(w1) != 0 {
		t.Error("first writer must have no deps")
	}
	if g.NumPredecessors(r1) != 1 || g.NumPredecessors(r2) != 1 {
		t.Error("readers must depend only on the writer")
	}
	// Second writer: WAW on w1 + WAR on both readers.
	if g.NumPredecessors(w2) != 3 {
		t.Errorf("second writer has %d deps, want 3 (WAW + 2×WAR)", g.NumPredecessors(w2))
	}
	var buf []int
	succs := g.Successors(w1, buf)
	if len(succs) != 3 { // r1, r2, w2
		t.Errorf("w1 has %d successors, want 3", len(succs))
	}
}

func TestDTDDoubleWriteRejected(t *testing.T) {
	g := runtime.NewDTDGraph()
	_, err := g.Insert(runtime.TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64},
		runtime.Access{Data: 1, Mode: runtime.Write, WireBytes: 8},
		runtime.Access{Data: 2, Mode: runtime.Write, WireBytes: 8})
	if err == nil {
		t.Error("two Write accesses accepted")
	}
}

func TestDTDSealedAfterSeal(t *testing.T) {
	g := runtime.NewDTDGraph()
	if _, err := g.Insert(runtime.TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64},
		runtime.Access{Data: 1, Mode: runtime.Write, WireBytes: 8}); err != nil {
		t.Fatal(err)
	}
	// Spec is a pure read (parallel-mode shards call it concurrently); it
	// must not latch the seal.
	var s runtime.TaskSpec
	g.Spec(0, &s)
	if _, err := g.Insert(runtime.TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64},
		runtime.Access{Data: 2, Mode: runtime.Write, WireBytes: 8}); err != nil {
		t.Errorf("insertion after a Spec read was rejected: %v", err)
	}
	// The engine seals at Run start; after that, insertion fails.
	g.Seal()
	if _, err := g.Insert(runtime.TaskSpec{}); err == nil {
		t.Error("insertion after execution started was accepted")
	}
}
