package cholesky

import (
	"geompc/internal/runtime"
)

// RunDTD executes the same factorization as Run, but expresses it through
// the runtime's Dynamic Task Discovery interface: tasks are inserted in the
// sequential order of Algorithm 1 and every dependence edge is *inferred*
// from Read/Write data-access annotations, instead of being declared
// algebraically by the PTG. For the Cholesky DAG the inferred edges are
// semantically identical to the PTG's, so the two front-ends must produce
// the same simulated statistics and (in numeric mode) the same factor — a
// property the test suite asserts. This mirrors PaRSEC offering PTG and DTD
// as interchangeable DSLs over one runtime (§III-B).
func RunDTD(cfg Config) (*Result, error) {
	g, dtd, err := buildDTD(cfg)
	if err != nil {
		return nil, err
	}
	eng := runtime.New(cfg.Platform, dtd)
	eng.Trace = cfg.Trace
	eng.Audit = cfg.Audit
	eng.Inject(cfg.Faults)
	eng.Policy = cfg.Sched
	eng.Bcast = cfg.Bcast
	eng.EngineWorkers = cfg.EngineWorkers
	if cfg.Lookahead > 0 {
		eng.Lookahead = cfg.Lookahead
	}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Stats:    stats,
		Strategy: cfg.Strategy,
		Err:      g.Err(),
		engine:   eng,
	}
	res.countConversions(cfg)
	return res, nil
}

// buildDTD rebuilds the factorization as a Dynamic Task Discovery graph:
// tasks inserted in Algorithm 1 order with inferred edges. The insertion is
// deterministic, so a plan compiled from one buildDTD replays correctly
// against a fresh one (insertion ids coincide).
func buildDTD(cfg Config) (*graph, *runtime.DTDGraph, error) {
	g, err := newGraph(cfg)
	if err != nil {
		return nil, nil, err
	}

	dtd := runtime.NewDTDGraph()
	g.InitialData(dtd.Data)

	nt := cfg.Desc.NT
	var spec runtime.TaskSpec
	insert := func(id int) error {
		spec = runtime.TaskSpec{}
		g.Spec(id, &spec)
		accesses := make([]runtime.Access, 0, len(spec.Inputs)+1)
		for _, in := range spec.Inputs {
			accesses = append(accesses, runtime.Access{
				Data: in.Data, Mode: runtime.Read,
				WireBytes:    in.WireBytes,
				Prec:         in.WirePrec,
				ConvertElems: in.ConvertElems,
				ConvFrom:     in.ConvFrom, ConvTo: in.ConvTo,
			})
		}
		accesses = append(accesses, runtime.Access{
			Data: spec.Output.Data, Mode: runtime.Write,
			WireBytes: spec.Output.Bytes, Prec: spec.Output.Prec,
		})
		_, err := dtd.Insert(spec, accesses...)
		return err
	}

	// Algorithm 1, inserted sequentially.
	for k := 0; k < nt; k++ {
		if err := insert(g.potrf(k)); err != nil {
			return nil, nil, err
		}
		for m := k + 1; m < nt; m++ {
			if err := insert(g.trsm(m, k)); err != nil {
				return nil, nil, err
			}
		}
		for m := k + 1; m < nt; m++ {
			if err := insert(g.syrk(m, k)); err != nil {
				return nil, nil, err
			}
		}
		for m := k + 2; m < nt; m++ {
			for n := k + 1; n < m; n++ {
				if err := insert(g.gemm(m, n, k)); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	return g, dtd, nil
}
