package cholesky

import (
	"fmt"
	"sync/atomic"

	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/tile"
)

// Strategy selects how communication precision is chosen. It is the
// backend-agnostic solver.Strategy — aliased here so the direct backend's
// historical API (cholesky.Auto, cholesky.ForceTTC) keeps compiling
// unchanged now that the solve path is pluggable (see internal/solver).
type Strategy = solver.Strategy

const (
	// Auto is the paper's automated conversion strategy: Algorithm 2's
	// comm-precision map decides STC vs TTC per task.
	Auto = solver.Auto
	// ForceTTC always sends at storage precision with receiver-side
	// conversion — the lower bound of Fig 8.
	ForceTTC = solver.ForceTTC
)

// graph is the runtime.Graph of one factorization.
type graph struct {
	ids
	desc  tile.Desc
	maps  *precmap.Maps
	plat  *runtime.Platform
	strat Strategy

	mat *tile.Matrix // nil in phantom mode
	// wire holds the communicated representation of each published tile in
	// numeric mode (the STC down-cast copy, or the tile data itself under
	// TTC). Indexed like the packed lower triangle.
	wire [][]float64

	// err is shared (by pointer) across shard views: any rank's numeric
	// failure is the run's failure.
	err *atomic.Value // first numeric error (POTRF failure)

	rankSeen []int64 // scratch: per-rank visit stamps for RemoteRanks dedupe
	stamp    int64
}

// ShardView implements runtime.ShardableGraph. Spec mutates the
// rankSeen/stamp dedupe scratch, so each rank shard gets a clone with its
// own scratch; everything else (descriptor, maps, matrix, wire buffers, the
// error slot) is immutable or internally synchronized and is shared.
func (g *graph) ShardView() runtime.Graph {
	v := *g
	v.rankSeen = make([]int64, g.plat.Ranks)
	v.stamp = 0
	return &v
}

func (g *graph) NumTasks() int { return g.numTasks }

// dataID packs tile coordinates.
func (g *graph) dataID(i, j int) runtime.DataID {
	return runtime.DataID(int64(i)*int64(g.nt) + int64(j))
}

// deviceOf implements owner-computes task placement: every task runs on the
// device owning its output tile. Tiles distribute 2D block-cyclically over
// ranks, then round-robin over the rank's GPUs by local tile coordinates.
func (g *graph) deviceOf(i, j int) int {
	rank := g.desc.RankOf(i, j)
	local := 0
	if g.plat.DevPerRank > 1 {
		local = (i/g.desc.P + j/g.desc.Q) % g.plat.DevPerRank
	}
	return g.plat.DeviceOf(rank, local)
}

// wirePrec returns the precision tile (i,j) travels in when its producing
// task communicates, per the active strategy.
func (g *graph) wirePrec(i, j int) prec.Precision {
	if g.strat == ForceTTC {
		return g.maps.Storage[i][j]
	}
	return g.maps.Comm[i][j]
}

func (g *graph) wireBytes(i, j int) int64 {
	return int64(g.desc.TileDim(i)) * int64(g.desc.TileDim(j)) * int64(g.wirePrec(i, j).InputBytes())
}

func (g *graph) storageBytes(i, j int) int64 {
	return int64(g.desc.TileDim(i)) * int64(g.desc.TileDim(j)) * int64(g.maps.Storage[i][j].InputBytes())
}

// trsmExec returns the execution precision of TRSM on tile (m,k): the
// kernel precision if FP64/FP32, otherwise FP32 (§V hardware constraint) —
// which is by construction the tile's storage precision.
func (g *graph) trsmExec(m, k int) prec.Precision { return g.maps.Storage[m][k] }

// wireFormat maps a precision to the element format actually on the wire:
// half-input precisions share the binary16 representation. The mapping is
// shared with the iterative backend as prec.Wire.
func wireFormat(p prec.Precision) prec.Precision { return prec.Wire(p) }

// execInputFormat is the element format a kernel consumes its inputs in.
func execInputFormat(p prec.Precision) prec.Precision { return wireFormat(p) }

// DataIDBound implements runtime.DataBounder: tile ids pack as i·nt+j, so
// every DataID lies below nt², letting the engine index host availability
// densely instead of through a map.
func (g *graph) DataIDBound() int64 { return int64(g.nt) * int64(g.nt) }

// Writers implements runtime.LineageGraph: the tasks writing tile (i,j) in
// execution order, which is what the engine's fault-recovery path replays
// to reconstruct a tile lost to a device failure. A diagonal tile (k,k)
// accumulates SYRK(k,0..k-1) and is finalized by POTRF(k); an off-diagonal
// tile (m,k) accumulates GEMM(m,k,0..k-1) and is finalized by TRSM(m,k).
func (g *graph) Writers(d runtime.DataID, buf []int) []int {
	i, j := int(int64(d)/int64(g.nt)), int(int64(d)%int64(g.nt))
	if i < 0 || j > i || i >= g.nt {
		return buf
	}
	if i == j {
		for l := 0; l < i; l++ {
			buf = append(buf, g.syrk(i, l))
		}
		return append(buf, g.potrf(i)) //geompc:nolint hotalloc appends into the engine's reused writer buffer; grows only to steady state
	}
	for l := 0; l < j; l++ {
		buf = append(buf, g.gemm(i, j, l))
	}
	return append(buf, g.trsm(i, j)) //geompc:nolint hotalloc appends into the engine's reused writer buffer; grows only to steady state
}

// NumPredecessors implements runtime.Graph.
func (g *graph) NumPredecessors(id int) int {
	op, m, _, k := g.decode(id)
	switch op {
	case opPotrf:
		if k == 0 {
			return 0
		}
		return 1 // SYRK(k, k-1)
	case opTrsm:
		if k == 0 {
			return 1 // POTRF(0)
		}
		return 2 // POTRF(k) + GEMM(m,k,k-1)
	case opSyrk:
		if k == 0 {
			return 1 // TRSM(m,0)
		}
		return 2 // TRSM(m,k) + SYRK(m,k-1)
	case opGemm:
		if k == 0 {
			return 2 // TRSM(m,0), TRSM(n,0)
		}
		return 3 // + GEMM(m,n,k-1)
	}
	_ = m
	panic("unreachable")
}

// Successors implements runtime.Graph.
func (g *graph) Successors(id int, buf []int) []int {
	op, m, n, k := g.decode(id)
	switch op {
	case opPotrf:
		for i := k + 1; i < g.nt; i++ {
			buf = append(buf, g.trsm(i, k))
		}
	case opTrsm:
		buf = append(buf, g.syrk(m, k))
		for j := k + 1; j < m; j++ {
			buf = append(buf, g.gemm(m, j, k))
		}
		for i := m + 1; i < g.nt; i++ {
			buf = append(buf, g.gemm(i, m, k))
		}
	case opSyrk:
		if k == m-1 {
			buf = append(buf, g.potrf(m))
		} else {
			buf = append(buf, g.syrk(m, k+1))
		}
	case opGemm:
		if k == n-1 {
			buf = append(buf, g.trsm(m, n))
		} else {
			buf = append(buf, g.gemm(m, n, k+1))
		}
	}
	return buf
}

// InitialData implements runtime.Graph: every lower tile starts host-
// resident at its owning rank (matrix generation phase, not timed).
func (g *graph) InitialData(visit func(d runtime.DataID, rank int)) {
	for i := 0; i < g.nt; i++ {
		for j := 0; j <= i; j++ {
			visit(g.dataID(i, j), g.desc.RankOf(i, j))
		}
	}
}

// priority approximates the tile Cholesky critical path: panel k tasks
// outrank panel k+1 tasks; within a panel POTRF > TRSM > SYRK > GEMM, with
// GEMMs urgent in proportion to the panel they unblock.
func (g *graph) priority(op, m, n, k int) int64 {
	nt := int64(g.nt)
	switch op {
	case opPotrf:
		return (nt - int64(k)) * 4096 * 4
	case opTrsm:
		return (nt-int64(k))*4096*4 - 1024 - int64(m-k)
	case opSyrk:
		return (nt-int64(k))*4096*3 - int64(m)
	case opGemm:
		// GEMM(m,n,k) unblocks TRSM(m,n) at panel n.
		return (nt-int64(n))*4096*2 - int64(m)
	}
	panic("unreachable")
}

// consumerSpread collects the distinct ranks (≠ producer's) among the
// consumer tiles listed by visit — the network broadcast targets. Results
// append to buf (pass a recycled slice to stay allocation-free).
func (g *graph) consumerSpread(buf []int, prodDev int, tiles func(visit func(i, j int))) []int {
	g.stamp++
	prodRank := g.plat.RankOfDevice(prodDev)
	//geompc:nolint hotalloc visitor callback never escapes tiles; Go keeps non-escaping closures off the heap
	tiles(func(i, j int) {
		r := g.plat.RankOfDevice(g.deviceOf(i, j))
		if r == prodRank {
			return
		}
		if g.rankSeen[r] != g.stamp {
			g.rankSeen[r] = g.stamp
			buf = append(buf, r)
		}
	})
	return buf
}

// reusePublish hands back the spec's recycled PublishSpec (the engine
// returns completed specs with their allocations intact) or a fresh one.
func reusePublish(s *runtime.TaskSpec) *runtime.PublishSpec {
	if p := s.Publish; p != nil {
		return p
	}
	return &runtime.PublishSpec{} //geompc:nolint hotalloc first fill of the spec slot; the TaskSpec recycles it on every later emit
}

// bd is the tile edge length as a float64 flop factor. A method, not a
// closure inside Spec: the emit path is //geompc:hot and a closure would
// allocate on every call.
func (g *graph) bd(x int) float64 { return float64(g.desc.TileDim(x)) }

// Spec implements runtime.Graph.
func (g *graph) Spec(id int, s *runtime.TaskSpec) {
	op, m, n, k := g.decode(id)
	nt := g.nt

	switch op {
	case opPotrf:
		s.Kind = hw.KindPotrf
		s.Device = g.deviceOf(k, k)
		s.Prec = g.maps.Kernel[k][k]
		s.Flops = g.bd(k) * g.bd(k) * g.bd(k) / 3
		s.Priority = g.priority(op, k, 0, k)
		s.Inputs = s.Inputs[:0]
		s.Output = runtime.OutputSpec{Data: g.dataID(k, k), Bytes: g.storageBytes(k, k), Prec: wireFormat(g.maps.Storage[k][k])}
		if k < nt-1 {
			pub := reusePublish(s)
			//geompc:nolint hotalloc tile-enumerator callback never escapes consumerSpread; Go keeps non-escaping closures off the heap
			remote := g.consumerSpread(pub.RemoteRanks[:0], s.Device, func(visit func(i, j int)) {
				for i := k + 1; i < nt; i++ {
					visit(i, k)
				}
			})
			wp := g.wirePrec(k, k)
			*pub = runtime.PublishSpec{
				WireBytes:   g.wireBytes(k, k),
				WirePrec:    wireFormat(wp),
				RemoteRanks: remote,
			}
			if wireFormat(wp) != wireFormat(g.maps.Storage[k][k]) {
				pub.ConvertElems = int(g.bd(k) * g.bd(k))
				pub.ConvFrom, pub.ConvTo = g.maps.Storage[k][k], wp
			}
			s.Publish = pub
		} else {
			s.Publish = nil
		}
		s.Body = g.potrfBody(k)

	case opTrsm:
		s.Kind = hw.KindTrsm
		s.Device = g.deviceOf(m, k)
		s.Prec = g.trsmExec(m, k)
		s.Flops = g.bd(m) * g.bd(k) * g.bd(k)
		s.Priority = g.priority(op, m, 0, k)
		s.Inputs = s.Inputs[:0]
		s.Inputs = append(s.Inputs, g.inputSpec(k, k, s.Device, execInputFormat(s.Prec)))
		s.Output = runtime.OutputSpec{Data: g.dataID(m, k), Bytes: g.storageBytes(m, k), Prec: wireFormat(g.maps.Storage[m][k])}
		pub := reusePublish(s)
		//geompc:nolint hotalloc tile-enumerator callback never escapes consumerSpread; Go keeps non-escaping closures off the heap
		remote := g.consumerSpread(pub.RemoteRanks[:0], s.Device, func(visit func(i, j int)) {
			visit(m, m) // SYRK
			for j := k + 1; j < m; j++ {
				visit(m, j)
			}
			for i := m + 1; i < nt; i++ {
				visit(i, m)
			}
		})
		wp := g.wirePrec(m, k)
		*pub = runtime.PublishSpec{
			WireBytes:   g.wireBytes(m, k),
			WirePrec:    wireFormat(wp),
			RemoteRanks: remote,
		}
		if wireFormat(wp) != wireFormat(g.maps.Storage[m][k]) {
			pub.ConvertElems = int(g.bd(m) * g.bd(k))
			pub.ConvFrom, pub.ConvTo = g.maps.Storage[m][k], wp
		}
		s.Publish = pub
		s.Body = g.trsmBody(m, k)

	case opSyrk:
		s.Kind = hw.KindSyrk
		s.Device = g.deviceOf(m, m)
		s.Prec = g.maps.Kernel[m][m]
		s.Flops = g.bd(m) * g.bd(m) * g.bd(k)
		s.Priority = g.priority(op, m, 0, k)
		s.Inputs = s.Inputs[:0]
		s.Inputs = append(s.Inputs, g.inputSpec(m, k, s.Device, execInputFormat(s.Prec)))
		s.Output = runtime.OutputSpec{Data: g.dataID(m, m), Bytes: g.storageBytes(m, m), Prec: wireFormat(g.maps.Storage[m][m])}
		s.Publish = nil
		s.Body = g.syrkBody(m, k)

	case opGemm:
		s.Kind = hw.KindGemm
		s.Device = g.deviceOf(m, n)
		s.Prec = g.maps.Kernel[m][n]
		s.Flops = 2 * g.bd(m) * g.bd(n) * g.bd(k)
		s.Priority = g.priority(op, m, n, k)
		s.Inputs = s.Inputs[:0]
		inFmt := execInputFormat(s.Prec)
		s.Inputs = append(s.Inputs,
			g.inputSpec(m, k, s.Device, inFmt),
			g.inputSpec(n, k, s.Device, inFmt))
		s.Output = runtime.OutputSpec{Data: g.dataID(m, n), Bytes: g.storageBytes(m, n), Prec: wireFormat(g.maps.Storage[m][n])}
		s.Publish = nil
		s.Body = g.gemmBody(m, n, k)
	}
}

// inputSpec builds the InputSpec for reading tile (i,j) with the wire
// format the automated conversion strategy chose for its producer: once a
// tile is published, host memory holds the wire representation, so every
// (re-)fetch — same device after eviction, another device of the rank, or a
// remote rank — moves wire bytes. A receiver-side conversion is charged
// when the wire format differs from the format the kernel consumes (the
// per-consumer conversion STC saves and TTC pays, §VI).
func (g *graph) inputSpec(i, j, dev int, needFmt prec.Precision) runtime.InputSpec {
	in := runtime.InputSpec{
		Data:      g.dataID(i, j),
		WireBytes: g.wireBytes(i, j),
		WirePrec:  wireFormat(g.wirePrec(i, j)),
	}
	if wf := wireFormat(g.wirePrec(i, j)); wf != needFmt {
		in.ConvertElems = g.desc.TileDim(i) * g.desc.TileDim(j)
		in.ConvFrom, in.ConvTo = wf, needFmt
	}
	_ = dev
	return in
}

// failed records the first numeric failure.
func (g *graph) fail(err error) {
	g.err.CompareAndSwap(nil, err)
}

// Err returns the first numeric failure of the run, if any.
func (g *graph) Err() error {
	if v := g.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

var (
	_ runtime.Graph          = (*graph)(nil)
	_ runtime.ShardableGraph = (*graph)(nil)
)

func (g *graph) validate() error {
	if g.maps.NT != g.desc.NT {
		return fmt.Errorf("cholesky: precision map NT=%d does not match descriptor NT=%d", g.maps.NT, g.desc.NT)
	}
	if g.mat != nil && g.mat.NT != g.desc.NT {
		return fmt.Errorf("cholesky: matrix NT=%d does not match descriptor NT=%d", g.mat.NT, g.desc.NT)
	}
	return nil
}
