package cholesky

import (
	"fmt"
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/linalg"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

func TestIDRoundTrip(t *testing.T) {
	for _, nt := range []int{1, 2, 3, 5, 8, 13} {
		s := newIDs(nt)
		seen := make(map[int]bool, s.numTasks)
		check := func(id, op, m, n, k int) {
			t.Helper()
			if seen[id] {
				t.Fatalf("nt=%d: duplicate id %d", nt, id)
			}
			seen[id] = true
			gop, gm, gn, gk := s.decode(id)
			if gop != op || gk != k || (op != opPotrf && gm != m) || (op == opGemm && gn != n) {
				t.Fatalf("nt=%d id=%d: decode = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
					nt, id, gop, gm, gn, gk, op, m, n, k)
			}
		}
		for k := 0; k < nt; k++ {
			check(s.potrf(k), opPotrf, k, 0, k)
		}
		for m := 1; m < nt; m++ {
			for k := 0; k < m; k++ {
				check(s.trsm(m, k), opTrsm, m, 0, k)
				check(s.syrk(m, k), opSyrk, m, 0, k)
			}
		}
		for m := 2; m < nt; m++ {
			for n := 1; n < m; n++ {
				for k := 0; k < n; k++ {
					check(s.gemm(m, n, k), opGemm, m, n, k)
				}
			}
		}
		if len(seen) != s.numTasks {
			t.Fatalf("nt=%d: enumerated %d ids, numTasks=%d", nt, len(seen), s.numTasks)
		}
	}
}

func TestGraphEdgesConsistent(t *testing.T) {
	// For every task, its in-degree must equal the number of times it
	// appears in other tasks' successor lists.
	nt := 6
	g := buildTestGraph(t, nt, 1e-4, nil, Auto, 1, 1)
	indeg := make([]int, g.numTasks)
	var buf []int
	for id := 0; id < g.numTasks; id++ {
		buf = g.Successors(id, buf[:0])
		for _, s := range buf {
			indeg[s]++
		}
	}
	for id := 0; id < g.numTasks; id++ {
		if indeg[id] != g.NumPredecessors(id) {
			op, m, n, k := g.decode(id)
			t.Fatalf("task %d (op=%d m=%d n=%d k=%d): in-degree %d vs declared %d",
				id, op, m, n, k, indeg[id], g.NumPredecessors(id))
		}
	}
}

// buildTestGraph assembles a numeric (or phantom if mat nil explicitly
// requested) graph over a jittered-grid sqexp covariance.
func buildTestGraph(t *testing.T, nt int, ureq float64, kernelOverride [][]prec.Precision, strat Strategy, ranks, devPerRank int) *graph {
	t.Helper()
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	p, q := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, p, q)
	if err != nil {
		t.Fatal(err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
	})
	kernel := kernelOverride
	if kernel == nil {
		kernel = precmap.FromMatrix(mat, ureq, prec.CholeskySet)
	}
	maps := precmap.New(kernel, ureq)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
	if err != nil {
		t.Fatal(err)
	}
	return &graph{
		ids: newIDs(nt), desc: d, maps: maps, plat: plat, strat: strat,
		mat: mat, wire: make([][]float64, nt*(nt+1)/2),
		rankSeen: make([]int64, plat.Ranks),
	}
}

// runConfig builds and runs a full numeric factorization, returning the
// matrix, the dense FP64 reference factor, and the result.
func runNumeric(t *testing.T, nt int, ureq float64, kernel [][]prec.Precision, strat Strategy, ranks, devPerRank int) (*tile.Matrix, []float64, *Result) {
	t.Helper()
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	p, q := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, p, q)
	if err != nil {
		t.Fatal(err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
	})
	dense := mat.ToDense()
	if err := linalg.PotrfLower(n, dense, n); err != nil {
		t.Fatal(err)
	}
	km := kernel
	if km == nil {
		km = precmap.FromMatrix(mat, ureq, prec.CholeskySet)
	}
	maps := precmap.New(km, ureq)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	return mat, dense, res
}

func TestNumericFP64MatchesDense(t *testing.T) {
	nt := 5
	mat, dense, res := runNumeric(t, nt, 0, precmap.UniformAll(nt, prec.FP64), Auto, 1, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	n := mat.N
	got := mat.LowerToDense()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(got[i*n+j] - dense[i*n+j]); d > 1e-11 {
				t.Fatalf("L(%d,%d) = %g, dense ref %g (diff %g)", i, j, got[i*n+j], dense[i*n+j], d)
			}
		}
	}
}

// lowerRelError compares two factors over the lower triangle only (dense
// POTRF leaves the original upper triangle untouched).
func lowerRelError(n int, got, ref []float64) float64 {
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := got[i*n+j] - ref[i*n+j]
			num += d * d
			den += ref[i*n+j] * ref[i*n+j]
		}
	}
	return math.Sqrt(num / den)
}

func TestNumericMPCloseToFP64(t *testing.T) {
	// Adaptive map at u_req=1e-6: the factor must match FP64 loosely, and
	// the reconstruction L·Lᵀ must be within a tolerance tied to u_req.
	nt := 6
	mat, dense, res := runNumeric(t, nt, 1e-6, nil, Auto, 1, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rel := lowerRelError(mat.N, mat.LowerToDense(), dense)
	if rel > 1e-3 {
		t.Errorf("MP factor relative error %g too large", rel)
	}
	if rel == 0 {
		t.Error("MP factor identical to FP64 — reduced precision never engaged?")
	}
}

func TestMPUsesReducedPrecisionTiles(t *testing.T) {
	g := buildTestGraph(t, 8, 1e-4, nil, Auto, 1, 1)
	counts := precmap.New(g.maps.Kernel, 1e-4).Counts()
	if counts[prec.FP16]+counts[prec.FP16x32]+counts[prec.FP32] == 0 {
		t.Fatal("test covariance produced no reduced-precision tiles; weak test")
	}
}

func TestSTCBeatsTTC(t *testing.T) {
	// Under the FP64/FP16 extreme, STC must move fewer H2D bytes and finish
	// no later than TTC (Fig 8's claim). Phantom mode at a realistic size
	// where the working set exceeds V100 memory — the regime where the
	// conversion strategy matters.
	nt, ts := 48, 2048
	d, err := tile.NewDesc(nt*ts, ts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	maps := precmap.New(precmap.Uniform(nt, prec.FP16), 1e-2)
	plat, err := runtime.NewPlatform(hw.SummitNode, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Strategy) *Result {
		r, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	stc, ttc := run(Auto), run(ForceTTC)
	// In the cached single-GPU regime bytes tie; STC must never move more.
	if stc.Stats.BytesH2D > ttc.Stats.BytesH2D {
		t.Errorf("STC H2D bytes %d above TTC %d", stc.Stats.BytesH2D, ttc.Stats.BytesH2D)
	}
	// The single-GPU gap comes from eliminating per-consumer conversion
	// kernels: TTC must be strictly slower.
	if stc.Stats.Makespan >= ttc.Stats.Makespan {
		t.Errorf("STC makespan %g not below TTC %g", stc.Stats.Makespan, ttc.Stats.Makespan)
	}
	if stc.STCTasks == 0 {
		t.Error("no STC tasks under all-FP16 map")
	}
	if ttc.STCTasks != 0 {
		t.Error("ForceTTC reported STC tasks")
	}
	// TTC pays per-consumer conversions; STC converts at the sender.
	if stc.Stats.SenderConversions == 0 {
		t.Error("STC made no sender conversions")
	}
	if ttc.Stats.ReceiverConversions <= stc.Stats.ReceiverConversions {
		t.Errorf("TTC receiver conversions %d not above STC %d",
			ttc.Stats.ReceiverConversions, stc.Stats.ReceiverConversions)
	}
}

func TestSTCReducesNetworkAndH2DAcrossRanks(t *testing.T) {
	// On a multi-rank platform the wire format governs network and H2D
	// volume: STC must move strictly fewer bytes (§VI's data-motion claim).
	nt, ts := 24, 2048
	d, err := tile.NewDesc(nt*ts, ts, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	maps := precmap.New(precmap.Uniform(nt, prec.FP16), 1e-2)
	plat, err := runtime.NewPlatform(hw.SummitNode, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Strategy) *Result {
		r, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	stc, ttc := run(Auto), run(ForceTTC)
	if stc.Stats.BytesNet >= ttc.Stats.BytesNet {
		t.Errorf("STC network bytes %d not below TTC %d", stc.Stats.BytesNet, ttc.Stats.BytesNet)
	}
	if stc.Stats.BytesH2D >= ttc.Stats.BytesH2D {
		t.Errorf("STC H2D bytes %d not below TTC %d", stc.Stats.BytesH2D, ttc.Stats.BytesH2D)
	}
	if stc.Stats.Makespan >= ttc.Stats.Makespan {
		t.Errorf("STC makespan %g not below TTC %g", stc.Stats.Makespan, ttc.Stats.Makespan)
	}
}

func TestNumericSameResultAcrossStrategiesOneDevice(t *testing.T) {
	// On one device no consumer ever reads a wire copy, so STC and TTC
	// must produce bit-identical factors.
	nt := 5
	kernel := precmap.Uniform(nt, prec.FP16x32)
	m1, _, r1 := runNumeric(t, nt, 1e-3, kernel, Auto, 1, 1)
	m2, _, r2 := runNumeric(t, nt, 1e-3, kernel, ForceTTC, 1, 1)
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	a, b := m1.LowerToDense(), m2.LowerToDense()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("factor differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestMultiRankNumeric(t *testing.T) {
	// 2 ranks × 2 devices: result must still be a valid factorization and
	// network traffic must appear.
	nt := 6
	mat, dense, res := runNumeric(t, nt, 1e-6, nil, Auto, 2, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.BytesNet == 0 {
		t.Error("multi-rank run produced no network traffic")
	}
	if rel := lowerRelError(mat.N, mat.LowerToDense(), dense); rel > 1e-3 {
		t.Errorf("multi-rank MP factor error %g", rel)
	}
}

func TestPhantomMatchesNumericCosts(t *testing.T) {
	// Phantom mode must produce the same virtual-time statistics as the
	// numeric run (bodies do not influence the simulation).
	nt := 6
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	d, _ := tile.NewDesc(n, ts, 1, 1)
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
	})
	maps := precmap.New(precmap.FromMatrix(mat, 1e-6, prec.CholeskySet), 1e-6)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 1)

	num, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat, Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Matrix: nil, Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if num.Stats.Makespan != ph.Stats.Makespan {
		t.Errorf("phantom makespan %g != numeric %g", ph.Stats.Makespan, num.Stats.Makespan)
	}
	if num.Stats.BytesH2D != ph.Stats.BytesH2D || num.Stats.Energy != ph.Stats.Energy {
		t.Error("phantom data motion/energy differ from numeric")
	}
	if ph.Err != nil {
		t.Error("phantom mode reported a numeric error")
	}
}

func TestNonSPDReportsError(t *testing.T) {
	nt := 3
	ts := 8
	n := nt * ts
	d, _ := tile.NewDesc(n, ts, 1, 1)
	mat := tile.NewMatrix(d, false)
	// An indefinite matrix: identity with one negative diagonal entry.
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		for i := 0; i < tl.M; i++ {
			for j := 0; j < tl.N; j++ {
				if r0+i == c0+j {
					tl.Data[i*tl.N+j] = 1
				}
			}
		}
	})
	mat.At(1, 1).Data[0] = -5
	maps := precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 1)
	res, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Error("indefinite matrix factored without error")
	}
}

func TestFlopAccounting(t *testing.T) {
	nt := 5
	_, _, res := runNumeric(t, nt, 0, precmap.UniformAll(nt, prec.FP64), Auto, 1, 1)
	n := float64(nt * 16)
	want := n * n * n / 3
	got := res.Stats.TotalFlops
	// Tile-level counts approximate N³/3 to O(N²·TS).
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("total flops %g too far from N³/3 = %g", got, want)
	}
	if TheoreticalFlops(nt*16) != want {
		t.Error("TheoreticalFlops mismatch")
	}
}

func TestDeterministicRuns(t *testing.T) {
	nt := 6
	_, _, r1 := runNumeric(t, nt, 1e-6, nil, Auto, 2, 2)
	_, _, r2 := runNumeric(t, nt, 1e-6, nil, Auto, 2, 2)
	if r1.Stats.Makespan != r2.Stats.Makespan || r1.Stats.Energy != r2.Stats.Energy ||
		r1.Stats.BytesH2D != r2.Stats.BytesH2D || r1.Stats.BytesNet != r2.Stats.BytesNet {
		t.Error("repeated runs differ")
	}
}

func TestConfigValidation(t *testing.T) {
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 1)
	if _, err := Run(Config{Platform: nil}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := Run(Config{Platform: plat, Maps: nil}); err == nil {
		t.Error("nil maps accepted")
	}
	d, _ := tile.NewDesc(64, 16, 1, 1)
	maps := precmap.New(precmap.UniformAll(3, prec.FP64), 0) // NT mismatch
	if _, err := Run(Config{Platform: plat, Maps: maps, Desc: d}); err == nil {
		t.Error("NT mismatch accepted")
	}
}

func TestScheduleTrace(t *testing.T) {
	nt := 4
	d, _ := tile.NewDesc(nt*16, 16, 1, 1)
	maps := precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 2)
	res, err := Run(Config{Desc: d, Maps: maps, Platform: plat, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sched := res.Schedule(nt)
	want := nt + nt*(nt-1) + nt*(nt-1)*(nt-2)/6
	if len(sched) != want {
		t.Fatalf("schedule has %d entries, want %d tasks", len(sched), want)
	}
	if sched[0].Name != "POTRF(0)" {
		t.Errorf("first scheduled task %s, want POTRF(0)", sched[0].Name)
	}
	last := sched[len(sched)-1]
	if last.Name != fmt.Sprintf("POTRF(%d)", nt-1) {
		t.Errorf("last scheduled task %s, want POTRF(%d)", last.Name, nt-1)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].Start < sched[i-1].Start {
			t.Fatal("schedule not sorted by start time")
		}
	}
	// Dependency sanity in the timeline: TRSM(1,0) cannot start before
	// POTRF(0) ends.
	times := map[string][2]float64{}
	for _, s := range sched {
		times[s.Name] = [2]float64{s.Start, s.End}
	}
	if times["TRSM(1,0)"][0] < times["POTRF(0)"][1] {
		t.Error("TRSM(1,0) started before POTRF(0) finished")
	}
	if times["GEMM(2,1,0)"][0] < times["TRSM(2,0)"][1] {
		t.Error("GEMM(2,1,0) started before TRSM(2,0) finished")
	}
}

func TestLoadBalanceAcrossDevices(t *testing.T) {
	// 2D block-cyclic + owner-computes must spread work roughly evenly
	// across a node's GPUs.
	nt, ts := 24, 512
	d, _ := tile.NewDesc(nt*ts, ts, 1, 1)
	maps := precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 6)
	res, err := Run(Config{Desc: d, Maps: maps, Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	var minF, maxF float64 = math.Inf(1), 0
	for _, ds := range res.Stats.Devices {
		if ds.Flops < minF {
			minF = ds.Flops
		}
		if ds.Flops > maxF {
			maxF = ds.Flops
		}
	}
	if maxF > 2.5*minF {
		t.Errorf("flop imbalance across GPUs: min %g, max %g", minF, maxF)
	}
}

func TestPTGValidates(t *testing.T) {
	// The algebraic graph must pass the runtime's structural validator at
	// several tilings (degree consistency + acyclicity).
	for _, nt := range []int{1, 2, 5, 12} {
		g := &graph{ids: newIDs(nt)}
		d, _ := tile.NewDesc(nt*16, 16, 1, 1)
		g.desc = d
		g.maps = precmap.New(precmap.UniformAll(nt, prec.FP64), 0)
		plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 1)
		g.plat = plat
		g.rankSeen = make([]int64, 1)
		if err := runtime.Validate(g); err != nil {
			t.Errorf("nt=%d: %v", nt, err)
		}
	}
}

func TestDTDValidates(t *testing.T) {
	d, _ := tile.NewDesc(6*16, 16, 1, 1)
	maps := precmap.New(precmap.Uniform(6, prec.FP16x32), 1e-4)
	plat, _ := runtime.NewPlatform(hw.SummitNode, 1, 2)
	// Build the DTD graph through RunDTD's path but validate before running:
	// reuse RunDTD directly (it validates implicitly by completing).
	if _, err := RunDTD(Config{Desc: d, Maps: maps, Platform: plat}); err != nil {
		t.Fatal(err)
	}
}
