package cholesky

import (
	"math"
	"reflect"
	gort "runtime"
	"testing"

	"geompc/internal/runtime"
)

// toBits flattens a factor to raw float64 bit patterns for exact
// comparison: recovery must reproduce the fault-free factor bit for bit,
// not merely to a tolerance.
func toBits(dense []float64) []uint64 {
	bits := make([]uint64, len(dense))
	for i, v := range dense {
		bits[i] = math.Float64bits(v)
	}
	return bits
}

func sameBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosGoldenNoOp is the golden no-op satellite: a wired-in but silent
// injector must produce schedule digests bit-identical to no injector at
// all, across GOMAXPROCS settings and both the PTG and DTD front-ends.
func TestChaosGoldenNoOp(t *testing.T) {
	base, _ := buildNumericConfig(t, 6, 1, 2)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	defer gort.GOMAXPROCS(gort.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		gort.GOMAXPROCS(procs)
		for name, runFn := range map[string]func(Config) (*Result, error){
			"PTG": Run, "DTD": RunDTD,
		} {
			cfg, _ := buildNumericConfig(t, 6, 1, 2)
			cfg.Faults = runtime.FaultPlan{} // wired in, silent
			res, err := runFn(cfg)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d %s: %v", procs, name, err)
			}
			if res.Digest() != ref.Digest() {
				t.Errorf("GOMAXPROCS=%d %s: silent injector digest %#x != fault-free %#x",
					procs, name, res.Digest(), ref.Digest())
			}
		}
	}
}

// TestChaosRecoveryBitIdentical is the acceptance scenario: a single device
// failure injected mid-run on a 3-GPU Fig 8-style mixed-precision numeric
// factorization. The run must complete on the survivors under a clean
// audit, the recovered factor must be bit-identical to the fault-free
// factor, and the same seed (plan) must reproduce the same digest.
func TestChaosRecoveryBitIdentical(t *testing.T) {
	const nt = 7
	clean, chaosA := buildNumericConfig(t, nt, 1, 3)
	chaosB, _ := buildNumericConfig(t, nt, 1, 3)

	ref, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	want := toBits(clean.Matrix.ToDense())

	killAt := ref.Stats.Makespan * 0.4
	plan := runtime.FaultPlan{{Kind: runtime.FaultKill, Device: 1, At: killAt}}

	runChaos := func(cfg Config) *Result {
		t.Helper()
		cfg.Faults = plan
		cfg.Audit = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		if res.Err != nil {
			t.Fatalf("chaos run numeric failure: %v", res.Err)
		}
		return res
	}

	a := runChaos(chaosA)
	if a.Stats.DeviceFailures != 1 {
		t.Errorf("DeviceFailures = %d, want 1", a.Stats.DeviceFailures)
	}
	if a.Stats.Tasks != ref.Stats.Tasks {
		t.Errorf("chaos run completed %d tasks, fault-free %d", a.Stats.Tasks, ref.Stats.Tasks)
	}
	if got := toBits(chaosA.Matrix.ToDense()); !sameBits(got, want) {
		t.Error("recovered factor is not bit-identical to the fault-free factor")
	}
	if a.Stats.Makespan <= ref.Stats.Makespan {
		t.Errorf("chaos makespan %g not above fault-free %g — recovery must cost time",
			a.Stats.Makespan, ref.Stats.Makespan)
	}
	if a.Digest() == ref.Digest() {
		t.Error("chaos digest equals fault-free digest; the failure left no schedule trace")
	}

	// Same plan, fresh matrix: bit-identical digest and factor (chaos runs
	// are as reproducible as fault-free ones).
	b := runChaos(chaosB)
	if b.Digest() != a.Digest() {
		t.Errorf("same fault plan, different digests: %#x vs %#x", b.Digest(), a.Digest())
	}
	if got := toBits(chaosB.Matrix.ToDense()); !sameBits(got, want) {
		t.Error("second chaos run factor differs from fault-free factor")
	}
}

// TestChaosRecoveryDTD drives the same mid-run device failure through the
// DTD front-end: recovery must not depend on the algebraic PTG (or its
// LineageGraph hook — the engine's own lineage tracking suffices).
func TestChaosRecoveryDTD(t *testing.T) {
	clean, chaos := buildNumericConfig(t, 7, 1, 2)
	ref, err := RunDTD(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	want := toBits(clean.Matrix.ToDense())

	chaos.Faults = runtime.FaultPlan{{Kind: runtime.FaultKill, Device: 1, At: ref.Stats.Makespan * 0.5}}
	chaos.Audit = true
	res, err := RunDTD(chaos)
	if err != nil {
		t.Fatalf("DTD chaos run failed: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.DeviceFailures != 1 || res.Stats.Tasks != ref.Stats.Tasks {
		t.Errorf("failures=%d tasks=%d, want 1 and %d",
			res.Stats.DeviceFailures, res.Stats.Tasks, ref.Stats.Tasks)
	}
	if got := toBits(chaos.Matrix.ToDense()); !sameBits(got, want) {
		t.Error("DTD recovered factor is not bit-identical to the fault-free factor")
	}
}

// TestChaosFlakyAndSlow exercises the two non-fatal fault classes end to
// end on a numeric run: the factor must stay bit-identical (faults perturb
// virtual time only) while the makespan grows.
func TestChaosFlakyAndSlow(t *testing.T) {
	clean, chaos := buildNumericConfig(t, 6, 1, 2)
	ref, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	want := toBits(clean.Matrix.ToDense())

	mk := ref.Stats.Makespan
	chaos.Faults = runtime.FaultPlan{
		{Kind: runtime.FaultTransient, Device: 0, At: mk * 0.3, Backoff: mk * 0.01},
		{Kind: runtime.FaultSlow, Device: 1, From: 0, To: mk, Factor: 4},
	}
	chaos.Audit = true
	res, err := Run(chaos)
	if err != nil {
		t.Fatalf("flaky/slow run failed: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Stats.TransientFaults != 1 {
		t.Errorf("TransientFaults = %d, want 1", res.Stats.TransientFaults)
	}
	if res.Stats.Makespan <= mk {
		t.Errorf("perturbed makespan %g not above fault-free %g", res.Stats.Makespan, mk)
	}
	if got := toBits(chaos.Matrix.ToDense()); !sameBits(got, want) {
		t.Error("factor changed under flaky/slow faults (they must only cost virtual time)")
	}
}

// TestChaosParallelWorkers is the parallel-engine chaos table: the existing
// chaos scenarios are single-rank (where EngineWorkers falls back to the
// serial loop), so this drives a mid-run device kill and a transient fault
// on a multi-rank numeric factorization across a worker-count axis. Every
// worker count must recover to the bit-identical fault-free factor, under a
// clean audit, with a schedule digest and stats equal to the serial chaos
// run's — device failure and replay handling must not depend on how many
// rank loops execute concurrently.
func TestChaosParallelWorkers(t *testing.T) {
	const nt, ranks, gpr = 7, 2, 2
	clean, _ := buildNumericConfig(t, nt, ranks, gpr)
	ref, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	want := toBits(clean.Matrix.ToDense())
	mk := ref.Stats.Makespan

	for _, fault := range []struct {
		name string
		plan runtime.FaultPlan
	}{
		{"kill", runtime.FaultPlan{{Kind: runtime.FaultKill, Device: 1, At: mk * 0.4}}},
		{"flaky", runtime.FaultPlan{{Kind: runtime.FaultTransient, Device: 2, At: mk * 0.3, Backoff: mk * 0.01}}},
	} {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			var serial *Result
			for _, w := range []int{0, 1, 2, 4} {
				cfg, _ := buildNumericConfig(t, nt, ranks, gpr)
				cfg.Faults = fault.plan
				cfg.Audit = true
				cfg.EngineWorkers = w
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if res.Err != nil {
					t.Fatalf("workers=%d: numeric failure: %v", w, res.Err)
				}
				if got := toBits(cfg.Matrix.ToDense()); !sameBits(got, want) {
					t.Errorf("workers=%d: recovered factor differs from the fault-free factor", w)
				}
				if res.Stats.Tasks != ref.Stats.Tasks {
					t.Errorf("workers=%d: completed %d tasks, fault-free %d", w, res.Stats.Tasks, ref.Stats.Tasks)
				}
				if w == 0 {
					serial = res
					if fault.name == "kill" && res.Stats.DeviceFailures != 1 {
						t.Errorf("DeviceFailures = %d, want 1", res.Stats.DeviceFailures)
					}
					continue
				}
				if res.Digest() != serial.Digest() {
					t.Errorf("workers=%d: chaos digest %#x != serial chaos %#x", w, res.Digest(), serial.Digest())
				}
				if !reflect.DeepEqual(res.Stats, serial.Stats) {
					t.Errorf("workers=%d: chaos stats diverged from serial chaos run", w)
				}
			}
		})
	}
}

// TestWritersLineageHook pins the cholesky graph's LineageGraph
// implementation: the declared writers of a tile, in execution order.
func TestWritersLineageHook(t *testing.T) {
	g := buildTestGraph(t, 5, 1e-6, nil, Auto, 1, 1)
	var buf []int
	// Diagonal tile (3,3): SYRK(3,0..2) then POTRF(3).
	buf = g.Writers(g.dataID(3, 3), buf[:0])
	want := []int{g.syrk(3, 0), g.syrk(3, 1), g.syrk(3, 2), g.potrf(3)}
	if len(buf) != len(want) {
		t.Fatalf("diagonal writers %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("diagonal writers %v, want %v", buf, want)
		}
	}
	// Off-diagonal tile (4,2): GEMM(4,2,0..1) then TRSM(4,2).
	buf = g.Writers(g.dataID(4, 2), buf[:0])
	want = []int{g.gemm(4, 2, 0), g.gemm(4, 2, 1), g.trsm(4, 2)}
	for i := range want {
		if i >= len(buf) || buf[i] != want[i] {
			t.Fatalf("off-diagonal writers %v, want %v", buf, want)
		}
	}
	// Upper-triangle and out-of-range ids yield nothing.
	if got := g.Writers(g.dataID(1, 3), nil); len(got) != 0 {
		t.Errorf("upper tile writers = %v, want empty", got)
	}
	if got := g.Writers(runtime.DataID(99999), nil); len(got) != 0 {
		t.Errorf("out-of-range writers = %v, want empty", got)
	}
}
