//go:build !amd64

package linalg

// Portable fallbacks for the SIMD micro-kernel dot products. Lane jj of
// each logical vector is one output element's accumulator, summed in
// strictly increasing l order — the same arithmetic the amd64 SSE2 kernels
// perform per lane, so results are bit-identical across architectures.

func dotNT4x2f64(k int, a0, a1, a2, a3, bp []float64, s *[8]float64) {
	var s00, s01, s10, s11, s20, s21, s30, s31 float64
	bp = bp[:2*k]
	for l := 0; l < k; l++ {
		b0, b1 := bp[2*l], bp[2*l+1]
		a := a0[l]
		s00 += a * b0
		s01 += a * b1
		a = a1[l]
		s10 += a * b0
		s11 += a * b1
		a = a2[l]
		s20 += a * b0
		s21 += a * b1
		a = a3[l]
		s30 += a * b0
		s31 += a * b1
	}
	s[0], s[1], s[2], s[3] = s00, s01, s10, s11
	s[4], s[5], s[6], s[7] = s20, s21, s30, s31
}

func dotNT4x4f64(k int, a0, a1, a2, a3, bp0, bp1 []float64, s *[16]float64) {
	for i := range s {
		s[i] = 0
	}
	bp0 = bp0[:2*k]
	bp1 = bp1[:2*k]
	for l := 0; l < k; l++ {
		b0, b1 := bp0[2*l], bp0[2*l+1]
		b2, b3 := bp1[2*l], bp1[2*l+1]
		a := a0[l]
		s[0] += a * b0
		s[1] += a * b1
		s[2] += a * b2
		s[3] += a * b3
		a = a1[l]
		s[4] += a * b0
		s[5] += a * b1
		s[6] += a * b2
		s[7] += a * b3
		a = a2[l]
		s[8] += a * b0
		s[9] += a * b1
		s[10] += a * b2
		s[11] += a * b3
		a = a3[l]
		s[12] += a * b0
		s[13] += a * b1
		s[14] += a * b2
		s[15] += a * b3
	}
}

func dotNT4x4f32(k int, a0, a1, a2, a3, bq []float32, s *[16]float32) {
	for i := range s {
		s[i] = 0
	}
	bq = bq[:4*k]
	for l := 0; l < k; l++ {
		b0, b1, b2, b3 := bq[4*l], bq[4*l+1], bq[4*l+2], bq[4*l+3]
		a := a0[l]
		s[0] += a * b0
		s[1] += a * b1
		s[2] += a * b2
		s[3] += a * b3
		a = a1[l]
		s[4] += a * b0
		s[5] += a * b1
		s[6] += a * b2
		s[7] += a * b3
		a = a2[l]
		s[8] += a * b0
		s[9] += a * b1
		s[10] += a * b2
		s[11] += a * b3
		a = a3[l]
		s[12] += a * b0
		s[13] += a * b1
		s[14] += a * b2
		s[15] += a * b3
	}
}
