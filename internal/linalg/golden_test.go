package linalg

import (
	"math"
	"testing"

	"geompc/internal/prec"
)

// Golden bit-exactness tests: FNV-1a digests over the raw float64 bits of
// every kernel's output on fixed seeded inputs, pinned from the seed
// (pre-blocking) kernels. Any change to rounding, accumulation order, or
// blocking that alters even one output bit fails these tests — they are the
// contract that the register-blocked and parallel kernels are drop-in
// replacements for the naive triple loops.

// splitmix64 is a tiny deterministic RNG (no math/rand dependency, so the
// byte stream can never change under us).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// goldenMatrix fills rows×cols values in (-1, 1).
func goldenMatrix(rng *splitmix64, rows, cols int) []float64 {
	m := make([]float64, rows*cols)
	for i := range m {
		m[i] = 2*float64(rng.next()>>11)/(1<<53) - 1
	}
	return m
}

// fnv1a64 hashes the bit patterns of v.
func fnv1a64(v []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, f := range v {
		b := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// goldenDims exercises the 4×4 micro-kernel's full and remainder paths.
var goldenDims = []struct{ m, n, k int }{
	{64, 64, 64},
	{61, 53, 47}, // remainders in every dimension
	{8, 128, 16},
	{1, 1, 1},
}

func gemmGolden(p prec.Precision) uint64 {
	rng := splitmix64(0x5eed + splitmix64(p))
	h := uint64(14695981039346656037)
	for _, d := range goldenDims {
		a := goldenMatrix(&rng, d.m, d.k)
		b := goldenMatrix(&rng, d.n, d.k)
		c := goldenMatrix(&rng, d.m, d.n)
		// beta=1 path (the factorization's shape) and beta=0 path.
		GemmNTPrec(p, d.m, d.n, d.k, -1, a, d.k, b, d.k, 1, c, d.n)
		h ^= fnv1a64(c)
		h *= 1099511628211
		GemmNTPrec(p, d.m, d.n, d.k, 0.5, a, d.k, b, d.k, 0, c, d.n)
		h ^= fnv1a64(c)
		h *= 1099511628211
	}
	return h
}

// Pinned from the seed kernels (commit 1cd262a); regenerate only if the
// numeric contract deliberately changes.
var gemmGoldenWant = map[prec.Precision]uint64{
	prec.FP64:    0xab120b1a2f021e3d,
	prec.FP32:    0xc88672ea7df2d4cb,
	prec.TF32:    0xa48a57a412e79583,
	prec.BF16x32: 0x93375a8264445e40,
	prec.FP16x32: 0xff89ed1b8abb6ba9,
	prec.FP16:    0xe8cc676bf547b559,
}

func TestGemmGoldenDigests(t *testing.T) {
	for p, want := range gemmGoldenWant {
		if got := gemmGolden(p); got != want {
			t.Errorf("GemmNT %s digest = %#x, want %#x (output bits differ from seed kernels)", p, got, want)
		}
	}
}

func syrkGolden(p prec.Precision) uint64 {
	rng := splitmix64(0x57a7 + splitmix64(p))
	h := uint64(14695981039346656037)
	for _, d := range goldenDims {
		a := goldenMatrix(&rng, d.n, d.k)
		c := goldenMatrix(&rng, d.n, d.n)
		SyrkLNPrec(p, d.n, d.k, -1, a, d.k, 1, c, d.n)
		h ^= fnv1a64(c)
		h *= 1099511628211
	}
	return h
}

var syrkGoldenWant = map[prec.Precision]uint64{
	prec.FP64: 0x21f42e2b0af04a18,
	prec.FP32: 0x7bcd3b494cd2fa37,
}

func TestSyrkGoldenDigests(t *testing.T) {
	for p, want := range syrkGoldenWant {
		if got := syrkGolden(p); got != want {
			t.Errorf("SyrkLN %s digest = %#x, want %#x", p, got, want)
		}
	}
}

// goldenTriangle builds a well-conditioned lower-triangular matrix.
func goldenTriangle(rng *splitmix64, n int) []float64 {
	a := goldenMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 2 + math.Abs(a[i*n+i])
	}
	return a
}

func trsmGolden(p prec.Precision) uint64 {
	rng := splitmix64(0x7125 + splitmix64(p))
	h := uint64(14695981039346656037)
	for _, d := range goldenDims {
		a := goldenTriangle(&rng, d.n)
		b := goldenMatrix(&rng, d.m, d.n)
		TrsmRLTPrec(p, d.m, d.n, a, d.n, b, d.n)
		h ^= fnv1a64(b)
		h *= 1099511628211
	}
	return h
}

var trsmGoldenWant = map[prec.Precision]uint64{
	prec.FP64: 0xf33deb8862d1b1a7,
	prec.FP32: 0x03d46bff763af620,
}

func TestTrsmGoldenDigests(t *testing.T) {
	for p, want := range trsmGoldenWant {
		if got := trsmGolden(p); got != want {
			t.Errorf("TrsmRLT %s digest = %#x, want %#x", p, got, want)
		}
	}
}

// goldenSPD builds an SPD matrix A = B·Bᵀ + n·I.
func goldenSPD(rng *splitmix64, n int) []float64 {
	b := goldenMatrix(rng, n, n)
	a := make([]float64, n*n)
	GemmNT(n, n, n, 1, b, n, b, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

func potrfGolden(p prec.Precision, t *testing.T) uint64 {
	rng := splitmix64(0x90 + splitmix64(p))
	h := uint64(14695981039346656037)
	for _, d := range goldenDims {
		a := goldenSPD(&rng, d.n)
		var err error
		switch p {
		case prec.FP64:
			err = PotrfLower(d.n, a, d.n)
		case prec.FP32:
			err = PotrfLower32(d.n, a, d.n)
		}
		if err != nil {
			t.Fatalf("POTRF %s n=%d: %v", p, d.n, err)
		}
		h ^= fnv1a64(a)
		h *= 1099511628211
	}
	return h
}

var potrfGoldenWant = map[prec.Precision]uint64{
	prec.FP64: 0x0b0bfcdd8a371286,
	prec.FP32: 0x002d47882f6d8e90,
}

func TestPotrfGoldenDigests(t *testing.T) {
	for p, want := range potrfGoldenWant {
		if got := potrfGolden(p, t); got != want {
			t.Errorf("PotrfLower %s digest = %#x, want %#x", p, got, want)
		}
	}
}
