package linalg

import "geompc/internal/prec"

// TrsmRLT solves X·Aᵀ = B for X in place of B, in float64, where A is an
// n×n lower-triangular matrix (stride lda; strict upper triangle not
// referenced) and B is m×n (stride ldb). This is the BLAS dtrsm with side
// Right, uplo Lower, transA Trans, diag NonUnit, alpha 1 — the tile update
// A[m][k] = A[m][k]·A[k][k]^{-T} of Algorithm 1.
// Rows of B are solved independently, so the kernel blocks four rows over
// the shared triangular operand (each row's recurrence runs in the same
// order as the scalar loop: bit-identical) and parallelizes over row panels
// when SetParallelism is raised.
func TrsmRLT(m, n int, a []float64, lda int, b []float64, ldb int) {
	forPanels(m, func(i0, i1 int) {
		trsmRLT64Panel(i0, i1, n, a, lda, b, ldb)
	})
}

func trsmRLT64Panel(i0, i1, n int, a []float64, lda int, b []float64, ldb int) {
	i := i0
	for ; i+4 <= i1; i += 4 {
		b0 := b[(i+0)*ldb:][:n]
		b1 := b[(i+1)*ldb:][:n]
		b2 := b[(i+2)*ldb:][:n]
		b3 := b[(i+3)*ldb:][:n]
		for j := 0; j < n; j++ {
			aj := a[j*lda:][:j]
			s0, s1, s2, s3 := b0[j], b1[j], b2[j], b3[j]
			for l := range aj {
				alv := aj[l]
				s0 -= b0[l] * alv
				s1 -= b1[l] * alv
				s2 -= b2[l] * alv
				s3 -= b3[l] * alv
			}
			d := a[j*lda+j]
			b0[j] = s0 / d
			b1[j] = s1 / d
			b2[j] = s2 / d
			b3[j] = s3 / d
		}
	}
	for ; i < i1; i++ {
		bi := b[i*ldb:][:n]
		for j := 0; j < n; j++ {
			s := bi[j]
			aj := a[j*lda:][:j]
			for l := range aj {
				s -= bi[l] * aj[l]
			}
			bi[j] = s / a[j*lda+j]
		}
	}
}

// TrsmRLT32 is TrsmRLT computed in genuine float32 arithmetic over float64
// storage. §V: tiles selected for FP16_32/FP16 GEMMs still run their TRSM in
// FP32, because the considered GPUs only provide half-precision GEMM.
func TrsmRLT32(m, n int, a []float64, lda int, b []float64, ldb int) {
	af := f32Scratch(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			af[i*n+j] = float32(a[i*lda+j])
		}
	}
	// The whole of B is packed once (the seed packed one row at a time,
	// re-reading the float64 row per output row); rows then solve
	// independently with 4-row blocking over the shared triangle.
	bf := f32Scratch(m * n)
	pack32(bf, b, m, n, ldb)
	forPanels(m, func(i0, i1 int) {
		trsmRLT32Panel(i0, i1, n, af, bf)
	})
	for i := 0; i < m; i++ {
		bi := b[i*ldb:][:n]
		for j, v := range bf[i*n:][:n] {
			bi[j] = float64(v)
		}
	}
	putF32(af)
	putF32(bf)
}

func trsmRLT32Panel(i0, i1, n int, af, bf []float32) {
	i := i0
	for ; i+4 <= i1; i += 4 {
		b0 := bf[(i+0)*n:][:n]
		b1 := bf[(i+1)*n:][:n]
		b2 := bf[(i+2)*n:][:n]
		b3 := bf[(i+3)*n:][:n]
		for j := 0; j < n; j++ {
			aj := af[j*n:][:j]
			s0, s1, s2, s3 := b0[j], b1[j], b2[j], b3[j]
			for l := range aj {
				alv := aj[l]
				s0 -= b0[l] * alv
				s1 -= b1[l] * alv
				s2 -= b2[l] * alv
				s3 -= b3[l] * alv
			}
			d := af[j*n+j]
			b0[j] = s0 / d
			b1[j] = s1 / d
			b2[j] = s2 / d
			b3[j] = s3 / d
		}
	}
	for ; i < i1; i++ {
		bi := bf[i*n:][:n]
		for j := 0; j < n; j++ {
			s := bi[j]
			for l := 0; l < j; l++ {
				s -= bi[l] * af[j*n+l]
			}
			bi[j] = s / af[j*n+j]
		}
	}
}

// TrsmRLTPrec dispatches the TRSM tile kernel for execution precision p.
// Only FP64 and FP32 are legal (hardware constraint modeled from §V); lower
// formats must have been mapped to FP32 by the precision map.
func TrsmRLTPrec(p prec.Precision, m, n int, a []float64, lda int, b []float64, ldb int) {
	switch p {
	case prec.FP64:
		TrsmRLT(m, n, a, lda, b, ldb)
	case prec.FP32:
		TrsmRLT32(m, n, a, lda, b, ldb)
	default:
		panic("linalg: TRSM does not support precision " + p.String())
	}
}

// TrsvLNN solves L·x = b in place of b, where L is n×n lower triangular
// (stride lda). Used by the log-likelihood term Zᵀ·Σ⁻¹·Z after the Cholesky
// factorization.
func TrsvLNN(n int, a []float64, lda int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		ai := a[i*lda:][:i]
		for l := range ai {
			s -= ai[l] * b[l]
		}
		b[i] = s / a[i*lda+i]
	}
}

// TrsvLTN solves Lᵀ·x = b in place of b, where L is n×n lower triangular.
// Completes the two-solve path Σ⁻¹Z = L⁻ᵀ(L⁻¹Z) used for prediction.
func TrsvLTN(n int, a []float64, lda int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for l := i + 1; l < n; l++ {
			s -= a[l*lda+i] * b[l]
		}
		b[i] = s / a[i*lda+i]
	}
}
