package linalg

import "geompc/internal/prec"

// TrsmRLT solves X·Aᵀ = B for X in place of B, in float64, where A is an
// n×n lower-triangular matrix (stride lda; strict upper triangle not
// referenced) and B is m×n (stride ldb). This is the BLAS dtrsm with side
// Right, uplo Lower, transA Trans, diag NonUnit, alpha 1 — the tile update
// A[m][k] = A[m][k]·A[k][k]^{-T} of Algorithm 1.
func TrsmRLT(m, n int, a []float64, lda int, b []float64, ldb int) {
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		for j := 0; j < n; j++ {
			s := bi[j]
			aj := a[j*lda : j*lda+j]
			for l := range aj {
				s -= bi[l] * aj[l]
			}
			bi[j] = s / a[j*lda+j]
		}
	}
}

// TrsmRLT32 is TrsmRLT computed in genuine float32 arithmetic over float64
// storage. §V: tiles selected for FP16_32/FP16 GEMMs still run their TRSM in
// FP32, because the considered GPUs only provide half-precision GEMM.
func TrsmRLT32(m, n int, a []float64, lda int, b []float64, ldb int) {
	af := f32Scratch(n * n)
	defer putF32(af)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			af[i*n+j] = float32(a[i*lda+j])
		}
	}
	bf := f32Scratch(n)
	defer putF32(bf)
	for i := 0; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		for j, v := range bi {
			bf[j] = float32(v)
		}
		for j := 0; j < n; j++ {
			s := bf[j]
			for l := 0; l < j; l++ {
				s -= bf[l] * af[j*n+l]
			}
			bf[j] = s / af[j*n+j]
		}
		for j, v := range bf[:n] {
			bi[j] = float64(v)
		}
	}
}

// TrsmRLTPrec dispatches the TRSM tile kernel for execution precision p.
// Only FP64 and FP32 are legal (hardware constraint modeled from §V); lower
// formats must have been mapped to FP32 by the precision map.
func TrsmRLTPrec(p prec.Precision, m, n int, a []float64, lda int, b []float64, ldb int) {
	switch p {
	case prec.FP64:
		TrsmRLT(m, n, a, lda, b, ldb)
	case prec.FP32:
		TrsmRLT32(m, n, a, lda, b, ldb)
	default:
		panic("linalg: TRSM does not support precision " + p.String())
	}
}

// TrsvLNN solves L·x = b in place of b, where L is n×n lower triangular
// (stride lda). Used by the log-likelihood term Zᵀ·Σ⁻¹·Z after the Cholesky
// factorization.
func TrsvLNN(n int, a []float64, lda int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		ai := a[i*lda : i*lda+i]
		for l := range ai {
			s -= ai[l] * b[l]
		}
		b[i] = s / a[i*lda+i]
	}
}

// TrsvLTN solves Lᵀ·x = b in place of b, where L is n×n lower triangular.
// Completes the two-solve path Σ⁻¹Z = L⁻ᵀ(L⁻¹Z) used for prediction.
func TrsvLTN(n int, a []float64, lda int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for l := i + 1; l < n; l++ {
			s -= a[l*lda+i] * b[l]
		}
		b[i] = s / a[i*lda+i]
	}
}
