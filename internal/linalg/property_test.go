package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"geompc/internal/prec"
)

func TestGemmLinearityProperty(t *testing.T) {
	// GEMM is linear in alpha: C(2α) - C(0-init) == 2·(C(α) - C(0-init)).
	rng := rand.New(rand.NewPCG(31, 32))
	if err := quick.Check(func(seed uint8) bool {
		m, n, k := int(seed%5)+1, int(seed%4)+2, int(seed%6)+1
		a, b := randMat(rng, m, k), randMat(rng, n, k)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		GemmNT(m, n, k, 1.5, a, k, b, k, 0, c1, n)
		GemmNT(m, n, k, 3.0, a, k, b, k, 0, c2, n)
		for i := range c1 {
			if math.Abs(2*c1[i]-c2[i]) > 1e-12*(math.Abs(c2[i])+1) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPotrfIdentity(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			a[i*n+i] = 1
		}
		if err := PotrfLower(n, a, n); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if a[i*n+j] != want {
					t.Fatalf("chol(I)[%d,%d] = %g", i, j, a[i*n+j])
				}
			}
		}
	}
}

func TestPotrfDiagonalScaling(t *testing.T) {
	// chol(s²·I) = s·I.
	n := 5
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 9
	}
	if err := PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if a[i*n+i] != 3 {
			t.Fatalf("diag %g, want 3", a[i*n+i])
		}
	}
}

func TestTrsmIdentityIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	n, m := 6, 4
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	b := randMat(rng, m, n)
	x := append([]float64(nil), b...)
	TrsmRLT(m, n, a, n, x, n)
	if d := MaxAbsDiff(x, b); d != 0 {
		t.Errorf("solve against identity changed B by %g", d)
	}
}

func TestGemmPrecDispatchCoversAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	m := 6
	a, b := randMat(rng, m, m), randMat(rng, m, m)
	for _, p := range prec.All {
		c := make([]float64, m*m)
		GemmNTPrec(p, m, m, m, 1, a, m, b, m, 0, c, m)
		if FrobeniusNorm(c) == 0 {
			t.Errorf("%v GEMM produced zero output", p)
		}
	}
}

func TestSyrkPreservesSymmetryOfUpdate(t *testing.T) {
	// After C -= A·Aᵀ on the lower triangle, reconstructing via GEMM must
	// agree — and the update keeps SPD matrices symmetric by construction.
	rng := rand.New(rand.NewPCG(37, 38))
	n, k := 7, 4
	a := randMat(rng, n, k)
	c := spdMat(rng, n)
	ref := append([]float64(nil), c...)
	SyrkLN(n, k, -0.5, a, k, 1, c, n)
	GemmNT(n, n, k, -0.5, a, k, a, k, 1, ref, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c[i*n+j]-ref[i*n+j]) > 1e-12 {
				t.Fatalf("SYRK/GEMM disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestMixedGemmRespectsBeta(t *testing.T) {
	// beta=0 must fully overwrite C (no NaN propagation from garbage C).
	rng := rand.New(rand.NewPCG(39, 40))
	m := 5
	a, b := randMat(rng, m, m), randMat(rng, m, m)
	for _, p := range []prec.Precision{prec.FP32, prec.FP16x32, prec.FP16} {
		c := make([]float64, m*m)
		for i := range c {
			c[i] = math.NaN()
		}
		GemmNTPrec(p, m, m, m, 1, a, m, b, m, 0, c, m)
		for i, v := range c {
			if math.IsNaN(v) {
				t.Fatalf("%v: NaN leaked through beta=0 at %d", p, i)
			}
		}
	}
}
