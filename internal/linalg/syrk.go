package linalg

import "geompc/internal/prec"

// SyrkLN computes C = alpha·A·Aᵀ + beta·C on the lower triangle of the n×n
// matrix C (stride ldc), with A n×k (stride lda), in float64. This is the
// diagonal-tile update A[m][m] -= A[m][k]·A[m][k]ᵀ of Algorithm 1 (alpha=-1,
// beta=1).
func SyrkLN(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	for i := 0; i < n; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+i+1]
		for j := 0; j <= i; j++ {
			aj := a[j*lda : j*lda+k]
			var s float64
			for l := 0; l < k; l++ {
				s += ai[l] * aj[l]
			}
			if beta == 0 {
				ci[j] = alpha * s
			} else {
				ci[j] = alpha*s + beta*ci[j]
			}
		}
	}
}

// SyrkLN32 is SyrkLN in genuine float32 arithmetic over float64 storage
// (full-FP32 baseline only; the adaptive framework always runs SYRK in FP64
// because it updates diagonal tiles).
func SyrkLN32(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	af := f32Scratch(n * k)
	defer putF32(af)
	pack32(af, a, n, k, lda)
	al, be := float32(alpha), float32(beta)
	for i := 0; i < n; i++ {
		ai := af[i*k : i*k+k]
		for j := 0; j <= i; j++ {
			aj := af[j*k : j*k+k]
			var s float32
			for l := 0; l < k; l++ {
				s += ai[l] * aj[l]
			}
			if beta == 0 {
				c[i*ldc+j] = float64(al * s)
			} else {
				c[i*ldc+j] = float64(al*s + be*float32(c[i*ldc+j]))
			}
		}
	}
}

// SyrkLNPrec dispatches the SYRK tile kernel for execution precision p
// (FP64 or FP32).
func SyrkLNPrec(p prec.Precision, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	switch p {
	case prec.FP64:
		SyrkLN(n, k, alpha, a, lda, beta, c, ldc)
	case prec.FP32:
		SyrkLN32(n, k, alpha, a, lda, beta, c, ldc)
	default:
		panic("linalg: SYRK does not support precision " + p.String())
	}
}
