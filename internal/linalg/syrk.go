package linalg

import "geompc/internal/prec"

// SyrkLN computes C = alpha·A·Aᵀ + beta·C on the lower triangle of the n×n
// matrix C (stride ldc), with A n×k (stride lda), in float64. This is the
// diagonal-tile update A[m][m] -= A[m][k]·A[m][k]ᵀ of Algorithm 1 (alpha=-1,
// beta=1). Rows of the triangle are independent, so the kernel blocks four
// output rows at a time over the shared aj operand (each accumulator still
// sums in l-order: bit-identical to the scalar loop) and parallelizes over
// row panels when SetParallelism is raised.
func SyrkLN(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	forPanels(n, func(i0, i1 int) {
		syrkLN64Panel(i0, i1, k, alpha, a, lda, beta, c, ldc)
	})
}

func syrkLN64Panel(i0, i1, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	i := i0
	for ; i+4 <= i1; i += 4 {
		ai0 := a[(i+0)*lda:][:k]
		ai1 := a[(i+1)*lda:][:k]
		ai2 := a[(i+2)*lda:][:k]
		ai3 := a[(i+3)*lda:][:k]
		// Columns j <= i are valid for all four rows; the ragged triangle
		// edge j in (i, i+3] is finished per row below.
		for j := 0; j <= i; j++ {
			aj := a[j*lda:][:k]
			var s0, s1, s2, s3 float64
			for l := 0; l < k; l++ {
				al := aj[l]
				s0 += ai0[l] * al
				s1 += ai1[l] * al
				s2 += ai2[l] * al
				s3 += ai3[l] * al
			}
			if beta == 0 {
				c[(i+0)*ldc+j] = alpha * s0
				c[(i+1)*ldc+j] = alpha * s1
				c[(i+2)*ldc+j] = alpha * s2
				c[(i+3)*ldc+j] = alpha * s3
			} else {
				c[(i+0)*ldc+j] = alpha*s0 + beta*c[(i+0)*ldc+j]
				c[(i+1)*ldc+j] = alpha*s1 + beta*c[(i+1)*ldc+j]
				c[(i+2)*ldc+j] = alpha*s2 + beta*c[(i+2)*ldc+j]
				c[(i+3)*ldc+j] = alpha*s3 + beta*c[(i+3)*ldc+j]
			}
		}
		for r := 1; r < 4; r++ {
			ar := a[(i+r)*lda:][:k]
			cr := c[(i+r)*ldc : (i+r)*ldc+i+r+1]
			for j := i + 1; j <= i+r; j++ {
				aj := a[j*lda:][:k]
				var s float64
				for l := 0; l < k; l++ {
					s += ar[l] * aj[l]
				}
				if beta == 0 {
					cr[j] = alpha * s
				} else {
					cr[j] = alpha*s + beta*cr[j]
				}
			}
		}
	}
	for ; i < i1; i++ {
		ai := a[i*lda:][:k]
		ci := c[i*ldc : i*ldc+i+1]
		for j := 0; j <= i; j++ {
			aj := a[j*lda:][:k]
			var s float64
			for l := 0; l < k; l++ {
				s += ai[l] * aj[l]
			}
			if beta == 0 {
				ci[j] = alpha * s
			} else {
				ci[j] = alpha*s + beta*ci[j]
			}
		}
	}
}

// SyrkLN32 is SyrkLN in genuine float32 arithmetic over float64 storage
// (full-FP32 baseline only; the adaptive framework always runs SYRK in FP64
// because it updates diagonal tiles).
func SyrkLN32(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	af := f32Scratch(n * k)
	pack32(af, a, n, k, lda)
	al, be := float32(alpha), float32(beta)
	betaZero := beta == 0
	forPanels(n, func(i0, i1 int) {
		syrkLN32Panel(i0, i1, k, al, betaZero, be, af, c, ldc)
	})
	putF32(af)
}

func syrkLN32Panel(i0, i1, k int, al float32, betaZero bool, be float32, af []float32, c []float64, ldc int) {
	i := i0
	for ; i+4 <= i1; i += 4 {
		ai0 := af[(i+0)*k:][:k]
		ai1 := af[(i+1)*k:][:k]
		ai2 := af[(i+2)*k:][:k]
		ai3 := af[(i+3)*k:][:k]
		for j := 0; j <= i; j++ {
			aj := af[j*k:][:k]
			var s0, s1, s2, s3 float32
			for l := 0; l < k; l++ {
				alv := aj[l]
				s0 += ai0[l] * alv
				s1 += ai1[l] * alv
				s2 += ai2[l] * alv
				s3 += ai3[l] * alv
			}
			if betaZero {
				c[(i+0)*ldc+j] = float64(al * s0)
				c[(i+1)*ldc+j] = float64(al * s1)
				c[(i+2)*ldc+j] = float64(al * s2)
				c[(i+3)*ldc+j] = float64(al * s3)
			} else {
				c[(i+0)*ldc+j] = float64(al*s0 + be*float32(c[(i+0)*ldc+j]))
				c[(i+1)*ldc+j] = float64(al*s1 + be*float32(c[(i+1)*ldc+j]))
				c[(i+2)*ldc+j] = float64(al*s2 + be*float32(c[(i+2)*ldc+j]))
				c[(i+3)*ldc+j] = float64(al*s3 + be*float32(c[(i+3)*ldc+j]))
			}
		}
		for r := 1; r < 4; r++ {
			ar := af[(i+r)*k:][:k]
			for j := i + 1; j <= i+r; j++ {
				aj := af[j*k:][:k]
				var s float32
				for l := 0; l < k; l++ {
					s += ar[l] * aj[l]
				}
				if betaZero {
					c[(i+r)*ldc+j] = float64(al * s)
				} else {
					c[(i+r)*ldc+j] = float64(al*s + be*float32(c[(i+r)*ldc+j]))
				}
			}
		}
	}
	for ; i < i1; i++ {
		ai := af[i*k:][:k]
		for j := 0; j <= i; j++ {
			aj := af[j*k:][:k]
			var s float32
			for l := 0; l < k; l++ {
				s += ai[l] * aj[l]
			}
			if betaZero {
				c[i*ldc+j] = float64(al * s)
			} else {
				c[i*ldc+j] = float64(al*s + be*float32(c[i*ldc+j]))
			}
		}
	}
}

// SyrkLNPrec dispatches the SYRK tile kernel for execution precision p
// (FP64 or FP32).
func SyrkLNPrec(p prec.Precision, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	switch p {
	case prec.FP64:
		SyrkLN(n, k, alpha, a, lda, beta, c, ldc)
	case prec.FP32:
		SyrkLN32(n, k, alpha, a, lda, beta, c, ldc)
	default:
		panic("linalg: SYRK does not support precision " + p.String())
	}
}
