// Package linalg implements the dense numerical kernels of the tile
// Cholesky factorization — POTRF, TRSM, SYRK and GEMM — in native float64
// and float32 arithmetic and in software-emulated GPU formats (TF32,
// BF16_32, FP16_32, FP16).
//
// All matrices are dense row-major with an explicit leading dimension (row
// stride), and triangular/symmetric kernels operate on the lower triangle,
// matching the lower-variant tile Cholesky of Algorithm 1:
//
//	POTRF:  A[k][k] = chol(A[k][k])
//	TRSM:   A[m][k] = A[m][k] · A[k][k]^{-T}
//	SYRK:   A[m][m] -= A[m][k] · A[m][k]^T
//	GEMM:   A[m][n] -= A[m][k] · A[n][k]^T
//
// Emulated formats store data in float64 slices whose values have been
// quantized through the format's input representation (see internal/prec);
// accumulation happens in genuine float32 (TF32/BF16_32/FP16_32) or in
// binary16 with per-operation rounding (FP16), so the numerical error of a
// kernel matches what the corresponding tensor-core kernel would commit.
package linalg
