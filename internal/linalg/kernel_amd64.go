//go:build amd64

package linalg

// SSE2 micro-kernel dot products. Each XMM lane holds ONE output element's
// accumulator, so every element still sums its products in strictly
// increasing l order with one rounding per add — packed MULPD/ADDPD are
// per-lane IEEE-754 ops identical to their scalar forms, which makes the
// SIMD kernels bit-identical to the seed triple loops (pinned by the golden
// digests). SSE2 is part of the amd64 v1 baseline, so no feature detection
// is needed. FMA is deliberately not used: it would skip the intermediate
// rounding and change results.

// dotNT4x2f64 computes s[i*2+jj] = Σ_l ai[l]·b(jj)[l] for four A rows
// against one pair-interleaved B block (bp[2l+jj] = b(jj)[l]). k > 0.
//
//go:noescape
func dotNT4x2f64(k int, a0, a1, a2, a3, bp []float64, s *[8]float64)

// dotNT4x4f64 computes a 4×4 block against two pair-interleaved B blocks
// (columns j..j+1 in bp0, j+2..j+3 in bp1): s[i*4+jj] = Σ_l ai[l]·b(jj)[l].
// Each A element is broadcast once and feeds four columns, halving the
// per-flop load traffic of dotNT4x2f64. Eight XMM accumulators + two B
// registers + two broadcast temps fit the sixteen-register file (a blocking
// the Go compiler cannot reach without spilling, hence assembly). k > 0.
//
//go:noescape
func dotNT4x4f64(k int, a0, a1, a2, a3, bp0, bp1 []float64, s *[16]float64)

// dotNT4x4f32 computes s[i*4+jj] = Σ_l ai[l]·b(jj)[l] for four A rows
// against one quad-interleaved B block (bq[4l+jj] = b(jj)[l]). k > 0.
//
//go:noescape
func dotNT4x4f32(k int, a0, a1, a2, a3, bq []float32, s *[16]float32)
