package linalg

import (
	"fmt"
	"testing"

	"geompc/internal/prec"
)

// benchMatrix fills an n×k slice with a deterministic well-conditioned
// pattern (no RNG dependency, so seed and optimized trees benchmark
// identical data).
func benchMatrix(rows, cols int) []float64 {
	m := make([]float64, rows*cols)
	for i := range m {
		m[i] = 0.5 + float64((i*2654435761)%1024)/2048
	}
	return m
}

// BenchmarkGemmNT256 times the 256×256×256 NT GEMM per emulated precision —
// the tile-kernel shape the Fig 5/6 Monte-Carlo accuracy studies spend
// nearly all of their time in.
func BenchmarkGemmNT256(b *testing.B) {
	const n = 256
	a := benchMatrix(n, n)
	bb := benchMatrix(n, n)
	c := benchMatrix(n, n)
	for _, p := range []prec.Precision{prec.FP64, prec.FP32, prec.TF32, prec.BF16x32, prec.FP16x32, prec.FP16} {
		b.Run(p.String(), func(b *testing.B) {
			b.SetBytes(3 * n * n * 8)
			for i := 0; i < b.N; i++ {
				GemmNTPrec(p, n, n, n, -1, a, n, bb, n, 1, c, n)
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
		})
	}
}

// BenchmarkSyrkTrsm256 times the 256-sized SYRK and TRSM tile kernels that
// accompany every GEMM in the factorization.
func BenchmarkSyrkTrsm256(b *testing.B) {
	const n = 256
	a := benchMatrix(n, n)
	c := benchMatrix(n, n)
	for _, p := range []prec.Precision{prec.FP64, prec.FP32} {
		b.Run(fmt.Sprintf("syrk/%s", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SyrkLNPrec(p, n, n, -1, a, n, 1, c, n)
			}
		})
	}
	tri := benchMatrix(n, n)
	for i := 0; i < n; i++ {
		tri[i*n+i] += float64(n) // strongly diagonally dominant
	}
	for _, p := range []prec.Precision{prec.FP64, prec.FP32} {
		b.Run(fmt.Sprintf("trsm/%s", p), func(b *testing.B) {
			x := append([]float64(nil), c...)
			for i := 0; i < b.N; i++ {
				TrsmRLTPrec(p, n, n, tri, n, x, n)
			}
		})
	}
}
