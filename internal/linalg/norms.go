package linalg

import "math"

// FrobeniusNorm returns ‖x‖_F = sqrt(Σ x_i²) with overflow-safe scaling.
func FrobeniusNorm(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobeniusNormMat returns the Frobenius norm of the m×n matrix stored
// row-major with stride ld.
func FrobeniusNormMat(m, n int, a []float64, ld int) float64 {
	var sum float64
	for i := 0; i < m; i++ {
		row := a[i*ld : i*ld+n]
		for _, v := range row {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// MaxAbsDiff returns max_i |a_i - b_i|; panics if lengths differ.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// RelFrobeniusError returns ‖a-b‖_F / ‖b‖_F, the accuracy metric of the
// GEMM benchmark (Fig 1): the error of a reduced-precision result a against
// the FP64 reference b.
func RelFrobeniusError(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: length mismatch")
	}
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
