package linalg

import (
	"math/bits"
	"sync"

	"geompc/internal/fp16"
)

// Scratch pools avoid per-kernel allocation churn: the mixed-precision
// emulations pack their operands into typed staging buffers on every call,
// which would otherwise dominate GC time for small tiles. Buffers grow to
// the next power of two so a sequence of slightly-different tile shapes
// (remainder tiles, mixed m/n/k) settles on one capacity instead of
// reallocating at each new size.

func scratchCap(n int) int {
	if n <= 4096 {
		return 4096
	}
	return 1 << bits.Len(uint(n-1))
}

var f32Pool = sync.Pool{New: func() any { s := make([]float32, 0, 4096); return &s }}

//geompc:hot
func f32Scratch(n int) []float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n, scratchCap(n)) //geompc:nolint hotalloc grows once to the next power of two, then the pooled buffer is reused
	}
	return (*p)[:n]
}

func putF32(s []float32) {
	s = s[:0]
	f32Pool.Put(&s)
}

var halfPool = sync.Pool{New: func() any { s := make([]fp16.Half, 0, 4096); return &s }}

//geompc:hot
func halfScratch(n int) []fp16.Half {
	p := halfPool.Get().(*[]fp16.Half)
	if cap(*p) < n {
		*p = make([]fp16.Half, n, scratchCap(n)) //geompc:nolint hotalloc grows once to the next power of two, then the pooled buffer is reused
	}
	return (*p)[:n]
}

func putHalf(s []fp16.Half) {
	s = s[:0]
	halfPool.Put(&s)
}

var f64Pool = sync.Pool{New: func() any { s := make([]float64, 0, 4096); return &s }}

//geompc:hot
func f64Scratch(n int) []float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n, scratchCap(n)) //geompc:nolint hotalloc grows once to the next power of two, then the pooled buffer is reused
	}
	return (*p)[:n]
}

func putF64(s []float64) {
	s = s[:0]
	f64Pool.Put(&s)
}
