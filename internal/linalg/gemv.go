package linalg

import (
	"geompc/internal/fp16"
	"geompc/internal/prec"
)

// Mixed-precision GEMV kernels for the iterative solver backend
// (internal/cg): one tile-column step of the matvec q = Σ·p, computed in
// the arithmetic model of each precision the same way the GEMM kernels
// are — inputs quantized to the format's input representation, partial
// products accumulated in the format's accumulator (float32 for every
// sub-FP64 format, binary16 combine for pure FP16), result folded into
// the FP64 state vector.

// GemvNPrec computes y = alpha·A·x + beta·y for row-major m×n A with
// leading dimension lda, in precision p's arithmetic model.
func GemvNPrec(p prec.Precision, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if p == prec.FP64 {
		for i := 0; i < m; i++ {
			row := a[i*lda:][:n]
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = alpha*s + beta*y[i]
		}
		return
	}
	q := quantizerFor(p)
	xq := f32Scratch(n)
	for j := 0; j < n; j++ {
		xq[j] = q(float32(x[j]))
	}
	alf, bef := float32(alpha), float32(beta)
	betaZero := beta == 0
	for i := 0; i < m; i++ {
		row := a[i*lda:][:n]
		var s float32
		for j, v := range row {
			s += q(float32(v)) * xq[j]
		}
		y[i] = gemvStore(p, alf, s, betaZero, bef, y[i])
	}
	putF32(xq)
}

// GemvTPrec computes y = alpha·Aᵀ·x + beta·y for row-major m×n A with
// leading dimension lda (so y has n elements, x has m), in precision p's
// arithmetic model.
func GemvTPrec(p prec.Precision, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if p == prec.FP64 {
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a[i*lda+j] * x[i]
			}
			y[j] = alpha*s + beta*y[j]
		}
		return
	}
	q := quantizerFor(p)
	xq := f32Scratch(m)
	for i := 0; i < m; i++ {
		xq[i] = q(float32(x[i]))
	}
	acc := f32Scratch(n)
	for j := 0; j < n; j++ {
		acc[j] = 0
	}
	for i := 0; i < m; i++ {
		row := a[i*lda:][:n]
		xi := xq[i]
		for j, v := range row {
			acc[j] += q(float32(v)) * xi
		}
	}
	alf, bef := float32(alpha), float32(beta)
	betaZero := beta == 0
	for j := 0; j < n; j++ {
		y[j] = gemvStore(p, alf, acc[j], betaZero, bef, y[j])
	}
	putF32(acc)
	putF32(xq)
}

// quantizerFor returns the per-element input quantizer of precision p's
// sub-FP64 arithmetic model (the same rounding the pack loops apply).
func quantizerFor(p prec.Precision) func(float32) float32 {
	switch p {
	case prec.FP32:
		return func(v float32) float32 { return v }
	case prec.TF32:
		return fp16.TF32Round
	case prec.BF16x32:
		return fp16.BF16Round
	case prec.FP16x32, prec.FP16:
		return fp16.QuantF32
	default:
		panic("linalg: invalid precision " + p.String())
	}
}

// gemvStore folds one accumulated partial s into the FP64 state: the x32
// formats combine in float32 (tensor-core accumulator), pure FP16 applies
// the binary16 alpha/beta chain of the GEMM kernel.
func gemvStore(p prec.Precision, alf, s float32, betaZero bool, bef float32, yi float64) float64 {
	if p == prec.FP16 {
		return fp16Store(alf, s, betaZero, bef, yi)
	}
	if betaZero {
		return float64(alf * s)
	}
	return float64(alf*s + bef*float32(yi))
}
