package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by the POTRF kernels when a pivot is
// not strictly positive, i.e. the input is not (numerically) symmetric
// positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// PotrfLower factorizes the n×n symmetric positive-definite matrix A
// (lower triangle stored, stride lda) in place as A = L·Lᵀ in float64,
// leaving L in the lower triangle. The strict upper triangle is not
// referenced.
func PotrfLower(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		d := a[j*lda+j]
		for l := 0; l < j; l++ {
			d -= a[j*lda+l] * a[j*lda+l]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		a[j*lda+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*lda+j]
			ai := a[i*lda : i*lda+j]
			aj := a[j*lda : j*lda+j]
			for l := range aj {
				s -= ai[l] * aj[l]
			}
			a[i*lda+j] = s * inv
		}
	}
	return nil
}

// PotrfLower32 is PotrfLower computed in genuine float32 arithmetic over
// float64 storage (for the full-FP32 baseline configuration).
func PotrfLower32(n int, a []float64, lda int) error {
	w := f32Scratch(n * n)
	defer putF32(w)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			w[i*n+j] = float32(a[i*lda+j])
		}
	}
	for j := 0; j < n; j++ {
		d := w[j*n+j]
		for l := 0; l < j; l++ {
			d -= w[j*n+l] * w[j*n+l]
		}
		if d <= 0 || math.IsNaN(float64(d)) {
			return fmt.Errorf("%w: pivot %d is %g (fp32)", ErrNotPositiveDefinite, j, d)
		}
		d = float32(math.Sqrt(float64(d)))
		w[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := w[i*n+j]
			for l := 0; l < j; l++ {
				s -= w[i*n+l] * w[j*n+l]
			}
			w[i*n+j] = s * inv
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			a[i*lda+j] = float64(w[i*n+j])
		}
	}
	return nil
}
