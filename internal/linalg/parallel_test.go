package linalg

import (
	"testing"

	"geompc/internal/prec"
)

// TestParallelBitExact reruns every golden digest with the worker pool
// enabled: the parallel kernels must reproduce the serial (and seed) output
// bit-for-bit, because row panels are independent and each accumulator sums
// in the same order regardless of the partition.
func TestParallelBitExact(t *testing.T) {
	for _, workers := range []int{2, 3, 7} {
		SetParallelism(workers)
		for p, want := range gemmGoldenWant {
			if got := gemmGolden(p); got != want {
				t.Errorf("workers=%d: GemmNT %s digest = %#x, want %#x", workers, p, got, want)
			}
		}
		for p, want := range syrkGoldenWant {
			if got := syrkGolden(p); got != want {
				t.Errorf("workers=%d: SyrkLN %s digest = %#x, want %#x", workers, p, got, want)
			}
		}
		for p, want := range trsmGoldenWant {
			if got := trsmGolden(p); got != want {
				t.Errorf("workers=%d: TrsmRLT %s digest = %#x, want %#x", workers, p, got, want)
			}
		}
	}
	SetParallelism(1)
	if Parallelism() != 1 {
		t.Fatal("SetParallelism(1) did not restore serial mode")
	}

	// Matrices taller than one panel so the pool genuinely splits rows.
	SetParallelism(4)
	defer SetParallelism(1)
	rng := splitmix64(0xbeef)
	m, n, k := 3*panelRows+5, 33, 29
	a := goldenMatrix(&rng, m, k)
	b := goldenMatrix(&rng, n, k)
	cSerial := goldenMatrix(&rng, m, n)
	cPar := append([]float64(nil), cSerial...)
	for _, p := range []prec.Precision{prec.FP64, prec.FP32, prec.TF32, prec.BF16x32, prec.FP16x32, prec.FP16} {
		SetParallelism(1)
		GemmNTPrec(p, m, n, k, -1, a, k, b, k, 1, cSerial, n)
		SetParallelism(4)
		GemmNTPrec(p, m, n, k, -1, a, k, b, k, 1, cPar, n)
		if got, want := fnv1a64(cPar), fnv1a64(cSerial); got != want {
			t.Errorf("GemmNT %s tall-matrix parallel digest %#x != serial %#x", p, got, want)
		}
	}
}
