//go:build amd64

#include "textflag.h"

// func dotNT4x2f64(k int, a0, a1, a2, a3, bp []float64, s *[8]float64)
//
// X4..X7 accumulate a 4×2 block: Xi = [s(i,0), s(i,1)]. Per iteration one
// MOVUPD pulls the interleaved pair [b0[l], b1[l]] and each A element is
// broadcast with UNPCKLPD — per-lane MULPD/ADDPD keep every accumulator's
// add sequence identical to the scalar kernel.
TEXT ·dotNT4x2f64(SB), NOSPLIT, $0-136
	MOVQ k+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ bp_base+104(FP), SI
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	TESTQ CX, CX
	JZ   done64

loop64:
	MOVUPD (SI), X0

	MOVSD    (R8), X1
	UNPCKLPD X1, X1
	MULPD    X0, X1
	ADDPD    X1, X4

	MOVSD    (R9), X2
	UNPCKLPD X2, X2
	MULPD    X0, X2
	ADDPD    X2, X5

	MOVSD    (R10), X3
	UNPCKLPD X3, X3
	MULPD    X0, X3
	ADDPD    X3, X6

	MOVSD    (R11), X1
	UNPCKLPD X1, X1
	MULPD    X0, X1
	ADDPD    X1, X7

	ADDQ $16, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  loop64

done64:
	MOVQ   s+128(FP), DI
	MOVUPD X4, (DI)
	MOVUPD X5, 16(DI)
	MOVUPD X6, 32(DI)
	MOVUPD X7, 48(DI)
	RET

// func dotNT4x4f64(k int, a0, a1, a2, a3, bp0, bp1 []float64, s *[16]float64)
//
// X8..X15 accumulate a 4×4 block: X(8+2i) = [s(i,0), s(i,1)] from bp0,
// X(9+2i) = [s(i,2), s(i,3)] from bp1. Each A element broadcasts once and
// multiplies both B pairs.
TEXT ·dotNT4x4f64(SB), NOSPLIT, $0-160
	MOVQ k+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ bp0_base+104(FP), SI
	MOVQ bp1_base+128(FP), DX
	XORPS X8, X8
	XORPS X9, X9
	XORPS X10, X10
	XORPS X11, X11
	XORPS X12, X12
	XORPS X13, X13
	XORPS X14, X14
	XORPS X15, X15
	TESTQ CX, CX
	JZ   done64x4

loop64x4:
	MOVUPD (SI), X0
	MOVUPD (DX), X1

	MOVSD    (R8), X2
	UNPCKLPD X2, X2
	MOVAPD   X2, X3
	MULPD    X0, X2
	ADDPD    X2, X8
	MULPD    X1, X3
	ADDPD    X3, X9

	MOVSD    (R9), X4
	UNPCKLPD X4, X4
	MOVAPD   X4, X5
	MULPD    X0, X4
	ADDPD    X4, X10
	MULPD    X1, X5
	ADDPD    X5, X11

	MOVSD    (R10), X6
	UNPCKLPD X6, X6
	MOVAPD   X6, X7
	MULPD    X0, X6
	ADDPD    X6, X12
	MULPD    X1, X7
	ADDPD    X7, X13

	MOVSD    (R11), X2
	UNPCKLPD X2, X2
	MOVAPD   X2, X3
	MULPD    X0, X2
	ADDPD    X2, X14
	MULPD    X1, X3
	ADDPD    X3, X15

	ADDQ $16, SI
	ADDQ $16, DX
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  loop64x4

done64x4:
	MOVQ   s+152(FP), DI
	MOVUPD X8, (DI)
	MOVUPD X9, 16(DI)
	MOVUPD X10, 32(DI)
	MOVUPD X11, 48(DI)
	MOVUPD X12, 64(DI)
	MOVUPD X13, 80(DI)
	MOVUPD X14, 96(DI)
	MOVUPD X15, 112(DI)
	RET

// func dotNT4x4f32(k int, a0, a1, a2, a3, bq []float32, s *[16]float32)
//
// X4..X7 accumulate a 4×4 block: Xi = [s(i,0)..s(i,3)]. One MOVUPS pulls
// the interleaved quad [b0[l]..b3[l]]; A elements broadcast with SHUFPS.
TEXT ·dotNT4x4f32(SB), NOSPLIT, $0-136
	MOVQ k+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ bq_base+104(FP), SI
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	TESTQ CX, CX
	JZ   done32

loop32:
	MOVUPS (SI), X0

	MOVSS  (R8), X1
	SHUFPS $0x00, X1, X1
	MULPS  X0, X1
	ADDPS  X1, X4

	MOVSS  (R9), X2
	SHUFPS $0x00, X2, X2
	MULPS  X0, X2
	ADDPS  X2, X5

	MOVSS  (R10), X3
	SHUFPS $0x00, X3, X3
	MULPS  X0, X3
	ADDPS  X3, X6

	MOVSS  (R11), X1
	SHUFPS $0x00, X1, X1
	MULPS  X0, X1
	ADDPS  X1, X7

	ADDQ $16, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  loop32

done32:
	MOVQ   s+128(FP), DI
	MOVUPS X4, (DI)
	MOVUPS X5, 16(DI)
	MOVUPS X6, 32(DI)
	MOVUPS X7, 48(DI)
	RET
