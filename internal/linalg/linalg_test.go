package linalg

import (
	"math"
	"math/rand/v2"
	"testing"

	"geompc/internal/prec"
)

func randMat(rng *rand.Rand, m, n int) []float64 {
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	return a
}

// spdMat returns a well-conditioned SPD matrix A = M·Mᵀ + n·I.
func spdMat(rng *rand.Rand, n int) []float64 {
	m := randMat(rng, n, n)
	a := make([]float64, n*n)
	GemmNT(n, n, n, 1, m, n, m, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	return a
}

func gemmNTRef(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += a[i*lda+l] * b[j*ldb+l]
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func TestGemmNTAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 4, 9}, {16, 32, 8}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, n, k)
		c1, c2 := randMat(rng, m, n), make([]float64, m*n)
		copy(c2, c1)
		GemmNT(m, n, k, -1, a, k, b, k, 1, c1, n)
		gemmNTRef(m, n, k, -1, a, k, b, k, 1, c2, n)
		if d := MaxAbsDiff(c1, c2); d > 1e-13 {
			t.Errorf("GemmNT (%d,%d,%d) differs from reference by %g", m, n, k, d)
		}
	}
}

func TestGemmNNAgainstNT(t *testing.T) {
	// C = A·B (NN) must equal A·(Bᵀ)ᵀ computed via NT with B pre-transposed.
	rng := rand.New(rand.NewPCG(3, 4))
	m, n, k := 7, 9, 11
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	bt := make([]float64, n*k)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt[j*k+i] = b[i*n+j]
		}
	}
	c1, c2 := make([]float64, m*n), make([]float64, m*n)
	GemmNN(m, n, k, 2, a, k, b, n, 0, c1, n)
	GemmNT(m, n, k, 2, a, k, bt, k, 0, c2, n)
	if d := MaxAbsDiff(c1, c2); d > 1e-12 {
		t.Errorf("GemmNN vs GemmNT differ by %g", d)
	}
}

func TestGemmNNBetaHandling(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	m, n, k := 4, 5, 6
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	cInit := randMat(rng, m, n)
	for _, beta := range []float64{0, 1, -2.5} {
		c1 := append([]float64(nil), cInit...)
		c2 := append([]float64(nil), cInit...)
		GemmNN(m, n, k, 1.5, a, k, b, n, beta, c1, n)
		// reference
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += a[i*k+l] * b[l*n+j]
				}
				c2[i*n+j] = 1.5*s + beta*c2[i*n+j]
			}
		}
		if d := MaxAbsDiff(c1, c2); d > 1e-12 {
			t.Errorf("beta=%v: GemmNN differs by %g", beta, d)
		}
	}
}

func TestGemmPrecisionErrorLadder(t *testing.T) {
	// Fig 1's qualitative result: relative error ordered
	// FP64 < FP32 < {TF32, FP16_32} < FP16.
	rng := rand.New(rand.NewPCG(7, 8))
	m := 48
	a, b := randMat(rng, m, m), randMat(rng, m, m)
	ref := make([]float64, m*m)
	GemmNT(m, m, m, 1, a, m, b, m, 0, ref, m)

	errFor := func(p prec.Precision) float64 {
		c := make([]float64, m*m)
		GemmNTPrec(p, m, m, m, 1, a, m, b, m, 0, c, m)
		return RelFrobeniusError(c, ref)
	}
	e32 := errFor(prec.FP32)
	eTF := errFor(prec.TF32)
	e16x := errFor(prec.FP16x32)
	eBF := errFor(prec.BF16x32)
	e16 := errFor(prec.FP16)
	// Fig 1 ordering: FP32 ≪ TF32 ≈ FP16_32 < FP16, and BF16_32 worse than
	// FP16_32 (8-bit vs 10-bit input significand). At small k BF16_32 can
	// exceed pure FP16 (input quantization dominates accumulation), so no
	// BF16-vs-FP16 ordering is asserted.
	if !(e32 < eTF && eTF <= 2*e16x && e16x <= 2*eTF && e16x < e16 && e16x < eBF) {
		t.Errorf("error ladder violated: fp32=%g tf32=%g fp16_32=%g bf16_32=%g fp16=%g",
			e32, eTF, e16x, eBF, e16)
	}
	if e32 > 1e-6 || e16 > 0.1 || e16 < 1e-4 {
		t.Errorf("errors out of expected bands: fp32=%g fp16=%g", e32, e16)
	}
}

func TestGemmFP16ValuesAreHalfRepresentable(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	m := 8
	a, b := randMat(rng, m, m), randMat(rng, m, m)
	c := make([]float64, m*m)
	GemmNTFP16(m, m, m, 1, a, m, b, m, 0, c, m)
	for i, v := range c {
		if q := prec.QuantizeCopy([]float64{v}, prec.FP16)[0]; q != v {
			t.Fatalf("c[%d]=%v is not a binary16 value", i, v)
		}
	}
}

func TestPotrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdMat(rng, n)
		l := append([]float64(nil), a...)
		if err := PotrfLower(n, l, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// zero strict upper of L, reconstruct L·Lᵀ
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				l[i*n+j] = 0
			}
		}
		r := make([]float64, n*n)
		GemmNT(n, n, n, 1, l, n, l, n, 0, r, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(r[i*n+j] - a[i*n+j]); d > 1e-10*float64(n) {
					t.Fatalf("n=%d: reconstruction error %g at (%d,%d)", n, d, i, j)
				}
			}
		}
	}
}

func TestPotrfNotSPD(t *testing.T) {
	a := []float64{1, 0, 0, -1} // indefinite
	if err := PotrfLower(2, a, 2); err == nil {
		t.Error("PotrfLower accepted an indefinite matrix")
	}
	b := []float64{4, 0, 2, 1} // second pivot: 1 - 0.25... ok. make singular:
	b = []float64{4, 0, 2, 1}
	_ = b
	c := []float64{1, 0, 1, 1} // pivot2 = 1-1 = 0
	if err := PotrfLower32(2, c, 2); err == nil {
		t.Error("PotrfLower32 accepted a singular matrix")
	}
}

func TestPotrf32MatchesPotrf64Loosely(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	n := 24
	a := spdMat(rng, n)
	l64 := append([]float64(nil), a...)
	l32 := append([]float64(nil), a...)
	if err := PotrfLower(n, l64, n); err != nil {
		t.Fatal(err)
	}
	if err := PotrfLower32(n, l32, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := math.Abs(l64[i*n+j] - l32[i*n+j])
			if d > 1e-4*math.Abs(l64[i*n+j])+1e-4 {
				t.Fatalf("fp32 potrf far from fp64 at (%d,%d): %g vs %g", i, j, l32[i*n+j], l64[i*n+j])
			}
		}
	}
}

func TestTrsmRLTSolves(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	n, m := 12, 7
	a := spdMat(rng, n)
	if err := PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, m, n)
	x := append([]float64(nil), b...)
	TrsmRLT(m, n, a, n, x, n)
	// Check X·Aᵀ == B, i.e. B - X·Lᵀ == 0. Compute X·Lᵀ via GemmNN with Lᵀ.
	lt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			lt[j*n+i] = a[i*n+j]
		}
	}
	r := make([]float64, m*n)
	GemmNN(m, n, n, 1, x, n, lt, n, 0, r, n)
	if d := MaxAbsDiff(r, b); d > 1e-10 {
		t.Errorf("TrsmRLT residual %g", d)
	}
}

func TestTrsmRLT32CloseToFP64(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	n, m := 10, 6
	a := spdMat(rng, n)
	if err := PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, m, n)
	x64 := append([]float64(nil), b...)
	x32 := append([]float64(nil), b...)
	TrsmRLT(m, n, a, n, x64, n)
	TrsmRLT32(m, n, a, n, x32, n)
	for i := range x64 {
		if d := math.Abs(x64[i] - x32[i]); d > 1e-4*(math.Abs(x64[i])+1) {
			t.Fatalf("fp32 trsm diverges at %d: %g vs %g", i, x32[i], x64[i])
		}
	}
}

func TestTrsmPrecPanicsOnHalf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TrsmRLTPrec(FP16) did not panic; §V forbids half TRSM")
		}
	}()
	a := []float64{1}
	b := []float64{1}
	TrsmRLTPrec(prec.FP16, 1, 1, a, 1, b, 1)
}

func TestSyrkAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	n, k := 9, 5
	a := randMat(rng, n, k)
	c := spdMat(rng, n)
	c2 := append([]float64(nil), c...)
	SyrkLN(n, k, -1, a, k, 1, c, n)
	GemmNT(n, n, k, -1, a, k, a, k, 1, c2, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(c[i*n+j] - c2[i*n+j]); d > 1e-12 {
				t.Fatalf("SYRK lower (%d,%d) differs from GEMM by %g", i, j, d)
			}
		}
	}
}

func TestSyrk32CloseToFP64(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	n, k := 8, 6
	a := randMat(rng, n, k)
	c1 := spdMat(rng, n)
	c2 := append([]float64(nil), c1...)
	SyrkLN(n, k, -1, a, k, 1, c1, n)
	SyrkLN32(n, k, -1, a, k, 1, c2, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(c1[i*n+j] - c2[i*n+j]); d > 1e-4 {
				t.Fatalf("fp32 SYRK far at (%d,%d): %g", i, j, d)
			}
		}
	}
}

func TestTrsvRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	n := 15
	a := spdMat(rng, n)
	if err := PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	x0 := randMat(rng, 1, n)
	// b = L·(Lᵀ·x0); then TrsvLNN followed by TrsvLTN must recover x0.
	b := make([]float64, n)
	tmp := make([]float64, n)
	for i := 0; i < n; i++ { // tmp = Lᵀ x0
		var s float64
		for l := i; l < n; l++ {
			s += a[l*n+i] * x0[l]
		}
		tmp[i] = s
	}
	for i := 0; i < n; i++ { // b = L tmp
		var s float64
		for l := 0; l <= i; l++ {
			s += a[i*n+l] * tmp[l]
		}
		b[i] = s
	}
	TrsvLNN(n, a, n, b)
	TrsvLTN(n, a, n, b)
	if d := MaxAbsDiff(b, x0); d > 1e-9 {
		t.Errorf("Trsv round-trip error %g", d)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	if got := FrobeniusNorm([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Errorf("‖(3,4)‖ = %g, want 5", got)
	}
	if got := FrobeniusNorm(nil); got != 0 {
		t.Errorf("‖()‖ = %g, want 0", got)
	}
	// Overflow safety: values near MaxFloat64 must not produce Inf.
	big := []float64{1e308, 1e308}
	if got := FrobeniusNorm(big); math.IsInf(got, 0) {
		t.Error("FrobeniusNorm overflowed")
	}
	// Matrix variant with padding stride.
	a := []float64{1, 2, 99, 3, 4, 99}
	if got := FrobeniusNormMat(2, 2, a, 3); math.Abs(got-math.Sqrt(30)) > 1e-14 {
		t.Errorf("FrobeniusNormMat = %g, want sqrt(30)", got)
	}
}

func TestRelFrobeniusError(t *testing.T) {
	b := []float64{1, 2, 2}
	a := []float64{1, 2, 2.3}
	want := 0.3 / 3.0
	if got := RelFrobeniusError(a, b); math.Abs(got-want) > 1e-14 {
		t.Errorf("RelFrobeniusError = %g, want %g", got, want)
	}
	if got := RelFrobeniusError(b, b); got != 0 {
		t.Errorf("self error = %g, want 0", got)
	}
}

func BenchmarkGemmNT64(b *testing.B)      { benchGemm(b, prec.FP64) }
func BenchmarkGemmNT32(b *testing.B)      { benchGemm(b, prec.FP32) }
func BenchmarkGemmNTFP16x32(b *testing.B) { benchGemm(b, prec.FP16x32) }
func BenchmarkGemmNTFP16(b *testing.B)    { benchGemm(b, prec.FP16) }

func benchGemm(b *testing.B, p prec.Precision) {
	rng := rand.New(rand.NewPCG(25, 26))
	m := 64
	a, bb := randMat(rng, m, m), randMat(rng, m, m)
	c := make([]float64, m*m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNTPrec(p, m, m, m, -1, a, m, bb, m, 1, c, m)
	}
	flops := 2 * float64(m) * float64(m) * float64(m)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
}
