package linalg

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Opt-in shared worker pool for the row-parallel kernels.
//
// The NT GEMM family, SYRK and TRSM all write disjoint row panels of their
// output: every output row depends only on its own accumulators, each of
// which sums in the same l-order regardless of how rows are grouped into
// panels. Any row partition therefore produces bit-identical float64 output
// to the serial kernel — TestParallelBitExact asserts this against the
// golden digests. Parallelism is off by default (Parallelism() == 1) so
// library users and the deterministic simulation engine see serial kernels
// unless they explicitly opt in.

// panelRows is the row granularity handed to one worker at a time: a
// multiple of the 4-row micro-kernel so only the final panel can leave
// remainder rows, and large enough that the atomic claim is amortized over
// ~panelRows·n·k flops.
const panelRows = 32

var (
	parMu   sync.Mutex
	parN    atomic.Int32 // observed lock-free on every kernel call
	parPool *workerPool
)

func init() { parN.Store(1) }

// SetParallelism sets the number of workers the dense kernels may use.
// n <= 0 selects GOMAXPROCS. n == 1 (the default) disables the pool and
// runs every kernel serially. The pool is shared by all kernels and is safe
// to use while the runtime engine is executing task bodies concurrently.
// Output bits are identical for every setting.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	parMu.Lock()
	defer parMu.Unlock()
	if n > 1 && (parPool == nil || parPool.n < n) {
		parPool = newWorkerPool(n)
	}
	parN.Store(int32(n))
}

// Parallelism reports the current worker count (1 = serial).
func Parallelism() int { return int(parN.Load()) }

type workerPool struct {
	n    int
	work chan func()
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, work: make(chan func(), 4*n)}
	for w := 1; w < n; w++ {
		go func() {
			for f := range p.work {
				f()
			}
		}()
	}
	return p
}

// forPanels runs body over [0,rows) split into panelRows-sized chunks,
// claimed by workers via an atomic cursor. The caller always participates,
// so progress never depends on pool workers being free; if the work channel
// is full (other kernels saturating the pool) the caller simply runs the
// panels itself. Small problems skip the pool entirely.
func forPanels(rows int, body func(i0, i1 int)) {
	n := int(parN.Load())
	if n <= 1 || rows <= panelRows {
		body(0, rows)
		return
	}
	parMu.Lock()
	p := parPool
	parMu.Unlock()

	var next atomic.Int64
	var wg sync.WaitGroup
	task := func() {
		defer wg.Done()
		for {
			i1 := int(next.Add(panelRows))
			i0 := i1 - panelRows
			if i0 >= rows {
				return
			}
			if i1 > rows {
				i1 = rows
			}
			body(i0, i1)
		}
	}
	helpers := (rows + panelRows - 1) / panelRows
	if helpers > n {
		helpers = n
	}
	for w := 1; w < helpers; w++ {
		wg.Add(1)
		select {
		case p.work <- task:
		default:
			wg.Done()
			w = helpers // pool saturated; caller drains the rest
		}
	}
	wg.Add(1)
	task()
	wg.Wait()
}
