package linalg

import (
	"geompc/internal/fp16"
	"geompc/internal/prec"
)

// The NT GEMM family is built around register-blocked micro-kernels
// (dotNT4x2f64 / dotNT4x4f32 in kernel_amd64.s, with portable Go fallbacks
// in kernel_generic.go): a block of independent accumulators covers a 4×2
// (fp64) or 4×4 (f32) tile of C, with the k-loop innermost so each
// accumulator sums its products in exactly the order the naive triple loop
// would — the blocked kernels are bit-identical to the seed kernels for
// every input (pinned by the golden digest tests). B is repacked into an
// interleaved layout (bp[2l+jj] / bq[4l+jj]) so one vector load pulls the
// operand for all lanes; lanes never mix elements of one accumulation, so
// no reassociation happens.

// GemmNT computes C = alpha*A*Bᵀ + beta*C in float64.
// A is m×k (stride lda), B is n×k (stride ldb), C is m×n (stride ldc).
// Because B enters transposed, the inner loop is a dot product of two
// row-major rows, which is the cache-friendly orientation for the tile
// Cholesky update A[m][n] -= A[m][k]·A[n][k]ᵀ.
func GemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || m < 4 {
		// No dot-product work (or no full 4-row block): the scalar tail
		// covers everything without packing.
		gemmNT64Tail(0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	bp := f64Scratch(((n + 1) &^ 1) * k)
	interleave2f64(bp, b, n, k, ldb)
	forPanels(m, func(i0, i1 int) {
		gemmNT64Panel(i0, i1, n, k, alpha, a, lda, b, ldb, bp, beta, c, ldc)
	})
	putF64(bp)
}

func gemmNT64Panel(i0, i1, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, bp []float64, beta float64, c []float64, ldc int) {
	var s4 [16]float64
	var s [8]float64
	i := i0
	for ; i+4 <= i1; i += 4 {
		ai0 := a[(i+0)*lda:][:k]
		ai1 := a[(i+1)*lda:][:k]
		ai2 := a[(i+2)*lda:][:k]
		ai3 := a[(i+3)*lda:][:k]
		ci0 := c[(i+0)*ldc:][:n]
		ci1 := c[(i+1)*ldc:][:n]
		ci2 := c[(i+2)*ldc:][:n]
		ci3 := c[(i+3)*ldc:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			dotNT4x4f64(k, ai0, ai1, ai2, ai3, bp[j*k:], bp[(j+2)*k:], &s4)
			if beta == 0 { // BLAS: C is not read when beta == 0
				ci0[j+0], ci0[j+1] = alpha*s4[0], alpha*s4[1]
				ci0[j+2], ci0[j+3] = alpha*s4[2], alpha*s4[3]
				ci1[j+0], ci1[j+1] = alpha*s4[4], alpha*s4[5]
				ci1[j+2], ci1[j+3] = alpha*s4[6], alpha*s4[7]
				ci2[j+0], ci2[j+1] = alpha*s4[8], alpha*s4[9]
				ci2[j+2], ci2[j+3] = alpha*s4[10], alpha*s4[11]
				ci3[j+0], ci3[j+1] = alpha*s4[12], alpha*s4[13]
				ci3[j+2], ci3[j+3] = alpha*s4[14], alpha*s4[15]
			} else {
				for jj := 0; jj < 4; jj++ {
					ci0[j+jj] = alpha*s4[jj] + beta*ci0[j+jj]
					ci1[j+jj] = alpha*s4[4+jj] + beta*ci1[j+jj]
					ci2[j+jj] = alpha*s4[8+jj] + beta*ci2[j+jj]
					ci3[j+jj] = alpha*s4[12+jj] + beta*ci3[j+jj]
				}
			}
		}
		if j+2 <= n {
			dotNT4x2f64(k, ai0, ai1, ai2, ai3, bp[j*k:], &s)
			if beta == 0 {
				ci0[j+0], ci0[j+1] = alpha*s[0], alpha*s[1]
				ci1[j+0], ci1[j+1] = alpha*s[2], alpha*s[3]
				ci2[j+0], ci2[j+1] = alpha*s[4], alpha*s[5]
				ci3[j+0], ci3[j+1] = alpha*s[6], alpha*s[7]
			} else {
				ci0[j+0] = alpha*s[0] + beta*ci0[j+0]
				ci0[j+1] = alpha*s[1] + beta*ci0[j+1]
				ci1[j+0] = alpha*s[2] + beta*ci1[j+0]
				ci1[j+1] = alpha*s[3] + beta*ci1[j+1]
				ci2[j+0] = alpha*s[4] + beta*ci2[j+0]
				ci2[j+1] = alpha*s[5] + beta*ci2[j+1]
				ci3[j+0] = alpha*s[6] + beta*ci3[j+0]
				ci3[j+1] = alpha*s[7] + beta*ci3[j+1]
			}
			j += 2
		}
		if j < n { // odd n: the pair block's second lane is zero padding
			dotNT4x2f64(k, ai0, ai1, ai2, ai3, bp[j*k:], &s)
			if beta == 0 {
				ci0[j], ci1[j], ci2[j], ci3[j] = alpha*s[0], alpha*s[2], alpha*s[4], alpha*s[6]
			} else {
				ci0[j] = alpha*s[0] + beta*ci0[j]
				ci1[j] = alpha*s[2] + beta*ci1[j]
				ci2[j] = alpha*s[4] + beta*ci2[j]
				ci3[j] = alpha*s[6] + beta*ci3[j]
			}
		}
	}
	gemmNT64Tail(i, i1, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// gemmNT64Tail is the seed scalar loop over rows [i0,i1) — the remainder
// rows of a panel (fewer than four) read B directly in row-major form.
func gemmNT64Tail(i0, i1, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := i0; i < i1; i++ {
		ai := a[i*lda:][:k]
		ci := c[i*ldc:][:n]
		if beta == 0 {
			for j := 0; j < n; j++ {
				bj := b[j*ldb:][:k]
				var s float64
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] = alpha * s
			}
		} else {
			for j := 0; j < n; j++ {
				bj := b[j*ldb:][:k]
				var s float64
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] = alpha*s + beta*ci[j]
			}
		}
	}
}

// interleave2f64 packs the n×k row-major matrix (stride ld) into
// column-pair blocks: dst[jp·2k + 2l + jj] = src[(2jp+jj)·ld + l], the
// operand layout of dotNT4x2f64. An odd final row is padded with zeros
// (its lane is computed and discarded — zero products never perturb the
// other lane because packed ops are per-lane).
func interleave2f64(dst, src []float64, n, k, ld int) {
	for jp := 0; 2*jp < n; jp++ {
		out := dst[jp*2*k:][:2*k]
		r0 := src[2*jp*ld:][:k]
		if 2*jp+1 < n {
			r1 := src[(2*jp+1)*ld:][:k]
			for l := 0; l < k; l++ {
				out[2*l] = r0[l]
				out[2*l+1] = r1[l]
			}
		} else {
			for l := 0; l < k; l++ {
				out[2*l] = r0[l]
				out[2*l+1] = 0
			}
		}
	}
}

// GemmNN computes C = alpha*A*B + beta*C in float64.
// A is m×k, B is k×n, C is m×n. Used by the GEMM benchmark (Fig 1) and the
// prediction path.
func GemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc:][:n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		ai := a[i*lda:][:k]
		for l := 0; l < k; l++ {
			v := alpha * ai[l]
			bl := b[l*ldb:][:n]
			for j := 0; j < n; j++ {
				ci[j] += v * bl[j]
			}
		}
	}
}

// gemmNT32Panel is the shared float32-accumulation micro-kernel body for
// rows [i0,i1): af and bf hold the packed (and, for the emulated formats,
// input-quantized) operands with row stride k. The beta == 0 test is against
// the caller's float64 beta, matching the seed kernels exactly (a beta that
// underflows to zero only in float32 must still take the read-C path).
func gemmNT32Panel(i0, i1, n, k int, al float32, betaZero bool, be float32, af, bf, bq []float32, c []float64, ldc int) {
	var s [16]float32
	i := i0
	for ; i+4 <= i1; i += 4 {
		ai0 := af[(i+0)*k:][:k]
		ai1 := af[(i+1)*k:][:k]
		ai2 := af[(i+2)*k:][:k]
		ai3 := af[(i+3)*k:][:k]
		ci0 := c[(i+0)*ldc:][:n]
		ci1 := c[(i+1)*ldc:][:n]
		ci2 := c[(i+2)*ldc:][:n]
		ci3 := c[(i+3)*ldc:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			dotNT4x4f32(k, ai0, ai1, ai2, ai3, bq[j*k:], &s)
			if betaZero {
				ci0[j+0], ci0[j+1] = float64(al*s[0]), float64(al*s[1])
				ci0[j+2], ci0[j+3] = float64(al*s[2]), float64(al*s[3])
				ci1[j+0], ci1[j+1] = float64(al*s[4]), float64(al*s[5])
				ci1[j+2], ci1[j+3] = float64(al*s[6]), float64(al*s[7])
				ci2[j+0], ci2[j+1] = float64(al*s[8]), float64(al*s[9])
				ci2[j+2], ci2[j+3] = float64(al*s[10]), float64(al*s[11])
				ci3[j+0], ci3[j+1] = float64(al*s[12]), float64(al*s[13])
				ci3[j+2], ci3[j+3] = float64(al*s[14]), float64(al*s[15])
			} else {
				for jj := 0; jj < 4; jj++ {
					ci0[j+jj] = float64(al*s[jj] + be*float32(ci0[j+jj]))
					ci1[j+jj] = float64(al*s[4+jj] + be*float32(ci1[j+jj]))
					ci2[j+jj] = float64(al*s[8+jj] + be*float32(ci2[j+jj]))
					ci3[j+jj] = float64(al*s[12+jj] + be*float32(ci3[j+jj]))
				}
			}
		}
		if j < n { // n % 4 remainder: the quad block's upper lanes are padding
			dotNT4x4f32(k, ai0, ai1, ai2, ai3, bq[j*k:], &s)
			for jj := 0; j+jj < n; jj++ {
				if betaZero {
					ci0[j+jj] = float64(al * s[jj])
					ci1[j+jj] = float64(al * s[4+jj])
					ci2[j+jj] = float64(al * s[8+jj])
					ci3[j+jj] = float64(al * s[12+jj])
				} else {
					ci0[j+jj] = float64(al*s[jj] + be*float32(ci0[j+jj]))
					ci1[j+jj] = float64(al*s[4+jj] + be*float32(ci1[j+jj]))
					ci2[j+jj] = float64(al*s[8+jj] + be*float32(ci2[j+jj]))
					ci3[j+jj] = float64(al*s[12+jj] + be*float32(ci3[j+jj]))
				}
			}
		}
	}
	for ; i < i1; i++ {
		ai := af[i*k:][:k]
		ci := c[i*ldc:][:n]
		if betaZero {
			for j := 0; j < n; j++ {
				bj := bf[j*k:][:k]
				var s float32
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] = float64(al * s)
			}
		} else {
			for j := 0; j < n; j++ {
				bj := bf[j*k:][:k]
				var s float32
				for l := 0; l < k; l++ {
					s += ai[l] * bj[l]
				}
				ci[j] = float64(al*s + be*float32(ci[j]))
			}
		}
	}
}

// gemmNT32 packs with the format's input quantizer (pk) — once, row-major,
// for the scalar-tail rows — then quad-interleaves B for the SIMD kernel,
// and runs the shared float32 micro-kernel over row panels.
func gemmNT32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, pk func(dst []float32, src []float64, rows, cols, ld int)) {
	if m == 0 || n == 0 {
		return
	}
	af, bf := f32Scratch(m*k), f32Scratch(n*k)
	pk(af, a, m, k, lda)
	pk(bf, b, n, k, ldb)
	bq := f32Scratch(((n + 3) &^ 3) * k)
	interleave4f32(bq, bf, n, k)
	al, be := float32(alpha), float32(beta)
	forPanels(m, func(i0, i1 int) {
		gemmNT32Panel(i0, i1, n, k, al, beta == 0, be, af, bf, bq, c, ldc)
	})
	putF32(af)
	putF32(bf)
	putF32(bq)
}

// interleave4f32 packs the already-quantized row-major n×k matrix (stride k)
// into column-quad blocks: dst[jq·4k + 4l + jj] = src[(4jq+jj)·k + l], the
// operand layout of dotNT4x4f32. Rows past n are zero padding; their lanes
// are computed and discarded at the store.
func interleave4f32(dst, src []float32, n, k int) {
	for jq := 0; 4*jq < n; jq++ {
		out := dst[jq*4*k:][:4*k]
		for jj := 0; jj < 4; jj++ {
			if 4*jq+jj < n {
				row := src[(4*jq+jj)*k:][:k]
				for l := 0; l < k; l++ {
					out[4*l+jj] = row[l]
				}
			} else {
				for l := 0; l < k; l++ {
					out[4*l+jj] = 0
				}
			}
		}
	}
}

// GemmNT32 computes C = alpha*A*Bᵀ + beta*C with genuine float32 arithmetic
// over float64 storage: inputs are cast to float32, products and sums are
// accumulated in float32, and the float32 result is stored back.
func GemmNT32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, pack32)
}

// GemmNTFP16x32 emulates the FP16_32 tensor-core GEMM: A and B quantized to
// binary16, multiply-accumulate and C in float32.
func GemmNTFP16x32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, packFP16)
}

// GemmNTTF32 emulates the TF32 tensor-core GEMM: inputs quantized to TF32,
// float32 accumulation.
func GemmNTTF32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, packTF32)
}

// GemmNTBF16x32 emulates the BF16_32 tensor-core GEMM: inputs quantized to
// bfloat16, float32 accumulation.
func GemmNTBF16x32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, packBF16)
}

// GemmNTFP16 emulates the pure-FP16 GEMM: A, B and C in binary16 and the
// accumulator rounded to binary16 after every fused multiply-add, matching
// FP16-accumulate tensor-core mode. The kernel holds every binary16 value as
// its exact float32 image and applies fp16.QuantF32 (round-to-nearest-even
// at binary16 precision) after each multiply and each add — proven
// bit-equivalent to the Half-typed AddHalf/MulHalf chain by the exhaustive
// fp16 tests, and pinned against the seed kernel by the golden digests.
func GemmNTFP16(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	af, bf := f32Scratch(m*k), f32Scratch(n*k)
	packFP16(af, a, m, k, lda)
	packFP16(bf, b, n, k, ldb)
	alf := fp16.QuantF32(float32(alpha))
	bef := fp16.QuantF32(float32(beta))
	forPanels(m, func(i0, i1 int) {
		gemmNT16Panel(i0, i1, n, k, alf, beta == 0, bef, af, bf, c, ldc)
	})
	putF32(af)
	putF32(bf)
}

func gemmNT16Panel(i0, i1, n, k int, alf float32, betaZero bool, bef float32, af, bf []float32, c []float64, ldc int) {
	i := i0
	for ; i+4 <= i1; i += 4 {
		ai0 := af[(i+0)*k:][:k]
		ai1 := af[(i+1)*k:][:k]
		ai2 := af[(i+2)*k:][:k]
		ai3 := af[(i+3)*k:][:k]
		ci0 := c[(i+0)*ldc:][:n]
		ci1 := c[(i+1)*ldc:][:n]
		ci2 := c[(i+2)*ldc:][:n]
		ci3 := c[(i+3)*ldc:][:n]
		j := 0
		for ; j+4 <= n; j += 4 {
			bj0 := bf[(j+0)*k:][:k]
			bj1 := bf[(j+1)*k:][:k]
			bj2 := bf[(j+2)*k:][:k]
			bj3 := bf[(j+3)*k:][:k]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			var s20, s21, s22, s23 float32
			var s30, s31, s32, s33 float32
			for l := 0; l < k; l++ {
				a0, a1, a2, a3 := ai0[l], ai1[l], ai2[l], ai3[l]
				b0, b1, b2, b3 := bj0[l], bj1[l], bj2[l], bj3[l]
				s00 = fp16.QuantF32(s00 + fp16.QuantF32(a0*b0))
				s01 = fp16.QuantF32(s01 + fp16.QuantF32(a0*b1))
				s02 = fp16.QuantF32(s02 + fp16.QuantF32(a0*b2))
				s03 = fp16.QuantF32(s03 + fp16.QuantF32(a0*b3))
				s10 = fp16.QuantF32(s10 + fp16.QuantF32(a1*b0))
				s11 = fp16.QuantF32(s11 + fp16.QuantF32(a1*b1))
				s12 = fp16.QuantF32(s12 + fp16.QuantF32(a1*b2))
				s13 = fp16.QuantF32(s13 + fp16.QuantF32(a1*b3))
				s20 = fp16.QuantF32(s20 + fp16.QuantF32(a2*b0))
				s21 = fp16.QuantF32(s21 + fp16.QuantF32(a2*b1))
				s22 = fp16.QuantF32(s22 + fp16.QuantF32(a2*b2))
				s23 = fp16.QuantF32(s23 + fp16.QuantF32(a2*b3))
				s30 = fp16.QuantF32(s30 + fp16.QuantF32(a3*b0))
				s31 = fp16.QuantF32(s31 + fp16.QuantF32(a3*b1))
				s32 = fp16.QuantF32(s32 + fp16.QuantF32(a3*b2))
				s33 = fp16.QuantF32(s33 + fp16.QuantF32(a3*b3))
			}
			ci0[j+0] = fp16Store(alf, s00, betaZero, bef, ci0[j+0])
			ci0[j+1] = fp16Store(alf, s01, betaZero, bef, ci0[j+1])
			ci0[j+2] = fp16Store(alf, s02, betaZero, bef, ci0[j+2])
			ci0[j+3] = fp16Store(alf, s03, betaZero, bef, ci0[j+3])
			ci1[j+0] = fp16Store(alf, s10, betaZero, bef, ci1[j+0])
			ci1[j+1] = fp16Store(alf, s11, betaZero, bef, ci1[j+1])
			ci1[j+2] = fp16Store(alf, s12, betaZero, bef, ci1[j+2])
			ci1[j+3] = fp16Store(alf, s13, betaZero, bef, ci1[j+3])
			ci2[j+0] = fp16Store(alf, s20, betaZero, bef, ci2[j+0])
			ci2[j+1] = fp16Store(alf, s21, betaZero, bef, ci2[j+1])
			ci2[j+2] = fp16Store(alf, s22, betaZero, bef, ci2[j+2])
			ci2[j+3] = fp16Store(alf, s23, betaZero, bef, ci2[j+3])
			ci3[j+0] = fp16Store(alf, s30, betaZero, bef, ci3[j+0])
			ci3[j+1] = fp16Store(alf, s31, betaZero, bef, ci3[j+1])
			ci3[j+2] = fp16Store(alf, s32, betaZero, bef, ci3[j+2])
			ci3[j+3] = fp16Store(alf, s33, betaZero, bef, ci3[j+3])
		}
		for ; j < n; j++ {
			bj := bf[j*k:][:k]
			var s0, s1, s2, s3 float32
			for l := 0; l < k; l++ {
				bl := bj[l]
				s0 = fp16.QuantF32(s0 + fp16.QuantF32(ai0[l]*bl))
				s1 = fp16.QuantF32(s1 + fp16.QuantF32(ai1[l]*bl))
				s2 = fp16.QuantF32(s2 + fp16.QuantF32(ai2[l]*bl))
				s3 = fp16.QuantF32(s3 + fp16.QuantF32(ai3[l]*bl))
			}
			ci0[j] = fp16Store(alf, s0, betaZero, bef, ci0[j])
			ci1[j] = fp16Store(alf, s1, betaZero, bef, ci1[j])
			ci2[j] = fp16Store(alf, s2, betaZero, bef, ci2[j])
			ci3[j] = fp16Store(alf, s3, betaZero, bef, ci3[j])
		}
	}
	for ; i < i1; i++ {
		ai := af[i*k:][:k]
		ci := c[i*ldc:][:n]
		for j := 0; j < n; j++ {
			bj := bf[j*k:][:k]
			var s float32
			for l := 0; l < k; l++ {
				s = fp16.QuantF32(s + fp16.QuantF32(ai[l]*bj[l]))
			}
			ci[j] = fp16Store(alf, s, betaZero, bef, ci[j])
		}
	}
}

// fp16Store applies the binary16 alpha/beta combine: t = alpha⊗s and, when
// beta is nonzero, t ⊕ beta⊗fl16(cij) — each ⊗/⊕ a float32 op rounded to
// binary16, matching the seed kernel's MulHalf/AddHalf chain bit-for-bit.
func fp16Store(alf, s float32, betaZero bool, bef float32, cij float64) float64 {
	t := fp16.QuantF32(alf * s)
	if betaZero {
		return float64(t)
	}
	u := fp16.QuantF32(bef * fp16.QuantF32(float32(cij)))
	return float64(fp16.QuantF32(t + u))
}

// GemmNTPrec dispatches the NT GEMM to the kernel for precision p.
func GemmNTPrec(p prec.Precision, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	switch p {
	case prec.FP64:
		GemmNT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP32:
		GemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.TF32:
		GemmNTTF32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.BF16x32:
		GemmNTBF16x32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP16x32:
		GemmNTFP16x32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP16:
		GemmNTFP16(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	default:
		panic("linalg: invalid precision " + p.String())
	}
}

// The pack loops below are specialized per format — the seed's
// rq func(float32) float32 closure cost an indirect call per element;
// each loop body here inlines its quantizer.

func pack32(dst []float32, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld:][:cols]
		out := dst[i*cols:][:cols]
		for j, v := range row {
			out[j] = float32(v)
		}
	}
}

// packTF32 quantizes to TF32 (11-bit significand, float32 exponent range).
func packTF32(dst []float32, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld:][:cols]
		out := dst[i*cols:][:cols]
		for j, v := range row {
			out[j] = fp16.TF32Round(float32(v))
		}
	}
}

// packBF16 quantizes to bfloat16 (8-bit significand).
func packBF16(dst []float32, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld:][:cols]
		out := dst[i*cols:][:cols]
		for j, v := range row {
			out[j] = fp16.BF16Round(float32(v))
		}
	}
}

// packFP16 quantizes to binary16, held as exact float32 values.
func packFP16(dst []float32, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld:][:cols]
		out := dst[i*cols:][:cols]
		for j, v := range row {
			out[j] = fp16.QuantF32(float32(v))
		}
	}
}
