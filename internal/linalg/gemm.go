package linalg

import (
	"geompc/internal/fp16"
	"geompc/internal/prec"
)

// GemmNT computes C = alpha*A*Bᵀ + beta*C in float64.
// A is m×k (stride lda), B is n×k (stride ldb), C is m×n (stride ldc).
// Because B enters transposed, the inner loop is a dot product of two
// row-major rows, which is the cache-friendly orientation for the tile
// Cholesky update A[m][n] -= A[m][k]·A[n][k]ᵀ.
func GemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			var s float64
			for l := 0; l < k; l++ {
				s += ai[l] * bj[l]
			}
			if beta == 0 {
				ci[j] = alpha * s // BLAS: C is not read when beta == 0
			} else {
				ci[j] = alpha*s + beta*ci[j]
			}
		}
	}
}

// GemmNN computes C = alpha*A*B + beta*C in float64.
// A is m×k, B is k×n, C is m×n. Used by the GEMM benchmark (Fig 1) and the
// prediction path.
func GemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		ai := a[i*lda : i*lda+k]
		for l := 0; l < k; l++ {
			v := alpha * ai[l]
			bl := b[l*ldb : l*ldb+n]
			for j := 0; j < n; j++ {
				ci[j] += v * bl[j]
			}
		}
	}
}

// GemmNT32 computes C = alpha*A*Bᵀ + beta*C with genuine float32 arithmetic
// over float64 storage: inputs are cast to float32, products and sums are
// accumulated in float32, and the float32 result is stored back.
func GemmNT32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	af, bf := f32Scratch(m*k), f32Scratch(n*k)
	defer putF32(af)
	defer putF32(bf)
	pack32(af, a, m, k, lda)
	pack32(bf, b, n, k, ldb)
	al, be := float32(alpha), float32(beta)
	for i := 0; i < m; i++ {
		ai := af[i*k : i*k+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := bf[j*k : j*k+k]
			var s float32
			for l := 0; l < k; l++ {
				s += ai[l] * bj[l]
			}
			if beta == 0 {
				ci[j] = float64(al * s)
			} else {
				ci[j] = float64(al*s + be*float32(ci[j]))
			}
		}
	}
}

// gemmNTQuant computes the NT product with inputs quantized element-wise by
// rq (the format's input rounding) and float32 accumulation — the shared
// body of the TF32, BF16_32 and FP16_32 emulations.
func gemmNTQuant(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int, rq func(float32) float32) {
	af, bf := f32Scratch(m*k), f32Scratch(n*k)
	defer putF32(af)
	defer putF32(bf)
	packQuant(af, a, m, k, lda, rq)
	packQuant(bf, b, n, k, ldb, rq)
	al, be := float32(alpha), float32(beta)
	for i := 0; i < m; i++ {
		ai := af[i*k : i*k+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := bf[j*k : j*k+k]
			var s float32
			for l := 0; l < k; l++ {
				s += ai[l] * bj[l]
			}
			if beta == 0 {
				ci[j] = float64(al * s)
			} else {
				ci[j] = float64(al*s + be*float32(ci[j]))
			}
		}
	}
}

// GemmNTFP16x32 emulates the FP16_32 tensor-core GEMM: A and B quantized to
// binary16, multiply-accumulate and C in float32.
func GemmNTFP16x32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNTQuant(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, fp16.RoundF32)
}

// GemmNTTF32 emulates the TF32 tensor-core GEMM: inputs quantized to TF32,
// float32 accumulation.
func GemmNTTF32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNTQuant(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, fp16.TF32Round)
}

// GemmNTBF16x32 emulates the BF16_32 tensor-core GEMM: inputs quantized to
// bfloat16, float32 accumulation.
func GemmNTBF16x32(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmNTQuant(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, fp16.BF16Round)
}

// GemmNTFP16 emulates the pure-FP16 GEMM: A, B and C in binary16 and the
// accumulator rounded to binary16 after every fused multiply-add, matching
// FP16-accumulate tensor-core mode.
func GemmNTFP16(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	ah, bh := halfScratch(m*k), halfScratch(n*k)
	defer putHalf(ah)
	defer putHalf(bh)
	packHalf(ah, a, m, k, lda)
	packHalf(bh, b, n, k, ldb)
	alh := fp16.FromFloat32(float32(alpha))
	beh := fp16.FromFloat32(float32(beta))
	for i := 0; i < m; i++ {
		ai := ah[i*k : i*k+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := bh[j*k : j*k+k]
			var s fp16.Half // +0
			for l := 0; l < k; l++ {
				s = fp16.AddHalf(s, fp16.MulHalf(ai[l], bj[l]))
			}
			t := fp16.MulHalf(alh, s)
			if beta == 0 {
				ci[j] = float64(t.ToFloat32())
			} else {
				u := fp16.MulHalf(beh, fp16.FromFloat32(float32(ci[j])))
				ci[j] = float64(fp16.AddHalf(t, u).ToFloat32())
			}
		}
	}
}

// GemmNTPrec dispatches the NT GEMM to the kernel for precision p.
func GemmNTPrec(p prec.Precision, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	switch p {
	case prec.FP64:
		GemmNT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP32:
		GemmNT32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.TF32:
		GemmNTTF32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.BF16x32:
		GemmNTBF16x32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP16x32:
		GemmNTFP16x32(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case prec.FP16:
		GemmNTFP16(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	default:
		panic("linalg: invalid precision " + p.String())
	}
}

func pack32(dst []float32, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld : i*ld+cols]
		out := dst[i*cols : i*cols+cols]
		for j, v := range row {
			out[j] = float32(v)
		}
	}
}

func packQuant(dst []float32, src []float64, rows, cols, ld int, rq func(float32) float32) {
	for i := 0; i < rows; i++ {
		row := src[i*ld : i*ld+cols]
		out := dst[i*cols : i*cols+cols]
		for j, v := range row {
			out[j] = rq(float32(v))
		}
	}
}

func packHalf(dst []fp16.Half, src []float64, rows, cols, ld int) {
	for i := 0; i < rows; i++ {
		row := src[i*ld : i*ld+cols]
		out := dst[i*cols : i*cols+cols]
		for j, v := range row {
			out[j] = fp16.FromFloat32(float32(v))
		}
	}
}
