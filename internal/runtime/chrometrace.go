package runtime

import (
	"fmt"
	"io"

	"geompc/internal/obs"
)

// WriteChromeTrace renders the last Trace-enabled run as a Chrome
// trace-event (Perfetto-loadable) JSON timeline: one process per device,
// with threads for the compute, conversion, H2D and D2H streams, plus one
// process per rank's NIC. Kernel spans are colored by execution precision.
// name, when non-nil, supplies a human-readable label for task id (e.g.
// "GEMM(4,1,2)"); otherwise spans are labeled by kernel kind and id.
func (e *Engine) WriteChromeTrace(w io.Writer, name func(id int) string) error {
	if !e.Trace || e.devices == nil {
		return fmt.Errorf("runtime: no trace recorded (set Engine.Trace before Run)")
	}
	tr := obs.NewTrace()
	tr.SetMeta("makespan_seconds", fmt.Sprintf("%g", e.stats.Makespan))
	tr.SetMeta("energy_joules", fmt.Sprintf("%g", e.stats.Energy))
	tr.SetMeta("schedule_digest", fmt.Sprintf("%016x", e.stats.ScheduleDigest))
	tr.SetMeta("sched_policy", e.policy.Name())
	tr.SetMeta("bcast_topology", e.topo.Name())

	const (
		tidCompute = 0
		tidConvert = 1
		tidH2D     = 2
		tidD2H     = 3
	)
	for _, d := range e.devices {
		pid := d.id
		tr.SetProcessName(pid, fmt.Sprintf("dev%d (%s, rank %d)", d.id, d.spec.Name, d.rank))
		tr.SetThreadName(pid, tidCompute, "compute")
		tr.SetThreadName(pid, tidConvert, "convert")
		tr.SetThreadName(pid, tidH2D, "H2D")
		tr.SetThreadName(pid, tidD2H, "D2H")
		for _, iv := range d.convIntervals {
			tr.Span(pid, tidConvert, "convert", iv.Start, iv.End, "generic_work",
				map[string]any{"watts": iv.Power})
		}
		for _, iv := range d.h2d.Intervals() {
			tr.Span(pid, tidH2D, fmt.Sprintf("H2D %d B", iv.Bytes), iv.Start, iv.End, "",
				map[string]any{"bytes": iv.Bytes, "watts": iv.Power})
		}
		for _, iv := range d.d2h.Intervals() {
			tr.Span(pid, tidD2H, fmt.Sprintf("D2H %d B", iv.Bytes), iv.Start, iv.End, "",
				map[string]any{"bytes": iv.Bytes, "watts": iv.Power})
		}
	}
	// Kernel spans come from the schedule trace so they carry task identity
	// and precision (the per-device busyIntervals only carry power).
	// Recovery work — lineage replays and transient-fault retries — is
	// prefixed and forced to the viewer's "bad" color so the cost of a
	// failure reads at a glance.
	for _, st := range e.schedule {
		label := fmt.Sprintf("%s#%d", st.Kind, st.ID)
		if name != nil {
			label = name(st.ID)
		}
		color := obs.PrecisionColor(st.Prec.String())
		args := map[string]any{"prec": st.Prec.String(), "task": st.ID}
		if st.Recovery {
			label = "recover " + label
			color = "bad"
			args["recovery"] = true
		}
		tr.Span(st.Device, tidCompute, label, st.Start, st.End, color, args)
	}
	// Injected faults appear as instant markers on the victim's compute row.
	for _, fm := range e.faultLog {
		label := "transient fault"
		if fm.kind == FaultKill {
			label = "device failure"
		}
		tr.Instant(fm.device, tidCompute, label, fm.at, map[string]any{"kind": fm.kind.String()})
	}
	if e.stats.DeviceFailures > 0 || e.stats.TransientFaults > 0 {
		tr.SetMeta("device_failures", fmt.Sprintf("%d", e.stats.DeviceFailures))
		tr.SetMeta("replayed_tasks", fmt.Sprintf("%d", e.stats.ReplayedTasks))
		tr.SetMeta("recovery_bytes", fmt.Sprintf("%d", e.stats.RecoveryBytes))
	}
	for rank, nic := range e.nics {
		ivs := nic.Intervals()
		if len(ivs) == 0 {
			continue
		}
		pid := len(e.devices) + rank
		tr.SetProcessName(pid, fmt.Sprintf("rank%d NIC", rank))
		tr.SetThreadName(pid, 0, "send")
		for _, iv := range ivs {
			tr.Span(pid, 0, fmt.Sprintf("bcast %d B", iv.Bytes), iv.Start, iv.End, "",
				map[string]any{"bytes": iv.Bytes})
		}
	}
	return tr.WriteJSON(w)
}
