package runtime

// Host-availability index: the virtual time each (rank, datum) pair's host
// copy becomes readable. Graphs that bound their DataID space get a dense
// flat table; everything else falls back to a map.

type hostKey struct {
	rank int
	data DataID
}

// hostAbsent marks a (rank, data) slot of the dense host index with no host
// copy; availability times are always ≥ 0.
const hostAbsent = -1.0

// The dense index is addressed as rank*hostStride + data. The serial engine
// sets hostStride = hostBound (one segment per rank); a parallel-mode rank
// shard holds only its own rank's segment and sets hostStride = 0, so the
// same arithmetic collapses every (own-rank, data) access onto a
// bound-sized table without a branch on the hot path.
//
//geompc:hot
func (e *Engine) setHostAvail(rank int, d DataID, at float64) {
	if e.hostDense != nil {
		e.hostDense[rank*e.hostStride+int(d)] = at
		return
	}
	e.hostAvail[hostKey{rank, d}] = at
}

//geompc:hot
func (e *Engine) lookupHostAvail(rank int, d DataID) (float64, bool) {
	if e.hostDense != nil {
		v := e.hostDense[rank*e.hostStride+int(d)]
		return v, v != hostAbsent
	}
	v, ok := e.hostAvail[hostKey{rank, d}]
	return v, ok
}

// DataBounder is an optional Graph capability: a graph whose DataIDs all lie
// in [0, DataIDBound()) lets the engine replace the host-availability map
// with a dense per-rank table.
type DataBounder interface {
	DataIDBound() int64
}
