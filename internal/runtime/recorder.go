package runtime

// PlanRecorder observes the engine's execution stream for plan compilation
// (internal/plan): RecordCommit fires when a task is committed to a device
// pipeline (its data staged, its virtual window booked, its numeric body —
// if any — submitted), RecordComplete when its completion event retires and
// the body has been joined, strictly before any successor commits.
//
// The interleaved commit/complete stream therefore encodes exactly the
// synchronization a later numeric replay must reproduce: starting a task's
// body at its recorded commit and joining it at its recorded completion
// yields the same producer-before-consumer dataflow order as the original
// run, without re-simulating the event heap.
//
// Recovery work is never reported: lineage replays and their completions
// are internal to fault handling and do not belong to the forward schedule.
// Both callbacks run on the engine's (single) event-loop goroutine.
type PlanRecorder interface {
	RecordCommit(id int)
	RecordComplete(id int)
}
