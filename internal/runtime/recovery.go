package runtime

import "fmt"

// This file implements the engine's fault delivery and recovery machinery.
// Faults arrive as events in the regular discrete-event heap (pushed at Run
// start by armFaults), so they interleave with task completions in a total,
// reproducible order: a fault and a completion at the same virtual time are
// ordered by sequence number, and fault events are pushed first.
//
// Recovery from a device failure proceeds in five deterministic steps (see
// killDevice): abort the dead device's in-flight tasks, reconstruct its
// lost dirty tiles on same-rank survivors by lineage re-execution, drop its
// residency, re-route its aborted and queued tasks, and refill the
// survivors' pipelines. All replayed/retried work flows through the normal
// commit path, so it is digested, traced, audited and energy-accounted like
// any other work — the extra time and joules a failure costs are first-class
// outputs of the run.

// faultMark records a delivered fault for the Chrome trace export.
type faultMark struct {
	kind   FaultKind
	device int
	at     float64
}

// armFaults resolves the injector's plan for this run. The engine arms
// itself only when the plan contains at least one event; a nil injector or
// an empty plan leaves the run bit-identical to one without fault support.
func (e *Engine) armFaults() error {
	if e.injector == nil {
		return nil
	}
	plan := FaultPlan(e.injector.Plan(len(e.devices)))
	if len(plan) == 0 {
		return nil
	}
	if err := plan.Validate(len(e.devices)); err != nil {
		return err
	}
	e.armed = true
	e.lineageG, _ = e.g.(LineageGraph)
	if e.orphan == nil {
		e.orphan = make(map[int]chan struct{})
	} else {
		for k := range e.orphan {
			delete(e.orphan, k)
		}
	}
	if e.lineage == nil {
		e.lineage = make(map[DataID][]int)
	} else {
		for k := range e.lineage {
			e.lineage[k] = e.lineage[k][:0]
		}
	}
	for _, f := range plan {
		if f.Kind == FaultSlow {
			d := e.devices[f.Device]
			d.slows = append(d.slows, slowWindow{from: f.From, to: f.To, factor: f.Factor})
			continue
		}
		// Fault events are pushed before any task commits, so their
		// sequence numbers precede every completion's: a fault at time t
		// is always processed before a completion at the same t.
		e.seq++
		fv := f
		e.pushEvent(event{at: f.At, seq: e.seq, fault: &fv})
	}
	return nil
}

// applyFault dispatches one fault event at the current virtual time.
func (e *Engine) applyFault(f *FaultEvent) {
	switch f.Kind {
	case FaultKill:
		e.killDevice(f)
	case FaultTransient:
		e.transientFault(f)
	}
}

// takeSpec fetches a TaskSpec from the freelist (or allocates one).
//
//geompc:hot
func (e *Engine) takeSpec() *TaskSpec {
	if n := len(e.specFree); n > 0 {
		spec := e.specFree[n-1]
		e.specFree = e.specFree[:n-1]
		return spec
	}
	return &TaskSpec{} //geompc:nolint hotalloc freelist warm-up: allocates only until the steady-state population exists
}

// failoverKey picks the deterministic re-placement key for a task: its
// output datum when it has one — which keeps an accumulation chain (and its
// replays) co-located on one survivor — otherwise the task id.
func failoverKey(spec *TaskSpec) int64 {
	if spec.Output.Data >= 0 {
		return int64(spec.Output.Data)
	}
	return int64(spec.ID)
}

// failoverFor returns the surviving same-rank device that inherits work
// keyed by key from the failed device orig, or -1 when the whole rank is
// dead (host copies live per rank, so work cannot migrate across ranks).
// The pick itself is the policy's: every front-end and the recovery path
// route through the same sched.Policy.Failover.
func (e *Engine) failoverFor(orig *device, key int64) int {
	base := orig.rank * e.plat.DevPerRank
	e.aliveBuf = e.aliveBuf[:0]
	for i := 0; i < e.plat.DevPerRank; i++ {
		if dd := e.devices[base+i]; dd.deadAt < 0 {
			e.aliveBuf = append(e.aliveBuf, dd.id)
		}
	}
	if len(e.aliveBuf) == 0 {
		return -1
	}
	return e.policy.Failover(key, e.aliveBuf)
}

// reroute re-places a task from a failed device onto a survivor's ready
// queue.
func (e *Engine) reroute(spec *TaskSpec) {
	orig := e.devices[spec.Device]
	t := e.failoverFor(orig, failoverKey(spec))
	if t < 0 {
		e.fatalErr = errUnrecoverable(spec.ID, orig.rank)
		e.specFree = append(e.specFree, spec)
		return
	}
	spec.Device = t
	e.devices[t].ready.push(spec)
}

// errUnrecoverable reports a rank losing its last device: with no peer
// holding the rank's host memory, its tasks cannot migrate.
func errUnrecoverable(taskID, rank int) error {
	return fmt.Errorf("runtime: task %d unrecoverable: rank %d has no surviving device", taskID, rank) //geompc:nolint hotalloc fatal-path error construction; the run is over when this allocates
}

// killDevice handles a permanent device failure at the current virtual
// time.
func (e *Engine) killDevice(f *FaultEvent) {
	d := e.devices[f.Device]
	if d.deadAt >= 0 {
		return // already dead
	}
	d.deadAt = e.now
	e.stats.DeviceFailures++
	e.faultLog = append(e.faultLog, faultMark{kind: FaultKill, device: d.id, at: e.now})
	if e.shard == nil {
		e.digest.WriteString("kill")
		e.digest.WriteInt64(int64(d.id))
		e.digest.WriteFloat64(e.now)
	}

	// 1. Abort the device's in-flight tasks: remove their completion events
	// from the heap, release their pins, and stash their already-running
	// numeric bodies for the re-commit to join (bodies run exactly once).
	e.abortBuf = e.abortBuf[:0]
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.fault != nil || ev.spec.Device != d.id {
			kept = append(kept, ev)
			continue
		}
		spec := ev.spec
		for i := range spec.Inputs {
			d.unpin(spec.Inputs[i].Data)
		}
		if spec.Output.Data >= 0 {
			d.unpin(spec.Output.Data)
		}
		e.inflight--
		d.committed--
		if ev.replay {
			// An in-flight replay died with the device; the dirty-tile scan
			// below re-replays the whole chain on the next survivor.
			e.specFree = append(e.specFree, spec)
			continue
		}
		if ev.result != nil {
			e.orphan[spec.ID] = ev.result
		}
		e.abortBuf = append(e.abortBuf, spec)
	}
	e.events = kept
	e.heapifyEvents()

	// 2. Reconstruct the tiles that existed only on the dead device. A tile
	// with a current host copy needs nothing now (consumers re-fetch it);
	// a dirty tile is rebuilt by re-executing its lineage — the writers
	// since its last host sync — on the survivor that inherits the datum.
	// The LRU list gives a deterministic iteration order.
	e.inRecovery = true
	for entry := d.lruHead; entry != nil && e.fatalErr == nil; entry = entry.next {
		chain := e.lineage[entry.data]
		if entry.hostCopy || len(chain) == 0 {
			continue
		}
		t := e.failoverFor(d, int64(entry.data))
		if t < 0 {
			e.fatalErr = errUnrecoverable(chain[0], d.rank)
			break
		}
		td := e.devices[t]
		for _, id := range chain {
			spec := e.takeSpec()
			e.g.Spec(id, spec)
			spec.ID = id
			spec.Device = t
			if !e.replayable(td, spec) {
				e.specFree = append(e.specFree, spec)
				break
			}
			e.commit(td, spec)
		}
	}
	e.inRecovery = false

	// 3. Device memory is gone: drop every resident entry.
	for entry := d.lruHead; entry != nil; {
		next := entry.next
		d.delEntry(entry.data)
		entry.prev, entry.next = nil, nil
		d.entryFree = append(d.entryFree, entry)
		entry = next
	}
	d.lruHead, d.lruTail = nil, nil
	d.used = 0

	// 4. Re-route the dead device's queued and aborted tasks onto same-rank
	// survivors (deterministically keyed by their output datum).
	for d.ready.Len() > 0 && e.fatalErr == nil {
		e.reroute(d.ready.pop())
	}
	for _, spec := range e.abortBuf {
		if e.fatalErr != nil {
			e.specFree = append(e.specFree, spec)
			continue
		}
		e.reroute(spec)
	}
	e.abortBuf = e.abortBuf[:0]
	d.committed = 0

	// 5. Refill the survivors' pipelines with the migrated work.
	if e.fatalErr == nil {
		for _, dd := range e.devices {
			if dd == nil {
				continue // parallel mode: remote ranks' slots are empty
			}
			e.tryCommit(dd)
		}
	}
}

// replayable validates a lineage replay before committing it: every input
// must be reachable from the rank's host memory (true by construction for
// graphs whose cross-tile producers publish, like the Cholesky PTG/DTD),
// and — when the graph declares its writers (LineageGraph) under audit —
// the replayed task must be one of the datum's declared writers.
func (e *Engine) replayable(td *device, spec *TaskSpec) bool {
	for i := range spec.Inputs {
		data := spec.Inputs[i].Data
		if td.entry(data) != nil {
			continue
		}
		if _, ok := e.lookupHostAvail(td.rank, data); !ok {
			e.violate("replay of task %d on dev%d: input %d unreachable from rank %d host memory",
				spec.ID, td.id, data, td.rank)
			return false
		}
	}
	if e.Audit && e.lineageG != nil && spec.Output.Data >= 0 {
		writers := e.lineageG.Writers(spec.Output.Data, e.succBuf[:0])
		found := false
		for _, w := range writers {
			if w == spec.ID {
				found = true
				break
			}
		}
		e.succBuf = writers[:0]
		if !found {
			e.violate("replay of task %d: not a declared writer of datum %d", spec.ID, spec.Output.Data)
		}
	}
	return true
}

// transientFault retries the most recently committed in-flight task on the
// device: its completion moves back by Backoff (idle) plus one full
// re-execution, with the retry window's energy accounted at the task's
// dynamic power. A fault landing on an idle or dead device hits nothing.
func (e *Engine) transientFault(f *FaultEvent) {
	e.stats.TransientFaults++
	d := e.devices[f.Device]
	if d.deadAt >= 0 {
		return
	}
	e.faultLog = append(e.faultLog, faultMark{kind: FaultTransient, device: d.id, at: e.now})
	best := -1
	for i := range e.events {
		ev := &e.events[i]
		if ev.fault != nil || ev.spec.Device != f.Device {
			continue
		}
		if best < 0 || ev.at > e.events[best].at ||
			(ev.at == e.events[best].at && ev.seq > e.events[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	ev := &e.events[best]
	retryDur := ev.at - ev.start
	if retryDur < 0 {
		retryDur = 0
	}
	retryStart := ev.at + f.Backoff
	ev.at = retryStart + retryDur
	dynW := d.spec.DynPower(ev.spec.Prec)
	d.stats.BusyTime += retryDur
	d.stats.DynEnergy += dynW * retryDur
	if d.trace {
		if retryDur > 0 {
			d.busyIntervals = append(d.busyIntervals, Interval{Start: retryStart, End: ev.at, Power: dynW})
		}
		if e.shard == nil {
			e.schedule = append(e.schedule, ScheduledTask{
				ID: ev.spec.ID, Kind: ev.spec.Kind, Device: d.id, Prec: ev.spec.Prec,
				Start: retryStart, End: ev.at, Recovery: true,
			})
		}
	}
	if d.computeFree < ev.at {
		d.computeFree = ev.at
	}
	e.stats.RetriedTasks++
	if e.shard != nil {
		e.shard.retryAt = ev.at
	} else {
		e.digest.WriteString("retry")
		e.digest.WriteInt64(int64(d.id))
		e.digest.WriteFloat64(ev.at)
	}
	e.heapifyEvents()
}
