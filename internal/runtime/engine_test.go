package runtime

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// testGraph is an explicit DAG for engine testing.
type testGraph struct {
	specs   []TaskSpec
	preds   [][]int
	succs   [][]int
	initial map[DataID]int // data -> rank
}

func (g *testGraph) NumTasks() int { return len(g.specs) }
func (g *testGraph) Spec(id int, s *TaskSpec) {
	*s = g.specs[id]
	s.ID = id
}
func (g *testGraph) NumPredecessors(id int) int { return len(g.preds[id]) }
func (g *testGraph) Successors(id int, buf []int) []int {
	return append(buf, g.succs[id]...)
}
func (g *testGraph) InitialData(visit func(d DataID, rank int)) {
	for d, r := range g.initial {
		visit(d, r)
	}
}

func newTestGraph(n int) *testGraph {
	return &testGraph{
		specs:   make([]TaskSpec, n),
		preds:   make([][]int, n),
		succs:   make([][]int, n),
		initial: map[DataID]int{},
	}
}

func (g *testGraph) edge(from, to int) {
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

func onePlat(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(hw.SummitNode, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleTask(t *testing.T) {
	g := newTestGraph(1)
	g.initial[1] = 0
	flops := 2.0 * 1024 * 1024 * 1024
	g.specs[0] = TaskSpec{
		Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: flops,
		Inputs: []InputSpec{{Data: 1, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: 1, Bytes: 8 << 20},
	}
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Makespan = H2D(8MiB) + kernel time (input and output are the same
	// tile, staged once).
	wantXfer := hw.V100.H2DTime(8 << 20)
	wantKernel := hw.V100.KernelTime(hw.KindGemm, prec.FP64, flops)
	want := wantXfer + wantKernel
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("makespan %g, want %g", st.Makespan, want)
	}
	if st.BytesH2D != 8<<20 {
		t.Errorf("BytesH2D = %d, want %d", st.BytesH2D, 8<<20)
	}
	if st.Tasks != 1 || st.TotalFlops != flops {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestChainRespectsDependencies(t *testing.T) {
	// 3-task chain on one device, no data: makespan = 3 kernels.
	g := newTestGraph(3)
	for i := 0; i < 3; i++ {
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e9,
			Output: OutputSpec{Data: -1},
		}
	}
	g.edge(0, 1)
	g.edge(1, 2)
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e9)
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("chain makespan %g, want %g", st.Makespan, want)
	}
}

func TestParallelTasksOnTwoDevices(t *testing.T) {
	p, err := NewPlatform(hw.SummitNode, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(2)
	for i := 0; i < 2; i++ {
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: i, Prec: prec.FP64, Flops: 1e9,
			Output: OutputSpec{Data: -1},
		}
	}
	eng := New(p, g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e9)
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("parallel makespan %g, want %g (one kernel)", st.Makespan, want)
	}
}

func TestComputeStreamSerializes(t *testing.T) {
	// Two independent tasks on one device must serialize on the compute
	// stream.
	g := newTestGraph(2)
	for i := 0; i < 2; i++ {
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e9,
			Output: OutputSpec{Data: -1},
		}
	}
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e9)
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("serialized makespan %g, want %g", st.Makespan, want)
	}
}

func TestTransferOverlapsCompute(t *testing.T) {
	// Task B's input transfer should overlap task A's kernel (lookahead
	// pipeline): makespan < serial sum, ≥ max leg.
	g := newTestGraph(2)
	g.initial[7] = 0
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e10, Output: OutputSpec{Data: -1}}
	g.specs[1] = TaskSpec{
		Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e10,
		Inputs: []InputSpec{{Data: 7, WireBytes: 32 << 20}},
		Output: OutputSpec{Data: -1},
	}
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	kernel := hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e10)
	xfer := hw.V100.H2DTime(32 << 20)
	if xfer > kernel {
		t.Fatalf("test setup wrong: transfer %g should be shorter than kernel %g", xfer, kernel)
	}
	want := 2 * kernel // transfer fully hidden
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("overlapped makespan %g, want %g", st.Makespan, want)
	}
}

func TestResidencyAvoidsRetransfer(t *testing.T) {
	// Two tasks reading the same tile on the same device: one transfer.
	g := newTestGraph(2)
	g.initial[3] = 0
	for i := 0; i < 2; i++ {
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e9,
			Inputs: []InputSpec{{Data: 3, WireBytes: 4 << 20}},
			Output: OutputSpec{Data: -1},
		}
	}
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesH2D != 4<<20 {
		t.Errorf("BytesH2D = %d, want one transfer of %d", st.BytesH2D, 4<<20)
	}
}

func TestPublishAndRemoteConsumption(t *testing.T) {
	// Producer on rank 0, consumer on rank 1: publish must move the data
	// D2H, across the network, and H2D on the consumer.
	p, err := NewPlatform(hw.SummitNode, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(2)
	wire := int64(2 << 20)
	g.specs[0] = TaskSpec{
		Kind: hw.KindTrsm, Device: 0, Prec: prec.FP64, Flops: 1e9,
		Output:  OutputSpec{Data: 9, Bytes: 4 << 20},
		Publish: &PublishSpec{WireBytes: wire, RemoteRanks: []int{1}},
	}
	g.specs[1] = TaskSpec{
		Kind: hw.KindGemm, Device: 1, Prec: prec.FP64, Flops: 1e9,
		Inputs: []InputSpec{{Data: 9, WireBytes: wire}},
		Output: OutputSpec{Data: -1},
	}
	g.edge(0, 1)
	eng := New(p, g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesNet != wire {
		t.Errorf("BytesNet = %d, want %d", st.BytesNet, wire)
	}
	if st.BytesD2H != wire {
		t.Errorf("BytesD2H = %d, want %d", st.BytesD2H, wire)
	}
	if st.BytesH2D != wire {
		t.Errorf("BytesH2D = %d, want %d", st.BytesH2D, wire)
	}
	// Makespan must include kernel + D2H + net hop + H2D + kernel.
	k := hw.V100.KernelTime(hw.KindTrsm, prec.FP64, 1e9)
	k2 := hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e9)
	min := k + hw.V100.D2HTime(wire) + hw.SummitNode.NetLat + float64(wire)/hw.SummitNode.NetBw + hw.V100.H2DTime(wire) + k2
	if st.Makespan < min-1e-12 {
		t.Errorf("makespan %g below physical minimum %g", st.Makespan, min)
	}
}

func TestSenderAndReceiverConversions(t *testing.T) {
	g := newTestGraph(2)
	g.specs[0] = TaskSpec{
		Kind: hw.KindTrsm, Device: 0, Prec: prec.FP32, Flops: 1e9,
		Output: OutputSpec{Data: 5, Bytes: 4 << 20},
		Publish: &PublishSpec{
			WireBytes: 2 << 20, ConvertElems: 1 << 20,
			ConvFrom: prec.FP32, ConvTo: prec.FP16,
		},
	}
	g.specs[1] = TaskSpec{
		Kind: hw.KindSyrk, Device: 0, Prec: prec.FP64, Flops: 1e9,
		Inputs: []InputSpec{{Data: 5, WireBytes: 2 << 20, ConvertElems: 1 << 20, ConvFrom: prec.FP16, ConvTo: prec.FP64}},
		Output: OutputSpec{Data: -1},
	}
	g.edge(0, 1)
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.SenderConversions != 1 {
		t.Errorf("SenderConversions = %d, want 1", st.SenderConversions)
	}
	if st.ReceiverConversions != 1 {
		t.Errorf("ReceiverConversions = %d, want 1", st.ReceiverConversions)
	}
}

func TestLRUEvictionAndWriteback(t *testing.T) {
	// Tiny device memory forces eviction; the dirty output must be written
	// back and the input re-fetched.
	node := *hw.SummitNode
	gpu := *hw.V100
	gpu.MemBytes = 10 << 20 // fits one 8 MiB tile plus change
	node.GPU = &gpu
	p, err := NewPlatform(&node, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(3)
	g.initial[1] = 0
	g.initial[2] = 0
	// Task 0 writes tile 1 (dirty). Task 1 reads tile 2 (evicts tile 1 →
	// writeback). Task 2 reads tile 1 again (re-fetch H2D).
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Output: OutputSpec{Data: 1, Bytes: 8 << 20}}
	g.specs[1] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Inputs: []InputSpec{{Data: 2, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: -1}}
	g.specs[2] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Inputs: []InputSpec{{Data: 1, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: -1}}
	g.edge(0, 1)
	g.edge(1, 2)
	eng := New(p, g)
	eng.Lookahead = 1 // keep pins tight so eviction can happen between tasks
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Devices[0].Evictions == 0 {
		t.Error("no evictions under memory pressure")
	}
	if st.Devices[0].Writebacks == 0 || st.BytesD2H == 0 {
		t.Error("dirty eviction did not write back")
	}
	// Tile 1 fetched again: initial output H2D (8 MiB) + tile 2 (8 MiB) +
	// re-fetch (8 MiB) = 24 MiB.
	if st.BytesH2D != 24<<20 {
		t.Errorf("BytesH2D = %d, want %d", st.BytesH2D, 24<<20)
	}
}

func TestNumericBodiesRunInDependencyOrder(t *testing.T) {
	var order [4]int32
	var ctr atomic.Int32
	g := newTestGraph(4)
	for i := 0; i < 4; i++ {
		i := i
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e6,
			Output: OutputSpec{Data: -1},
			Body:   func() { order[i] = ctr.Add(1) },
		}
	}
	// diamond: 0 -> {1,2} -> 3
	g.edge(0, 1)
	g.edge(0, 2)
	g.edge(1, 3)
	g.edge(2, 3)
	eng := New(onePlat(t), g)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !(order[0] < order[1] && order[0] < order[2] && order[3] > order[1] && order[3] > order[2]) {
		t.Errorf("bodies ran out of dependency order: %v", order)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Among simultaneously-ready tasks, higher priority runs first.
	var first atomic.Int32
	g := newTestGraph(2)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e6,
		Priority: 1, Output: OutputSpec{Data: -1},
		Body: func() { first.CompareAndSwap(0, 1) }}
	g.specs[1] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e6,
		Priority: 100, Output: OutputSpec{Data: -1},
		Body: func() { first.CompareAndSwap(0, 2) }}
	eng := New(onePlat(t), g)
	eng.Lookahead = 1
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if first.Load() != 2 {
		t.Errorf("high-priority task did not run first (winner %d)", first.Load())
	}
}

func TestEnergyAccounting(t *testing.T) {
	g := newTestGraph(1)
	flops := 7.8e12 * 0.97 // exactly one second of FP64 on V100 (minus launch)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: flops,
		Output: OutputSpec{Data: -1}}
	eng := New(onePlat(t), g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Power during the run ≈ idle + full FP64 dynamic ≈ TDP.
	if math.Abs(st.AvgPower-hw.V100.TDP) > 1 {
		t.Errorf("average power %g W, want ≈ TDP %g W", st.AvgPower, hw.V100.TDP)
	}
	if st.Energy <= 0 {
		t.Error("no energy recorded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		g := newTestGraph(40)
		g.initial[100] = 0
		for i := 0; i < 40; i++ {
			g.specs[i] = TaskSpec{
				Kind: hw.KindGemm, Device: i % 2, Prec: prec.FP64, Flops: float64(1e8 + i),
				Priority: int64(i % 7),
				Inputs:   []InputSpec{{Data: 100, WireBytes: 1 << 20}},
				Output:   OutputSpec{Data: DataID(200 + i), Bytes: 1 << 20},
			}
			if i >= 2 {
				g.edge(i-2, i)
			}
		}
		p, _ := NewPlatform(hw.SummitNode, 1, 2)
		st, err := New(p, g).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Energy != b.Energy || a.BytesH2D != b.BytesH2D {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMissingInputIsGraphError(t *testing.T) {
	g := newTestGraph(1)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1,
		Inputs: []InputSpec{{Data: 42, WireBytes: 1}},
		Output: OutputSpec{Data: -1}}
	_, err := New(onePlat(t), g).Run()
	var ge *GraphError
	if !errors.As(err, &ge) {
		t.Fatalf("missing input: err = %v, want a *GraphError", err)
	}
	if ge.Task != 0 {
		t.Errorf("GraphError.Task = %d, want 0", ge.Task)
	}
}

func TestInvalidDeviceIsGraphError(t *testing.T) {
	g := newTestGraph(1)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 7, Prec: prec.FP64, Flops: 1,
		Output: OutputSpec{Data: -1}}
	_, err := New(onePlat(t), g).Run()
	var ge *GraphError
	if !errors.As(err, &ge) {
		t.Fatalf("invalid device: err = %v, want a *GraphError", err)
	}
}

func TestTraceIntervals(t *testing.T) {
	g := newTestGraph(2)
	for i := 0; i < 2; i++ {
		g.specs[i] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e9,
			Output: OutputSpec{Data: -1}}
	}
	g.edge(0, 1)
	eng := New(onePlat(t), g)
	eng.Trace = true
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	busy, _ := eng.DeviceTrace(0)
	if len(busy) != 2 {
		t.Fatalf("expected 2 busy intervals, got %d", len(busy))
	}
	if busy[0].End > busy[1].Start+1e-15 {
		t.Error("busy intervals overlap on one compute stream")
	}
	if busy[0].Power != hw.V100.DynPower(prec.FP64) {
		t.Errorf("interval power %g, want %g", busy[0].Power, hw.V100.DynPower(prec.FP64))
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(nil, 1, 1); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewPlatform(hw.SummitNode, 0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := NewPlatform(hw.SummitNode, 1, 7); err == nil {
		t.Error("7 GPUs per Summit rank accepted")
	}
	p, err := NewPlatform(hw.SummitNode, 4, 0)
	if err != nil || p.DevPerRank != 6 || p.NumDevices() != 24 {
		t.Errorf("default GPU count wrong: %+v, %v", p, err)
	}
	if p.RankOfDevice(13) != 2 || p.DeviceOf(2, 1) != 13 {
		t.Error("device/rank mapping wrong")
	}
}

func TestValidateAcceptsGoodGraph(t *testing.T) {
	g := newTestGraph(4)
	for i := range g.specs {
		g.specs[i] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1, Output: OutputSpec{Data: -1}}
	}
	g.edge(0, 1)
	g.edge(0, 2)
	g.edge(1, 3)
	g.edge(2, 3)
	if err := Validate(g); err != nil {
		t.Errorf("valid diamond rejected: %v", err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := newTestGraph(3)
	for i := range g.specs {
		g.specs[i] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1, Output: OutputSpec{Data: -1}}
	}
	g.edge(0, 1)
	g.edge(1, 2)
	g.edge(2, 0)
	if err := Validate(g); err == nil {
		t.Error("cycle not detected")
	}
}

func TestValidateDetectsDegreeMismatch(t *testing.T) {
	g := newTestGraph(2)
	for i := range g.specs {
		g.specs[i] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1, Output: OutputSpec{Data: -1}}
	}
	g.succs[0] = append(g.succs[0], 1) // edge without matching pred entry
	if err := Validate(g); err == nil {
		t.Error("in-degree mismatch not detected")
	}
}

func TestValidateDetectsSelfLoopAndRange(t *testing.T) {
	g := newTestGraph(1)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1, Output: OutputSpec{Data: -1}}
	g.succs[0] = []int{0}
	if err := Validate(g); err == nil {
		t.Error("self loop not detected")
	}
	g.succs[0] = []int{5}
	if err := Validate(g); err == nil {
		t.Error("out-of-range successor not detected")
	}
}

func TestEngineInvariants(t *testing.T) {
	// On any run: per-device busy time ≤ makespan; energy ≥ idle × makespan.
	g := newTestGraph(10)
	g.initial[50] = 0
	for i := 0; i < 10; i++ {
		g.specs[i] = TaskSpec{Kind: hw.KindGemm, Device: i % 2, Prec: prec.FP64,
			Flops:  float64(1e8 * (i + 1)),
			Inputs: []InputSpec{{Data: 50, WireBytes: 1 << 20}},
			Output: OutputSpec{Data: DataID(100 + i), Bytes: 1 << 20}}
		if i > 0 {
			g.edge(i-1, i)
		}
	}
	p, _ := NewPlatform(hw.SummitNode, 1, 2)
	eng := New(p, g)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range st.Devices {
		if d.BusyTime > st.Makespan+1e-12 {
			t.Errorf("device %d busy %g exceeds makespan %g", i, d.BusyTime, st.Makespan)
		}
	}
	if st.Energy < hw.V100.IdleW*st.Makespan*2 {
		t.Errorf("energy %g below idle floor", st.Energy)
	}
	if st.AvgPower < 2*hw.V100.IdleW || st.AvgPower > 2*(hw.V100.TDP+hw.V100.TransferW) {
		t.Errorf("average power %g outside physical range", st.AvgPower)
	}
}
