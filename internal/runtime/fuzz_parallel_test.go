package runtime

import (
	"reflect"
	"sort"
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// FuzzLookahead is the property test of the conservative parallel engine's
// lookahead bound: arbitrary rank partitions (task→device assignments drawn
// from the fuzz bytes) and arbitrary communication latencies (scaled NIC and
// host-link specs) must never let a shard execute an event ahead of its
// cross-rank dependency horizon. The property is asserted observationally —
// the parallel run must reproduce the serial digest, Stats and traced
// schedule exactly, at several worker counts — and internally: the spine
// carries divergence checks that turn any horizon violation into a run
// error ("parallel engine diverged") instead of silent reordering. Trace
// equality is also the merge-order witness: the spine's re-sequenced stream
// must be the stable (at, seq)-sort the serial heap produces.
func FuzzLookahead(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(0), []byte{0x00, 0x81, 0x3c})
	f.Add(uint8(3), uint8(2), uint8(7), []byte{0x12, 0x34, 0x56, 0x78, 0x9a})
	f.Add(uint8(4), uint8(1), uint8(15), []byte("cross-rank-chains"))
	f.Add(uint8(4), uint8(2), uint8(3), []byte{0xff, 0x00, 0xff, 0x00, 0x7e, 0x81, 0x42})

	f.Fuzz(func(t *testing.T, ranksB, gprB, latB uint8, data []byte) {
		ranks := 2 + int(ranksB%3) // 2..4: parallel path needs multiple ranks
		gpr := 1 + int(gprB%2)
		ndev := ranks * gpr

		// Scale the communication latencies and bandwidths: the lookahead
		// bound must be safe for fast and slow interconnects alike.
		node := *hw.SummitNode
		gpu := *node.GPU
		gpu.LinkLatency *= float64(1 + latB%16)
		node.GPU = &gpu
		node.NetLat *= float64(1 + latB%16)
		node.NetBw /= float64(1 + latB/16)

		n := len(data)
		if n > 48 {
			n = 48
		}
		if n == 0 {
			return
		}

		// Each byte decodes one task: low three bits pick the tile read, the
		// next three the tile written (read-after-write and write-after-read
		// chains cross ranks whenever the partition says so), and the whole
		// byte picks the device — the fuzzed rank partition. A first pass
		// legalizes the partition (a read with no prior writer must run on
		// the datum's home rank) and derives each producer's remote consumer
		// set, which becomes its broadcast Publish — the engine refuses
		// cross-rank reads the producer never published.
		const pool = 8
		type fuzzOp struct {
			dev         int
			read, write DataID
			kind        hw.KernelKind
			prec        prec.Precision
			flops       float64
		}
		ops := make([]fuzzOp, n)
		for i := 0; i < n; i++ {
			b := data[i]
			ops[i] = fuzzOp{
				dev: int(b) % ndev, read: DataID(b & 7), write: DataID((b >> 3) & 7),
				kind: hw.KindGemm, prec: prec.FP64, flops: 1e6 * float64(1+b%5),
			}
			if b&0x20 != 0 {
				ops[i].kind, ops[i].prec = hw.KindSyrk, prec.FP32
			}
		}
		lastWriter := map[DataID]int{}
		remote := make([]map[int]bool, n)
		needPub := make([]bool, n)
		rankOf := func(i int) int { return ops[i].dev / gpr }
		for i := range ops {
			if w, ok := lastWriter[ops[i].read]; ok {
				if ops[i].dev != ops[w].dev {
					// A consumer on any other device reads the output from
					// host memory, which only a publish (D2H) provides.
					needPub[w] = true
				}
				if r := rankOf(i); r != rankOf(w) {
					if remote[w] == nil {
						remote[w] = map[int]bool{}
					}
					remote[w][r] = true
				}
			} else {
				// Unwritten datum: pin the reader to the datum's home rank.
				ops[i].dev = int(ops[i].read)%ranks*gpr + ops[i].dev%gpr
			}
			lastWriter[ops[i].write] = i
		}

		build := func() *DTDGraph {
			g := NewDTDGraph()
			for d := 0; d < pool; d++ {
				g.Data(DataID(d), d%ranks)
			}
			for i, o := range ops {
				spec := TaskSpec{Kind: o.kind, Device: o.dev, Prec: o.prec, Flops: o.flops}
				if needPub[i] || len(remote[i]) > 0 {
					var rr []int
					for r := range remote[i] {
						rr = append(rr, r)
					}
					sort.Ints(rr)
					spec.Publish = &PublishSpec{WireBytes: 8192, WirePrec: prec.FP64, RemoteRanks: rr}
				}
				if _, err := g.Insert(spec,
					Access{Data: o.read, Mode: Read, WireBytes: 4096, Prec: prec.FP32},
					Access{Data: o.write, Mode: Write, WireBytes: 8192, Prec: prec.FP64},
				); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			return g
		}

		plat, err := NewPlatform(&node, ranks, gpr)
		if err != nil {
			t.Fatal(err)
		}
		run := func(workers int) (Stats, []ScheduledTask, *Engine) {
			eng := New(plat, build())
			eng.Trace = true
			eng.Audit = true
			eng.EngineWorkers = workers
			st, err := eng.Run()
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return st, eng.ScheduleTrace(), eng
		}

		refStats, refTrace, _ := run(0)
		for _, w := range []int{1, 2, ranks + 1} {
			st, trace, _ := run(w)
			if st.ScheduleDigest != refStats.ScheduleDigest {
				t.Errorf("workers=%d: digest %#016x, serial %#016x", w, st.ScheduleDigest, refStats.ScheduleDigest)
			}
			if !reflect.DeepEqual(st, refStats) {
				t.Errorf("workers=%d: stats diverged\nserial: %+v\npar:    %+v", w, refStats, st)
			}
			if !reflect.DeepEqual(trace, refTrace) {
				t.Errorf("workers=%d: merged schedule is not the serial stream (%d vs %d entries)",
					w, len(trace), len(refTrace))
			}
		}
	})
}
