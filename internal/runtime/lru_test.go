package runtime

import (
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

func newLRUDevice(capacity int64) *device {
	spec := *hw.V100
	spec.MemBytes = capacity
	return newDevice(0, 0, &spec, false, 0, &heapOrder{fifo: true})
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	d := newLRUDevice(30)
	var sink evictSink
	d.insert(1, 10, prec.FP64, true, 0, &sink)
	d.insert(2, 10, prec.FP64, true, 0, &sink)
	d.insert(3, 10, prec.FP64, true, 0, &sink)
	d.touch(1) // 2 becomes LRU
	d.insert(4, 10, prec.FP64, true, 0, &sink)
	if d.resident[2] != nil {
		t.Error("LRU entry 2 not evicted")
	}
	for _, id := range []DataID{1, 3, 4} {
		if d.resident[id] == nil {
			t.Errorf("entry %d wrongly evicted", id)
		}
	}
	if d.used != 30 {
		t.Errorf("used = %d, want 30", d.used)
	}
	if len(sink.writebacks) != 0 {
		t.Error("clean eviction produced writebacks")
	}
}

func TestLRUDirtyEvictionWritesBack(t *testing.T) {
	d := newLRUDevice(20)
	var sink evictSink
	d.insert(1, 10, prec.FP64, false, 0, &sink) // no host copy: dirty
	d.insert(2, 10, prec.FP64, true, 0, &sink)
	d.insert(3, 10, prec.FP64, true, 0, &sink) // evicts 1
	if len(sink.writebacks) != 1 || sink.writebacks[0].data != 1 {
		t.Fatalf("expected writeback of 1, got %+v", sink.writebacks)
	}
	if d.stats.Writebacks != 1 || d.stats.Evictions != 1 {
		t.Errorf("stats: %+v", d.stats)
	}
}

func TestLRUPinnedEntriesSurvive(t *testing.T) {
	d := newLRUDevice(20)
	var sink evictSink
	d.insert(1, 10, prec.FP64, true, 0, &sink)
	d.pin(1)
	d.insert(2, 10, prec.FP64, true, 0, &sink)
	d.insert(3, 10, prec.FP64, true, 0, &sink) // must evict 2, not pinned 1
	if d.resident[1] == nil {
		t.Fatal("pinned entry evicted")
	}
	if d.resident[2] != nil {
		t.Error("unpinned LRU entry 2 survived over-capacity")
	}
	d.unpin(1)
	d.insert(4, 10, prec.FP64, true, 0, &sink)
	if d.resident[1] != nil {
		t.Error("entry 1 not evictable after unpin")
	}
}

func TestLRUAllPinnedOvercommits(t *testing.T) {
	d := newLRUDevice(15)
	var sink evictSink
	d.insert(1, 10, prec.FP64, true, 0, &sink)
	d.pin(1)
	d.insert(2, 10, prec.FP64, true, 0, &sink)
	d.pin(2)
	// Over capacity with everything pinned: no eviction, no panic.
	if d.resident[1] == nil || d.resident[2] == nil {
		t.Error("pinned entries evicted")
	}
	if d.used != 20 {
		t.Errorf("used = %d, want overcommitted 20", d.used)
	}
}

func TestLRUReinsertUpdatesSize(t *testing.T) {
	d := newLRUDevice(100)
	var sink evictSink
	d.insert(1, 10, prec.FP64, false, 0, &sink)
	d.insert(1, 25, prec.FP64, true, 0, &sink) // growth + host copy upgrade
	if d.used != 25 {
		t.Errorf("used = %d, want 25", d.used)
	}
	e := d.resident[1]
	if !e.hostCopy {
		t.Error("host copy flag not upgraded")
	}
	d.insert(1, 5, prec.FP64, false, 0, &sink) // shrink must not reduce accounting
	if d.used != 25 {
		t.Errorf("used = %d after smaller reinsert, want 25", d.used)
	}
}

func TestLRUListIntegrity(t *testing.T) {
	// Stress the intrusive list with a mixed op sequence, then verify the
	// list matches the map exactly.
	d := newLRUDevice(1 << 40)
	var sink evictSink
	for i := 0; i < 100; i++ {
		d.insert(DataID(i%17), int64(i%7+1), prec.FP64, i%2 == 0, 0, &sink)
		d.touch(DataID((i * 5) % 17))
	}
	seen := map[DataID]bool{}
	count := 0
	for e := d.lruHead; e != nil; e = e.next {
		if seen[e.data] {
			t.Fatalf("duplicate %d in LRU list", e.data)
		}
		seen[e.data] = true
		count++
		if e.next != nil && e.next.prev != e {
			t.Fatal("broken back-link")
		}
	}
	if count != len(d.resident) {
		t.Fatalf("list has %d entries, map has %d", count, len(d.resident))
	}
	for id := range d.resident {
		if !seen[id] {
			t.Fatalf("map entry %d missing from list", id)
		}
	}
}
