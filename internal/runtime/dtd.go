package runtime

import (
	"fmt"
	"sort"

	"geompc/internal/prec"
)

// AccessMode describes how a DTD task touches a datum, following the
// Dynamic Task Discovery model (§III-B): dependencies are inferred from the
// sequential insertion order and the declared access modes, exactly like
// PaRSEC's DTD or StarPU's implicit data dependencies.
type AccessMode int

const (
	// Read declares a read-only access: the task depends on the datum's
	// last writer and can run concurrently with other readers.
	Read AccessMode = iota
	// Write declares an exclusive read-write access: the task depends on
	// the last writer and on every reader since.
	Write
)

// DTDTask is one dynamically inserted task.
type dtdTask struct {
	spec  TaskSpec
	preds []int
	succs []int
}

// DTDGraph builds a task system by sequential insertion, inferring the
// dependence edges (read-after-write, write-after-read, write-after-write)
// from data access annotations. It implements Graph, so the same engine
// executes DTD- and PTG-defined algorithms interchangeably — the property
// the paper leans on when discussing PaRSEC's DSL family.
//
// Insertion is not thread-safe; build the graph from one goroutine, then
// hand it to an Engine.
type DTDGraph struct {
	tasks []*dtdTask
	// lastWriter and readersSince track, per datum, the versioning state
	// the dependence inference needs.
	lastWriter   map[DataID]int
	readersSince map[DataID][]int
	initial      map[DataID]int
	sealed       bool
}

// NewDTDGraph returns an empty DTD builder.
func NewDTDGraph() *DTDGraph {
	return &DTDGraph{
		lastWriter:   make(map[DataID]int),
		readersSince: make(map[DataID][]int),
		initial:      make(map[DataID]int),
	}
}

// Data registers a datum as host-resident at the given rank before
// execution starts (the matrix-generation phase).
func (g *DTDGraph) Data(d DataID, rank int) {
	g.initial[d] = rank
}

// Access pairs a datum with its mode for task insertion.
type Access struct {
	Data DataID
	Mode AccessMode
	// WireBytes is the transfer size of the datum when it must move for
	// this task (for Read accesses); Bytes is the resident footprint (for
	// Write accesses).
	WireBytes int64
	// Prec labels the element format of the bytes above — the wire format
	// for Read accesses, the storage format for Write accesses — mirroring
	// InputSpec.WirePrec / OutputSpec.Prec.
	Prec prec.Precision
	// Receiver-side conversion, as in InputSpec.
	ConvertElems     int
	ConvFrom, ConvTo prec.Precision
}

// Insert appends a task whose dependencies follow from the declared
// accesses. The spec's Inputs/Output fields are derived from the accesses;
// Kind, Prec, Flops, Device, Priority, Publish and Body are taken from
// spec. It returns the task id.
func (g *DTDGraph) Insert(spec TaskSpec, accesses ...Access) (int, error) {
	if g.sealed {
		return 0, fmt.Errorf("runtime: DTD graph already executing")
	}
	id := len(g.tasks)
	t := &dtdTask{spec: spec}
	t.spec.ID = id
	t.spec.Inputs = nil
	t.spec.Output = OutputSpec{Data: -1}

	depSet := make(map[int]struct{})
	addDep := func(p int) {
		if p >= 0 && p != id {
			depSet[p] = struct{}{}
		}
	}

	wrote := false
	for _, a := range accesses {
		switch a.Mode {
		case Read:
			in := InputSpec{Data: a.Data, WireBytes: a.WireBytes, WirePrec: a.Prec}
			if a.ConvertElems > 0 {
				in.ConvertElems = a.ConvertElems
				in.ConvFrom, in.ConvTo = a.ConvFrom, a.ConvTo
			}
			t.spec.Inputs = append(t.spec.Inputs, in)
			if w, ok := g.lastWriter[a.Data]; ok {
				addDep(w)
			}
			g.readersSince[a.Data] = append(g.readersSince[a.Data], id)
		case Write:
			if wrote {
				return 0, fmt.Errorf("runtime: task %d declares multiple Write accesses", id)
			}
			wrote = true
			t.spec.Output = OutputSpec{Data: a.Data, Bytes: a.WireBytes, Prec: a.Prec}
			if w, ok := g.lastWriter[a.Data]; ok {
				addDep(w)
			}
			for _, r := range g.readersSince[a.Data] {
				addDep(r)
			}
			g.lastWriter[a.Data] = id
			g.readersSince[a.Data] = g.readersSince[a.Data][:0]
		default:
			return 0, fmt.Errorf("runtime: task %d: unknown access mode %d", id, a.Mode)
		}
	}

	// Materialize the dependency set in sorted order: succs drive the
	// ready-queue release order, so map iteration here would leak Go's map
	// seed into the schedule digest.
	t.preds = make([]int, 0, len(depSet))
	for p := range depSet {
		t.preds = append(t.preds, p)
	}
	sort.Ints(t.preds)
	for _, p := range t.preds {
		g.tasks[p].succs = append(g.tasks[p].succs, id)
	}
	g.tasks = append(g.tasks, t)
	return id, nil
}

// NumTasks implements Graph.
func (g *DTDGraph) NumTasks() int { return len(g.tasks) }

// Spec implements Graph. It is a pure read: sealing against further Inserts
// happens in Seal (called once by the engine at Run start), so concurrent
// Spec calls from parallel-mode rank shards are race-free.
func (g *DTDGraph) Spec(id int, s *TaskSpec) {
	*s = g.tasks[id].spec
}

// Seal marks the graph as executing: further Inserts fail. The engine calls
// this at the start of every Run.
func (g *DTDGraph) Seal() { g.sealed = true }

// ShardView implements ShardableGraph. The built graph is immutable once
// sealed and every accessor is a pure read, so all rank shards can share the
// receiver directly.
func (g *DTDGraph) ShardView() Graph { return g }

// NumPredecessors implements Graph.
func (g *DTDGraph) NumPredecessors(id int) int { return len(g.tasks[id].preds) }

// Successors implements Graph.
func (g *DTDGraph) Successors(id int, buf []int) []int {
	return append(buf, g.tasks[id].succs...) //geompc:nolint hotalloc appends into the engine's reused successor buffer; grows only to steady state
}

// InitialData implements Graph.
func (g *DTDGraph) InitialData(visit func(d DataID, rank int)) {
	// Visit in DataID order: the engine seeds host availability and
	// residency from this walk, and callbacks must not observe Go's map
	// iteration order.
	ids := make([]DataID, 0, len(g.initial))
	for d := range g.initial {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, d := range ids {
		visit(d, g.initial[d])
	}
}

var _ Graph = (*DTDGraph)(nil)
