package runtime

import (
	"fmt"
	"math"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// ScheduledTask records one task's placement in the simulated schedule
// (recorded only when Trace is enabled).
type ScheduledTask struct {
	ID         int
	Kind       hw.KernelKind
	Device     int
	Prec       prec.Precision
	Start, End float64
	// Recovery marks work issued by the fault-recovery path: lineage
	// replays reconstructing lost tiles, and transient-fault retries.
	Recovery bool
}

// Stats aggregates a run.
type Stats struct {
	// Makespan is the virtual time from start to the last task completion.
	Makespan float64
	// TotalFlops across all tasks.
	TotalFlops float64
	// Performance in flop/s (TotalFlops / Makespan).
	Flops float64
	// Data motion totals.
	BytesH2D, BytesD2H, BytesNet int64
	// Conversion counts: sender-side (STC) and receiver-side (TTC).
	SenderConversions, ReceiverConversions int
	// Energy in joules: dynamic compute + transfer + idle over makespan,
	// summed over all devices.
	Energy float64
	// AvgPower = Energy / Makespan.
	AvgPower float64
	// Tasks executed.
	Tasks int
	// ScheduleDigest is an FNV-1a hash over every committed task's
	// (kind, device, start, end, bytes) record. Equal digests prove two
	// runs produced bit-identical schedules — across GOMAXPROCS settings
	// and across the PTG and DTD front-ends (task ids are not hashed
	// because the front-ends number tasks differently).
	ScheduleDigest uint64
	// Fault/recovery accounting — non-zero only when a FaultInjector armed
	// the run (see Engine.Inject).
	DeviceFailures  int   // devices lost to FaultKill
	TransientFaults int   // FaultTransient events delivered
	RetriedTasks    int   // tasks re-executed in place after a transient fault
	ReplayedTasks   int   // lineage re-executions reconstructing lost tiles
	RecoveryBytes   int64 // host-link bytes staged by lineage replays
	// Per-device aggregates.
	Devices []DeviceStats
}

func (e *Engine) finalizeStats() {
	var makespan float64
	for _, d := range e.devices {
		cf := d.computeFree
		if d.deadAt >= 0 && cf > d.deadAt {
			// Work the dead device had accepted past its failure was
			// aborted and re-ran elsewhere; only survivors bound the run.
			cf = d.deadAt
		}
		if cf > makespan {
			makespan = cf
		}
	}
	e.stats.Makespan = makespan
	if makespan > 0 {
		e.stats.Flops = e.stats.TotalFlops / makespan
	}
	var energy float64
	for _, d := range e.devices {
		energy += d.stats.DynEnergy + d.spec.IdleW*d.idleSpan(makespan)
		e.stats.BytesH2D += d.stats.BytesH2D
		e.stats.BytesD2H += d.stats.BytesD2H
		e.stats.Devices = append(e.stats.Devices, d.stats)
	}
	e.stats.Energy = energy
	if makespan > 0 {
		e.stats.AvgPower = energy / makespan
	}
	e.stats.ScheduleDigest = e.digest.Sum()
	e.publishMetrics(makespan)
}

// publishMetrics pours the run's aggregates into the metrics registry.
func (e *Engine) publishMetrics(makespan float64) {
	m := e.metrics
	m.Counter("engine/tasks").Add(int64(e.stats.Tasks))
	m.Counter("engine/conversions/stc").Add(int64(e.stats.SenderConversions))
	m.Counter("engine/conversions/ttc").Add(int64(e.stats.ReceiverConversions))
	m.Gauge("engine/makespan_seconds").Set(makespan)
	m.Gauge("engine/energy_joules").Set(e.stats.Energy)
	m.Counter("engine/sched/policy/" + e.policy.Name()).Add(1)
	m.Counter("engine/comm/bcast/" + e.topo.Name()).Add(1)
	for p := prec.Precision(0); int(p) < prec.Count; p++ {
		if v := e.bytesH2D[p]; v > 0 {
			m.Counter("engine/bytes_h2d/" + p.String()).Add(v)
		}
		if v := e.bytesD2H[p]; v > 0 {
			m.Counter("engine/bytes_d2h/" + p.String()).Add(v)
		}
		if v := e.bytesNet[p]; v > 0 {
			m.Counter("engine/bytes_net/" + p.String()).Add(v)
		}
	}
	var hits, misses int64
	var evictions, writebacks int
	for _, d := range e.devices {
		hits += d.stats.LRUHits
		misses += d.stats.LRUMisses
		evictions += d.stats.Evictions
		writebacks += d.stats.Writebacks
		pfx := fmt.Sprintf("engine/dev%d/", d.id)
		m.Gauge(pfx + "queue_depth_max").Set(float64(d.maxReady))
		m.Gauge(pfx + "peak_resident_bytes").Set(float64(d.stats.PeakResident))
		m.Gauge(pfx + "idle_compute_seconds").Set(math.Max(0, makespan-d.stats.BusyTime))
		m.Gauge(pfx + "idle_h2d_seconds").Set(math.Max(0, makespan-d.h2d.Busy()))
		m.Gauge(pfx + "idle_d2h_seconds").Set(math.Max(0, makespan-d.d2h.Busy()))
		m.Gauge(pfx + "link/h2d_busy_seconds").Set(d.h2d.Busy())
		m.Gauge(pfx + "link/d2h_busy_seconds").Set(d.d2h.Busy())
	}
	for r, nic := range e.nics {
		m.Gauge(fmt.Sprintf("engine/rank%d/nic_busy_seconds", r)).Set(nic.Busy())
	}
	m.Counter("engine/lru/hits").Add(hits)
	m.Counter("engine/lru/misses").Add(misses)
	m.Counter("engine/lru/evictions").Add(int64(evictions))
	m.Counter("engine/lru/writebacks").Add(int64(writebacks))
	if e.armed {
		m.Counter("engine/faults/device_failures").Add(int64(e.stats.DeviceFailures))
		m.Counter("engine/faults/transient").Add(int64(e.stats.TransientFaults))
		m.Counter("engine/recovery/retried_tasks").Add(int64(e.stats.RetriedTasks))
		m.Counter("engine/recovery/replayed_tasks").Add(int64(e.stats.ReplayedTasks))
		m.Counter("engine/recovery/bytes").Add(e.stats.RecoveryBytes)
	}
}

// AuditViolations returns the invariant violations collected during an
// audited run (nil when clean or when Audit was off).
func (e *Engine) AuditViolations() []string { return e.auditViol }

// DeviceTrace returns device i's traced compute-stream intervals (kernels
// and datatype conversions, each carrying its dynamic power draw) and
// host-link transfer intervals (H2D staging, D2H publishes and writebacks),
// recorded during a Trace-enabled run. Slices are rebuilt views; the
// underlying intervals stay valid until the next Run.
func (e *Engine) DeviceTrace(i int) (busy, xfer []Interval) {
	d := e.devices[i]
	busy = make([]Interval, 0, len(d.busyIntervals)+len(d.convIntervals))
	busy = append(append(busy, d.busyIntervals...), d.convIntervals...)
	h2d, d2h := d.h2d.Intervals(), d.d2h.Intervals()
	xfer = make([]Interval, 0, len(h2d)+len(d2h))
	xfer = append(append(xfer, h2d...), d2h...)
	return busy, xfer
}

// StreamIntervals exposes device i's per-stream traces individually:
// kernel execution, datatype conversions (both on the compute stream), and
// the H2D/D2H host-link directions. Valid until the next Run.
func (e *Engine) StreamIntervals(i int) (kernel, conv, h2d, d2h []Interval) {
	d := e.devices[i]
	return d.busyIntervals, d.convIntervals, d.h2d.Intervals(), d.d2h.Intervals()
}

// NICIntervals returns the traced send-side NIC occupancy of a rank's
// broadcasts (first hop per publish). Nil when tracing was off.
func (e *Engine) NICIntervals(rank int) []Interval {
	if !e.Trace || e.nics == nil {
		return nil
	}
	return e.nics[rank].Intervals()
}

// ScheduleTrace returns the ordered task placements recorded during a
// Trace-enabled run (commit order; sort by Start for a timeline).
func (e *Engine) ScheduleTrace() []ScheduledTask { return e.schedule }
