package runtime

import "geompc/internal/sched"

// This file holds the engine's two hand-rolled heaps: the global
// completion-event heap and the per-device ready queue. Both avoid
// container/heap so pushing never boxes through an interface — the seed
// allocated one escape per event push and one per flight record.

// event is a committed task's completion notice in virtual time.
type event struct {
	at     float64
	seq    int64
	spec   *TaskSpec
	result chan struct{} // non-nil when a numeric body runs; closed at finish
	// start is the compute-stream start of the task (retry cost basis).
	start float64
	// fault, when non-nil, makes this a fault-injection event (spec is nil).
	fault *FaultEvent
	// replay marks a recovery re-execution: complete() releases no
	// successors and counts it separately.
	replay bool
	// cross marks a completion whose processing sends cross-rank messages
	// (remote publish or remote successors). Only set in parallel mode; the
	// serial engine leaves it false. See parallel.go (frontier computation).
	cross bool
}

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEvent sifts a completion event into the heap.
//
//geompc:hot
func (e *Engine) pushEvent(ev event) {
	e.events = append(e.events, ev)
	h := e.events
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !eventBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// popEvent removes the earliest completion event.
//
//geompc:hot
func (e *Engine) popEvent() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDownEvent(h, 0)
	e.events = h
	return top
}

func siftDownEvent(h []event, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && eventBefore(&h[l], &h[m]) {
			m = l
		}
		if r < n && eventBefore(&h[r], &h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapifyEvents restores the heap invariant after the recovery path edited
// the slice in place (removing a dead device's completions, or retiming a
// retried task). O(n), and only ever runs on a fault — never on the hot
// fault-free path.
func (e *Engine) heapifyEvents() {
	for i := len(e.events)/2 - 1; i >= 0; i-- {
		siftDownEvent(e.events, i)
	}
}

// heapOrder is the ready-queue comparator every device's taskHeap shares: it
// routes comparisons through the run's sched.Policy. The FIFO fast path
// inlines the historical descending-priority/ascending-id order so the
// default policy pays no interface call per sift step.
type heapOrder struct {
	pol  sched.Policy
	cp   []int64 // per-task critical-path lengths; nil unless requested
	fifo bool
}

func (o *heapOrder) key(t *TaskSpec) sched.Key {
	k := sched.Key{ID: t.ID, Priority: t.Priority}
	if o.cp != nil && t.ID < len(o.cp) {
		k.CP = o.cp[t.ID]
	}
	return k
}

// before is the comparator every sift step routes through.
//
//geompc:hot
func (o *heapOrder) before(a, b *TaskSpec) bool {
	if o.fifo {
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return a.ID < b.ID
	}
	return o.pol.Before(o.key(a), o.key(b))
}

// taskHeap is one device's ready queue, ordered by the run's policy (a
// total order — ties break by id — which keeps the simulation
// deterministic).
type taskHeap struct {
	ord   *heapOrder
	items []*TaskSpec
}

func (h *taskHeap) Len() int { return len(h.items) }

// push sifts a ready task into the device's queue.
//
//geompc:hot
func (h *taskHeap) push(t *TaskSpec) {
	h.items = append(h.items, t)
	s := h.items
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.ord.before(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes the policy-first ready task.
//
//geompc:hot
func (h *taskHeap) pop() *TaskSpec {
	s := h.items
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.ord.before(s[l], s[m]) {
			m = l
		}
		if r < n && h.ord.before(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	h.items = s
	return top
}
