package runtime

import (
	"fmt"

	"geompc/internal/comm"
	"geompc/internal/hw"
	"geompc/internal/prec"
)

// Platform is the machine a run executes on: `Ranks` processes, each owning
// `DevPerRank` identical GPUs of the node's generation, connected by the
// node's network.
type Platform struct {
	Node       *hw.NodeSpec
	Ranks      int
	DevPerRank int
}

// NewPlatform builds a platform of `ranks` processes with `devPerRank` GPUs
// each. devPerRank defaults to the node's GPU count when 0.
func NewPlatform(node *hw.NodeSpec, ranks, devPerRank int) (*Platform, error) {
	if node == nil {
		return nil, fmt.Errorf("runtime: nil node spec")
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("runtime: invalid rank count %d", ranks)
	}
	if devPerRank == 0 {
		devPerRank = node.GPUs
	}
	if devPerRank < 0 || devPerRank > node.GPUs {
		return nil, fmt.Errorf("runtime: %d GPUs per rank exceeds node's %d", devPerRank, node.GPUs)
	}
	return &Platform{Node: node, Ranks: ranks, DevPerRank: devPerRank}, nil
}

// NumDevices returns the total GPU count.
func (p *Platform) NumDevices() int { return p.Ranks * p.DevPerRank }

// RankOfDevice returns the rank owning global device index d.
func (p *Platform) RankOfDevice(d int) int { return d / p.DevPerRank }

// DeviceOf returns the global device index of local device l on rank r.
func (p *Platform) DeviceOf(rank, local int) int { return rank*p.DevPerRank + local }

// device is the simulated per-GPU state.
type device struct {
	id   int
	rank int
	spec *hw.GPUSpec

	computeFree float64 // next instant the compute stream is free

	// Host-link directions (and the intra-node peer lane) as first-class
	// comm.Links: each carries its own free time, cumulative busy time and
	// traced intervals. peer is constructed for symmetry — the Cholesky
	// front-ends route all tile exchange through host staging, so it stays
	// idle until a D2D path exists.
	h2d, d2h, peer *comm.Link

	committed int  // tasks accepted into the stream pipeline, not yet done
	maxReady  int  // deepest the ready queue ever got (queue-depth metric)
	dirty     bool // queued for a pipeline refill in the current completion

	// Residency index: residentArr (dense, bound from DataBounder) or
	// resident (map fallback). The dense form turns every touch/pin/unpin
	// into an array index — the phantom scale path does several per task.
	resident    map[DataID]*residentEntry
	residentArr []*residentEntry
	nResident   int
	// lruHead/lruTail form an intrusive recency list: head = most recently
	// used, tail = eviction candidate. All operations are O(1).
	lruHead, lruTail *residentEntry
	used             int64

	ready *taskHeap

	// entryFree recycles residentEntry records across evict/insert cycles;
	// LRU churn on the scale path otherwise allocates one entry per miss.
	entryFree []*residentEntry

	// Fault state (armed runs only). deadAt is the virtual time this device
	// failed, -1 while alive; slows lists injected host-link degradation
	// windows.
	deadAt float64
	slows  []slowWindow

	stats DeviceStats

	// tracing (optional): one interval slice per compute stream; the
	// host-link streams trace inside their comm.Links. The power carried
	// by each interval times its duration is exactly the dynamic energy the
	// engine accrued for that activity, so ∑ interval·watts + idle·makespan
	// reconstructs Stats.Energy bit-for-bit (the auditor checks this).
	trace         bool
	busyIntervals []Interval // compute stream: kernel execution
	convIntervals []Interval // compute stream: datatype conversions (STC+TTC)
}

type residentEntry struct {
	data       DataID
	bytes      int64
	prec       prec.Precision // wire/storage format of the resident copy
	pins       int
	hostCopy   bool // a host copy exists; eviction needs no writeback
	prev, next *residentEntry
}

// DeviceStats aggregates one device's activity over a run.
type DeviceStats struct {
	BusyTime       float64 // compute-stream occupancy, seconds
	TransferTime   float64 // host-link busy time (max of H2D/D2H), seconds
	Flops          float64
	BytesH2D       int64
	BytesD2H       int64
	Evictions      int
	Writebacks     int
	LRUHits        int64   // staged tile already resident (no transfer)
	LRUMisses      int64   // staged tile absent (transfer or fresh allocation)
	DynEnergy      float64 // joules above idle
	PeakResident   int64
	ConvertKernels int
}

// Interval is a traced activity window. It is comm's Interval type: device
// streams and links share one trace currency.
type Interval = comm.Interval

// slowWindow is an injected host-link degradation: transfers starting in
// [from, to) take factor times longer.
type slowWindow struct {
	from, to, factor float64
}

// slowFactor returns the transfer-duration multiplier in effect for a
// transfer starting at the given virtual time.
func (d *device) slowFactor(start float64) float64 {
	for _, w := range d.slows {
		if start >= w.from && start < w.to {
			return w.factor
		}
	}
	return 1
}

// idleSpan is how long this device draws idle power during a run of the
// given makespan: a failed device stops drawing power when it dies.
func (d *device) idleSpan(makespan float64) float64 {
	if d.deadAt >= 0 && d.deadAt < makespan {
		return d.deadAt
	}
	return makespan
}

func newDevice(id, rank int, spec *hw.GPUSpec, trace bool, dataBound int, ord *heapOrder) *device {
	d := &device{
		id: id, rank: rank, spec: spec,
		ready:  &taskHeap{ord: ord},
		trace:  trace,
		deadAt: -1,
		h2d:    comm.NewLink(fmt.Sprintf("dev%d/h2d", id), spec.H2DLink(), trace),
		d2h:    comm.NewLink(fmt.Sprintf("dev%d/d2h", id), spec.D2HLink(), trace),
		peer:   comm.NewLink(fmt.Sprintf("dev%d/peer", id), spec.PeerLink(), trace),
	}
	if dataBound > 0 {
		d.residentArr = make([]*residentEntry, dataBound)
	} else {
		d.resident = make(map[DataID]*residentEntry)
	}
	return d
}

func (d *device) entry(id DataID) *residentEntry {
	if d.residentArr != nil {
		return d.residentArr[id]
	}
	return d.resident[id]
}

func (d *device) setEntry(id DataID, e *residentEntry) {
	if d.residentArr != nil {
		d.residentArr[id] = e
	} else {
		d.resident[id] = e
	}
	d.nResident++
}

func (d *device) delEntry(id DataID) {
	if d.residentArr != nil {
		d.residentArr[id] = nil
	} else {
		delete(d.resident, id)
	}
	d.nResident--
}

// lruUnlink removes e from the recency list.
func (d *device) lruUnlink(e *residentEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		d.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		d.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruFront pushes e to the most-recently-used end.
func (d *device) lruFront(e *residentEntry) {
	e.prev, e.next = nil, d.lruHead
	if d.lruHead != nil {
		d.lruHead.prev = e
	}
	d.lruHead = e
	if d.lruTail == nil {
		d.lruTail = e
	}
}

func (d *device) touch(id DataID) *residentEntry {
	e := d.entry(id)
	if e != nil {
		d.lruUnlink(e)
		d.lruFront(e)
	}
	return e
}

// insert adds a resident copy, evicting LRU entries as needed. It returns
// the time at which required writebacks complete (0 when none), so callers
// can order dependent transfers, and records eviction statistics.
func (d *device) insert(id DataID, bytes int64, p prec.Precision, hostCopy bool, now float64, ev *evictSink) {
	if e := d.entry(id); e != nil {
		d.lruUnlink(e)
		d.lruFront(e)
		if bytes > e.bytes {
			d.used += bytes - e.bytes
			e.bytes = bytes
		}
		e.prec = p
		e.hostCopy = e.hostCopy || hostCopy
		return
	}
	// Make room first so the new entry can never evict itself; if every
	// resident tile is pinned the device over-commits instead.
	d.evictTo(d.spec.MemBytes-bytes, now, ev)
	var e *residentEntry
	if n := len(d.entryFree); n > 0 {
		e = d.entryFree[n-1]
		d.entryFree = d.entryFree[:n-1]
		*e = residentEntry{data: id, bytes: bytes, prec: p, hostCopy: hostCopy}
	} else {
		e = &residentEntry{data: id, bytes: bytes, prec: p, hostCopy: hostCopy} //geompc:nolint hotalloc freelist miss: one entry per distinct resident tile, recycled on eviction
	}
	d.setEntry(id, e)
	d.lruFront(e)
	d.used += bytes
	if d.used > d.stats.PeakResident {
		d.stats.PeakResident = d.used
	}
}

// evictSink receives the tiles that must be written back to host during
// eviction; the engine turns them into D2H transfers and host copies.
type evictSink struct {
	writebacks []evicted
}

type evicted struct {
	data  DataID
	bytes int64
	prec  prec.Precision
}

func (d *device) evictTo(capacity int64, now float64, ev *evictSink) {
	_ = now
	e := d.lruTail
	for d.used > capacity && e != nil {
		prev := e.prev
		if e.pins > 0 {
			// Pinned entries stay; if everything reachable is pinned the
			// device over-commits rather than deadlocking (bounded
			// lookahead keeps the pinned set to a handful of tiles).
			e = prev
			continue
		}
		if !e.hostCopy && ev != nil {
			ev.writebacks = append(ev.writebacks, evicted{e.data, e.bytes, e.prec})
			d.stats.Writebacks++
		}
		d.used -= e.bytes
		d.lruUnlink(e)
		d.delEntry(e.data)
		d.entryFree = append(d.entryFree, e)
		d.stats.Evictions++
		e = prev
	}
}

func (d *device) pin(id DataID) {
	if e := d.entry(id); e != nil {
		e.pins++
	}
}

func (d *device) unpin(id DataID) {
	if e := d.entry(id); e != nil && e.pins > 0 {
		e.pins--
	}
}
