package destest

import (
	"math"
	"reflect"
	gort "runtime"
	"strings"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/comm"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// workerCounts returns the worker axis of the grid for a platform with the
// given rank count: 1 (degenerate pool), 2, the host's core count, and a
// value above the rank count (clamped internally — must still be exact).
func workerCounts(ranks int) []int {
	return []int{1, 2, gort.NumCPU(), ranks + 5}
}

// policies and topologies are the PR 4 golden grid axes; nil entries are the
// engine defaults (FIFO, binomial).
var policies = []struct {
	name string
	pol  sched.Policy
}{
	{"fifo", nil},
	{"locality", sched.Locality{}},
	{"cp", sched.CriticalPath{}},
}

var topologies = []struct {
	name string
	topo comm.Topology
}{
	{"binomial", nil},
	{"flat", comm.Flat{}},
	{"chain", comm.Chain{}},
}

// phantomConfig builds a multi-rank phantom (cost-only) scenario matching
// the golden-digest suite's shapes: SummitNode, uniform FP16x32 off-diagonal
// precision, Auto conversion.
func phantomConfig(t *testing.T, n, ranks, gpr int) cholesky.Config {
	t.Helper()
	d, err := tile.NewDesc(n, 2048, 1, ranks)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, gpr)
	if err != nil {
		t.Fatal(err)
	}
	maps := precmap.New(precmap.Uniform(d.NT, prec.FP16x32), 1e-4)
	return cholesky.Config{Desc: d, Maps: maps, Platform: plat, Strategy: cholesky.Auto}
}

// numericConfig builds one multi-rank numeric factorization: a geospatial
// SqExp covariance matrix tiled at ts=16 with precisions picked per tile by
// precmap.FromMatrix, mirroring the chaos suite's builder. Each call returns
// an independent matrix so runs never share tile storage.
func numericConfig(t *testing.T, nt, ranks, gpr int) cholesky.Config {
	t.Helper()
	ts := 16
	n := nt * ts
	rng := stats.NewRNG(21, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	pg, qg := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, ts, pg, qg)
	if err != nil {
		t.Fatal(err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
	})
	maps := precmap.New(precmap.FromMatrix(mat, 1e-6, prec.CholeskySet), 1e-6)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, gpr)
	if err != nil {
		t.Fatal(err)
	}
	return cholesky.Config{Desc: d, Maps: maps, Platform: plat, Matrix: mat, Strategy: cholesky.Auto}
}

// desGauge reports whether a metric is one of the parallel engine's own
// diagnostics — the only names documented as outside the digest contract.
func desGauge(name string) bool {
	return strings.HasPrefix(name, "engine/des/") ||
		(strings.HasPrefix(name, "engine/rank") && strings.Contains(name, "/des_"))
}

// filteredMetrics snapshots a registry with the DES diagnostics removed.
func filteredMetrics(r *obs.Registry) []obs.Metric {
	out := []obs.Metric{}
	for _, m := range r.Snapshot() {
		if !desGauge(m.Name) {
			out = append(out, m)
		}
	}
	return out
}

// assertEqualRuns fails the test unless the parallel result matches the
// serial reference in every observable the digest contract covers.
func assertEqualRuns(t *testing.T, serial, par *cholesky.Result, workers int) {
	t.Helper()
	if par.Digest() != serial.Digest() {
		t.Errorf("workers=%d: digest %#016x, serial %#016x", workers, par.Digest(), serial.Digest())
	}
	if !reflect.DeepEqual(serial.Stats, par.Stats) {
		t.Errorf("workers=%d: stats diverged\nserial: %+v\npar:    %+v", workers, serial.Stats, par.Stats)
	}
	sm, pm := filteredMetrics(serial.Metrics()), filteredMetrics(par.Metrics())
	if !reflect.DeepEqual(sm, pm) {
		t.Errorf("workers=%d: metric registries diverged (after des-gauge filter)\nserial: %+v\npar:    %+v", workers, sm, pm)
	}
}

func factorBits(m *tile.Matrix) []uint64 {
	dense := m.ToDense()
	bits := make([]uint64, len(dense))
	for i, v := range dense {
		bits[i] = math.Float64bits(v)
	}
	return bits
}

// TestGridPhantom sweeps the full policy × topology × front-end grid on
// multi-rank phantom scenarios: every parallel worker count must reproduce
// the serial run's digest, stats and metrics exactly.
func TestGridPhantom(t *testing.T) {
	fronts := []struct {
		name  string
		run   func(cholesky.Config) (*cholesky.Result, error)
		build func(t *testing.T) cholesky.Config
	}{
		{"ptg", cholesky.Run, func(t *testing.T) cholesky.Config { return phantomConfig(t, 16384, 4, 1) }},
		{"dtd", cholesky.RunDTD, func(t *testing.T) cholesky.Config { return phantomConfig(t, 12288, 4, 1) }},
	}
	for _, fr := range fronts {
		for _, p := range policies {
			for _, tp := range topologies {
				fr, p, tp := fr, p, tp
				t.Run(fr.name+"/"+p.name+"/"+tp.name, func(t *testing.T) {
					cfg := fr.build(t)
					cfg.Sched = p.pol
					cfg.Bcast = tp.topo
					serial, err := fr.run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range workerCounts(cfg.Platform.Ranks) {
						cfg.EngineWorkers = w
						par, err := fr.run(cfg)
						if err != nil {
							t.Fatalf("workers=%d: %v", w, err)
						}
						assertEqualRuns(t, serial, par, w)
					}
				})
			}
		}
	}
}

// TestGridFaults drives the fault axis of the grid on multi-rank numeric
// runs: a mid-run device kill and a transient+slowdown plan, each audited,
// must leave the parallel engine bit-identical to serial — digest, stats,
// metrics and the recovered factor itself.
func TestGridFaults(t *testing.T) {
	const nt, ranks, gpr = 7, 2, 2
	fronts := []struct {
		name string
		run  func(cholesky.Config) (*cholesky.Result, error)
	}{
		{"ptg", cholesky.Run},
		{"dtd", cholesky.RunDTD},
	}
	for _, fr := range fronts {
		fr := fr
		// Fault times are anchored to the front-end's fault-free makespan.
		probe := numericConfig(t, nt, ranks, gpr)
		ref, err := fr.run(probe)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Err != nil {
			t.Fatal(ref.Err)
		}
		mk := ref.Stats.Makespan
		specs := []struct {
			name string
			plan runtime.FaultPlan
		}{
			{"none", nil},
			{"kill", runtime.FaultPlan{{Kind: runtime.FaultKill, Device: 1, At: mk * 0.4}}},
			{"flaky-slow", runtime.FaultPlan{
				{Kind: runtime.FaultTransient, Device: 0, At: mk * 0.3, Backoff: mk * 0.01},
				{Kind: runtime.FaultSlow, Device: 2, From: 0, To: mk, Factor: 4},
			}},
		}
		for _, spec := range specs {
			spec := spec
			t.Run(fr.name+"/"+spec.name, func(t *testing.T) {
				run := func(workers int) (*cholesky.Result, []uint64) {
					t.Helper()
					cfg := numericConfig(t, nt, ranks, gpr)
					cfg.Faults = spec.plan
					cfg.Audit = true
					cfg.EngineWorkers = workers
					res, err := fr.run(cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if res.Err != nil {
						t.Fatalf("workers=%d: numeric failure: %v", workers, res.Err)
					}
					return res, factorBits(cfg.Matrix)
				}
				serial, wantBits := run(0)
				for _, w := range workerCounts(ranks) {
					par, gotBits := run(w)
					assertEqualRuns(t, serial, par, w)
					if !reflect.DeepEqual(wantBits, gotBits) {
						t.Errorf("workers=%d: factor bits diverged from serial", w)
					}
				}
			})
		}
	}
}
