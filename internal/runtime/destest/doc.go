// Package destest is the differential oracle for the conservative parallel
// DES engine (runtime.Engine.EngineWorkers): it replays the golden-digest
// grid — scheduling policies × broadcast topologies × PTG/DTD front-ends ×
// fault plans — once on the serial event loop and once per parallel worker
// count, and asserts that schedule digests, full Stats structures, metric
// registries (minus the engine/des/ and engine/rank*/des_ gauges, which are
// documented as outside the digest contract) and numeric factor bits are
// identical. The package lives outside internal/runtime proper so the grid
// can drive the real cholesky front-ends without an import cycle; its only
// contents are tests, run by the des-matrix CI job under -race.
package destest
