package runtime

import "fmt"

// Validate checks a Graph's structural consistency without executing it:
// every task's declared in-degree must equal the number of times it appears
// in other tasks' successor lists, successor ids must be in range, and the
// graph must be acyclic (verified by a Kahn peel). It is O(V+E) time and
// O(V) memory — intended for tests and for debugging new Graph
// implementations, not for the hot path.
func Validate(g Graph) error {
	n := g.NumTasks()
	indeg := make([]int32, n)
	var buf []int
	edges := 0
	for id := 0; id < n; id++ {
		buf = g.Successors(id, buf[:0])
		for _, s := range buf {
			if s < 0 || s >= n {
				return fmt.Errorf("runtime: task %d lists successor %d outside [0,%d)", id, s, n)
			}
			if s == id {
				return fmt.Errorf("runtime: task %d lists itself as successor", id)
			}
			indeg[s]++
			edges++
		}
	}
	for id := 0; id < n; id++ {
		if want := g.NumPredecessors(id); int(indeg[id]) != want {
			return fmt.Errorf("runtime: task %d has %d incoming edges but declares %d predecessors",
				id, indeg[id], want)
		}
	}
	// Kahn peel for acyclicity.
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		buf = g.Successors(id, buf[:0])
		for _, s := range buf {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("runtime: dependency cycle involving %d of %d tasks", n-seen, n)
	}
	return nil
}
