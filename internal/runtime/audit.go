package runtime

import (
	"fmt"
	"math"

	"geompc/internal/comm"
)

// This file implements the run-invariant auditor (Engine.Audit). It checks
// properties that should hold by construction in every run:
//
//   - accounting: a device's `used` counter always equals the sum of its
//     resident entries' bytes;
//   - residency: the LRU never holds more than the device memory while an
//     evictable (unpinned) tile exists — over-commit is legal only when
//     every resident tile is pinned by in-flight tasks;
//   - pin balance: when the run completes, every pin taken at commit has
//     been released, on every device;
//   - energy conservation: the traced activity intervals, integrated as
//     power·duration and added to idle·makespan, reproduce Stats.Energy to
//     within floating-point reassociation error (relative 1e-9).
//
// Violations are collected (capped) rather than panicking, so a single run
// reports every broken invariant at once.

// maxAuditViolations bounds the collected report; past this the auditor
// only counts.
const maxAuditViolations = 16

func (e *Engine) violate(format string, args ...any) {
	if len(e.auditViol) < maxAuditViolations {
		e.auditViol = append(e.auditViol, fmt.Sprintf(format, args...)) //geompc:nolint hotalloc violation rendering; only reached once the residency audit has already failed
	}
}

// auditResidency validates device d's LRU state right after task taskID
// staged its tiles (the moment of maximal pressure).
func (e *Engine) auditResidency(d *device, taskID int) {
	var sum int64
	unpinned, n := 0, 0
	// The LRU list must contain exactly the index's entries, each reachable
	// by lookup under its own id.
	for entry := d.lruHead; entry != nil; entry = entry.next {
		n++
		sum += entry.bytes
		if entry.pins == 0 {
			unpinned++
		}
		if d.entry(entry.data) != entry {
			e.violate("dev%d after task %d: LRU list entry %d not in resident index", d.id, taskID, entry.data)
			break
		}
	}
	if sum != d.used {
		e.violate("dev%d after task %d: used=%d but resident entries sum to %d", d.id, taskID, d.used, sum)
	}
	if d.used > d.spec.MemBytes && unpinned > 0 {
		e.violate("dev%d after task %d: resident %d B exceeds memory %d B with %d evictable tile(s)",
			d.id, taskID, d.used, d.spec.MemBytes, unpinned)
	}
	if n != d.nResident {
		e.violate("dev%d after task %d: LRU list has %d entries, index has %d", d.id, taskID, n, d.nResident)
	}
}

// auditFinal runs the end-of-run checks: pin balance and energy
// conservation. Called after finalizeStats.
func (e *Engine) auditFinal() {
	for _, d := range e.devices {
		for entry := d.lruHead; entry != nil; entry = entry.next {
			if entry.pins != 0 {
				e.violate("dev%d at completion: tile %d still holds %d pin(s)", d.id, entry.data, entry.pins)
			}
		}
	}
	if e.armed {
		// Recovery invariants: every numeric body orphaned by a device
		// failure must have been joined by a re-commit on a survivor, and a
		// dead device must end the run empty (its memory is gone). Commits
		// to a dead device after its failure time are flagged at commit.
		if len(e.orphan) != 0 {
			e.violate("recovery: %d aborted task body(ies) never re-committed", len(e.orphan))
		}
		for _, d := range e.devices {
			if d.deadAt >= 0 && (d.nResident != 0 || d.used != 0 || d.ready.Len() != 0) {
				e.violate("dev%d died at t=%g but still holds %d tile(s), %d B, %d queued task(s)",
					d.id, d.deadAt, d.nResident, d.used, d.ready.Len())
			}
		}
	}

	// Integrate the traced intervals and compare against the closed-form
	// energy accrued during the run.
	var traced float64
	for _, d := range e.devices {
		for _, ivs := range [][]Interval{d.busyIntervals, d.convIntervals, d.h2d.Intervals(), d.d2h.Intervals()} {
			for _, iv := range ivs {
				if iv.End < iv.Start {
					e.violate("dev%d: interval ends (%g) before it starts (%g)", d.id, iv.End, iv.Start)
				}
				traced += (iv.End - iv.Start) * iv.Power
			}
		}
		// A failed device stops drawing idle power at its death time
		// (finalizeStats accounts it identically).
		traced += d.spec.IdleW * d.idleSpan(e.stats.Makespan)
	}
	if diff := math.Abs(traced - e.stats.Energy); diff > 1e-9*math.Max(1, math.Abs(e.stats.Energy)) {
		e.violate("energy conservation: traced intervals integrate to %.12g J, Stats.Energy is %.12g J (diff %g)",
			traced, e.stats.Energy, diff)
	}

	e.auditLinks()
}

// relClose reports a ≈ b to within floating-point reassociation error: a
// link's busy counter accumulates durations while the interval sum
// accumulates (end−start) differences, which reassociate differently.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// auditLink checks one serial link's trace: no two occupancy intervals
// overlap (a serial resource carries one transfer at a time), and the
// intervals integrate to the link's cumulative busy time.
func (e *Engine) auditLink(l *comm.Link) {
	var sum, prevEnd float64
	for i, iv := range l.Intervals() {
		if iv.End < iv.Start {
			e.violate("link %s: interval %d ends (%g) before it starts (%g)", l.Name(), i, iv.End, iv.Start)
		}
		if iv.Start < prevEnd && !relClose(iv.Start, prevEnd) {
			e.violate("link %s: interval %d starts at %g, overlapping the previous end %g",
				l.Name(), i, iv.Start, prevEnd)
		}
		prevEnd = iv.End
		sum += iv.End - iv.Start
	}
	if !relClose(sum, l.Busy()) {
		e.violate("link %s: traced intervals sum to %.12g s of occupancy, busy counter says %.12g s",
			l.Name(), sum, l.Busy())
	}
}

// auditLinks validates every link's serial-occupancy invariants, and that
// each device's TransferTime equals its two host-link busy times — the
// traced transfer time and the accounted one must agree.
func (e *Engine) auditLinks() {
	for _, d := range e.devices {
		e.auditLink(d.h2d)
		e.auditLink(d.d2h)
		e.auditLink(d.peer)
		if !relClose(d.h2d.Busy()+d.d2h.Busy(), d.stats.TransferTime) {
			e.violate("dev%d: host links busy %.12g s, DeviceStats.TransferTime %.12g s",
				d.id, d.h2d.Busy()+d.d2h.Busy(), d.stats.TransferTime)
		}
	}
	for _, nic := range e.nics {
		e.auditLink(nic)
	}
}
