// Package runtime implements the task-based execution engine the paper
// builds on (§III-B): a PaRSEC-like dataflow runtime that schedules
// fine-grained tile tasks across (simulated) GPUs as soon as their
// dependencies are satisfied, overlapping kernel execution with host-device
// transfers and inter-rank communication.
//
// The engine is a deterministic discrete-event simulation: every task and
// transfer is assigned a virtual start/end time from calibrated device
// models (internal/hw), while numeric task bodies — when present — execute
// real arithmetic, so a run yields both the factorized matrix and the
// simulated elapsed time, data motion, energy and occupancy of the
// modeled machine.
//
// Task graphs are supplied algebraically through the Graph interface, in
// the spirit of PaRSEC's Parameterized Task Graph: the engine never stores
// the full DAG, only O(1) counters per task and the specs of tasks
// currently in flight, which is what makes 384-GPU, 10⁷-task Summit
// simulations tractable.
package runtime

import (
	"geompc/internal/hw"
	"geompc/internal/prec"
)

// DataID identifies a unit of data (a tile) across the whole platform.
type DataID int64

// InputSpec declares one tile read by a task, with the wire format chosen
// by the automated conversion strategy: WireBytes is what a transfer of
// this tile costs, and ConvertElems > 0 means this consumer must convert
// the received data before use (TTC receiver-side conversion).
type InputSpec struct {
	Data      DataID
	WireBytes int64
	// WirePrec is the element format the tile travels in (labels the
	// per-precision byte counters of the metrics registry). The zero value
	// is FP64.
	WirePrec prec.Precision
	// Receiver-side conversion (TTC): number of elements to convert on the
	// consuming device before the kernel runs; 0 if none.
	ConvertElems     int
	ConvFrom, ConvTo prec.Precision
}

// OutputSpec declares the tile a task writes. Bytes is the device-resident
// footprint (the tile's storage precision); Prec labels that footprint's
// element format for the metrics registry (zero value FP64).
type OutputSpec struct {
	Data  DataID
	Bytes int64
	Prec  prec.Precision
}

// PublishSpec describes what happens when a task's output must be made
// visible beyond its device: an optional sender-side conversion (STC), a
// device-to-host copy of the wire representation, and a broadcast to
// remote ranks.
type PublishSpec struct {
	WireBytes int64
	// WirePrec labels the wire format of the D2H copy and broadcast for the
	// per-precision byte counters (zero value FP64).
	WirePrec prec.Precision
	// Sender-side conversion (STC): elements converted on the producer
	// device before the D2H copy; 0 under TTC.
	ConvertElems     int
	ConvFrom, ConvTo prec.Precision
	// RemoteRanks lists ranks other than the producer's that consume the
	// data (network broadcast targets).
	RemoteRanks []int
}

// TaskSpec is the full description of one task, produced on demand by a
// Graph. Body, when non-nil, performs the real numeric work.
type TaskSpec struct {
	ID       int
	Kind     hw.KernelKind
	Device   int // global device index
	Prec     prec.Precision
	Flops    float64
	Priority int64
	Inputs   []InputSpec
	Output   OutputSpec
	Publish  *PublishSpec
	Body     func()
}

// Graph supplies a task system algebraically. Implementations must be
// deterministic: the same id always yields the same spec.
type Graph interface {
	// NumTasks is the total number of tasks.
	NumTasks() int
	// Spec fills s with the description of task id. The engine recycles
	// TaskSpec records: s may arrive still holding the fields of a
	// previously completed task, so implementations must set every field
	// they care about — and may reuse the allocations already reachable
	// from s (e.g. refill s.Inputs[:0] or an existing s.Publish) to keep
	// the hot path allocation-free.
	Spec(id int, s *TaskSpec)
	// NumPredecessors returns the in-degree of task id.
	NumPredecessors(id int) int
	// Successors appends the ids of tasks depending on id to buf and
	// returns it.
	Successors(id int, buf []int) []int
	// InitialData enumerates every DataID resident in host memory before
	// execution starts, with its owning rank (matrix generation phase).
	InitialData(visit func(d DataID, rank int))
}
