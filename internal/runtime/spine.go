package runtime

// The spine is the parallel engine's incremental re-sequencer: it replays
// every shard's commit/completion/fault records in exact serial
// (virtual-time, sequence) order, reconstructing the global interleaving the
// single-threaded engine would have produced. All order-sensitive
// observable state — the FNV-1a schedule digest, the schedule trace, the
// task/H2D histograms (float accumulation order matters for bit-exact
// sums), plan-recorder callbacks, the fault log and the done/flops totals —
// is written here, into the top-level engine, and nowhere else.
//
// Consumption is gated exactly like the serial engine's commit loop: a
// device's next commit record is consumed only while the device's pipeline
// depth is below Lookahead and the task's spine-side in-degree has reached
// zero — which happens at the same replay position the serial engine would
// have committed it. A completion frame is replayed only once the owning
// shard has processed it (its completion record arrived), and its remote
// releases only once the receiving shards absorbed them (their dec-done
// records arrived); until then the spine parks and reports which shard it
// is waiting on, and the coordinator either bursts or locksteps that shard.
// Every gate doubles as a divergence detector: a mismatched head record
// means the parallel execution left the serial trajectory.

import (
	"fmt"
	"math"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// spineEvent mirrors one in-flight commit (or armed fault) in the global
// event heap, ordered by (at, seq) exactly like the serial engine's heap.
type spineEvent struct {
	at     float64
	seq    int64
	task   int32
	dev    int32
	start  float64
	flops  float64
	kind   hw.KernelKind
	prec   prec.Precision
	replay bool
	fault  *FaultEvent
}

// recQ is a FIFO of shard records with an amortized-compacting head.
type recQ struct {
	buf  []desRec
	head int
}

func (q *recQ) empty() bool   { return q.head >= len(q.buf) }
func (q *recQ) peek() *desRec { return &q.buf[q.head] }
func (q *recQ) push(r desRec) { q.buf = append(q.buf, r) }
func (q *recQ) pop() desRec {
	r := q.buf[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return r
}

// f64Q is the same for H2D byte observations.
type f64Q struct {
	buf  []float64
	head int
}

func (q *f64Q) empty() bool    { return q.head >= len(q.buf) }
func (q *f64Q) push(v float64) { q.buf = append(q.buf, v) }
func (q *f64Q) pop() float64 {
	v := q.buf[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return v
}

const (
	stallNone = iota
	// stallShard: the spine's next serial step is an event the owning shard
	// has not processed yet.
	stallShard
	// stallApply: the spine is mid-frame, waiting for a receiving shard to
	// absorb a remote release it has already been routed.
	stallApply
)

type desSpine struct {
	c *desCoord

	owner []int16

	// Global replay state mirroring the serial engine.
	pending      []int32
	devOf        []int32 // task -> committed/queued device (from enqueue records)
	committedCnt []int32 // per-device pipeline depth at the replay position
	dead         []bool
	heap         []spineEvent
	seq          int64

	// Per-device and per-rank record queues.
	devQ      []recQ // forward commit records, per device
	h2dQ      []f64Q // H2D observations, per device
	replayQ   []recQ // recovery commit records, per rank
	completeQ []recQ // completion records, per rank
	decQ      []recQ // remote-release acknowledgements, per rank
	faultQ    []recQ // fault-processed records, per rank

	// Replayed totals (serial accumulation order).
	done       int
	tasks      int
	totalFlops float64

	// In-progress completion frame, resumable across catchUp calls when a
	// remote release is not yet absorbed.
	frameActive bool
	frameRank   int
	frameTask   int32
	frameSuccs  []int
	frameIdx    int
	frameDirty  []int32
	dirtySet    []bool

	// Stall report for the coordinator's lockstep.
	stallKind   uint8
	stallRank   int
	stallAt     float64
	stallFault  bool
	stallDev    int32
	stallTask   int32
	stallReplay bool

	// backlog counts demuxed-but-unconsumed records per rank (bounds how
	// far a shard may run ahead); consumed is the total consumption
	// counter, the coordinator's progress metric.
	backlog  []int
	consumed int64

	err error
}

func newDesSpine(c *desCoord, n int, plan FaultPlan) *desSpine {
	e := c.e
	nd := e.plat.NumDevices()
	R := e.plat.Ranks
	s := &desSpine{
		c:            c,
		owner:        c.shards[0].owner,
		pending:      make([]int32, n),
		devOf:        make([]int32, n),
		committedCnt: make([]int32, nd),
		dead:         make([]bool, nd),
		devQ:         make([]recQ, nd),
		h2dQ:         make([]f64Q, nd),
		replayQ:      make([]recQ, R),
		completeQ:    make([]recQ, R),
		decQ:         make([]recQ, R),
		faultQ:       make([]recQ, R),
		dirtySet:     make([]bool, nd),
		backlog:      make([]int, R),
	}
	for id := 0; id < n; id++ {
		s.pending[id] = int32(e.g.NumPredecessors(id))
		s.devOf[id] = -1
	}
	// Fault events enter the heap before any commit, with sequence numbers
	// 1..F in plan order — the exact serial armFaults arithmetic.
	for _, f := range plan {
		if f.Kind == FaultSlow {
			continue
		}
		s.seq++
		fv := f
		s.pushHeap(spineEvent{at: f.At, seq: s.seq, dev: int32(f.Device), fault: &fv})
	}
	return s
}

// initialReplay mirrors the serial Run prologue's per-device pipeline fill
// (after setup records have been demuxed).
func (s *desSpine) initialReplay() {
	for dev := range s.devQ {
		s.tryConsume(dev)
	}
}

// demux routes one shard's record batch into the spine's queues.
//
//geompc:hot
func (s *desSpine) demux(rank int, recs []desRec) {
	for i := range recs {
		rec := &recs[i]
		switch rec.kind {
		case recKCommit:
			if rec.recov {
				s.replayQ[rank].push(*rec)
			} else {
				s.devQ[rec.dev].push(*rec)
			}
			s.backlog[rank]++
		case recKH2D:
			s.h2dQ[rec.dev].push(rec.val)
			s.backlog[rank]++
		case recKEnqueue:
			s.devOf[rec.task] = rec.dev
		case recKComplete:
			s.completeQ[rank].push(*rec)
			s.backlog[rank]++
		case recKDecDone:
			s.decQ[rank].push(*rec)
			s.backlog[rank]++
		case recKFaultDone:
			s.faultQ[rank].push(*rec)
			s.backlog[rank]++
		}
	}
}

//geompc:hot
func (s *desSpine) noteConsumed(rank int) {
	s.backlog[rank]--
	s.consumed++
}

func (s *desSpine) rankOfDev(dev int32) int { return s.c.e.plat.RankOfDevice(int(dev)) }

func (s *desSpine) diverge(format string, args ...any) bool {
	s.err = fmt.Errorf("runtime: parallel engine diverged: "+format, args...) //geompc:nolint hotalloc divergence is fatal; rendered once at the end of a doomed run
	return false
}

// catchUp replays as far as the arrived records allow, then parks with a
// stall report (or an empty heap).
func (s *desSpine) catchUp() {
	s.stallKind = stallNone
	for s.err == nil {
		if s.frameActive {
			if !s.resumeFrame() {
				return
			}
			continue
		}
		if len(s.heap) == 0 {
			return
		}
		top := &s.heap[0]
		var ok bool
		switch {
		case top.fault != nil:
			ok = s.faultFrame()
		case top.replay:
			ok = s.replayFrame()
		default:
			ok = s.beginFrame()
		}
		if !ok {
			return
		}
	}
}

// stallOnHeapTop parks the spine until the owning shard processes the
// heap's top event.
func (s *desSpine) stallOnHeapTop(rank int) bool {
	top := &s.heap[0]
	s.stallKind = stallShard
	s.stallRank = rank
	s.stallAt = top.at
	s.stallFault = top.fault != nil
	s.stallDev = top.dev
	s.stallTask = top.task
	s.stallReplay = top.replay
	return false
}

// beginFrame starts replaying the serially-next completion: consume the
// shard's completion record, retire the task, route the frame's messages,
// then absorb its releases (resumeFrame).
//
//geompc:hot
func (s *desSpine) beginFrame() bool {
	e := s.c.e
	top := s.heap[0]
	r := s.rankOfDev(top.dev)
	q := &s.completeQ[r]
	if q.empty() {
		return s.stallOnHeapTop(r)
	}
	head := q.peek()
	if head.task != top.task || head.recov {
		return s.diverge("rank %d completion stream has task %d (replay=%v) where the serial order expects task %d", r, head.task, head.recov, top.task)
	}
	q.pop()
	s.noteConsumed(r)
	s.popHeap()
	if e.Recorder != nil {
		e.Recorder.RecordComplete(int(top.task))
	}
	s.done++
	s.tasks++
	s.totalFlops += top.flops
	s.committedCnt[top.dev]--
	s.frameSuccs = e.g.Successors(int(top.task), s.frameSuccs[:0])
	s.frameRank = r
	s.frameTask = top.task
	s.frameIdx = 0
	s.frameDirty = s.frameDirty[:0]
	s.frameDirty = append(s.frameDirty, top.dev)
	s.dirtySet[top.dev] = true
	s.frameActive = true
	// Release this frame's messages to their receivers: only now is every
	// earlier-or-equal serial send already delivered, which is what makes
	// receiver inboxes serial prefixes.
	s.c.routeFrame(r, top.task)
	return true
}

// resumeFrame absorbs the active frame's successor releases (gating remote
// ones on the receiver's acknowledgement), then refills the pipelines of
// every device that finished or gained work, in the serial dirty order.
//
//geompc:hot
func (s *desSpine) resumeFrame() bool {
	for s.frameIdx < len(s.frameSuccs) {
		sid := s.frameSuccs[s.frameIdx]
		if int(s.owner[sid]) != s.frameRank {
			r := int(s.owner[sid])
			q := &s.decQ[r]
			if q.empty() {
				s.stallKind = stallApply
				s.stallRank = r
				return false
			}
			head := q.pop()
			s.noteConsumed(r)
			if head.task != int32(sid) {
				return s.diverge("rank %d absorbed release of task %d where the serial order expects task %d", r, head.task, sid)
			}
		}
		s.pending[sid]--
		switch {
		case s.pending[sid] == 0:
			dev := s.devOf[sid]
			if dev < 0 {
				return s.diverge("task %d released with no enqueue record", sid)
			}
			if !s.dirtySet[dev] {
				s.dirtySet[dev] = true
				s.frameDirty = append(s.frameDirty, dev)
			}
		case s.pending[sid] < 0:
			s.err = &GraphError{Task: sid, Msg: "released more than its in-degree"} //geompc:nolint hotalloc cold malformed-graph path, run ends here
			return false
		}
		s.frameIdx++
	}
	for _, dev := range s.frameDirty {
		s.dirtySet[dev] = false
	}
	for _, dev := range s.frameDirty {
		s.tryConsume(int(dev))
	}
	s.frameDirty = s.frameDirty[:0]
	s.frameActive = false
	return true
}

// tryConsume replays dev's next commits while the serial gates pass: the
// pipeline is below Lookahead and the head record's task is released at the
// current replay position. This is the exact serial tryCommit condition, so
// records from a shard's future sit untouched until the replay reaches the
// position the serial engine would have committed them.
//
//geompc:hot
func (s *desSpine) tryConsume(dev int) {
	e := s.c.e
	if s.dead[dev] {
		return
	}
	q := &s.devQ[dev]
	for s.committedCnt[dev] < int32(e.Lookahead) && !q.empty() && s.pending[q.peek().task] == 0 {
		rec := q.pop()
		s.noteConsumed(s.rankOfDev(rec.dev))
		s.emitCommit(&rec)
	}
}

// emitCommit re-emits one commit's observable effects in serial order and
// pushes its completion into the spine heap.
//
//geompc:hot
func (s *desSpine) emitCommit(rec *desRec) {
	e := s.c.e
	for i := int32(0); i < rec.h2dN; i++ {
		e.hH2DBytes.Observe(s.h2dQ[rec.dev].pop())
	}
	if e.Trace {
		e.schedule = append(e.schedule, ScheduledTask{
			ID: int(rec.task), Kind: rec.tkind, Device: int(rec.dev), Prec: rec.prec,
			Start: rec.start, End: rec.end, Recovery: rec.recov,
		})
	}
	e.hTaskSec.Observe(rec.end - rec.start)
	e.digest.WriteString(string(rec.tkind))
	e.digest.WriteInt64(int64(rec.dev))
	e.digest.WriteFloat64(rec.start)
	e.digest.WriteFloat64(rec.end)
	e.digest.WriteInt64(rec.bytes)
	if e.Recorder != nil && !rec.recov {
		e.Recorder.RecordCommit(int(rec.task))
	}
	s.committedCnt[rec.dev]++
	s.seq++
	s.pushHeap(spineEvent{
		at: rec.end, seq: s.seq, task: rec.task, dev: rec.dev, start: rec.start,
		flops: rec.flops, kind: rec.tkind, prec: rec.prec, replay: rec.recov,
	})
}

// replayFrame retires a recovery re-execution: no successors, no stats —
// just the pipeline slot and the device's next commit.
//
//geompc:hot
func (s *desSpine) replayFrame() bool {
	top := s.heap[0]
	r := s.rankOfDev(top.dev)
	q := &s.completeQ[r]
	if q.empty() {
		return s.stallOnHeapTop(r)
	}
	head := q.peek()
	if head.task != top.task || !head.recov {
		return s.diverge("rank %d completion stream has task %d (replay=%v) where the serial order expects replay of task %d", r, head.task, head.recov, top.task)
	}
	q.pop()
	s.noteConsumed(r)
	s.popHeap()
	s.committedCnt[top.dev]--
	s.tryConsume(int(top.dev))
	return true
}

// faultFrame replays a fault delivery, mirroring killDevice/transientFault
// arithmetic bit for bit against the shard's fault-done record.
func (s *desSpine) faultFrame() bool {
	top := s.heap[0]
	f := top.fault
	r := s.rankOfDev(top.dev)
	q := &s.faultQ[r]
	if q.empty() {
		return s.stallOnHeapTop(r)
	}
	fd := q.peek()
	if fd.dev != top.dev || fd.fkind != f.Kind || fd.at != top.at {
		return s.diverge("rank %d fault stream has %v on dev%d at t=%g where the serial order expects %v on dev%d at t=%g", r, fd.fkind, fd.dev, fd.at, f.Kind, top.dev, top.at)
	}
	fdv := q.pop()
	s.noteConsumed(r)
	s.popHeap()
	switch f.Kind {
	case FaultKill:
		s.killFrame(f, &fdv, top.at, r)
	case FaultTransient:
		s.transientFrame(f, &fdv, top.at)
	}
	return s.err == nil
}

func (s *desSpine) killFrame(f *FaultEvent, fd *desRec, at float64, rank int) {
	e := s.c.e
	dev := f.Device
	if s.dead[dev] {
		if fd.replays != 0 {
			s.diverge("kill of already-dead dev%d replayed %d tasks", dev, fd.replays)
		}
		return
	}
	s.dead[dev] = true
	e.faultLog = append(e.faultLog, faultMark{kind: FaultKill, device: dev, at: at})
	e.digest.WriteString("kill")
	e.digest.WriteInt64(int64(dev))
	e.digest.WriteFloat64(at)
	// The dead device's in-flight completions are aborted (serial step 1).
	kept := s.heap[:0]
	for _, ev := range s.heap {
		if ev.fault == nil && int(ev.dev) == dev {
			continue
		}
		kept = append(kept, ev)
	}
	s.heap = kept
	s.heapify()
	s.committedCnt[dev] = 0
	// Lineage replays (serial step 2), in the shard's emission order.
	rq := &s.replayQ[rank]
	for i := int32(0); i < fd.replays; i++ {
		if rq.empty() {
			s.diverge("kill of dev%d reports %d replays but only %d records arrived", dev, fd.replays, i)
			return
		}
		rec := rq.pop()
		s.noteConsumed(rank)
		s.emitCommit(&rec)
	}
	// Survivor pipeline refill (serial step 5): every device, id order.
	for d := range s.devQ {
		s.tryConsume(d)
	}
}

func (s *desSpine) transientFrame(f *FaultEvent, fd *desRec, at float64) {
	e := s.c.e
	dev := f.Device
	if s.dead[dev] {
		return
	}
	e.faultLog = append(e.faultLog, faultMark{kind: FaultTransient, device: dev, at: at})
	best := -1
	for i := range s.heap {
		ev := &s.heap[i]
		if ev.fault != nil || int(ev.dev) != dev {
			continue
		}
		if best < 0 || ev.at > s.heap[best].at ||
			(ev.at == s.heap[best].at && ev.seq > s.heap[best].seq) {
			best = i
		}
	}
	if best < 0 {
		if !math.IsInf(fd.retryAt, -1) {
			s.diverge("transient fault on idle dev%d but shard retried at t=%g", dev, fd.retryAt)
		}
		return
	}
	ev := &s.heap[best]
	retryDur := ev.at - ev.start
	if retryDur < 0 {
		retryDur = 0
	}
	retryStart := ev.at + f.Backoff
	newAt := retryStart + retryDur
	if fd.retryAt != newAt {
		s.diverge("transient fault on dev%d: shard retried at t=%g, serial order expects t=%g", dev, fd.retryAt, newAt)
		return
	}
	if e.Trace {
		e.schedule = append(e.schedule, ScheduledTask{
			ID: int(ev.task), Kind: ev.kind, Device: dev, Prec: ev.prec,
			Start: retryStart, End: newAt, Recovery: true,
		})
	}
	e.digest.WriteString("retry")
	e.digest.WriteInt64(int64(dev))
	e.digest.WriteFloat64(newAt)
	ev.at = newAt
	s.heapify()
}

// Heap primitives, ordered by (at, seq) like the serial event heap.

func spineBefore(a, b *spineEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//geompc:hot
func (s *desSpine) pushHeap(ev spineEvent) {
	s.heap = append(s.heap, ev)
	h := s.heap
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !spineBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

//geompc:hot
func (s *desSpine) popHeap() spineEvent {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDownSpine(h, 0)
	s.heap = h
	return top
}

func siftDownSpine(h []spineEvent, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && spineBefore(&h[l], &h[m]) {
			m = l
		}
		if r < n && spineBefore(&h[r], &h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (s *desSpine) heapify() {
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		siftDownSpine(s.heap, i)
	}
}
