package runtime

import (
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// FuzzValidate drives the DTD front-end with arbitrary insertion sequences
// and checks that (a) the inferred edge structure always passes Validate —
// in-degrees match successor lists and no cycle can arise from sequential
// insertion — and (b) the engine executes the resulting graph to completion
// under the invariant auditor without panicking.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x81, 0x7e})
	f.Add([]byte("read-write-interleave"))

	f.Fuzz(func(t *testing.T, data []byte) {
		const pool = 8 // distinct tiles
		g := NewDTDGraph()
		for d := 0; d < pool; d++ {
			g.Data(DataID(d), 0)
		}
		// Each byte inserts one task: the low three bits pick the tile it
		// reads, the next three the tile it writes, bit 6 adds a second read,
		// bit 7 adds a receiver-side conversion. Capped to keep runs small.
		n := len(data)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			b := data[i]
			read := DataID(b & 7)
			write := DataID((b >> 3) & 7)
			accesses := []Access{{Data: read, Mode: Read, WireBytes: 4096, Prec: prec.FP32}}
			if b&0x40 != 0 {
				accesses = append(accesses, Access{
					Data: DataID((int(read) + 1) % pool), Mode: Read,
					WireBytes: 2048, Prec: prec.FP16,
				})
			}
			if b&0x80 != 0 {
				accesses[0].ConvertElems = 512
				accesses[0].ConvFrom, accesses[0].ConvTo = prec.FP16, prec.FP32
			}
			accesses = append(accesses, Access{Data: write, Mode: Write, WireBytes: 8192, Prec: prec.FP64})
			if _, err := g.Insert(TaskSpec{
				Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e6,
			}, accesses...); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}

		if err := Validate(g); err != nil {
			t.Fatalf("inferred graph fails validation: %v", err)
		}
		// In-degree / successor round trip, beyond what Validate reports.
		var buf []int
		for id := 0; id < g.NumTasks(); id++ {
			buf = g.Successors(id, buf[:0])
			for _, s := range buf {
				if s <= id {
					t.Fatalf("task %d lists non-forward successor %d", id, s)
				}
			}
		}
		if g.NumTasks() == 0 {
			return
		}
		plat, err := NewPlatform(hw.SummitNode, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(plat, g)
		eng.Audit = true
		st, err := eng.Run()
		if err != nil {
			t.Fatalf("audited run failed: %v", err)
		}
		if st.Tasks != g.NumTasks() {
			t.Fatalf("executed %d of %d tasks", st.Tasks, g.NumTasks())
		}
	})
}
