package runtime

import (
	"geompc/internal/comm"
	"geompc/internal/sched"
)

// This file is the engine's bridge to the pluggable scheduling layer
// (internal/sched): policy/topology resolution at Run start, the read-only
// Machine view policies consult, placement of ready tasks, and the
// critical-path precomputation for policies that request it.

// resolveSched pins the run's policy and broadcast topology (defaulting to
// the historical FIFO + binomial pair), builds the shared ready-queue
// comparator, and performs whatever precomputation the policy's hints ask
// for. Called before any device (and its taskHeap) is created.
func (e *Engine) resolveSched() {
	e.policy = e.Policy
	if e.policy == nil {
		e.policy = sched.FIFO{}
	}
	e.topo = e.Bcast
	if e.topo == nil {
		e.topo = comm.Binomial{}
	}
	_, isFIFO := e.policy.(sched.FIFO)
	e.ord = heapOrder{pol: e.policy, fifo: isFIFO}
	hints := e.policy.Hints()
	if hints&sched.NeedCriticalPath != 0 {
		e.ord.cp = criticalPathLengths(e.g, e.ord.cp)
	} else {
		e.ord.cp = nil
	}
	e.placing = hints&sched.NeedPlacement != 0
}

// placeTask consults the policy for a ready task's device, gathering the
// task's data references into a reused scratch buffer. Results that leave
// the home rank (or the device range) are clamped back to the
// owner-computes home: host tile copies live per rank, so a cross-rank
// placement could not stage its inputs.
//
//geompc:hot
func (e *Engine) placeTask(spec *TaskSpec) int {
	home := spec.Device
	refs := e.refsBuf[:0]
	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		refs = append(refs, sched.DataRef{Data: int64(in.Data), Bytes: in.WireBytes})
	}
	if spec.Output.Data >= 0 {
		refs = append(refs, sched.DataRef{Data: int64(spec.Output.Data), Bytes: spec.Output.Bytes})
	}
	e.refsBuf = refs
	dev := e.policy.Place(home, refs, machineView{e})
	if dev < 0 || dev >= len(e.devices) || e.devices[dev] == nil || e.devices[dev].rank != e.devices[home].rank {
		return home
	}
	return dev
}

// machineView adapts the engine to sched.Machine without allocating: it is
// a one-word value wrapping the engine pointer. In parallel mode a rank
// shard populates only its own rank's device slots; remote slots are nil and
// read as dead/empty, which matches what the per-rank Locality scan needs.
type machineView struct{ e *Engine }

func (m machineView) NumDevices() int  { return len(m.e.devices) }
func (m machineView) DevPerRank() int  { return m.e.plat.DevPerRank }
func (m machineView) RankOf(d int) int { return m.e.plat.RankOfDevice(d) }
func (m machineView) Alive(d int) bool {
	dd := m.e.devices[d]
	return dd != nil && dd.deadAt < 0
}

func (m machineView) ResidentBytes(dev int, data int64) int64 {
	dd := m.e.devices[dev]
	if dd == nil {
		return 0
	}
	if ent := dd.entry(DataID(data)); ent != nil {
		return ent.bytes
	}
	return 0
}

func (m machineView) QueueLen(dev int) int {
	dd := m.e.devices[dev]
	if dd == nil {
		return 0
	}
	return dd.ready.Len()
}

// criticalPathLengths computes, for every task, the length (in tasks,
// including itself) of the longest dependency chain below it: a Kahn
// topological pass forward, then a reverse sweep taking 1 + max over
// successors. O(V+E), run once per Run, and only for policies that declare
// NeedCriticalPath. Tasks on a dependency cycle keep length 0; the event
// loop reports the cycle as unexecuted tasks either way.
func criticalPathLengths(g Graph, buf []int64) []int64 {
	n := g.NumTasks()
	cp := buf
	if cap(cp) >= n {
		cp = cp[:n]
	} else {
		cp = make([]int64, n)
	}
	for i := range cp {
		cp[i] = 0
	}
	indeg := make([]int32, n)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		indeg[i] = int32(g.NumPredecessors(i))
		if indeg[i] == 0 {
			order = append(order, i)
		}
	}
	var succ []int
	for head := 0; head < len(order); head++ {
		succ = g.Successors(order[head], succ[:0])
		for _, s := range succ {
			indeg[s]--
			if indeg[s] == 0 {
				order = append(order, s)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		succ = g.Successors(id, succ[:0])
		var best int64
		for _, s := range succ {
			if cp[s] > best {
				best = cp[s]
			}
		}
		cp[id] = best + 1
	}
	return cp
}
