package runtime

import "fmt"

// GraphError reports a malformed task graph: a task assigned to a device
// that doesn't exist, an input with no host copy at the task's rank, or
// broken in-degree accounting. The engine used to panic on these; now they
// abort the run and surface from Run, so a bad front-end is a test failure
// rather than a process crash.
type GraphError struct {
	Task int    // the offending task id
	Msg  string // what is malformed about it
}

func (g *GraphError) Error() string {
	return fmt.Sprintf("runtime: malformed graph: task %d %s", g.Task, g.Msg)
}

// fail records the run's first fatal error; the event loop (and the commit
// path) stop at the next check. Later errors are dropped — the first one is
// the cause, anything after it is fallout.
func (e *Engine) fail(err error) {
	if e.fatalErr == nil {
		e.fatalErr = err
	}
}
