package runtime

import (
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

// The auditor must come up clean on the engine's own stress scenarios:
// memory-pressure eviction with writeback, cross-rank publishes, and both
// conversion directions.

func TestAuditCleanUnderEviction(t *testing.T) {
	node := *hw.SummitNode
	gpu := *hw.V100
	gpu.MemBytes = 10 << 20
	node.GPU = &gpu
	p, err := NewPlatform(&node, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(3)
	g.initial[1] = 0
	g.initial[2] = 0
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Output: OutputSpec{Data: 1, Bytes: 8 << 20}}
	g.specs[1] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Inputs: []InputSpec{{Data: 2, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: -1}}
	g.specs[2] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Inputs: []InputSpec{{Data: 1, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: -1}}
	g.edge(0, 1)
	g.edge(1, 2)
	eng := New(p, g)
	eng.Lookahead = 1
	eng.Audit = true
	st, err := eng.Run()
	if err != nil {
		t.Fatalf("audited eviction run failed: %v", err)
	}
	if st.Devices[0].Writebacks == 0 {
		t.Fatal("scenario did not exercise writeback")
	}
	if st.Devices[0].LRUMisses == 0 || st.Devices[0].LRUHits != 0 {
		t.Errorf("LRU stats hits=%d misses=%d; re-fetch scenario should only miss",
			st.Devices[0].LRUHits, st.Devices[0].LRUMisses)
	}
}

func TestAuditCleanOnPublishAndConversions(t *testing.T) {
	p, err := NewPlatform(hw.SummitNode, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGraph(2)
	g.specs[0] = TaskSpec{
		Kind: hw.KindTrsm, Device: 0, Prec: prec.FP32, Flops: 1e9,
		Output: OutputSpec{Data: 9, Bytes: 4 << 20},
		Publish: &PublishSpec{
			WireBytes: 2 << 20, WirePrec: prec.FP16,
			ConvertElems: 1 << 20, ConvFrom: prec.FP32, ConvTo: prec.FP16,
			RemoteRanks: []int{1},
		},
	}
	g.specs[1] = TaskSpec{
		Kind: hw.KindGemm, Device: 1, Prec: prec.FP64, Flops: 1e9,
		Inputs: []InputSpec{{Data: 9, WireBytes: 2 << 20, WirePrec: prec.FP16,
			ConvertElems: 1 << 20, ConvFrom: prec.FP16, ConvTo: prec.FP64}},
		Output: OutputSpec{Data: -1},
	}
	g.edge(0, 1)
	eng := New(p, g)
	eng.Audit = true
	st, err := eng.Run()
	if err != nil {
		t.Fatalf("audited publish run failed: %v", err)
	}
	if eng.AuditViolations() != nil {
		t.Fatalf("violations on a clean run: %v", eng.AuditViolations())
	}
	if st.SenderConversions != 1 || st.ReceiverConversions != 1 {
		t.Fatal("scenario did not exercise both conversion directions")
	}
	// The per-precision counters must bucket the wire traffic as FP16.
	if v := eng.Metrics().Counter("engine/bytes_net/FP16").Value(); v != 2<<20 {
		t.Errorf("engine/bytes_net/FP16 = %d, want %d", v, 2<<20)
	}
	// Stream traces must be visible individually and integrate to the same
	// totals DeviceTrace merges.
	kernel, conv, h2d, d2h := eng.StreamIntervals(0)
	if len(kernel) != 1 || len(conv) != 1 || len(d2h) != 1 || len(h2d) != 0 {
		t.Errorf("dev0 stream counts kernel=%d conv=%d h2d=%d d2h=%d",
			len(kernel), len(conv), len(h2d), len(d2h))
	}
	busy, xfer := eng.DeviceTrace(0)
	if len(busy) != len(kernel)+len(conv) || len(xfer) != len(h2d)+len(d2h) {
		t.Error("DeviceTrace does not merge the per-stream slices")
	}
	if nic := eng.NICIntervals(0); len(nic) != 1 || nic[0].Bytes != 2<<20 {
		t.Errorf("NIC intervals %+v, want one 2 MiB send", nic)
	}
}

func TestAuditForcesTrace(t *testing.T) {
	g := newTestGraph(1)
	g.specs[0] = TaskSpec{Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e8,
		Output: OutputSpec{Data: 1, Bytes: 1 << 20}}
	eng := New(onePlat(t), g)
	eng.Audit = true
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(eng.ScheduleTrace()) != 1 {
		t.Error("Audit did not force Trace on")
	}
}
