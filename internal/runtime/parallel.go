package runtime

// Conservative rank-parallel discrete-event mode.
//
// The event space is partitioned by rank: each rank becomes a *shard* — a
// full Engine instance that owns only its rank's devices, NIC, host index
// and ready tasks — and shards advance their local virtual clocks
// concurrently in *burst rounds*, each bounded by a lookahead horizon
// derived from cross-rank communication (the null-message bound of
// conservative PDES, here computed from the receiver-side conversion +
// kernel time of the cheapest cross-rank task, since every cross-rank
// effect is applied at its sender completion's processing instant).
//
// Cross-rank effects travel as messages: a publish's remote host
// availability write (msgAvail) and a remote successor release (msgDec),
// both timestamped with the sender completion's virtual time. Messages are
// routed through the coordinator's *spine* — an incremental re-sequencer
// that replays every shard's commit/completion records in exact serial
// (time, sequence) order — and a message is only delivered to its receiver
// after the spine has replayed the sending completion. That gating makes
// each shard's inbox a prefix of the messages the serial engine would have
// sent, in serial order, which is what collapses all same-instant
// ambiguity: queued messages always apply before local events at an equal
// timestamp, because their senders provably precede the receiver's event in
// the serial sequence.
//
// The spine also re-emits the run's entire observable stream — schedule
// digest, schedule trace, task/H2D histograms, plan-recorder callbacks,
// fault log and task totals — in exact serial order, so digests, stats,
// audit invariants and factor bits are unchanged versus the serial engine
// at every worker count. Worker count only bounds how many shard bursts
// execute concurrently; it never changes round composition, so the result
// is bit-identical at 1, 2, N or more workers.

import (
	"fmt"
	"math"
	gort "runtime"
	"sort"

	"geompc/internal/comm"
	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/sched"
)

// ShardableGraph is the optional Graph capability parallel mode requires:
// a view of the graph that is safe for concurrent read-only use by all rank
// shards. Graphs whose accessors are pure reads return the receiver.
type ShardableGraph interface {
	Graph
	ShardView() Graph
}

const (
	msgAvail = iota
	msgDec
)

// desMsg is one cross-rank effect, applied at the sender completion's
// processing instant `at`.
type desMsg struct {
	at   float64
	task int32 // sending task (frame identity for spine-gated routing)
	to   int16 // destination rank
	kind uint8
	data DataID  // msgAvail: datum whose host copy becomes available
	val  float64 // msgAvail: availability time
	succ int32   // msgDec: released task
}

// desShard is one rank's event loop: a full Engine whose device/NIC/host
// state covers only its own rank, plus the message and record plumbing the
// coordinator uses to re-sequence the global run.
type desShard struct {
	e      *Engine
	rank   int
	rank16 int16

	// Shared read-only tables built by the coordinator's setup sweep.
	owner    []int16 // task id -> owning rank
	minCross float64 // min (convDur+kernelDur) over this rank's cross tasks

	// crossLeft counts this shard's cross completions not yet processed;
	// while positive, the frontier is bounded by clock+minCross (or the
	// earliest committed cross completion already in the heap).
	crossLeft int

	// Inbox: messages delivered by the coordinator in spine order
	// (nondecreasing at; within an instant, serial frame order).
	inMsgs []desMsg
	inHead int

	// Outbox and record log, drained by the coordinator at each barrier.
	outMsgs []desMsg
	recs    []desRec

	// Per-commit H2D record count, per-fault bookkeeping, and the id of
	// the completion currently being processed (stamps outgoing messages).
	h2dN        int32
	replayCount int32
	retryAt     float64
	curTask     int32

	succScratch []int

	// Goroutine plumbing: cmd/rep form the happens-before edges between
	// the coordinator and the shard's burst execution.
	cmd chan desCmd
	rep chan struct{}

	// Reply snapshot (written by the shard before rep, read after).
	rClock    float64
	rNext     float64 // earliest pending local item (event or queued msg)
	rFrontier float64 // earliest possible future cross-rank send
	rItems    int     // items processed by the last command

	// Deterministic per-rank gauges (excluded from the digest contract).
	nBurst, nLockstep, nApply, nFrontier, nStalls int64
	nMsgsIn, nMsgsOut                             int64
}

const (
	cmdSetup = iota
	cmdBurst
)

type desCmd struct {
	kind    uint8
	horizon float64
	max     int
}

// Record kinds a shard emits for the spine (see spine.go for consumption).
const (
	recKCommit = iota
	recKH2D
	recKEnqueue
	recKComplete
	recKDecDone
	recKFaultDone
)

// desRec is one shard-side record. One struct covers all kinds; the spine
// demultiplexes on kind.
type desRec struct {
	kind    uint8
	recov   bool // recKCommit: recovery replay; recKComplete: replay flag
	fkind   FaultKind
	dev     int32
	task    int32
	h2dN    int32
	replays int32
	tkind   hw.KernelKind
	prec    prec.Precision
	start   float64
	end     float64
	at      float64
	val     float64 // recKH2D: bytes
	bytes   int64
	flops   float64
	retryAt float64
}

// isCross reports whether spec's completion will send cross-rank messages:
// a publish naming a remote rank, or a successor owned by another rank.
//
//geompc:hot
func (sh *desShard) isCross(spec *TaskSpec) bool {
	if p := spec.Publish; p != nil {
		for _, rr := range p.RemoteRanks {
			if rr != sh.rank {
				return true
			}
		}
	}
	sh.succScratch = sh.e.g.Successors(spec.ID, sh.succScratch[:0])
	for _, s := range sh.succScratch {
		if sh.owner[s] != sh.rank16 {
			return true
		}
	}
	return false
}

//geompc:hot
func (sh *desShard) sendAvail(to int, data DataID, val float64) {
	sh.outMsgs = append(sh.outMsgs, desMsg{
		at: sh.e.now, task: sh.curTask, to: int16(to), kind: msgAvail, data: data, val: val,
	})
	sh.nMsgsOut++
}

//geompc:hot
func (sh *desShard) sendDec(succ int) {
	sh.outMsgs = append(sh.outMsgs, desMsg{
		at: sh.e.now, task: sh.curTask, to: int16(sh.owner[succ]), kind: msgDec, succ: int32(succ),
	})
	sh.nMsgsOut++
}

//geompc:hot
func (sh *desShard) recH2D(dev int, bytes float64) {
	sh.h2dN++
	sh.recs = append(sh.recs, desRec{kind: recKH2D, dev: int32(dev), val: bytes})
}

//geompc:hot
func (sh *desShard) recCommit(spec *TaskSpec, start, end float64, stagedBytes int64, recovery bool) {
	if recovery {
		sh.replayCount++
	}
	sh.recs = append(sh.recs, desRec{
		kind: recKCommit, recov: recovery, dev: int32(spec.Device), task: int32(spec.ID),
		h2dN: sh.h2dN, tkind: spec.Kind, prec: spec.Prec,
		start: start, end: end, bytes: stagedBytes, flops: spec.Flops,
	})
	sh.h2dN = 0
}

//geompc:hot
func (sh *desShard) recEnqueue(id, dev int) {
	sh.recs = append(sh.recs, desRec{kind: recKEnqueue, task: int32(id), dev: int32(dev)})
}

//geompc:hot
func (sh *desShard) recComplete(id int, replay bool) {
	sh.recs = append(sh.recs, desRec{kind: recKComplete, task: int32(id), recov: replay})
}

// loop is the shard goroutine: it executes coordinator commands, gated by
// the shared worker semaphore, and replies through rep. All shard state is
// owned by whichever side last synchronized through cmd/rep.
func (sh *desShard) loop(sem chan struct{}) {
	for c := range sh.cmd {
		sem <- struct{}{}
		switch c.kind {
		case cmdSetup:
			sh.setup()
		case cmdBurst:
			sh.burst(c.horizon, c.max)
		}
		<-sem
		sh.rep <- struct{}{}
	}
}

// setup mirrors the serial Run prologue for this rank only: scheduling
// resolution, host index (own-rank segment, stride 0), own devices and NIC,
// fault arming from the coordinator's pre-filtered plan, initial data and
// in-degrees for owned tasks, and the initial pipeline fill.
func (sh *desShard) setup() {
	e := sh.e
	n := e.g.NumTasks()
	e.resolveSched()
	e.hostAvail, e.hostDense, e.hostBound, e.hostStride = nil, nil, 0, 0
	if b, ok := e.g.(DataBounder); ok {
		if bound := b.DataIDBound(); bound >= 0 &&
			bound*int64(e.plat.Ranks) <= 1<<28 && bound*int64(e.plat.NumDevices()) <= 1<<28 {
			e.hostBound = int(bound)
			e.hostDense = make([]float64, e.hostBound)
			for i := range e.hostDense {
				e.hostDense[i] = hostAbsent
			}
		}
	}
	if e.hostDense == nil {
		e.hostAvail = make(map[hostKey]float64)
	}
	e.devices = make([]*device, e.plat.NumDevices())
	base := sh.rank * e.plat.DevPerRank
	for i := base; i < base+e.plat.DevPerRank; i++ {
		e.devices[i] = newDevice(i, sh.rank, e.plat.Node.GPU, e.Trace, e.hostBound, &e.ord)
	}
	e.nics = make([]*comm.Link, e.plat.Ranks)
	e.nics[sh.rank] = comm.NewLink(fmt.Sprintf("rank%d/nic", sh.rank), e.plat.Node.NICLink(), e.Trace)
	e.pending = make([]int32, n)
	e.events = e.events[:0]
	e.now, e.seq, e.inflight, e.done = 0, 0, 0, 0
	e.stats = Stats{}
	e.armed, e.fatalErr, e.inRecovery = false, nil, false
	if err := e.armFaults(); err != nil {
		e.fatalErr = err
		return
	}
	e.g.InitialData(func(d DataID, rank int) {
		if rank == sh.rank {
			e.setHostAvail(rank, d, 0)
		}
	})
	for id := 0; id < n; id++ {
		if sh.owner[id] != sh.rank16 {
			continue
		}
		e.pending[id] = int32(e.g.NumPredecessors(id))
		if e.pending[id] == 0 {
			e.enqueueReady(id)
		}
	}
	for i := base; i < base+e.plat.DevPerRank && e.fatalErr == nil; i++ {
		e.tryCommit(e.devices[i])
	}
	sh.computeReply()
}

// burst processes local timeline items — queued message frames merged with
// heap events by timestamp, messages first at an equal instant — strictly
// below the horizon, up to max items. Safe to run concurrently with other
// shards' bursts: every touched structure is shard-owned or read-only.
//
//geompc:hot
func (sh *desShard) burst(horizon float64, max int) {
	e := sh.e
	items := 0
	for items < max && e.fatalErr == nil {
		mAt := math.Inf(1)
		if sh.inHead < len(sh.inMsgs) {
			mAt = sh.inMsgs[sh.inHead].at
		}
		eAt := math.Inf(1)
		if len(e.events) > 0 {
			eAt = e.events[0].at
		}
		t := math.Min(mAt, eAt)
		if !(t < horizon) {
			break
		}
		if mAt <= eAt {
			sh.applyFrame()
		} else {
			sh.stepEvent()
		}
		items++
	}
	sh.nBurst += int64(items)
	sh.rItems = items
	sh.computeReply()
}

// stepEvent pops and processes exactly one heap event (completion or
// fault), emitting the records the spine needs to replay it.
//
//geompc:hot
func (sh *desShard) stepEvent() {
	e := sh.e
	ev := e.popEvent()
	e.now = ev.at
	if ev.fault != nil {
		sh.retryAt = math.Inf(-1)
		sh.replayCount = 0
		e.applyFault(ev.fault)
		sh.recs = append(sh.recs, desRec{
			kind: recKFaultDone, fkind: ev.fault.Kind, dev: int32(ev.fault.Device),
			at: ev.at, replays: sh.replayCount, retryAt: sh.retryAt,
		})
		return
	}
	sh.curTask = int32(ev.spec.ID)
	e.complete(&ev)
}

// applyFrame applies one message frame — all queued messages sharing the
// head's (at, task), i.e. the effects of one remote completion — and then
// feeds the pipelines of every device that gained ready work, mirroring the
// serial complete()'s dirty-device ordering restricted to this rank.
//
//geompc:hot
func (sh *desShard) applyFrame() {
	e := sh.e
	m0 := sh.inMsgs[sh.inHead]
	if m0.at < e.now {
		e.fatalErr = fmt.Errorf("runtime: parallel engine diverged: rank %d received message at t=%g behind local clock t=%g", sh.rank, m0.at, e.now) //geompc:nolint hotalloc divergence is fatal; rendered once at the end of a doomed run
		return
	}
	e.now = m0.at
	e.dirtyDevs = e.dirtyDevs[:0]
	for sh.inHead < len(sh.inMsgs) && e.fatalErr == nil {
		m := &sh.inMsgs[sh.inHead]
		if m.at != m0.at || m.task != m0.task {
			break
		}
		sh.inHead++
		sh.nMsgsIn++
		switch m.kind {
		case msgAvail:
			e.setHostAvail(sh.rank, m.data, m.val)
		case msgDec:
			s := int(m.succ)
			e.pending[s]--
			switch {
			case e.pending[s] == 0:
				dev := e.enqueueReady(s)
				if dd := e.devices[dev]; dd != nil && !dd.dirty {
					dd.dirty = true
					e.dirtyDevs = append(e.dirtyDevs, dev)
				}
			case e.pending[s] < 0:
				e.fail(&GraphError{Task: s, Msg: "released more than its in-degree"}) //geompc:nolint hotalloc cold malformed-graph path, run ends here
			}
			sh.recs = append(sh.recs, desRec{kind: recKDecDone, task: m.succ})
		}
	}
	for _, di := range e.dirtyDevs {
		dd := e.devices[di]
		dd.dirty = false
		e.tryCommit(dd)
	}
	// Compact the consumed prefix once it dominates the inbox (in place:
	// the backing array is reused, no allocation).
	if sh.inHead > 1024 && sh.inHead*2 > len(sh.inMsgs) {
		n := copy(sh.inMsgs, sh.inMsgs[sh.inHead:])
		sh.inMsgs = sh.inMsgs[:n]
		sh.inHead = 0
	}
}

// runStep is a lockstep command (coordinator goroutine, fully barriered):
// apply every queued message frame — all provably precede the target event
// in serial order — then pop and process exactly the event the spine
// identified. A mismatch means the parallel execution diverged.
func (sh *desShard) runStep(at float64, isFault bool, dev int32, task int32, replay bool) {
	e := sh.e
	for sh.inHead < len(sh.inMsgs) && e.fatalErr == nil {
		if sh.inMsgs[sh.inHead].at > at {
			e.fatalErr = fmt.Errorf("runtime: parallel engine diverged: rank %d queued message at t=%g past lockstep target t=%g", sh.rank, sh.inMsgs[sh.inHead].at, at)
			return
		}
		sh.applyFrame()
	}
	if e.fatalErr != nil {
		return
	}
	if len(e.events) == 0 {
		e.fatalErr = fmt.Errorf("runtime: parallel engine diverged: rank %d has no event at lockstep target t=%g", sh.rank, at)
		return
	}
	top := &e.events[0]
	ok := top.at == at
	if ok {
		if isFault {
			ok = top.fault != nil && int32(top.fault.Device) == dev
		} else {
			ok = top.fault == nil && int32(top.spec.ID) == task && top.replay == replay
		}
	}
	if !ok {
		e.fatalErr = fmt.Errorf("runtime: parallel engine diverged: rank %d event heap head does not match lockstep target (task %d at t=%g)", sh.rank, task, at)
		return
	}
	sh.stepEvent()
	sh.nLockstep++
	sh.computeReply()
}

// runApply is the other lockstep command: drain every queued message frame
// without touching the event heap (the spine is mid-frame, waiting for this
// rank to absorb a remote completion's releases).
func (sh *desShard) runApply() {
	e := sh.e
	applied := 0
	for sh.inHead < len(sh.inMsgs) && e.fatalErr == nil {
		sh.applyFrame()
		applied++
	}
	if applied == 0 && e.fatalErr == nil {
		e.fatalErr = fmt.Errorf("runtime: parallel engine diverged: rank %d asked to apply messages but its inbox is empty", sh.rank)
	}
	sh.nApply += int64(applied)
	sh.computeReply()
}

// computeReply snapshots the shard's timeline state for the coordinator:
// local clock, earliest pending item, and the conservative frontier — a
// lower bound on the time of any future cross-rank message this shard can
// send. While cross completions remain, that is the earlier of the first
// committed cross completion already in the heap and clock+minCross (any
// not-yet-committed cross task starts at or after the clock and runs for at
// least minCross).
//
//geompc:hot
func (sh *desShard) computeReply() {
	e := sh.e
	sh.nFrontier++
	next := math.Inf(1)
	if sh.inHead < len(sh.inMsgs) {
		next = sh.inMsgs[sh.inHead].at
	}
	if len(e.events) > 0 && e.events[0].at < next {
		next = e.events[0].at
	}
	sh.rNext = next
	fr := math.Inf(1)
	if sh.crossLeft > 0 {
		fr = e.now + sh.minCross
		for i := range e.events {
			if ev := &e.events[i]; ev.cross && ev.at < fr {
				fr = ev.at
			}
		}
	}
	sh.rFrontier = fr
	sh.rClock = e.now
}

// desCoord drives the shards and the spine from the caller's goroutine.
type desCoord struct {
	e      *Engine
	shards []*desShard
	spine  *desSpine
	sem    chan struct{}

	// pendRoute holds each shard's sent messages until the spine replays
	// the sending completion (spine-gated routing). Emission order is
	// serial frame order per rank, so each queue's timestamps are
	// nondecreasing and its head bounds the rank's effective frontier.
	pendRoute [][]desMsg
	pendHead  []int
}

// Burst sizing: items per shard per round, and the per-rank cap on spine
// records not yet consumed (a shard too far ahead of the spine pauses so
// coordinator memory stays bounded).
const (
	desBurstMax   = 4096
	desMaxBacklog = 1 << 14
)

// runParallel executes the run in conservative parallel DES mode. The third
// result reports whether parallel mode applied at all: single-rank
// platforms and graphs without a ShardView fall back to the serial loop.
func (e *Engine) runParallel() (Stats, error, bool) {
	sg, ok := e.g.(ShardableGraph)
	if !ok || e.plat.Ranks < 2 {
		return Stats{}, nil, false
	}
	if e.Audit {
		e.Trace = true
	}
	e.sealGraph()
	n := e.g.NumTasks()

	// Resolve the global fault plan once; shards arm from per-rank filters.
	var plan FaultPlan
	if e.injector != nil {
		plan = FaultPlan(e.injector.Plan(e.plat.NumDevices()))
	}
	if len(plan) > 0 {
		if err := plan.Validate(e.plat.NumDevices()); err != nil {
			return Stats{}, err, true
		}
	}

	workers := e.EngineWorkers
	if workers < 0 {
		workers = gort.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > e.plat.Ranks {
		workers = e.plat.Ranks
	}

	c := &desCoord{
		e:         e,
		sem:       make(chan struct{}, workers),
		pendRoute: make([][]desMsg, e.plat.Ranks),
		pendHead:  make([]int, e.plat.Ranks),
	}
	owner, minCross, crossCnt := c.sweep(n)

	// Top-level observability: the spine writes into the caller-visible
	// registry in exact serial order; shards observe nothing.
	e.metrics.Reset()
	e.hTaskSec = e.metrics.Histogram("engine/task_seconds", obs.ExpBuckets(1e-6, 4, 16))
	e.hH2DBytes = e.metrics.Histogram("engine/h2d_bytes", obs.ExpBuckets(4096, 4, 16))
	e.schedule = e.schedule[:0]
	e.bytesH2D, e.bytesD2H, e.bytesNet = [prec.Count]int64{}, [prec.Count]int64{}, [prec.Count]int64{}
	e.digest = obs.Digest{}
	e.auditViol = e.auditViol[:0]
	e.faultLog = e.faultLog[:0]
	e.stats = Stats{}
	e.armed, e.fatalErr, e.inRecovery = len(plan) > 0, nil, false
	e.now, e.seq, e.inflight = 0, 0, 0

	c.shards = make([]*desShard, e.plat.Ranks)
	for r := 0; r < e.plat.Ranks; r++ {
		se := New(e.plat, sg.ShardView())
		se.Trace = e.Trace
		se.Audit = e.Audit
		se.Lookahead = e.Lookahead
		se.Policy = e.Policy
		se.Bcast = e.Bcast
		var rplan FaultPlan
		for _, f := range plan {
			if e.plat.RankOfDevice(f.Device) == r {
				rplan = append(rplan, f)
			}
		}
		if len(rplan) > 0 {
			se.Inject(rplan)
		}
		sh := &desShard{
			e: se, rank: r, rank16: int16(r),
			owner: owner, minCross: minCross[r],
			cmd: make(chan desCmd), rep: make(chan struct{}),
		}
		se.shard = sh
		c.shards[r] = sh
		go sh.loop(c.sem)
	}
	defer func() {
		for _, sh := range c.shards {
			close(sh.cmd)
			if sh.e.workers != nil {
				sh.e.workers.close()
				sh.e.workers = nil
			}
		}
	}()

	// crossLeft starts at the rank's static cross-task count; it decrements
	// as cross completions are processed.
	for r, sh := range c.shards {
		sh.crossLeft = crossCnt[r]
	}

	// Concurrent per-rank setup (scheduling resolution, device creation,
	// initial enqueues and pipeline fill), then the spine's initial replay.
	for _, sh := range c.shards {
		sh.cmd <- desCmd{kind: cmdSetup}
	}
	for _, sh := range c.shards {
		<-sh.rep
	}
	if err := c.firstError(); err != nil {
		return Stats{}, err, true
	}
	c.spine = newDesSpine(c, n, plan)
	for _, sh := range c.shards {
		c.collect(sh)
	}
	c.spine.initialReplay()
	c.spine.catchUp()
	if err := c.firstError(); err != nil {
		return Stats{}, err, true
	}

	if err := c.mainLoop(n); err != nil {
		return Stats{}, err, true
	}
	st, err := c.merge()
	return st, err, true
}

// sweep precomputes the static shard tables in two O(n) passes: task
// ownership (pass 1 — successors may have smaller ids, so ownership must be
// complete before cross detection), then per-rank cross-task counts and the
// lookahead bound minCross = min over the rank's cross tasks of their
// receiver-side conversion + kernel time. Any cross task committed after a
// shard's clock t completes no earlier than t+minCross, which is what makes
// clock+minCross a safe frontier while cross completions remain.
func (c *desCoord) sweep(n int) (owner []int16, minCross []float64, crossCnt []int) {
	e := c.e
	owner = make([]int16, n)
	minCross = make([]float64, e.plat.Ranks)
	crossCnt = make([]int, e.plat.Ranks)
	for r := range minCross {
		minCross[r] = math.Inf(1)
	}
	spec := new(TaskSpec)
	for id := 0; id < n; id++ {
		e.g.Spec(id, spec)
		r := 0
		if spec.Device >= 0 && spec.Device < e.plat.NumDevices() {
			r = e.plat.RankOfDevice(spec.Device)
		}
		owner[id] = int16(r)
	}
	gpu := e.plat.Node.GPU
	var succ []int
	for id := 0; id < n; id++ {
		e.g.Spec(id, spec)
		r := owner[id]
		cross := false
		if p := spec.Publish; p != nil {
			for _, rr := range p.RemoteRanks {
				if rr != int(r) {
					cross = true
					break
				}
			}
		}
		if !cross {
			succ = e.g.Successors(id, succ[:0])
			for _, s := range succ {
				if owner[s] != r {
					cross = true
					break
				}
			}
		}
		if !cross {
			continue
		}
		crossCnt[r]++
		dur := 0.0
		for i := range spec.Inputs {
			if in := &spec.Inputs[i]; in.ConvertElems > 0 {
				dur += gpu.ConvertTime(in.ConvertElems, in.ConvFrom, in.ConvTo)
			}
		}
		if spec.Flops > 0 {
			dur += gpu.KernelTime(spec.Kind, spec.Prec, spec.Flops)
		}
		if dur < minCross[r] {
			minCross[r] = dur
		}
	}
	return owner, minCross, crossCnt
}

// firstError surfaces the lowest rank's fatal error — a deterministic pick
// regardless of which shard hit it first in wall-clock time.
func (c *desCoord) firstError() error {
	for _, sh := range c.shards {
		if sh.e.fatalErr != nil {
			return sh.e.fatalErr
		}
	}
	return nil
}

// collect drains a shard's outbox into the routing queue and its record log
// into the spine.
//
//geompc:hot
func (c *desCoord) collect(sh *desShard) {
	if len(sh.outMsgs) > 0 {
		c.pendRoute[sh.rank] = append(c.pendRoute[sh.rank], sh.outMsgs...)
		sh.outMsgs = sh.outMsgs[:0]
	}
	if len(sh.recs) > 0 {
		c.spine.demux(sh.rank, sh.recs)
		sh.recs = sh.recs[:0]
	}
}

// routeFrame delivers the messages a completion frame sent, called by the
// spine exactly when it replays that frame. Frame messages sit contiguously
// at the routing queue's head (emission order is frame order).
//
//geompc:hot
func (c *desCoord) routeFrame(rank int, task int32) {
	q := c.pendRoute[rank]
	h := c.pendHead[rank]
	for h < len(q) && q[h].task == task {
		m := q[h]
		h++
		dst := c.shards[m.to]
		dst.inMsgs = append(dst.inMsgs, m)
	}
	c.pendHead[rank] = h
	if h > 1024 && h*2 > len(q) {
		n := copy(q, q[h:])
		c.pendRoute[rank] = q[:n]
		c.pendHead[rank] = 0
	}
}

// effFrontier is rank r's effective frontier: the earlier of its reported
// frontier and its oldest unrouted message (sent, but not yet released by
// the spine — it will reach its receiver with that timestamp).
//
//geompc:hot
func (c *desCoord) effFrontier(r int) float64 {
	f := c.shards[r].rFrontier
	if h := c.pendHead[r]; h < len(c.pendRoute[r]) {
		if at := c.pendRoute[r][h].at; at < f {
			f = at
		}
	}
	return f
}

// effNext is rank r's earliest pending item, including messages the
// coordinator delivered after the shard's last reply.
//
//geompc:hot
func (c *desCoord) effNext(sh *desShard) float64 {
	next := sh.rNext
	if sh.inHead < len(sh.inMsgs) {
		if at := sh.inMsgs[sh.inHead].at; at < next {
			next = at
		}
	}
	return next
}

// mainLoop alternates burst rounds (all eligible shards advance
// concurrently below their horizons) with lockstep steps (the spine
// identifies the serially-next event and the coordinator executes exactly
// that) until every task is done. Round composition depends only on
// deterministic shard state, never on worker count or wall-clock timing.
func (c *desCoord) mainLoop(n int) error {
	eligible := make([]*desShard, 0, len(c.shards))
	horizons := make([]float64, len(c.shards))
	stagnant := 0
	for c.spine.done < n {
		if err := c.firstError(); err != nil {
			return err
		}
		if err := c.spine.err; err != nil {
			return err
		}
		eligible = eligible[:0]
		for r, sh := range c.shards {
			// Horizon: the min effective frontier over all *other* shards.
			h := math.Inf(1)
			for o := range c.shards {
				if o == r {
					continue
				}
				if f := c.effFrontier(o); f < h {
					h = f
				}
			}
			horizons[r] = h
			if c.effNext(sh) < h && c.spine.backlog[r] < desMaxBacklog {
				eligible = append(eligible, sh)
			} else if !math.IsInf(c.effNext(sh), 1) {
				sh.nStalls++
			}
		}
		before := c.spine.consumed
		if len(eligible) > 0 {
			for _, sh := range eligible {
				sh.cmd <- desCmd{kind: cmdBurst, horizon: horizons[sh.rank], max: desBurstMax}
			}
			progressed := false
			for _, sh := range eligible {
				<-sh.rep
				if sh.rItems > 0 {
					progressed = true
				}
			}
			for _, sh := range c.shards {
				c.collect(sh)
			}
			c.spine.catchUp()
			if progressed || c.spine.consumed > before {
				stagnant = 0
				continue
			}
		} else {
			if done, err := c.lockstep(n); done || err != nil {
				return err
			}
			if c.spine.consumed > before || c.spine.err != nil || c.firstError() != nil {
				stagnant = 0
				continue
			}
		}
		stagnant++
		if stagnant > 2 {
			return fmt.Errorf("runtime: parallel engine stalled with %d of %d tasks done", c.spine.done, n)
		}
	}
	return nil
}

// lockstep executes exactly the spine's next serial step. It returns
// done=true when the spine proves the remaining tasks can never run (the
// serial engine's dependency-cycle condition).
func (c *desCoord) lockstep(n int) (bool, error) {
	s := c.spine
	switch s.stallKind {
	case stallApply:
		sh := c.shards[s.stallRank]
		sh.runApply()
		c.collect(sh)
		s.catchUp()
		return false, nil
	case stallShard:
		sh := c.shards[s.stallRank]
		sh.runStep(s.stallAt, s.stallFault, s.stallDev, s.stallTask, s.stallReplay)
		if err := sh.e.fatalErr; err != nil {
			return false, err
		}
		c.collect(sh)
		s.catchUp()
		return false, nil
	default:
		// No stall and no eligible shard: nothing is replayable. If tasks
		// remain, the serial engine would have drained its heap and
		// reported the cycle; mirror that exactly.
		if s.done != n {
			return true, fmt.Errorf("runtime: %d of %d tasks never became ready (dependency cycle or missing data)", n-s.done, n)
		}
		return true, nil
	}
}

// merge assembles the run's results on the top engine: each shard's rank
// slice of machine state (devices, NIC) slots into the full arrays, the
// order-free aggregates sum across shards, and the serially-ordered totals
// come from the spine. finalizeStats and the audit then run unchanged on
// the merged state — the same closing code path as a serial run.
func (c *desCoord) merge() (Stats, error) {
	e := c.e
	s := c.spine
	e.devices = make([]*device, e.plat.NumDevices())
	e.nics = make([]*comm.Link, e.plat.Ranks)
	for r, sh := range c.shards {
		base := r * e.plat.DevPerRank
		for i := base; i < base+e.plat.DevPerRank; i++ {
			e.devices[i] = sh.e.devices[i]
		}
		e.nics[r] = sh.e.nics[r]
	}
	e.done = s.done
	e.stats.Tasks = s.tasks
	e.stats.TotalFlops = s.totalFlops
	for _, sh := range c.shards {
		st := &sh.e.stats
		e.stats.BytesNet += st.BytesNet
		e.stats.SenderConversions += st.SenderConversions
		e.stats.ReceiverConversions += st.ReceiverConversions
		e.stats.DeviceFailures += st.DeviceFailures
		e.stats.TransientFaults += st.TransientFaults
		e.stats.RetriedTasks += st.RetriedTasks
		e.stats.ReplayedTasks += st.ReplayedTasks
		e.stats.RecoveryBytes += st.RecoveryBytes
		for p := 0; p < prec.Count; p++ {
			e.bytesH2D[p] += sh.e.bytesH2D[p]
			e.bytesD2H[p] += sh.e.bytesD2H[p]
			e.bytesNet[p] += sh.e.bytesNet[p]
		}
		if len(sh.e.orphan) > 0 {
			if e.orphan == nil {
				e.orphan = make(map[int]chan struct{})
			}
			ids := make([]int, 0, len(sh.e.orphan))
			for id := range sh.e.orphan {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				e.orphan[id] = sh.e.orphan[id]
			}
		}
		for _, v := range sh.e.auditViol {
			if len(e.auditViol) < maxAuditViolations {
				e.auditViol = append(e.auditViol, v)
			}
		}
	}
	// Resolve the run's policy/topology names for publishMetrics without a
	// full resolveSched (no comparator or critical path is needed anymore).
	e.policy = e.Policy
	if e.policy == nil {
		e.policy = sched.FIFO{}
	}
	e.topo = e.Bcast
	if e.topo == nil {
		e.topo = comm.Binomial{}
	}
	e.finalizeStats()
	// Parallel-engine introspection gauges. These are deliberately outside
	// the digest/stats contract (destest filters engine/des/* and
	// engine/rank*/des_* when comparing registries): burst/lockstep mix and
	// stall counts describe the execution strategy, not the simulated run.
	for r, sh := range c.shards {
		pfx := fmt.Sprintf("engine/rank%d/", r)
		e.metrics.Gauge(pfx + "des_burst_events").Set(float64(sh.nBurst))
		e.metrics.Gauge(pfx + "des_lockstep_events").Set(float64(sh.nLockstep))
		e.metrics.Gauge(pfx + "des_apply_steps").Set(float64(sh.nApply))
		e.metrics.Gauge(pfx + "des_frontier_evals").Set(float64(sh.nFrontier))
		e.metrics.Gauge(pfx + "des_sync_stalls").Set(float64(sh.nStalls))
		e.metrics.Gauge(pfx + "des_msgs_in").Set(float64(sh.nMsgsIn))
		e.metrics.Gauge(pfx + "des_msgs_out").Set(float64(sh.nMsgsOut))
	}
	e.metrics.Gauge("engine/des/workers").Set(float64(cap(c.sem)))
	e.metrics.Gauge("engine/des/ranks").Set(float64(len(c.shards)))
	if e.Audit {
		e.auditFinal()
		if len(e.auditViol) > 0 {
			return e.stats, fmt.Errorf("runtime: audit found %d invariant violation(s): %v", len(e.auditViol), e.auditViol)
		}
	}
	return e.stats, nil
}
