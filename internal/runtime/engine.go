package runtime

import (
	"fmt"
	"math"
	gort "runtime"

	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
)

// Engine executes a Graph on a Platform, producing virtual-time statistics
// and (when task bodies are present) real numeric results.
type Engine struct {
	plat *Platform
	g    Graph

	// Trace enables per-interval power/occupancy recording on all devices
	// (used by the Fig 9/10 experiments; costs memory on large runs).
	Trace bool

	// Audit enables the run-invariant auditor: pin-count balance at
	// completion, LRU residency within device memory whenever evictable
	// tiles exist, and exact energy conservation between the interval
	// traces and Stats.Energy. Auditing forces Trace on; Run returns an
	// error listing the violations, if any.
	Audit bool

	// Lookahead is the number of tasks each device pipeline accepts ahead
	// of execution (stream double-buffering). Default 2.
	Lookahead int

	devices      []*device
	nicFree      []float64
	nicIntervals [][]Interval // per rank, Trace only
	// Host-availability index: when the graph implements DataBounder the
	// dense per-(rank,data) table is used (one flat slice, -1 = absent);
	// otherwise the map fallback. The dense form removes a map lookup per
	// staged input — the hottest read on the phantom scale path.
	hostAvail    map[hostKey]float64
	hostDense    []float64
	hostDenseBuf []float64 // retained across runs to avoid regrowth
	hostBound    int
	pending   []int32
	events    []event
	specFree  []*TaskSpec
	seq       int64
	now       float64
	succBuf   []int
	inflight  int
	done      int
	dirtyDevs []int

	// Fault injection (see faults.go / recovery.go). Everything below is
	// dormant — and provably free — unless `armed` is set, which happens
	// only when an injector's plan contains at least one event: a silent
	// injector leaves every code path, allocation and digest bit-identical
	// to an engine without fault support.
	injector FaultInjector
	armed    bool
	fatalErr error
	// orphan holds the result channels of numeric bodies whose virtual task
	// was aborted by a device failure: the body already ran (bodies execute
	// eagerly at commit), so the re-commit on a survivor joins the original
	// channel instead of running the body twice — which is what keeps the
	// recovered factor bit-identical to a fault-free run.
	orphan map[int]chan struct{}
	// lineage tracks, per datum, the completed writers since the last host
	// sync (publish or eviction writeback). When a device dies, each of its
	// dirty resident tiles is reconstructed by re-executing this chain on a
	// survivor; a published or written-back tile needs only a re-fetch.
	lineage  map[DataID][]int
	lineageG LineageGraph // optional graph hook, audit cross-check
	// inRecovery marks commits issued by the recovery path (lineage
	// replays): their bodies never run and their completion releases no
	// successors.
	inRecovery bool
	aliveBuf   []int
	abortBuf   []*TaskSpec
	faultLog   []faultMark

	workers *workerPool

	schedule []ScheduledTask

	// observability: per-wire-precision byte totals, the schedule digest,
	// the metrics registry resolved once per run, and audit violations.
	bytesH2D  [prec.Count]int64
	bytesD2H  [prec.Count]int64
	bytesNet  [prec.Count]int64
	digest    obs.Digest
	metrics   *obs.Registry
	hTaskSec  *obs.Histogram
	hH2DBytes *obs.Histogram
	auditViol []string

	stats Stats
}

// ScheduledTask records one task's placement in the simulated schedule
// (recorded only when Trace is enabled).
type ScheduledTask struct {
	ID         int
	Kind       hw.KernelKind
	Device     int
	Prec       prec.Precision
	Start, End float64
	// Recovery marks work issued by the fault-recovery path: lineage
	// replays reconstructing lost tiles, and transient-fault retries.
	Recovery bool
}

type hostKey struct {
	rank int
	data DataID
}

// hostAbsent marks a (rank, data) slot of the dense host index with no host
// copy; availability times are always ≥ 0.
const hostAbsent = -1.0

func (e *Engine) setHostAvail(rank int, d DataID, at float64) {
	if e.hostDense != nil {
		e.hostDense[rank*e.hostBound+int(d)] = at
		return
	}
	e.hostAvail[hostKey{rank, d}] = at
}

func (e *Engine) lookupHostAvail(rank int, d DataID) (float64, bool) {
	if e.hostDense != nil {
		v := e.hostDense[rank*e.hostBound+int(d)]
		return v, v != hostAbsent
	}
	v, ok := e.hostAvail[hostKey{rank, d}]
	return v, ok
}

// Stats aggregates a run.
type Stats struct {
	// Makespan is the virtual time from start to the last task completion.
	Makespan float64
	// TotalFlops across all tasks.
	TotalFlops float64
	// Performance in flop/s (TotalFlops / Makespan).
	Flops float64
	// Data motion totals.
	BytesH2D, BytesD2H, BytesNet int64
	// Conversion counts: sender-side (STC) and receiver-side (TTC).
	SenderConversions, ReceiverConversions int
	// Energy in joules: dynamic compute + transfer + idle over makespan,
	// summed over all devices.
	Energy float64
	// AvgPower = Energy / Makespan.
	AvgPower float64
	// Tasks executed.
	Tasks int
	// ScheduleDigest is an FNV-1a hash over every committed task's
	// (kind, device, start, end, bytes) record. Equal digests prove two
	// runs produced bit-identical schedules — across GOMAXPROCS settings
	// and across the PTG and DTD front-ends (task ids are not hashed
	// because the front-ends number tasks differently).
	ScheduleDigest uint64
	// Fault/recovery accounting — non-zero only when a FaultInjector armed
	// the run (see Engine.Inject).
	DeviceFailures  int   // devices lost to FaultKill
	TransientFaults int   // FaultTransient events delivered
	RetriedTasks    int   // tasks re-executed in place after a transient fault
	ReplayedTasks   int   // lineage re-executions reconstructing lost tiles
	RecoveryBytes   int64 // host-link bytes staged by lineage replays
	// Per-device aggregates.
	Devices []DeviceStats
}

// event is a committed task's completion notice in virtual time. The heap
// is hand-rolled (pushEvent/popEvent) rather than container/heap: events are
// plain values on one slice, so pushing never boxes through an interface —
// the seed allocated one escape per event push and one per flight record.
type event struct {
	at     float64
	seq    int64
	spec   *TaskSpec
	result chan struct{} // non-nil when a numeric body runs; closed at finish
	// start is the compute-stream start of the task (retry cost basis).
	start float64
	// fault, when non-nil, makes this a fault-injection event (spec is nil).
	fault *FaultEvent
	// replay marks a recovery re-execution: complete() releases no
	// successors and counts it separately.
	replay bool
}

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) pushEvent(ev event) {
	h := append(e.events, ev)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !eventBefore(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.events = h
}

func (e *Engine) popEvent() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDownEvent(h, 0)
	e.events = h
	return top
}

func siftDownEvent(h []event, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && eventBefore(&h[l], &h[m]) {
			m = l
		}
		if r < n && eventBefore(&h[r], &h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapifyEvents restores the heap invariant after the recovery path edited
// the slice in place (removing a dead device's completions, or retiming a
// retried task). O(n), and only ever runs on a fault — never on the hot
// fault-free path.
func (e *Engine) heapifyEvents() {
	for i := len(e.events)/2 - 1; i >= 0; i-- {
		siftDownEvent(e.events, i)
	}
}

// taskHeap orders ready tasks by descending priority, then ascending id —
// a total order, which keeps the simulation deterministic.
type taskHeap []*TaskSpec

func taskBefore(a, b *TaskSpec) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

func (h taskHeap) Len() int { return len(h) }

func (h *taskHeap) push(t *TaskSpec) {
	s := append(*h, t)
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !taskBefore(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *taskHeap) pop() *TaskSpec {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && taskBefore(s[l], s[m]) {
			m = l
		}
		if r < n && taskBefore(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// DataBounder is an optional Graph capability: a graph whose DataIDs all lie
// in [0, DataIDBound()) lets the engine replace the host-availability map
// with a dense per-rank table.
type DataBounder interface {
	DataIDBound() int64
}

// New prepares an engine for one run of g on plat.
func New(plat *Platform, g Graph) *Engine {
	return &Engine{plat: plat, g: g, Lookahead: 2, metrics: obs.NewRegistry()}
}

// Metrics returns the engine's metrics registry, populated by Run (and
// reset at the start of every Run).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Inject arms subsequent Runs with a fault injector. A nil injector — or
// one whose Plan is empty — is silent: the engine stays unarmed and every
// code path, timing and schedule digest is bit-identical to an engine that
// never saw fault support. Plans with events are validated at Run.
func (e *Engine) Inject(fi FaultInjector) { e.injector = fi }

// Run executes the task system to completion and returns the run's
// statistics. It panics on malformed graphs (missing data, dependency
// cycles leave tasks unexecuted and are reported as an error). With Audit
// enabled, invariant violations are reported as an error after the run.
func (e *Engine) Run() (Stats, error) {
	if e.Audit {
		e.Trace = true // the energy-conservation check needs the intervals
	}
	n := e.g.NumTasks()
	e.hostAvail, e.hostDense, e.hostBound = nil, nil, 0
	if b, ok := e.g.(DataBounder); ok {
		// Cap the dense tables' footprint; graphs with huge sparse id
		// spaces fall back to the maps.
		if bound := b.DataIDBound(); bound >= 0 &&
			bound*int64(e.plat.Ranks) <= 1<<28 && bound*int64(e.plat.NumDevices()) <= 1<<28 {
			e.hostBound = int(bound)
			need := e.hostBound * e.plat.Ranks
			if cap(e.hostDenseBuf) < need {
				e.hostDenseBuf = make([]float64, need)
			}
			e.hostDense = e.hostDenseBuf[:need]
			for i := range e.hostDense {
				e.hostDense[i] = hostAbsent
			}
		}
	}
	if e.hostDense == nil {
		e.hostAvail = make(map[hostKey]float64)
	}
	e.devices = make([]*device, e.plat.NumDevices())
	for i := range e.devices {
		e.devices[i] = newDevice(i, e.plat.RankOfDevice(i), e.plat.Node.GPU, e.Trace, e.hostBound)
	}
	e.nicFree = make([]float64, e.plat.Ranks)
	e.nicIntervals = nil
	if e.Trace {
		e.nicIntervals = make([][]Interval, e.plat.Ranks)
	}
	if cap(e.pending) >= n {
		e.pending = e.pending[:n]
	} else {
		e.pending = make([]int32, n)
	}
	e.events = e.events[:0]
	e.now, e.seq, e.inflight, e.done = 0, 0, 0, 0
	e.stats = Stats{}
	e.schedule = e.schedule[:0]
	e.bytesH2D, e.bytesD2H, e.bytesNet = [prec.Count]int64{}, [prec.Count]int64{}, [prec.Count]int64{}
	e.digest = obs.Digest{}
	e.auditViol = e.auditViol[:0]
	e.armed, e.fatalErr, e.inRecovery = false, nil, false
	e.faultLog = e.faultLog[:0]
	if err := e.armFaults(); err != nil {
		return Stats{}, err
	}
	e.metrics.Reset()
	e.hTaskSec = e.metrics.Histogram("engine/task_seconds", obs.ExpBuckets(1e-6, 4, 16))
	e.hH2DBytes = e.metrics.Histogram("engine/h2d_bytes", obs.ExpBuckets(4096, 4, 16))
	// The worker pool spins up lazily, on the first task that carries a
	// numeric body — phantom runs never pay for goroutine creation.
	defer func() {
		if e.workers != nil {
			e.workers.close()
			e.workers = nil
		}
	}()

	e.g.InitialData(func(d DataID, rank int) {
		e.setHostAvail(rank, d, 0)
	})

	for id := 0; id < n; id++ {
		e.pending[id] = int32(e.g.NumPredecessors(id))
		if e.pending[id] == 0 {
			e.enqueueReady(id)
		}
	}
	for i := range e.devices {
		e.tryCommit(e.devices[i])
	}

	for len(e.events) > 0 {
		ev := e.popEvent()
		e.now = ev.at
		if ev.fault != nil {
			e.applyFault(ev.fault)
		} else {
			e.complete(&ev)
		}
		if e.fatalErr != nil {
			return Stats{}, e.fatalErr
		}
	}

	if e.done != n {
		return Stats{}, fmt.Errorf("runtime: %d of %d tasks never became ready (dependency cycle or missing data)", n-e.done, n)
	}
	e.finalizeStats()
	if e.Audit {
		e.auditFinal()
		if len(e.auditViol) > 0 {
			return e.stats, fmt.Errorf("runtime: audit found %d invariant violation(s): %v", len(e.auditViol), e.auditViol)
		}
	}
	return e.stats, nil
}

// AuditViolations returns the invariant violations collected during an
// audited run (nil when clean or when Audit was off).
func (e *Engine) AuditViolations() []string { return e.auditViol }

func (e *Engine) enqueueReady(id int) int {
	var spec *TaskSpec
	if n := len(e.specFree); n > 0 {
		// Recycled spec: completed tasks return their TaskSpec (and the
		// allocations reachable from it) for the graph to refill.
		spec = e.specFree[n-1]
		e.specFree = e.specFree[:n-1]
	} else {
		spec = &TaskSpec{}
	}
	e.g.Spec(id, spec)
	spec.ID = id
	if spec.Device < 0 || spec.Device >= len(e.devices) {
		panic(fmt.Sprintf("runtime: task %d assigned to invalid device %d", id, spec.Device))
	}
	d := e.devices[spec.Device]
	if e.armed && d.deadAt >= 0 {
		// The task's home device has failed: deterministically reroute it
		// to a same-rank survivor (host copies are per rank).
		t := e.failoverFor(d, failoverKey(spec))
		if t < 0 {
			e.fatalErr = fmt.Errorf("runtime: task %d unrecoverable: rank %d has no surviving device", id, d.rank)
			e.specFree = append(e.specFree, spec)
			return d.id
		}
		spec.Device = t
		d = e.devices[t]
	}
	d.ready.push(spec)
	if d.ready.Len() > d.maxReady {
		d.maxReady = d.ready.Len()
	}
	return d.id
}

// tryCommit feeds the device's stream pipeline up to the lookahead depth.
func (e *Engine) tryCommit(d *device) {
	if d.deadAt >= 0 {
		return
	}
	for d.committed < e.Lookahead && d.ready.Len() > 0 {
		e.commit(d, d.ready.pop())
	}
}

// commit stages a task's data onto the device and schedules its execution.
func (e *Engine) commit(d *device, spec *TaskSpec) {
	if e.Audit && d.deadAt >= 0 {
		e.violate("task %d committed to dev%d at t=%g, after its failure at t=%g",
			spec.ID, d.id, e.now, d.deadAt)
	}
	stagingEnd := e.now
	var sink evictSink
	var stagedBytes int64

	stage := func(data DataID, bytes int64, wp prec.Precision, isOutput bool) {
		stagedBytes += bytes
		if entry := d.touch(data); entry != nil {
			d.pin(data)
			d.stats.LRUHits++
			if isOutput {
				entry.hostCopy = false // it is about to be overwritten
			}
			return
		}
		d.stats.LRUMisses++
		avail, ok := e.lookupHostAvail(d.rank, data)
		if !ok {
			if isOutput {
				// Fresh output with no prior contents: allocate only.
				d.insert(data, bytes, wp, false, e.now, &sink)
				d.pin(data)
				return
			}
			panic(fmt.Sprintf("runtime: task %d input %d not available at rank %d", spec.ID, data, d.rank))
		}
		start := math.Max(d.h2dFree, math.Max(avail, e.now))
		dur := d.spec.H2DTime(bytes)
		if e.armed {
			dur *= d.slowFactor(start)
		}
		d.h2dFree = start + dur
		d.h2dBusy += dur
		d.stats.BytesH2D += bytes
		e.bytesH2D[wp] += bytes
		d.stats.TransferTime += dur
		if d.trace {
			d.h2dIntervals = append(d.h2dIntervals, Interval{Start: start, End: start + dur, Power: d.spec.TransferW, Bytes: bytes})
		}
		e.hH2DBytes.Observe(float64(bytes))
		d.stats.DynEnergy += d.spec.TransferW * dur
		if start+dur > stagingEnd {
			stagingEnd = start + dur
		}
		d.insert(data, bytes, wp, !isOutput, e.now, &sink)
		d.pin(data)
	}

	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		stage(in.Data, in.WireBytes, in.WirePrec, false)
	}
	if spec.Output.Data >= 0 {
		stage(spec.Output.Data, spec.Output.Bytes, spec.Output.Prec, true)
	}
	e.drainWritebacks(d, &sink)
	if e.inRecovery {
		e.stats.RecoveryBytes += stagedBytes
	}
	if e.Audit {
		e.auditResidency(d, spec.ID)
	}

	// Receiver-side conversions run on the compute stream before the kernel.
	var convDur float64
	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		if in.ConvertElems > 0 {
			convDur += d.spec.ConvertTime(in.ConvertElems, in.ConvFrom, in.ConvTo)
			e.stats.ReceiverConversions++
			d.stats.ConvertKernels++
		}
	}

	kernelDur := 0.0
	if spec.Flops > 0 {
		kernelDur = d.spec.KernelTime(spec.Kind, spec.Prec, spec.Flops)
	}
	start := math.Max(d.computeFree, stagingEnd)
	end := start + convDur + kernelDur
	d.computeFree = end
	d.committed++

	d.stats.BusyTime += convDur + kernelDur
	d.stats.Flops += spec.Flops
	dynW := d.spec.DynPower(spec.Prec)
	d.stats.DynEnergy += dynW*kernelDur + convPowerFrac*(d.spec.TDP-d.spec.IdleW)*convDur
	if d.trace {
		// Conversion and kernel windows carry their own power levels so the
		// traced intervals integrate exactly to the energy accrued above.
		if convDur > 0 {
			d.convIntervals = append(d.convIntervals, Interval{Start: start, End: start + convDur, Power: convPowerFrac * (d.spec.TDP - d.spec.IdleW)})
		}
		if end > start+convDur {
			d.busyIntervals = append(d.busyIntervals, Interval{Start: start + convDur, End: end, Power: dynW})
		}
		e.schedule = append(e.schedule, ScheduledTask{
			ID: spec.ID, Kind: spec.Kind, Device: spec.Device, Prec: spec.Prec, Start: start, End: end,
			Recovery: e.inRecovery,
		})
	}
	e.hTaskSec.Observe(end - start)
	e.digest.WriteString(string(spec.Kind))
	e.digest.WriteInt64(int64(spec.Device))
	e.digest.WriteFloat64(start)
	e.digest.WriteFloat64(end)
	e.digest.WriteInt64(stagedBytes)

	var result chan struct{}
	if body := spec.Body; body != nil && !e.inRecovery {
		if ch, orphaned := e.orphan[spec.ID]; e.armed && orphaned {
			// The body already ran on a device that has since failed
			// (bodies execute eagerly at commit). Re-execution of a
			// deterministic kernel recomputes the same bits, so only the
			// virtual cost repeats — join the original result instead of
			// running the body a second time.
			result = ch
			delete(e.orphan, spec.ID)
		} else {
			if e.workers == nil {
				e.workers = newWorkerPool(gort.GOMAXPROCS(0))
			}
			result = make(chan struct{})
			done := result
			e.workers.submit(func() {
				body()
				close(done)
			})
		}
	}
	e.seq++
	e.pushEvent(event{at: end, seq: e.seq, spec: spec, result: result, start: start, replay: e.inRecovery})
	e.inflight++
}

// convPowerFrac is the fraction of the dynamic power range a datatype
// conversion kernel draws (memory-bound, low arithmetic intensity).
const convPowerFrac = 0.25

// drainWritebacks turns evicted dirty tiles into D2H transfers and restores
// their host copies.
func (e *Engine) drainWritebacks(d *device, sink *evictSink) {
	for _, wb := range sink.writebacks {
		start := math.Max(d.d2hFree, e.now)
		dur := d.spec.D2HTime(wb.bytes)
		if e.armed {
			dur *= d.slowFactor(start)
		}
		d.d2hFree = start + dur
		d.d2hBusy += dur
		d.stats.BytesD2H += wb.bytes
		e.bytesD2H[wb.prec] += wb.bytes
		d.stats.TransferTime += dur
		d.stats.DynEnergy += d.spec.TransferW * dur
		if d.trace {
			d.d2hIntervals = append(d.d2hIntervals, Interval{Start: start, End: start + dur, Power: d.spec.TransferW, Bytes: wb.bytes})
		}
		e.setHostAvail(d.rank, wb.data, start+dur)
		if e.armed {
			// The writeback restored a current host copy; the datum no
			// longer needs lineage re-execution if this device dies.
			e.lineage[wb.data] = e.lineage[wb.data][:0]
		}
	}
	sink.writebacks = sink.writebacks[:0]
}

// complete processes a task's completion event: joins the numeric body,
// publishes the output, and releases successors.
//
// The flight.result join is the synchronization point between virtual and
// real time: a task's numeric body runs on the worker pool as soon as the
// task commits, but its *effects* (the produced tile, the error flag) may
// only be observed by successors after this receive, which blocks until the
// body's goroutine closes the channel. Virtual completion order therefore
// bounds real dataflow order — successors never read a tile whose producer
// body is still running, regardless of GOMAXPROCS.
func (e *Engine) complete(ev *event) {
	spec := ev.spec
	d := e.devices[spec.Device]
	if ev.result != nil {
		<-ev.result
	}

	for i := range spec.Inputs {
		d.unpin(spec.Inputs[i].Data)
	}
	if spec.Output.Data >= 0 {
		d.unpin(spec.Output.Data)
	}

	if ev.replay {
		// A lineage replay only reconstructs device state: it releases no
		// successors, publishes nothing and counts toward the recovery
		// stats, not the run's task total.
		e.inflight--
		d.committed--
		e.stats.ReplayedTasks++
		e.specFree = append(e.specFree, spec)
		e.tryCommit(d)
		return
	}

	if p := spec.Publish; p != nil {
		e.publish(d, spec, p)
		if e.armed && spec.Output.Data >= 0 {
			e.lineage[spec.Output.Data] = e.lineage[spec.Output.Data][:0]
		}
	} else if e.armed && spec.Output.Data >= 0 {
		// The output stays dirty on this device: remember its writer so a
		// device failure can re-derive the tile from the last host copy.
		e.lineage[spec.Output.Data] = append(e.lineage[spec.Output.Data], spec.ID)
	}

	e.done++
	e.inflight--
	d.committed--
	e.stats.Tasks++
	e.stats.TotalFlops += spec.Flops

	e.succBuf = e.g.Successors(spec.ID, e.succBuf[:0])
	e.dirtyDevs = e.dirtyDevs[:0]
	e.dirtyDevs = append(e.dirtyDevs, d.id)
	d.dirty = true
	for _, s := range e.succBuf {
		e.pending[s]--
		switch {
		case e.pending[s] == 0:
			dev := e.enqueueReady(s)
			if dd := e.devices[dev]; !dd.dirty {
				dd.dirty = true
				e.dirtyDevs = append(e.dirtyDevs, dev)
			}
		case e.pending[s] < 0:
			panic(fmt.Sprintf("runtime: task %d released more than its in-degree", s))
		}
	}
	// The task is fully retired; its spec (and the slices hanging off it)
	// goes back to the freelist for the next enqueueReady to refill.
	e.specFree = append(e.specFree, spec)
	// Feed the pipelines of every device that finished a task or gained a
	// ready one.
	for _, di := range e.dirtyDevs {
		dd := e.devices[di]
		dd.dirty = false
		e.tryCommit(dd)
	}
}

// publish performs STC conversion, D2H, and the network broadcast of a
// task's output, making it available in host memory at consumer ranks.
func (e *Engine) publish(d *device, spec *TaskSpec, p *PublishSpec) {
	t := e.now
	if p.ConvertElems > 0 {
		// Sender-side conversion on the producer's compute stream.
		dur := d.spec.ConvertTime(p.ConvertElems, p.ConvFrom, p.ConvTo)
		start := math.Max(d.computeFree, t)
		d.computeFree = start + dur
		t = start + dur
		d.stats.BusyTime += dur
		d.stats.DynEnergy += convPowerFrac * (d.spec.TDP - d.spec.IdleW) * dur
		d.stats.ConvertKernels++
		e.stats.SenderConversions++
		if d.trace {
			d.convIntervals = append(d.convIntervals, Interval{Start: start, End: t, Power: convPowerFrac * (d.spec.TDP - d.spec.IdleW)})
		}
	}
	// D2H of the wire representation.
	start := math.Max(d.d2hFree, t)
	dur := d.spec.D2HTime(p.WireBytes)
	if e.armed {
		dur *= d.slowFactor(start)
	}
	d.d2hFree = start + dur
	d.d2hBusy += dur
	hostAt := start + dur
	d.stats.BytesD2H += p.WireBytes
	e.bytesD2H[p.WirePrec] += p.WireBytes
	d.stats.TransferTime += dur
	d.stats.DynEnergy += d.spec.TransferW * dur
	if d.trace {
		d.d2hIntervals = append(d.d2hIntervals, Interval{Start: start, End: hostAt, Power: d.spec.TransferW, Bytes: p.WireBytes})
	}
	e.setHostAvail(d.rank, spec.Output.Data, hostAt)
	if entry := d.entry(spec.Output.Data); entry != nil {
		entry.hostCopy = true
	}

	if len(p.RemoteRanks) > 0 {
		// Binomial-tree broadcast: the sender's NIC is occupied for one
		// hop; every receiver has the data after ceil(log2(n+1)) hops.
		hop := e.plat.Node.NetLat + float64(p.WireBytes)/e.plat.Node.NetBw
		nstart := math.Max(e.nicFree[d.rank], hostAt)
		e.nicFree[d.rank] = nstart + hop
		hops := math.Ceil(math.Log2(float64(len(p.RemoteRanks)) + 1))
		arrival := nstart + hop*hops
		if e.nicIntervals != nil {
			e.nicIntervals[d.rank] = append(e.nicIntervals[d.rank],
				Interval{Start: nstart, End: nstart + hop, Bytes: p.WireBytes})
		}
		for _, rr := range p.RemoteRanks {
			e.setHostAvail(rr, spec.Output.Data, arrival)
			e.stats.BytesNet += p.WireBytes
			e.bytesNet[p.WirePrec] += p.WireBytes
		}
	}
}

func (e *Engine) finalizeStats() {
	var makespan float64
	for _, d := range e.devices {
		cf := d.computeFree
		if d.deadAt >= 0 && cf > d.deadAt {
			// Work the dead device had accepted past its failure was
			// aborted and re-ran elsewhere; only survivors bound the run.
			cf = d.deadAt
		}
		if cf > makespan {
			makespan = cf
		}
	}
	e.stats.Makespan = makespan
	if makespan > 0 {
		e.stats.Flops = e.stats.TotalFlops / makespan
	}
	var energy float64
	for _, d := range e.devices {
		energy += d.stats.DynEnergy + d.spec.IdleW*d.idleSpan(makespan)
		e.stats.BytesH2D += d.stats.BytesH2D
		e.stats.BytesD2H += d.stats.BytesD2H
		e.stats.Devices = append(e.stats.Devices, d.stats)
	}
	e.stats.Energy = energy
	if makespan > 0 {
		e.stats.AvgPower = energy / makespan
	}
	e.stats.ScheduleDigest = e.digest.Sum()
	e.publishMetrics(makespan)
}

// publishMetrics pours the run's aggregates into the metrics registry.
func (e *Engine) publishMetrics(makespan float64) {
	m := e.metrics
	m.Counter("engine/tasks").Add(int64(e.stats.Tasks))
	m.Counter("engine/conversions/stc").Add(int64(e.stats.SenderConversions))
	m.Counter("engine/conversions/ttc").Add(int64(e.stats.ReceiverConversions))
	m.Gauge("engine/makespan_seconds").Set(makespan)
	m.Gauge("engine/energy_joules").Set(e.stats.Energy)
	for p := prec.Precision(0); int(p) < prec.Count; p++ {
		if v := e.bytesH2D[p]; v > 0 {
			m.Counter("engine/bytes_h2d/" + p.String()).Add(v)
		}
		if v := e.bytesD2H[p]; v > 0 {
			m.Counter("engine/bytes_d2h/" + p.String()).Add(v)
		}
		if v := e.bytesNet[p]; v > 0 {
			m.Counter("engine/bytes_net/" + p.String()).Add(v)
		}
	}
	var hits, misses int64
	var evictions, writebacks int
	for _, d := range e.devices {
		hits += d.stats.LRUHits
		misses += d.stats.LRUMisses
		evictions += d.stats.Evictions
		writebacks += d.stats.Writebacks
		pfx := fmt.Sprintf("engine/dev%d/", d.id)
		m.Gauge(pfx + "queue_depth_max").Set(float64(d.maxReady))
		m.Gauge(pfx + "peak_resident_bytes").Set(float64(d.stats.PeakResident))
		m.Gauge(pfx + "idle_compute_seconds").Set(math.Max(0, makespan-d.stats.BusyTime))
		m.Gauge(pfx + "idle_h2d_seconds").Set(math.Max(0, makespan-d.h2dBusy))
		m.Gauge(pfx + "idle_d2h_seconds").Set(math.Max(0, makespan-d.d2hBusy))
	}
	m.Counter("engine/lru/hits").Add(hits)
	m.Counter("engine/lru/misses").Add(misses)
	m.Counter("engine/lru/evictions").Add(int64(evictions))
	m.Counter("engine/lru/writebacks").Add(int64(writebacks))
	if e.armed {
		m.Counter("engine/faults/device_failures").Add(int64(e.stats.DeviceFailures))
		m.Counter("engine/faults/transient").Add(int64(e.stats.TransientFaults))
		m.Counter("engine/recovery/retried_tasks").Add(int64(e.stats.RetriedTasks))
		m.Counter("engine/recovery/replayed_tasks").Add(int64(e.stats.ReplayedTasks))
		m.Counter("engine/recovery/bytes").Add(e.stats.RecoveryBytes)
	}
}

// DeviceTrace returns device i's traced compute-stream intervals (kernels
// and datatype conversions, each carrying its dynamic power draw) and
// host-link transfer intervals (H2D staging, D2H publishes and writebacks),
// recorded during a Trace-enabled run. Slices are rebuilt views; the
// underlying intervals stay valid until the next Run.
func (e *Engine) DeviceTrace(i int) (busy, xfer []Interval) {
	d := e.devices[i]
	busy = make([]Interval, 0, len(d.busyIntervals)+len(d.convIntervals))
	busy = append(append(busy, d.busyIntervals...), d.convIntervals...)
	xfer = make([]Interval, 0, len(d.h2dIntervals)+len(d.d2hIntervals))
	xfer = append(append(xfer, d.h2dIntervals...), d.d2hIntervals...)
	return busy, xfer
}

// StreamIntervals exposes device i's per-stream traces individually:
// kernel execution, datatype conversions (both on the compute stream), and
// the H2D/D2H host-link directions. Valid until the next Run.
func (e *Engine) StreamIntervals(i int) (kernel, conv, h2d, d2h []Interval) {
	d := e.devices[i]
	return d.busyIntervals, d.convIntervals, d.h2dIntervals, d.d2hIntervals
}

// NICIntervals returns the traced send-side NIC occupancy of a rank's
// broadcasts (first hop per publish). Nil when tracing was off.
func (e *Engine) NICIntervals(rank int) []Interval {
	if e.nicIntervals == nil {
		return nil
	}
	return e.nicIntervals[rank]
}

// ScheduleTrace returns the ordered task placements recorded during a
// Trace-enabled run (commit order; sort by Start for a timeline).
func (e *Engine) ScheduleTrace() []ScheduledTask { return e.schedule }

// workerPool runs numeric task bodies concurrently, bounded by size.
type workerPool struct {
	jobs chan func()
	done chan struct{}
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{jobs: make(chan func(), 4*size), done: make(chan struct{})}
	for i := 0; i < size; i++ {
		go func() {
			for j := range p.jobs {
				j()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(f func()) { p.jobs <- f }
func (p *workerPool) close()          { close(p.jobs) }