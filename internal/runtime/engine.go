package runtime

import (
	"fmt"
	"math"
	gort "runtime"

	"geompc/internal/comm"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/sched"
)

// Engine executes a Graph on a Platform, producing virtual-time statistics
// and (when task bodies are present) real numeric results. The engine is
// the orchestration core; the communication fabric (links, broadcast
// topology) lives in internal/comm and the scheduling policy (queue order,
// placement, failover) in internal/sched.
type Engine struct {
	plat *Platform
	g    Graph

	// Trace enables per-interval power/occupancy recording on all devices
	// and links (used by the Fig 9/10 experiments; costs memory on large
	// runs).
	Trace bool

	// Audit enables the run-invariant auditor: pin-count balance at
	// completion, LRU residency within device memory whenever evictable
	// tiles exist, per-link interval consistency, and exact energy
	// conservation between the interval traces and Stats.Energy. Auditing
	// forces Trace on; Run returns an error listing the violations, if any.
	Audit bool

	// Lookahead is the number of tasks each device pipeline accepts ahead
	// of execution (stream double-buffering). Default 2.
	Lookahead int

	// Policy selects the scheduling policy — ready-queue order, device
	// placement and fault failover. Nil means sched.FIFO{}, the engine's
	// historical behavior (owner-computes placement, priority/id order).
	Policy sched.Policy

	// Bcast selects the inter-rank broadcast topology. Nil means
	// comm.Binomial{}, the engine's historical behavior.
	Bcast comm.Topology

	// Recorder, when non-nil, observes the run's commit/completion stream
	// (see PlanRecorder). Recovery work (lineage replays) is not reported:
	// the stream describes only the fault-free forward schedule, which is
	// what a compiled plan replays.
	Recorder PlanRecorder

	// EngineWorkers selects the execution mode. 0 (the default) runs the
	// classic single-threaded event loop. A positive value runs the
	// conservative parallel DES mode — one event loop per rank, at most
	// EngineWorkers rank loops executing concurrently — and -1 means
	// GOMAXPROCS. Parallel mode needs a multi-rank platform and a graph
	// implementing ShardableGraph; anything else falls back to the serial
	// loop. Results are bit-identical at every worker count (parallel.go).
	EngineWorkers int

	devices []*device
	// nics holds one comm.Link per rank: the send side of its broadcasts.
	nics []*comm.Link
	// Resolved policy/topology for the current run (defaults applied), the
	// shared ready-queue ordering, and the placement scratch buffer.
	policy  sched.Policy
	topo    comm.Topology
	ord     heapOrder
	placing bool
	refsBuf []sched.DataRef

	// Host-availability index: when the graph implements DataBounder the
	// dense per-(rank,data) table is used (one flat slice, -1 = absent);
	// otherwise the map fallback. The dense form removes a map lookup per
	// staged input — the hottest read on the phantom scale path.
	hostAvail    map[hostKey]float64
	hostDense    []float64
	hostDenseBuf []float64 // retained across runs to avoid regrowth
	hostBound    int
	hostStride   int // dense index row stride: hostBound serial, 0 on a shard
	pending      []int32
	events       []event
	specFree     []*TaskSpec
	seq          int64
	now          float64
	succBuf      []int
	inflight     int
	done         int
	dirtyDevs    []int

	// Fault injection (see faults.go / recovery.go). Everything below is
	// dormant — and provably free — unless `armed` is set, which happens
	// only when an injector's plan contains at least one event: a silent
	// injector leaves every code path, allocation and digest bit-identical
	// to an engine without fault support.
	injector FaultInjector
	armed    bool
	fatalErr error
	// orphan holds the result channels of numeric bodies whose virtual task
	// was aborted by a device failure: the body already ran (bodies execute
	// eagerly at commit), so the re-commit on a survivor joins the original
	// channel instead of running the body twice — which is what keeps the
	// recovered factor bit-identical to a fault-free run.
	orphan map[int]chan struct{}
	// lineage tracks, per datum, the completed writers since the last host
	// sync (publish or eviction writeback). When a device dies, each of its
	// dirty resident tiles is reconstructed by re-executing this chain on a
	// survivor; a published or written-back tile needs only a re-fetch.
	lineage  map[DataID][]int
	lineageG LineageGraph // optional graph hook, audit cross-check
	// inRecovery marks commits issued by the recovery path (lineage
	// replays): their bodies never run and their completion releases no
	// successors.
	inRecovery bool
	aliveBuf   []int
	abortBuf   []*TaskSpec
	faultLog   []faultMark

	workers *workerPool

	// shard is non-nil only on a parallel-mode rank engine: commit /
	// complete / publish reroute their cross-rank effects and observability
	// writes through it instead of acting globally. Serial runs never touch
	// it, so the classic path stays bit- and branch-identical.
	shard *desShard

	schedule []ScheduledTask

	// observability: per-wire-precision byte totals, the schedule digest,
	// the metrics registry resolved once per run, and audit violations.
	bytesH2D  [prec.Count]int64
	bytesD2H  [prec.Count]int64
	bytesNet  [prec.Count]int64
	digest    obs.Digest
	metrics   *obs.Registry
	hTaskSec  *obs.Histogram
	hH2DBytes *obs.Histogram
	auditViol []string

	stats Stats
}

// New prepares an engine for one run of g on plat.
func New(plat *Platform, g Graph) *Engine {
	return &Engine{plat: plat, g: g, Lookahead: 2, metrics: obs.NewRegistry()}
}

// Metrics returns the engine's metrics registry, populated by Run (and
// reset at the start of every Run).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Inject arms subsequent Runs with a fault injector. A nil injector — or
// one whose Plan is empty — is silent: the engine stays unarmed and every
// code path, timing and schedule digest is bit-identical to an engine that
// never saw fault support. Plans with events are validated at Run.
func (e *Engine) Inject(fi FaultInjector) { e.injector = fi }

// Run executes the task system to completion and returns the run's
// statistics. Malformed graphs (invalid device assignments, inputs with no
// host copy, broken in-degree accounting) abort the run with a *GraphError;
// dependency cycles leave tasks unexecuted and are reported as a plain
// error. With Audit enabled, invariant violations are reported as an error
// after the run.
func (e *Engine) Run() (Stats, error) {
	if e.EngineWorkers != 0 {
		if st, err, handled := e.runParallel(); handled {
			return st, err
		}
	}
	return e.runSerial()
}

// sealGraph invokes the graph's optional Seal hook before the first Spec
// call, so graphs that forbid mutation during execution can latch that flag
// once, outside any concurrent read path.
func (e *Engine) sealGraph() {
	if s, ok := e.g.(interface{ Seal() }); ok {
		s.Seal()
	}
}

// runSerial is the classic single-threaded event loop.
func (e *Engine) runSerial() (Stats, error) {
	if e.Audit {
		e.Trace = true // the energy-conservation check needs the intervals
	}
	e.sealGraph()
	n := e.g.NumTasks()
	e.resolveSched()
	e.hostAvail, e.hostDense, e.hostBound, e.hostStride = nil, nil, 0, 0
	if b, ok := e.g.(DataBounder); ok {
		// Cap the dense tables' footprint; graphs with huge sparse id
		// spaces fall back to the maps.
		if bound := b.DataIDBound(); bound >= 0 &&
			bound*int64(e.plat.Ranks) <= 1<<28 && bound*int64(e.plat.NumDevices()) <= 1<<28 {
			e.hostBound = int(bound)
			need := e.hostBound * e.plat.Ranks
			if cap(e.hostDenseBuf) < need {
				e.hostDenseBuf = make([]float64, need)
			}
			e.hostDense = e.hostDenseBuf[:need]
			for i := range e.hostDense {
				e.hostDense[i] = hostAbsent
			}
			e.hostStride = e.hostBound
		}
	}
	if e.hostDense == nil {
		e.hostAvail = make(map[hostKey]float64)
	}
	e.devices = make([]*device, e.plat.NumDevices())
	for i := range e.devices {
		e.devices[i] = newDevice(i, e.plat.RankOfDevice(i), e.plat.Node.GPU, e.Trace, e.hostBound, &e.ord)
	}
	e.nics = make([]*comm.Link, e.plat.Ranks)
	for r := range e.nics {
		e.nics[r] = comm.NewLink(fmt.Sprintf("rank%d/nic", r), e.plat.Node.NICLink(), e.Trace)
	}
	if cap(e.pending) >= n {
		e.pending = e.pending[:n]
	} else {
		e.pending = make([]int32, n)
	}
	e.events = e.events[:0]
	e.now, e.seq, e.inflight, e.done = 0, 0, 0, 0
	e.stats = Stats{}
	e.schedule = e.schedule[:0]
	e.bytesH2D, e.bytesD2H, e.bytesNet = [prec.Count]int64{}, [prec.Count]int64{}, [prec.Count]int64{}
	e.digest = obs.Digest{}
	e.auditViol = e.auditViol[:0]
	e.armed, e.fatalErr, e.inRecovery = false, nil, false
	e.faultLog = e.faultLog[:0]
	if err := e.armFaults(); err != nil {
		return Stats{}, err
	}
	e.metrics.Reset()
	e.hTaskSec = e.metrics.Histogram("engine/task_seconds", obs.ExpBuckets(1e-6, 4, 16))
	e.hH2DBytes = e.metrics.Histogram("engine/h2d_bytes", obs.ExpBuckets(4096, 4, 16))
	// The worker pool spins up lazily, on the first task that carries a
	// numeric body — phantom runs never pay for goroutine creation.
	defer func() {
		if e.workers != nil {
			e.workers.close()
			e.workers = nil
		}
	}()

	e.g.InitialData(func(d DataID, rank int) {
		e.setHostAvail(rank, d, 0)
	})

	for id := 0; id < n; id++ {
		e.pending[id] = int32(e.g.NumPredecessors(id))
		if e.pending[id] == 0 {
			e.enqueueReady(id)
		}
	}
	for i := range e.devices {
		e.tryCommit(e.devices[i])
	}
	if e.fatalErr != nil {
		return Stats{}, e.fatalErr
	}

	for len(e.events) > 0 {
		ev := e.popEvent()
		e.now = ev.at
		if ev.fault != nil {
			e.applyFault(ev.fault)
		} else {
			e.complete(&ev)
		}
		if e.fatalErr != nil {
			return Stats{}, e.fatalErr
		}
	}

	if e.done != n {
		return Stats{}, fmt.Errorf("runtime: %d of %d tasks never became ready (dependency cycle or missing data)", n-e.done, n)
	}
	e.finalizeStats()
	if e.Audit {
		e.auditFinal()
		if len(e.auditViol) > 0 {
			return e.stats, fmt.Errorf("runtime: audit found %d invariant violation(s): %v", len(e.auditViol), e.auditViol)
		}
	}
	return e.stats, nil
}

// enqueueReady materializes task id's spec from the freelist and pushes it
// onto its (possibly re-placed) device's ready queue.
//
//geompc:hot
func (e *Engine) enqueueReady(id int) int {
	spec := e.takeSpec()
	e.g.Spec(id, spec)
	spec.ID = id
	if spec.Device < 0 || spec.Device >= len(e.devices) {
		e.fail(&GraphError{Task: id, Msg: fmt.Sprintf("assigned to invalid device %d", spec.Device)}) //geompc:nolint hotalloc cold malformed-graph path, run ends here
		e.specFree = append(e.specFree, spec)
		return 0
	}
	if e.placing {
		spec.Device = e.placeTask(spec)
	}
	d := e.devices[spec.Device]
	if e.armed && d.deadAt >= 0 {
		// The task's home device has failed: deterministically reroute it
		// to a same-rank survivor (host copies are per rank).
		t := e.failoverFor(d, failoverKey(spec))
		if t < 0 {
			e.fail(errUnrecoverable(id, d.rank))
			e.specFree = append(e.specFree, spec)
			return d.id
		}
		spec.Device = t
		d = e.devices[t]
	}
	d.ready.push(spec)
	if d.ready.Len() > d.maxReady {
		d.maxReady = d.ready.Len()
	}
	if e.shard != nil {
		e.shard.recEnqueue(id, d.id)
	}
	return d.id
}

// tryCommit feeds the device's stream pipeline up to the lookahead depth.
func (e *Engine) tryCommit(d *device) {
	if d.deadAt >= 0 {
		return
	}
	for e.fatalErr == nil && d.committed < e.Lookahead && d.ready.Len() > 0 {
		e.commit(d, d.ready.pop())
	}
}

// commit stages a task's data onto the device and schedules its execution.
func (e *Engine) commit(d *device, spec *TaskSpec) {
	if e.Audit && d.deadAt >= 0 {
		e.violate("task %d committed to dev%d at t=%g, after its failure at t=%g",
			spec.ID, d.id, e.now, d.deadAt)
	}
	stagingEnd := e.now
	var sink evictSink
	var stagedBytes int64

	//geompc:nolint hotalloc staging helper captures commit-local tallies; never escapes the commit call
	stage := func(data DataID, bytes int64, wp prec.Precision, isOutput bool) {
		stagedBytes += bytes
		if entry := d.touch(data); entry != nil {
			d.pin(data)
			d.stats.LRUHits++
			if isOutput {
				entry.hostCopy = false // it is about to be overwritten
			}
			return
		}
		d.stats.LRUMisses++
		avail, ok := e.lookupHostAvail(d.rank, data)
		if !ok {
			if isOutput {
				// Fresh output with no prior contents: allocate only.
				d.insert(data, bytes, wp, false, e.now, &sink)
				d.pin(data)
				return
			}
			e.fail(&GraphError{Task: spec.ID, Msg: fmt.Sprintf("input %d not available at rank %d", data, d.rank)}) //geompc:nolint hotalloc failure-path error construction; the run aborts here
			return
		}
		start := d.h2d.StartAfter(math.Max(avail, e.now))
		dur := d.h2d.Time(bytes)
		if e.armed {
			dur *= d.slowFactor(start)
		}
		end := d.h2d.Occupy(start, dur, bytes)
		d.stats.BytesH2D += bytes
		e.bytesH2D[wp] += bytes
		d.stats.TransferTime += dur
		if e.shard != nil {
			e.shard.recH2D(d.id, float64(bytes))
		} else {
			e.hH2DBytes.Observe(float64(bytes))
		}
		d.stats.DynEnergy += d.spec.TransferW * dur
		if end > stagingEnd {
			stagingEnd = end
		}
		d.insert(data, bytes, wp, !isOutput, e.now, &sink)
		d.pin(data)
	}

	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		stage(in.Data, in.WireBytes, in.WirePrec, false)
	}
	if spec.Output.Data >= 0 {
		stage(spec.Output.Data, spec.Output.Bytes, spec.Output.Prec, true)
	}
	if e.fatalErr != nil {
		// Malformed graph: abort before booking compute. Run surfaces the
		// GraphError; partial staging state is irrelevant past this point.
		e.specFree = append(e.specFree, spec)
		return
	}
	e.drainWritebacks(d, &sink)
	if e.inRecovery {
		e.stats.RecoveryBytes += stagedBytes
	}
	if e.Audit {
		e.auditResidency(d, spec.ID)
	}

	// Receiver-side conversions run on the compute stream before the kernel.
	var convDur float64
	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		if in.ConvertElems > 0 {
			convDur += d.spec.ConvertTime(in.ConvertElems, in.ConvFrom, in.ConvTo)
			e.stats.ReceiverConversions++
			d.stats.ConvertKernels++
		}
	}

	kernelDur := 0.0
	if spec.Flops > 0 {
		kernelDur = d.spec.KernelTime(spec.Kind, spec.Prec, spec.Flops)
	}
	start := math.Max(d.computeFree, stagingEnd)
	end := start + convDur + kernelDur
	d.computeFree = end
	d.committed++

	d.stats.BusyTime += convDur + kernelDur
	d.stats.Flops += spec.Flops
	dynW := d.spec.DynPower(spec.Prec)
	d.stats.DynEnergy += dynW*kernelDur + convPowerFrac*(d.spec.TDP-d.spec.IdleW)*convDur
	if d.trace {
		// Conversion and kernel windows carry their own power levels so the
		// traced intervals integrate exactly to the energy accrued above.
		if convDur > 0 {
			d.convIntervals = append(d.convIntervals, Interval{Start: start, End: start + convDur, Power: convPowerFrac * (d.spec.TDP - d.spec.IdleW)})
		}
		if end > start+convDur {
			d.busyIntervals = append(d.busyIntervals, Interval{Start: start + convDur, End: end, Power: dynW})
		}
		if e.shard == nil {
			e.schedule = append(e.schedule, ScheduledTask{
				ID: spec.ID, Kind: spec.Kind, Device: spec.Device, Prec: spec.Prec, Start: start, End: end,
				Recovery: e.inRecovery,
			})
		}
	}
	if e.shard != nil {
		// A rank shard does not write observability state directly: the
		// coordinator's spine re-emits this commit in exact serial order
		// (histogram, digest, schedule, recorder) from the record.
		e.shard.recCommit(spec, start, end, stagedBytes, e.inRecovery)
	} else {
		e.hTaskSec.Observe(end - start)
		e.digest.WriteString(string(spec.Kind))
		e.digest.WriteInt64(int64(spec.Device))
		e.digest.WriteFloat64(start)
		e.digest.WriteFloat64(end)
		e.digest.WriteInt64(stagedBytes)
	}

	var result chan struct{}
	if body := spec.Body; body != nil && !e.inRecovery {
		if ch, orphaned := e.orphan[spec.ID]; e.armed && orphaned {
			// The body already ran on a device that has since failed
			// (bodies execute eagerly at commit). Re-execution of a
			// deterministic kernel recomputes the same bits, so only the
			// virtual cost repeats — join the original result instead of
			// running the body a second time.
			result = ch
			delete(e.orphan, spec.ID)
		} else {
			if e.workers == nil {
				e.workers = newWorkerPool(gort.GOMAXPROCS(0))
			}
			result = make(chan struct{}) //geompc:nolint hotalloc per-numeric-task join channel; numeric mode trades allocs for overlap, pure DES never reaches this
			done := result
			//geompc:nolint hotalloc numeric-task wrapper closure; same numeric-mode trade as the join channel above
			e.workers.submit(func() {
				body()
				close(done)
			})
		}
	}
	e.seq++
	ev := event{at: end, seq: e.seq, spec: spec, result: result, start: start, replay: e.inRecovery}
	if e.shard != nil && !e.inRecovery {
		ev.cross = e.shard.isCross(spec)
	}
	e.pushEvent(ev)
	e.inflight++
	if e.Recorder != nil && !e.inRecovery {
		e.Recorder.RecordCommit(spec.ID)
	}
}

// convPowerFrac is the fraction of the dynamic power range a datatype
// conversion kernel draws (memory-bound, low arithmetic intensity).
const convPowerFrac = 0.25

// drainWritebacks turns evicted dirty tiles into D2H transfers and restores
// their host copies.
func (e *Engine) drainWritebacks(d *device, sink *evictSink) {
	for _, wb := range sink.writebacks {
		start := d.d2h.StartAfter(e.now)
		dur := d.d2h.Time(wb.bytes)
		if e.armed {
			dur *= d.slowFactor(start)
		}
		end := d.d2h.Occupy(start, dur, wb.bytes)
		d.stats.BytesD2H += wb.bytes
		e.bytesD2H[wb.prec] += wb.bytes
		d.stats.TransferTime += dur
		d.stats.DynEnergy += d.spec.TransferW * dur
		e.setHostAvail(d.rank, wb.data, end)
		if e.armed {
			// The writeback restored a current host copy; the datum no
			// longer needs lineage re-execution if this device dies.
			e.lineage[wb.data] = e.lineage[wb.data][:0]
		}
	}
	sink.writebacks = sink.writebacks[:0]
}

// complete processes a task's completion event: joins the numeric body,
// publishes the output, and releases successors.
//
// The flight.result join is the synchronization point between virtual and
// real time: a task's numeric body runs on the worker pool as soon as the
// task commits, but its *effects* (the produced tile, the error flag) may
// only be observed by successors after this receive, which blocks until the
// body's goroutine closes the channel. Virtual completion order therefore
// bounds real dataflow order — successors never read a tile whose producer
// body is still running, regardless of GOMAXPROCS.
//
//geompc:hot
func (e *Engine) complete(ev *event) {
	spec := ev.spec
	d := e.devices[spec.Device]
	if ev.result != nil {
		<-ev.result
	}

	for i := range spec.Inputs {
		d.unpin(spec.Inputs[i].Data)
	}
	if spec.Output.Data >= 0 {
		d.unpin(spec.Output.Data)
	}

	if ev.replay {
		// A lineage replay only reconstructs device state: it releases no
		// successors, publishes nothing and counts toward the recovery
		// stats, not the run's task total.
		e.inflight--
		d.committed--
		e.stats.ReplayedTasks++
		e.specFree = append(e.specFree, spec)
		e.tryCommit(d)
		if e.shard != nil {
			e.shard.recComplete(ev.spec.ID, true)
		}
		return
	}
	if ev.cross {
		e.shard.crossLeft--
	}

	// The body is joined and successors have not committed yet: a recorder
	// sees every predecessor's completion strictly before any dependent
	// commit, which is the ordering a plan replay relies on.
	if e.Recorder != nil {
		e.Recorder.RecordComplete(spec.ID)
	}

	if p := spec.Publish; p != nil {
		e.publish(d, spec, p)
		if e.armed && spec.Output.Data >= 0 {
			e.lineage[spec.Output.Data] = e.lineage[spec.Output.Data][:0]
		}
	} else if e.armed && spec.Output.Data >= 0 {
		// The output stays dirty on this device: remember its writer so a
		// device failure can re-derive the tile from the last host copy.
		e.lineage[spec.Output.Data] = append(e.lineage[spec.Output.Data], spec.ID)
	}

	e.done++
	e.inflight--
	d.committed--
	e.stats.Tasks++
	e.stats.TotalFlops += spec.Flops

	e.succBuf = e.g.Successors(spec.ID, e.succBuf[:0])
	e.dirtyDevs = e.dirtyDevs[:0]
	e.dirtyDevs = append(e.dirtyDevs, d.id)
	d.dirty = true
	for _, s := range e.succBuf {
		if e.shard != nil && e.shard.owner[s] != e.shard.rank16 {
			// A remote rank owns this successor; its shard's pending slot is
			// authoritative, ours is uninitialized. Ship the release as a
			// message applied at this completion's processing instant.
			e.shard.sendDec(s)
			continue
		}
		e.pending[s]--
		switch {
		case e.pending[s] == 0:
			dev := e.enqueueReady(s)
			if dd := e.devices[dev]; !dd.dirty {
				dd.dirty = true
				e.dirtyDevs = append(e.dirtyDevs, dev)
			}
		case e.pending[s] < 0:
			e.fail(&GraphError{Task: s, Msg: "released more than its in-degree"}) //geompc:nolint hotalloc cold malformed-graph path, run ends here
			return
		}
	}
	// The task is fully retired; its spec (and the slices hanging off it)
	// goes back to the freelist for the next enqueueReady to refill.
	e.specFree = append(e.specFree, spec)
	// Feed the pipelines of every device that finished a task or gained a
	// ready one.
	for _, di := range e.dirtyDevs {
		dd := e.devices[di]
		dd.dirty = false
		e.tryCommit(dd)
	}
	if e.shard != nil {
		e.shard.recComplete(spec.ID, false)
	}
}

// publish performs STC conversion, D2H, and the network broadcast of a
// task's output, making it available in host memory at consumer ranks.
func (e *Engine) publish(d *device, spec *TaskSpec, p *PublishSpec) {
	t := e.now
	if p.ConvertElems > 0 {
		// Sender-side conversion on the producer's compute stream.
		dur := d.spec.ConvertTime(p.ConvertElems, p.ConvFrom, p.ConvTo)
		start := math.Max(d.computeFree, t)
		d.computeFree = start + dur
		t = start + dur
		d.stats.BusyTime += dur
		d.stats.DynEnergy += convPowerFrac * (d.spec.TDP - d.spec.IdleW) * dur
		d.stats.ConvertKernels++
		e.stats.SenderConversions++
		if d.trace {
			d.convIntervals = append(d.convIntervals, Interval{Start: start, End: t, Power: convPowerFrac * (d.spec.TDP - d.spec.IdleW)})
		}
	}
	// D2H of the wire representation.
	start := d.d2h.StartAfter(t)
	dur := d.d2h.Time(p.WireBytes)
	if e.armed {
		dur *= d.slowFactor(start)
	}
	hostAt := d.d2h.Occupy(start, dur, p.WireBytes)
	d.stats.BytesD2H += p.WireBytes
	e.bytesD2H[p.WirePrec] += p.WireBytes
	d.stats.TransferTime += dur
	d.stats.DynEnergy += d.spec.TransferW * dur
	e.setHostAvail(d.rank, spec.Output.Data, hostAt)
	if entry := d.entry(spec.Output.Data); entry != nil {
		entry.hostCopy = true
	}

	if n := len(p.RemoteRanks); n > 0 {
		// Broadcast over the run's topology: the sender's NIC is occupied
		// for SenderHops hop-durations; receiver i has the data after
		// ArrivalHops(i) hops. Under the default binomial tree this is the
		// engine's historical arithmetic, bit for bit: one hop of NIC
		// occupancy, every receiver served after ceil(log2(n+1)) hops.
		nic := e.nics[d.rank]
		hop := nic.Time(p.WireBytes)
		nstart := nic.StartAfter(hostAt)
		nic.Occupy(nstart, hop*e.topo.SenderHops(n), p.WireBytes)
		for i, rr := range p.RemoteRanks {
			if e.shard != nil && rr != e.shard.rank {
				// Cross-rank availability: the receiver shard owns that
				// rank's host index. The write travels as a message applied
				// at this completion's processing instant; byte accounting
				// stays sender-side, exactly like the serial loop.
				e.shard.sendAvail(rr, spec.Output.Data, nstart+hop*e.topo.ArrivalHops(i, n))
			} else {
				e.setHostAvail(rr, spec.Output.Data, nstart+hop*e.topo.ArrivalHops(i, n))
			}
			e.stats.BytesNet += p.WireBytes
			e.bytesNet[p.WirePrec] += p.WireBytes
		}
	}
}
