package runtime

import (
	"container/heap"
	"fmt"
	"math"
	gort "runtime"

	"geompc/internal/hw"
)

// Engine executes a Graph on a Platform, producing virtual-time statistics
// and (when task bodies are present) real numeric results.
type Engine struct {
	plat *Platform
	g    Graph

	// Trace enables per-interval power/occupancy recording on all devices
	// (used by the Fig 9/10 experiments; costs memory on large runs).
	Trace bool

	// Lookahead is the number of tasks each device pipeline accepts ahead
	// of execution (stream double-buffering). Default 2.
	Lookahead int

	devices   []*device
	nicFree   []float64
	hostAvail map[hostKey]float64
	pending   []int32
	events    eventHeap
	seq       int64
	now       float64
	succBuf   []int
	inflight  int
	done      int
	dirtyDevs []int

	workers *workerPool

	schedule []ScheduledTask

	stats Stats
}

// ScheduledTask records one task's placement in the simulated schedule
// (recorded only when Trace is enabled).
type ScheduledTask struct {
	ID         int
	Kind       hw.KernelKind
	Device     int
	Start, End float64
}

type hostKey struct {
	rank int
	data DataID
}

// Stats aggregates a run.
type Stats struct {
	// Makespan is the virtual time from start to the last task completion.
	Makespan float64
	// TotalFlops across all tasks.
	TotalFlops float64
	// Performance in flop/s (TotalFlops / Makespan).
	Flops float64
	// Data motion totals.
	BytesH2D, BytesD2H, BytesNet int64
	// Conversion counts: sender-side (STC) and receiver-side (TTC).
	SenderConversions, ReceiverConversions int
	// Energy in joules: dynamic compute + transfer + idle over makespan,
	// summed over all devices.
	Energy float64
	// AvgPower = Energy / Makespan.
	AvgPower float64
	// Tasks executed.
	Tasks int
	// Per-device aggregates.
	Devices []DeviceStats
}

// event is a completion notice in virtual time.
type event struct {
	at   float64
	seq  int64
	task *flight
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// taskHeap orders ready tasks by descending priority, then ascending id —
// a total order, which keeps the simulation deterministic.
type taskHeap []*TaskSpec

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*TaskSpec)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// flight is a committed task awaiting its completion event.
type flight struct {
	spec   *TaskSpec
	end    float64
	result chan struct{} // closed when the numeric body finishes
}

// New prepares an engine for one run of g on plat.
func New(plat *Platform, g Graph) *Engine {
	return &Engine{plat: plat, g: g, Lookahead: 2}
}

// Run executes the task system to completion and returns the run's
// statistics. It panics on malformed graphs (missing data, dependency
// cycles leave tasks unexecuted and are reported as an error).
func (e *Engine) Run() (Stats, error) {
	n := e.g.NumTasks()
	e.devices = make([]*device, e.plat.NumDevices())
	for i := range e.devices {
		e.devices[i] = newDevice(i, e.plat.RankOfDevice(i), e.plat.Node.GPU, e.Trace)
	}
	e.nicFree = make([]float64, e.plat.Ranks)
	e.hostAvail = make(map[hostKey]float64)
	e.pending = make([]int32, n)
	e.events = e.events[:0]
	e.now, e.seq, e.inflight, e.done = 0, 0, 0, 0
	e.stats = Stats{}
	e.schedule = e.schedule[:0]
	e.workers = newWorkerPool(gort.GOMAXPROCS(0))
	defer e.workers.close()

	e.g.InitialData(func(d DataID, rank int) {
		e.hostAvail[hostKey{rank, d}] = 0
	})

	for id := 0; id < n; id++ {
		e.pending[id] = int32(e.g.NumPredecessors(id))
		if e.pending[id] == 0 {
			e.enqueueReady(id)
		}
	}
	for i := range e.devices {
		e.tryCommit(e.devices[i])
	}

	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.complete(ev.task)
	}

	if e.done != n {
		return Stats{}, fmt.Errorf("runtime: %d of %d tasks never became ready (dependency cycle or missing data)", n-e.done, n)
	}
	e.finalizeStats()
	return e.stats, nil
}

func (e *Engine) enqueueReady(id int) int {
	spec := &TaskSpec{}
	e.g.Spec(id, spec)
	spec.ID = id
	if spec.Device < 0 || spec.Device >= len(e.devices) {
		panic(fmt.Sprintf("runtime: task %d assigned to invalid device %d", id, spec.Device))
	}
	d := e.devices[spec.Device]
	heap.Push(d.ready, spec)
	return d.id
}

// tryCommit feeds the device's stream pipeline up to the lookahead depth.
func (e *Engine) tryCommit(d *device) {
	for d.committed < e.Lookahead && d.ready.Len() > 0 {
		spec := heap.Pop(d.ready).(*TaskSpec)
		e.commit(d, spec)
	}
}

// commit stages a task's data onto the device and schedules its execution.
func (e *Engine) commit(d *device, spec *TaskSpec) {
	stagingEnd := e.now
	var sink evictSink

	stage := func(data DataID, bytes int64, isOutput bool) {
		if entry := d.touch(data); entry != nil {
			d.pin(data)
			if isOutput {
				entry.hostCopy = false // it is about to be overwritten
			}
			return
		}
		avail, ok := e.hostAvail[hostKey{d.rank, data}]
		if !ok {
			if isOutput {
				// Fresh output with no prior contents: allocate only.
				d.insert(data, bytes, false, e.now, &sink)
				d.pin(data)
				return
			}
			panic(fmt.Sprintf("runtime: task %d input %d not available at rank %d", spec.ID, data, d.rank))
		}
		start := math.Max(d.h2dFree, math.Max(avail, e.now))
		dur := d.spec.H2DTime(bytes)
		d.h2dFree = start + dur
		d.stats.BytesH2D += bytes
		d.stats.TransferTime += dur
		if d.trace {
			d.xferIntervals = append(d.xferIntervals, Interval{start, start + dur, d.spec.TransferW})
		}
		d.stats.DynEnergy += d.spec.TransferW * dur
		if start+dur > stagingEnd {
			stagingEnd = start + dur
		}
		d.insert(data, bytes, !isOutput, e.now, &sink)
		d.pin(data)
	}

	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		stage(in.Data, in.WireBytes, false)
	}
	if spec.Output.Data >= 0 {
		stage(spec.Output.Data, spec.Output.Bytes, true)
	}
	e.drainWritebacks(d, &sink)

	// Receiver-side conversions run on the compute stream before the kernel.
	var convDur float64
	for i := range spec.Inputs {
		in := &spec.Inputs[i]
		if in.ConvertElems > 0 {
			convDur += d.spec.ConvertTime(in.ConvertElems, in.ConvFrom, in.ConvTo)
			e.stats.ReceiverConversions++
			d.stats.ConvertKernels++
		}
	}

	kernelDur := 0.0
	if spec.Flops > 0 {
		kernelDur = d.spec.KernelTime(spec.Kind, spec.Prec, spec.Flops)
	}
	start := math.Max(d.computeFree, stagingEnd)
	end := start + convDur + kernelDur
	d.computeFree = end
	d.committed++

	d.stats.BusyTime += convDur + kernelDur
	d.stats.Flops += spec.Flops
	dynW := d.spec.DynPower(spec.Prec)
	d.stats.DynEnergy += dynW*kernelDur + convPowerFrac*(d.spec.TDP-d.spec.IdleW)*convDur
	if d.trace {
		d.busyIntervals = append(d.busyIntervals, Interval{start, end, dynW})
		e.schedule = append(e.schedule, ScheduledTask{
			ID: spec.ID, Kind: spec.Kind, Device: spec.Device, Start: start, End: end,
		})
	}

	f := &flight{spec: spec, end: end}
	if spec.Body != nil {
		f.result = make(chan struct{})
		e.workers.submit(func() {
			spec.Body()
			close(f.result)
		})
	}
	e.seq++
	heap.Push(&e.events, event{at: end, seq: e.seq, task: f})
	e.inflight++
}

// convPowerFrac is the fraction of the dynamic power range a datatype
// conversion kernel draws (memory-bound, low arithmetic intensity).
const convPowerFrac = 0.25

// drainWritebacks turns evicted dirty tiles into D2H transfers and restores
// their host copies.
func (e *Engine) drainWritebacks(d *device, sink *evictSink) {
	for _, wb := range sink.writebacks {
		start := math.Max(d.d2hFree, e.now)
		dur := d.spec.D2HTime(wb.bytes)
		d.d2hFree = start + dur
		d.stats.BytesD2H += wb.bytes
		d.stats.TransferTime += dur
		d.stats.DynEnergy += d.spec.TransferW * dur
		e.hostAvail[hostKey{d.rank, wb.data}] = start + dur
	}
	sink.writebacks = sink.writebacks[:0]
}

// complete processes a task's completion event: joins the numeric body,
// publishes the output, and releases successors.
func (e *Engine) complete(f *flight) {
	spec := f.spec
	d := e.devices[spec.Device]
	if f.result != nil {
		<-f.result
	}

	for i := range spec.Inputs {
		d.unpin(spec.Inputs[i].Data)
	}
	if spec.Output.Data >= 0 {
		d.unpin(spec.Output.Data)
	}

	if p := spec.Publish; p != nil {
		e.publish(d, spec, p)
	}

	e.done++
	e.inflight--
	d.committed--
	e.stats.Tasks++
	e.stats.TotalFlops += spec.Flops

	e.succBuf = e.g.Successors(spec.ID, e.succBuf[:0])
	e.dirtyDevs = e.dirtyDevs[:0]
	e.dirtyDevs = append(e.dirtyDevs, d.id)
	for _, s := range e.succBuf {
		e.pending[s]--
		switch {
		case e.pending[s] == 0:
			dev := e.enqueueReady(s)
			e.dirtyDevs = append(e.dirtyDevs, dev)
		case e.pending[s] < 0:
			panic(fmt.Sprintf("runtime: task %d released more than its in-degree", s))
		}
	}
	// Feed the pipelines of every device that finished a task or gained a
	// ready one.
	for _, di := range e.dirtyDevs {
		e.tryCommit(e.devices[di])
	}
}

// publish performs STC conversion, D2H, and the network broadcast of a
// task's output, making it available in host memory at consumer ranks.
func (e *Engine) publish(d *device, spec *TaskSpec, p *PublishSpec) {
	t := e.now
	if p.ConvertElems > 0 {
		// Sender-side conversion on the producer's compute stream.
		dur := d.spec.ConvertTime(p.ConvertElems, p.ConvFrom, p.ConvTo)
		start := math.Max(d.computeFree, t)
		d.computeFree = start + dur
		t = start + dur
		d.stats.BusyTime += dur
		d.stats.DynEnergy += convPowerFrac * (d.spec.TDP - d.spec.IdleW) * dur
		d.stats.ConvertKernels++
		e.stats.SenderConversions++
		if d.trace {
			d.busyIntervals = append(d.busyIntervals, Interval{start, t, convPowerFrac * (d.spec.TDP - d.spec.IdleW)})
		}
	}
	// D2H of the wire representation.
	start := math.Max(d.d2hFree, t)
	dur := d.spec.D2HTime(p.WireBytes)
	d.d2hFree = start + dur
	hostAt := start + dur
	d.stats.BytesD2H += p.WireBytes
	d.stats.TransferTime += dur
	d.stats.DynEnergy += d.spec.TransferW * dur
	if d.trace {
		d.xferIntervals = append(d.xferIntervals, Interval{start, hostAt, d.spec.TransferW})
	}
	e.hostAvail[hostKey{d.rank, spec.Output.Data}] = hostAt
	if entry := d.resident[spec.Output.Data]; entry != nil {
		entry.hostCopy = true
	}

	if len(p.RemoteRanks) > 0 {
		// Binomial-tree broadcast: the sender's NIC is occupied for one
		// hop; every receiver has the data after ceil(log2(n+1)) hops.
		hop := e.plat.Node.NetLat + float64(p.WireBytes)/e.plat.Node.NetBw
		nstart := math.Max(e.nicFree[d.rank], hostAt)
		e.nicFree[d.rank] = nstart + hop
		hops := math.Ceil(math.Log2(float64(len(p.RemoteRanks)) + 1))
		arrival := nstart + hop*hops
		for _, rr := range p.RemoteRanks {
			e.hostAvail[hostKey{rr, spec.Output.Data}] = arrival
			e.stats.BytesNet += p.WireBytes
		}
	}
}

func (e *Engine) finalizeStats() {
	var makespan float64
	for _, d := range e.devices {
		if d.computeFree > makespan {
			makespan = d.computeFree
		}
	}
	e.stats.Makespan = makespan
	if makespan > 0 {
		e.stats.Flops = e.stats.TotalFlops / makespan
	}
	var energy float64
	for _, d := range e.devices {
		energy += d.stats.DynEnergy + d.spec.IdleW*makespan
		e.stats.BytesH2D += d.stats.BytesH2D
		e.stats.BytesD2H += d.stats.BytesD2H
		e.stats.Devices = append(e.stats.Devices, d.stats)
	}
	e.stats.Energy = energy
	if makespan > 0 {
		e.stats.AvgPower = energy / makespan
	}
}

// Devices exposes the simulated devices' traces after a run (valid until
// the next Run).
func (e *Engine) DeviceTrace(i int) (busy, xfer []Interval) {
	return e.devices[i].busyIntervals, e.devices[i].xferIntervals
}

// ScheduleTrace returns the ordered task placements recorded during a
// Trace-enabled run (commit order; sort by Start for a timeline).
func (e *Engine) ScheduleTrace() []ScheduledTask { return e.schedule }

// workerPool runs numeric task bodies concurrently, bounded by size.
type workerPool struct {
	jobs chan func()
	done chan struct{}
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{jobs: make(chan func(), 4*size), done: make(chan struct{})}
	for i := 0; i < size; i++ {
		go func() {
			for j := range p.jobs {
				j()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(f func()) { p.jobs <- f }
func (p *workerPool) close()          { close(p.jobs) }
