package runtime

// workerPool runs numeric task bodies concurrently, bounded by size.
type workerPool struct {
	jobs chan func()
	done chan struct{}
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	//geompc:nolint hotalloc one-time pool construction, lazily on the first numeric task
	p := &workerPool{jobs: make(chan func(), 4*size), done: make(chan struct{})}
	for i := 0; i < size; i++ {
		go func() {
			for j := range p.jobs {
				j()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(f func()) { p.jobs <- f }
func (p *workerPool) close()          { close(p.jobs) }
