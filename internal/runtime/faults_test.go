package runtime

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

func TestParseFaultSpec(t *testing.T) {
	good := []string{
		"kill:dev=1,at=0.5",
		"flaky:dev=0,at=0.2,backoff=1e-3",
		"slow:dev=2,from=0.1,to=0.3,x=8",
		"kill:dev=0,at=0; flaky:dev=1,at=0.1;",
		"rand:seed=7,kills=1,flaky=2,horizon=1.0",
		" kill:dev=1 , at=0.25 ",
		"",
	}
	for _, spec := range good {
		if _, err := ParseFaultSpec(spec, 3); err != nil {
			t.Errorf("ParseFaultSpec(%q) = %v, want nil", spec, err)
		}
	}
	bad := []string{
		"kill",                        // no params
		"kill:dev=9,at=0.5",           // device out of range
		"kill:dev=-1,at=0.5",          // negative device
		"kill:dev=0",                  // missing at
		"kill:dev=0,at=-1",            // negative time
		"kill:dev=0.5,at=1",           // fractional device
		"kill:dev=0,at=NaN",           // non-finite
		"explode:dev=0,at=1",          // unknown kind
		"kill:dev=0,at=1,boom=2",      // unknown key
		"kill:dev=0,dev=1,at=1",       // duplicate key
		"slow:dev=0,from=2,to=1,x=4",  // inverted window
		"slow:dev=0,from=0,to=1,x=.5", // factor < 1
		"flaky:dev=0,at=1,backoff=-1", // negative backoff
		"rand:seed=1,horizon=0",       // empty horizon
		"rand:kills=1,horizon=1",      // missing seed
		"kill:at",                     // malformed kv
	}
	for _, spec := range bad {
		if _, err := ParseFaultSpec(spec, 3); err == nil {
			t.Errorf("ParseFaultSpec(%q) succeeded, want error", spec)
		}
	}
	// rand without a device count must fail rather than guess.
	if _, err := ParseFaultSpec("rand:seed=1,kills=1,horizon=1", 0); err == nil {
		t.Error("rand spec with unknown device count succeeded")
	}
	// numDevices=0 skips only the range check.
	if _, err := ParseFaultSpec("kill:dev=99,at=1", 0); err != nil {
		t.Errorf("unbounded parse rejected in-grammar spec: %v", err)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(42, 6, 1.0, 2, 3, 1)
	b := RandomPlan(42, 6, 1.0, 2, 3, 1)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("plan lengths %d/%d, want 6", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identically seeded plans: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := FaultPlan(a).Validate(6); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	c := RandomPlan(43, 6, 1.0, 2, 3, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

// chainGraph builds an n-task accumulation chain on one device: every task
// reads tile 1 and writes tile 2, so the output stays dirty on the device
// (no publish) and accrues lineage.
func chainGraph(n, dev int) *testGraph {
	g := newTestGraph(n)
	g.initial[1] = 0
	g.initial[2] = 0
	for i := 0; i < n; i++ {
		g.specs[i] = TaskSpec{
			Kind: hw.KindGemm, Device: dev, Prec: prec.FP64, Flops: 1e9,
			Inputs: []InputSpec{{Data: 1, WireBytes: 1 << 20}},
			Output: OutputSpec{Data: 2, Bytes: 1 << 20},
		}
		if i > 0 {
			g.edge(i-1, i)
		}
	}
	return g
}

func twoDevPlat(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(hw.SummitNode, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSilentInjectorIsFree is the engine-level golden no-op: a wired-in but
// empty injector must leave digest, makespan and energy bit-identical to no
// injector at all.
func TestSilentInjectorIsFree(t *testing.T) {
	run := func(fi FaultInjector) Stats {
		eng := New(twoDevPlat(t), chainGraph(8, 1))
		eng.Audit = true
		eng.Inject(fi)
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(nil)
	for name, fi := range map[string]FaultInjector{
		"nil-plan":   FaultPlan(nil),
		"empty-plan": FaultPlan{},
	} {
		st := run(fi)
		if st.ScheduleDigest != base.ScheduleDigest {
			t.Errorf("%s: digest %#x != baseline %#x", name, st.ScheduleDigest, base.ScheduleDigest)
		}
		if st.Makespan != base.Makespan || st.Energy != base.Energy {
			t.Errorf("%s: makespan/energy differ from baseline", name)
		}
	}
}

// TestDeviceKillRecovery kills the only busy device mid-run: the chain must
// complete on the survivor, with every numeric body run exactly once, under
// a clean audit.
func TestDeviceKillRecovery(t *testing.T) {
	const n = 8
	var ran [n]int32
	build := func() *testGraph {
		g := chainGraph(n, 1)
		for i := 0; i < n; i++ {
			i := i
			g.specs[i].Body = func() { atomic.AddInt32(&ran[i], 1) }
		}
		return g
	}
	eng := New(twoDevPlat(t), build())
	eng.Audit = true
	base, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		ran[i] = 0
	}

	killAt := base.Makespan / 2
	eng = New(twoDevPlat(t), build())
	eng.Audit = true
	eng.Inject(FaultPlan{{Kind: FaultKill, Device: 1, At: killAt}})
	st, err := eng.Run()
	if err != nil {
		t.Fatalf("chaos run failed: %v (violations: %v)", err, eng.AuditViolations())
	}
	if st.Tasks != n {
		t.Errorf("completed %d of %d tasks", st.Tasks, n)
	}
	if st.DeviceFailures != 1 {
		t.Errorf("DeviceFailures = %d, want 1", st.DeviceFailures)
	}
	if st.ReplayedTasks == 0 {
		t.Error("expected lineage replays for the lost dirty tile, got none")
	}
	if st.Makespan <= base.Makespan {
		t.Errorf("chaos makespan %g not above fault-free %g (recovery is not free)", st.Makespan, base.Makespan)
	}
	for i, c := range ran {
		if c != 1 {
			t.Errorf("task %d body ran %d times, want exactly once", i, c)
		}
	}
	// Post-recovery work must land on the survivor only.
	for _, task := range eng.ScheduleTrace() {
		if task.Device == 1 && task.Start > killAt && !task.Recovery {
			// Pre-death commits can extend past killAt; fresh commits cannot
			// start there. The auditor flags commits to a dead device; this
			// is a belt-and-braces check on the visible schedule.
			t.Errorf("task %d scheduled on dead device at t=%g (death at %g)", task.ID, task.Start, killAt)
		}
	}
}

// TestKillDeterminism: the same plan yields bit-identical digests, and a
// different kill time yields a different digest.
func TestKillDeterminism(t *testing.T) {
	run := func(at float64) Stats {
		eng := New(twoDevPlat(t), chainGraph(8, 1))
		eng.Audit = true
		eng.Inject(FaultPlan{{Kind: FaultKill, Device: 1, At: at}})
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(1e-3), run(1e-3)
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Errorf("same plan, different digests: %#x vs %#x", a.ScheduleDigest, b.ScheduleDigest)
	}
	if c := run(2e-3); c.ScheduleDigest == a.ScheduleDigest {
		t.Error("different kill times produced identical digests")
	}
}

func TestKillLastDeviceOfRankFails(t *testing.T) {
	eng := New(onePlat(t), chainGraph(4, 0))
	eng.Inject(FaultPlan{{Kind: FaultKill, Device: 0, At: 1e-6}})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Errorf("killing a rank's only device: err = %v, want unrecoverable", err)
	}
}

func TestDoubleKillIgnored(t *testing.T) {
	eng := New(twoDevPlat(t), chainGraph(6, 1))
	eng.Audit = true
	eng.Inject(FaultPlan{
		{Kind: FaultKill, Device: 1, At: 1e-4},
		{Kind: FaultKill, Device: 1, At: 2e-4},
	})
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeviceFailures != 1 {
		t.Errorf("DeviceFailures = %d, want 1 (second kill of a dead device is a no-op)", st.DeviceFailures)
	}
}

// TestTransientFaultRetry checks the retry arithmetic on a single task: the
// makespan grows by exactly backoff + one re-execution.
func TestTransientFaultRetry(t *testing.T) {
	g := newTestGraph(1)
	g.initial[1] = 0
	g.specs[0] = TaskSpec{
		Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 2e9,
		Inputs: []InputSpec{{Data: 1, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: 1, Bytes: 8 << 20},
	}
	xfer := hw.V100.H2DTime(8 << 20)
	kernel := hw.V100.KernelTime(hw.KindGemm, prec.FP64, 2e9)
	const backoff = 1e-4
	eng := New(onePlat(t), g)
	eng.Audit = true
	eng.Inject(FaultPlan{{Kind: FaultTransient, Device: 0, At: xfer + kernel/2, Backoff: backoff}})
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := xfer + 2*kernel + backoff
	if math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("retried makespan %g, want %g", st.Makespan, want)
	}
	if st.TransientFaults != 1 || st.RetriedTasks != 1 {
		t.Errorf("fault counters %d/%d, want 1/1", st.TransientFaults, st.RetriedTasks)
	}
}

// TestTransientFaultOnIdleDevice: a blip with nothing in flight is counted
// but retries nothing.
func TestTransientFaultOnIdleDevice(t *testing.T) {
	eng := New(twoDevPlat(t), chainGraph(2, 0))
	eng.Audit = true
	eng.Inject(FaultPlan{{Kind: FaultTransient, Device: 1, At: 1e-5}})
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TransientFaults != 1 || st.RetriedTasks != 0 {
		t.Errorf("counters %d/%d, want 1/0", st.TransientFaults, st.RetriedTasks)
	}
}

// TestSlowWindow doubles the H2D time of a transfer falling inside the
// window and leaves one outside it untouched.
func TestSlowWindow(t *testing.T) {
	g := newTestGraph(1)
	g.initial[1] = 0
	g.specs[0] = TaskSpec{
		Kind: hw.KindGemm, Device: 0, Prec: prec.FP64, Flops: 1e9,
		Inputs: []InputSpec{{Data: 1, WireBytes: 8 << 20}},
		Output: OutputSpec{Data: 1, Bytes: 8 << 20},
	}
	xfer := hw.V100.H2DTime(8 << 20)
	kernel := hw.V100.KernelTime(hw.KindGemm, prec.FP64, 1e9)

	eng := New(onePlat(t), g)
	eng.Audit = true
	eng.Inject(FaultPlan{{Kind: FaultSlow, Device: 0, From: 0, To: xfer, Factor: 2}})
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*xfer + kernel; math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("slowed makespan %g, want %g", st.Makespan, want)
	}

	// Window strictly after the transfer start: no effect.
	eng = New(onePlat(t), g)
	eng.Audit = true
	eng.Inject(FaultPlan{{Kind: FaultSlow, Device: 0, From: xfer + kernel, To: xfer + kernel + 1, Factor: 8}})
	st, err = eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := xfer + kernel; math.Abs(st.Makespan-want) > 1e-12 {
		t.Errorf("out-of-window makespan %g, want %g", st.Makespan, want)
	}
}

// TestBadPlanRejectedAtRun: an injector with an out-of-range device fails
// the run up front rather than mid-flight.
func TestBadPlanRejectedAtRun(t *testing.T) {
	eng := New(onePlat(t), chainGraph(2, 0))
	eng.Inject(FaultPlan{{Kind: FaultKill, Device: 7, At: 0.1}})
	if _, err := eng.Run(); err == nil {
		t.Error("out-of-range fault device did not fail the run")
	}
}

// FuzzFaultSpec feeds arbitrary strings to the -faults parser: it must
// reject malformed specs with an error, never panic, and any plan it
// accepts must validate (and round-trip through an audited engine run
// without tripping the plan check).
func FuzzFaultSpec(f *testing.F) {
	f.Add("kill:dev=1,at=0.5")
	f.Add("flaky:dev=0,at=0.2,backoff=1e-3")
	f.Add("slow:dev=2,from=0.1,to=0.3,x=8")
	f.Add("rand:seed=7,kills=1,flaky=2,slow=1,horizon=1.0")
	f.Add("kill:dev=1,at=0.5;;flaky:dev=0,at=9")
	f.Add(";;;")
	f.Add("kill:dev==1,at=0.5")
	f.Add("kill:dev=1,at=1e309")
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaultSpec(spec, 4)
		if err != nil {
			return
		}
		if verr := plan.Validate(4); verr != nil {
			t.Fatalf("accepted plan fails validation: %v (spec %q)", verr, spec)
		}
	})
}
