package runtime

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file defines the deterministic fault-injection layer. Faults are
// declared up front (by a FaultInjector) and delivered through the engine's
// own discrete-event clock, so a chaos run is exactly as reproducible as a
// fault-free one: the same plan on the same graph yields a bit-identical
// schedule digest, and in numeric mode a bit-identical factor — recovery
// re-executes *virtual* cost only, every numeric body still runs exactly
// once (see commit's orphan-body reuse).
//
// Three fault classes are modeled:
//
//   - kill: a device fails permanently at virtual time At. The engine
//     aborts its in-flight tasks, re-enqueues them (and its queued ready
//     tasks) onto same-rank survivors, reconstructs lost device-resident
//     tiles — from host copies when current, otherwise by lineage-based
//     re-execution of the writers since the last host sync — and completes
//     the run on the survivors with the extra time/energy honestly
//     accounted.
//   - flaky: a transient kernel fault at virtual time At on a device: the
//     most recently committed in-flight task fails and is retried in place
//     after Backoff seconds of idle time plus a full re-execution.
//   - slow: host-link transfers starting within [From, To) on a device take
//     Factor times longer (a degraded or timing-out PCIe/NVLink lane).

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultKill permanently removes Device at virtual time At.
	FaultKill FaultKind = iota
	// FaultTransient fails the most recently committed task on Device at
	// virtual time At; it is retried after Backoff seconds.
	FaultTransient
	// FaultSlow multiplies the duration of host-link transfers starting in
	// [From, To) on Device by Factor.
	FaultSlow
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultTransient:
		return "flaky"
	case FaultSlow:
		return "slow"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one planned fault.
type FaultEvent struct {
	Kind   FaultKind
	Device int     // global device index
	At     float64 // virtual time of a kill/flaky fault
	// Backoff is the idle delay before a transient fault's retry.
	Backoff float64
	// From/To/Factor describe a slow window (FaultSlow only).
	From, To float64
	Factor   float64
}

// FaultInjector supplies the fault plan for one run. Implementations must
// be deterministic: the same injector state and device count always yield
// the same plan — that is what makes every chaos run bit-reproducible.
type FaultInjector interface {
	Plan(numDevices int) []FaultEvent
}

// FaultPlan is a fixed list of fault events implementing FaultInjector.
// An empty (or nil) plan is a *silent* injector: the engine stays unarmed
// and behaves bit-identically to a run with no injector at all.
type FaultPlan []FaultEvent

// Plan implements FaultInjector.
func (p FaultPlan) Plan(int) []FaultEvent { return p }

// Validate checks every event for well-formedness: device indices within
// [0, numDevices) (skipped when numDevices <= 0, for use before a platform
// exists), finite non-negative times, slow factors >= 1 and From <= To.
func (p FaultPlan) Validate(numDevices int) error {
	bad := func(i int, format string, args ...any) error {
		return fmt.Errorf("runtime: fault %d (%s): %s", i, p[i].Kind, fmt.Sprintf(format, args...))
	}
	finite := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	for i, f := range p {
		if f.Kind < FaultKill || f.Kind > FaultSlow {
			return fmt.Errorf("runtime: fault %d: unknown kind %d", i, int(f.Kind))
		}
		if numDevices > 0 && (f.Device < 0 || f.Device >= numDevices) {
			return bad(i, "device %d out of range [0,%d)", f.Device, numDevices)
		}
		if f.Device < 0 {
			return bad(i, "negative device %d", f.Device)
		}
		if !finite(f.At, f.Backoff, f.From, f.To, f.Factor) {
			return bad(i, "non-finite parameter")
		}
		switch f.Kind {
		case FaultKill, FaultTransient:
			if f.At < 0 {
				return bad(i, "negative time %g", f.At)
			}
			if f.Backoff < 0 {
				return bad(i, "negative backoff %g", f.Backoff)
			}
		case FaultSlow:
			if f.From < 0 || f.To < f.From {
				return bad(i, "bad window [%g,%g)", f.From, f.To)
			}
			if f.Factor < 1 {
				return bad(i, "factor %g < 1", f.Factor)
			}
		}
	}
	return nil
}

// ParseFaultSpec parses the textual fault-plan grammar used by the CLI
// tools' -faults flag: semicolon-separated events, each `kind:key=val,...`.
//
//	kill:dev=1,at=0.5               device 1 dies at t=0.5s
//	flaky:dev=0,at=0.2,backoff=1e-3 transient kernel fault, 1ms retry delay
//	slow:dev=2,from=0.1,to=0.3,x=8  8x slower host link in [0.1,0.3)
//	rand:seed=7,kills=1,flaky=2,horizon=1.0
//	                                seeded random plan over [0,horizon)
//
// numDevices bounds device indices (and is required for rand:, which draws
// devices from it); pass 0 to skip range checking. The returned plan is
// already validated. Malformed specs return an error, never panic.
func ParseFaultSpec(spec string, numDevices int) (FaultPlan, error) {
	var plan FaultPlan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("runtime: fault spec %q: want kind:key=val,...", part)
		}
		kv, err := parseKV(rest)
		if err != nil {
			return nil, fmt.Errorf("runtime: fault spec %q: %w", part, err)
		}
		switch kind {
		case "kill":
			f := FaultEvent{Kind: FaultKill}
			if err := kv.fill(map[string]*float64{"at": &f.At}, map[string]*int{"dev": &f.Device}, "dev", "at"); err != nil {
				return nil, fmt.Errorf("runtime: fault spec %q: %w", part, err)
			}
			plan = append(plan, f)
		case "flaky":
			f := FaultEvent{Kind: FaultTransient}
			if err := kv.fill(map[string]*float64{"at": &f.At, "backoff": &f.Backoff}, map[string]*int{"dev": &f.Device}, "dev", "at"); err != nil {
				return nil, fmt.Errorf("runtime: fault spec %q: %w", part, err)
			}
			plan = append(plan, f)
		case "slow":
			f := FaultEvent{Kind: FaultSlow, Factor: 1}
			if err := kv.fill(map[string]*float64{"from": &f.From, "to": &f.To, "x": &f.Factor}, map[string]*int{"dev": &f.Device}, "dev", "from", "to", "x"); err != nil {
				return nil, fmt.Errorf("runtime: fault spec %q: %w", part, err)
			}
			plan = append(plan, f)
		case "rand":
			var seed, kills, flaky, slow int
			var horizon float64
			if err := kv.fill(map[string]*float64{"horizon": &horizon},
				map[string]*int{"seed": &seed, "kills": &kills, "flaky": &flaky, "slow": &slow},
				"seed", "horizon"); err != nil {
				return nil, fmt.Errorf("runtime: fault spec %q: %w", part, err)
			}
			if numDevices <= 0 {
				return nil, fmt.Errorf("runtime: fault spec %q: rand needs a known device count", part)
			}
			if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
				return nil, fmt.Errorf("runtime: fault spec %q: horizon must be positive and finite", part)
			}
			if kills < 0 || flaky < 0 || slow < 0 || kills+flaky+slow > 1024 {
				return nil, fmt.Errorf("runtime: fault spec %q: bad event counts", part)
			}
			plan = append(plan, RandomPlan(int64(seed), numDevices, horizon, kills, flaky, slow)...)
		default:
			return nil, fmt.Errorf("runtime: fault spec %q: unknown kind %q", part, kind)
		}
	}
	if err := plan.Validate(numDevices); err != nil {
		return nil, err
	}
	return plan, nil
}

// RandomPlan draws a reproducible fault plan from a seed: `kills` device
// failures and `flaky` transient faults at uniform times in (0, horizon),
// and `slow` transfer-slowdown windows within it. The generator is a
// hand-rolled splitmix64, so plans are stable across Go releases.
func RandomPlan(seed int64, numDevices int, horizon float64, kills, flaky, slow int) FaultPlan {
	rng := splitmix{uint64(seed)}
	if numDevices < 1 {
		numDevices = 1
	}
	var plan FaultPlan
	for i := 0; i < kills; i++ {
		plan = append(plan, FaultEvent{
			Kind:   FaultKill,
			Device: int(rng.next() % uint64(numDevices)),
			At:     rng.float() * horizon,
		})
	}
	for i := 0; i < flaky; i++ {
		plan = append(plan, FaultEvent{
			Kind:    FaultTransient,
			Device:  int(rng.next() % uint64(numDevices)),
			At:      rng.float() * horizon,
			Backoff: rng.float() * horizon / 100,
		})
	}
	for i := 0; i < slow; i++ {
		from := rng.float() * horizon
		plan = append(plan, FaultEvent{
			Kind:   FaultSlow,
			Device: int(rng.next() % uint64(numDevices)),
			From:   from,
			To:     from + rng.float()*horizon/4,
			Factor: 1 + rng.float()*7,
		})
	}
	return plan
}

// splitmix is splitmix64 (Steele, Lea, Flood 2014): a tiny, fast,
// well-distributed PRNG whose output is fixed by construction, unlike
// math/rand's unspecified-across-releases sources.
type splitmix struct{ x uint64 }

func (s *splitmix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitmix) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// kvPairs is a parsed key=value list.
type kvPairs map[string]float64

func parseKV(s string) (kvPairs, error) {
	kv := make(kvPairs)
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("field %q: want key=value", field)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("field %q: %v", field, err)
		}
		key = strings.TrimSpace(key)
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("field %q: duplicate key", field)
		}
		kv[key] = v
	}
	return kv, nil
}

// fill assigns the parsed values into the typed destinations, rejecting
// unknown keys, non-integral values for int destinations, and missing
// required keys.
func (kv kvPairs) fill(floats map[string]*float64, ints map[string]*int, required ...string) error {
	// Walk keys in sorted order so which unknown or malformed key gets
	// reported does not depend on map iteration order — fault-spec parse
	// errors are asserted verbatim by tests and must be stable.
	keys := make([]string, 0, len(kv))
	for key := range kv {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		v := kv[key]
		if dst, ok := floats[key]; ok {
			*dst = v
			continue
		}
		if dst, ok := ints[key]; ok {
			if v != math.Trunc(v) || math.Abs(v) > 1<<31 {
				return fmt.Errorf("key %q: %g is not a small integer", key, v)
			}
			*dst = int(v)
			continue
		}
		return fmt.Errorf("unknown key %q", key)
	}
	for _, req := range required {
		if _, ok := kv[req]; !ok {
			return fmt.Errorf("missing required key %q", req)
		}
	}
	return nil
}

// LineageGraph is an optional Graph capability used by the auditor during
// recovery: Writers appends the ids of every task that writes datum d, in
// execution order, so the engine can cross-check its observed lineage (the
// writers since the last host sync) is consistent with the graph's declared
// dataflow before re-executing a chain.
type LineageGraph interface {
	Writers(d DataID, buf []int) []int
}
