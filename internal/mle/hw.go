package mle

import (
	"geompc/internal/hw"
	"geompc/internal/linalg"
)

// hwSummit is the default node for likelihood evaluations (one V100).
var hwSummit = hw.SummitNode

// potrfDense and trsvDense are thin aliases keeping impact.go readable.
func potrfDense(n int, a []float64) error { return linalg.PotrfLower(n, a, n) }

func trsvDense(n int, a []float64, b []float64) { linalg.TrsvLNN(n, a, n, b) }
