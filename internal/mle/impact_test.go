package mle

import (
	"math"
	"testing"
)

func TestPrecisionImpactMonotone(t *testing.T) {
	// §V's Monte-Carlo arithmetic check: looser u_req (lower precisions)
	// must perturb the likelihood more; exact FP64 must not perturb at all.
	p, truth := testProblem(t, 100, 0)
	rows, err := PrecisionImpact(p, truth, []float64{0, 1e-9, 1e-4, 1e-2}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].MaxAbsDev != 0 || rows[0].Broken != 0 {
		t.Errorf("exact FP64 perturbed the likelihood: %+v", rows[0])
	}
	// Impact (perturbation or SPD breakage) non-decreasing in u_req.
	impact := func(r ImpactRow) float64 {
		if r.Broken > 0 {
			return math.Inf(1)
		}
		return r.MeanAbsDev
	}
	for i := 1; i < len(rows); i++ {
		if impact(rows[i])+1e-12 < impact(rows[i-1]) {
			t.Errorf("impact not monotone: u=%g gives %g after u=%g gave %g",
				rows[i].UReq, impact(rows[i]), rows[i-1].UReq, impact(rows[i-1]))
		}
	}
	// 1e-9 perturbs but only slightly; the loosest level must signal
	// clearly (visible deviation or SPD breakage).
	if rows[1].MeanAbsDev == 0 && rows[1].Broken == 0 {
		t.Error("u_req=1e-9 produced no perturbation at all; probe is vacuous")
	}
	if rows[1].MeanAbsDev > 1 {
		t.Errorf("u_req=1e-9 deviation %g too large for a validated level", rows[1].MeanAbsDev)
	}
	last := rows[len(rows)-1]
	if last.MeanAbsDev == 0 && last.Broken == 0 {
		t.Error("u_req=1e-2 produced zero impact; probe is vacuous")
	}
	if rows[0].Reference == 0 {
		t.Error("missing reference likelihood")
	}
}

func TestPrecisionImpactValidation(t *testing.T) {
	p, truth := testProblem(t, 36, 0)
	if _, err := PrecisionImpact(p, truth, []float64{0}, 0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}
