// Package mle implements Gaussian maximum log-likelihood estimation for
// geospatial modeling (§III-A): the log-likelihood
//
//	ℓ(θ) = −n/2·log(2π) − ½·log|Σ(θ)| − ½·Zᵀ·Σ(θ)⁻¹·Z
//
// is evaluated by assembling the covariance in tiles, factorizing it with
// the adaptive mixed-precision Cholesky (internal/cholesky) under a given
// required accuracy u_req, and accumulating the simulated time, energy and
// data motion of every factorization. The Monte-Carlo harness reproduces
// the parameter-estimation study of §VII-B (Figs 5 and 6).
package mle

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sync"

	"geompc/internal/cholesky"
	"geompc/internal/geo"
	"geompc/internal/linalg"
	"geompc/internal/optimize"
	"geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// Problem is one dataset plus the execution configuration used for every
// likelihood evaluation.
type Problem struct {
	Locs   []geo.Point
	Z      []float64
	Kernel geo.Kernel
	// Nugget is a diagonal regularization added to Σ (0 disables).
	Nugget float64

	// TileSize of the tiled factorization (paper: 2048; tests use smaller).
	TileSize int
	// UReq is the required accuracy u_req driving the precision map;
	// 0 runs exact FP64.
	UReq float64
	// Ladder is the precision set (defaults to prec.CholeskySet).
	Ladder []prec.Precision
	// Platform to simulate on (defaults to one Summit V100).
	Platform *runtime.Platform
	// Strategy for communication conversion (Auto = the paper's approach).
	Strategy cholesky.Strategy
	// PlanCache, when non-nil, shares one compiled schedule across all the
	// likelihood evaluations of this problem: every evaluation factorizes
	// the same tile DAG on the same platform, so after the first compile
	// each evaluation pays only the numeric bodies (see internal/plan).
	// Fit additionally memoizes the objective when a cache is set — the
	// optimizer's restart loop re-evaluates incumbents bit-exactly.
	PlanCache *plan.Cache
	// Solver selects the solve path of each likelihood evaluation: "" or
	// "direct" factorizes Σ with the adaptive mixed-precision Cholesky;
	// "cg" solves Σ⁻¹Z iteratively (internal/cg) and estimates log|Σ| by
	// stochastic Lanczos quadrature.
	Solver string
	// SLQProbes and SLQIters tune the cg path's log-det estimator
	// (defaults 4 probes × 24 Lanczos iterations); direct ignores them.
	SLQProbes int
	SLQIters  int
}

func (p *Problem) defaults() error {
	if len(p.Locs) == 0 || len(p.Locs) != len(p.Z) {
		return fmt.Errorf("mle: %d locations vs %d observations", len(p.Locs), len(p.Z))
	}
	if p.TileSize <= 0 {
		p.TileSize = 64
	}
	if p.Ladder == nil {
		p.Ladder = prec.CholeskySet
	}
	if p.Platform == nil {
		plat, err := runtime.NewPlatform(hwSummit, 1, 1)
		if err != nil {
			return err
		}
		p.Platform = plat
	}
	return nil
}

// RunStats accumulates simulated execution statistics across likelihood
// evaluations.
type RunStats struct {
	Evaluations int
	// Time is the summed simulated makespan of all factorizations.
	Time float64
	// Energy in joules, Flops executed, and data motion, summed.
	Energy                       float64
	Flops                        float64
	BytesH2D, BytesD2H, BytesNet int64
	// Iterations sums the CG iterations of iterative-solver evaluations
	// (solves plus log-det probes); 0 under the direct solver.
	Iterations int
	// Rejected counts evaluations where the covariance was not SPD.
	Rejected int
}

func (s *RunStats) accumulate(st runtime.Stats) {
	s.Time += st.Makespan
	s.Energy += st.Energy
	s.Flops += st.TotalFlops
	s.BytesH2D += st.BytesH2D
	s.BytesD2H += st.BytesD2H
	s.BytesNet += st.BytesNet
}

func (s *RunStats) add(r *cholesky.Result) {
	s.Evaluations++
	s.accumulate(r.Stats)
}

// addSolver accounts one iterative solve (an evaluation's main system).
func (s *RunStats) addSolver(r *solver.Result) {
	s.Evaluations++
	s.accumulate(r.Stats)
	s.Iterations += r.Iterations
}

// addProbe accounts one SLQ log-det probe (cost without an evaluation).
func (s *RunStats) addProbe(r *solver.Result) {
	s.accumulate(r.Stats)
	s.Iterations += r.Iterations
}

// NegLogLik evaluates −ℓ(θ). It returns +Inf (with no error) when Σ(θ) is
// not numerically SPD — the optimizer treats such θ as infeasible, the
// standard practice for Gaussian likelihoods.
func (p *Problem) NegLogLik(theta []float64, rs *RunStats) (float64, error) {
	if err := p.defaults(); err != nil {
		return 0, err
	}
	n := len(p.Locs)
	pg, qg := tile.SquarestGrid(p.Platform.Ranks)
	desc, err := tile.NewDesc(n, p.TileSize, pg, qg)
	if err != nil {
		return 0, err
	}
	mat := tile.NewMatrix(desc, false)
	mat.Fill(func(t *tile.Tile, r0, c0 int) {
		geo.CovTile(p.Locs, r0, c0, t.M, t.N, p.Kernel, theta, p.Nugget, t.Data, t.N)
	})

	var km [][]prec.Precision
	if p.UReq > 0 {
		km = precmap.FromMatrix(mat, p.UReq, p.Ladder)
	} else {
		km = precmap.UniformAll(desc.NT, prec.FP64)
	}
	maps := precmap.New(km, p.UReq)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })

	switch p.Solver {
	case "", "direct":
		// fall through to the factorization path below
	case "cg":
		return p.negLogLikCG(desc, maps, mat, rs)
	default:
		return 0, fmt.Errorf("mle: unknown solver %q (have direct, cg)", p.Solver)
	}

	res, err := cholesky.RunCached(cholesky.Config{
		Desc: desc, Maps: maps, Platform: p.Platform, Matrix: mat, Strategy: p.Strategy,
	}, p.PlanCache)
	if err != nil {
		return 0, err
	}
	if rs != nil {
		rs.add(res)
	}
	if res.Err != nil {
		if rs != nil {
			rs.Rejected++
		}
		return math.Inf(1), nil
	}

	// log|Σ| = 2·Σ log L_ii from the diagonal tiles.
	logdet := 0.0
	for k := 0; k < desc.NT; k++ {
		t := mat.At(k, k)
		for i := 0; i < t.M; i++ {
			d := t.Data[i*t.N+i]
			if d <= 0 || math.IsNaN(d) {
				if rs != nil {
					rs.Rejected++
				}
				return math.Inf(1), nil
			}
			logdet += math.Log(d)
		}
	}
	logdet *= 2

	// Quadratic form ZᵀΣ⁻¹Z = ‖L⁻¹Z‖² via a forward solve on the assembled
	// lower factor (O(n²), negligible next to the O(n³) factorization).
	l := mat.LowerToDense()
	y := append([]float64(nil), p.Z...)
	linalg.TrsvLNN(n, l, n, y)
	quad := 0.0
	for _, v := range y {
		quad += v * v
	}

	nll := 0.5 * (float64(n)*math.Log(2*math.Pi) + logdet + quad)
	if math.IsNaN(nll) {
		return math.Inf(1), nil
	}
	return nll, nil
}

// FitResult reports a completed estimation.
type FitResult struct {
	Theta     []float64
	NegLogLik float64
	Converged bool
	Stats     RunStats
}

// Fit maximizes the likelihood over the box [lo, hi], starting from start
// (the paper starts from the lower bounds with tolerance 1e-9).
//
// The search runs in log-parameter space: the Gaussian likelihood of the
// paper's kernels forms an extremely narrow curved valley in (σ², β) — a
// few percent of β mis-specification changes −ℓ by orders of magnitude —
// and the paper's BOBYQA follows such valleys with its quadratic model.
// The substitute simplex methods need the log reparameterization (all
// parameters are positive scales) to do the same; with it, the lower-bound
// start recovers the optimum in a few hundred evaluations.
func Fit(p *Problem, start, lo, hi []float64, opt optimize.Options) (*FitResult, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if len(start) != p.Kernel.NumParams() {
		return nil, fmt.Errorf("mle: start has %d params, kernel %s needs %d",
			len(start), p.Kernel.Name(), p.Kernel.NumParams())
	}
	for i := range lo {
		if lo[i] <= 0 {
			return nil, fmt.Errorf("mle: parameter %d lower bound %g must be positive", i, lo[i])
		}
	}
	var rs RunStats
	var evalErr error
	np := len(start)
	xbuf := make([]float64, np)
	obj := func(y []float64) float64 {
		for i, v := range y {
			xbuf[i] = math.Exp(v)
		}
		v, err := p.NegLogLik(xbuf, &rs)
		if err != nil {
			evalErr = err
			return math.Inf(1)
		}
		return v
	}
	logOf := func(x []float64) []float64 {
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = math.Log(v)
		}
		return out
	}
	if p.PlanCache != nil {
		// A plan cache signals a repeated-evaluation workload; memoizing the
		// objective removes the optimizer's bit-exact repeat evaluations too
		// (the restart loop re-probes incumbents at identical coordinates).
		opt.Memoize = true
	}
	res, err := optimize.Minimize(obj, logOf(start), logOf(lo), logOf(hi), opt)
	if err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	theta := make([]float64, np)
	for i, v := range res.X {
		theta[i] = math.Exp(v)
	}
	return &FitResult{
		Theta:     theta,
		NegLogLik: res.F,
		Converged: res.Converged,
		Stats:     rs,
	}, nil
}

// DefaultBounds returns the paper's optimization box: every parameter in
// [0.01, 2], with the search started at the lower bound (§VII-B).
func DefaultBounds(nparams int) (start, lo, hi []float64) {
	start = make([]float64, nparams)
	lo = make([]float64, nparams)
	hi = make([]float64, nparams)
	for i := range lo {
		lo[i], hi[i], start[i] = 0.01, 2, 0.01
	}
	return start, lo, hi
}

// Predict computes the conditional mean (simple kriging) of the field at
// the target locations given the fitted parameters, using an exact FP64
// solve: ẑ* = Σ*ᵀ Σ⁻¹ Z. Intended for held-out validation in the examples.
func Predict(p *Problem, theta []float64, targets []geo.Point) ([]float64, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	n := len(p.Locs)
	a := geo.CovMatrix(p.Locs, p.Kernel, theta, p.Nugget)
	if err := linalg.PotrfLower(n, a, n); err != nil {
		return nil, fmt.Errorf("mle: covariance not SPD at θ=%v: %w", theta, err)
	}
	// w = Σ⁻¹Z by two triangular solves.
	w := append([]float64(nil), p.Z...)
	linalg.TrsvLNN(n, a, n, w)
	linalg.TrsvLTN(n, a, n, w)
	out := make([]float64, len(targets))
	for t, pt := range targets {
		var s float64
		for i, li := range p.Locs {
			s += p.Kernel.Cov(pt.Dist(li), theta) * w[i]
		}
		out[t] = s
	}
	return out, nil
}

// MCConfig configures a Monte-Carlo parameter-estimation study (§VII-B):
// Replicas synthetic datasets are drawn from Kernel at TrueTheta and re-
// estimated at each accuracy level in UReqs (0 meaning exact FP64).
type MCConfig struct {
	Replicas  int
	N         int
	Dim       int
	Kernel    geo.Kernel
	TrueTheta []float64
	UReqs     []float64
	Nugget    float64
	TileSize  int
	Seed      uint64
	Platform  *runtime.Platform
	// MaxEvals bounds optimizer evaluations per fit (default 600).
	MaxEvals int
	// PlanCache gives each replica its own compiled-plan cache: within a
	// replica every likelihood evaluation shares one schedule, while
	// replicas stay isolated (their data — and so their precision maps —
	// differ, and sharing one cache across workers would thrash the single
	// per-shape slot).
	PlanCache bool
	// Solver selects each replica's solve path (see Problem.Solver).
	Solver string
}

// MCResult holds, for each accuracy level, the per-parameter estimate
// samples across replicas plus aggregate execution statistics.
type MCResult struct {
	UReq      float64
	Estimates [][]float64 // [param][replica]
	Failed    int         // replicas whose fit errored
	Stats     RunStats
}

// MonteCarlo runs the full study. Replicas share true parameters but use
// independent RNG streams, so results are reproducible and embarrassingly
// parallel across replicas — the harness fans them out over GOMAXPROCS
// workers, and the estimate vectors keep replica order regardless of
// completion order.
func MonteCarlo(cfg MCConfig) ([]MCResult, error) {
	if cfg.Replicas <= 0 || cfg.N <= 0 {
		return nil, fmt.Errorf("mle: bad Monte-Carlo config: replicas=%d n=%d", cfg.Replicas, cfg.N)
	}
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 600
	}
	np := cfg.Kernel.NumParams()
	results := make([]MCResult, 0, len(cfg.UReqs))
	for _, ureq := range cfg.UReqs {
		outcomes := make([]mcOutcome, cfg.Replicas)
		workers := gomaxprocs()
		if workers > cfg.Replicas {
			workers = cfg.Replicas
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range jobs {
					outcomes[r] = runReplica(cfg, ureq, r, np)
				}
			}()
		}
		for r := 0; r < cfg.Replicas; r++ {
			jobs <- r
		}
		close(jobs)
		wg.Wait()

		mc := MCResult{UReq: ureq, Estimates: make([][]float64, np)}
		for r := 0; r < cfg.Replicas; r++ {
			o := outcomes[r]
			if o.err != nil {
				if o.fit == nil {
					return nil, o.err
				}
				mc.Failed++
				continue
			}
			fit := o.fit
			for i := 0; i < np; i++ {
				mc.Estimates[i] = append(mc.Estimates[i], fit.Theta[i])
			}
			mc.Stats.Evaluations += fit.Stats.Evaluations
			mc.Stats.Time += fit.Stats.Time
			mc.Stats.Energy += fit.Stats.Energy
			mc.Stats.Flops += fit.Stats.Flops
			mc.Stats.Rejected += fit.Stats.Rejected
		}
		results = append(results, mc)
	}
	return results, nil
}

// mcOutcome is one replica's result: a fit, a counted fit failure
// (fit non-nil zero value + err), or a fatal data-generation error
// (fit nil + err).
type mcOutcome struct {
	fit *FitResult
	err error
}

// runReplica generates one replica's dataset and fits it.
func runReplica(cfg MCConfig, ureq float64, r, np int) (o mcOutcome) {
	rng := stats.NewRNG(cfg.Seed, uint64(r))
	locs := geo.GenerateLocations(cfg.N, cfg.Dim, rng)
	z, err := geo.SimulateField(locs, cfg.Kernel, cfg.TrueTheta, cfg.Nugget, rng)
	if err != nil {
		o.err = fmt.Errorf("mle: replica %d data generation: %w", r, err)
		return o
	}
	p := &Problem{
		Locs: locs, Z: z, Kernel: cfg.Kernel, Nugget: cfg.Nugget,
		TileSize: cfg.TileSize, UReq: ureq, Platform: cfg.Platform,
		Solver: cfg.Solver,
	}
	if cfg.PlanCache {
		p.PlanCache = plan.NewCache(nil)
	}
	start, lo, hi := DefaultBounds(np)
	fit, err := Fit(p, start, lo, hi, optimize.Options{Tol: 1e-9, MaxEvals: cfg.MaxEvals})
	if err != nil {
		o.fit = &FitResult{} // marks a counted (non-fatal) failure
		o.err = err
		return o
	}
	o.fit = fit
	return o
}

func gomaxprocs() int { return goruntime.GOMAXPROCS(0) }
