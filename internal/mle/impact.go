package mle

import (
	"fmt"
	"math"

	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// ImpactRow reports the Monte-Carlo arithmetic probe (§V) at one accuracy
// level: the spread of the log-likelihood when the covariance tiles are
// perturbed by stochastic rounding at the precisions the level's kernel map
// would assign.
type ImpactRow struct {
	UReq float64
	// Reference is the exact (deterministically rounded) −ℓ(θ).
	Reference float64
	// MeanAbsDev and MaxAbsDev summarize |−ℓ_perturbed − Reference| over
	// the replicas that stayed positive definite.
	MeanAbsDev, MaxAbsDev float64
	Replicas              int
	// Broken counts replicas whose perturbation destroyed positive
	// definiteness — the strongest possible "this level is too aggressive
	// for this covariance" signal.
	Broken int
}

// PrecisionImpact implements the paper's Monte-Carlo arithmetic check: for
// each candidate u_req it builds the tile-precision map, re-quantizes every
// tile with *stochastic* rounding at its assigned input format, evaluates
// the exact log-likelihood on the perturbed matrix, and reports how much
// the likelihood moves. A level whose spread is far below the likelihood
// differences the optimizer must resolve is safe to use; this is how the
// application-dependent u_req of §V is chosen.
func PrecisionImpact(p *Problem, theta []float64, ureqs []float64, replicas int, seed uint64) ([]ImpactRow, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("mle: replicas must be positive")
	}
	n := len(p.Locs)
	desc, err := tile.NewDesc(n, p.TileSize, 1, 1)
	if err != nil {
		return nil, err
	}

	buildMatrix := func() *tile.Matrix {
		m := tile.NewMatrix(desc, false)
		m.Fill(func(t *tile.Tile, r0, c0 int) {
			geo.CovTile(p.Locs, r0, c0, t.M, t.N, p.Kernel, theta, p.Nugget, t.Data, t.N)
		})
		return m
	}

	ref := denseNLL(p, theta)
	var rows []ImpactRow
	for _, u := range ureqs {
		base := buildMatrix()
		var km [][]prec.Precision
		if u > 0 {
			km = precmap.FromMatrix(base, u, p.Ladder)
		} else {
			km = precmap.UniformAll(desc.NT, prec.FP64)
		}
		row := ImpactRow{UReq: u, Reference: ref, Replicas: replicas}
		ok := 0
		for r := 0; r < replicas; r++ {
			rng := stats.NewRNG(seed, uint64(r)+1)
			m := buildMatrix()
			for i := 0; i < desc.NT; i++ {
				for j := 0; j <= i; j++ {
					t := m.At(i, j)
					prec.QuantizeStochastic(t.Data, inputFormat(km[i][j]), rng.Float64)
				}
			}
			v := denseNLLFromTiles(p, m)
			if math.IsInf(v, 0) {
				row.Broken++
				continue
			}
			ok++
			d := math.Abs(v - ref)
			row.MeanAbsDev += d
			if d > row.MaxAbsDev {
				row.MaxAbsDev = d
			}
		}
		if ok > 0 {
			row.MeanAbsDev /= float64(ok)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// inputFormat maps a kernel precision to the element format its data is
// consumed in (half-input formats share binary16).
func inputFormat(p prec.Precision) prec.Precision {
	switch p {
	case prec.FP64:
		return prec.FP64
	case prec.FP32, prec.TF32:
		return prec.FP32
	default:
		return prec.FP16
	}
}

// denseNLL evaluates −ℓ(θ) exactly (FP64 dense path).
func denseNLL(p *Problem, theta []float64) float64 {
	n := len(p.Locs)
	a := geo.CovMatrix(p.Locs, p.Kernel, theta, p.Nugget)
	return nllFromDense(p, a, n)
}

// denseNLLFromTiles evaluates −ℓ on an already-built (possibly perturbed)
// tile matrix, exactly.
func denseNLLFromTiles(p *Problem, m *tile.Matrix) float64 {
	return nllFromDense(p, m.ToDense(), m.N)
}

func nllFromDense(p *Problem, a []float64, n int) float64 {
	if err := potrfDense(n, a); err != nil {
		return math.Inf(1)
	}
	logdet := 0.0
	for i := 0; i < n; i++ {
		logdet += math.Log(a[i*n+i])
	}
	logdet *= 2
	y := append([]float64(nil), p.Z...)
	trsvDense(n, a, y)
	quad := 0.0
	for _, v := range y {
		quad += v * v
	}
	return 0.5 * (float64(n)*math.Log(2*math.Pi) + logdet + quad)
}
