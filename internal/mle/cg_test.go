package mle

import (
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/linalg"
	"geompc/internal/stats"
)

// cgProblem builds a small, well-conditioned dataset for solver-path tests.
func cgProblem(t *testing.T) *Problem {
	t.Helper()
	rng := stats.NewRNG(11, 0)
	n := 96
	locs := geo.GenerateLocations(n, 2, rng)
	kernel := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	z, err := geo.SimulateField(locs, kernel, theta, 1e-2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Locs: locs, Z: z, Kernel: kernel, Nugget: 1e-2,
		TileSize: 32, UReq: 1e-6,
	}
}

func TestNegLogLikCGMatchesDirect(t *testing.T) {
	p := cgProblem(t)
	theta := []float64{1, 0.05}

	var direct RunStats
	dv, err := p.NegLogLik(theta, &direct)
	if err != nil {
		t.Fatal(err)
	}

	pc := cgProblem(t)
	pc.Solver = "cg"
	pc.SLQProbes = 8
	pc.SLQIters = 32
	var iter RunStats
	cv, err := pc.NegLogLik(theta, &iter)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cv, 1) {
		t.Fatalf("cg path rejected a feasible θ (direct gave %g)", dv)
	}

	// The quad term is solved to 1e-10; the only disagreement is the SLQ
	// log-det estimate, bounded by its sampling error (≲10% of |log det|).
	n := len(p.Locs)
	a := geo.CovMatrix(p.Locs, p.Kernel, theta, p.Nugget)
	if err := linalg.PotrfLower(n, a, n); err != nil {
		t.Fatal(err)
	}
	logdet := 0.0
	for i := 0; i < n; i++ {
		logdet += 2 * math.Log(a[i*n+i])
	}
	if tol := 0.10*math.Abs(logdet)/2 + 1e-6; math.Abs(cv-dv) > tol {
		t.Errorf("NLL diverged: direct %g vs cg %g (tolerance %g)", dv, cv, tol)
	}

	if iter.Iterations == 0 {
		t.Error("cg path reported zero iterations")
	}
	if iter.Evaluations != 1 {
		t.Errorf("cg path counted %d evaluations, want 1", iter.Evaluations)
	}
	if iter.Time <= 0 || iter.Energy <= 0 {
		t.Errorf("cg path accumulated degenerate stats: %+v", iter)
	}
	// Probe cost must be metered: the cg evaluation runs the solve plus
	// SLQProbes probe solves.
	if iter.Time <= direct.Time/1e3 {
		t.Errorf("cg path accumulated implausibly little simulated time: %g", iter.Time)
	}
}

func TestNegLogLikUnknownSolver(t *testing.T) {
	p := cgProblem(t)
	p.Solver = "qr"
	if _, err := p.NegLogLik([]float64{1, 0.05}, nil); err == nil {
		t.Fatal("unknown solver did not error")
	}
}

func TestNegLogLikCGDeterministic(t *testing.T) {
	// Two evaluations at the same θ must agree bit-for-bit (memoization
	// and the Monte-Carlo harness rely on this).
	p := cgProblem(t)
	p.Solver = "cg"
	theta := []float64{1, 0.05}
	v1, err := p.NegLogLik(theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.NegLogLik(theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("NLL not deterministic: %x vs %x", math.Float64bits(v1), math.Float64bits(v2))
	}
}
