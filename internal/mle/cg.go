package mle

import (
	"errors"
	"math"

	"geompc/internal/cg"
	"geompc/internal/precmap"
	"geompc/internal/solver"
	"geompc/internal/tile"
)

// slqSeed fixes the Rademacher probe streams of the log-det estimator so
// every likelihood evaluation of a problem reuses the same probes — the
// objective stays a deterministic function of θ, which the optimizer's
// memoization and the Monte-Carlo reproducibility both rely on.
const slqSeed = 0x51c9

// negLogLikCG evaluates −ℓ(θ) through the iterative backend: the weights
// w = Σ⁻¹Z come from a preconditioned CG solve and log|Σ| from stochastic
// Lanczos quadrature over the same task-graph engine, so the evaluation's
// simulated cost (solve + probes) accumulates into rs exactly like the
// direct path's factorizations do.
func (p *Problem) negLogLikCG(desc tile.Desc, maps *precmap.Maps, mat *tile.Matrix, rs *RunStats) (float64, error) {
	n := len(p.Locs)
	scfg := solver.Config{
		Desc: desc, Maps: maps, Platform: p.Platform, Matrix: mat,
		RHS: p.Z, Strategy: p.Strategy,
	}
	res, err := cg.RunCached(scfg, p.PlanCache)
	if err != nil {
		if errors.Is(err, cg.ErrNotSPD) {
			if rs != nil {
				rs.Rejected++
			}
			return math.Inf(1), nil
		}
		return 0, err
	}
	if rs != nil {
		rs.addSolver(res)
	}
	if res.Err != nil || !res.Converged {
		if rs != nil {
			rs.Rejected++
		}
		return math.Inf(1), nil
	}
	quad := 0.0
	for i, v := range p.Z {
		quad += v * res.Solution[i]
	}

	logdet, probeRes, err := cg.LogDetSLQ(scfg, p.SLQProbes, p.SLQIters, slqSeed)
	if rs != nil {
		for _, pr := range probeRes {
			rs.addProbe(pr)
		}
	}
	if err != nil {
		// A failed probe (breakdown, non-positive Ritz value) is the
		// iterative analogue of a non-SPD pivot: θ is infeasible.
		if errors.Is(err, cg.ErrNotSPD) {
			if rs != nil {
				rs.Rejected++
			}
			return math.Inf(1), nil
		}
		return 0, err
	}

	nll := 0.5 * (float64(n)*math.Log(2*math.Pi) + logdet + quad)
	if math.IsNaN(nll) {
		return math.Inf(1), nil
	}
	return nll, nil
}
