package mle

import (
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/linalg"
	"geompc/internal/optimize"
	"geompc/internal/stats"
)

// denseNegLogLik is an independent reference implementation of −ℓ(θ).
func denseNegLogLik(locs []geo.Point, z []float64, k geo.Kernel, theta []float64, nugget float64) float64 {
	n := len(locs)
	a := geo.CovMatrix(locs, k, theta, nugget)
	if err := linalg.PotrfLower(n, a, n); err != nil {
		return math.Inf(1)
	}
	logdet := 0.0
	for i := 0; i < n; i++ {
		logdet += math.Log(a[i*n+i])
	}
	logdet *= 2
	y := append([]float64(nil), z...)
	linalg.TrsvLNN(n, a, n, y)
	quad := 0.0
	for _, v := range y {
		quad += v * v
	}
	return 0.5 * (float64(n)*math.Log(2*math.Pi) + logdet + quad)
}

func testProblem(t *testing.T, n int, ureq float64) (*Problem, []float64) {
	t.Helper()
	rng := stats.NewRNG(7, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	k := geo.SqExp{Dimension: 2}
	truth := []float64{1.0, 0.1}
	z, err := geo.SimulateField(locs, k, truth, 1e-8, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Locs: locs, Z: z, Kernel: k, Nugget: 1e-8, TileSize: 32, UReq: ureq,
	}, truth
}

func TestNegLogLikMatchesDense(t *testing.T) {
	p, truth := testProblem(t, 100, 0) // exact FP64
	got, err := p.NegLogLik(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := denseNegLogLik(p.Locs, p.Z, p.Kernel, truth, p.Nugget)
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("NegLogLik = %.10g, dense reference %.10g", got, want)
	}
}

func TestNegLogLikMPCloseToExact(t *testing.T) {
	p, truth := testProblem(t, 100, 0)
	exact, err := p.NegLogLik(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.UReq = 1e-9
	tight, err := p.NegLogLik(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight-exact) > 1e-3*math.Abs(exact)+0.5 {
		t.Errorf("u_req=1e-9 likelihood %.8g too far from exact %.8g", tight, exact)
	}
}

func TestNegLogLikMaximizedNearTruth(t *testing.T) {
	// −ℓ at the truth must be below −ℓ at clearly wrong parameters.
	p, truth := testProblem(t, 100, 0)
	atTruth, _ := p.NegLogLik(truth, nil)
	for _, wrong := range [][]float64{{0.2, 0.1}, {1.0, 0.9}, {1.9, 0.02}} {
		v, _ := p.NegLogLik(wrong, nil)
		if v <= atTruth {
			t.Errorf("NLL(%v) = %g not above NLL(truth) = %g", wrong, v, atTruth)
		}
	}
}

func TestNegLogLikRejectsBadTheta(t *testing.T) {
	p, _ := testProblem(t, 64, 0)
	var rs RunStats
	v, err := p.NegLogLik([]float64{-1, 0.1}, &rs)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v, 1) {
		t.Errorf("negative variance gave finite likelihood %g", v)
	}
	if rs.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", rs.Rejected)
	}
}

func TestFitRecoversParameters(t *testing.T) {
	p, truth := testProblem(t, 196, 0)
	start, lo, hi := DefaultBounds(2)
	fit, err := Fit(p, start, lo, hi, optimize.Options{Tol: 1e-9, MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	// One replica at n=196: expect rough recovery (MC sampling noise).
	if math.Abs(fit.Theta[0]-truth[0]) > 0.5 {
		t.Errorf("sigma2 estimate %g far from truth %g", fit.Theta[0], truth[0])
	}
	if math.Abs(fit.Theta[1]-truth[1]) > 0.1 {
		t.Errorf("beta estimate %g far from truth %g", fit.Theta[1], truth[1])
	}
	if fit.Stats.Evaluations == 0 || fit.Stats.Time <= 0 || fit.Stats.Energy <= 0 {
		t.Errorf("execution stats not accumulated: %+v", fit.Stats)
	}
}

func TestFitMPMatchesExactFit(t *testing.T) {
	// The paper's core claim: u_req=1e-9 estimation ≈ exact estimation.
	pExact, _ := testProblem(t, 144, 0)
	pMP, _ := testProblem(t, 144, 1e-9)
	start, lo, hi := DefaultBounds(2)
	fe, err := Fit(pExact, start, lo, hi, optimize.Options{Tol: 1e-9, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := Fit(pMP, start, lo, hi, optimize.Options{Tol: 1e-9, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	// The σ² direction of the sqexp likelihood is nearly flat, so compare
	// optima by likelihood value under the exact model rather than by hard
	// per-parameter distance.
	for i := range fe.Theta {
		if math.Abs(fe.Theta[i]-fm.Theta[i]) > 0.15 {
			t.Errorf("param %d: exact %g vs MP@1e-9 %g", i, fe.Theta[i], fm.Theta[i])
		}
	}
	atExact, _ := pExact.NegLogLik(fe.Theta, nil)
	atMP, _ := pExact.NegLogLik(fm.Theta, nil)
	if math.Abs(atExact-atMP) > 0.5 {
		t.Errorf("MP optimum is %.3f worse in exact likelihood (%.4f vs %.4f)",
			atMP-atExact, atMP, atExact)
	}
}

func TestPredictInterpolates(t *testing.T) {
	// Prediction at an observed location with negligible nugget must return
	// (nearly) the observation itself.
	p, truth := testProblem(t, 100, 0)
	got, err := Predict(p, truth, []geo.Point{p.Locs[3], p.Locs[50]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-p.Z[3]) > 1e-4 || math.Abs(got[1]-p.Z[50]) > 1e-4 {
		t.Errorf("kriging at observed points: got %v, want %g, %g", got, p.Z[3], p.Z[50])
	}
}

func TestPredictErrorPropagation(t *testing.T) {
	p, _ := testProblem(t, 36, 0)
	if _, err := Predict(p, []float64{-1, 0.1}, []geo.Point{{X: 0.5, Y: 0.5}}); err == nil {
		t.Error("Predict accepted non-SPD theta")
	}
}

func TestMonteCarloSmall(t *testing.T) {
	cfg := MCConfig{
		Replicas: 4, N: 100, Dim: 2,
		Kernel:    geo.SqExp{Dimension: 2},
		TrueTheta: []float64{1, 0.1},
		UReqs:     []float64{0, 1e-9},
		Nugget:    1e-8, TileSize: 32, Seed: 11, MaxEvals: 250,
	}
	res, err := MonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d result sets, want 2", len(res))
	}
	for _, r := range res {
		if r.Failed > 0 {
			t.Errorf("u_req=%g: %d replicas failed", r.UReq, r.Failed)
		}
		if len(r.Estimates[0]) != cfg.Replicas {
			t.Fatalf("u_req=%g: %d estimates", r.UReq, len(r.Estimates[0]))
		}
		med := stats.Summarize(r.Estimates[1]).Median
		if math.Abs(med-0.1) > 0.08 {
			t.Errorf("u_req=%g: median beta %g far from 0.1", r.UReq, med)
		}
	}
	// Exact and 1e-9 medians must be close to each other (Fig 5's message).
	m0 := stats.Summarize(res[0].Estimates[1]).Median
	m9 := stats.Summarize(res[1].Estimates[1]).Median
	if math.Abs(m0-m9) > 0.03 {
		t.Errorf("median beta: exact %g vs 1e-9 %g", m0, m9)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(MCConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestProblemValidation(t *testing.T) {
	p := &Problem{Locs: make([]geo.Point, 3), Z: make([]float64, 2), Kernel: geo.SqExp{Dimension: 2}}
	if _, err := p.NegLogLik([]float64{1, 1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	p2 := &Problem{Locs: make([]geo.Point, 2), Z: make([]float64, 2), Kernel: geo.SqExp{Dimension: 2}}
	if _, err := Fit(p2, []float64{1}, []float64{0}, []float64{2}, optimize.Options{}); err == nil {
		t.Error("wrong start dimension accepted")
	}
}
