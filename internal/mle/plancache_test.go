package mle

// Plan-cache equivalence: an MLE fit through a plan cache must be
// numerically indistinguishable from one without — same likelihood values,
// same estimates — while actually serving evaluations from replays.

import (
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/optimize"
	"geompc/internal/plan"
)

func TestNegLogLikCachedEquivalent(t *testing.T) {
	for _, ureq := range []float64{0, 1e-6} {
		p, truth := testProblem(t, 96, ureq)
		want, err := p.NegLogLik(truth, nil)
		if err != nil {
			t.Fatal(err)
		}

		pc, _ := testProblem(t, 96, ureq)
		pc.PlanCache = plan.NewCache(nil)
		// Evaluate twice: the first compiles, the second replays.
		for i := 0; i < 2; i++ {
			got, err := pc.NegLogLik(truth, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ureq=%g eval %d: cached NegLogLik %.17g != fresh %.17g", ureq, i, got, want)
			}
		}
		s := pc.PlanCache.Stats()
		if s.Misses != 1 {
			t.Fatalf("ureq=%g: cache stats %+v, want 1 miss", ureq, s)
		}
		// With a theta-independent precision map (exact FP64) the second
		// evaluation must be a pure replay; an adaptive map may legitimately
		// re-derive and invalidate instead.
		if ureq == 0 && s.Hits != 1 {
			t.Fatalf("exact FP64: cache stats %+v, want 1 hit", s)
		}
	}
}

func TestFitCachedEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("full fit in -short mode")
	}
	const n = 80
	opt := optimize.Options{Tol: 1e-9, MaxEvals: 120}

	p, _ := testProblem(t, n, 0)
	start, lo, hi := DefaultBounds(p.Kernel.NumParams())
	ref, err := Fit(p, start, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}

	pc, _ := testProblem(t, n, 0)
	pc.PlanCache = plan.NewCache(nil)
	got, err := Fit(pc, start, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}

	if got.NegLogLik != ref.NegLogLik {
		t.Fatalf("cached fit NLL %.17g != fresh %.17g", got.NegLogLik, ref.NegLogLik)
	}
	for i := range ref.Theta {
		if got.Theta[i] != ref.Theta[i] {
			t.Fatalf("cached theta[%d] %.17g != fresh %.17g", i, got.Theta[i], ref.Theta[i])
		}
	}

	s := pc.PlanCache.Stats()
	if s.Misses != 1 || s.Hits == 0 {
		t.Fatalf("cache stats %+v, want exactly 1 compile and >0 replays", s)
	}
	// Memoization means the cached fit performs at most as many simulated
	// factorizations as the fresh one (strictly fewer whenever the
	// optimizer repeats a point; equality is allowed to keep this robust).
	if got.Stats.Evaluations > ref.Stats.Evaluations {
		t.Fatalf("cached fit simulated %d factorizations, fresh %d",
			got.Stats.Evaluations, ref.Stats.Evaluations)
	}
	if math.IsInf(got.NegLogLik, 0) {
		t.Fatal("fit did not find a finite optimum")
	}
}

func TestMonteCarloPlanCache(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo in -short mode")
	}
	cfg := MCConfig{
		Replicas: 2, N: 64, Dim: 2,
		Kernel:    geo.SqExp{Dimension: 2},
		TrueTheta: []float64{1.0, 0.1},
		UReqs:     []float64{0},
		Nugget:    1e-8, TileSize: 32, Seed: 11, MaxEvals: 60,
	}
	ref, err := MonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PlanCache = true
	got, err := MonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("result count %d != %d", len(got), len(ref))
	}
	for li := range ref {
		for pi := range ref[li].Estimates {
			for ri := range ref[li].Estimates[pi] {
				if got[li].Estimates[pi][ri] != ref[li].Estimates[pi][ri] {
					t.Fatalf("estimate [%d][%d][%d] diverged under the plan cache: %.17g != %.17g",
						li, pi, ri, got[li].Estimates[pi][ri], ref[li].Estimates[pi][ri])
				}
			}
		}
	}
}
