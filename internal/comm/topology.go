package comm

import (
	"fmt"
	"math"
)

// Topology shapes a one-to-n broadcast over the inter-rank network. The
// engine charges the sender's NIC for SenderHops hop-durations and delivers
// the data to the i-th receiver ArrivalHops hop-durations after the NIC
// transfer starts, where one hop is the NIC's Time for the payload.
//
// Hop counts are returned as float64 because they multiply hop durations
// directly; implementations must be deterministic pure functions.
type Topology interface {
	Name() string
	// SenderHops is how many hop-durations the sender's NIC is occupied to
	// broadcast to n receivers.
	SenderHops(n int) float64
	// ArrivalHops is how many hop-durations after the NIC start receiver i
	// (0-based, of n) has the data.
	ArrivalHops(i, n int) float64
}

// Binomial is the binomial-tree broadcast — the engine's historical (and
// default) behavior: the root sends once, then every holder forwards in
// parallel, so all n receivers have the data after ceil(log2(n+1)) hops.
type Binomial struct{}

func (Binomial) Name() string             { return "binomial" }
func (Binomial) SenderHops(n int) float64 { return 1 }
func (Binomial) ArrivalHops(i, n int) float64 {
	return math.Ceil(math.Log2(float64(n) + 1))
}

// Flat is a sequential root-sends-to-everyone broadcast: the sender's NIC
// is held for n hops and receiver i has the data after i+1 of them. The
// worst sender occupancy, the best single-receiver latency.
type Flat struct{}

func (Flat) Name() string                 { return "flat" }
func (Flat) SenderHops(n int) float64     { return float64(n) }
func (Flat) ArrivalHops(i, n int) float64 { return float64(i) + 1 }

// Chain is a pipeline: the root sends to the first receiver only (one hop
// of NIC occupancy) and the data ripples down the chain, reaching receiver
// i after i+1 hops. The cheapest sender occupancy, the worst tail latency.
type Chain struct{}

func (Chain) Name() string                 { return "chain" }
func (Chain) SenderHops(n int) float64     { return 1 }
func (Chain) ArrivalHops(i, n int) float64 { return float64(i) + 1 }

// Topologies returns every built-in broadcast topology, default first.
func Topologies() []Topology {
	return []Topology{Binomial{}, Flat{}, Chain{}}
}

// TopologyByName resolves "binomial", "flat" or "chain". The empty string
// resolves to the default (binomial).
func TopologyByName(name string) (Topology, error) {
	switch name {
	case "", "binomial":
		return Binomial{}, nil
	case "flat":
		return Flat{}, nil
	case "chain":
		return Chain{}, nil
	}
	return nil, fmt.Errorf("comm: unknown broadcast topology %q (want binomial, flat or chain)", name)
}
