package comm

import (
	"math"
	"testing"

	"geompc/internal/hw"
)

func TestLinkBookkeeping(t *testing.T) {
	spec := hw.LinkSpec{Bw: 50e9, Lat: 10e-6, Power: 25}
	l := NewLink("dev0/h2d", spec, true)

	if got, want := l.Time(50e9), 1+10e-6; got != want {
		t.Fatalf("Time(50e9) = %g, want %g", got, want)
	}
	// First booking starts at the data-availability bound.
	s1 := l.StartAfter(3.0)
	if s1 != 3.0 {
		t.Fatalf("StartAfter on idle link = %g, want 3", s1)
	}
	end1 := l.Occupy(s1, 2.0, 1024)
	if end1 != 5.0 || l.Free() != 5.0 {
		t.Fatalf("Occupy end = %g free = %g, want 5", end1, l.Free())
	}
	// Second booking serializes behind the first even if its data was ready
	// earlier.
	s2 := l.StartAfter(1.0)
	if s2 != 5.0 {
		t.Fatalf("StartAfter on busy link = %g, want 5", s2)
	}
	l.Occupy(s2, 1.5, 2048)
	if got, want := l.Busy(), 3.5; got != want {
		t.Fatalf("Busy = %g, want %g", got, want)
	}

	ivs := l.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].End {
			t.Errorf("intervals overlap: [%g,%g) then [%g,%g)", ivs[i-1].Start, ivs[i-1].End, ivs[i].Start, ivs[i].End)
		}
	}
	if ivs[0].Power != 25 || ivs[0].Bytes != 1024 {
		t.Errorf("interval carries power=%g bytes=%d, want 25/1024", ivs[0].Power, ivs[0].Bytes)
	}
	if l.Name() != "dev0/h2d" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLinkUntracedKeepsNoIntervals(t *testing.T) {
	l := NewLink("nic", hw.LinkSpec{Bw: 23e9, Lat: 1.5e-6}, false)
	l.Occupy(l.StartAfter(0), 1, 64)
	if l.Intervals() != nil {
		t.Fatalf("untraced link recorded %d intervals", len(l.Intervals()))
	}
	if l.Busy() != 1 {
		t.Fatalf("Busy = %g, want 1", l.Busy())
	}
}

func TestBinomialMatchesHistoricalBroadcast(t *testing.T) {
	// The engine's historical inline broadcast: sender NIC held one hop,
	// every receiver served after ceil(log2(n+1)) hops.
	b := Binomial{}
	for n := 1; n <= 400; n++ {
		want := math.Ceil(math.Log2(float64(n) + 1))
		for _, i := range []int{0, n / 2, n - 1} {
			if got := b.ArrivalHops(i, n); got != want {
				t.Fatalf("Binomial.ArrivalHops(%d, %d) = %g, want %g", i, n, got, want)
			}
		}
		if got := b.SenderHops(n); got != 1 {
			t.Fatalf("Binomial.SenderHops(%d) = %g, want 1", n, got)
		}
	}
}

func TestFlatAndChainShapes(t *testing.T) {
	f, c := Flat{}, Chain{}
	const n = 7
	if f.SenderHops(n) != n {
		t.Errorf("Flat.SenderHops(%d) = %g, want %d", n, f.SenderHops(n), n)
	}
	if c.SenderHops(n) != 1 {
		t.Errorf("Chain.SenderHops(%d) = %g, want 1", n, c.SenderHops(n))
	}
	for i := 0; i < n; i++ {
		if f.ArrivalHops(i, n) != float64(i)+1 {
			t.Errorf("Flat.ArrivalHops(%d,%d) = %g", i, n, f.ArrivalHops(i, n))
		}
		if c.ArrivalHops(i, n) != float64(i)+1 {
			t.Errorf("Chain.ArrivalHops(%d,%d) = %g", i, n, c.ArrivalHops(i, n))
		}
	}
	// Every topology's last receiver is served no earlier than its first.
	for _, topo := range Topologies() {
		if topo.ArrivalHops(n-1, n) < topo.ArrivalHops(0, n) {
			t.Errorf("%s: arrival hops not monotone", topo.Name())
		}
	}
}

func TestTopologyByName(t *testing.T) {
	for _, want := range Topologies() {
		got, err := TopologyByName(want.Name())
		if err != nil || got.Name() != want.Name() {
			t.Errorf("TopologyByName(%q) = %v, %v", want.Name(), got, err)
		}
	}
	if def, err := TopologyByName(""); err != nil || def.Name() != "binomial" {
		t.Errorf("TopologyByName(\"\") = %v, %v; want binomial", def, err)
	}
	if _, err := TopologyByName("hypercube"); err == nil {
		t.Error("TopologyByName(hypercube) succeeded, want error")
	}
}
