// Package comm models the communication fabric of the simulated machine as
// first-class resources: every host-link direction (PCIe/NVLink up and
// down), every intra-node peer lane and every rank's NIC is a Link — a
// serial resource with its own free time, cumulative busy time and
// (optionally) a traced interval log — and collective data movement is
// shaped by a pluggable broadcast Topology.
//
// The runtime engine used to fold all of this into ad-hoc scalar fields
// (h2dFree, nicFree, ...); extracting it here makes links auditable (the
// invariant auditor proves per-link intervals never overlap and integrate
// to the link's busy time) and lets experiments swap the network shape
// (Fig 11/12) without touching the engine. The float arithmetic is kept
// bit-identical to the historical inline code: StartAfter is the same
// math.Max chain, Time the same latency + bytes/bandwidth expression.
package comm

import (
	"math"

	"geompc/internal/hw"
)

// Interval is a traced activity window on a device stream or a link.
type Interval struct {
	Start, End float64
	Power      float64 // dynamic watts during the window (trace use)
	Bytes      int64   // bytes moved, for transfer streams (0 for compute)
}

// Link is one serial transfer resource. A transfer is booked in two steps —
// StartAfter to find the earliest start, Occupy to commit a duration — so
// callers can derive the duration from the start time (the fault injector's
// slow windows scale a transfer by a factor that depends on when it begins).
type Link struct {
	name string
	spec hw.LinkSpec

	free  float64 // next instant the link is idle
	busy  float64 // cumulative occupied time
	trace bool
	ivs   []Interval
}

// NewLink builds an idle link. With trace set, every Occupy appends to the
// interval log.
func NewLink(name string, spec hw.LinkSpec, trace bool) *Link {
	return &Link{name: name, spec: spec, trace: trace}
}

// Name identifies the link in traces and audit reports.
func (l *Link) Name() string { return l.name }

// Spec returns the link's timing/power model.
func (l *Link) Spec() hw.LinkSpec { return l.spec }

// Time returns the nominal transfer time of nbytes over the link.
func (l *Link) Time(nbytes int64) float64 { return l.spec.Time(nbytes) }

// StartAfter returns the earliest instant a transfer may begin: when the
// link is free and the data is available.
//
//geompc:hot
func (l *Link) StartAfter(earliest float64) float64 {
	return math.Max(l.free, earliest)
}

// Occupy books the link for [start, start+dur), returning the end time.
// Callers must pass a start ≥ StartAfter(...) of the same booking round;
// the link's intervals are then non-overlapping by construction.
//
//geompc:hot
func (l *Link) Occupy(start, dur float64, nbytes int64) float64 {
	end := start + dur
	l.free = end
	l.busy += dur
	if l.trace {
		l.ivs = append(l.ivs, Interval{Start: start, End: end, Power: l.spec.Power, Bytes: nbytes})
	}
	return end
}

// Free returns the next instant the link is idle.
func (l *Link) Free() float64 { return l.free }

// Busy returns the cumulative time the link has been occupied.
func (l *Link) Busy() float64 { return l.busy }

// Intervals returns the traced occupancy log (nil when tracing is off).
// The slice stays valid until the next Occupy.
func (l *Link) Intervals() []Interval { return l.ivs }
