package geo

import (
	"math"
	"testing"
	"testing/quick"

	"geompc/internal/linalg"
	"geompc/internal/stats"
)

func TestGenerateLocations2D(t *testing.T) {
	rng := stats.NewRNG(1, 0)
	pts := GenerateLocations(100, 2, rng)
	if len(pts) != 100 {
		t.Fatalf("got %d points, want 100", len(pts))
	}
	for i, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Errorf("point %d outside unit square: %+v", i, p)
		}
		if p.Z != 0 {
			t.Errorf("2D point %d has nonzero Z", i)
		}
	}
	// Distinctness (jittered grid must not collide).
	for i := 1; i < len(pts); i++ {
		if pts[i] == pts[i-1] {
			t.Errorf("duplicate adjacent points at %d", i)
		}
	}
}

func TestGenerateLocations3D(t *testing.T) {
	rng := stats.NewRNG(2, 0)
	pts := GenerateLocations(64, 3, rng)
	if len(pts) != 64 {
		t.Fatalf("got %d points, want 64", len(pts))
	}
	hasZ := false
	for _, p := range pts {
		if p.Z != 0 {
			hasZ = true
		}
		if p.Z < 0 || p.Z > 1 {
			t.Errorf("Z outside cube: %v", p.Z)
		}
	}
	if !hasZ {
		t.Error("3D points all have Z == 0")
	}
}

func TestMortonLocality(t *testing.T) {
	// Morton ordering must make index-adjacent points spatially closer on
	// average than a random pairing — that is its whole purpose.
	rng := stats.NewRNG(3, 0)
	pts := GenerateLocations(400, 2, rng)
	var adj float64
	for i := 1; i < len(pts); i++ {
		adj += pts[i].Dist(pts[i-1])
	}
	adj /= float64(len(pts) - 1)
	var far float64
	cnt := 0
	for i := 0; i < len(pts); i += 7 {
		for j := i + 200; j < len(pts); j += 97 {
			far += pts[i].Dist(pts[j])
			cnt++
		}
	}
	far /= float64(cnt)
	if adj >= far/2 {
		t.Errorf("Morton order not local: adjacent mean %g vs distant mean %g", adj, far)
	}
}

func TestSqExpProperties(t *testing.T) {
	k := SqExp{Dimension: 2}
	theta := []float64{1.5, 0.1}
	if got := k.Cov(0, theta); got != 1.5 {
		t.Errorf("C(0) = %g, want σ² = 1.5", got)
	}
	if k.NumParams() != 2 || k.Name() != "2D-sqexp" || k.Dim() != 2 {
		t.Error("SqExp metadata wrong")
	}
	// Monotone decreasing in h, positive.
	prev := math.Inf(1)
	for h := 0.0; h < 2; h += 0.05 {
		v := k.Cov(h, theta)
		if v < 0 || v > prev {
			t.Fatalf("sqexp not monotone/positive at h=%g", h)
		}
		prev = v
	}
	// Exact value.
	want := 1.5 * math.Exp(-0.04/0.1)
	if got := k.Cov(0.2, theta); math.Abs(got-want) > 1e-15 {
		t.Errorf("C(0.2) = %g, want %g", got, want)
	}
	if (SqExp{Dimension: 3}).Name() != "3D-sqexp" {
		t.Error("3D name wrong")
	}
}

func TestMaternHalfIsExponential(t *testing.T) {
	k := Matern{Dimension: 2}
	theta := []float64{2.0, 0.3, 0.5}
	for _, h := range []float64{0, 0.01, 0.1, 0.5, 1, 3} {
		want := 2.0 * math.Exp(-h/0.3)
		if got := k.Cov(h, theta); math.Abs(got-want) > 1e-12*want {
			t.Errorf("Matern(ν=1/2) at h=%g: %g, want %g", h, got, want)
		}
	}
}

func TestMaternSmoothnessOrdering(t *testing.T) {
	// At short range, higher ν (smoother field) keeps correlation higher.
	k := Matern{Dimension: 2}
	h := 0.05
	rough := k.Cov(h, []float64{1, 0.1, 0.5})
	smooth := k.Cov(h, []float64{1, 0.1, 1.0})
	if !(smooth > rough) {
		t.Errorf("smooth (ν=1) correlation %g not above rough (ν=0.5) %g at h=%g", smooth, rough, h)
	}
}

func TestMaternContinuityAtZero(t *testing.T) {
	k := Matern{Dimension: 2}
	for _, nu := range []float64{0.5, 1, 1.5, 2.3} {
		theta := []float64{1, 0.2, nu}
		v := k.Cov(1e-12, theta)
		if math.Abs(v-1) > 1e-6 {
			t.Errorf("ν=%g: C(h→0) = %g, want → σ² = 1", nu, v)
		}
	}
}

func TestMaternTailUnderflow(t *testing.T) {
	k := Matern{Dimension: 2}
	v := k.Cov(1000, []float64{1, 0.01, 1})
	if math.IsNaN(v) || v < 0 {
		t.Errorf("deep tail returned %g", v)
	}
}

func TestCovMatrixSymmetricPD(t *testing.T) {
	rng := stats.NewRNG(4, 0)
	locs := GenerateLocations(64, 2, rng)
	for _, k := range []Kernel{SqExp{Dimension: 2}, Matern{Dimension: 2}} {
		theta := []float64{1, 0.1, 0.5}[:k.NumParams()]
		a := CovMatrix(locs, k, theta, 1e-10)
		n := len(locs)
		for i := 0; i < n; i++ {
			if math.Abs(a[i*n+i]-(1+1e-10)) > 1e-15 {
				t.Errorf("%s: diagonal %g", k.Name(), a[i*n+i])
			}
			for j := 0; j < i; j++ {
				if a[i*n+j] != a[j*n+i] {
					t.Fatalf("%s: asymmetry at (%d,%d)", k.Name(), i, j)
				}
			}
		}
		l := append([]float64(nil), a...)
		if err := linalg.PotrfLower(n, l, n); err != nil {
			t.Errorf("%s: covariance not SPD: %v", k.Name(), err)
		}
	}
}

func TestCovTileMatchesFull(t *testing.T) {
	rng := stats.NewRNG(5, 0)
	locs := GenerateLocations(40, 2, rng)
	k := Matern{Dimension: 2}
	theta := []float64{1.3, 0.15, 1}
	full := CovMatrix(locs, k, theta, 1e-8)
	n := len(locs)
	// Check several tile positions, including diagonal-crossing ones.
	for _, tc := range [][4]int{{0, 0, 8, 8}, {8, 0, 8, 8}, {16, 8, 8, 8}, {32, 32, 8, 8}, {5, 3, 7, 11}} {
		r0, c0, m, nn := tc[0], tc[1], tc[2], tc[3]
		tilebuf := make([]float64, m*nn)
		CovTile(locs, r0, c0, m, nn, k, theta, 1e-8, tilebuf, nn)
		for i := 0; i < m; i++ {
			for j := 0; j < nn; j++ {
				if got, want := tilebuf[i*nn+j], full[(r0+i)*n+c0+j]; got != want {
					t.Fatalf("tile(%d,%d) entry (%d,%d): %g != %g", r0, c0, i, j, got, want)
				}
			}
		}
	}
}

func TestSimulateFieldMoments(t *testing.T) {
	// Empirical variance of simulated fields must match σ², and nearby
	// points must be positively correlated under a strong-range kernel.
	rng := stats.NewRNG(6, 0)
	locs := GenerateLocations(100, 2, rng)
	k := SqExp{Dimension: 2}
	theta := []float64{1.0, 0.3}
	var sumsq, cross float64
	reps := 60
	for r := 0; r < reps; r++ {
		z, err := SimulateField(locs, k, theta, 1e-10, stats.NewRNG(7, uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range z {
			sumsq += v * v
		}
		cross += z[0] * z[1] // Morton-adjacent, strongly correlated
	}
	varEmp := sumsq / float64(reps*len(locs))
	if math.Abs(varEmp-1) > 0.15 {
		t.Errorf("empirical variance %g, want ~1", varEmp)
	}
	corr := cross / float64(reps)
	wantCorr := k.Cov(locs[0].Dist(locs[1]), theta)
	if corr < wantCorr-0.5 {
		t.Errorf("adjacent empirical covariance %g far below theoretical %g", corr, wantCorr)
	}
}

func TestSimulateFieldErrorOnBadTheta(t *testing.T) {
	rng := stats.NewRNG(8, 0)
	locs := GenerateLocations(16, 2, rng)
	// Negative variance makes Σ not SPD.
	if _, err := SimulateField(locs, SqExp{Dimension: 2}, []float64{-1, 0.1}, 0, rng); err == nil {
		t.Error("SimulateField accepted negative variance")
	}
}

func TestPointDist(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		ax, ay = math.Mod(ax, 10), math.Mod(ay, 10)
		bx, by = math.Mod(bx, 10), math.Mod(by, 10)
		p, q := Point{X: ax, Y: ay}, Point{X: bx, Y: by}
		d := p.Dist(q)
		return d >= 0 && p.Dist(p) == 0 && math.Abs(d-q.Dist(p)) < 1e-15
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	p := Point{X: 1, Y: 2, Z: 2}
	if got := p.Dist(Point{}); got != 3 {
		t.Errorf("dist = %g, want 3", got)
	}
}

func BenchmarkCovTileSqExp(b *testing.B) {
	rng := stats.NewRNG(9, 0)
	locs := GenerateLocations(4096, 2, rng)
	k := SqExp{Dimension: 2}
	theta := []float64{1, 0.1}
	dst := make([]float64, 64*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CovTile(locs, 0, 64, 64, 64, k, theta, 0, dst, 64)
	}
}

func BenchmarkCovTileMatern(b *testing.B) {
	rng := stats.NewRNG(10, 0)
	locs := GenerateLocations(4096, 2, rng)
	k := Matern{Dimension: 2}
	theta := []float64{1, 0.1, 1}
	dst := make([]float64, 64*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CovTile(locs, 0, 64, 64, 64, k, theta, 0, dst, 64)
	}
}

func TestMortonLocality3D(t *testing.T) {
	rng := stats.NewRNG(12, 0)
	pts := GenerateLocations(512, 3, rng)
	var adj float64
	for i := 1; i < len(pts); i++ {
		adj += pts[i].Dist(pts[i-1])
	}
	adj /= float64(len(pts) - 1)
	var far float64
	cnt := 0
	for i := 0; i < len(pts); i += 7 {
		for j := i + 256; j < len(pts); j += 97 {
			far += pts[i].Dist(pts[j])
			cnt++
		}
	}
	far /= float64(cnt)
	if adj >= far/1.5 {
		t.Errorf("3D Morton order weakly local: adjacent %g vs distant %g", adj, far)
	}
}

func TestGenerateLocationsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim=4 did not panic")
		}
	}()
	GenerateLocations(10, 4, stats.NewRNG(1, 0))
}

func TestCovMatrixNuggetOnDiagonalOnly(t *testing.T) {
	rng := stats.NewRNG(13, 0)
	locs := GenerateLocations(20, 2, rng)
	k := SqExp{Dimension: 2}
	theta := []float64{1, 0.1}
	a0 := CovMatrix(locs, k, theta, 0)
	a1 := CovMatrix(locs, k, theta, 0.5)
	n := len(locs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := a0[i*n+j]
			if i == j {
				want += 0.5
			}
			if a1[i*n+j] != want {
				t.Fatalf("nugget leaked off-diagonal at (%d,%d)", i, j)
			}
		}
	}
}
