package geo

import "geompc/internal/linalg"

// potrfForSim wraps the FP64 POTRF for data simulation.
func potrfForSim(n int, a []float64) error {
	return linalg.PotrfLower(n, a, n)
}
