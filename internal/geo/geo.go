// Package geo implements the geospatial statistics substrate of the paper
// (§III-A): spatial location generation, the squared-exponential and Matérn
// covariance families, covariance-matrix assembly (full and per-tile), and
// synthetic Gaussian-random-field data generation for the Monte-Carlo
// evaluation harness.
package geo

import (
	"fmt"
	"math"

	"geompc/internal/stats"
)

// Point is a spatial location in R^d (d = 2 or 3); unused coordinates are 0.
type Point struct {
	X, Y, Z float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// GenerateLocations returns n locations forming a jittered regular grid in
// the unit square (dim=2) or unit cube (dim=3) — the synthetic location
// model of ExaGeoStat-style Monte-Carlo studies: a √n×√n (or cube-root)
// lattice perturbed uniformly to avoid singular covariance matrices while
// keeping near-uniform coverage.
func GenerateLocations(n, dim int, rng *stats.RNG) []Point {
	if dim != 2 && dim != 3 {
		panic(fmt.Sprintf("geo: unsupported dimension %d", dim))
	}
	pts := make([]Point, 0, n)
	if dim == 2 {
		side := int(math.Ceil(math.Sqrt(float64(n))))
		jitter := 0.4 / float64(side)
		for i := 0; i < side && len(pts) < n; i++ {
			for j := 0; j < side && len(pts) < n; j++ {
				pts = append(pts, Point{
					X: (float64(i) + 0.5 + (rng.Float64()*2-1)*jitter*float64(side)) / float64(side),
					Y: (float64(j) + 0.5 + (rng.Float64()*2-1)*jitter*float64(side)) / float64(side),
				})
			}
		}
	} else {
		side := int(math.Ceil(math.Cbrt(float64(n))))
		jitter := 0.4 / float64(side)
		for i := 0; i < side && len(pts) < n; i++ {
			for j := 0; j < side && len(pts) < n; j++ {
				for k := 0; k < side && len(pts) < n; k++ {
					pts = append(pts, Point{
						X: (float64(i) + 0.5 + (rng.Float64()*2-1)*jitter*float64(side)) / float64(side),
						Y: (float64(j) + 0.5 + (rng.Float64()*2-1)*jitter*float64(side)) / float64(side),
						Z: (float64(k) + 0.5 + (rng.Float64()*2-1)*jitter*float64(side)) / float64(side),
					})
				}
			}
		}
	}
	// Morton-order the points so that nearby indices are nearby in space;
	// this produces the diagonal-dominant tile-norm structure (§V, Fig 2a)
	// the adaptive precision map exploits.
	sortMorton(pts)
	return pts
}

// sortMorton sorts points by Morton (Z-order) code of their quantized
// coordinates, preserving spatial locality in index order.
func sortMorton(pts []Point) {
	const bits = 10
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		x := uint64(clamp01(p.X) * float64((1<<bits)-1))
		y := uint64(clamp01(p.Y) * float64((1<<bits)-1))
		z := uint64(clamp01(p.Z) * float64((1<<bits)-1))
		keys[i] = interleave3(x, y, z)
	}
	// Simple index sort (n is at most a few hundred thousand).
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sortByKey(idx, keys)
	out := make([]Point, len(pts))
	for i, j := range idx {
		out[i] = pts[j]
	}
	copy(pts, out)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func interleave3(x, y, z uint64) uint64 {
	var out uint64
	for b := uint(0); b < 10; b++ {
		out |= (x>>b&1)<<(3*b) | (y>>b&1)<<(3*b+1) | (z>>b&1)<<(3*b+2)
	}
	return out
}

func sortByKey(idx []int, keys []uint64) {
	// Insertion-free: use sort.Slice equivalent without closures over both
	// slices being large; stdlib sort is fine here.
	quicksortIdx(idx, keys, 0, len(idx)-1)
}

func quicksortIdx(idx []int, keys []uint64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && keys[idx[j]] < keys[idx[j-1]]; j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
			return
		}
		p := keys[idx[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for keys[idx[i]] < p {
				i++
			}
			for keys[idx[j]] > p {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quicksortIdx(idx, keys, lo, j)
			lo = i
		} else {
			quicksortIdx(idx, keys, i, hi)
			hi = j
		}
	}
}
