package geo

import (
	"fmt"
	"math"

	"geompc/internal/bessel"
	"geompc/internal/stats"
)

// BoundKernel is a covariance function bound to a fixed θ, allowing
// per-θ constants to be hoisted out of matrix assembly.
type BoundKernel interface {
	// Cov returns C(h) at the bound parameters.
	Cov(h float64) float64
}

// Binder is implemented by kernels that can pre-bind a parameter vector.
type Binder interface {
	// Bind returns a single-θ evaluator.
	Bind(theta []float64) BoundKernel
}

// Kernel is an isotropic, stationary covariance function C(h; θ) of the
// distance h between two locations (§III-A).
type Kernel interface {
	// Cov returns C(h; θ). It must return the variance θ[0] at h = 0.
	Cov(h float64, theta []float64) float64
	// NumParams is the length of θ.
	NumParams() int
	// ParamNames names the entries of θ in order.
	ParamNames() []string
	// Name is the paper's identifier, e.g. "2D-sqexp".
	Name() string
	// Dim is the spatial dimension the kernel is evaluated in (2 or 3).
	Dim() int
}

// SqExp is the squared-exponential covariance
// C(h; θ) = σ²·exp(−h²/β) with θ = (σ², β), in 2 or 3 dimensions
// (the paper's 2D-sqexp / 3D-sqexp).
type SqExp struct {
	Dimension int // 2 or 3
}

// Cov implements Kernel.
func (k SqExp) Cov(h float64, theta []float64) float64 {
	sigma2, beta := theta[0], theta[1]
	return sigma2 * math.Exp(-h*h/beta)
}

// NumParams implements Kernel.
func (SqExp) NumParams() int { return 2 }

// ParamNames implements Kernel.
func (SqExp) ParamNames() []string { return []string{"sigma2", "beta"} }

// Name implements Kernel.
func (k SqExp) Name() string { return fmt.Sprintf("%dD-sqexp", k.Dimension) }

// Dim implements Kernel.
func (k SqExp) Dim() int { return k.Dimension }

// Matern is the Matérn covariance
// C(h; θ) = σ²·(2^{1−ν}/Γ(ν))·(h/β)^ν·K_ν(h/β) with θ = (σ², β, ν)
// (the paper's 2D-Matérn).
type Matern struct {
	Dimension int
}

// Cov implements Kernel.
func (k Matern) Cov(h float64, theta []float64) float64 {
	sigma2, beta, nu := theta[0], theta[1], theta[2]
	if h == 0 {
		return sigma2
	}
	r := h / beta
	// σ²·2^{1-ν}/Γ(ν)·r^ν·K_ν(r); for ν = 0.5 this is σ²·e^{−r}.
	if nu == 0.5 {
		return sigma2 * math.Exp(-r)
	}
	c := sigma2 * math.Exp2(1-nu) / math.Gamma(nu)
	v := c * math.Pow(r, nu) * bessel.K(nu, r)
	if math.IsNaN(v) || v < 0 {
		return 0 // deep tail underflow
	}
	return v
}

// maternBound is a Matérn evaluation bound to one θ, hoisting the
// normalization 2^{1-ν}/Γ(ν) out of the per-entry path. Matrix assembly
// evaluates the kernel n²/2 times per likelihood evaluation, so this saves
// a Gamma call per entry.
type maternBound struct {
	sigma2, invBeta, nu, norm float64
	exponential               bool
}

func (b maternBound) Cov(h float64) float64 {
	if h == 0 {
		return b.sigma2
	}
	r := h * b.invBeta
	if b.exponential {
		return b.sigma2 * math.Exp(-r)
	}
	v := b.norm * math.Pow(r, b.nu) * bessel.K(b.nu, r)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}

// Bind returns a single-θ evaluator with precomputed constants.
func (k Matern) Bind(theta []float64) BoundKernel {
	sigma2, beta, nu := theta[0], theta[1], theta[2]
	return maternBound{
		sigma2: sigma2, invBeta: 1 / beta, nu: nu,
		norm:        sigma2 * math.Exp2(1-nu) / math.Gamma(nu),
		exponential: nu == 0.5,
	}
}

// NumParams implements Kernel.
func (Matern) NumParams() int { return 3 }

// ParamNames implements Kernel.
func (Matern) ParamNames() []string { return []string{"sigma2", "beta", "nu"} }

// Name implements Kernel.
func (k Matern) Name() string { return fmt.Sprintf("%dD-Matern", k.Dimension) }

// Dim implements Kernel.
func (k Matern) Dim() int { return k.Dimension }

// CovMatrix assembles the full n×n covariance matrix Σ(θ) over locs into a
// freshly allocated row-major slice. A tiny diagonal regularization `nugget`
// (0 for none) guards POTRF against indefiniteness when correlations are
// near-singular.
func CovMatrix(locs []Point, k Kernel, theta []float64, nugget float64) []float64 {
	n := len(locs)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = k.Cov(0, theta) + nugget
		for j := 0; j < i; j++ {
			v := k.Cov(locs[i].Dist(locs[j]), theta)
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return a
}

// CovTile fills the m×n tile dst (stride ldd) with Σ entries for the block
// whose rows are locs[rowStart:rowStart+m] and columns
// locs[colStart:colStart+n]. Diagonal entries receive the nugget. This is
// the tile-generation kernel of the tiled framework: each tile is built
// independently, in parallel, on demand. Kernels implementing Binder get
// their per-θ constants hoisted out of the inner loop.
func CovTile(locs []Point, rowStart, colStart, m, n int, k Kernel, theta []float64, nugget float64, dst []float64, ldd int) {
	if b, ok := k.(Binder); ok {
		bk := b.Bind(theta)
		diag := bk.Cov(0) + nugget
		for i := 0; i < m; i++ {
			pi := locs[rowStart+i]
			row := dst[i*ldd : i*ldd+n]
			for j := 0; j < n; j++ {
				gj := colStart + j
				if rowStart+i == gj {
					row[j] = diag
				} else {
					row[j] = bk.Cov(pi.Dist(locs[gj]))
				}
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		pi := locs[rowStart+i]
		row := dst[i*ldd : i*ldd+n]
		for j := 0; j < n; j++ {
			gj := colStart + j
			if rowStart+i == gj {
				row[j] = k.Cov(0, theta) + nugget
			} else {
				row[j] = k.Cov(pi.Dist(locs[gj]), theta)
			}
		}
	}
}

// SimulateField draws Z ~ N(0, Σ(θ)) over locs: it factorizes Σ = L·Lᵀ in
// FP64 and returns Z = L·e with e standard normal. This produces the
// synthetic datasets of the Monte-Carlo study (§VII-B). The factorization
// cost is O(n³); intended for n up to a few thousand.
func SimulateField(locs []Point, k Kernel, theta []float64, nugget float64, rng *stats.RNG) ([]float64, error) {
	n := len(locs)
	a := CovMatrix(locs, k, theta, nugget)
	if err := potrfForSim(n, a); err != nil {
		return nil, fmt.Errorf("geo: covariance not SPD under θ=%v: %w", theta, err)
	}
	e := rng.NormVec(make([]float64, n))
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		row := a[i*n : i*n+i+1]
		for l, v := range row {
			s += v * e[l]
		}
		z[i] = s
	}
	return z, nil
}
