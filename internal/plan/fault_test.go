package plan_test

// Fault interaction: a plan is compiled fault-free, and a replay must never
// be served to an armed run — device failures perturb the schedule beyond
// what the frozen stream describes. RunCached must fall back to live
// scheduling (counted as a bypass) and the live run's lineage recovery must
// still reproduce the fault-free factor bit for bit (the PR 3 guarantee),
// with the cache untouched for the next clean run.

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/plan"
	"geompc/internal/runtime"
)

func TestFaultRunsBypassPlanCache(t *testing.T) {
	const nt, ranks, dev, ureq = 6, 1, 3, 1e-8

	// Fault-free reference: factor bits and a makespan to aim the kill at.
	clean := newConfig(t, nt, ranks, dev, ureq, "", "")
	ref, err := cholesky.Run(clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if ref.Err != nil {
		t.Fatalf("clean numeric failure: %v", ref.Err)
	}
	want := factorBits(clean.Matrix, clean.Desc)
	fp := runtime.FaultPlan{{Kind: runtime.FaultKill, Device: 1, At: ref.Stats.Makespan * 0.4}}

	cache := plan.NewCache(nil)

	// Warm the cache: miss + compile, then a hit + replay.
	c1 := newConfig(t, nt, ranks, dev, ureq, "", "")
	if _, err := cholesky.RunCached(c1, cache); err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	c2 := newConfig(t, nt, ranks, dev, ureq, "", "")
	if _, err := cholesky.RunCached(c2, cache); err != nil {
		t.Fatalf("warm replay: %v", err)
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 || s.Bypasses != 0 {
		t.Fatalf("warm-up counters: %+v", s)
	}

	// Armed run: must bypass the cache, run live, recover, and reproduce
	// the fault-free factor bit for bit.
	armed := newConfig(t, nt, ranks, dev, ureq, "", "")
	armed.Faults = fp
	armed.Audit = true
	res, err := cholesky.RunCached(armed, cache)
	if err != nil {
		t.Fatalf("armed run: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("armed numeric failure: %v", res.Err)
	}
	if res.Stats.DeviceFailures != 1 {
		t.Fatalf("armed run lost %d devices, want 1", res.Stats.DeviceFailures)
	}
	sameBits(t, want, factorBits(armed.Matrix, armed.Desc), "recovered factor")
	if s := cache.Stats(); s.Bypasses != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("post-fault counters: %+v", s)
	}

	// Compiling under an armed injector is refused outright.
	armed2 := newConfig(t, nt, ranks, dev, ureq, "", "")
	armed2.Faults = fp
	if _, err := cholesky.Compile(armed2); err == nil {
		t.Fatal("Compile accepted an armed fault injector")
	}
	cleanPlan, err := cholesky.Compile(newConfig(t, nt, ranks, dev, ureq, "", ""))
	if err != nil {
		t.Fatalf("clean compile: %v", err)
	}
	if _, err := cholesky.Replay(armed2, cleanPlan); err == nil {
		t.Fatal("Replay accepted an armed fault injector")
	}

	// A silent injector (wired in, empty plan) is fault-free in every
	// observable way and may be served from the cache.
	silent := newConfig(t, nt, ranks, dev, ureq, "", "")
	silent.Faults = runtime.FaultPlan{}
	sres, err := cholesky.RunCached(silent, cache)
	if err != nil {
		t.Fatalf("silent run: %v", err)
	}
	if sres.Digest() != ref.Digest() {
		t.Fatalf("silent replay digest %016x != clean %016x", sres.Digest(), ref.Digest())
	}
	sameBits(t, want, factorBits(silent.Matrix, silent.Desc), "silent replay factor")
	if s := cache.Stats(); s.Hits != 2 || s.Bypasses != 1 {
		t.Fatalf("silent-run counters: %+v", s)
	}
}
