package plan_test

// Incremental-invalidation tests: mutating one tile's precision must seed
// only the tasks touching changed tiles, dirty exactly the downstream
// dependence closure, and leave every other task's compiled spec provably
// intact — with a from-scratch recompile as the correctness oracle.

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
)

// phantomConfig builds a cost-only config (no numeric bodies) whose maps
// are derived from the standard SPD matrix — invalidation is a pure
// schedule question, so phantom mode keeps the fuzz loop cheap.
func phantomConfig(t testing.TB, nt, ranks, devPerRank int, ureq float64) (cholesky.Config, [][]prec.Precision) {
	t.Helper()
	mat, _ := newSPDMatrix(t, nt, ranks)
	km := precmap.FromMatrix(mat, ureq, prec.CholeskySet)
	cfg := newConfig(t, nt, ranks, devPerRank, ureq, "", "")
	cfg.Matrix = nil
	return cfg, km
}

// withKernel returns cfg rebound to fresh maps derived from km.
func withKernel(cfg cholesky.Config, km [][]prec.Precision, ureq float64) cholesky.Config {
	cfg.Maps = precmap.New(km, ureq)
	return cfg
}

// copyKernel deep-copies a kernel precision map.
func copyKernel(km [][]prec.Precision) [][]prec.Precision {
	out := make([][]prec.Precision, len(km))
	for i := range km {
		out[i] = append([]prec.Precision(nil), km[i]...)
	}
	return out
}

// flipTile changes tile (i,j)'s kernel precision to something else.
func flipTile(km [][]prec.Precision, i, j int) {
	if km[i][j] == prec.FP64 {
		km[i][j] = prec.FP32
	} else {
		km[i][j] = prec.FP64
	}
}

// changedDataIDs maps a DiffTiles report to the engine's DataID numbering
// (i*nt + j).
func changedDataIDs(diff [][2]int, nt int) map[int]bool {
	ids := make(map[int]bool, len(diff))
	for _, t := range diff {
		ids[t[0]*nt+t[1]] = true
	}
	return ids
}

// tasksTouching returns the set of task ids whose spec reads or writes any
// of the given data ids — the structural (tile-locality) oracle for the
// signature-based seed.
func tasksTouching(g runtime.Graph, ids map[int]bool) map[int]bool {
	out := make(map[int]bool)
	var spec runtime.TaskSpec
	for id := 0; id < g.NumTasks(); id++ {
		g.Spec(id, &spec)
		touch := ids[int(spec.Output.Data)]
		for i := range spec.Inputs {
			touch = touch || ids[int(spec.Inputs[i].Data)]
		}
		if touch {
			out[id] = true
		}
	}
	return out
}

func toSet(ids []int) map[int]bool {
	s := make(map[int]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func TestInvalidateSingleTile(t *testing.T) {
	const nt, ureq = 6, 1e-8
	base, km := phantomConfig(t, nt, 2, 2, ureq)
	p, err := cholesky.Compile(base)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Flip one mid-panel tile's kernel precision and re-derive the maps.
	km2 := copyKernel(km)
	flipTile(km2, 3, 1)
	mut := withKernel(base, km2, ureq)
	diff := base.Maps.DiffTiles(mut.Maps)
	if len(diff) == 0 {
		t.Fatal("flipping a tile produced no map diff")
	}

	g2, err := cholesky.PlanGraph(mut)
	if err != nil {
		t.Fatalf("PlanGraph: %v", err)
	}
	inv, err := p.Invalidate(g2)
	if err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if len(inv.Seed) == 0 {
		t.Fatal("a real map delta seeded no tasks")
	}

	// Structural soundness: the signature-diff seed is exactly the tasks
	// touching changed tiles (spec reads are tile-local), and never more.
	touching := tasksTouching(g2, changedDataIDs(diff, nt))
	for _, id := range inv.Seed {
		if !touching[id] {
			t.Errorf("seed task %d touches no changed tile", id)
		}
	}

	// Closure soundness: Dirty ⊇ Seed and matches an independent BFS.
	dirty := toSet(inv.Dirty)
	for _, id := range inv.Seed {
		if !dirty[id] {
			t.Errorf("seed task %d missing from dirty closure", id)
		}
	}
	want := toSet(plan.DirtyClosure(g2, inv.Seed))
	if len(want) != len(dirty) {
		t.Fatalf("dirty closure size %d, independent BFS %d", len(dirty), len(want))
	}

	// Tasks outside the closure provably kept their compiled specs.
	g1, err := cholesky.PlanGraph(base)
	if err != nil {
		t.Fatalf("PlanGraph(base): %v", err)
	}
	s1, s2 := plan.SpecSignatures(g1), plan.SpecSignatures(g2)
	seed := toSet(inv.Seed)
	for id := range s1 {
		if !seed[id] && s1[id] != s2[id] {
			t.Errorf("task %d changed spec but is not seeded", id)
		}
		if seed[id] && s1[id] == s2[id] {
			t.Errorf("task %d is seeded but its spec did not change", id)
		}
	}

	// Oracle: a full recompile of the mutated config equals a from-scratch
	// simulation — the recompile path loses nothing.
	fresh, err := cholesky.Run(mut)
	if err != nil {
		t.Fatalf("fresh run of mutated config: %v", err)
	}
	p2, err := cholesky.Compile(mut)
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if p2.Stats.ScheduleDigest != fresh.Digest() {
		t.Fatalf("recompiled digest %016x != from-scratch %016x",
			p2.Stats.ScheduleDigest, fresh.Digest())
	}
}

func TestInvalidateNoChange(t *testing.T) {
	base, _ := phantomConfig(t, 4, 2, 2, 1e-8)
	p, err := cholesky.Compile(base)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	g, err := cholesky.PlanGraph(base)
	if err != nil {
		t.Fatalf("PlanGraph: %v", err)
	}
	inv, err := p.Invalidate(g)
	if err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if len(inv.Seed) != 0 || len(inv.Dirty) != 0 {
		t.Fatalf("identical graph dirtied %d/%d tasks", len(inv.Seed), len(inv.Dirty))
	}
}

// FuzzInvalidate drives random precision-map deltas through Invalidate and
// checks it against the full-recompile oracle: every task whose spec
// signature changed is seeded, the closure covers all structurally affected
// tasks, and the recompiled schedule equals a from-scratch simulation.
func FuzzInvalidate(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x11})
	f.Add([]byte{0x07, 0x21, 0x42, 0x63})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb, 0xfa})

	const nt, ureq = 5, 1e-8
	base, km := phantomConfig(f, nt, 2, 2, ureq)
	p, err := cholesky.Compile(base)
	if err != nil {
		f.Fatalf("compile: %v", err)
	}
	g1, err := cholesky.PlanGraph(base)
	if err != nil {
		f.Fatalf("PlanGraph: %v", err)
	}
	s1 := plan.SpecSignatures(g1)

	ladder := prec.CholeskySet
	f.Fuzz(func(t *testing.T, delta []byte) {
		// Each byte mutates one lower tile: high bits pick the tile,
		// low 2 bits pick the precision from the ladder.
		km2 := copyKernel(km)
		for _, b := range delta {
			k := int(b>>2) % (nt * (nt + 1) / 2)
			// Unrank k into lower-triangular (i, j).
			i, j := 0, 0
			for r, left := 0, k; r < nt; r++ {
				if left <= r {
					i, j = r, left
					break
				}
				left -= r + 1
			}
			km2[i][j] = ladder[int(b&3)]
		}
		mut := withKernel(base, km2, ureq)

		g2, err := cholesky.PlanGraph(mut)
		if err != nil {
			t.Fatalf("PlanGraph: %v", err)
		}
		inv, err := p.Invalidate(g2)
		if err != nil {
			t.Fatalf("Invalidate: %v", err)
		}

		// Seed oracle: exactly the signature deltas.
		s2 := plan.SpecSignatures(g2)
		seed := toSet(inv.Seed)
		for id := range s1 {
			if (s1[id] != s2[id]) != seed[id] {
				t.Fatalf("task %d: sig changed=%v, seeded=%v", id, s1[id] != s2[id], seed[id])
			}
		}

		// Structural oracle: every task touching a changed tile whose spec
		// actually changed is inside the dirty closure.
		dirty := toSet(inv.Dirty)
		for _, id := range inv.Seed {
			if !dirty[id] {
				t.Fatalf("seed task %d outside dirty closure", id)
			}
		}
		touching := tasksTouching(g2, changedDataIDs(base.Maps.DiffTiles(mut.Maps), nt))
		for id := range seed {
			if !touching[id] {
				t.Fatalf("seed task %d touches no changed tile", id)
			}
		}

		// Recompile oracle: the post-delta compile equals a from-scratch run.
		fresh, err := cholesky.Run(mut)
		if err != nil {
			t.Fatalf("fresh run: %v", err)
		}
		p2, err := cholesky.Compile(mut)
		if err != nil {
			t.Fatalf("recompile: %v", err)
		}
		if p2.Stats.ScheduleDigest != fresh.Digest() {
			t.Fatalf("recompiled digest %016x != from-scratch %016x",
				p2.Stats.ScheduleDigest, fresh.Digest())
		}

		// Unchanged map signature ⇒ pure replay is still legal; a changed
		// signature ⇒ replay with the old plan is refused. (Seed gates on
		// spec signatures, which the map signature dominates: a spec change
		// implies a map change, so a seeded delta is always refused.)
		if mut.Maps.Signature() == base.Maps.Signature() {
			if _, err := cholesky.Replay(mut, p); err != nil {
				t.Fatalf("clean graph refused replay: %v", err)
			}
		} else if _, err := cholesky.Replay(mut, p); err == nil {
			t.Fatal("stale plan accepted a changed precision map")
		}
		if len(inv.Seed) > 0 && mut.Maps.Signature() == base.Maps.Signature() {
			t.Fatal("specs changed under an identical map signature")
		}
	})
}
