package plan_test

// Shared helpers for the plan test suite: build the same numeric SPD
// problems the cholesky tests use (unexported there, re-derived here) so
// replay can be checked bit for bit against fresh runs.

import (
	"math"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/comm"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

const testTS = 16

// newSPDMatrix builds the standard test covariance matrix: nt×nt tiles of
// size 16, squared-exponential kernel over 2-D locations, nugget 1e-8.
func newSPDMatrix(t testing.TB, nt, ranks int) (*tile.Matrix, tile.Desc) {
	t.Helper()
	n := nt * testTS
	rng := stats.NewRNG(42, 0)
	locs := geo.GenerateLocations(n, 2, rng)
	kfn := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.05}
	p, q := tile.SquarestGrid(ranks)
	d, err := tile.NewDesc(n, testTS, p, q)
	if err != nil {
		t.Fatalf("NewDesc: %v", err)
	}
	mat := tile.NewMatrix(d, false)
	mat.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, kfn, theta, 1e-8, tl.Data, tl.N)
	})
	return mat, d
}

// newMaps derives the adaptive precision maps for mat at accuracy ureq and
// applies the storage assignment to the matrix tiles.
func newMaps(t testing.TB, mat *tile.Matrix, ureq float64) *precmap.Maps {
	t.Helper()
	km := precmap.FromMatrix(mat, ureq, prec.CholeskySet)
	maps := precmap.New(km, ureq)
	mat.SetStorage(func(i, j int) prec.Precision { return maps.Storage[i][j] })
	return maps
}

// newConfig assembles a numeric cholesky.Config: nt tiles, the given rank
// grid and devices per rank, adaptive maps at ureq, and the chosen
// scheduling policy / broadcast topology (empty strings mean defaults).
func newConfig(t testing.TB, nt, ranks, devPerRank int, ureq float64, policy, topo string) cholesky.Config {
	t.Helper()
	mat, d := newSPDMatrix(t, nt, ranks)
	maps := newMaps(t, mat, ureq)
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, devPerRank)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	cfg := cholesky.Config{
		Desc:     d,
		Maps:     maps,
		Platform: plat,
		Matrix:   mat,
		Trace:    true,
	}
	if policy != "" {
		pol, err := sched.ByName(policy)
		if err != nil {
			t.Fatalf("sched.ByName(%q): %v", policy, err)
		}
		cfg.Sched = pol
	}
	if topo != "" {
		tp, err := comm.TopologyByName(topo)
		if err != nil {
			t.Fatalf("comm.TopologyByName(%q): %v", topo, err)
		}
		cfg.Bcast = tp
	}
	return cfg
}

// factorBits flattens the lower-triangular factor into raw float64 bit
// patterns — the currency of bit-exactness assertions.
func factorBits(mat *tile.Matrix, d tile.Desc) []uint64 {
	var bits []uint64
	for i := 0; i < d.NT; i++ {
		for j := 0; j <= i; j++ {
			tl := mat.At(i, j)
			for _, v := range tl.Data {
				bits = append(bits, math.Float64bits(v))
			}
		}
	}
	return bits
}

// sameBits fails the test if two factors differ in any bit.
func sameBits(t *testing.T, want, got []uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: factor length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: factor differs at element %d: %016x != %016x",
				label, i, got[i], want[i])
		}
	}
}
