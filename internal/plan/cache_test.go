package plan_test

// Cache flow: miss → compile, hit → replay, precision-map change →
// invalidation (with a measured dirty-task count) → recompile, all with
// results indistinguishable from fresh runs.

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/obs"
	"geompc/internal/plan"
)

func TestRunCachedFlow(t *testing.T) {
	const nt, ranks, dev = 5, 2, 2
	reg := obs.NewRegistry()
	cache := plan.NewCache(reg)
	if cache.Metrics() != reg {
		t.Fatal("cache did not adopt the supplied registry")
	}

	// Miss: first run of the shape compiles.
	c1 := newConfig(t, nt, ranks, dev, 1e-8, "", "")
	r1, err := cholesky.RunCached(c1, cache)
	if err != nil {
		t.Fatalf("miss run: %v", err)
	}
	want := factorBits(c1.Matrix, c1.Desc)
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 0 || cache.Len() != 1 {
		t.Fatalf("after miss: %+v len=%d", s, cache.Len())
	}

	// Hit: same shape and map replays, bit-identically.
	c2 := newConfig(t, nt, ranks, dev, 1e-8, "", "")
	r2, err := cholesky.RunCached(c2, cache)
	if err != nil {
		t.Fatalf("hit run: %v", err)
	}
	if r2.Digest() != r1.Digest() {
		t.Fatalf("replay digest %016x != compile digest %016x", r2.Digest(), r1.Digest())
	}
	sameBits(t, want, factorBits(c2.Matrix, c2.Desc), "cache hit")
	if s := cache.Stats(); s.Hits != 1 || s.Replays != 1 {
		t.Fatalf("after hit: %+v", s)
	}

	// Invalidation: a looser accuracy target re-derives the maps; the cache
	// measures the dirty closure and recompiles.
	c3 := newConfig(t, nt, ranks, dev, 1e-2, "", "")
	r3, err := cholesky.RunCached(c3, cache)
	if err != nil {
		t.Fatalf("invalidation run: %v", err)
	}
	s := cache.Stats()
	if s.Invalidations != 1 || s.TasksInvalidated == 0 {
		t.Fatalf("after invalidation: %+v", s)
	}
	fresh := newConfig(t, nt, ranks, dev, 1e-2, "", "")
	fref, err := cholesky.Run(fresh)
	if err != nil {
		t.Fatalf("fresh mutated run: %v", err)
	}
	if r3.Digest() != fref.Digest() {
		t.Fatalf("recompiled digest %016x != fresh %016x", r3.Digest(), fref.Digest())
	}
	sameBits(t, factorBits(fresh.Matrix, fresh.Desc), factorBits(c3.Matrix, c3.Desc), "recompile")

	// The recompiled plan replaced the stale one: same shape now hits.
	c4 := newConfig(t, nt, ranks, dev, 1e-2, "", "")
	if _, err := cholesky.RunCached(c4, cache); err != nil {
		t.Fatalf("post-recompile hit: %v", err)
	}
	if s := cache.Stats(); s.Hits != 2 || cache.Len() != 1 {
		t.Fatalf("after recompile hit: %+v len=%d", s, cache.Len())
	}

	// The counters surface through the registry under plan/cache/*.
	if got := reg.Counter("plan/cache/hits").Value(); got != 2 {
		t.Fatalf("registry hits counter = %d, want 2", got)
	}

	// DTD shapes cache separately from PTG shapes.
	d1 := newConfig(t, nt, ranks, dev, 1e-2, "", "")
	if _, err := cholesky.RunCachedDTD(d1, cache); err != nil {
		t.Fatalf("DTD miss: %v", err)
	}
	if s := cache.Stats(); s.Misses != 2 || cache.Len() != 2 {
		t.Fatalf("after DTD miss: %+v len=%d", s, cache.Len())
	}

	// A nil cache degrades to a live run.
	n1 := newConfig(t, nt, ranks, dev, 1e-8, "", "")
	nres, err := cholesky.RunCached(n1, nil)
	if err != nil {
		t.Fatalf("nil-cache run: %v", err)
	}
	if nres.Digest() != r1.Digest() {
		t.Fatalf("nil-cache digest %016x != reference %016x", nres.Digest(), r1.Digest())
	}
}
