package plan_test

// Engine-workers axis of the plan cache: EngineWorkers is deliberately
// absent from the plan shape signature (the parallel engine's schedules are
// bit-identical to serial), so plans must flow freely across modes — a plan
// compiled under the serial loop replays parallel configs, a plan compiled
// under the parallel engine replays serial configs, and the cache serves
// hits across the boundary.

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/plan"
)

// TestGoldenReplayDigestsParallel re-runs the golden-replay grid with the
// compile pass executed on the parallel engine: every policy × topology pair
// must still reproduce its pinned digest, and the compiled plan must replay
// a serial config. The pinned constants were recorded from the serial loop,
// so this is the cross-mode equivalence stated digest-for-digest.
func TestGoldenReplayDigestsParallel(t *testing.T) {
	for key, want := range goldenReplayDigests {
		key, want := key, want
		t.Run(key[0]+"-"+key[1], func(t *testing.T) {
			t.Parallel()
			cfg := newConfig(t, 6, 4, 2, 1e-8, key[0], key[1])
			cfg.EngineWorkers = 4
			p, err := cholesky.Compile(cfg)
			if err != nil {
				t.Fatalf("parallel compile: %v", err)
			}
			if p.Stats.ScheduleDigest != want {
				t.Fatalf("parallel compile digest 0x%016x, pinned 0x%016x", p.Stats.ScheduleDigest, want)
			}
			rcfg := newConfig(t, 6, 4, 2, 1e-8, key[0], key[1])
			res, err := cholesky.Replay(rcfg, p) // serial config, parallel-compiled plan
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Digest() != want {
				t.Fatalf("replay digest 0x%016x, pinned 0x%016x", res.Digest(), want)
			}
		})
	}
}

// TestPlanCrossesEngineModes pins the cache-level contract: serial-compiled
// plans serve parallel configs as cache hits and vice versa, and the factor
// a cross-mode replay produces is bit-identical to a fresh run's.
func TestPlanCrossesEngineModes(t *testing.T) {
	const nt, ranks, gpr = 6, 4, 2

	// Fresh-run reference factor (serial).
	ref := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	refRes, err := cholesky.Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := factorBits(ref.Matrix, ref.Desc)

	// Serial compile → parallel replay.
	scfg := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	sp, err := cholesky.Compile(scfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	pcfg.EngineWorkers = 4
	res, err := cholesky.Replay(pcfg, sp)
	if err != nil {
		t.Fatalf("parallel config, serial plan: %v", err)
	}
	if res.Digest() != refRes.Digest() {
		t.Errorf("serial plan under parallel config: digest %#x, want %#x", res.Digest(), refRes.Digest())
	}
	sameBits(t, want, factorBits(pcfg.Matrix, pcfg.Desc), "serial plan, parallel config")

	// Parallel compile → serial replay, and signature equality across modes.
	ccfg := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	ccfg.EngineWorkers = 4
	pp, err := cholesky.Compile(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Sig != sp.Sig {
		t.Errorf("EngineWorkers leaked into the plan shape signature: %#x vs %#x", pp.Sig, sp.Sig)
	}
	if pp.Stats.ScheduleDigest != sp.Stats.ScheduleDigest {
		t.Errorf("parallel compile digest %#x, serial compile %#x", pp.Stats.ScheduleDigest, sp.Stats.ScheduleDigest)
	}
	rcfg := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	res, err = cholesky.Replay(rcfg, pp)
	if err != nil {
		t.Fatalf("serial config, parallel plan: %v", err)
	}
	sameBits(t, want, factorBits(rcfg.Matrix, rcfg.Desc), "parallel plan, serial config")

	// Cache crossing: a serial RunCached warms the cache, a parallel config
	// must hit it (same shape signature), and the replayed factor must match.
	cache := plan.NewCache(nil)
	warm := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	if _, err := cholesky.RunCached(warm, cache); err != nil {
		t.Fatal(err)
	}
	hot := newConfig(t, nt, ranks, gpr, 1e-8, "", "")
	hot.EngineWorkers = 4
	hotRes, err := cholesky.RunCached(hot, cache)
	if err != nil {
		t.Fatal(err)
	}
	cs := cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1 and 1 (parallel config must hit the serial plan)", cs.Hits, cs.Misses)
	}
	if hotRes.Digest() != refRes.Digest() {
		t.Errorf("cached parallel run digest %#x, want %#x", hotRes.Digest(), refRes.Digest())
	}
	sameBits(t, want, factorBits(hot.Matrix, hot.Desc), "cache hit across engine modes")
}
