package plan

import (
	"sync"

	"geompc/internal/obs"
)

// Cache holds at most one compiled plan per shape signature and counts how
// the cache behaves — hits (pure replays), misses (first compiles),
// invalidations (precision-map deltas forcing recompiles) and bypasses
// (armed fault runs that must stay live). The expected pattern is one cache
// per repeated-workload loop (an MLE fit, a Monte-Carlo replica, a sweep).
//
// Concurrency contract: a Cache is safe for any number of concurrent
// readers and writers — the map is guarded by mu, the counters are atomic,
// and a *Plan is immutable once Compile returns, so a plan obtained from
// Lookup may be replayed (Plan.Replay) or diffed (Plan.Invalidate) while
// another goroutine Stores a successor for the same signature; the reader
// keeps its own consistent snapshot. What the contract does NOT promise is
// counter determinism under sharing: when sweep workers share one cache,
// which worker wins the compile race (and therefore how many misses or
// invalidations are counted) depends on scheduling. Results never do —
// every worker either replays a frozen plan or compiles its own, both
// bit-identical to a fresh run — so shared-cache sweeps stay exact while
// Stats() becomes a diagnostic, not a pinned series.
type Cache struct {
	mu    sync.Mutex
	plans map[uint64]*Plan

	reg           *obs.Registry
	hits          *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter
	bypasses      *obs.Counter
	replays       *obs.Counter
	tasksDirty    *obs.Counter
}

// NewCache returns an empty cache. Counters register under plan/cache/* in
// reg; nil uses a private registry (retrievable via Metrics).
func NewCache(reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache{
		plans:         make(map[uint64]*Plan),
		reg:           reg,
		hits:          reg.Counter("plan/cache/hits"),
		misses:        reg.Counter("plan/cache/misses"),
		invalidations: reg.Counter("plan/cache/invalidations"),
		bypasses:      reg.Counter("plan/cache/bypasses"),
		replays:       reg.Counter("plan/cache/replays"),
		tasksDirty:    reg.Counter("plan/cache/tasks_invalidated"),
	}
}

// Metrics returns the registry the cache counts into.
func (c *Cache) Metrics() *obs.Registry { return c.reg }

// Lookup returns the plan stored for sig, nil if none.
func (c *Cache) Lookup(sig uint64) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plans[sig]
}

// Store records p under its shape signature, replacing any previous plan
// for that shape (one plan per shape: repeated workloads alternate
// precision maps rarely, and a superseded schedule has no residual value).
func (c *Cache) Store(p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[p.Sig] = p
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}

// Hit records a cache hit followed by a replay.
func (c *Cache) Hit() { c.hits.Inc(); c.replays.Inc() }

// Miss records a miss (a compile follows).
func (c *Cache) Miss() { c.misses.Inc() }

// Invalidated records a precision-map delta that dirtied n tasks and
// forced a recompile.
func (c *Cache) Invalidated(n int) {
	c.invalidations.Inc()
	c.tasksDirty.Add(int64(n))
}

// Bypass records a run the cache refused to serve (armed fault plan).
func (c *Cache) Bypass() { c.bypasses.Inc() }

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Invalidations, Bypasses, Replays, TasksInvalidated int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Value(),
		Misses:           c.misses.Value(),
		Invalidations:    c.invalidations.Value(),
		Bypasses:         c.bypasses.Value(),
		Replays:          c.replays.Value(),
		TasksInvalidated: c.tasksDirty.Value(),
	}
}
