package plan

import (
	"fmt"
	"sort"

	"geompc/internal/runtime"
)

// Invalidation reports what a graph change (in practice: a precision-map
// delta re-deriving some tile decisions) costs an existing plan.
type Invalidation struct {
	// Seed lists the tasks whose specs differ from compile time — the tasks
	// directly touching a changed tile. Ascending.
	Seed []int
	// Dirty is Seed plus its downstream dependence closure: every task
	// whose schedule could shift, and therefore the re-planning frontier.
	// Ascending. Tasks outside Dirty provably kept their compiled specs.
	Dirty []int
}

// Invalidate diffs g's task specs against the plan's compiled signatures
// and expands the changed set to its downstream closure. The Higham–Mary
// rule is per-tile, so a map delta seeds only the tasks touching changed
// tiles; everything else is reachable damage through dependence edges.
// Note what this does *not* claim: device and link contention couple task
// timings beyond dependence edges, so a non-empty Dirty set forces a full
// recompile — the win is proving when Dirty is empty (pure replay) and
// exposing how much of the DAG a delta actually reaches.
func (p *Plan) Invalidate(g runtime.Graph) (Invalidation, error) {
	if n := g.NumTasks(); n != p.NumTasks {
		return Invalidation{}, fmt.Errorf("plan: graph has %d tasks, plan compiled for %d", n, p.NumTasks)
	}
	sigs := SpecSignatures(g)
	var inv Invalidation
	for id, s := range sigs {
		if s != p.specSigs[id] {
			inv.Seed = append(inv.Seed, id)
		}
	}
	inv.Dirty = DirtyClosure(g, inv.Seed)
	return inv, nil
}

// DirtyClosure expands seed to its downstream dependence closure over g's
// edges (seed included), returned ascending. Out-of-range seed ids are an
// error surfaced by panic in Successors; callers pass task ids of g.
func DirtyClosure(g runtime.Graph, seed []int) []int {
	if len(seed) == 0 {
		return nil
	}
	n := g.NumTasks()
	dirty := make([]bool, n)
	queue := make([]int, 0, len(seed))
	for _, id := range seed {
		if !dirty[id] {
			dirty[id] = true
			queue = append(queue, id)
		}
	}
	var buf []int
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		buf = g.Successors(id, buf[:0])
		for _, s := range buf {
			if !dirty[s] {
				dirty[s] = true
				queue = append(queue, s)
			}
		}
	}
	out := make([]int, 0, len(seed))
	for id, d := range dirty {
		if d {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
