package plan

import gort "runtime"

// replayPool runs numeric task bodies during a replay, mirroring the
// engine's worker pool: bodies start eagerly at their recorded commit and
// are joined at their recorded completion, so replayed dataflow order
// matches the original run under any GOMAXPROCS. Goroutines spin up lazily
// on the first body — phantom replays never pay for them.
type replayPool struct {
	jobs chan func()
	done map[int]chan struct{}
}

// start submits a task body and registers its join channel.
func (rp *replayPool) start(id int, body func()) {
	if rp.jobs == nil {
		size := gort.GOMAXPROCS(0)
		rp.jobs = make(chan func(), 4*size)
		rp.done = make(map[int]chan struct{})
		for i := 0; i < size; i++ {
			go func() {
				for j := range rp.jobs {
					j()
				}
			}()
		}
	}
	ch := make(chan struct{})
	rp.done[id] = ch
	rp.jobs <- func() {
		body()
		close(ch)
	}
}

// await blocks until task id's body (if one was started) has finished.
func (rp *replayPool) await(id int) {
	if ch, ok := rp.done[id]; ok {
		<-ch
		delete(rp.done, id)
	}
}

// close shuts the worker goroutines down (no-op if none were started).
func (rp *replayPool) close() {
	if rp.jobs != nil {
		close(rp.jobs)
	}
}
