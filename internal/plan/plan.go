// Package plan splits the engine's work into a reusable compiled plan and a
// cheap numeric replay pass — the MLE workload's biggest wall-clock lever
// (ROADMAP): every likelihood evaluation factorizes the *same* tile DAG on
// the same platform, so the discrete-event simulation (task ordering, device
// placement, link bookings, broadcast shapes, conversion decisions) can be
// paid once and re-used across iterations, Monte-Carlo replicas and
// parameter sweeps.
//
// A Plan freezes three things from one engine run:
//
//   - the interleaved commit/completion stream (runtime.PlanRecorder), which
//     encodes the exact synchronization order numeric bodies must observe;
//   - the virtual-time outcome (runtime.Stats, including the FNV-1a schedule
//     digest, and the traced ScheduledTask timeline);
//   - a per-task signature of every schedule-relevant spec field, which is
//     what incremental invalidation diffs when the precision map changes.
//
// Replay walks the stream against a fresh graph: each commit starts the
// task's numeric body on a worker pool, each completion joins it. Because
// the stream orders every producer's completion before any consumer's
// commit, replayed bodies observe the same dataflow order as the original
// run and produce the bit-identical factor, while the frozen Stats stand in
// for the O(n log n) event-heap simulation. Invalidation is deliberately
// conservative: timing is coupled globally through device and link
// contention, so a precision change triggers a full recompile — what is
// incremental is the dirty-closure analysis proving *which* tasks could
// have changed (and that none outside the closure did).
package plan

import (
	"fmt"

	"geompc/internal/comm"
	"geompc/internal/obs"
	"geompc/internal/runtime"
	"geompc/internal/sched"
)

// opComplete marks a stream entry as a completion; the low 31 bits carry
// the task id.
const opComplete = uint32(1) << 31

// Plan is one compiled schedule, reusable for any graph with the same shape
// signature and precision signature. A Plan is immutable once Compile
// returns: Replay and Invalidate only read it, so one Plan may serve any
// number of concurrent replays (each builds its own graph and pool) — the
// property Cache's concurrency contract leans on.
type Plan struct {
	// Sig is the caller-supplied shape signature (platform, tiling,
	// strategy, policy, topology, front-end — everything except the
	// precision map and the numeric data).
	Sig uint64
	// PrecSig is the precision-map signature the plan was compiled under
	// (precmap.Maps.Signature); replaying under a different map is unsound
	// and refused.
	PrecSig uint64
	// NumTasks of the compiled graph.
	NumTasks int
	// Stats is the frozen virtual-time outcome, including ScheduleDigest.
	Stats runtime.Stats
	// Schedule is the traced task timeline (commit order).
	Schedule []runtime.ScheduledTask
	// Metrics is the compile run's frozen metrics registry; replays hand it
	// back unchanged (a replay adds no engine work to measure).
	Metrics *obs.Registry

	// ops is the recorded commit/completion stream: 2·NumTasks entries,
	// task id with opComplete set on completions.
	ops []uint32
	// specSigs[id] hashes every schedule-relevant field of task id's spec.
	specSigs []uint64
}

// Options configures a compile; the zero value is the engine's historical
// behavior (FIFO policy, binomial broadcasts, lookahead 2, no audit).
type Options struct {
	Policy    sched.Policy
	Bcast     comm.Topology
	Lookahead int
	Audit     bool
	// Workers selects the compile run's engine mode (runtime.Engine's
	// EngineWorkers). It is deliberately absent from plan shape signatures:
	// the parallel engine's schedules are bit-identical to serial, so a plan
	// compiled under either mode replays configs of both.
	Workers int
}

// recorder accumulates the engine's commit/completion stream into a plan.
type recorder struct{ p *Plan }

func (r recorder) RecordCommit(id int)   { r.p.ops = append(r.p.ops, uint32(id)) }
func (r recorder) RecordComplete(id int) { r.p.ops = append(r.p.ops, uint32(id)|opComplete) }

// Compile executes g once on plat — a full simulation, numeric bodies and
// all — and returns the reusable plan. sig and precSig identify what the
// plan is valid for (see Plan.Sig/PrecSig). Compilation must be fault-free:
// fault plans perturb the schedule nondeterministically with respect to the
// graph alone, so front-ends bypass the cache for armed runs.
func Compile(plat *runtime.Platform, g runtime.Graph, sig, precSig uint64, opts Options) (*Plan, error) {
	n := g.NumTasks()
	p := &Plan{Sig: sig, PrecSig: precSig, NumTasks: n, ops: make([]uint32, 0, 2*n)}
	eng := runtime.New(plat, g)
	eng.Trace = true // the plan freezes the traced timeline
	eng.Audit = opts.Audit
	eng.Policy = opts.Policy
	eng.Bcast = opts.Bcast
	eng.EngineWorkers = opts.Workers
	if opts.Lookahead > 0 {
		eng.Lookahead = opts.Lookahead
	}
	eng.Recorder = recorder{p}
	stats, err := eng.Run()
	if err != nil {
		return nil, err
	}
	if len(p.ops) != 2*n {
		return nil, fmt.Errorf("plan: recorded %d stream entries for %d tasks (want %d)", len(p.ops), n, 2*n)
	}
	p.Stats = stats
	p.Schedule = append([]runtime.ScheduledTask(nil), eng.ScheduleTrace()...)
	p.Metrics = eng.Metrics()
	p.specSigs = SpecSignatures(g)
	return p, nil
}

// Replay re-executes only the numeric bodies of g against the frozen
// schedule: the recorded stream is walked once, starting each task's body
// at its commit and joining it at its completion, and the compiled Stats
// are returned untouched. The graph must have the same task count as the
// compiled one and — a front-end responsibility — the same shape and
// precision signatures; only the numeric tile contents may differ.
func (p *Plan) Replay(g runtime.Graph) (runtime.Stats, error) {
	if n := g.NumTasks(); n != p.NumTasks {
		return runtime.Stats{}, fmt.Errorf("plan: graph has %d tasks, plan compiled for %d", n, p.NumTasks)
	}
	if len(p.ops) != 2*p.NumTasks {
		return runtime.Stats{}, fmt.Errorf("plan: malformed stream: %d entries for %d tasks", len(p.ops), p.NumTasks)
	}
	rp := &replayPool{}
	defer rp.close()
	var spec runtime.TaskSpec
	replayOps(p.ops, g, &spec, rp)
	return p.Stats, nil
}

// replayOps is the replay inner loop: one pass over the recorded stream,
// re-materializing each committed task's spec into the single recycled
// record and driving the body pool. All allocation lives in the pool's
// start/await paths, which only run for tasks that carry numeric bodies —
// phantom replays execute this loop alone.
//
//geompc:hot
func replayOps(ops []uint32, g runtime.Graph, spec *runtime.TaskSpec, rp *replayPool) {
	for _, op := range ops {
		id := int(op &^ opComplete)
		if op&opComplete != 0 {
			rp.await(id)
			continue
		}
		g.Spec(id, spec)
		if spec.Body != nil {
			rp.start(id, spec.Body) //geompc:nolint hotalloc pool warm-up and per-op join bookkeeping; amortized across the replayed plan
		}
	}
}

// SpecSignatures hashes every schedule-relevant field of every task spec:
// kind, device, precision, flops, priority, each input's wire format and
// conversion, the output footprint, and the publish shape including its
// broadcast targets. Bodies are excluded (they carry the numerics, not the
// schedule). Equal signatures for a task across two graphs mean the engine
// would treat the task identically — the soundness oracle of incremental
// invalidation.
func SpecSignatures(g runtime.Graph) []uint64 {
	n := g.NumTasks()
	sigs := make([]uint64, n)
	var spec runtime.TaskSpec
	for id := 0; id < n; id++ {
		g.Spec(id, &spec)
		var d obs.Digest
		d.WriteString(string(spec.Kind))
		d.WriteInt64(int64(spec.Device))
		d.WriteInt64(int64(spec.Prec))
		d.WriteFloat64(spec.Flops)
		d.WriteInt64(spec.Priority)
		d.WriteInt64(int64(len(spec.Inputs)))
		for i := range spec.Inputs {
			in := &spec.Inputs[i]
			d.WriteInt64(int64(in.Data))
			d.WriteInt64(in.WireBytes)
			d.WriteInt64(int64(in.WirePrec))
			d.WriteInt64(int64(in.ConvertElems))
			d.WriteInt64(int64(in.ConvFrom))
			d.WriteInt64(int64(in.ConvTo))
		}
		d.WriteInt64(int64(spec.Output.Data))
		d.WriteInt64(spec.Output.Bytes)
		d.WriteInt64(int64(spec.Output.Prec))
		if p := spec.Publish; p != nil {
			d.WriteInt64(p.WireBytes)
			d.WriteInt64(int64(p.WirePrec))
			d.WriteInt64(int64(p.ConvertElems))
			d.WriteInt64(int64(p.ConvFrom))
			d.WriteInt64(int64(p.ConvTo))
			d.WriteInt64(int64(len(p.RemoteRanks)))
			for _, r := range p.RemoteRanks {
				d.WriteInt64(int64(r))
			}
		} else {
			d.WriteInt64(-1)
		}
		sigs[id] = d.Sum()
	}
	return sigs
}
