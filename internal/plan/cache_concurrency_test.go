package plan_test

// The cache's concurrency contract under the race detector: many goroutines
// hammer one Cache through the raw API and through cholesky.RunCached —
// the shared-cache sweep shape — and every result must stay bit-identical
// to a serial reference.

import (
	"sync"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/plan"
)

// TestCacheConcurrentHammer drives the raw Cache API from many goroutines
// at once: lookups, stores, counter bumps and snapshots all interleave.
// The run is only meaningful under -race (the plan-cache and sweep-matrix
// CI jobs); the final assertions check the counters' atomicity arithmetic.
func TestCacheConcurrentHammer(t *testing.T) {
	cache := plan.NewCache(nil)
	cfgA := newConfig(t, 4, 1, 2, 1e-8, "", "")
	cfgB := newConfig(t, 5, 1, 2, 1e-8, "", "")
	pa, err := cholesky.Compile(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := cholesky.Compile(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					cache.Store(pa)
					cache.Miss()
				case 1:
					cache.Store(pb)
					cache.Invalidated(3)
				case 2:
					if p := cache.Lookup(pa.Sig); p != nil && p.Sig != pa.Sig {
						t.Errorf("lookup returned plan with sig %016x under key %016x", p.Sig, pa.Sig)
					}
					cache.Hit()
				default:
					_ = cache.Stats()
					_ = cache.Len()
					cache.Bypass()
				}
			}
		}(w)
	}
	wg.Wait()

	s := cache.Stats()
	per := int64(workers * iters / 4)
	if s.Misses != per || s.Hits != per || s.Bypasses != per || s.Invalidations != per {
		t.Errorf("counter totals %+v, want %d each", s, per)
	}
	if s.TasksInvalidated != 3*per {
		t.Errorf("tasks invalidated = %d, want %d", s.TasksInvalidated, 3*per)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d plans, want 2", cache.Len())
	}
}

// TestRunCachedSharedAcrossGoroutines is the shared-cache sweep scenario:
// one cache, many concurrent RunCached callers alternating two precision
// maps over the same shape. Whoever wins each compile race is scheduling-
// dependent, but every returned result — digest and factor bits — must be
// identical to the serial reference for its map.
func TestRunCachedSharedAcrossGoroutines(t *testing.T) {
	refTight, err := cholesky.Run(newConfig(t, 5, 1, 2, 1e-8, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	refLoose, err := cholesky.Run(newConfig(t, 5, 1, 2, 1e-2, "", ""))
	if err != nil {
		t.Fatal(err)
	}
	wantTight := newConfig(t, 5, 1, 2, 1e-8, "", "")
	if _, err := cholesky.Run(wantTight); err != nil {
		t.Fatal(err)
	}
	tightBits := factorBits(wantTight.Matrix, wantTight.Desc)

	cache := plan.NewCache(nil)
	const workers, iters = 6, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ureq, want := 1e-8, refTight.Digest()
				if (w+i)%2 == 1 {
					ureq, want = 1e-2, refLoose.Digest()
				}
				cfg := newConfig(t, 5, 1, 2, ureq, "", "")
				res, err := cholesky.RunCached(cfg, cache)
				if err != nil {
					errs <- err
					return
				}
				if res.Digest() != want {
					t.Errorf("worker %d iter %d (u=%g): digest %016x != serial %016x",
						w, i, ureq, res.Digest(), want)
				}
				if ureq == 1e-8 {
					sameBits(t, tightBits, factorBits(cfg.Matrix, cfg.Desc), "shared-cache factor")
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses == 0 {
		t.Errorf("shared cache never compiled: %+v", s)
	}
}
