package plan_test

// The tentpole property: a replayed run is indistinguishable from a fresh
// simulation. For every combination of problem size, process grid, device
// count, front-end (PTG / DTD), scheduling policy and broadcast topology,
// the schedule digest of the replay equals the fresh run's digest and the
// numeric factor is bit-identical. Run under -race in CI (plan-cache job):
// the replay pool's start/await handshake is the only concurrency in the
// path, and this grid exercises it across every schedule shape.

import (
	"fmt"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/plan"
)

type frontCase struct {
	name    string
	run     func(cholesky.Config) (*cholesky.Result, error)
	compile func(cholesky.Config) (*plan.Plan, error)
	replay  func(cholesky.Config, *plan.Plan) (*cholesky.Result, error)
}

func frontEnds() []frontCase {
	return []frontCase{
		{"ptg", cholesky.Run, cholesky.Compile, cholesky.Replay},
		{"dtd", cholesky.RunDTD, cholesky.CompileDTD, cholesky.ReplayDTD},
	}
}

type gridCase struct {
	nt, ranks, devPerRank int
	policy, topo          string
}

func replayGrid() []gridCase {
	var cases []gridCase
	// Platform sweep at the default policy and topology.
	for _, pl := range [][3]int{{4, 1, 1}, {4, 1, 3}, {4, 4, 2}, {8, 4, 2}} {
		cases = append(cases, gridCase{nt: pl[0], ranks: pl[1], devPerRank: pl[2]})
	}
	// Policy × topology sweep at a fixed multi-rank platform.
	for _, pol := range []string{"", "locality", "cp"} {
		for _, topo := range []string{"", "flat", "chain"} {
			if pol == "" && topo == "" {
				continue // covered above
			}
			cases = append(cases, gridCase{nt: 6, ranks: 4, devPerRank: 2, policy: pol, topo: topo})
		}
	}
	return cases
}

func (c gridCase) name(fe string) string {
	pol, topo := c.policy, c.topo
	if pol == "" {
		pol = "fifo"
	}
	if topo == "" {
		topo = "binomial"
	}
	return fmt.Sprintf("%s/nt%d-%dx%d-%s-%s", fe, c.nt, c.ranks, c.devPerRank, pol, topo)
}

// TestReplayMatchesFresh is the golden-replay property across the full
// schedule-shape grid.
func TestReplayMatchesFresh(t *testing.T) {
	for _, fe := range frontEnds() {
		for _, gc := range replayGrid() {
			gc := gc
			fe := fe
			t.Run(gc.name(fe.name), func(t *testing.T) {
				t.Parallel()
				const ureq = 1e-8

				// Fresh simulation: the reference digest and factor.
				fresh := newConfig(t, gc.nt, gc.ranks, gc.devPerRank, ureq, gc.policy, gc.topo)
				freshRes, err := fe.run(fresh)
				if err != nil {
					t.Fatalf("fresh run: %v", err)
				}
				if freshRes.Err != nil {
					t.Fatalf("fresh numeric failure: %v", freshRes.Err)
				}
				wantBits := factorBits(fresh.Matrix, fresh.Desc)

				// Compile: itself a full run, so digest and factor must match.
				ccfg := newConfig(t, gc.nt, gc.ranks, gc.devPerRank, ureq, gc.policy, gc.topo)
				p, err := fe.compile(ccfg)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if p.Stats.ScheduleDigest != freshRes.Digest() {
					t.Fatalf("compile digest %016x != fresh %016x",
						p.Stats.ScheduleDigest, freshRes.Digest())
				}
				sameBits(t, wantBits, factorBits(ccfg.Matrix, ccfg.Desc), "compile")

				// Replay: only the numeric bodies re-run; digest is frozen and
				// the factor must still come out bit-identical.
				rcfg := newConfig(t, gc.nt, gc.ranks, gc.devPerRank, ureq, gc.policy, gc.topo)
				repRes, err := fe.replay(rcfg, p)
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if repRes.Err != nil {
					t.Fatalf("replay numeric failure: %v", repRes.Err)
				}
				if repRes.Digest() != freshRes.Digest() {
					t.Fatalf("replay digest %016x != fresh %016x",
						repRes.Digest(), freshRes.Digest())
				}
				if repRes.Stats.Makespan != freshRes.Stats.Makespan ||
					repRes.Stats.Energy != freshRes.Stats.Energy ||
					repRes.Stats.BytesNet != freshRes.Stats.BytesNet ||
					repRes.Stats.Tasks != freshRes.Stats.Tasks {
					t.Fatalf("replay stats diverge from fresh:\n%+v\n%+v",
						repRes.Stats, freshRes.Stats)
				}
				sameBits(t, wantBits, factorBits(rcfg.Matrix, rcfg.Desc), "replay")

				// A second replay of the same plan stays bit-identical —
				// replays do not consume the plan.
				r2 := newConfig(t, gc.nt, gc.ranks, gc.devPerRank, ureq, gc.policy, gc.topo)
				if _, err := fe.replay(r2, p); err != nil {
					t.Fatalf("second replay: %v", err)
				}
				sameBits(t, wantBits, factorBits(r2.Matrix, r2.Desc), "second replay")
			})
		}
	}
}

// TestReplayRejectsMismatch: replaying under a different shape or precision
// signature is refused, not silently wrong.
func TestReplayRejectsMismatch(t *testing.T) {
	base := newConfig(t, 4, 2, 2, 1e-8, "", "")
	p, err := cholesky.Compile(base)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Different shape (policy change).
	other := newConfig(t, 4, 2, 2, 1e-8, "locality", "")
	if _, err := cholesky.Replay(other, p); err == nil {
		t.Fatal("replay accepted a plan compiled under a different policy")
	}

	// Different precision map (looser accuracy → different maps).
	loose := newConfig(t, 4, 2, 2, 1e-2, "", "")
	if _, err := cholesky.Replay(loose, p); err == nil {
		t.Fatal("replay accepted a plan compiled under a different precision map")
	}

	// Wrong front-end: DTD ids never replay a PTG plan.
	dcfg := newConfig(t, 4, 2, 2, 1e-8, "", "")
	if _, err := cholesky.ReplayDTD(dcfg, p); err == nil {
		t.Fatal("DTD replay accepted a PTG plan")
	}
}

// TestPlanBackedResult: results served from a plan still answer the Result
// API sensibly — frozen schedule, frozen metrics, no interval traces.
func TestPlanBackedResult(t *testing.T) {
	cfg := newConfig(t, 4, 2, 2, 1e-8, "", "")
	p, err := cholesky.Compile(cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rcfg := newConfig(t, 4, 2, 2, 1e-8, "", "")
	res, err := cholesky.Replay(rcfg, p)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := len(res.Schedule(4)); got != p.NumTasks {
		t.Fatalf("plan-backed schedule has %d entries, want %d", got, p.NumTasks)
	}
	if res.Metrics() == nil {
		t.Fatal("plan-backed result has nil metrics")
	}
	if busy, xfer := res.DeviceTrace(0); busy != nil || xfer != nil {
		t.Fatal("plan-backed result should carry no interval traces")
	}
	if err := res.WriteChromeTrace(nil, 4); err == nil {
		t.Fatal("plan-backed result should refuse chrome traces")
	}
}
