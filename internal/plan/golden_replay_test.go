package plan_test

// Golden-replay harness: the schedule digests below are pinned. A compiled
// plan replayed today, next month, or after a refactor must reproduce these
// exact digests for the canonical scenario (NT=6, 4 ranks × 2 devices,
// u_req=1e-8, PTG front-end) across every scheduling policy × broadcast
// topology pair. A mismatch means the plan/replay split changed observable
// schedule behavior — bump these constants only with a digest-change
// justification in the commit message (see internal/cholesky's golden
// digest test for the precedent).

import (
	"testing"

	"geompc/internal/cholesky"
)

var goldenReplayDigests = map[[2]string]uint64{
	{"fifo", "binomial"}:     0xcdd7a71e0c1d9e46,
	{"fifo", "flat"}:         0xb388dec054601b2f,
	{"fifo", "chain"}:        0x9c3e7f6bad1d19d4,
	{"locality", "binomial"}: 0x0705cc1a2a7af200,
	{"locality", "flat"}:     0x63816bf1316e588f,
	// At this rank count the chain and flat topologies serialize the same
	// link bookings under locality placement — identical digests, pinned
	// independently so a divergence in either still trips the harness.
	{"locality", "chain"}: 0x63816bf1316e588f,
	{"cp", "binomial"}:    0x8aef017cf63c2ff9,
	{"cp", "flat"}:        0xdb62d0f38fec0e47,
	{"cp", "chain"}:       0x4bd416df0a82bf80,
}

func TestGoldenReplayDigests(t *testing.T) {
	for key, want := range goldenReplayDigests {
		key, want := key, want
		t.Run(key[0]+"-"+key[1], func(t *testing.T) {
			t.Parallel()
			cfg := newConfig(t, 6, 4, 2, 1e-8, key[0], key[1])
			p, err := cholesky.Compile(cfg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if p.Stats.ScheduleDigest != want {
				t.Fatalf("compile digest 0x%016x, pinned 0x%016x", p.Stats.ScheduleDigest, want)
			}
			rcfg := newConfig(t, 6, 4, 2, 1e-8, key[0], key[1])
			res, err := cholesky.Replay(rcfg, p)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res.Digest() != want {
				t.Fatalf("replay digest 0x%016x, pinned 0x%016x", res.Digest(), want)
			}
		})
	}
}
