// Package optimize provides bound-constrained derivative-free minimizers
// for the MLE driver. The paper uses NLopt's BOBYQA (§VII-B); this package
// substitutes two classical derivative-free methods that converge to the
// same optima on the smooth, low-dimensional (2–3 parameter) likelihood
// surfaces involved: a box-constrained Nelder–Mead simplex and a compass
// (coordinate pattern) search used as a polishing fallback.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// Objective is a function to minimize. Implementations may return +Inf to
// reject a point (e.g. a non-SPD covariance).
type Objective func(x []float64) float64

// Options controls a minimization.
type Options struct {
	// Tol is the convergence tolerance on the objective spread (the paper
	// sets 1e-9).
	Tol float64
	// MaxEvals bounds the number of objective evaluations (default 2000).
	MaxEvals int
	// Memoize caches objective values by exact argument bits. The restart
	// and polish phases of Minimize re-evaluate incumbents at identical
	// coordinates; when each evaluation is an expensive simulated
	// factorization (the MLE driver), memoization turns those repeats into
	// table lookups. Only sound for deterministic objectives — which every
	// simulation in this repository is by construction.
	Memoize bool
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 2000
	}
	return o
}

// Result reports a completed minimization.
type Result struct {
	X     []float64
	F     float64
	Evals int
	// Converged is false when MaxEvals was exhausted first.
	Converged bool
}

// ErrBadBounds reports inconsistent box constraints.
var ErrBadBounds = errors.New("optimize: lower bound exceeds upper bound")

func checkBounds(x0, lo, hi []float64) error {
	if len(lo) != len(x0) || len(hi) != len(x0) {
		return fmt.Errorf("optimize: dimension mismatch: x0=%d lo=%d hi=%d", len(x0), len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return fmt.Errorf("%w: dim %d: [%g, %g]", ErrBadBounds, i, lo[i], hi[i])
		}
	}
	return nil
}

func clampVec(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		}
		if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// NelderMead minimizes f over the box [lo, hi] starting from x0, projecting
// trial points onto the box. It is the repository's BOBYQA stand-in.
func NelderMead(f Objective, x0, lo, hi []float64, opt Options) (Result, error) {
	if err := checkBounds(x0, lo, hi); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	n := len(x0)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Initial simplex: x0 plus per-coordinate steps of 10% of the box (or
	// of |x0| when the box is unbounded in practice).
	pts := make([][]float64, n+1)
	fv := make([]float64, n+1)
	pts[0] = append([]float64(nil), x0...)
	clampVec(pts[0], lo, hi)
	fv[0] = eval(pts[0])
	for i := 0; i < n; i++ {
		p := append([]float64(nil), pts[0]...)
		step := 0.1 * (hi[i] - lo[i])
		if step <= 0 || math.IsInf(step, 0) {
			step = 0.1 * math.Max(math.Abs(p[i]), 1)
		}
		if p[i]+step > hi[i] {
			step = -step
		}
		p[i] += step
		clampVec(p, lo, hi)
		pts[i+1] = p
		fv[i+1] = eval(p)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := func() {
		// insertion sort of the n+1 simplex points by fv
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && fv[j] < fv[j-1]; j-- {
				fv[j], fv[j-1] = fv[j-1], fv[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	trial2 := make([]float64, n)

	for evals < opt.MaxEvals {
		order()
		if math.Abs(fv[n]-fv[0]) <= opt.Tol*(math.Abs(fv[0])+opt.Tol) {
			return Result{X: pts[0], F: fv[0], Evals: evals, Converged: true}, nil
		}
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += pts[i][j] / float64(n)
			}
		}
		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + alpha*(centroid[j]-pts[n][j])
		}
		clampVec(trial, lo, hi)
		fr := eval(trial)
		switch {
		case fr < fv[0]:
			// Expansion.
			for j := range trial2 {
				trial2[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			clampVec(trial2, lo, hi)
			fe := eval(trial2)
			if fe < fr {
				copy(pts[n], trial2)
				fv[n] = fe
			} else {
				copy(pts[n], trial)
				fv[n] = fr
			}
		case fr < fv[n-1]:
			copy(pts[n], trial)
			fv[n] = fr
		default:
			// Contraction.
			for j := range trial2 {
				trial2[j] = centroid[j] + rho*(pts[n][j]-centroid[j])
			}
			clampVec(trial2, lo, hi)
			fc := eval(trial2)
			if fc < fv[n] {
				copy(pts[n], trial2)
				fv[n] = fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := range pts[i] {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					clampVec(pts[i], lo, hi)
					fv[i] = eval(pts[i])
				}
			}
		}
	}
	order()
	return Result{X: pts[0], F: fv[0], Evals: evals, Converged: false}, nil
}

// CompassSearch minimizes f by coordinate pattern search with step halving:
// robust, slow, and provably convergent on smooth objectives. Used to
// polish Nelder–Mead results and as an independent cross-check.
func CompassSearch(f Objective, x0, lo, hi []float64, opt Options) (Result, error) {
	if err := checkBounds(x0, lo, hi); err != nil {
		return Result{}, err
	}
	opt = opt.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	clampVec(x, lo, hi)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	fx := eval(x)
	steps := make([]float64, n)
	for i := range steps {
		steps[i] = 0.25 * (hi[i] - lo[i])
		if steps[i] <= 0 || math.IsInf(steps[i], 0) {
			steps[i] = math.Max(math.Abs(x[i])*0.25, 0.25)
		}
	}
	trial := make([]float64, n)
	for evals < opt.MaxEvals {
		improved := false
		for i := 0; i < n; i++ {
			for _, dir := range []float64{1, -1} {
				copy(trial, x)
				trial[i] += dir * steps[i]
				clampVec(trial, lo, hi)
				if trial[i] == x[i] {
					continue
				}
				if ft := eval(trial); ft < fx {
					copy(x, trial)
					fx = ft
					improved = true
				}
			}
		}
		if !improved {
			maxStep := 0.0
			for i := range steps {
				steps[i] /= 2
				if steps[i] > maxStep {
					maxStep = steps[i]
				}
			}
			if maxStep < opt.Tol {
				return Result{X: x, F: fx, Evals: evals, Converged: true}, nil
			}
		}
	}
	return Result{X: x, F: fx, Evals: evals, Converged: false}, nil
}

// memoized wraps f with an exact-bits value cache (see Options.Memoize).
// Keys are the raw IEEE-754 bit patterns of the argument vector, so two
// calls hit the same entry iff the coordinates are bit-identical — the only
// equality under which reusing a deterministic objective value is sound.
func memoized(f Objective) Objective {
	cache := make(map[string]float64)
	var key []byte
	return func(x []float64) float64 {
		key = key[:0]
		for _, v := range x {
			b := math.Float64bits(v)
			key = append(key,
				byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
				byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
		}
		if v, ok := cache[string(key)]; ok {
			return v
		}
		v := f(x)
		cache[string(key)] = v
		return v
	}
}

// Minimize runs Nelder–Mead with automatic restarts (a fresh simplex is
// spawned at the incumbent until it stops improving — the standard remedy
// for premature simplex collapse on curved likelihood ridges) and polishes
// the result with a short compass search, returning the best point found.
func Minimize(f Objective, x0, lo, hi []float64, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Memoize {
		f = memoized(f)
	}
	budget := opt.MaxEvals
	perRun := opt
	perRun.MaxEvals = budget / 2

	best, err := NelderMead(f, x0, lo, hi, perRun)
	if err != nil {
		return Result{}, err
	}
	evals := best.Evals
	// Restart loop: NM again from the incumbent with a fresh simplex.
	for evals < budget*3/4 {
		perRun.MaxEvals = budget/4 + 1
		r, err := NelderMead(f, best.X, lo, hi, perRun)
		if err != nil {
			return Result{}, err
		}
		evals += r.Evals
		improved := r.F < best.F-opt.Tol*(math.Abs(best.F)+opt.Tol)
		if r.F < best.F {
			r.Evals = evals
			best = r
		}
		if !improved {
			break
		}
	}
	polishOpt := opt
	polishOpt.MaxEvals = budget / 4
	cs, err := CompassSearch(f, best.X, lo, hi, polishOpt)
	if err != nil {
		return Result{}, err
	}
	evals += cs.Evals
	if cs.F < best.F {
		cs.Evals = evals
		cs.Converged = cs.Converged || best.Converged
		return cs, nil
	}
	best.Evals = evals
	return best, nil
}
