package optimize

import (
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += (v - 0.3) * (v - 0.3)
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i+1 < len(x); i++ {
		s += 100*(x[i+1]-x[i]*x[i])*(x[i+1]-x[i]*x[i]) + (1-x[i])*(1-x[i])
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	res, err := NelderMead(sphere, []float64{1.5, -0.5, 0.9}, []float64{-2, -2, -2}, []float64{2, 2, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	for i, v := range res.X {
		if math.Abs(v-0.3) > 1e-4 {
			t.Errorf("x[%d] = %g, want 0.3", i, v)
		}
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, []float64{-5, -5}, []float64{5, 5}, Options{MaxEvals: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum missed: %v (f=%g)", res.X, res.F)
	}
}

func TestBoundsAreRespected(t *testing.T) {
	// The unconstrained minimum (0.3) is outside the box; the solution must
	// land on the boundary 0.5.
	lo, hi := []float64{0.5}, []float64{2}
	for _, m := range []func(Objective, []float64, []float64, []float64, Options) (Result, error){NelderMead, CompassSearch, Minimize} {
		res, err := m(sphere, []float64{1.5}, lo, hi, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.X[0] < 0.5-1e-12 || res.X[0] > 2+1e-12 {
			t.Errorf("solution %v outside box", res.X)
		}
		if math.Abs(res.X[0]-0.5) > 1e-3 {
			t.Errorf("boundary minimum missed: %v", res.X)
		}
	}
}

func TestLowerBoundStart(t *testing.T) {
	// The paper starts optimization from the lower bound values; that must
	// work (the initial simplex must expand into the box, not out of it).
	res, err := Minimize(sphere, []float64{0.01, 0.01}, []float64{0.01, 0.01}, []float64{2, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-0.3) > 1e-3 {
			t.Errorf("x[%d] = %g, want 0.3", i, v)
		}
	}
}

func TestInfinityRejection(t *testing.T) {
	// Objective returning +Inf on half the domain (non-SPD region) must not
	// break the search.
	f := func(x []float64) float64 {
		if x[0] < 0.2 {
			return math.Inf(1)
		}
		return (x[0] - 0.7) * (x[0] - 0.7)
	}
	res, err := Minimize(f, []float64{1.9}, []float64{0.01}, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.7) > 1e-3 {
		t.Errorf("minimum missed with Inf region: %v", res.X)
	}
}

func TestNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] > 1 {
			return math.NaN()
		}
		return x[0] * x[0]
	}
	res, err := NelderMead(f, []float64{0.9}, []float64{-2}, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.F) {
		t.Error("NaN escaped into result")
	}
}

func TestBadBounds(t *testing.T) {
	if _, err := NelderMead(sphere, []float64{0}, []float64{1}, []float64{-1}, Options{}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := CompassSearch(sphere, []float64{0}, []float64{0}, []float64{1, 2}, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMaxEvalsHonored(t *testing.T) {
	evals := 0
	f := func(x []float64) float64 { evals++; return sphere(x) }
	res, err := NelderMead(f, []float64{1.5, 1.5}, []float64{-2, -2}, []float64{2, 2}, Options{MaxEvals: 30, Tol: 1e-30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("claimed convergence with Tol=1e-30 and 30 evals")
	}
	if evals > 35 { // slight overshoot within one iteration is fine
		t.Errorf("used %d evals, budget 30", evals)
	}
}

func TestCompassOnQuadraticValley(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-0.4)*(x[0]-0.4) + 10*(x[1]-0.8)*(x[1]-0.8)
	}
	res, err := CompassSearch(f, []float64{0.01, 0.01}, []float64{0.01, 0.01}, []float64{2, 2}, Options{MaxEvals: 4000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.4) > 1e-4 || math.Abs(res.X[1]-0.8) > 1e-4 {
		t.Errorf("valley minimum missed: %v", res.X)
	}
}
