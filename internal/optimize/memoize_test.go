package optimize

import (
	"math"
	"testing"
)

// TestMemoizeExactRepeats: with Memoize set, Minimize calls the underlying
// objective at most once per distinct coordinate vector while converging to
// the same point as the unmemoized run.
func TestMemoizeExactRepeats(t *testing.T) {
	sphere := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += (v - 0.3) * (v - 0.3)
		}
		return s
	}
	x0 := []float64{-1, 1}
	lo := []float64{-2, -2}
	hi := []float64{2, 2}
	opt := Options{Tol: 1e-10, MaxEvals: 400}

	plainCalls := 0
	plain, err := Minimize(func(x []float64) float64 { plainCalls++; return sphere(x) }, x0, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Memoize = true
	seen := make(map[[2]float64]int)
	memoCalls := 0
	memo, err := Minimize(func(x []float64) float64 {
		memoCalls++
		key := [2]float64{x[0], x[1]}
		seen[key]++
		if seen[key] > 1 {
			t.Errorf("memoized objective re-evaluated at %v", x)
		}
		return sphere(x)
	}, x0, lo, hi, opt)
	if err != nil {
		t.Fatal(err)
	}

	if memo.F != plain.F || memo.X[0] != plain.X[0] || memo.X[1] != plain.X[1] {
		t.Fatalf("memoized optimum (%v, %g) != plain (%v, %g)", memo.X, memo.F, plain.X, plain.F)
	}
	if memoCalls >= plainCalls {
		t.Fatalf("memoization saved nothing: %d calls vs %d plain (restart loop should repeat points)",
			memoCalls, plainCalls)
	}
	if math.Abs(memo.F) > 1e-8 {
		t.Fatalf("optimum not reached: f=%g", memo.F)
	}
}
