package bench

// PlanAblationMLE benchmarks: the fresh variant pays a full discrete-event
// simulation per evaluation; the cached variant compiles the plan once
// outside the timed region, so each iteration is one honest replay (ops
// walk + spec re-materialization). Their ratio in BENCH_kernels.json is
// the plan cache's per-evaluation win on the MLE-shaped phantom loop.

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

func planBenchConfig(tb testing.TB) cholesky.Config {
	tb.Helper()
	plat, err := runtime.NewPlatform(hw.SummitNode, 1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	desc, err := tile.NewDesc(4096, 128, 1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	maps := precmap.New(ConvConfig{OffDiag: prec.FP16x32}.KernelMap(desc.NT), 1e-4)
	return cholesky.Config{Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto}
}

func BenchmarkPlanAblationMLEFresh(b *testing.B) {
	cfg := planBenchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cholesky.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanAblationMLECached(b *testing.B) {
	cfg := planBenchConfig(b)
	cache := planpkg.NewCache(nil)
	if _, err := cholesky.RunCached(cfg, cache); err != nil { // compile outside the timer
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cholesky.RunCached(cfg, cache); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := cache.Stats(); s.Hits != int64(b.N) || s.Misses != 1 {
		b.Fatalf("cache stats %+v after %d timed iterations", s, b.N)
	}
}

// TestPlanAblation exercises the cmd/ablation table end to end and checks
// its built-in digest self-verification plus the expected counter shape.
func TestPlanAblation(t *testing.T) {
	rows, err := PlanAblation(1024, 128, 6, hw.SummitNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "fresh" || rows[1].Variant != "plan-cache" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	if rows[1].Misses != 1 || rows[1].Hits != 5 || rows[1].Invalidations != 0 {
		t.Fatalf("cached loop counters: %+v", rows[1])
	}
	if rows[1].Speedup <= 0 {
		t.Fatalf("non-positive speedup %g", rows[1].Speedup)
	}
}

// TestConvSweepCachedMatchesFresh: a cached sweep reports the same rows as
// a fresh one. The sweep alternates maps over few shapes, so with one plan
// slot per shape every run is a miss or an invalidation+recompile — the
// counters must balance the row count exactly.
func TestConvSweepCachedMatchesFresh(t *testing.T) {
	sizes := []int{512}
	const ts = 128
	fresh, err := ConvSweepOpts(hw.SummitNode, 1, 1, sizes, ts, "", SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cache := planpkg.NewCache(nil)
	first, err := ConvSweepCached(hw.SummitNode, 1, 1, sizes, ts, "", SchedOpts{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ConvSweepCached(hw.SummitNode, 1, 1, sizes, ts, "", SchedOpts{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if first[i] != fresh[i] || second[i] != fresh[i] {
			t.Fatalf("row %d diverged: fresh=%+v first=%+v second=%+v", i, fresh[i], first[i], second[i])
		}
	}
	s := cache.Stats()
	if s.Hits+s.Misses+s.Invalidations != int64(2*len(fresh)) || s.Invalidations == 0 {
		t.Fatalf("sweep cache stats %+v for %d rows per pass", s, len(fresh))
	}
}
