package bench

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// TracePoint is one sample of a power or occupancy trace.
type TracePoint struct {
	T float64 // window start, seconds
	V float64 // watts (power trace) or busy fraction (occupancy trace)
}

// EnergyRun is the Fig 9/10 result for one configuration: the power and
// occupancy traces of device 0 plus the run's energy totals.
type EnergyRun struct {
	Label      string
	N          int
	Time       float64
	EnergyJ    float64
	GflopsPerW float64
	AvgPower   float64
	Power      []TracePoint
	Occupancy  []TracePoint
	// Res is the underlying factorization result, kept so callers can pull
	// the metrics registry or export a Chrome trace of the run.
	Res *cholesky.Result
}

// EnergyConfig selects what executes: a uniform FP64 baseline or one of the
// paper's applications under its required accuracy.
type EnergyConfig struct {
	Label string
	// App is nil for the FP64 baseline.
	App *App
	// OffDiag, when set with App nil and Label not FP64, builds a fixed
	// two-precision extreme (used by the Fig 9 occupancy panels).
	OffDiag prec.Precision
	Uniform bool
	// Audit turns on the runtime's invariant auditor for the run.
	Audit bool
}

// EnergySweepConfigs returns Fig 10's per-GPU comparisons: FP64 vs the
// adaptive MP approach for each application.
func EnergySweepConfigs() []EnergyConfig {
	apps := Apps()
	out := []EnergyConfig{{Label: "FP64", OffDiag: prec.FP64, Uniform: true}}
	for i := range apps {
		out = append(out, EnergyConfig{Label: "MP " + apps[i].Name, App: &apps[i]})
	}
	return out
}

// OccupancyConfigs returns Fig 9's four panels: FP64, FP32,
// FP64/FP16_32 and FP64/FP16 (all STC).
func OccupancyConfigs() []EnergyConfig {
	return []EnergyConfig{
		{Label: "FP64", OffDiag: prec.FP64, Uniform: true},
		{Label: "FP32", OffDiag: prec.FP32, Uniform: true},
		{Label: "FP64/FP16_32", OffDiag: prec.FP16x32},
		{Label: "FP64/FP16", OffDiag: prec.FP16},
	}
}

// EnergyRunOne executes one traced single-GPU factorization and bins its
// power and occupancy traces into `bins` windows.
func EnergyRunOne(node *hw.NodeSpec, cfg EnergyConfig, n, ts, bins int, seed uint64) (*EnergyRun, error) {
	plat, err := runtime.NewPlatform(node, 1, 1)
	if err != nil {
		return nil, err
	}
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	var km [][]prec.Precision
	switch {
	case cfg.App != nil:
		rng := stats.NewRNG(seed, 0)
		locs := geo.GenerateLocations(n, cfg.App.Kernel.Dim(), rng)
		normFn, global := precmap.EstimateTileNorms(locs, desc, cfg.App.Kernel, cfg.App.Theta, cfg.App.Nugget, 128, rng)
		km = precmap.NewKernelMap(desc.NT, normFn, global, cfg.App.UReq, prec.CholeskySet)
	case cfg.Uniform:
		km = precmap.UniformAll(desc.NT, cfg.OffDiag)
	default:
		km = precmap.Uniform(desc.NT, cfg.OffDiag)
	}
	ureq := 1e-2
	if cfg.App != nil {
		ureq = cfg.App.UReq
	}
	maps := precmap.New(km, ureq)
	res, err := cholesky.Run(cholesky.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto, Trace: true, Audit: cfg.Audit,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: energy run %s n=%d: %w", cfg.Label, n, err)
	}
	busy, xfer := res.DeviceTrace(0)
	run := &EnergyRun{
		Label:      cfg.Label,
		N:          n,
		Time:       res.Stats.Makespan,
		EnergyJ:    res.Stats.Energy,
		AvgPower:   res.Stats.AvgPower,
		GflopsPerW: res.Stats.TotalFlops / 1e9 / res.Stats.Energy,
		Res:        res,
	}
	run.Power = binPower(busy, xfer, node.GPU.IdleW, res.Stats.Makespan, bins)
	run.Occupancy = binOccupancy(busy, res.Stats.Makespan, bins)
	return run, nil
}

// binPower integrates the traced intervals into average watts per window:
// idle draw plus the dynamic power of compute and transfer activity.
func binPower(busy, xfer []runtime.Interval, idleW, makespan float64, bins int) []TracePoint {
	if bins <= 0 || makespan <= 0 {
		return nil
	}
	dt := makespan / float64(bins)
	acc := make([]float64, bins)
	addIntervals := func(ivs []runtime.Interval) {
		for _, iv := range ivs {
			lo := int(iv.Start / dt)
			hi := int(iv.End / dt)
			for b := lo; b <= hi && b < bins; b++ {
				s, e := float64(b)*dt, float64(b+1)*dt
				if iv.Start > s {
					s = iv.Start
				}
				if iv.End < e {
					e = iv.End
				}
				if e > s {
					acc[b] += iv.Power * (e - s)
				}
			}
		}
	}
	addIntervals(busy)
	addIntervals(xfer)
	out := make([]TracePoint, bins)
	for b := range out {
		out[b] = TracePoint{T: float64(b) * dt, V: idleW + acc[b]/dt}
	}
	return out
}

// binOccupancy returns the compute-stream busy fraction per window
// (Fig 9's occupancy trace).
func binOccupancy(busy []runtime.Interval, makespan float64, bins int) []TracePoint {
	if bins <= 0 || makespan <= 0 {
		return nil
	}
	dt := makespan / float64(bins)
	acc := make([]float64, bins)
	for _, iv := range busy {
		lo := int(iv.Start / dt)
		hi := int(iv.End / dt)
		for b := lo; b <= hi && b < bins; b++ {
			s, e := float64(b)*dt, float64(b+1)*dt
			if iv.Start > s {
				s = iv.Start
			}
			if iv.End < e {
				e = iv.End
			}
			if e > s {
				acc[b] += e - s
			}
		}
	}
	out := make([]TracePoint, bins)
	for b := range out {
		v := acc[b] / dt
		if v > 1 {
			v = 1
		}
		out[b] = TracePoint{T: float64(b) * dt, V: v}
	}
	return out
}
