package bench

import (
	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/stats"
	"geompc/internal/tile"
	"geompc/internal/tlr"
)

// TLRReport summarizes the future-work study (§VIII): how much storage tile
// low-rank compression adds on top of mixed-precision storage for one
// application's covariance.
type TLRReport struct {
	App       string
	N, TS, NT int
	Tol       float64
	// MeanRank and MaxRank over the compressed off-diagonal tiles.
	MeanRank float64
	MaxRank  int
	// Storage footprints in bytes: dense FP64, mixed-precision storage
	// (§V's FP64/FP32 rule), and MP+TLR (low-rank factors stored at each
	// tile's storage precision; diagonal tiles stay dense FP64).
	DenseFP64, MPDense, MPTLR int64
}

// TLRAnalysis compresses every off-diagonal tile of the application's
// covariance with ACA at tolerance tol and combines the measured ranks with
// the §V storage-precision map.
func TLRAnalysis(app App, n, ts int, tol float64, seed uint64) (*TLRReport, error) {
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, 0)
	locs := geo.GenerateLocations(n, app.Kernel.Dim(), rng)

	normFn, global := precmap.EstimateTileNorms(locs, desc, app.Kernel, app.Theta, app.Nugget, 128, rng)
	km := precmap.NewKernelMap(desc.NT, normFn, global, app.UReq, prec.CholeskySet)
	maps := precmap.New(km, app.UReq)

	rep := &TLRReport{App: app.Name, N: n, TS: ts, NT: desc.NT, Tol: tol}
	buf := make([]float64, ts*ts)
	tiles := 0
	for i := 0; i < desc.NT; i++ {
		for j := 0; j <= i; j++ {
			m, nn := desc.TileDim(i), desc.TileDim(j)
			elems := int64(m) * int64(nn)
			rep.DenseFP64 += elems * 8
			sp := maps.Storage[i][j]
			rep.MPDense += elems * int64(sp.InputBytes())
			if i == j {
				rep.MPTLR += elems * 8 // diagonal stays dense FP64
				continue
			}
			geo.CovTile(locs, i*ts, j*ts, m, nn, app.Kernel, app.Theta, app.Nugget, buf, nn)
			lr := tlr.Compress(buf[:m*nn], m, nn, tol, 0)
			tiles++
			rep.MeanRank += float64(lr.Rank)
			if lr.Rank > rep.MaxRank {
				rep.MaxRank = lr.Rank
			}
			lrBytes := lr.Bytes(sp.InputBytes())
			if lrBytes > elems*int64(sp.InputBytes()) {
				lrBytes = elems * int64(sp.InputBytes()) // keep dense if cheaper
			}
			rep.MPTLR += lrBytes
		}
	}
	if tiles > 0 {
		rep.MeanRank /= float64(tiles)
	}
	return rep, nil
}
