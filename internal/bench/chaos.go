package bench

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// ChaosRow is one line of the resilience ablation: a precision
// configuration run fault-free and again under an identical fault plan,
// with the recovery's time and energy cost made explicit. Comparing the
// overhead columns across configurations answers whether mixed precision
// changes a run's exposure to failures (less data to re-stage, shorter
// replays) or merely shrinks the fault-free baseline.
type ChaosRow struct {
	Config   string
	Scenario string // "fault-free" or "chaos"
	Time     float64
	Energy   float64
	// TimeOverheadPct/EnergyOverheadPct compare a chaos run to its own
	// fault-free baseline; zero on baseline rows.
	TimeOverheadPct   float64
	EnergyOverheadPct float64
	DeviceFailures    int
	ReplayedTasks     int
	RetriedTasks      int
}

// defaultChaosPlan derives a deterministic fault plan scaled to a run's
// fault-free makespan: one device failure mid-run, one transient fault and
// one slow host-link window early on. Scaling by the baseline keeps the
// *relative* injection points identical across configurations whose
// absolute runtimes differ (an FP64 run is much longer than an FP16 one).
func defaultChaosPlan(gpus int, makespan float64) runtime.FaultPlan {
	return runtime.FaultPlan{
		{Kind: runtime.FaultTransient, Device: 0, At: 0.25 * makespan, Backoff: 0.01 * makespan},
		{Kind: runtime.FaultSlow, Device: 0, From: 0.6 * makespan, To: 0.8 * makespan, Factor: 4},
		{Kind: runtime.FaultKill, Device: gpus - 1, At: 0.5 * makespan},
	}
}

// ChaosAblation runs the Fig 8 precision configurations on a single node
// with `gpus` GPUs, fault-free and under a fault plan, in phantom mode.
// When spec is empty each configuration gets defaultChaosPlan scaled to its
// own baseline; otherwise spec is parsed by runtime.ParseFaultSpec and
// applied verbatim (absolute virtual times) to every configuration.
func ChaosAblation(node *hw.NodeSpec, gpus, n, ts int, spec string) ([]ChaosRow, error) {
	return ChaosAblationOpts(node, gpus, n, ts, spec, SweepOpts{})
}

// ChaosAblationOpts is ChaosAblation routed through the sweep executor:
// one grid point per precision configuration, each producing its
// fault-free baseline row and its chaos row (the chaos run depends on the
// baseline's makespan, so the pair stays inside one point).
func ChaosAblationOpts(node *hw.NodeSpec, gpus, n, ts int, spec string, so SweepOpts) ([]ChaosRow, error) {
	if gpus < 2 {
		return nil, fmt.Errorf("bench: chaos ablation needs at least 2 GPUs for failover, got %d", gpus)
	}
	plat, err := runtime.NewPlatform(node, 1, gpus)
	if err != nil {
		return nil, err
	}
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	var fixed runtime.FaultPlan
	if spec != "" {
		fixed, err = runtime.ParseFaultSpec(spec, plat.NumDevices())
		if err != nil {
			return nil, err
		}
	}
	cfgs := ConvConfigs()
	pairs, err := sweep.Run(len(cfgs), so.sweepOptions(), func(i int, ctx *sweep.Context) ([2]ChaosRow, error) {
		cfg := cfgs[i]
		maps := precmap.New(cfg.KernelMap(desc.NT), 1e-2)
		base, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
			EngineWorkers: so.EnginePerPoint(len(cfgs)),
		})
		if err != nil {
			return [2]ChaosRow{}, fmt.Errorf("bench: chaos baseline %s: %w", cfg.Name, err)
		}
		ctx.Reg.Merge(base.Metrics())
		plan := fixed
		if plan == nil {
			plan = defaultChaosPlan(gpus, base.Stats.Makespan)
		}
		chaos, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
			Faults: plan, Audit: true,
			EngineWorkers: so.EnginePerPoint(len(cfgs)),
		})
		if err != nil {
			return [2]ChaosRow{}, fmt.Errorf("bench: chaos run %s: %w", cfg.Name, err)
		}
		ctx.Reg.Merge(chaos.Metrics())
		bt, be := base.Stats.Makespan, base.Stats.Energy
		ct, ce := chaos.Stats.Makespan, chaos.Stats.Energy
		return [2]ChaosRow{
			{Config: cfg.Name, Scenario: "fault-free", Time: bt, Energy: be},
			{
				Config: cfg.Name, Scenario: "chaos", Time: ct, Energy: ce,
				TimeOverheadPct:   100 * (ct - bt) / bt,
				EnergyOverheadPct: 100 * (ce - be) / be,
				DeviceFailures:    chaos.Stats.DeviceFailures,
				ReplayedTasks:     chaos.Stats.ReplayedTasks,
				RetriedTasks:      chaos.Stats.RetriedTasks,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosRow, 0, 2*len(pairs))
	for _, p := range pairs {
		rows = append(rows, p[0], p[1])
	}
	return rows, nil
}
