package bench

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/comm"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/tile"
)

// SchedOpts names a scheduling policy and broadcast topology by their CLI
// spellings. The zero value is the engine's historical behavior
// (FIFO + binomial).
type SchedOpts struct {
	Policy string // sched.ByName: "", "fifo", "locality", "cp"
	Bcast  string // comm.TopologyByName: "", "binomial", "flat", "chain"
}

// Resolve turns the names into the policy/topology pair (erroring on
// unknown names before any benchmark time is spent).
func (o SchedOpts) Resolve() (sched.Policy, comm.Topology, error) {
	pol, err := sched.ByName(o.Policy)
	if err != nil {
		return nil, nil, err
	}
	topo, err := comm.TopologyByName(o.Bcast)
	if err != nil {
		return nil, nil, err
	}
	return pol, topo, nil
}

// SchedRow is one line of the scheduler ablation: the same workload under a
// different scheduling policy.
type SchedRow struct {
	Policy   string
	N        int
	Time     float64
	Tflops   float64
	Energy   float64
	BytesH2D int64 // host-to-device staging traffic — what Locality cuts
	BytesNet int64
}

// SchedAblation runs the Fig 11 multi-GPU workload (mixed-precision
// FP64/FP16_32 Auto on a full node) under every built-in scheduling policy,
// in phantom mode. The interesting column is BytesH2D: Locality re-places
// consumers onto the device already holding their tiles, so its staging
// traffic must come in strictly below FIFO's.
func SchedAblation(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int) ([]SchedRow, error) {
	plat, err := runtime.NewPlatform(node, ranks, gpusPerRank)
	if err != nil {
		return nil, err
	}
	var rows []SchedRow
	for _, pol := range sched.Policies() {
		for _, n := range sizes {
			pg, qg := tile.SquarestGrid(plat.Ranks)
			desc, err := tile.NewDesc(n, ts, pg, qg)
			if err != nil {
				return nil, err
			}
			maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16x32), 1e-2)
			res, err := cholesky.Run(cholesky.Config{
				Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
				Sched: pol,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sched %s n=%d: %w", pol.Name(), n, err)
			}
			rows = append(rows, SchedRow{
				Policy:   pol.Name(),
				N:        n,
				Time:     res.Stats.Makespan,
				Tflops:   res.Stats.Flops / 1e12,
				Energy:   res.Stats.Energy,
				BytesH2D: res.Stats.BytesH2D,
				BytesNet: res.Stats.BytesNet,
			})
		}
	}
	return rows, nil
}

// BcastRow is one line of the broadcast-topology ablation.
type BcastRow struct {
	Topology string
	N        int
	Time     float64
	Energy   float64
	BytesNet int64
}

// BcastAblation runs a multi-rank mixed-precision factorization under every
// built-in broadcast topology, in phantom mode. Bytes on the wire are
// identical by construction; what moves is when receivers get the panel —
// the makespan column shows the cost of each shape.
func BcastAblation(node *hw.NodeSpec, ranks int, sizes []int, ts int) ([]BcastRow, error) {
	plat, err := runtime.NewPlatform(node, ranks, 0)
	if err != nil {
		return nil, err
	}
	var rows []BcastRow
	for _, topo := range comm.Topologies() {
		for _, n := range sizes {
			pg, qg := tile.SquarestGrid(plat.Ranks)
			desc, err := tile.NewDesc(n, ts, pg, qg)
			if err != nil {
				return nil, err
			}
			maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16x32), 1e-2)
			res, err := cholesky.Run(cholesky.Config{
				Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
				Bcast: topo,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: bcast %s n=%d: %w", topo.Name(), n, err)
			}
			rows = append(rows, BcastRow{
				Topology: topo.Name(),
				N:        n,
				Time:     res.Stats.Makespan,
				Energy:   res.Stats.Energy,
				BytesNet: res.Stats.BytesNet,
			})
		}
	}
	return rows, nil
}
