package bench

import (
	"fmt"
	gort "runtime"

	"geompc/internal/cholesky"
	"geompc/internal/comm"
	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// SweepOpts configures how a sweep family executes its grid. The zero
// value is the historical behavior: serial, no metrics. Workers > 0 fans
// the grid over the deterministic sweep executor (internal/sweep) — rows
// stay bit-identical to a serial sweep at any worker count; only the
// wall-clock sweep/* gauges vary.
type SweepOpts struct {
	// Workers is the executor pool size: 0 = serial, n > 0 = n workers,
	// negative = GOMAXPROCS.
	Workers int
	// EngineWorkers selects each grid point's engine mode
	// (cholesky.Config.EngineWorkers): 0 = the serial event loop, n > 0 =
	// the conservative parallel DES engine with n rank loops, -1 = auto.
	// Every setting produces bit-identical rows; the knob only changes
	// wall-clock time. Auto composes the two pools under one core budget —
	// see EnginePerPoint.
	EngineWorkers int
	// Metrics, when non-nil, receives every run's engine metrics merged in
	// grid order plus the sweep/* throughput gauges.
	Metrics *obs.Registry
	// Summary, when non-nil, is filled with the sweep's throughput report.
	Summary *sweep.Summary
}

// EnginePerPoint resolves EngineWorkers for a sweep over gridSize points.
// Explicit settings (0 or positive) pass through; auto (-1) divides the
// machine between the two levels of parallelism so a parallel sweep of
// parallel engines never oversubscribes: each point's engine gets
// GOMAXPROCS divided by the sweep pool size, floored at 1.
func (o SweepOpts) EnginePerPoint(gridSize int) int {
	if o.EngineWorkers >= 0 {
		return o.EngineWorkers
	}
	pool := o.Workers
	if pool < 0 {
		pool = gort.GOMAXPROCS(0)
	}
	if pool > gridSize {
		pool = gridSize
	}
	if pool <= 0 {
		pool = 1
	}
	per := gort.GOMAXPROCS(0) / pool
	if per < 1 {
		per = 1
	}
	return per
}

// sweepOptions translates the bench-level knobs into executor options.
func (o SweepOpts) sweepOptions() sweep.Options {
	return sweep.Options{Workers: o.Workers, Registry: o.Metrics, Summary: o.Summary}
}

// SchedOpts names a scheduling policy and broadcast topology by their CLI
// spellings, plus the sweep-execution knobs. The zero value is the
// engine's historical behavior (FIFO + binomial, serial sweep).
type SchedOpts struct {
	Policy string // sched.ByName: "", "fifo", "locality", "cp"
	Bcast  string // comm.TopologyByName: "", "binomial", "flat", "chain"
	// Solver is the backend the sweep routes solves through (solver.ByName
	// spelling; "" = "direct"). Families that are intrinsically
	// factorization-shaped ignore it.
	Solver string
	SweepOpts
}

// Resolve turns the names into the policy/topology pair (erroring on
// unknown names before any benchmark time is spent).
func (o SchedOpts) Resolve() (sched.Policy, comm.Topology, error) {
	pol, err := sched.ByName(o.Policy)
	if err != nil {
		return nil, nil, err
	}
	topo, err := comm.TopologyByName(o.Bcast)
	if err != nil {
		return nil, nil, err
	}
	return pol, topo, nil
}

// SchedRow is one line of the scheduler ablation: the same workload under a
// different scheduling policy.
type SchedRow struct {
	Policy   string
	N        int
	Time     float64
	Tflops   float64
	Energy   float64
	BytesH2D int64 // host-to-device staging traffic — what Locality cuts
	BytesNet int64
}

// SchedAblation runs the Fig 11 multi-GPU workload (mixed-precision
// FP64/FP16_32 Auto on a full node) under every built-in scheduling policy,
// in phantom mode. The interesting column is BytesH2D: Locality re-places
// consumers onto the device already holding their tiles, so its staging
// traffic must come in strictly below FIFO's.
func SchedAblation(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int) ([]SchedRow, error) {
	return SchedAblationOpts(node, ranks, gpusPerRank, sizes, ts, SweepOpts{})
}

// SchedAblationOpts is SchedAblation routed through the sweep executor
// with the given execution knobs (zero value = serial, bit-identical).
func SchedAblationOpts(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, so SweepOpts) ([]SchedRow, error) {
	plat, err := runtime.NewPlatform(node, ranks, gpusPerRank)
	if err != nil {
		return nil, err
	}
	type point struct {
		pol sched.Policy
		n   int
	}
	var pts []point
	for _, pol := range sched.Policies() {
		for _, n := range sizes {
			pts = append(pts, point{pol: pol, n: n})
		}
	}
	return sweep.Run(len(pts), so.sweepOptions(), func(i int, ctx *sweep.Context) (SchedRow, error) {
		p := pts[i]
		pg, qg := tile.SquarestGrid(plat.Ranks)
		desc, err := tile.NewDesc(p.n, ts, pg, qg)
		if err != nil {
			return SchedRow{}, err
		}
		maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16x32), 1e-2)
		res, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
			Sched: p.pol, EngineWorkers: so.EnginePerPoint(len(pts)),
		})
		if err != nil {
			return SchedRow{}, fmt.Errorf("bench: sched %s n=%d: %w", p.pol.Name(), p.n, err)
		}
		ctx.Reg.Merge(res.Metrics())
		return SchedRow{
			Policy:   p.pol.Name(),
			N:        p.n,
			Time:     res.Stats.Makespan,
			Tflops:   res.Stats.Flops / 1e12,
			Energy:   res.Stats.Energy,
			BytesH2D: res.Stats.BytesH2D,
			BytesNet: res.Stats.BytesNet,
		}, nil
	})
}

// BcastRow is one line of the broadcast-topology ablation.
type BcastRow struct {
	Topology string
	N        int
	Time     float64
	Energy   float64
	BytesNet int64
}

// BcastAblation runs a multi-rank mixed-precision factorization under every
// built-in broadcast topology, in phantom mode. Bytes on the wire are
// identical by construction; what moves is when receivers get the panel —
// the makespan column shows the cost of each shape.
func BcastAblation(node *hw.NodeSpec, ranks int, sizes []int, ts int) ([]BcastRow, error) {
	return BcastAblationOpts(node, ranks, sizes, ts, SweepOpts{})
}

// BcastAblationOpts is BcastAblation routed through the sweep executor
// with the given execution knobs (zero value = serial, bit-identical).
func BcastAblationOpts(node *hw.NodeSpec, ranks int, sizes []int, ts int, so SweepOpts) ([]BcastRow, error) {
	plat, err := runtime.NewPlatform(node, ranks, 0)
	if err != nil {
		return nil, err
	}
	type point struct {
		topo comm.Topology
		n    int
	}
	var pts []point
	for _, topo := range comm.Topologies() {
		for _, n := range sizes {
			pts = append(pts, point{topo: topo, n: n})
		}
	}
	return sweep.Run(len(pts), so.sweepOptions(), func(i int, ctx *sweep.Context) (BcastRow, error) {
		p := pts[i]
		pg, qg := tile.SquarestGrid(plat.Ranks)
		desc, err := tile.NewDesc(p.n, ts, pg, qg)
		if err != nil {
			return BcastRow{}, err
		}
		maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16x32), 1e-2)
		res, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
			Bcast: p.topo, EngineWorkers: so.EnginePerPoint(len(pts)),
		})
		if err != nil {
			return BcastRow{}, fmt.Errorf("bench: bcast %s n=%d: %w", p.topo.Name(), p.n, err)
		}
		ctx.Reg.Merge(res.Metrics())
		return BcastRow{
			Topology: p.topo.Name(),
			N:        p.n,
			Time:     res.Stats.Makespan,
			Energy:   res.Stats.Energy,
			BytesNet: res.Stats.BytesNet,
		}, nil
	})
}
