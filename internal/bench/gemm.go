package bench

import (
	"geompc/internal/hw"
	"geompc/internal/linalg"
	"geompc/internal/prec"
	"geompc/internal/stats"
)

// GemmAccRow is one point of Fig 1's accuracy panels: the relative
// Frobenius error of a reduced-precision GEMM against the FP64 result,
// from real emulated arithmetic.
type GemmAccRow struct {
	N    int
	Prec prec.Precision
	Err  float64
}

// GemmAccuracy runs the Fig 1 accuracy study: square GEMMs on random data
// in every supported precision, measured against FP64. This is real
// computation (software-emulated formats), so errors carry the true
// rounding behaviour, independent of any GPU model.
func GemmAccuracy(sizes []int, seed uint64) []GemmAccRow {
	var out []GemmAccRow
	rng := stats.NewRNG(seed, 0)
	for _, n := range sizes {
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64()*2 - 1
			b[i] = rng.Float64()*2 - 1
		}
		ref := make([]float64, n*n)
		linalg.GemmNT(n, n, n, 1, a, n, b, n, 0, ref, n)
		for _, p := range []prec.Precision{prec.FP32, prec.TF32, prec.BF16x32, prec.FP16x32, prec.FP16} {
			c := make([]float64, n*n)
			linalg.GemmNTPrec(p, n, n, n, 1, a, n, b, n, 0, c, n)
			out = append(out, GemmAccRow{N: n, Prec: p, Err: linalg.RelFrobeniusError(c, ref)})
		}
	}
	return out
}

// GemmPerfRow is one point of Fig 1's performance panels: modeled sustained
// GEMM throughput (datatype conversion included, host transfers excluded,
// matching the figure's methodology).
type GemmPerfRow struct {
	GPU     string
	N       int
	Prec    prec.Precision
	Tflops  float64
	PeakPct float64
}

// GemmPerformance evaluates the device model's GEMM throughput per
// precision — including the input datatype-conversion overhead the paper
// accounts for in FP16_32/BF16_32/FP16 (inputs arrive in FP32).
func GemmPerformance(gpus []*hw.GPUSpec, sizes []int) []GemmPerfRow {
	var out []GemmPerfRow
	for _, g := range gpus {
		for _, n := range sizes {
			flops := 2 * float64(n) * float64(n) * float64(n)
			for _, p := range prec.All {
				if !g.Supports(p) {
					continue
				}
				t := g.KernelTime(hw.KindGemm, p, flops)
				if p.InputBytes() < 4 {
					// A and B converted from FP32 storage on device.
					t += 2 * g.ConvertTime(n*n, prec.FP32, p)
				}
				tf := flops / t / 1e12
				out = append(out, GemmPerfRow{
					GPU: g.Name, N: n, Prec: p,
					Tflops:  tf,
					PeakPct: 100 * tf * 1e12 / g.SupportedPeak(p),
				})
			}
		}
	}
	return out
}

// Table1 returns the peak-performance table (Table I) from the device
// specs, in Tflop/s.
func Table1() *Table {
	t := NewTable("Table I: peak performance of Nvidia GPUs (Tflop/s)",
		"Precision", "V100 (NVLink)", "A100 (SXM)", "H100 (PCIe)")
	cell := func(g *hw.GPUSpec, p prec.Precision) string {
		if !g.Supports(p) {
			return "-"
		}
		return formatFloat(g.Peak[p] / 1e12)
	}
	tensor64 := func(g *hw.GPUSpec) string {
		if g.Peak[prec.FP64] == g.FP64NonTensor {
			return "-"
		}
		return formatFloat(g.Peak[prec.FP64] / 1e12)
	}
	gpus := []*hw.GPUSpec{hw.V100, hw.A100, hw.H100}
	add := func(label string, f func(g *hw.GPUSpec) string) {
		t.Add(label, f(gpus[0]), f(gpus[1]), f(gpus[2]))
	}
	add("FP64", func(g *hw.GPUSpec) string { return formatFloat(g.FP64NonTensor / 1e12) })
	add("FP64 Tensor", tensor64)
	add("FP32", func(g *hw.GPUSpec) string { return cell(g, prec.FP32) })
	add("TF32 Tensor", func(g *hw.GPUSpec) string { return cell(g, prec.TF32) })
	add("FP16 Tensor", func(g *hw.GPUSpec) string { return cell(g, prec.FP16) })
	add("BF16 Tensor", func(g *hw.GPUSpec) string { return cell(g, prec.BF16x32) })
	return t
}

// Table2Row is one row of Table II: milliseconds to move one tile/matrix to
// a V100 or to execute a GEMM on it, per precision.
type Table2Row struct {
	Label  string
	TimeMs []float64
}

// Table2 regenerates Table II from the V100 model for the paper's sizes.
func Table2(sizes []int) []Table2Row {
	move := func(p prec.Precision) Table2Row {
		r := Table2Row{Label: "Move one tile/matrix in " + p.String()}
		for _, n := range sizes {
			bytes := int64(n) * int64(n) * int64(p.InputBytes())
			r.TimeMs = append(r.TimeMs, hw.V100.H2DTime(bytes)*1e3)
		}
		return r
	}
	exec := func(p prec.Precision) Table2Row {
		r := Table2Row{Label: "Execute GEMM in " + p.String()}
		for _, n := range sizes {
			flops := 2 * float64(n) * float64(n) * float64(n)
			r.TimeMs = append(r.TimeMs, hw.V100.KernelTime(hw.KindGemm, p, flops)*1e3)
		}
		return r
	}
	return []Table2Row{
		move(prec.FP64), move(prec.FP32), move(prec.FP16),
		exec(prec.FP64), exec(prec.FP32), exec(prec.FP16),
	}
}
