package bench

// The DESParallel pair measures the conservative parallel DES engine
// against the serial event loop on one multi-rank phantom factorization
// (N=196608, NT=96, 4 ranks × 2 GPUs — a Fig 12-scale shape; set
// GEOMPC_BENCH_FULL for the paper's strong-scaling N=798720, minutes per
// run). Schedules are bit-identical by contract — the pair's digest
// cross-check enforces it — so the only difference is wall-clock time.
// Run with -cpu 4 (see the Makefile bench target); on a single-core host
// the rank loops cannot overlap and the pair simply documents the
// coordinator's overhead.

import (
	"os"
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

func desParallelRun(b *testing.B, workers int) {
	n, ts, ranks := 196608, 2048, 4
	if os.Getenv("GEOMPC_BENCH_FULL") != "" {
		n = 798720
	}
	plat, err := runtime.NewPlatform(hw.SummitNode, ranks, 2)
	if err != nil {
		b.Fatal(err)
	}
	pg, qg := tile.SquarestGrid(ranks)
	desc, err := tile.NewDesc(n, ts, pg, qg)
	if err != nil {
		b.Fatal(err)
	}
	maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16x32), 1e-2)
	cfg := cholesky.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
		EngineWorkers: workers,
	}
	var digest uint64
	var tasks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cholesky.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if digest == 0 {
			digest, tasks = res.Digest(), res.Stats.Tasks
		} else if res.Digest() != digest {
			b.Fatalf("digest %#016x differs from first run's %#016x", res.Digest(), digest)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(tasks*b.N)/sec, "tasks/s")
	}
}

func BenchmarkDESParallelSerial(b *testing.B) { desParallelRun(b, 0) }

func BenchmarkDESParallelW4(b *testing.B) { desParallelRun(b, 4) }
