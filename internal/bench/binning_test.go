package bench

import (
	"math"
	"testing"

	"geompc/internal/runtime"
)

func TestBinPowerConservesEnergy(t *testing.T) {
	// Integrating the binned power over the makespan must reproduce the
	// intervals' energy plus the idle floor.
	busy := []runtime.Interval{
		{Start: 0, End: 1, Power: 100},
		{Start: 2, End: 4, Power: 50},
	}
	xfer := []runtime.Interval{{Start: 0.5, End: 1.5, Power: 20}}
	const idle, makespan = 40.0, 5.0
	for _, bins := range []int{5, 50, 333} {
		pts := binPower(busy, xfer, idle, makespan, bins)
		if len(pts) != bins {
			t.Fatalf("got %d bins", len(pts))
		}
		dt := makespan / float64(bins)
		var energy float64
		for _, p := range pts {
			energy += p.V * dt
		}
		want := idle*makespan + 100*1 + 50*2 + 20*1
		if math.Abs(energy-want) > 1e-9*want {
			t.Errorf("bins=%d: integrated %g J, want %g", bins, energy, want)
		}
	}
}

func TestBinPowerEmptyInputs(t *testing.T) {
	if pts := binPower(nil, nil, 50, 0, 10); pts != nil {
		t.Error("zero makespan should yield nil")
	}
	if pts := binPower(nil, nil, 50, 1, 0); pts != nil {
		t.Error("zero bins should yield nil")
	}
	pts := binPower(nil, nil, 50, 2, 4)
	for _, p := range pts {
		if p.V != 50 {
			t.Errorf("idle-only trace shows %g W, want 50", p.V)
		}
	}
}

func TestBinOccupancyConservesBusyTime(t *testing.T) {
	busy := []runtime.Interval{
		{Start: 0.25, End: 1.25},
		{Start: 3, End: 3.5},
	}
	const makespan = 4.0
	pts := binOccupancy(busy, makespan, 16)
	dt := makespan / 16
	var total float64
	for _, p := range pts {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("occupancy %g outside [0,1]", p.V)
		}
		total += p.V * dt
	}
	if math.Abs(total-1.5) > 1e-9 {
		t.Errorf("integrated busy time %g, want 1.5", total)
	}
}

func TestBinOccupancyIntervalPastMakespan(t *testing.T) {
	// Intervals extending past the trace window must be clipped, not panic.
	busy := []runtime.Interval{{Start: 0.5, End: 99}}
	pts := binOccupancy(busy, 1.0, 4)
	if len(pts) != 4 {
		t.Fatal("bin count")
	}
	if pts[3].V != 1 {
		t.Errorf("last bin %g, want fully busy", pts[3].V)
	}
	if pts[0].V != 0 {
		t.Errorf("first bin %g, want idle", pts[0].V)
	}
}
