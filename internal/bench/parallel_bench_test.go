package bench

// The SweepParallel pair measures what the deterministic sweep executor
// buys on multi-core hosts: the same 12-point conversion-sweep grid
// (4 configs x strategies x 2 sizes, phantom NT=32/48) run serially and
// on a 4-worker pool. Run with -cpu 4 (see the Makefile bench target) —
// on a single-core host the pool cannot beat serial and the pair simply
// documents the executor's overhead.

import (
	"testing"

	"geompc/internal/hw"
)

func sweepParallelGrid(b *testing.B, workers int) {
	sizes := []int{65536, 98304}
	const ts = 2048
	so := SchedOpts{SweepOpts: SweepOpts{Workers: workers}}
	points := len(convGrid(sizes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := ConvSweepOpts(hw.SummitNode, 1, 2, sizes, ts, "", so)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != points {
			b.Fatalf("%d rows, want %d", len(rows), points)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(points*b.N)/sec, "points/sec")
	}
}

func BenchmarkSweepParallelSerial(b *testing.B) { sweepParallelGrid(b, 0) }

func BenchmarkSweepParallelW4(b *testing.B) { sweepParallelGrid(b, 4) }
