package bench

import (
	"math"
	"strings"
	"testing"

	"geompc/internal/hw"
	"geompc/internal/prec"
)

func TestGemmAccuracyShape(t *testing.T) {
	rows := GemmAccuracy([]int{32, 64}, 1)
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	byKey := map[[2]any]float64{}
	for _, r := range rows {
		byKey[[2]any{r.N, r.Prec}] = r.Err
	}
	for _, n := range []int{32, 64} {
		if !(byKey[[2]any{n, prec.FP32}] < byKey[[2]any{n, prec.FP16x32}]) {
			t.Errorf("n=%d: FP32 error not below FP16_32", n)
		}
		if !(byKey[[2]any{n, prec.FP16x32}] < byKey[[2]any{n, prec.FP16}]) {
			t.Errorf("n=%d: FP16_32 error not below FP16", n)
		}
	}
	// Error grows with k for FP16 accumulation.
	if !(byKey[[2]any{64, prec.FP16}] > byKey[[2]any{32, prec.FP16}]) {
		t.Error("FP16 error did not grow with size")
	}
}

func TestGemmPerformanceShape(t *testing.T) {
	rows := GemmPerformance([]*hw.GPUSpec{hw.V100, hw.A100, hw.H100}, []int{2048, 8192})
	perf := map[[3]any]float64{}
	for _, r := range rows {
		perf[[3]any{r.GPU, r.N, r.Prec}] = r.Tflops
		if r.PeakPct <= 0 || r.PeakPct > 100.01 {
			t.Errorf("%s %v n=%d: peak pct %g out of range", r.GPU, r.Prec, r.N, r.PeakPct)
		}
	}
	// FP16 faster than FP32 faster than (or equal on A100/H100) FP64.
	for _, g := range []string{"V100", "A100", "H100"} {
		if !(perf[[3]any{g, 8192, prec.FP16}] > perf[[3]any{g, 8192, prec.FP32}]) {
			t.Errorf("%s: FP16 not above FP32", g)
		}
	}
	// V100 must not report TF32/BF16 rows.
	for _, r := range rows {
		if r.GPU == "V100" && (r.Prec == prec.TF32 || r.Prec == prec.BF16x32) {
			t.Errorf("V100 reported unsupported precision %v", r.Prec)
		}
	}
	// Near-peak at large size (Fig 1's observation).
	if p := perf[[3]any{"V100", 8192, prec.FP64}]; p < 0.9*7.8 {
		t.Errorf("V100 FP64 at 8192: %g Tflop/s, want ≥ 90%% of 7.8", p)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 6 {
		t.Fatalf("Table I has %d rows", len(tb.Rows))
	}
	if tb.Rows[0][1] != "7.8" || tb.Rows[0][2] != "9.7" || tb.Rows[0][3] != "25.6" {
		t.Errorf("FP64 row wrong: %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "-" || tb.Rows[1][2] != "19.5" || tb.Rows[1][3] != "51.2" {
		t.Errorf("FP64 Tensor row wrong: %v", tb.Rows[1])
	}
	// V100 has no TF32/BF16.
	if tb.Rows[3][1] != "-" || tb.Rows[5][1] != "-" {
		t.Errorf("V100 TF32/BF16 should be '-': %v, %v", tb.Rows[3], tb.Rows[5])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2([]int{2048, 4096, 6144, 8192, 10240})
	want := map[string][]float64{
		"Move one tile/matrix in FP64": {0.67, 2.68, 6.04, 10.74, 16.78},
		"Move one tile/matrix in FP32": {0.34, 1.34, 3.02, 5.37, 8.39},
		"Move one tile/matrix in FP16": {0.17, 0.67, 1.51, 2.68, 4.19},
		"Execute GEMM in FP64":         {2.2, 17.62, 59.47, 140.96, 275.32},
		"Execute GEMM in FP32":         {1.09, 8.75, 29.54, 70.03, 136.78},
		"Execute GEMM in FP16":         {0.14, 1.1, 3.71, 8.8, 17.18},
	}
	for _, r := range rows {
		w, ok := want[r.Label]
		if !ok {
			t.Fatalf("unexpected row %q", r.Label)
		}
		for i, v := range r.TimeMs {
			if math.Abs(v-w[i])/w[i] > 0.12 {
				t.Errorf("%s[%d] = %.3f ms, paper %.2f ms", r.Label, i, v, w[i])
			}
		}
	}
}

func TestConvSweepShape(t *testing.T) {
	rows, err := ConvSweep(hw.SummitNode, 1, 1, []int{16384, 32768}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfg, strat string, n int) ConvRow {
		for _, r := range rows {
			if r.Config == cfg && r.Strategy == strat && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%s/%d missing", cfg, strat, n)
		return ConvRow{}
	}
	// STC ≥ TTC for the MP extremes.
	for _, cfg := range []string{"FP64/FP16_32", "FP64/FP16"} {
		for _, n := range []int{16384, 32768} {
			stc, ttc := get(cfg, "STC", n), get(cfg, "TTC", n)
			if stc.Tflops < ttc.Tflops {
				t.Errorf("%s n=%d: STC %g below TTC %g Tflop/s", cfg, n, stc.Tflops, ttc.Tflops)
			}
		}
	}
	// MP beats FP32 beats FP64 at the larger size.
	f64 := get("FP64", "STC", 32768)
	f32 := get("FP32", "STC", 32768)
	f16 := get("FP64/FP16", "STC", 32768)
	if !(f16.Tflops > f32.Tflops && f32.Tflops > f64.Tflops) {
		t.Errorf("precision ordering violated: FP64=%g FP32=%g FP64/FP16=%g",
			f64.Tflops, f32.Tflops, f16.Tflops)
	}
	// FP64 efficiency in the paper's band (84.2% on V100).
	if f64.PctPeak < 70 || f64.PctPeak > 100 {
		t.Errorf("FP64 efficiency %g%% outside plausible band", f64.PctPeak)
	}
}

func TestPrecisionMapFig7Shape(t *testing.T) {
	// Scaled-down Fig 7: 2D-sqexp must be cheapest (most half-precision
	// tiles), 3D-sqexp most expensive (most FP64/FP32 tiles).
	frac := map[string]map[prec.Precision]float64{}
	for _, app := range Apps() {
		res, err := PrecisionMap(app, 16384, 512, 96, 3)
		if err != nil {
			t.Fatal(err)
		}
		frac[app.Name] = res.Fractions
	}
	halfShare := func(name string) float64 {
		return frac[name][prec.FP16] + frac[name][prec.FP16x32]
	}
	highShare := func(name string) float64 {
		return frac[name][prec.FP64] + frac[name][prec.FP32]
	}
	if !(halfShare("2D-sqexp") > halfShare("3D-sqexp")) {
		t.Errorf("2D-sqexp half share %g not above 3D-sqexp %g",
			halfShare("2D-sqexp"), halfShare("3D-sqexp"))
	}
	if !(highShare("3D-sqexp") > highShare("2D-sqexp")) {
		t.Errorf("3D-sqexp high-precision share %g not above 2D-sqexp %g",
			highShare("3D-sqexp"), highShare("2D-sqexp"))
	}
}

func TestRenderMaps(t *testing.T) {
	res, err := PrecisionMap(Apps()[0], 2048, 256, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	km := RenderKernelMap(res.Maps)
	if !strings.Contains(km, "D") {
		t.Error("kernel map has no FP64 diagonal")
	}
	if lines := strings.Count(km, "\n"); lines != res.NT {
		t.Errorf("kernel map has %d lines, want %d", lines, res.NT)
	}
	cm := RenderCommMap(res.Maps)
	if len(cm) == 0 {
		t.Error("empty comm map")
	}
	sm := RenderStorageMap(res.Maps)
	if strings.Contains(sm, "H") || strings.Contains(sm, "h") {
		t.Error("storage map contains half-precision tiles (§V forbids)")
	}
}

func TestEnergyRun(t *testing.T) {
	run, err := EnergyRunOne(hw.SummitNode, EnergyConfig{Label: "FP64", OffDiag: prec.FP64, Uniform: true},
		16384, 2048, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.EnergyJ <= 0 || run.Time <= 0 || run.GflopsPerW <= 0 {
		t.Errorf("empty energy run: %+v", run)
	}
	if len(run.Power) != 50 || len(run.Occupancy) != 50 {
		t.Fatalf("trace bins: %d power, %d occupancy", len(run.Power), len(run.Occupancy))
	}
	for _, p := range run.Power {
		if p.V < hw.V100.IdleW-1e-9 || p.V > hw.V100.TDP+hw.V100.TransferW+1 {
			t.Errorf("power sample %g W outside [idle, TDP+transfer]", p.V)
		}
	}
	for _, o := range run.Occupancy {
		if o.V < 0 || o.V > 1 {
			t.Errorf("occupancy %g outside [0,1]", o.V)
		}
	}
	// Steady-state FP64 should draw near TDP (Fig 10's FP64 panels).
	mid := run.Power[len(run.Power)/2].V
	if mid < 0.8*hw.V100.TDP {
		t.Errorf("mid-run FP64 power %g W, want near TDP %g", mid, hw.V100.TDP)
	}
}

func TestEnergyMPSavesEnergy(t *testing.T) {
	fp64, err := EnergyRunOne(hw.SummitNode, EnergyConfig{Label: "FP64", OffDiag: prec.FP64, Uniform: true},
		16384, 2048, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	app := Apps()[0]
	mp, err := EnergyRunOne(hw.SummitNode, EnergyConfig{Label: "MP", App: &app}, 16384, 2048, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mp.EnergyJ >= fp64.EnergyJ {
		t.Errorf("MP energy %g J not below FP64 %g J", mp.EnergyJ, fp64.EnergyJ)
	}
	if mp.GflopsPerW <= fp64.GflopsPerW {
		t.Errorf("MP %g Gflops/W not above FP64 %g", mp.GflopsPerW, fp64.GflopsPerW)
	}
}

func TestScalingShapes(t *testing.T) {
	weak, err := WeakScaling([]int{1, 4}, 32768, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(weak) != 2 {
		t.Fatal("weak scaling row count")
	}
	// Near-linear: 4 nodes ≥ 2.8× the 1-node throughput.
	if weak[1].Tflops < 2.8*weak[0].Tflops {
		t.Errorf("weak scaling poor: %g -> %g Tflop/s", weak[0].Tflops, weak[1].Tflops)
	}
	strong, err := StrongScaling([]int{1, 4}, 65536, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if strong[1].Time >= strong[0].Time {
		t.Errorf("strong scaling: time did not drop (%g -> %g)", strong[0].Time, strong[1].Time)
	}
}

func TestMPEffect(t *testing.T) {
	rows, err := MPEffect(2, []int{32768}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]float64{}
	for _, r := range rows {
		sp[r.Config] = r.Speedup
	}
	if sp["FP64"] != 1 {
		t.Errorf("FP64 self-speedup %g", sp["FP64"])
	}
	if !(sp["2D-sqexp"] > 1) {
		t.Errorf("2D-sqexp speedup %g not above 1", sp["2D-sqexp"])
	}
	// 2D-sqexp (most low-precision tiles) beats 3D-sqexp (fewest).
	if !(sp["2D-sqexp"] > sp["3D-sqexp"]) {
		t.Errorf("2D-sqexp %g not above 3D-sqexp %g", sp["2D-sqexp"], sp["3D-sqexp"])
	}
}

func TestAccuracyStudySmall(t *testing.T) {
	res, err := AccuracyStudy(Fig5Cases()[0], []float64{0, 1e-9}, 3, 100, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 { // 2 levels × 2 params
		t.Fatalf("got %d results, want 4", len(res))
	}
	for _, r := range res {
		if r.Failed > 0 {
			t.Errorf("%s u=%g: %d failures", r.Case, r.UReq, r.Failed)
		}
		if r.Summary.N != 3 {
			t.Errorf("summary over %d estimates", r.Summary.N)
		}
	}
}

func TestAppsAndTables(t *testing.T) {
	if len(Apps()) != 3 {
		t.Fatal("expected 3 applications")
	}
	if _, ok := AppByName("2D-Matern"); !ok {
		t.Error("AppByName failed")
	}
	if _, ok := AppByName("nope"); ok {
		t.Error("AppByName matched nonsense")
	}
	var sb strings.Builder
	tb := NewTable("T", "a", "bb")
	tb.Add("x", 1.5)
	tb.Add("long-cell", 123456.0)
	tb.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "## T") || !strings.Contains(out, "long-cell") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
	if HumanBytes(3<<30) != "3.00 GiB" || HumanBytes(512) != "512 B" {
		t.Error("HumanBytes wrong")
	}
}

func TestAdaptiveVsBandedAblation(t *testing.T) {
	rows, err := AdaptiveVsBanded(Apps()[0], 32768, 2048, hw.SummitNode, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	adaptive, banded := rows[0], rows[1]
	// Same accuracy guarantee, but banding over-spends precision: it must
	// keep at least as many FP64 tiles and be no faster.
	if banded.FP64Share < adaptive.FP64Share {
		t.Errorf("banded FP64 share %g below adaptive %g", banded.FP64Share, adaptive.FP64Share)
	}
	if banded.Tflops > adaptive.Tflops*1.0001 {
		t.Errorf("banded (%g Tflop/s) outperformed adaptive (%g)", banded.Tflops, adaptive.Tflops)
	}
}

func TestLookaheadAblation(t *testing.T) {
	rows, err := LookaheadAblation(98304, 2048, hw.SummitNode, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Deeper pipelines must not slow the run; depth 2 should beat depth 1
	// on a transfer-bound configuration (double buffering).
	if rows[1].Time > rows[0].Time*1.0001 {
		t.Errorf("lookahead 2 (%g s) slower than 1 (%g s)", rows[1].Time, rows[0].Time)
	}
	if rows[2].Time > rows[1].Time*1.01 {
		t.Errorf("lookahead 4 (%g s) much slower than 2 (%g s)", rows[2].Time, rows[1].Time)
	}
}

func TestTLRAnalysis(t *testing.T) {
	rep, err := TLRAnalysis(Apps()[0], 4096, 512, 1e-4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MPDense >= rep.DenseFP64 {
		t.Errorf("MP storage %d not below dense FP64 %d", rep.MPDense, rep.DenseFP64)
	}
	if rep.MPTLR >= rep.MPDense {
		t.Errorf("MP+TLR %d not below MP dense %d", rep.MPTLR, rep.MPDense)
	}
	if rep.MeanRank <= 0 || rep.MaxRank >= 512 {
		t.Errorf("implausible ranks: mean %g max %d", rep.MeanRank, rep.MaxRank)
	}
}
