package bench

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// AblationRow compares design choices on one factorization.
type AblationRow struct {
	Variant  string
	Tflops   float64
	Time     float64
	BytesH2D int64
	// FP64Share is the fraction of tiles kept in FP64 (precision-spend).
	FP64Share float64
}

// AdaptiveVsBanded quantifies what the norm-adaptive precision map buys
// over the band-based assignment of the prior work ([12], [13]): both are
// evaluated at the same accuracy guarantee (the banded map's bands are the
// narrowest that dominate the adaptive map tile-wise), so any performance
// difference is pure precision-spend efficiency.
func AdaptiveVsBanded(app App, n, ts int, node *hw.NodeSpec, seed uint64) ([]AblationRow, error) {
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, 0)
	locs := geo.GenerateLocations(n, app.Kernel.Dim(), rng)
	normFn, global := precmap.EstimateTileNorms(locs, desc, app.Kernel, app.Theta, app.Nugget, 128, rng)
	adaptive := precmap.NewKernelMap(desc.NT, normFn, global, app.UReq, prec.CholeskySet)

	b64, b32 := precmap.MatchBandsToMap(adaptive)
	banded, err := precmap.BandedKernelMap(desc.NT, b64, b32, prec.FP16)
	if err != nil {
		return nil, err
	}

	plat, err := runtime.NewPlatform(node, 1, 1)
	if err != nil {
		return nil, err
	}
	run := func(name string, km [][]prec.Precision) (AblationRow, error) {
		maps := precmap.New(km, app.UReq)
		res, err := cholesky.Run(cholesky.Config{Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto})
		if err != nil {
			return AblationRow{}, fmt.Errorf("bench: ablation %s: %w", name, err)
		}
		counts := maps.Counts()
		total := desc.NT * (desc.NT + 1) / 2
		return AblationRow{
			Variant:   name,
			Tflops:    res.Stats.Flops / 1e12,
			Time:      res.Stats.Makespan,
			BytesH2D:  res.Stats.BytesH2D,
			FP64Share: float64(counts[prec.FP64]) / float64(total),
		}, nil
	}
	var rows []AblationRow
	a, err := run("adaptive (Higham-Mary)", adaptive)
	if err != nil {
		return nil, err
	}
	rows = append(rows, a)
	b, err := run(fmt.Sprintf("banded (b64=%d,b32=%d)", b64, b32), banded)
	if err != nil {
		return nil, err
	}
	rows = append(rows, b)
	return rows, nil
}

// LookaheadAblation measures how the engine's stream pipeline depth affects
// the makespan of a transfer-bound factorization — the double-buffering
// design choice called out in DESIGN.md.
func LookaheadAblation(n, ts int, node *hw.NodeSpec, depths []int) ([]AblationRow, error) {
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16), 1e-2)
	plat, err := runtime.NewPlatform(node, 1, 1)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, d := range depths {
		res, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto, Lookahead: d,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant:  fmt.Sprintf("lookahead=%d", d),
			Tflops:   res.Stats.Flops / 1e12,
			Time:     res.Stats.Makespan,
			BytesH2D: res.Stats.BytesH2D,
		})
	}
	return rows, nil
}
