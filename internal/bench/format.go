package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows for aligned text output — the format every cmd
// tool prints and EXPERIMENTS.md records.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v unless already strings.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return trimZeros(fmt.Sprintf("%.1f", v))
	default:
		return trimZeros(fmt.Sprintf("%.3f", v))
	}
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// HumanBytes renders a byte count as GiB/MiB.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
