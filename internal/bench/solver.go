package bench

import (
	"fmt"

	_ "geompc/internal/cg" // registers the "cg" backend; "direct" rides on
	// the package's ordinary cholesky import (conv.go)
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// SolverRow is one measurement of the solver-backend ablation: the same
// covariance problem shape run through one registered backend.
type SolverRow struct {
	Backend  string
	Strategy string
	N        int
	Time     float64
	Energy   float64
	Tflops   float64
	BytesH2D int64
	BytesNet int64
	// Iterations is the CG iteration count (0 for direct).
	Iterations int
	// Digest is the run's folded FNV-1a schedule digest — bit-identical
	// across sweep worker counts and engine modes.
	Digest uint64
}

// solverPoint is one cell of the ablation grid: backend × strategy × size.
type solverPoint struct {
	backend string
	strat   solver.Strategy
	n       int
}

func solverGrid(backends []string, sizes []int) []solverPoint {
	var pts []solverPoint
	for _, b := range backends {
		for _, s := range []solver.Strategy{solver.Auto, solver.ForceTTC} {
			for _, n := range sizes {
				pts = append(pts, solverPoint{backend: b, strat: s, n: n})
			}
		}
	}
	return pts
}

// SolverAblation compares the registered solve paths on one machine in
// phantom mode: every backend × {STC, TTC} × matrix size, the same
// FP64/FP16 precision map, routed through the deterministic sweep
// executor. The direct rows cost one O(n³) factorization; the cg rows
// cost the modeled iteration trajectory's O(n²)-per-iteration task graph
// — the honest comparison the paper's framing implies: iterative wins
// when few iterations suffice (well-conditioned Σ, loose tolerance) and
// loses its advantage as conditioning or accuracy demands grow.
func SolverAblation(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, so SchedOpts) ([]SolverRow, error) {
	return solverAblation(node, ranks, gpusPerRank, []string{"direct", "cg"}, sizes, ts, so)
}

// solverAblation is the backend-filtered core of SolverAblation; the
// benchmark series (SolverAblationDirect / SolverAblationCG) time one
// backend at a time through it.
func solverAblation(node *hw.NodeSpec, ranks, gpusPerRank int, backends []string, sizes []int, ts int, so SchedOpts) ([]SolverRow, error) {
	pol, topo, err := so.Resolve()
	if err != nil {
		return nil, err
	}
	plat, err := runtime.NewPlatform(node, ranks, gpusPerRank)
	if err != nil {
		return nil, err
	}
	pts := solverGrid(backends, sizes)
	opts := so.sweepOptions()
	return sweep.Run(len(pts), opts, func(i int, ctx *sweep.Context) (SolverRow, error) {
		p := pts[i]
		b, err := solver.ByName(p.backend)
		if err != nil {
			return SolverRow{}, err
		}
		pg, qg := tile.SquarestGrid(plat.Ranks)
		desc, err := tile.NewDesc(p.n, ts, pg, qg)
		if err != nil {
			return SolverRow{}, err
		}
		maps := precmap.New(precmap.Uniform(desc.NT, prec.FP16), 1e-2)
		res, err := b.SolveCached(solver.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: p.strat,
			Sched: pol, Bcast: topo,
			EngineWorkers: so.EnginePerPoint(len(pts)),
		}, ctx.Cache)
		if err != nil {
			return SolverRow{}, fmt.Errorf("bench: solver %s %v n=%d: %w", p.backend, p.strat, p.n, err)
		}
		ctx.Reg.Merge(res.Metrics())
		return SolverRow{
			Backend:    p.backend,
			Strategy:   p.strat.String(),
			N:          p.n,
			Time:       res.Stats.Makespan,
			Energy:     res.Stats.Energy,
			Tflops:     res.Stats.Flops / 1e12,
			BytesH2D:   res.Stats.BytesH2D,
			BytesNet:   res.Stats.BytesNet,
			Iterations: res.Iterations,
			Digest:     res.Digest(),
		}, nil
	})
}
