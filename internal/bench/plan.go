package bench

import (
	"fmt"
	"time"

	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// PlanRow is one line of the plan-cache ablation: the wall-clock of a
// k-evaluation repeated-factorization loop (the MLE inner loop's shape),
// fresh vs plan-cached.
type PlanRow struct {
	Variant string
	Evals   int
	// Wall is host wall-clock seconds for the whole loop (this is a real
	// measurement of the simulator itself, not simulated time).
	Wall float64
	// Speedup of this variant over the fresh loop (fresh = 1).
	Speedup float64
	// Cache counter snapshot after the loop (zero for the fresh variant).
	Hits, Misses, Invalidations int64
}

// PlanAblation measures what the compiled-plan cache buys a repeated
// workload: the fresh loop pays k full discrete-event simulations, the
// cached loop pays one compile plus k−1 replays — O(1×schedule +
// k×numerics). Phantom mode (no numeric bodies) isolates the scheduling
// cost itself. The two loops must agree on every schedule digest; a
// mismatch is returned as an error, making the ablation double as a
// self-check.
func PlanAblation(n, ts, k int, node *hw.NodeSpec) ([]PlanRow, error) {
	return PlanAblationOpts(n, ts, k, node, SweepOpts{})
}

// PlanAblationOpts is PlanAblation routed through the sweep executor: a
// two-point grid (the fresh loop and the cached loop), each running its
// k-evaluation loop serially inside its point. The digest cross-check and
// the speedup column are computed after the sweep, so the rows carry the
// same self-check at any worker count — though with Workers > 0 the two
// variants time-share cores and the wall-clock comparison loses meaning;
// keep this family serial when the speedup column matters.
func PlanAblationOpts(n, ts, k int, node *hw.NodeSpec, so SweepOpts) ([]PlanRow, error) {
	return PlanAblationBackend(n, ts, k, node, "direct", so)
}

// PlanAblationBackend is the ablation through a named solver backend:
// "direct" replays one frozen factorization schedule per evaluation
// (bit-identical to the historical loop); "cg" replays one compiled plan
// per distinct chunk precision schedule, so the counters show the
// hit/miss mix an iterative MLE loop would see.
func PlanAblationBackend(n, ts, k int, node *hw.NodeSpec, backend string, so SweepOpts) ([]PlanRow, error) {
	if k < 2 {
		return nil, fmt.Errorf("bench: plan ablation needs k >= 2 evaluations, got %d", k)
	}
	be, err := solver.ByName(backend)
	if err != nil {
		return nil, err
	}
	plat, err := runtime.NewPlatform(node, 1, 1)
	if err != nil {
		return nil, err
	}
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	maps := precmap.New(ConvConfig{OffDiag: prec.FP16x32}.KernelMap(desc.NT), 1e-4)
	cfg := solver.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: solver.Auto,
		EngineWorkers: so.EnginePerPoint(2),
	}

	type variant struct {
		row    PlanRow
		digest uint64
	}
	outs, err := sweep.Run(2, so.sweepOptions(), func(i int, ctx *sweep.Context) (variant, error) {
		if i == 0 {
			var digest uint64
			start := time.Now()
			for e := 0; e < k; e++ {
				res, err := be.Solve(cfg)
				if err != nil {
					return variant{}, fmt.Errorf("bench: plan ablation fresh eval %d: %w", e, err)
				}
				digest = res.Digest()
			}
			wall := time.Since(start).Seconds()
			return variant{row: PlanRow{Variant: "fresh", Evals: k, Wall: wall, Speedup: 1}, digest: digest}, nil
		}
		cache := planpkg.NewCache(ctx.Reg)
		var digest uint64
		start := time.Now()
		for e := 0; e < k; e++ {
			res, err := be.SolveCached(cfg, cache)
			if err != nil {
				return variant{}, fmt.Errorf("bench: plan ablation cached eval %d: %w", e, err)
			}
			if e == 0 {
				digest = res.Digest()
			} else if res.Digest() != digest {
				return variant{}, fmt.Errorf("bench: plan ablation: cached digest %016x != %016x at eval %d",
					res.Digest(), digest, e)
			}
		}
		wall := time.Since(start).Seconds()
		s := cache.Stats()
		return variant{
			row: PlanRow{
				Variant: "plan-cache", Evals: k, Wall: wall,
				Hits: s.Hits, Misses: s.Misses, Invalidations: s.Invalidations,
			},
			digest: digest,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if outs[0].digest != outs[1].digest {
		return nil, fmt.Errorf("bench: plan ablation: cached digest %016x != fresh %016x",
			outs[1].digest, outs[0].digest)
	}
	fresh, cached := outs[0].row, outs[1].row
	if cached.Wall > 0 {
		cached.Speedup = fresh.Wall / cached.Wall
	}
	return []PlanRow{fresh, cached}, nil
}

// ConvSweepCached is ConvSweepOpts routed through a compiled-plan cache.
// The sweep alternates precision maps over a handful of schedule shapes
// (strategy × size), so with one plan slot per shape it exercises the
// invalidation path far more than the replay path — every run either
// misses, replays, or measures a dirty closure and recompiles, and the
// cache counters expose that mix (the convbench -plan-cache mode prints
// them). Armed fault plans bypass the cache per run. Rows are identical to
// a fresh sweep's — the cache never changes results, only how they are
// obtained.
func ConvSweepCached(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, faultSpec string, so SchedOpts, cache *planpkg.Cache) ([]ConvRow, error) {
	return convSweep(node, ranks, gpusPerRank, sizes, ts, faultSpec, so, cache)
}
