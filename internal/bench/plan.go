package bench

import (
	"fmt"
	"time"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

// PlanRow is one line of the plan-cache ablation: the wall-clock of a
// k-evaluation repeated-factorization loop (the MLE inner loop's shape),
// fresh vs plan-cached.
type PlanRow struct {
	Variant string
	Evals   int
	// Wall is host wall-clock seconds for the whole loop (this is a real
	// measurement of the simulator itself, not simulated time).
	Wall float64
	// Speedup of this variant over the fresh loop (fresh = 1).
	Speedup float64
	// Cache counter snapshot after the loop (zero for the fresh variant).
	Hits, Misses, Invalidations int64
}

// PlanAblation measures what the compiled-plan cache buys a repeated
// workload: the fresh loop pays k full discrete-event simulations, the
// cached loop pays one compile plus k−1 replays — O(1×schedule +
// k×numerics). Phantom mode (no numeric bodies) isolates the scheduling
// cost itself. The two loops must agree on every schedule digest; a
// mismatch is returned as an error, making the ablation double as a
// self-check.
func PlanAblation(n, ts, k int, node *hw.NodeSpec) ([]PlanRow, error) {
	if k < 2 {
		return nil, fmt.Errorf("bench: plan ablation needs k >= 2 evaluations, got %d", k)
	}
	plat, err := runtime.NewPlatform(node, 1, 1)
	if err != nil {
		return nil, err
	}
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	maps := precmap.New(ConvConfig{OffDiag: prec.FP16x32}.KernelMap(desc.NT), 1e-4)
	cfg := cholesky.Config{Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto}

	var freshDigest uint64
	start := time.Now()
	for i := 0; i < k; i++ {
		res, err := cholesky.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: plan ablation fresh eval %d: %w", i, err)
		}
		freshDigest = res.Digest()
	}
	freshWall := time.Since(start).Seconds()

	cache := planpkg.NewCache(nil)
	start = time.Now()
	for i := 0; i < k; i++ {
		res, err := cholesky.RunCached(cfg, cache)
		if err != nil {
			return nil, fmt.Errorf("bench: plan ablation cached eval %d: %w", i, err)
		}
		if res.Digest() != freshDigest {
			return nil, fmt.Errorf("bench: plan ablation: cached digest %016x != fresh %016x at eval %d",
				res.Digest(), freshDigest, i)
		}
	}
	cachedWall := time.Since(start).Seconds()

	s := cache.Stats()
	return []PlanRow{
		{Variant: "fresh", Evals: k, Wall: freshWall, Speedup: 1},
		{
			Variant: "plan-cache", Evals: k, Wall: cachedWall,
			Speedup: freshWall / cachedWall,
			Hits:    s.Hits, Misses: s.Misses, Invalidations: s.Invalidations,
		},
	}, nil
}

// ConvSweepCached is ConvSweepOpts routed through a compiled-plan cache.
// The sweep alternates precision maps over a handful of schedule shapes
// (strategy × size), so with one plan slot per shape it exercises the
// invalidation path far more than the replay path — every run either
// misses, replays, or measures a dirty closure and recompiles, and the
// cache counters expose that mix (the convbench -plan-cache mode prints
// them). Armed fault plans bypass the cache per run. Rows are identical to
// a fresh sweep's — the cache never changes results, only how they are
// obtained.
func ConvSweepCached(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, faultSpec string, so SchedOpts, cache *planpkg.Cache) ([]ConvRow, error) {
	return convSweep(node, ranks, gpusPerRank, sizes, ts, faultSpec, so, cache)
}
