package bench

import (
	"testing"

	"geompc/internal/hw"
)

// TestLocalityReducesH2DOnFullNode is the scheduler ablation's acceptance
// property: on the Fig 11 multi-GPU workload (full Summit node, FP64/FP16_32
// Auto), the Locality policy must stage strictly fewer H2D bytes than FIFO —
// following the data is the whole point of the policy — while every policy
// reports a positive makespan and energy.
func TestLocalityReducesH2DOnFullNode(t *testing.T) {
	rows, err := SchedAblation(hw.SummitNode, 1, 0, []int{16384}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]SchedRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Time <= 0 || r.Energy <= 0 {
			t.Errorf("%s: non-positive time %g or energy %g", r.Policy, r.Time, r.Energy)
		}
	}
	fifo, ok1 := byPolicy["fifo"]
	loc, ok2 := byPolicy["locality"]
	if !ok1 || !ok2 {
		t.Fatalf("ablation missing fifo/locality rows: %v", rows)
	}
	if loc.BytesH2D >= fifo.BytesH2D {
		t.Errorf("locality staged %d H2D bytes, FIFO %d — want strictly fewer", loc.BytesH2D, fifo.BytesH2D)
	}
}

// TestBcastAblationShapes sanity-checks the topology sweep: the topology
// shapes arrival times, never traffic, so wire bytes must be identical
// across topologies (and each run must report a positive makespan).
// Makespans are allowed to move in either direction — with few receivers a
// chain's first hop beats the binomial tree's uniform log-depth arrival.
func TestBcastAblationShapes(t *testing.T) {
	rows, err := BcastAblation(hw.SummitNode, 4, []int{8192}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	byTopo := map[string]BcastRow{}
	for _, r := range rows {
		byTopo[r.Topology] = r
		if r.Time <= 0 {
			t.Errorf("%s: non-positive makespan %g", r.Topology, r.Time)
		}
	}
	bin, ok := byTopo["binomial"]
	if !ok {
		t.Fatal("missing binomial row")
	}
	if bin.BytesNet == 0 {
		t.Fatal("multi-rank run moved no network bytes; the sweep is not exercising broadcasts")
	}
	for _, name := range []string{"flat", "chain"} {
		r, ok := byTopo[name]
		if !ok {
			t.Fatalf("missing %s row", name)
		}
		if r.BytesNet != bin.BytesNet {
			t.Errorf("%s moved %d net bytes, binomial %d — topology must not change traffic", name, r.BytesNet, bin.BytesNet)
		}
	}
}
