package bench

import (
	"geompc/internal/geo"
	"geompc/internal/mle"
	"geompc/internal/stats"
)

// AccuracyCase is one panel of Figs 5/6: a covariance family with a
// correlation level (and smoothness for Matérn) whose parameters the
// Monte-Carlo study tries to recover at several accuracy thresholds.
type AccuracyCase struct {
	Name      string
	Kernel    geo.Kernel
	TrueTheta []float64
	Dim       int
}

// Fig5Cases returns the 2D panels: squared exponential and Matérn with
// weak (β=0.03) and strong (β=0.3) correlation, and rough (ν=0.5) and
// smooth (ν=1) Matérn fields (§VII-B).
func Fig5Cases() []AccuracyCase {
	return []AccuracyCase{
		{"2D-sqexp weak", geo.SqExp{Dimension: 2}, []float64{1, 0.03}, 2},
		{"2D-sqexp strong", geo.SqExp{Dimension: 2}, []float64{1, 0.3}, 2},
		{"2D-Matern weak-rough", geo.Matern{Dimension: 2}, []float64{1, 0.03, 0.5}, 2},
		{"2D-Matern strong-rough", geo.Matern{Dimension: 2}, []float64{1, 0.3, 0.5}, 2},
		{"2D-Matern weak-smooth", geo.Matern{Dimension: 2}, []float64{1, 0.03, 1}, 2},
		{"2D-Matern strong-smooth", geo.Matern{Dimension: 2}, []float64{1, 0.3, 1}, 2},
	}
}

// Fig6Cases returns the 3D squared-exponential panels.
func Fig6Cases() []AccuracyCase {
	return []AccuracyCase{
		{"3D-sqexp weak", geo.SqExp{Dimension: 3}, []float64{1, 0.03}, 3},
		{"3D-sqexp strong", geo.SqExp{Dimension: 3}, []float64{1, 0.3}, 3},
	}
}

// AccuracyLevels returns the accuracy thresholds compared in the figures:
// exact FP64 (0), the paper's validated 1e-9, the sqexp-acceptable 1e-4,
// and an aggressive 1e-2 that visibly degrades Matérn estimation.
func AccuracyLevels() []float64 { return []float64{0, 1e-9, 1e-4, 1e-2} }

// AccuracyResult is the Monte-Carlo outcome for one case at one level.
type AccuracyResult struct {
	Case      string
	UReq      float64
	Param     string
	Truth     float64
	Summary   stats.Summary
	Estimates []float64
	Failed    int
}

// AccuracyStudy runs the Monte-Carlo estimation study for one case across
// the accuracy levels: replicas synthetic datasets of n locations each,
// refit at every level. Results arrive per (level, parameter).
func AccuracyStudy(c AccuracyCase, levels []float64, replicas, n, tileSize int, seed uint64) ([]AccuracyResult, error) {
	return AccuracyStudyEvals(c, levels, replicas, n, tileSize, seed, 0)
}

// AccuracyStudyEvals is AccuracyStudy with an explicit optimizer-evaluation
// cap (0 uses the MLE default).
func AccuracyStudyEvals(c AccuracyCase, levels []float64, replicas, n, tileSize int, seed uint64, maxEvals int) ([]AccuracyResult, error) {
	cfg := mle.MCConfig{
		Replicas:  replicas,
		N:         n,
		Dim:       c.Dim,
		Kernel:    c.Kernel,
		TrueTheta: c.TrueTheta,
		UReqs:     levels,
		Nugget:    1e-7,
		TileSize:  tileSize,
		Seed:      seed,
		MaxEvals:  maxEvals,
	}
	mcs, err := mle.MonteCarlo(cfg)
	if err != nil {
		return nil, err
	}
	names := c.Kernel.ParamNames()
	var out []AccuracyResult
	for _, mc := range mcs {
		for pi, name := range names {
			if len(mc.Estimates[pi]) == 0 {
				continue
			}
			out = append(out, AccuracyResult{
				Case:      c.Name,
				UReq:      mc.UReq,
				Param:     name,
				Truth:     c.TrueTheta[pi],
				Summary:   stats.Summarize(mc.Estimates[pi]),
				Estimates: mc.Estimates[pi],
				Failed:    mc.Failed,
			})
		}
	}
	return out, nil
}
