package bench

import (
	"testing"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/tile"
)

// These tests encode DESIGN.md §4's shape targets as regressions: the
// qualitative orderings the paper's figures establish must hold for every
// future change to the device or conversion models.

// phantomRun factorizes a phantom (cost-only) matrix on one node of the
// given type with the given uniform off-diagonal precision and strategy.
func phantomRun(t *testing.T, node *hw.NodeSpec, ranks, n, ts int, offdiag prec.Precision, strat cholesky.Strategy) *cholesky.Result {
	t.Helper()
	plat, err := runtime.NewPlatform(node, ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := tile.NewDesc(n, ts, 1, ranks)
	if err != nil {
		t.Fatal(err)
	}
	maps := precmap.New(precmap.Uniform(desc.NT, offdiag), 1e-4)
	res, err := cholesky.Run(cholesky.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: strat, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSTCNotSlowerThanTTCAllGenerations is Fig 8's shape target: the
// automated strategy (which picks STC whenever Algorithm 2 deems it
// profitable) must never lose to forced receiver-side conversion, on any of
// the three GPU generations.
func TestSTCNotSlowerThanTTCAllGenerations(t *testing.T) {
	nodes := []*hw.NodeSpec{hw.SummitNode, hw.GuyotNode, hw.HaxaneNode}
	for _, nd := range nodes {
		for _, off := range []prec.Precision{prec.FP16x32, prec.FP16} {
			stc := phantomRun(t, nd, 2, 16384, 2048, off, cholesky.Auto)
			ttc := phantomRun(t, nd, 2, 16384, 2048, off, cholesky.ForceTTC)
			if stc.Stats.Makespan > ttc.Stats.Makespan*(1+1e-12) {
				t.Errorf("%s FP64/%v: STC makespan %g s above TTC %g s",
					nd.GPU.Name, off, stc.Stats.Makespan, ttc.Stats.Makespan)
			}
		}
	}
}

// TestWireByteRatioTable2 is Table II's 4:2:1 target: the same factorization
// communicated in FP64, FP32 and FP16 wire formats must move network bytes
// in exactly that ratio (wire volume scales with the element size alone).
func TestWireByteRatioTable2(t *testing.T) {
	net := map[prec.Precision]int64{}
	for _, p := range []prec.Precision{prec.FP64, prec.FP32, prec.FP16} {
		plat, err := runtime.NewPlatform(hw.SummitNode, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		desc, err := tile.NewDesc(16384, 2048, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Auto strategy: the comm map sends at the kernel's input format, so
		// FP16 tiles really travel as binary16 (ForceTTC would ship them at
		// their FP32 storage precision instead).
		maps := precmap.New(precmap.UniformAll(desc.NT, p), 1e-2)
		res, err := cholesky.Run(cholesky.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto, Audit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.BytesNet <= 0 {
			t.Fatalf("%v: no network traffic in a 2-rank run", p)
		}
		net[p] = res.Stats.BytesNet
	}
	if net[prec.FP64] != 2*net[prec.FP32] || net[prec.FP32] != 2*net[prec.FP16] {
		t.Errorf("network bytes not 4:2:1 — FP64=%d FP32=%d FP16=%d",
			net[prec.FP64], net[prec.FP32], net[prec.FP16])
	}
	// The move-time rows of Table II must show the same ratio (the transfer
	// model is linear in bytes at these sizes).
	rows := Table2([]int{8192})
	mv := map[string]float64{}
	for _, r := range rows {
		mv[r.Label] = r.TimeMs[0]
	}
	r64, r32, r16 := mv["Move one tile/matrix in FP64"], mv["Move one tile/matrix in FP32"], mv["Move one tile/matrix in FP16"]
	if r64 <= 0 || r32 <= 0 || r16 <= 0 {
		t.Fatalf("missing Table II move rows: %v", mv)
	}
	for _, ratio := range []float64{r64 / r32, r32 / r16} {
		if ratio < 1.9 || ratio > 2.1 {
			t.Errorf("Table II move-time ratio %g outside [1.9, 2.1]", ratio)
		}
	}
}

// TestFig1ErrorOrdering is Fig 1's accuracy target: GEMM backward error
// must order FP64 < FP32 < TF32 ≈ FP16_32 < FP16 (FP64 is the reference,
// so its error is identically zero; TF32 and FP16_32 agree to within a
// small constant because both accumulate in FP32).
func TestFig1ErrorOrdering(t *testing.T) {
	rows := GemmAccuracy([]int{48}, 7)
	err := map[prec.Precision]float64{}
	for _, r := range rows {
		err[r.Prec] = r.Err
	}
	if !(err[prec.FP32] > 0) {
		t.Error("FP32 error not above the FP64 reference")
	}
	if !(err[prec.FP32] < err[prec.TF32]) {
		t.Errorf("FP32 error %g not below TF32 %g", err[prec.FP32], err[prec.TF32])
	}
	if !(err[prec.FP32] < err[prec.FP16x32]) {
		t.Errorf("FP32 error %g not below FP16_32 %g", err[prec.FP32], err[prec.FP16x32])
	}
	if ratio := err[prec.TF32] / err[prec.FP16x32]; ratio < 0.25 || ratio > 4 {
		t.Errorf("TF32/FP16_32 error ratio %g outside [1/4, 4]", ratio)
	}
	if !(err[prec.FP16x32] < err[prec.FP16]) {
		t.Errorf("FP16_32 error %g not below FP16 %g", err[prec.FP16x32], err[prec.FP16])
	}
}
