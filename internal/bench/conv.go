package bench

import (
	"fmt"

	"geompc/internal/cholesky"
	"geompc/internal/hw"
	planpkg "geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/solver"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// ConvConfig is one line of Fig 8/11: a fixed two-precision extreme (or a
// uniform baseline) for the tile Cholesky.
type ConvConfig struct {
	Name string
	// OffDiag is the kernel precision of all off-diagonal tiles; diagonal
	// tiles stay FP64 unless Uniform is set.
	OffDiag prec.Precision
	// Uniform applies OffDiag to the diagonal too (FP64/FP32 baselines).
	Uniform bool
}

// ConvConfigs returns the configurations of Fig 8: the FP64 and FP32
// baselines and the FP64/FP16_32 and FP64/FP16 extremes where every
// communication is eligible for STC.
func ConvConfigs() []ConvConfig {
	return []ConvConfig{
		{Name: "FP64", OffDiag: prec.FP64, Uniform: true},
		{Name: "FP32", OffDiag: prec.FP32, Uniform: true},
		{Name: "FP64/FP16_32", OffDiag: prec.FP16x32},
		{Name: "FP64/FP16", OffDiag: prec.FP16},
	}
}

// KernelMap realizes the configuration for an NT×NT tiling.
func (c ConvConfig) KernelMap(nt int) [][]prec.Precision {
	if c.Uniform {
		return precmap.UniformAll(nt, c.OffDiag)
	}
	return precmap.Uniform(nt, c.OffDiag)
}

// ConvRow is one measurement of the STC/TTC comparison.
type ConvRow struct {
	Config   string
	Strategy string
	N        int
	Tflops   float64
	Time     float64
	BytesH2D int64
	BytesNet int64
	// PctPeak is achieved performance over the config's dominant-precision
	// peak (the dashed lines of Fig 8).
	PctPeak float64
	// Digest is the run's FNV-1a schedule digest — the value the parallel
	// sweep executor must reproduce bit for bit against a serial sweep.
	Digest uint64
}

// ConvSweep runs Fig 8 (single GPU) or Fig 11 (full node) for one machine:
// every configuration × {STC, TTC} × matrix size, in phantom mode.
func ConvSweep(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int) ([]ConvRow, error) {
	return ConvSweepFaults(node, ranks, gpusPerRank, sizes, ts, "")
}

// ConvSweepFaults is ConvSweep with a fault plan injected into every run
// (runtime.ParseFaultSpec grammar; empty means fault-free). Reported times
// then include the recovery overhead the plan causes.
func ConvSweepFaults(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, faultSpec string) ([]ConvRow, error) {
	return ConvSweepOpts(node, ranks, gpusPerRank, sizes, ts, faultSpec, SchedOpts{})
}

// ConvSweepOpts is the fully parameterized sweep: a fault plan plus a named
// scheduling policy and broadcast topology (zero SchedOpts = historical
// FIFO + binomial).
func ConvSweepOpts(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, faultSpec string, so SchedOpts) ([]ConvRow, error) {
	return convSweep(node, ranks, gpusPerRank, sizes, ts, faultSpec, so, nil)
}

// convPoint is one cell of the conversion sweep's flattened grid:
// configuration × conversion strategy × matrix size.
type convPoint struct {
	cfg   ConvConfig
	strat cholesky.Strategy
	n     int
}

// convGrid flattens the sweep's nested loops into submission order —
// the row order every worker count must reproduce.
func convGrid(sizes []int) []convPoint {
	var pts []convPoint
	for _, cfg := range ConvConfigs() {
		strategies := []cholesky.Strategy{cholesky.Auto, cholesky.ForceTTC}
		if cfg.Uniform {
			// Uniform-precision baselines have no precision mismatch; STC
			// and TTC coincide, so report a single line.
			strategies = strategies[:1]
		}
		for _, strat := range strategies {
			for _, n := range sizes {
				pts = append(pts, convPoint{cfg: cfg, strat: strat, n: n})
			}
		}
	}
	return pts
}

// convSweep is the shared sweep body, routed through the deterministic
// sweep executor (serial when so.Workers == 0) and the solver backend
// so.Solver names (default "direct" — bit-identical to the historical
// cholesky.RunCached path); a non-nil cache is shared across workers (see
// ConvSweepCached and the plan.Cache concurrency contract).
func convSweep(node *hw.NodeSpec, ranks, gpusPerRank int, sizes []int, ts int, faultSpec string, so SchedOpts, cache *planpkg.Cache) ([]ConvRow, error) {
	pol, topo, err := so.Resolve()
	if err != nil {
		return nil, err
	}
	be, err := solver.ByName(so.Solver)
	if err != nil {
		return nil, err
	}
	plat, err := runtime.NewPlatform(node, ranks, gpusPerRank)
	if err != nil {
		return nil, err
	}
	var faults runtime.FaultInjector
	if faultSpec != "" {
		fp, err := runtime.ParseFaultSpec(faultSpec, plat.NumDevices())
		if err != nil {
			return nil, err
		}
		faults = fp
	}
	pts := convGrid(sizes)
	opts := so.sweepOptions()
	opts.Cache = cache
	return sweep.Run(len(pts), opts, func(i int, ctx *sweep.Context) (ConvRow, error) {
		p := pts[i]
		pg, qg := tile.SquarestGrid(plat.Ranks)
		desc, err := tile.NewDesc(p.n, ts, pg, qg)
		if err != nil {
			return ConvRow{}, err
		}
		maps := precmap.New(p.cfg.KernelMap(desc.NT), 1e-2)
		res, err := be.SolveCached(solver.Config{
			Desc: desc, Maps: maps, Platform: plat, Strategy: p.strat,
			Faults: faults, Sched: pol, Bcast: topo,
			EngineWorkers: so.EnginePerPoint(len(pts)),
		}, ctx.Cache)
		if err != nil {
			return ConvRow{}, fmt.Errorf("bench: %s %v n=%d: %w", p.cfg.Name, p.strat, p.n, err)
		}
		ctx.Reg.Merge(res.Metrics())
		peak := node.GPU.SupportedPeak(p.cfg.OffDiag) * float64(plat.NumDevices())
		return ConvRow{
			Config:   p.cfg.Name,
			Strategy: p.strat.String(),
			N:        p.n,
			Tflops:   res.Stats.Flops / 1e12,
			Time:     res.Stats.Makespan,
			BytesH2D: res.Stats.BytesH2D,
			BytesNet: res.Stats.BytesNet,
			PctPeak:  100 * res.Stats.Flops / peak,
			Digest:   res.Digest(),
		}, nil
	})
}
