package bench

import "testing"

// BenchmarkFig12WeakStep runs one weak-scaling step of Fig 12a (16 Summit
// nodes, N grown from a 49,152 single-node base → N=196,608, NT=96,
// ~152k phantom tasks) — the engine-throughput point of the benchmark
// trajectory in BENCH_kernels.json.
func BenchmarkFig12WeakStep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := WeakScaling([]int{16}, 196608, 2048)
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}
