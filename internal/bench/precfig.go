package bench

import (
	"strings"

	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// PrecMapResult is the Fig 7 output for one application: the kernel
// precision map and the fraction of tiles per precision.
type PrecMapResult struct {
	App       string
	N, TS, NT int
	Maps      *precmap.Maps
	Fractions map[prec.Precision]float64
	STCShare  float64 // fraction of communication-issuing tasks using STC
}

// PrecisionMap computes the Fig 7 kernel-precision map for one application
// at the given matrix and tile size, using the sampled tile-norm estimator
// (exact below the sampling threshold).
func PrecisionMap(app App, n, ts, samples int, seed uint64) (*PrecMapResult, error) {
	desc, err := tile.NewDesc(n, ts, 1, 1)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, 0)
	locs := geo.GenerateLocations(n, app.Kernel.Dim(), rng)
	normFn, global := precmap.EstimateTileNorms(locs, desc, app.Kernel, app.Theta, app.Nugget, samples, rng)
	km := precmap.NewKernelMap(desc.NT, normFn, global, app.UReq, prec.CholeskySet)
	maps := precmap.New(km, app.UReq)
	stc, total := maps.STCCount()
	share := 0.0
	if total > 0 {
		share = float64(stc) / float64(total)
	}
	return &PrecMapResult{
		App: app.Name, N: n, TS: ts, NT: desc.NT,
		Maps:      maps,
		Fractions: maps.Fractions(),
		STCShare:  share,
	}, nil
}

// precGlyph maps a precision to the single character used in ASCII map
// rendering.
func precGlyph(p prec.Precision) byte {
	switch p {
	case prec.FP64:
		return 'D'
	case prec.FP32:
		return 'S'
	case prec.FP16x32:
		return 'h'
	case prec.FP16:
		return 'H'
	default:
		return '?'
	}
}

// RenderKernelMap draws the lower-triangular kernel-precision map (Fig 2a /
// Fig 7 heat map) as ASCII: D=FP64, S=FP32, h=FP16_32, H=FP16.
func RenderKernelMap(m *precmap.Maps) string {
	var b strings.Builder
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			b.WriteByte(precGlyph(m.Kernel[i][j]))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCommMap draws the communication-precision map of Algorithm 2
// (Fig 4b); tasks applying STC are marked with '*' after the glyph.
func RenderCommMap(m *precmap.Maps) string {
	var b strings.Builder
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			b.WriteByte(precGlyph(m.Comm[i][j]))
			if m.STC[i][j] {
				b.WriteByte('*')
			} else {
				b.WriteByte(' ')
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderStorageMap draws the storage-precision map (Fig 2b).
func RenderStorageMap(m *precmap.Maps) string {
	var b strings.Builder
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			b.WriteByte(precGlyph(m.Storage[i][j]))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
