package bench

import (
	"fmt"
	"math"

	"geompc/internal/cholesky"
	"geompc/internal/geo"
	"geompc/internal/hw"
	"geompc/internal/obs"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/stats"
	"geompc/internal/sweep"
	"geompc/internal/tile"
)

// ScaleRow is one point of Fig 12.
type ScaleRow struct {
	Config  string
	Nodes   int
	GPUs    int
	N       int
	Tflops  float64
	Time    float64
	PctPeak float64
	// Speedup vs. the FP64 run of the same N/GPU count (Fig 12c).
	Speedup float64
	// Digest is the run's FNV-1a schedule digest — the value the parallel
	// sweep executor must reproduce bit for bit against a serial sweep.
	Digest uint64
}

// scaleConfig is either a uniform baseline or an application map.
type scaleConfig struct {
	name    string
	app     *App
	uniform prec.Precision
}

func scaleConfigs(withFP32 bool) []scaleConfig {
	out := []scaleConfig{{name: "FP64", uniform: prec.FP64}}
	if withFP32 {
		out = append(out, scaleConfig{name: "FP32", uniform: prec.FP32})
	}
	apps := Apps()
	for i := range apps {
		out = append(out, scaleConfig{name: apps[i].Name, app: &apps[i]})
	}
	return out
}

// runScale executes one phantom factorization on `nodes` Summit nodes,
// optionally under a fault plan (runtime.ParseFaultSpec grammar; empty
// means fault-free) and a named scheduling policy / broadcast topology.
// A non-nil reg receives the run's engine metrics (the sweep executor
// passes each point's registry shard here).
func runScale(cfg scaleConfig, nodes, n, ts int, seed uint64, faultSpec string, so SchedOpts, reg *obs.Registry) (ScaleRow, error) {
	pol, topo, err := so.Resolve()
	if err != nil {
		return ScaleRow{}, err
	}
	plat, err := runtime.NewPlatform(hw.SummitNode, nodes, 0)
	if err != nil {
		return ScaleRow{}, err
	}
	var faults runtime.FaultInjector
	if faultSpec != "" {
		plan, err := runtime.ParseFaultSpec(faultSpec, plat.NumDevices())
		if err != nil {
			return ScaleRow{}, err
		}
		faults = plan
	}
	pg, qg := tile.SquarestGrid(nodes)
	desc, err := tile.NewDesc(n, ts, pg, qg)
	if err != nil {
		return ScaleRow{}, err
	}
	var km [][]prec.Precision
	ureq := 1e-2
	if cfg.app != nil {
		rng := stats.NewRNG(seed, 0)
		locs := geo.GenerateLocations(n, cfg.app.Kernel.Dim(), rng)
		normFn, global := precmap.EstimateTileNorms(locs, desc, cfg.app.Kernel, cfg.app.Theta, cfg.app.Nugget, 64, rng)
		km = precmap.NewKernelMap(desc.NT, normFn, global, cfg.app.UReq, prec.CholeskySet)
		ureq = cfg.app.UReq
	} else {
		km = precmap.UniformAll(desc.NT, cfg.uniform)
	}
	maps := precmap.New(km, ureq)
	res, err := cholesky.Run(cholesky.Config{
		Desc: desc, Maps: maps, Platform: plat, Strategy: cholesky.Auto,
		Faults: faults, Sched: pol, Bcast: topo,
		EngineWorkers: so.EngineWorkers,
	})
	if err != nil {
		return ScaleRow{}, fmt.Errorf("bench: scale %s nodes=%d n=%d: %w", cfg.name, nodes, n, err)
	}
	if reg != nil {
		reg.Merge(res.Metrics())
	}
	gpus := plat.NumDevices()
	peak := hw.V100.SupportedPeak(prec.FP64) * float64(gpus)
	return ScaleRow{
		Config: cfg.name, Nodes: nodes, GPUs: gpus, N: n,
		Tflops:  res.Stats.Flops / 1e12,
		Time:    res.Stats.Makespan,
		PctPeak: 100 * res.Stats.Flops / peak,
		Digest:  res.Digest(),
	}, nil
}

// WeakScaling runs Fig 12a: the matrix grows with the GPU count so per-GPU
// memory stays constant (N ∝ √GPUs), FP64 configuration.
func WeakScaling(nodeCounts []int, baseN, ts int) ([]ScaleRow, error) {
	return WeakScalingFaults(nodeCounts, baseN, ts, "")
}

// WeakScalingFaults is WeakScaling with a fault plan injected into every
// run; reported times include the recovery overhead.
func WeakScalingFaults(nodeCounts []int, baseN, ts int, faultSpec string) ([]ScaleRow, error) {
	return WeakScalingOpts(nodeCounts, baseN, ts, faultSpec, SchedOpts{})
}

// WeakScalingOpts is the fully parameterized weak-scaling sweep: a fault
// plan plus a named scheduling policy and broadcast topology, one sweep
// point per node count (parallel when so.Workers > 0).
func WeakScalingOpts(nodeCounts []int, baseN, ts int, faultSpec string, so SchedOpts) ([]ScaleRow, error) {
	base := float64(nodeCounts[0])
	so.EngineWorkers = so.EnginePerPoint(len(nodeCounts))
	return sweep.Run(len(nodeCounts), so.sweepOptions(), func(i int, ctx *sweep.Context) (ScaleRow, error) {
		nodes := nodeCounts[i]
		n := int(float64(baseN) * math.Sqrt(float64(nodes)/base))
		n = (n + ts - 1) / ts * ts
		return runScale(scaleConfig{name: "FP64", uniform: prec.FP64}, nodes, n, ts, 1, faultSpec, so, ctx.Reg)
	})
}

// StrongScaling runs Fig 12b: fixed matrix size (the paper uses 798,720)
// over increasing node counts, FP64 configuration.
func StrongScaling(nodeCounts []int, n, ts int) ([]ScaleRow, error) {
	return StrongScalingFaults(nodeCounts, n, ts, "")
}

// StrongScalingFaults is StrongScaling with a fault plan injected into
// every run; reported times include the recovery overhead.
func StrongScalingFaults(nodeCounts []int, n, ts int, faultSpec string) ([]ScaleRow, error) {
	return StrongScalingOpts(nodeCounts, n, ts, faultSpec, SchedOpts{})
}

// StrongScalingOpts is the fully parameterized strong-scaling sweep: a
// fault plan plus a named scheduling policy and broadcast topology, one
// sweep point per node count (parallel when so.Workers > 0).
func StrongScalingOpts(nodeCounts []int, n, ts int, faultSpec string, so SchedOpts) ([]ScaleRow, error) {
	so.EngineWorkers = so.EnginePerPoint(len(nodeCounts))
	return sweep.Run(len(nodeCounts), so.sweepOptions(), func(i int, ctx *sweep.Context) (ScaleRow, error) {
		return runScale(scaleConfig{name: "FP64", uniform: prec.FP64}, nodeCounts[i], n, ts, 1, faultSpec, so, ctx.Reg)
	})
}

// MPEffect runs Fig 12c: on a fixed node count (the paper uses 64 nodes =
// 384 GPUs), FP64 and FP32 baselines and the three applications' adaptive
// MP across a matrix-size sweep, reporting speedup over FP64. The speedup
// column chains each row to the FP64 baseline of its size, so this family
// stays serial.
func MPEffect(nodes int, sizes []int, ts int) ([]ScaleRow, error) {
	var rows []ScaleRow
	fp64 := make(map[int]float64) // n -> time
	for _, cfg := range scaleConfigs(true) {
		for _, n := range sizes {
			r, err := runScale(cfg, nodes, n, ts, 2, "", SchedOpts{}, nil)
			if err != nil {
				return nil, err
			}
			if cfg.name == "FP64" {
				fp64[n] = r.Time
			}
			if t, ok := fp64[n]; ok && r.Time > 0 {
				r.Speedup = t / r.Time
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}
