package bench

// Serial-vs-parallel equivalence for every sweep family: the deterministic
// executor must return row-for-row identical results (struct equality,
// schedule digests included) at every worker count, and the merged engine
// metrics must match the serial merge bit for bit.

import (
	"runtime"
	"strings"
	"testing"

	"geompc/internal/hw"
	"geompc/internal/obs"
	planpkg "geompc/internal/plan"
	"geompc/internal/sweep"
)

// edgeWorkers is the worker-count edge table every family is checked
// against: serial, single worker, the machine's parallelism, and a pool
// larger than any grid in this file.
func edgeWorkers() []int {
	return []int{0, 1, runtime.NumCPU(), 64}
}

func sameRows[T comparable](t *testing.T, family string, workers int, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s workers=%d: %d rows, serial has %d", family, workers, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s workers=%d row %d:\n  got  %+v\n  want %+v", family, workers, i, got[i], want[i])
		}
	}
}

func TestConvSweepParallelMatchesSerial(t *testing.T) {
	sizes := []int{8192, 16384}
	const ts = 2048
	want, err := ConvSweepOpts(hw.SummitNode, 1, 2, sizes, ts, "", SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range edgeWorkers() {
		got, err := ConvSweepOpts(hw.SummitNode, 1, 2, sizes, ts, "",
			SchedOpts{SweepOpts: SweepOpts{Workers: w}})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "ConvSweep", w, got, want)
	}

	// Under faults and a non-default policy/topology the grid must still
	// be order-independent.
	faulty, err := ConvSweepOpts(hw.SummitNode, 1, 2, sizes, ts, "kill:dev=1,at=0.001",
		SchedOpts{Policy: "locality", Bcast: "flat"})
	if err != nil {
		t.Fatal(err)
	}
	gotFaulty, err := ConvSweepOpts(hw.SummitNode, 1, 2, sizes, ts, "kill:dev=1,at=0.001",
		SchedOpts{Policy: "locality", Bcast: "flat", SweepOpts: SweepOpts{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "ConvSweep/faults", 4, gotFaulty, faulty)
}

func TestConvSweepCachedParallelMatchesSerial(t *testing.T) {
	sizes := []int{8192, 16384}
	const ts = 2048
	want, err := ConvSweepOpts(hw.SummitNode, 1, 1, sizes, ts, "", SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 4} {
		cache := planpkg.NewCache(nil)
		got, err := ConvSweepCached(hw.SummitNode, 1, 1, sizes, ts, "",
			SchedOpts{SweepOpts: SweepOpts{Workers: w}}, cache)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "ConvSweepCached", w, got, want)
		if s := cache.Stats(); s.Misses+s.Invalidations == 0 {
			t.Errorf("workers=%d: shared cache never compiled: %+v", w, s)
		}
	}
}

func TestScalingParallelMatchesSerial(t *testing.T) {
	nodes := []int{1, 2, 4}
	const baseN, ts = 8192, 2048
	wantWeak, err := WeakScalingOpts(nodes, baseN, ts, "", SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantStrong, err := StrongScalingOpts(nodes, baseN, ts, "", SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range edgeWorkers() {
		so := SchedOpts{SweepOpts: SweepOpts{Workers: w}}
		gotWeak, err := WeakScalingOpts(nodes, baseN, ts, "", so)
		if err != nil {
			t.Fatalf("weak workers=%d: %v", w, err)
		}
		sameRows(t, "WeakScaling", w, gotWeak, wantWeak)
		gotStrong, err := StrongScalingOpts(nodes, baseN, ts, "", so)
		if err != nil {
			t.Fatalf("strong workers=%d: %v", w, err)
		}
		sameRows(t, "StrongScaling", w, gotStrong, wantStrong)
	}
}

func TestSchedAblationParallelMatchesSerial(t *testing.T) {
	sizes := []int{8192}
	const ts = 2048
	want, err := SchedAblationOpts(hw.SummitNode, 1, 0, sizes, ts, SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range edgeWorkers() {
		got, err := SchedAblationOpts(hw.SummitNode, 1, 0, sizes, ts, SweepOpts{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "SchedAblation", w, got, want)
	}
}

func TestBcastAblationParallelMatchesSerial(t *testing.T) {
	sizes := []int{8192}
	const ts = 1024
	want, err := BcastAblationOpts(hw.SummitNode, 4, sizes, ts, SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range edgeWorkers() {
		got, err := BcastAblationOpts(hw.SummitNode, 4, sizes, ts, SweepOpts{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "BcastAblation", w, got, want)
	}
}

func TestChaosAblationParallelMatchesSerial(t *testing.T) {
	const n, ts = 16384, 2048
	want, err := ChaosAblationOpts(hw.SummitNode, 2, n, ts, "", SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range edgeWorkers() {
		got, err := ChaosAblationOpts(hw.SummitNode, 2, n, ts, "", SweepOpts{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "ChaosAblation", w, got, want)
	}
}

func TestPlanAblationParallelMatchesSerial(t *testing.T) {
	// Wall-clock and speedup are real time measurements; only the
	// deterministic columns are compared.
	type stable struct {
		Variant                     string
		Evals                       int
		Hits, Misses, Invalidations int64
	}
	project := func(rows []PlanRow) []stable {
		out := make([]stable, len(rows))
		for i, r := range rows {
			out[i] = stable{r.Variant, r.Evals, r.Hits, r.Misses, r.Invalidations}
		}
		return out
	}
	want, err := PlanAblationOpts(1024, 128, 4, hw.SummitNode, SweepOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 64} {
		got, err := PlanAblationOpts(1024, 128, 4, hw.SummitNode, SweepOpts{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameRows(t, "PlanAblation", w, project(got), project(want))
	}
}

// TestFamilyMergedMetricsDeterministic: the merged engine metrics a sweep
// reports are identical across worker counts, wall-clock sweep/* gauges
// excluded.
func TestFamilyMergedMetricsDeterministic(t *testing.T) {
	render := func(w int) []obs.Metric {
		reg := obs.NewRegistry()
		_, err := SchedAblationOpts(hw.SummitNode, 1, 0, []int{8192}, 2048,
			SweepOpts{Workers: w, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		var out []obs.Metric
		for _, m := range reg.Snapshot() {
			if strings.HasPrefix(m.Name, "sweep/") {
				continue
			}
			out = append(out, m)
		}
		return out
	}
	want := render(0)
	if len(want) == 0 {
		t.Fatal("serial sweep merged no engine metrics")
	}
	for _, w := range []int{1, 3, runtime.NumCPU()} {
		got := render(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d metrics, serial has %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: metric %q = %+v, serial %+v", w, want[i].Name, got[i], want[i])
			}
		}
	}
}

// TestSweepSummaryReported: families surface the executor's throughput
// summary and gauges through SweepOpts.
func TestSweepSummaryReported(t *testing.T) {
	var s sweep.Summary
	reg := obs.NewRegistry()
	rows, err := ConvSweepOpts(hw.SummitNode, 1, 1, []int{8192}, 2048, "",
		SchedOpts{SweepOpts: SweepOpts{Workers: 2, Metrics: reg, Summary: &s}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Points != len(rows) || s.Workers != 2 || s.PointsPerSec <= 0 {
		t.Errorf("summary %+v does not describe the %d-row sweep", s, len(rows))
	}
	if reg.Gauge("sweep/points").Value() != float64(len(rows)) {
		t.Errorf("sweep/points gauge = %g, want %d", reg.Gauge("sweep/points").Value(), len(rows))
	}
	for _, r := range rows {
		if r.Digest == 0 {
			t.Errorf("row %+v has zero schedule digest", r)
		}
	}
}
