package bench

import (
	"testing"

	"geompc/internal/hw"
)

func TestChaosAblationShape(t *testing.T) {
	rows, err := ChaosAblation(hw.SummitNode, 2, 16384, 2048, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(ConvConfigs()) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(ConvConfigs()))
	}
	for i := 0; i < len(rows); i += 2 {
		base, chaos := rows[i], rows[i+1]
		if base.Scenario != "fault-free" || chaos.Scenario != "chaos" || base.Config != chaos.Config {
			t.Fatalf("row pair %d mislabeled: %+v / %+v", i, base, chaos)
		}
		if chaos.DeviceFailures != 1 {
			t.Errorf("%s: DeviceFailures = %d, want 1", chaos.Config, chaos.DeviceFailures)
		}
		if chaos.Time <= base.Time {
			t.Errorf("%s: chaos time %g not above fault-free %g", chaos.Config, chaos.Time, base.Time)
		}
		if chaos.TimeOverheadPct <= 0 {
			t.Errorf("%s: TimeOverheadPct = %g, want > 0", chaos.Config, chaos.TimeOverheadPct)
		}
	}
	if _, err := ChaosAblation(hw.SummitNode, 1, 16384, 2048, ""); err == nil {
		t.Error("single-GPU chaos ablation must be rejected (no failover target)")
	}
	if _, err := ChaosAblation(hw.SummitNode, 2, 16384, 2048, "kill:dev=9,at=0.5"); err == nil {
		t.Error("out-of-range device in spec must be rejected")
	}
}

// TestConvSweepFaultsNoOp pins the golden no-op at the bench layer: an
// empty fault spec must reproduce ConvSweep exactly.
func TestConvSweepFaultsNoOp(t *testing.T) {
	a, err := ConvSweep(hw.SummitNode, 1, 1, []int{16384}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConvSweepFaults(hw.SummitNode, 1, 1, []int{16384}, 2048, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScalingFaultsSlowdown(t *testing.T) {
	base, err := StrongScaling([]int{1}, 16384, 2048)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := StrongScalingFaults([]int{1}, 16384, 2048, "slow:dev=0,from=0,to=1,x=8")
	if err != nil {
		t.Fatal(err)
	}
	if slow[0].Time <= base[0].Time {
		t.Errorf("slow-window run %g not above fault-free %g", slow[0].Time, base[0].Time)
	}
}
