package bench

// The SolverAblation pair times the two registered solve paths on the
// same phantom grid ({Auto, TTC} × two sizes on a 2-rank Summit node).
// Honest read of the committed numbers: on the *simulated* machine the
// cg rows win data motion and energy at these tolerances (~25× fewer
// network bytes, ~2× less energy — see cmd/ablation -solvers), but the
// *host* cost per point is ~5× the direct series' (ns_op in
// BENCH_kernels.json): 17 modeled iterations emit thousands of tiny
// SpMV/reduction tasks against the factorization's few large ones, and
// each chunk pays a plan compile. And the simulated advantage itself
// inverts once conditioning pushes the iteration count toward O(n) —
// the direct series' cost is condition-independent. The digest
// cross-check pins each series to one bit-exact schedule across b.N.

import (
	"testing"

	"geompc/internal/hw"
)

func solverAblationRun(b *testing.B, backend string) {
	sizes := []int{16384, 32768}
	var digests []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := solverAblation(hw.SummitNode, 2, 2, []string{backend}, sizes, 2048, SchedOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if digests == nil {
			digests = make([]uint64, len(rows))
			for j, r := range rows {
				digests[j] = r.Digest
			}
		} else {
			for j, r := range rows {
				if r.Digest != digests[j] {
					b.Fatalf("row %d digest %#016x differs from first run's %#016x", j, r.Digest, digests[j])
				}
			}
		}
	}
}

func BenchmarkSolverAblationDirect(b *testing.B) { solverAblationRun(b, "direct") }

func BenchmarkSolverAblationCG(b *testing.B) { solverAblationRun(b, "cg") }

func TestSolverAblationDeterministic(t *testing.T) {
	sizes := []int{16384}
	serial, err := SolverAblation(hw.SummitNode, 2, 2, sizes, 2048, SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 { // 2 backends × 2 strategies × 1 size
		t.Fatalf("grid has %d rows, want 4", len(serial))
	}
	par, err := SolverAblation(hw.SummitNode, 2, 2, sizes, 2048,
		SchedOpts{SweepOpts: SweepOpts{Workers: 4, EngineWorkers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("row counts differ: %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("row %d differs between serial and parallel sweep:\n  %+v\n  %+v", i, serial[i], par[i])
		}
	}
	var sawDirect, sawCG bool
	for _, r := range serial {
		switch r.Backend {
		case "direct":
			sawDirect = true
			if r.Iterations != 0 {
				t.Errorf("direct row reports %d iterations", r.Iterations)
			}
		case "cg":
			sawCG = true
			if r.Iterations <= 0 {
				t.Errorf("cg row reports %d iterations", r.Iterations)
			}
		}
		if r.Time <= 0 || r.Energy <= 0 || r.Digest == 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if !sawDirect || !sawCG {
		t.Fatalf("grid missing a backend: %+v", serial)
	}
}
