// Package bench implements the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§IV, §VII). The cmd/ binaries
// and the repository's testing.B benchmarks are thin wrappers over this
// package, so each experiment has exactly one implementation.
package bench

import (
	"geompc/internal/geo"
)

// App is one of the paper's three application configurations: a covariance
// family with representative parameters and the application-required
// accuracy the paper validates for it (§VII-B/C).
type App struct {
	Name   string
	Kernel geo.Kernel
	Theta  []float64
	// UReq is the accuracy threshold the paper uses for the app in its
	// performance studies: 1e-4 (2D-sqexp), 1e-9 (2D-Matérn), 1e-8
	// (3D-sqexp).
	UReq   float64
	Nugget float64
}

// Apps lists the paper's three applications in its canonical order.
func Apps() []App {
	return []App{
		{
			Name:   "2D-sqexp",
			Kernel: geo.SqExp{Dimension: 2},
			Theta:  []float64{1, 0.1},
			UReq:   1e-4,
			Nugget: 1e-7,
		},
		{
			Name:   "2D-Matern",
			Kernel: geo.Matern{Dimension: 2},
			Theta:  []float64{1, 0.1, 0.5},
			UReq:   1e-9,
			Nugget: 1e-7,
		},
		{
			Name:   "3D-sqexp",
			Kernel: geo.SqExp{Dimension: 3},
			Theta:  []float64{1, 0.1},
			UReq:   1e-8,
			Nugget: 1e-7,
		},
	}
}

// AppByName returns the application with the given name, or false.
func AppByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
