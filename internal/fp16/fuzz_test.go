package fp16

import (
	"math"
	"testing"
)

func FuzzFromFloat32(f *testing.F) {
	f.Add(float32(0))
	f.Add(float32(1))
	f.Add(float32(-1))
	f.Add(float32(65504))
	f.Add(float32(65520))
	f.Add(float32(6e-5))
	f.Add(float32(5.9e-8))
	f.Add(float32(math.Pi))
	f.Add(float32(math.Inf(1)))
	f.Fuzz(func(t *testing.T, x float32) {
		h := FromFloat32(x)
		back := h.ToFloat32()
		// Idempotence: the result must be exactly representable.
		if FromFloat32(back) != h && !h.IsNaN() {
			t.Fatalf("not idempotent: %g -> %#04x -> %g", x, h, back)
		}
		if math.IsNaN(float64(x)) {
			if !h.IsNaN() {
				t.Fatal("NaN lost")
			}
			return
		}
		// Error bound: |back - x| ≤ max(u*|x|, smallest subnormal) or
		// saturation to ±Inf beyond the overflow threshold.
		if math.IsInf(float64(back), 0) {
			if math.Abs(float64(x)) < 65520 {
				t.Fatalf("overflowed below threshold: %g", x)
			}
			return
		}
		bound := math.Abs(float64(x))*0x1p-11 + HalfSmallestSubnormal
		if d := math.Abs(float64(back) - float64(x)); d > bound*(1+1e-9) {
			t.Fatalf("error %g exceeds bound %g for input %g", d, bound, x)
		}
	})
}

func FuzzStochasticRounding(f *testing.F) {
	f.Add(float32(1.0001), 0.3)
	f.Add(float32(-7.77), 0.9)
	f.Add(float32(0), 0.0)
	f.Fuzz(func(t *testing.T, x float32, u float64) {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return
		}
		if math.Abs(float64(x)) > 65000 {
			return
		}
		u = math.Abs(math.Mod(u, 1))
		r := RoundStochastic(x, u)
		if RoundF32(r) != r {
			t.Fatalf("result %g not representable (input %g)", r, x)
		}
		// Result within one half ulp span of the input.
		span := math.Abs(float64(x))*0x1p-10 + HalfSmallestSubnormal
		if d := math.Abs(float64(r) - float64(x)); d > span*(1+1e-9) {
			t.Fatalf("result %g too far from %g", r, x)
		}
	})
}
