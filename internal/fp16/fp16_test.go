package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripExhaustive(t *testing.T) {
	// Every binary16 value must survive Half -> float32 -> Half unchanged
	// (modulo NaN payload, which only needs to stay a NaN).
	for i := 0; i <= 0xffff; i++ {
		h := Half(i)
		f := h.ToFloat32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("NaN %#04x round-tripped to non-NaN %#04x", i, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("half %#04x -> %g -> %#04x", i, f, back)
		}
	}
}

func TestFromFloat32Cases(t *testing.T) {
	cases := []struct {
		in   float32
		want Half
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // HalfMax
		{65505, 0x7bff},                 // rounds down to HalfMax
		{65520, 0x7c00},                 // ties away from max -> Inf
		{100000, 0x7c00},                // overflow -> +Inf
		{-100000, 0xfc00},               // overflow -> -Inf
		{6.103515625e-05, 0x0400},       // smallest normal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{2.9e-08, 0x0000},               // below half the smallest subnormal -> 0
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.in); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
	if !FromFloat32(float32(math.NaN())).IsNaN() {
		t.Error("FromFloat32(NaN) is not NaN")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; RNE keeps the even
	// significand, i.e. rounds down to 1.
	if got := Round(1 + 0x1p-11); got != 1 {
		t.Errorf("Round(1+2^-11) = %v, want 1 (ties-to-even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE rounds up to the
	// even significand 1+2^-9.
	if got := Round(1 + 3*0x1p-11); got != 1+0x1p-9 {
		t.Errorf("Round(1+3*2^-11) = %v, want %v", got, 1+0x1p-9)
	}
	// Just above the tie must round up.
	if got := Round(1 + 0x1p-11 + 0x1p-20); got != 1+0x1p-10 {
		t.Errorf("Round(1+2^-11+eps) = %v, want %v", got, 1+0x1p-10)
	}
}

func TestRoundErrorBound(t *testing.T) {
	// |round(x) - x| <= u*|x| with u = 2^-11 for normal-range values.
	if err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 60000)
		if math.Abs(x) < HalfMin {
			return true
		}
		r := Round(x)
		return math.Abs(r-x) <= 0x1p-11*math.Abs(x)*(1+1e-12)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBF16Round(t *testing.T) {
	cases := []struct{ in, want float32 }{
		{1, 1},
		{1 + 0x1p-8, 1}, // tie to even
		{1 + 0x1p-7, 1 + 0x1p-7},
		{3.14159265, 3.140625},
		{-3.14159265, -3.140625},
		{0, 0},
	}
	for _, c := range cases {
		if got := BF16Round(c.in); got != c.want {
			t.Errorf("BF16Round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(float64(BF16Round(float32(math.NaN())))) {
		t.Error("BF16Round(NaN) is not NaN")
	}
	if !math.IsInf(float64(BF16Round(float32(math.Inf(1)))), 1) {
		t.Error("BF16Round(+Inf) is not +Inf")
	}
}

func TestTF32Round(t *testing.T) {
	// TF32 keeps 10 significand bits: same precision as half, full f32 range.
	if got := TF32Round(1 + 0x1p-11); got != 1 {
		t.Errorf("TF32Round(1+2^-11) = %v, want 1", got)
	}
	if got := TF32Round(1 + 0x1p-10); got != 1+0x1p-10 {
		t.Errorf("TF32Round(1+2^-10) = %v, want 1+2^-10", got)
	}
	// Unlike FP16, TF32 must not overflow at 1e5.
	if got := TF32Round(1e5); math.IsInf(float64(got), 0) {
		t.Error("TF32Round(1e5) overflowed")
	}
	if !math.IsNaN(float64(TF32Round(float32(math.NaN())))) {
		t.Error("TF32Round(NaN) is not NaN")
	}
}

func TestBF16TF32Idempotent(t *testing.T) {
	if err := quick.Check(func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		return BF16Round(BF16Round(x)) == BF16Round(x) &&
			TF32Round(TF32Round(x)) == TF32Round(x) &&
			RoundF32(RoundF32(x)) == RoundF32(x)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHalfArithmetic(t *testing.T) {
	one := FromFloat32(1)
	eps := FromFloat32(HalfEps)
	if got := AddHalf(one, eps).ToFloat32(); got != 1+HalfEps {
		t.Errorf("1+eps = %v, want %v", got, 1+HalfEps)
	}
	// Half-precision accumulation absorbs tiny addends: 1 + eps/4 == 1.
	tiny := FromFloat32(HalfEps / 4)
	if got := AddHalf(one, tiny).ToFloat32(); got != 1 {
		t.Errorf("1+eps/4 = %v, want absorption to 1", got)
	}
	if got := MulHalf(FromFloat32(3), FromFloat32(7)).ToFloat32(); got != 21 {
		t.Errorf("3*7 = %v, want 21", got)
	}
}

func TestInfNaNPredicates(t *testing.T) {
	if !Half(0x7c00).IsInf() || !Half(0xfc00).IsInf() {
		t.Error("IsInf failed on infinities")
	}
	if Half(0x7c00).IsNaN() {
		t.Error("+Inf classified as NaN")
	}
	if !Half(0x7e00).IsNaN() {
		t.Error("quiet NaN not classified as NaN")
	}
	if Half(0x3c00).IsInf() || Half(0x3c00).IsNaN() {
		t.Error("1.0 misclassified")
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromFloat32(float32(i) * 0.001)
	}
}

func BenchmarkRoundF32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RoundF32(float32(i) * 0.001)
	}
}
