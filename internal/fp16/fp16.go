// Package fp16 provides bit-exact software emulation of the reduced-precision
// floating-point formats used by Nvidia tensor cores: IEEE 754 binary16
// ("half", FP16), bfloat16 (BF16), and TF32 (19-bit TensorFloat). All
// conversions use round-to-nearest-even, matching GPU hardware behaviour.
//
// The emulation is the foundation of the repository's accuracy experiments:
// a value "stored in FP16" is a float32/float64 whose significand has been
// rounded through the target format, so subsequent arithmetic observes
// exactly the quantization a GPU kernel would.
package fp16

import "math"

// Half is an IEEE 754 binary16 value in its raw bit representation:
// 1 sign bit, 5 exponent bits, 10 significand bits.
type Half uint16

// Binary16 format constants.
const (
	// HalfMax is the largest finite binary16 value, 65504.
	HalfMax = 65504.0
	// HalfMin is the smallest positive normal binary16 value, 2^-14.
	HalfMin = 6.103515625e-05
	// HalfSmallestSubnormal is the smallest positive binary16 value, 2^-24.
	HalfSmallestSubnormal = 5.960464477539063e-08
	// HalfEps is the binary16 machine epsilon 2^-10 (distance from 1 to the
	// next representable value). The unit roundoff is HalfEps/2 = 2^-11.
	HalfEps = 0x1p-10
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// saturating semantics matching CUDA __float2half_rn for NaN/Inf and
// overflow to ±Inf.
func FromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int32((b>>23)&0xff) - 127
	man := b & 0x7fffff

	switch {
	case exp == 128: // NaN or Inf
		if man != 0 {
			// Preserve a quiet NaN payload bit so the result is a NaN.
			return Half(sign | 0x7e00)
		}
		return Half(sign | 0x7c00)
	case exp > 15: // overflow to infinity
		return Half(sign | 0x7c00)
	case exp >= -14: // normal range
		// 13 bits of the float32 significand are discarded.
		mant16 := man >> 13
		round := man & 0x1fff
		h := sign | uint16(exp+15)<<10 | uint16(mant16)
		// Round to nearest even: round up if the discarded part exceeds half,
		// or equals half and the kept LSB is odd. Carry may overflow into the
		// exponent, which is exactly correct (1.111..×2^e -> 1.0×2^(e+1)).
		if round > 0x1000 || (round == 0x1000 && mant16&1 == 1) {
			h++
		}
		return Half(h)
	case exp >= -25: // subnormal range
		// Shift in the implicit leading 1, then align to the subnormal scale.
		man |= 0x800000
		shift := uint32(-exp - 14 + 13)
		mant16 := man >> shift
		rem := man & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		h := sign | uint16(mant16)
		if rem > half || (rem == half && mant16&1 == 1) {
			h++
		}
		return Half(h)
	default: // underflow to signed zero
		return Half(sign)
	}
}

// ToFloat32 converts a binary16 value to float32 exactly (the conversion is
// lossless; every binary16 value is representable in binary32).
func (h Half) ToFloat32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h) & 0x3ff

	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize by shifting the significand up.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | man<<13) // Inf/NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// IsNaN reports whether h is a NaN.
func (h Half) IsNaN() bool { return h&0x7c00 == 0x7c00 && h&0x3ff != 0 }

// IsInf reports whether h is an infinity.
func (h Half) IsInf() bool { return h&0x7fff == 0x7c00 }

// RoundF32 rounds a float32 through binary16 and back: the returned float32
// is the nearest binary16 value. This is the quantization applied to tile
// data "stored in FP16".
func RoundF32(f float32) float32 { return FromFloat32(f).ToFloat32() }

// Round rounds a float64 through binary16 and back.
func Round(f float64) float64 { return float64(FromFloat32(float32(f)).ToFloat32()) }

// BF16Round rounds a float32 to the nearest bfloat16 value (8 exponent bits,
// 7 significand bits) with round-to-nearest-even. NaNs are preserved.
func BF16Round(f float32) float32 {
	b := math.Float32bits(f)
	if b&0x7f800000 == 0x7f800000 { // Inf or NaN: truncation keeps class
		if b&0x7fffff != 0 {
			b |= 0x400000 // quiet the NaN so truncation cannot silence it
		}
		return math.Float32frombits(b &^ 0xffff)
	}
	lsb := (b >> 16) & 1
	b += 0x7fff + lsb
	return math.Float32frombits(b &^ 0xffff)
}

// TF32Round rounds a float32 to the nearest TF32 value (8 exponent bits,
// 10 significand bits) with round-to-nearest-even — the input quantization
// tensor cores apply in TF32 mode. NaNs are preserved.
func TF32Round(f float32) float32 {
	b := math.Float32bits(f)
	if b&0x7f800000 == 0x7f800000 {
		if b&0x7fffff != 0 {
			b |= 0x400000
		}
		return math.Float32frombits(b &^ 0x1fff)
	}
	lsb := (b >> 13) & 1
	b += 0xfff + lsb
	return math.Float32frombits(b &^ 0x1fff)
}

// AddHalf returns the binary16-rounded sum of two binary16 operands, i.e.
// a fused half-precision accumulate step as performed by pure-FP16 tensor
// core accumulation.
func AddHalf(a, b Half) Half {
	return FromFloat32(a.ToFloat32() + b.ToFloat32())
}

// MulHalf returns the binary16-rounded product of two binary16 operands.
func MulHalf(a, b Half) Half {
	return FromFloat32(a.ToFloat32() * b.ToFloat32())
}
