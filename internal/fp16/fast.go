package fp16

import "math"

// Fast binary16 rounding for the hot GEMM paths.
//
// The pure-FP16 tile kernel rounds its accumulator to binary16 after every
// multiply and every add. Doing that through FromFloat32/ToFloat32 costs two
// branchy conversion calls per operation; QuantF32 below performs the same
// round-to-nearest-even in a handful of branch-light bit operations and one
// float32 add/sub pair, small enough for the compiler to inline into the
// kernel loop. TestQuantF32Exhaustive proves bit-equivalence against the
// reference conversion over every binary16 operand and the full rounding
// boundary set.

const (
	signMask32 = 0x80000000
	// quantOverflow is the float32 bit pattern of 65520, the smallest
	// magnitude that rounds beyond HalfMax to infinity under RNE.
	quantOverflow = 0x477ff000
	// quantSubExp is the exponent field of 2^-14: inputs below the normal
	// binary16 range round at the fixed subnormal granularity 2^-24.
	quantSubExp = 0x38800000
)

// QuantF32 returns the nearest binary16 value of f as a float32, equal to
// FromFloat32(f).ToFloat32() bit-for-bit for every float32 input (including
// NaNs, which canonicalize to sign|0x7fc00000 exactly as the double
// conversion does). The rounding uses the sign-matched magic-number trick: for
// f with exponent e, adding ±2^(e+13) forces the float32 adder to round f at
// binary16's ulp 2^(e-10) with the hardware's round-to-nearest-even, and the
// subtraction is exact.
//
//geompc:hot
func QuantF32(f float32) float32 {
	b := math.Float32bits(f)
	sign := b & signMask32
	abs := b ^ sign
	if abs >= quantOverflow { // rounds past HalfMax: ±Inf, or NaN
		// Finite overflow and Inf map to ±Inf; NaNs canonicalize exactly
		// like FromFloat32→ToFloat32 (quiet, payload cleared, sign kept) so
		// iterated rounding stays bit-identical to the Half-typed path. The
		// shift term sets the quiet bit iff abs > 0x7f800000 (NaN).
		return math.Float32frombits(sign | 0x7f800000 | (0x7f800000-abs)>>31<<22)
	}
	// A zero result must keep f's sign (the subtraction yields +0 for
	// negative underflow); OR-ing the sign bit back is a no-op otherwise.
	m := math.Float32frombits(sign | quantMagic[abs>>23])
	return math.Float32frombits(math.Float32bits((f+m)-m) | sign)
}

// quantMagic maps a float32 exponent field (abs>>23) to the bits of the
// magic rounding constant 2^(e+13), clamped below at 2^-1 so inputs under
// the normal binary16 range round at the fixed subnormal granularity 2^-24.
// Entries at or above the overflow threshold are never read (the |f| ≥
// 65520 branch returns first).
var quantMagic [256]uint32

func init() {
	for e := range quantMagic {
		exp := uint32(e) << 23
		if exp < quantSubExp {
			exp = quantSubExp
		}
		quantMagic[e] = exp + 13<<23
	}
}

// halfToF32 tabulates ToFloat32 for every binary16 bit pattern, replacing
// the branchy (and, for subnormals, looping) conversion with one load in the
// kernel pack loops.
var halfToF32 [1 << 16]float32

func init() {
	for i := range halfToF32 {
		halfToF32[i] = Half(i).ToFloat32()
	}
}

// RoundF32Fast rounds a float32 through binary16 and back, bit-identical to
// RoundF32 for non-NaN inputs (NaNs keep their payload instead of being
// canonicalized; arithmetic on either representation quiets to the same
// canonical NaN).
func RoundF32Fast(f float32) float32 { return QuantF32(f) }

// ToFloat32Fast converts a binary16 value to float32 via table lookup,
// bit-identical to ToFloat32.
func ToFloat32Fast(h Half) float32 { return halfToF32[h] }
