package fp16

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestRoundStochasticBounds(t *testing.T) {
	// The result must always be one of the two binary16 neighbours.
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 5000; i++ {
		f := float32(rng.Float64()*200 - 100)
		r := RoundStochastic(f, rng.Float64())
		if RoundF32(r) != r {
			t.Fatalf("result %g is not a binary16 value (input %g)", r, f)
		}
		// |r - f| must be below one half-precision ulp of f.
		ulp := float32(math.Abs(float64(f))) * HalfEps * 2
		if ulp < HalfSmallestSubnormal {
			ulp = HalfSmallestSubnormal
		}
		if d := float32(math.Abs(float64(r - f))); d > ulp {
			t.Fatalf("result %g too far from %g (d=%g, ulp=%g)", r, f, d, ulp)
		}
	}
}

func TestRoundStochasticExactValuesUnchanged(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, f := range []float32{0, 1, -1, 0.5, 2048, HalfMax, -HalfMax} {
		for i := 0; i < 10; i++ {
			if got := RoundStochastic(f, rng.Float64()); got != f {
				t.Fatalf("exact value %g changed to %g", f, got)
			}
		}
	}
	if !math.IsNaN(float64(RoundStochastic(float32(math.NaN()), 0.5))) {
		t.Error("NaN not preserved")
	}
}

func TestRoundStochasticUnbiased(t *testing.T) {
	// E[round(f)] = f: the defining property of stochastic rounding.
	rng := rand.New(rand.NewPCG(3, 3))
	for _, f := range []float32{1.0001, -0.3333, 7.7, 1e-3} {
		var sum float64
		n := 60000
		for i := 0; i < n; i++ {
			sum += float64(RoundStochastic(f, rng.Float64()))
		}
		mean := sum / float64(n)
		ulp := math.Abs(float64(f)) * HalfEps
		if math.Abs(mean-float64(f)) > 0.03*ulp {
			t.Errorf("biased rounding of %g: mean %g (off by %.3g ulp)",
				f, mean, math.Abs(mean-float64(f))/ulp)
		}
	}
}

func TestRoundStochasticSaturation(t *testing.T) {
	// Values above HalfMax must not stochastically overflow to Inf.
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 100; i++ {
		r := RoundStochastic(65519.9, rng.Float64())
		if math.IsInf(float64(r), 0) {
			t.Fatal("stochastic rounding overflowed to Inf")
		}
	}
}

func TestRoundStochasticF32(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	f := 0.1 // not exactly representable in float32
	var sum float64
	n := 60000
	for i := 0; i < n; i++ {
		r := RoundStochasticF32(f, rng.Float64())
		if float64(float32(r)) != r {
			t.Fatal("result not a float32 value")
		}
		sum += r
	}
	mean := sum / float64(n)
	ulp := math.Abs(f) * 0x1p-23
	if math.Abs(mean-f) > 0.05*ulp {
		t.Errorf("biased f32 rounding: mean off by %.3g ulp", math.Abs(mean-f)/ulp)
	}
	// Exactly representable values unchanged.
	if RoundStochasticF32(0.5, 0.3) != 0.5 {
		t.Error("exact value changed")
	}
}
