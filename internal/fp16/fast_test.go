package fp16

import (
	"math"
	"testing"
)

// quantRef is the reference rounding the fast path must reproduce:
// QuantF32(f) must equal quantRef(f) bit-for-bit for every float32 f
// (NaNs canonicalize identically through both).
func quantRef(f float32) float32 { return FromFloat32(f).ToFloat32() }

func checkQuant(t *testing.T, f float32) {
	got, want := QuantF32(f), quantRef(f)
	if math.Float32bits(got) != math.Float32bits(want) {
		t.Fatalf("QuantF32(%g = %#08x) = %#08x, want %#08x",
			f, math.Float32bits(f), math.Float32bits(got), math.Float32bits(want))
	}
}

// TestQuantF32Exhaustive sweeps the float32 regions where the rounding logic
// can differ: every binary16 value (fixed points), the rounding-relevant
// mantissa space of every boundary exponent, and a strided sweep of the
// entire 2^32 input space.
func TestQuantF32Exhaustive(t *testing.T) {
	// 1. Every binary16 bit pattern is a fixed point (or canonical NaN).
	for i := 0; i < 1<<16; i++ {
		f := Half(i).ToFloat32()
		checkQuant(t, f)
		if !math.IsNaN(float64(f)) && QuantF32(f) != f {
			t.Fatalf("half %#04x (%g) is not a fixed point", i, f)
		}
	}

	// 2. Mantissa sweep over the boundary exponents: deep subnormal
	// (2^-27..2^-24), the subnormal/normal seam (2^-15..2^-13), mid-range,
	// the overflow seam (2^14..2^16), and the Inf/NaN exponent. The rounding
	// decision depends on the discarded low bits and the kept LSB, so the
	// low 14 mantissa bits are swept fully under a handful of high-bit
	// patterns (all-zero, carry-propagating all-ones, alternating).
	exps := []uint32{100 - 27, 100, 127 - 26, 127 - 25, 127 - 24, 127 - 15, 127 - 14, 127 - 13,
		127, 127 + 14, 127 + 15, 127 + 16, 255}
	his := []uint32{0, 1, 0x155, 0x1ff}
	for _, e := range exps {
		for sign := uint32(0); sign <= 1; sign++ {
			base := sign<<31 | e<<23
			for _, hi := range his {
				for lo := uint32(0); lo < 1<<14; lo++ {
					checkQuant(t, math.Float32frombits(base|hi<<14|lo))
				}
			}
		}
	}

	// 3. Strided sweep across all of float32 (odd stride hits every
	// exponent and a spread of rounding patterns).
	const stride = 10007
	for b := uint64(0); b < 1<<32; b += stride {
		checkQuant(t, math.Float32frombits(uint32(b)))
	}

	// 4. Signed zeros, underflow ties, the overflow knife-edge, specials.
	for _, f := range []float32{0, float32(math.Copysign(0, -1)),
		0x1p-24, 0x1p-25, -0x1p-25, 0x1p-26, -0x1p-26, 65504, 65519.996, -65519.996, 65520, -65520,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN())} {
		checkQuant(t, f)
	}
	if !math.Signbit(float64(QuantF32(float32(math.Copysign(0, -1))))) {
		t.Fatal("QuantF32(-0) lost the sign of zero")
	}
	if !math.Signbit(float64(QuantF32(-0x1p-26))) {
		t.Fatal("QuantF32 underflow of a negative value must keep the sign")
	}
}

// TestHalfFMAEquivalence drives the issue's operand-pair shapes: a full
// 2^16 sweep of one operand against a fixed partner set covering every
// value class, and a stratified full-cross sample for the add step —
// asserting the fast float32-held FMA steps match AddHalf/MulHalf exactly.
// NaN results compare by class only: which operand's payload a NaN multiply
// propagates is codegen-dependent, identically so for both paths.
func TestHalfFMAEquivalence(t *testing.T) {
	partners := []Half{
		0x0000, 0x8000, // ±0
		0x0001, 0x8001, 0x03ff, 0x83ff, // subnormal edges
		0x0400, 0x8400, // smallest normal
		0x3c00, 0xbc00, // ±1
		0x3c01, 0x4248, 0xc248, // 1+ulp, π-ish
		0x7bff, 0xfbff, // ±HalfMax
		0x7c00, 0xfc00, // ±Inf
		0x7e00, 0xfe01, // NaNs
		0x1000, 0x5000, 0x9000, 0xd000,
	}
	check := func(a, b Half) {
		af, bf := halfToF32[a], halfToF32[b]
		// Multiply step.
		fast := QuantF32(af * bf)
		want := MulHalf(a, b)
		if want.IsNaN() {
			if !FromFloat32(fast).IsNaN() {
				t.Fatalf("mul %#04x×%#04x: fast %#08x is not NaN", a, b, math.Float32bits(fast))
			}
		} else if math.Float32bits(fast) != math.Float32bits(want.ToFloat32()) {
			t.Fatalf("mul %#04x×%#04x: fast %#08x, want %#08x (half %#04x)",
				a, b, math.Float32bits(fast), math.Float32bits(want.ToFloat32()), want)
		}
		// Add (accumulate) step.
		fast = QuantF32(af + bf)
		wantAdd := AddHalf(a, b)
		if wantAdd.IsNaN() {
			if !FromFloat32(fast).IsNaN() {
				t.Fatalf("add %#04x+%#04x: fast %#08x is not NaN", a, b, math.Float32bits(fast))
			}
		} else if math.Float32bits(fast) != math.Float32bits(wantAdd.ToFloat32()) {
			t.Fatalf("add %#04x+%#04x: fast %#08x, want %#08x (half %#04x)",
				a, b, math.Float32bits(fast), math.Float32bits(wantAdd.ToFloat32()), wantAdd)
		}
	}
	// Full 2^16 sweep of operand a against every fixed partner, both orders.
	for i := 0; i < 1<<16; i++ {
		for _, p := range partners {
			check(Half(i), p)
			check(p, Half(i))
		}
	}
	// Stratified full cross: every 97th half pattern against every 89th —
	// co-prime strides make all exponent/sign combinations appear.
	for i := 0; i < 1<<16; i += 97 {
		for j := 0; j < 1<<16; j += 89 {
			check(Half(i), Half(j))
		}
	}
}

// TestToFloat32FastTable pins the lookup table against the reference
// conversion for every binary16 pattern.
func TestToFloat32FastTable(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Half(i)
		got, want := ToFloat32Fast(h), h.ToFloat32()
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("ToFloat32Fast(%#04x) = %#08x, want %#08x", i,
				math.Float32bits(got), math.Float32bits(want))
		}
	}
}
