package fp16

import "math"

// Stochastic rounding support for Monte-Carlo arithmetic (§V of the paper:
// the impact of reduced precision on an application is probed by evaluating
// it under randomized rounding and measuring the output spread).

// RoundStochastic rounds f to one of its two neighbouring binary16 values,
// choosing the upper neighbour with probability proportional to f's
// distance from the lower one; u must be uniform in [0, 1). Values exactly
// representable (and non-finite values) are returned unchanged.
func RoundStochastic(f float32, u float64) float32 {
	if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
		return f
	}
	lo := truncToHalf(f)
	if lo == f {
		return f
	}
	hi := nextHalfAway(lo, f)
	if math.Abs(float64(hi)) > HalfMax {
		// Saturate rather than stochastically overflow.
		return lo
	}
	p := (float64(f) - float64(lo)) / (float64(hi) - float64(lo))
	if u < p {
		return hi
	}
	return lo
}

// truncToHalf returns the binary16 value obtained by rounding f toward
// zero (the "lower" neighbour in magnitude).
func truncToHalf(f float32) float32 {
	h := FromFloat32(f)
	v := h.ToFloat32()
	if v == f {
		return v
	}
	// RNE may have rounded away from zero; step back if so.
	if abs32(v) > abs32(f) {
		return prevHalfTowardZero(h).ToFloat32()
	}
	return v
}

// nextHalfAway returns the binary16 neighbour of lo on the far side of f.
func nextHalfAway(lo, f float32) float32 {
	h := FromFloat32(lo)
	if f > lo {
		return nextHalfUp(h).ToFloat32()
	}
	return nextHalfDown(h).ToFloat32()
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// The binary16 bit layout makes magnitude-ordered stepping a simple
// integer increment/decrement on the payload.

func prevHalfTowardZero(h Half) Half {
	if h&0x7fff == 0 {
		return h // zero
	}
	return h - 1
}

func nextHalfUp(h Half) Half {
	if h&0x8000 == 0 {
		return h + 1 // positive: increment magnitude
	}
	if h == 0x8000 {
		return 0x0000 // -0 -> +0... next up of -0 is +smallest? step to +0
	}
	return h - 1 // negative: decrement magnitude
}

func nextHalfDown(h Half) Half {
	if h&0x8000 != 0 {
		return h + 1 // negative: increment magnitude
	}
	if h == 0x0000 {
		return 0x8001 // +0 -> smallest negative subnormal
	}
	return h - 1
}

// RoundStochastic64 applies stochastic binary16 rounding to a float64.
func RoundStochastic64(f float64, u float64) float64 {
	return float64(RoundStochastic(float32(f), u))
}

// RoundStochasticF32 rounds a float64 to a float32 neighbour stochastically
// (for probing FP32-level storage quantization).
func RoundStochasticF32(f float64, u float64) float64 {
	lo32 := float32(f)
	if float64(lo32) == f || math.IsNaN(f) || math.IsInf(f, 0) {
		return float64(lo32)
	}
	var hi32 float32
	if float64(lo32) < f {
		hi32 = math.Nextafter32(lo32, float32(math.Inf(1)))
	} else {
		lo32, hi32 = math.Nextafter32(lo32, float32(math.Inf(-1))), lo32
	}
	if float64(lo32) > f || float64(hi32) < f {
		// f outside [lo,hi] can only happen via rounding at the extremes;
		// fall back to nearest.
		return float64(float32(f))
	}
	p := (f - float64(lo32)) / (float64(hi32) - float64(lo32))
	if u < p {
		return float64(hi32)
	}
	return float64(lo32)
}
