package solver_test

import (
	"strings"
	"testing"

	"geompc/internal/obs"
	"geompc/internal/plan"
	"geompc/internal/runtime"
	"geompc/internal/solver"

	_ "geompc/internal/cg"       // registers "cg"
	_ "geompc/internal/cholesky" // registers "direct"
)

func TestNamesAndByName(t *testing.T) {
	names := solver.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"cg", "direct"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %s, missing %q", joined, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %s", joined)
		}
	}

	be, err := solver.ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "direct" {
		t.Errorf(`ByName("") = %q, want direct`, be.Name())
	}
	if _, err := solver.ByName("qr"); err == nil {
		t.Error("ByName accepted unknown backend qr")
	} else if !strings.Contains(err.Error(), "qr") {
		t.Errorf("error does not name the bad backend: %v", err)
	}
}

type fakeBackend struct{ name string }

func (f fakeBackend) Name() string { return f.name }
func (f fakeBackend) Solve(solver.Config) (*solver.Result, error) {
	return &solver.Result{Backend: f.name}, nil
}
func (f fakeBackend) SolveCached(cfg solver.Config, _ *plan.Cache) (*solver.Result, error) {
	return f.Solve(cfg)
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	solver.Register(fakeBackend{name: "direct"})
}

func TestRegisterNewName(t *testing.T) {
	solver.Register(fakeBackend{name: "fake-for-test"})
	be, err := solver.ByName("fake-for-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Solve(solver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "fake-for-test" {
		t.Errorf("Backend = %q", res.Backend)
	}
}

func TestStrategyString(t *testing.T) {
	if s := solver.Auto.String(); s != "STC" {
		t.Errorf("Auto.String() = %q, want STC", s)
	}
	if s := solver.ForceTTC.String(); s != "TTC" {
		t.Errorf("ForceTTC.String() = %q, want TTC", s)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &solver.Result{Stats: runtime.Stats{ScheduleDigest: 0xbeef}}
	if r.Digest() != 0xbeef {
		t.Errorf("Digest() = %#x", r.Digest())
	}
	if r.Metrics() == nil {
		t.Error("Metrics() returned nil for a nil registry")
	}
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	r.Reg = reg
	if got := r.Metrics().Counter("x").Value(); got != 1 {
		t.Errorf("Metrics() dropped the registry: x = %d", got)
	}
}
