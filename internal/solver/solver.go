// Package solver defines the pluggable solve-path layer: a Backend turns
// one covariance problem (tiling + precision maps + platform + optional
// numeric tiles and right-hand side) into a task graph, runs it through
// the deterministic engine (internal/runtime), and reports per-precision
// data motion, flops and accuracy through the engine's metrics registry
// (internal/obs).
//
// Two backends register here: "direct" (internal/cholesky — the paper's
// adaptive mixed-precision tile factorization) and "cg" (internal/cg — a
// preconditioned conjugate-gradient iteration with per-iteration precision
// switching). Both run the same platform models, scheduling policies,
// broadcast topologies, fault injectors and plan cache; they differ only
// in the DAG they emit. See DESIGN.md §6i.
package solver

import (
	"fmt"
	"sort"

	"geompc/internal/comm"
	"geompc/internal/obs"
	"geompc/internal/plan"
	"geompc/internal/prec"
	"geompc/internal/precmap"
	"geompc/internal/runtime"
	"geompc/internal/sched"
	"geompc/internal/tile"
)

// Strategy selects how communication precision is chosen. It lives here —
// shared by every backend — and internal/cholesky aliases it for
// compatibility.
type Strategy int

const (
	// Auto is the paper's automated conversion strategy: Algorithm 2's
	// comm-precision map decides STC vs TTC per task.
	Auto Strategy = iota
	// ForceTTC always sends at storage precision with receiver-side
	// conversion — the lower bound of Fig 8.
	ForceTTC
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == ForceTTC {
		return "TTC"
	}
	return "STC"
}

// IterParams tunes an iterative backend. The zero value picks the
// defaults below; direct backends ignore it.
type IterParams struct {
	// Tol is the convergence threshold on the relative residual
	// ‖r‖/‖b‖ (default 1e-10).
	Tol float64
	// MaxIters bounds the iteration count (default 500 in numeric mode;
	// phantom runs execute exactly MaxIters, default 24).
	MaxIters int
	// Chunk is the number of iterations emitted per engine run (default
	// 4): convergence is checked deterministically at chunk boundaries,
	// and the plan cache keys on one chunk's precision schedule.
	Chunk int
	// Ladder is the precision set the per-iteration switch rule draws
	// from (default prec.CholeskySet).
	Ladder []prec.Precision
	// Rate is the modeled per-iteration residual reduction used to pick
	// each iteration's precision ahead of the chunk (and, in phantom
	// mode, to synthesize the residual trajectory). Default 0.25.
	Rate float64
	// Safety is the margin of the precision-switch rule: iteration t may
	// run in the lowest ladder precision p with eps(p) ≤ relres(t)/Safety
	// (default 8).
	Safety float64
	// Precond selects the preconditioner: "" or "jacobi" for the tile-
	// diagonal Jacobi preconditioner, "none" for the identity (what the
	// stochastic Lanczos log-det probes need).
	Precond string
}

// Config describes one solve. It mirrors the direct backend's historical
// cholesky.Config field-for-field and adds the right-hand side and the
// iterative-backend knobs.
type Config struct {
	// Desc is the tiling and process-grid layout.
	Desc tile.Desc
	// Maps holds the kernel/storage/comm precision maps.
	Maps *precmap.Maps
	// Platform is the simulated machine.
	Platform *runtime.Platform
	// Matrix, when non-nil, holds real tile data and enables numeric
	// execution; nil runs in phantom (cost-only) mode.
	Matrix *tile.Matrix
	// RHS is the right-hand side b of Σx = b. Numeric iterative solves
	// require it; the direct backend factorizes without it and solves
	// when it is present.
	RHS []float64
	// Strategy selects Auto (Algorithm 2) or ForceTTC communication.
	Strategy Strategy
	// Trace enables per-interval occupancy/power recording and the
	// labeled Result.Schedule timeline.
	Trace bool
	// Audit enables the runtime's invariant auditor; implies Trace.
	Audit bool
	// Lookahead overrides the engine's stream pipeline depth (default 2).
	Lookahead int
	// Faults arms the run with a deterministic fault plan.
	Faults runtime.FaultInjector
	// Sched selects the engine's scheduling policy (nil = sched.FIFO{}).
	Sched sched.Policy
	// Bcast selects the inter-rank broadcast topology (nil = binomial).
	Bcast comm.Topology
	// EngineWorkers selects the engine's execution mode: 0 serial event
	// loop, n > 0 conservative parallel DES, -1 GOMAXPROCS.
	EngineWorkers int
	// Iter tunes iterative backends (ignored by direct ones).
	Iter IterParams
}

// ScheduledTask is one labeled entry of a Trace-enabled run's timeline.
type ScheduledTask struct {
	Name       string
	Device     int
	Start, End float64
}

// Result reports a completed solve, backend-agnostically.
type Result struct {
	// Stats aggregates the engine statistics of every run the solve
	// issued (iterative backends sum their chunks; ScheduleDigest folds
	// chunk digests in order).
	Stats runtime.Stats
	// Backend is the registered name of the backend that produced this.
	Backend string
	// Strategy echoes the communication strategy of the run.
	Strategy Strategy
	// Iterations is the iteration count (0 for direct backends).
	Iterations int
	// Residual is the final relative residual ‖r‖/‖b‖ — measured in
	// numeric mode, modeled in phantom mode; 0 for direct backends.
	Residual float64
	// Converged reports whether an iterative solve met Tol within
	// MaxIters; direct backends set it to Err == nil.
	Converged bool
	// Solution holds x when a numeric solve was asked for (RHS set).
	Solution []float64
	// Err is the first numeric failure (non-SPD pivot, CG breakdown),
	// nil on success or in phantom mode.
	Err error
	// Reg is the merged metrics registry of the solve; may be nil.
	Reg *obs.Registry
	// Schedule is the labeled timeline of a Trace-enabled run (start-
	// time ordered), nil otherwise.
	Schedule []ScheduledTask
}

// Digest returns the solve's schedule digest.
func (r *Result) Digest() uint64 { return r.Stats.ScheduleDigest }

// Metrics returns the solve's metrics registry, never nil.
func (r *Result) Metrics() *obs.Registry {
	if r.Reg == nil {
		return obs.NewRegistry()
	}
	return r.Reg
}

// Backend is one pluggable solve path. Implementations must be
// deterministic: equal Configs produce bit-identical Stats, digests and
// Solutions at every EngineWorkers setting.
type Backend interface {
	// Name is the registered CLI spelling ("direct", "cg").
	Name() string
	// Solve runs cfg through the engine.
	Solve(cfg Config) (*Result, error)
	// SolveCached is Solve through a compiled-plan cache: repeated shapes
	// replay their frozen schedule (armed fault runs bypass). A nil cache
	// degrades to Solve.
	SolveCached(cfg Config, c *plan.Cache) (*Result, error)
}

var backends = map[string]Backend{}

// Register installs a backend under its Name. Backends register from
// their package init; duplicate names are a programming error.
func Register(b Backend) {
	name := b.Name()
	if _, dup := backends[name]; dup {
		panic("solver: duplicate backend " + name)
	}
	backends[name] = b
}

// ByName resolves a backend by its registered name; "" means "direct".
func ByName(name string) (Backend, error) {
	if name == "" {
		name = "direct"
	}
	if b, ok := backends[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("solver: unknown backend %q (have %v)", name, Names())
}

// Names lists the registered backends, sorted.
func Names() []string {
	var names []string
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
