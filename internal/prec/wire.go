package prec

// Wire maps a precision to the element format actually on the wire: the
// half-input precisions (FP16, FP16x32) share the binary16 representation,
// and the truncated-FP32 formats (TF32, BF16x32) travel as full FP32 words
// — the hardware packs their inputs from 32-bit registers. Both solver
// backends use this mapping when charging transfers and conversions, so
// their per-precision byte counters are directly comparable.
func Wire(p Precision) Precision {
	switch p {
	case FP64:
		return FP64
	case FP32, TF32:
		return FP32
	default:
		return FP16
	}
}
