// Package prec defines the floating-point precision formats the framework
// can store, compute, and communicate in, together with their unit
// roundoffs, storage widths and conversion rules.
//
// The formats mirror §IV of the paper: FP64, FP32, TF32, FP16_32 (half
// inputs, float32 compute), BF16_32 (bfloat16 inputs, float32 compute) and
// FP16 (half inputs, half compute). The adaptive Cholesky framework uses the
// subset {FP64, FP32, FP16_32, FP16}; TF32 and BF16_32 appear only in the
// GEMM benchmark (Fig 1).
package prec

import "fmt"

// Precision identifies a floating-point format for storage, computation or
// communication. The zero value is FP64. Values are ordered from highest
// precision (FP64) to lowest (FP16): p1 < p2 means p1 is *higher* precision.
type Precision uint8

const (
	// FP64 is IEEE binary64.
	FP64 Precision = iota
	// FP32 is IEEE binary32.
	FP32
	// TF32 is Nvidia TensorFloat-32: float32 range, 10-bit significand
	// inputs, float32 accumulation.
	TF32
	// BF16x32 (BF16_32 in the paper) uses bfloat16 inputs with float32
	// accumulation.
	BF16x32
	// FP16x32 (FP16_32 in the paper) uses binary16 inputs with float32
	// accumulation.
	FP16x32
	// FP16 uses binary16 inputs, outputs, and accumulation.
	FP16
	numPrecisions
)

// Count is the number of defined precision formats.
const Count = int(numPrecisions)

// String returns the paper's name for the format.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "FP64"
	case FP32:
		return "FP32"
	case TF32:
		return "TF32"
	case BF16x32:
		return "BF16_32"
	case FP16x32:
		return "FP16_32"
	case FP16:
		return "FP16"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p)) //geompc:nolint hotalloc invalid-format diagnostic only; every defined format returns a constant
	}
}

// Valid reports whether p is a defined format.
func (p Precision) Valid() bool { return p < numPrecisions }

// Unit roundoffs. FP16_32 and BF16_32 do not have a classical machine
// epsilon: their error bound is dominated by input quantization but improved
// by exact float32 accumulation (Blanchard et al. 2020). Following §VII-A,
// the framework uses an experimentally determined effective epsilon for
// FP16_32, smaller than pure FP16's.
const (
	epsFP64    = 0x1p-53
	epsFP32    = 0x1p-24
	epsTF32    = 0x1p-11
	epsBF16x32 = 0x1p-9  // 8-bit significand input quantization
	epsFP16x32 = 0x1p-13 // effective, per §VII-A (between u16 and u32)
	epsFP16    = 0x1p-11
)

// Eps returns the unit roundoff u_low used in the Higham–Mary tile-selection
// rule ‖A_ij‖·NT/‖A‖ ≤ u_req/u_low.
func (p Precision) Eps() float64 {
	switch p {
	case FP64:
		return epsFP64
	case FP32:
		return epsFP32
	case TF32:
		return epsTF32
	case BF16x32:
		return epsBF16x32
	case FP16x32:
		return epsFP16x32
	case FP16:
		return epsFP16
	default:
		panic("prec: invalid precision " + p.String())
	}
}

// InputBytes returns the storage width in bytes of one matrix element held
// in this format's *input* representation — the width that matters for
// network and host-to-device transfers.
func (p Precision) InputBytes() int {
	switch p {
	case FP64:
		return 8
	case FP32, TF32:
		return 4
	case BF16x32, FP16x32, FP16:
		return 2
	default:
		panic("prec: invalid precision " + p.String())
	}
}

// StoragePrecision returns the precision a tile whose kernels run in p is
// stored in. Per §V, FP16_32 and FP16 are supported only by the GEMM kernel
// on Nvidia GPUs; TRSM must run in FP32 on those tiles, so the tile is
// generated and stored in FP32.
func (p Precision) StoragePrecision() Precision {
	switch p {
	case FP64:
		return FP64
	case FP32, TF32, BF16x32, FP16x32, FP16:
		return FP32
	default:
		panic("prec: invalid precision " + p.String())
	}
}

// Lower reports whether p is a lower precision (larger unit roundoff) than q.
func (p Precision) Lower(q Precision) bool { return p.Eps() > q.Eps() }

// Higher returns the higher-precision (smaller roundoff) of p and q. It is
// the get_higher_precision helper of Algorithm 2.
func Higher(p, q Precision) Precision {
	if p.Eps() <= q.Eps() {
		return p
	}
	return q
}

// Lowest returns the lower-precision of p and q.
func Lowest(p, q Precision) Precision {
	if p.Eps() >= q.Eps() {
		return p
	}
	return q
}

// CholeskySet is the precision ladder the adaptive Cholesky framework
// selects from, ordered highest to lowest (§IV's conclusion: FP64, FP32,
// FP16_32, FP16; BF16_32 dropped for performance parity with FP16_32, TF32
// subsumed by FP16_32 behaviour).
var CholeskySet = []Precision{FP64, FP32, FP16x32, FP16}

// All lists every defined format, highest precision first.
var All = []Precision{FP64, FP32, TF32, BF16x32, FP16x32, FP16}
