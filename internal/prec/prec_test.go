package prec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	// The ladder must be strictly ordered by unit roundoff.
	ladder := CholeskySet
	for i := 1; i < len(ladder); i++ {
		if !(ladder[i].Eps() > ladder[i-1].Eps()) {
			t.Errorf("%v (eps=%g) not lower precision than %v (eps=%g)",
				ladder[i], ladder[i].Eps(), ladder[i-1], ladder[i-1].Eps())
		}
	}
	if !FP16.Lower(FP64) || FP64.Lower(FP16) {
		t.Error("Lower comparison wrong for FP16/FP64")
	}
	if Higher(FP16, FP32) != FP32 || Higher(FP64, FP16x32) != FP64 {
		t.Error("Higher selection wrong")
	}
	if Lowest(FP16, FP32) != FP16 || Lowest(FP64, FP64) != FP64 {
		t.Error("Lowest selection wrong")
	}
}

func TestInputBytes(t *testing.T) {
	want := map[Precision]int{FP64: 8, FP32: 4, TF32: 4, BF16x32: 2, FP16x32: 2, FP16: 2}
	for p, w := range want {
		if got := p.InputBytes(); got != w {
			t.Errorf("%v.InputBytes() = %d, want %d", p, got, w)
		}
	}
	if Bytes(1024, FP16) != 2048 {
		t.Error("Bytes(1024, FP16) != 2048")
	}
}

func TestStoragePrecision(t *testing.T) {
	// §V: FP16-family tiles are stored in FP32 because TRSM cannot run below
	// FP32 on the considered hardware.
	if FP64.StoragePrecision() != FP64 {
		t.Error("FP64 storage must be FP64")
	}
	for _, p := range []Precision{FP32, FP16x32, FP16, TF32, BF16x32} {
		if p.StoragePrecision() != FP32 {
			t.Errorf("%v storage = %v, want FP32", p, p.StoragePrecision())
		}
	}
}

func TestString(t *testing.T) {
	names := map[Precision]string{
		FP64: "FP64", FP32: "FP32", TF32: "TF32",
		BF16x32: "BF16_32", FP16x32: "FP16_32", FP16: "FP16",
	}
	for p, w := range names {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), w)
		}
		if !p.Valid() {
			t.Errorf("%v not Valid()", p)
		}
	}
	if Precision(99).Valid() {
		t.Error("Precision(99) reported Valid")
	}
}

func TestQuantizeFP64IsIdentity(t *testing.T) {
	x := []float64{1, math.Pi, -2.5e300, 3e-308}
	y := QuantizeCopy(x, FP64)
	for i := range x {
		if x[i] != y[i] {
			t.Errorf("FP64 quantize changed x[%d]", i)
		}
	}
}

func TestQuantizeErrorBounds(t *testing.T) {
	// For values in the representable range, |q(x)-x| <= 2*eps*|x| for each
	// format (eps here is the table's u_low; factor 2 covers eps-vs-u
	// convention).
	formats := []Precision{FP32, TF32, BF16x32, FP16x32, FP16}
	if err := quick.Check(func(v float64) bool {
		x := math.Mod(v, 1000)
		if math.Abs(x) < 1e-3 {
			return true
		}
		for _, p := range formats {
			q := QuantizeCopy([]float64{x}, p)[0]
			if math.Abs(q-x) > 2*p.Eps()*math.Abs(x) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	if err := quick.Check(func(v float64) bool {
		x := math.Mod(v, 60000)
		for _, p := range All {
			q1 := QuantizeCopy([]float64{x}, p)
			q2 := QuantizeCopy(q1, p)
			if q1[0] != q2[0] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeMonotonePrecision(t *testing.T) {
	// Quantizing to a higher precision must never be worse than to a lower
	// one on the Cholesky ladder.
	xs := []float64{1.000244140625001, math.Pi, 0.1, 123.456, -7.89}
	for _, x := range xs {
		prevErr := 0.0
		for _, p := range CholeskySet {
			q := QuantizeCopy([]float64{x}, p)[0]
			e := math.Abs(q - x)
			if e+1e-18 < prevErr {
				t.Errorf("x=%v: error at %v (%g) below previous ladder step (%g)", x, p, e, prevErr)
			}
			prevErr = e
		}
	}
}

func TestQuantizeStochastic(t *testing.T) {
	// The upper neighbour is chosen when u < p (p = fractional position),
	// so u=0 forces up for any interior point and u≈1 forces down.
	g := func() float64 { return 0.999999 }
	x := []float64{1 + 0x1p-13}
	QuantizeStochastic(x, FP16, g)
	if x[0] != 1 {
		t.Errorf("forced round-down gave %v, want 1", x[0])
	}
	y := []float64{1 + 0x1p-13}
	QuantizeStochastic(y, FP16, func() float64 { return 0 })
	if y[0] != 1+0x1p-10 {
		t.Errorf("forced round-up gave %v, want %v", y[0], 1+0x1p-10)
	}
	// FP64 identity.
	z := []float64{math.Pi}
	QuantizeStochastic(z, FP64, g)
	if z[0] != math.Pi {
		t.Error("FP64 stochastic quantize not identity")
	}
	// Results are representable in the target format.
	rng := stats0()
	w := make([]float64, 100)
	for i := range w {
		w[i] = rng()
	}
	QuantizeStochastic(w, FP32, rng)
	for _, v := range w {
		if float64(float32(v)) != v {
			t.Fatal("FP32 stochastic result not a float32")
		}
	}
}

// stats0 returns a tiny deterministic uniform generator for tests.
func stats0() func() float64 {
	s := uint64(88172645463325252)
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000000) / 1000000
	}
}
