package prec

import "geompc/internal/fp16"

// Quantize rounds every element of x through the input representation of
// precision p, in place, and returns x. A tile "converted to FP16" for
// communication is exactly its FP16-quantized values; converting back up is
// lossless, so quantization is the complete numerical effect of a precision
// down-cast.
func Quantize(x []float64, p Precision) []float64 {
	switch p {
	case FP64:
		return x
	case FP32:
		for i, v := range x {
			x[i] = float64(float32(v))
		}
	case TF32:
		for i, v := range x {
			x[i] = float64(fp16.TF32Round(float32(v)))
		}
	case BF16x32:
		for i, v := range x {
			x[i] = float64(fp16.BF16Round(float32(v)))
		}
	case FP16x32, FP16:
		for i, v := range x {
			x[i] = fp16.Round(v)
		}
	default:
		panic("prec: invalid precision " + p.String())
	}
	return x
}

// QuantizeCopy returns a fresh slice holding x quantized to p.
func QuantizeCopy(x []float64, p Precision) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return Quantize(out, p)
}

// Bytes returns the number of bytes n elements occupy in precision p's
// input representation.
func Bytes(n int, p Precision) int64 { return int64(n) * int64(p.InputBytes()) }

// QuantizeStochastic rounds every element of x to a neighbouring value of
// precision p's input representation using stochastic rounding driven by
// uniform — the Monte-Carlo arithmetic mode (§V) used to probe how much a
// precision level perturbs an application. uniform must yield independent
// U[0,1) variates. FP64 is an identity.
func QuantizeStochastic(x []float64, p Precision, uniform func() float64) []float64 {
	switch p {
	case FP64:
		return x
	case FP32, TF32:
		for i, v := range x {
			x[i] = fp16.RoundStochasticF32(v, uniform())
		}
	case BF16x32, FP16x32, FP16:
		for i, v := range x {
			x[i] = fp16.RoundStochastic64(v, uniform())
		}
	default:
		panic("prec: invalid precision " + p.String())
	}
	return x
}
