package sched

// Locality keeps FIFO's queue order but re-places each ready task onto the
// same-rank device already holding the most bytes of the task's inputs and
// output — deviating from the owner-computes home only when another device
// holds *strictly* more. Following the data cuts H2D restaging: a consumer
// landing where its tiles already sit stages nothing, where FIFO would
// re-fetch them from the rank's host memory.
//
// The scan is deterministic (ascending device id, strict improvement), so
// schedules remain reproducible; and because placement never crosses ranks,
// every input is still reachable from the rank's host copies.
type Locality struct{}

func (Locality) Name() string         { return "locality" }
func (Locality) Hints() Hints         { return NeedPlacement }
func (Locality) Before(a, b Key) bool { return fifoBefore(a, b) }

// Place runs once per ready task; it must stay allocation-free.
//
//geompc:hot
func (Locality) Place(home int, inputs []DataRef, m Machine) int {
	per := m.DevPerRank()
	if per <= 1 || len(inputs) == 0 {
		return home
	}
	base := m.RankOf(home) * per
	best := home
	var bestScore int64
	for _, ref := range inputs {
		bestScore += m.ResidentBytes(home, ref.Data)
	}
	for i := 0; i < per; i++ {
		dev := base + i
		if dev == home || !m.Alive(dev) {
			continue
		}
		var score int64
		for _, ref := range inputs {
			score += m.ResidentBytes(dev, ref.Data)
		}
		if score > bestScore {
			best, bestScore = dev, score
		}
	}
	return best
}

func (Locality) Failover(key int64, alive []int) int { return DefaultFailover(key, alive) }

// CriticalPath orders each ready queue by the task's critical-path length —
// the longest chain of tasks depending on it — so work that gates the most
// downstream parallelism drains first (the static-priority scheme of the
// out-of-core Cholesky scheduling literature). Placement and failover stay
// the FIFO defaults; ties fall back to the graph's own priorities, then id.
type CriticalPath struct{}

func (CriticalPath) Name() string { return "cp" }
func (CriticalPath) Hints() Hints { return NeedCriticalPath }

func (CriticalPath) Before(a, b Key) bool {
	if a.CP != b.CP {
		return a.CP > b.CP
	}
	return fifoBefore(a, b)
}

func (CriticalPath) Place(home int, _ []DataRef, _ Machine) int { return home }
func (CriticalPath) Failover(key int64, alive []int) int        { return DefaultFailover(key, alive) }
