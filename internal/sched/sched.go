// Package sched defines the runtime engine's pluggable scheduling policy:
// how ready tasks are ordered on each device's queue, whether a ready task
// may execute on a different same-rank device than its owner-computes home,
// and which survivor inherits work when a device fails.
//
// Policies are consulted identically by the PTG and DTD front-ends and by
// the fault-recovery failover path, and they are strictly about *placement
// and order in virtual time*: numeric task bodies run exactly once whatever
// the policy, so every policy produces the bit-identical factor. FIFO is
// the engine's historical behavior — under it (and the default broadcast
// topology) schedules are bit-for-bit the same as before this package
// existed, which the pinned golden digests prove.
package sched

import "fmt"

// Key is the ordering key of one ready task.
type Key struct {
	ID       int
	Priority int64
	// CP is the task's critical-path length (longest downstream chain,
	// in tasks, including itself). Filled only for policies that request
	// NeedCriticalPath; 0 otherwise.
	CP int64
}

// DataRef names one datum a task touches, with its device-resident size.
type DataRef struct {
	Data  int64
	Bytes int64
}

// Machine is the read-only view of the simulated platform a policy may
// consult. Implementations are engine-backed and must stay allocation-free.
type Machine interface {
	NumDevices() int
	DevPerRank() int
	RankOf(dev int) int
	// Alive reports whether the device has not been killed by a fault.
	Alive(dev int) bool
	// ResidentBytes returns the bytes of datum data currently resident on
	// dev (0 when absent).
	ResidentBytes(dev int, data int64) int64
	// QueueLen is the device's current ready-queue depth.
	QueueLen(dev int) int
}

// Hints declares which optional (and non-free) engine features a policy
// needs; the engine skips the corresponding work entirely for policies that
// don't ask.
type Hints uint8

const (
	// NeedCriticalPath requests Key.CP: an O(V+E) reverse pass over the
	// graph before the run starts.
	NeedCriticalPath Hints = 1 << iota
	// NeedPlacement requests that Place be consulted for every ready task
	// (with its input/output DataRefs gathered).
	NeedPlacement
)

// Policy decides ready-queue order, device placement and failover. All
// methods must be deterministic pure functions of their arguments.
type Policy interface {
	Name() string
	Hints() Hints
	// Before reports whether task a should run before task b when both are
	// ready on the same device. It must be a strict weak ordering and total
	// (break ties by ID) to keep the simulation deterministic.
	Before(a, b Key) bool
	// Place returns the device a ready task should execute on. home is the
	// owner-computes placement; the result must be a device of the same
	// rank (host tile copies live per rank — the engine clamps violations
	// back to home). Only consulted when Hints has NeedPlacement.
	Place(home int, inputs []DataRef, m Machine) int
	// Failover picks the same-rank survivor that inherits work keyed by
	// key (the task's output datum, or its id) from a failed device; alive
	// is the non-empty, ascending list of the rank's surviving devices.
	Failover(key int64, alive []int) int
}

// fifoBefore is the engine's historical ready order: descending priority,
// ties broken by ascending task id.
//
//geompc:hot
func fifoBefore(a, b Key) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.ID < b.ID
}

// DefaultFailover is the engine's historical failover: the |key|-th
// survivor, round-robin — deterministic, and stable for a given key, so an
// accumulation chain's replays all land on one device.
func DefaultFailover(key int64, alive []int) int {
	if len(alive) == 0 {
		return -1
	}
	if key < 0 {
		key = -key
	}
	return alive[int(key%int64(len(alive)))]
}

// FIFO is the default policy and the engine's historical behavior:
// owner-computes placement, priority/id queue order, round-robin failover.
type FIFO struct{}

func (FIFO) Name() string                               { return "fifo" }
func (FIFO) Hints() Hints                               { return 0 }
func (FIFO) Before(a, b Key) bool                       { return fifoBefore(a, b) }
func (FIFO) Place(home int, _ []DataRef, _ Machine) int { return home }
func (FIFO) Failover(key int64, alive []int) int        { return DefaultFailover(key, alive) }

// Policies returns every built-in policy, default first.
func Policies() []Policy {
	return []Policy{FIFO{}, Locality{}, CriticalPath{}}
}

// ByName resolves "fifo", "locality" or "cp"/"critical-path". The empty
// string resolves to the default (fifo).
func ByName(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return FIFO{}, nil
	case "locality":
		return Locality{}, nil
	case "cp", "critical-path", "criticalpath":
		return CriticalPath{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want fifo, locality or cp)", name)
}
