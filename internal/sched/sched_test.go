package sched

import (
	"sort"
	"testing"
)

// fakeMachine is a 1-rank, 3-device machine with a settable residency table.
type fakeMachine struct {
	per      int
	dead     map[int]bool
	resident map[int]map[int64]int64 // dev -> data -> bytes
}

func (m *fakeMachine) NumDevices() int  { return m.per }
func (m *fakeMachine) DevPerRank() int  { return m.per }
func (m *fakeMachine) RankOf(d int) int { return d / m.per }
func (m *fakeMachine) Alive(d int) bool { return !m.dead[d] }
func (m *fakeMachine) QueueLen(int) int { return 0 }
func (m *fakeMachine) ResidentBytes(dev int, data int64) int64 {
	return m.resident[dev][data]
}

func TestFIFOOrderMatchesHistoricalHeap(t *testing.T) {
	// Descending priority, ascending id — the engine's historical total
	// order.
	keys := []Key{
		{ID: 3, Priority: 10},
		{ID: 1, Priority: 10},
		{ID: 0, Priority: 5},
		{ID: 2, Priority: 20},
	}
	sort.Slice(keys, func(i, j int) bool { return FIFO{}.Before(keys[i], keys[j]) })
	want := []int{2, 1, 3, 0}
	for i, k := range keys {
		if k.ID != want[i] {
			t.Fatalf("order %v, want ids %v", keys, want)
		}
	}
}

func TestCriticalPathOrder(t *testing.T) {
	p := CriticalPath{}
	a := Key{ID: 9, Priority: 1, CP: 50}
	b := Key{ID: 1, Priority: 99, CP: 3}
	if !p.Before(a, b) {
		t.Error("longer critical path must win over priority")
	}
	// CP ties fall back to FIFO order.
	c := Key{ID: 2, Priority: 7, CP: 3}
	if !p.Before(c, b.withPriority(5)) {
		t.Error("CP tie must fall back to priority")
	}
}

func (k Key) withPriority(p int64) Key { k.Priority = p; return k }

func TestLocalityPlacement(t *testing.T) {
	m := &fakeMachine{per: 3, dead: map[int]bool{}, resident: map[int]map[int64]int64{
		0: {},
		1: {7: 4096, 8: 4096},
		2: {7: 1024},
	}}
	refs := []DataRef{{Data: 7, Bytes: 4096}, {Data: 8, Bytes: 4096}}
	if got := (Locality{}).Place(0, refs, m); got != 1 {
		t.Errorf("Place = dev%d, want dev1 (holds both inputs)", got)
	}
	// Strict improvement only: equal scores keep the owner-computes home.
	m.resident[0] = map[int64]int64{7: 4096, 8: 4096}
	if got := (Locality{}).Place(0, refs, m); got != 0 {
		t.Errorf("Place = dev%d, want home dev0 on tie", got)
	}
	// Dead devices are never chosen.
	m.resident[0] = map[int64]int64{}
	m.dead[1] = true
	if got := (Locality{}).Place(0, refs, m); got != 2 {
		t.Errorf("Place = dev%d, want dev2 (dev1 dead)", got)
	}
	// No inputs, or a single-device rank: stay home.
	if got := (Locality{}).Place(0, nil, m); got != 0 {
		t.Errorf("Place with no inputs = dev%d, want 0", got)
	}
}

func TestDefaultFailover(t *testing.T) {
	alive := []int{2, 4, 5}
	for key, want := range map[int64]int{0: 2, 1: 4, 2: 5, 3: 2, -4: 4} {
		if got := DefaultFailover(key, alive); got != want {
			t.Errorf("DefaultFailover(%d) = %d, want %d", key, got, want)
		}
	}
	if got := DefaultFailover(1, nil); got != -1 {
		t.Errorf("DefaultFailover on empty = %d, want -1", got)
	}
	// Every built-in policy uses the same deterministic failover.
	for _, p := range Policies() {
		if got := p.Failover(5, alive); got != DefaultFailover(5, alive) {
			t.Errorf("%s.Failover diverges from DefaultFailover", p.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range Policies() {
		got, err := ByName(want.Name())
		if err != nil || got.Name() != want.Name() {
			t.Errorf("ByName(%q) = %v, %v", want.Name(), got, err)
		}
	}
	if def, err := ByName(""); err != nil || def.Name() != "fifo" {
		t.Errorf("ByName(\"\") = %v, %v; want fifo", def, err)
	}
	if cp, err := ByName("critical-path"); err != nil || cp.Name() != "cp" {
		t.Errorf("ByName(critical-path) = %v, %v", cp, err)
	}
	if _, err := ByName("random"); err == nil {
		t.Error("ByName(random) succeeded, want error")
	}
}
