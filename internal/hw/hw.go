// Package hw models the hardware the paper evaluates on: Nvidia V100
// (Summit), A100 (Guyot) and H100 (Haxane) GPUs, their host links and the
// Summit interconnect. The models are calibrated to the paper's own
// numbers:
//
//   - Table I peak Tflop/s per precision format (with the §VII-A note that
//     FP64 on A100/H100 runs on tensor cores at the FP32 peak);
//   - Table II: moving a 2048² FP64 tile to a V100 takes 0.67 ms ⇒ 50 GB/s
//     host link; a 2048² FP64 GEMM takes 2.2 ms ⇒ GEMM at peak for tiles of
//     2048 and above;
//   - Fig 1d/Fig 8c: H100 PCIe sustains a noticeably lower fraction of its
//     GEMM peak than V100/A100;
//   - TDPs (300/400/350 W) bounding the power traces of Fig 10.
//
// Everything downstream (the runtime's discrete-event simulation, the
// energy accounting) is pure arithmetic over these specs, so the shape of
// the paper's performance results follows from the same flop/byte/watt
// bookkeeping the authors use to explain theirs.
package hw

import (
	"fmt"

	"geompc/internal/prec"
)

// KernelKind identifies a tile kernel class for efficiency modeling.
type KernelKind string

// Tile kernel classes of Algorithm 1, plus data-movement helpers.
const (
	KindPotrf   KernelKind = "POTRF"
	KindTrsm    KernelKind = "TRSM"
	KindSyrk    KernelKind = "SYRK"
	KindGemm    KernelKind = "GEMM"
	KindConvert KernelKind = "CONVERT"
)

// GPUSpec describes one GPU generation.
type GPUSpec struct {
	Name string

	// peak dense throughput per precision, flop/s. Missing entries mean the
	// format is not supported (e.g. TF32 on V100).
	Peak map[prec.Precision]float64

	// FP64NonTensor is the classical FP64 pipeline peak (Table I's "FP64"
	// row); Peak[FP64] holds the effective rate, which uses tensor cores
	// on A100/H100 (§IV).
	FP64NonTensor float64

	// GemmEff is the sustained fraction of peak a large resident GEMM
	// achieves (Fig 1).
	GemmEff float64

	// KernelEff is the efficiency of each kernel class relative to GEMM;
	// panel kernels (POTRF) achieve a smaller fraction of peak.
	KernelEff map[KernelKind]float64

	// LaunchOverhead is the fixed per-kernel launch latency, seconds.
	LaunchOverhead float64

	// Host link (H2D/D2H), bytes/s each direction, plus latency.
	H2DBw, D2HBw float64
	LinkLatency  float64

	// PeerBw is the intra-node device-to-device bandwidth, bytes/s.
	PeerBw float64

	// MemBytes is device memory capacity; MemBw its bandwidth (bounds the
	// datatype-conversion kernels, which are memory-bound).
	MemBytes int64
	MemBw    float64

	// Power model: idle draw, thermal design power, and the fraction of the
	// dynamic range (TDP − idle) each precision's compute draws.
	IdleW, TDP  float64
	PowerFactor map[prec.Precision]float64
	// TransferW is the extra power drawn while a host-link transfer is
	// in flight.
	TransferW float64
}

// SupportedPeak returns the effective peak flop/s for precision p, falling
// back to the closest supported higher-precision path when the GPU lacks
// the format (e.g. TF32 GEMMs on V100 execute as FP32).
// fallbackLadder orders the substitute formats tried when the GPU lacks a
// requested one: TF32/BF16_32 → FP16_32 → FP32 → FP64. Package-level so the
// hot KernelTime path ranges over it without materializing a slice.
var fallbackLadder = [3]prec.Precision{prec.FP16x32, prec.FP32, prec.FP64}

func (g *GPUSpec) SupportedPeak(p prec.Precision) float64 {
	if v, ok := g.Peak[p]; ok {
		return v
	}
	for _, q := range fallbackLadder {
		if q.Eps() < p.Eps() {
			if v, ok := g.Peak[q]; ok {
				return v
			}
		}
	}
	return g.Peak[prec.FP64]
}

// Supports reports whether the GPU natively supports precision p.
func (g *GPUSpec) Supports(p prec.Precision) bool {
	_, ok := g.Peak[p]
	return ok
}

// KernelTime returns the simulated execution time of a tile kernel of the
// given class, precision and flop count, resident on the device.
func (g *GPUSpec) KernelTime(kind KernelKind, p prec.Precision, flops float64) float64 {
	eff := g.GemmEff * g.KernelEff[kind]
	rate := g.SupportedPeak(p) * eff
	return flops/rate + g.LaunchOverhead
}

// ConvertTime returns the time of an on-device datatype conversion of n
// elements between the two formats — a memory-bound pass reading the source
// and writing the destination width.
func (g *GPUSpec) ConvertTime(n int, from, to prec.Precision) float64 {
	bytes := float64(n) * float64(from.InputBytes()+to.InputBytes())
	return bytes/g.MemBw + g.LaunchOverhead
}

// H2DTime returns the host-to-device transfer time for nbytes.
func (g *GPUSpec) H2DTime(nbytes int64) float64 {
	return g.LinkLatency + float64(nbytes)/g.H2DBw
}

// D2HTime returns the device-to-host transfer time for nbytes.
func (g *GPUSpec) D2HTime(nbytes int64) float64 {
	return g.LinkLatency + float64(nbytes)/g.D2HBw
}

// DynPower returns the dynamic power (W above idle) drawn while a kernel of
// precision p runs.
func (g *GPUSpec) DynPower(p prec.Precision) float64 {
	f, ok := g.PowerFactor[p]
	if !ok {
		f = 1
	}
	return (g.TDP - g.IdleW) * f
}

// LinkSpec is the timing/power model of one point-to-point transfer
// resource: a host-link direction, an intra-node peer (NVLink/NVSwitch)
// lane, or a rank's NIC. internal/comm turns a LinkSpec into a simulated
// serial resource with occupancy and traced intervals.
type LinkSpec struct {
	Bw    float64 // bytes/s
	Lat   float64 // fixed per-transfer latency, seconds
	Power float64 // extra watts drawn while a transfer is in flight
}

// Time returns the transfer time of nbytes over the link.
func (l LinkSpec) Time(nbytes int64) float64 {
	return l.Lat + float64(nbytes)/l.Bw
}

// H2DLink is the host-to-device direction of the GPU's host link. Time over
// it is identical to H2DTime.
func (g *GPUSpec) H2DLink() LinkSpec {
	return LinkSpec{Bw: g.H2DBw, Lat: g.LinkLatency, Power: g.TransferW}
}

// D2HLink is the device-to-host direction of the GPU's host link. Time over
// it is identical to D2HTime.
func (g *GPUSpec) D2HLink() LinkSpec {
	return LinkSpec{Bw: g.D2HBw, Lat: g.LinkLatency, Power: g.TransferW}
}

// PeerLink is the intra-node device-to-device lane (NVLink/NVSwitch).
func (g *GPUSpec) PeerLink() LinkSpec {
	return LinkSpec{Bw: g.PeerBw, Lat: g.LinkLatency, Power: g.TransferW}
}

// NICLink is the rank's network injection port.
func (n *NodeSpec) NICLink() LinkSpec {
	return LinkSpec{Bw: n.NetBw, Lat: n.NetLat}
}

// NodeSpec describes one compute node: identical GPUs plus the NIC that
// connects it to the rest of the machine.
type NodeSpec struct {
	Name    string
	GPUs    int
	GPU     *GPUSpec
	NetBw   float64 // injection bandwidth, bytes/s
	NetLat  float64 // per-message latency, seconds
	HostMem int64   // host memory, bytes (bounds matrix size, §VII-E)
}

// Predefined GPU generations (§VII-A, Table I).
var (
	// V100: Summit's Tesla V100 (NVLink host link at 50 GB/s — the rate
	// implied by Table II).
	V100 = &GPUSpec{
		Name:          "V100",
		FP64NonTensor: 7.8e12,
		Peak: map[prec.Precision]float64{
			prec.FP64:    7.8e12,
			prec.FP32:    15.7e12,
			prec.FP16x32: 125e12,
			prec.FP16:    125e12,
		},
		GemmEff: 0.97,
		KernelEff: map[KernelKind]float64{
			KindGemm: 1.0, KindSyrk: 0.88, KindTrsm: 0.72, KindPotrf: 0.35,
		},
		LaunchOverhead: 5e-6,
		H2DBw:          50e9, D2HBw: 50e9, LinkLatency: 10e-6,
		PeerBw:   50e9,
		MemBytes: 16 << 30, MemBw: 900e9,
		IdleW: 52, TDP: 300,
		PowerFactor: map[prec.Precision]float64{
			prec.FP64: 1.0, prec.FP32: 0.90, prec.FP16x32: 0.80, prec.FP16: 0.74,
		},
		TransferW: 25,
	}

	// A100: Guyot's A100-SXM4-80GB. FP64 runs on tensor cores (19.5 Tflop/s,
	// same as FP32 — §IV). Host link is PCIe gen4.
	A100 = &GPUSpec{
		Name:          "A100",
		FP64NonTensor: 9.7e12,
		Peak: map[prec.Precision]float64{
			prec.FP64:    19.5e12,
			prec.FP32:    19.5e12,
			prec.TF32:    156e12,
			prec.BF16x32: 312e12,
			prec.FP16x32: 312e12,
			prec.FP16:    312e12,
		},
		GemmEff: 0.95,
		KernelEff: map[KernelKind]float64{
			KindGemm: 1.0, KindSyrk: 0.88, KindTrsm: 0.72, KindPotrf: 0.35,
		},
		LaunchOverhead: 4e-6,
		H2DBw:          24e9, D2HBw: 24e9, LinkLatency: 8e-6,
		PeerBw:   300e9, // NVSwitch
		MemBytes: 80 << 30, MemBw: 2.0e12,
		IdleW: 62, TDP: 400,
		PowerFactor: map[prec.Precision]float64{
			prec.FP64: 1.0, prec.FP32: 0.97, prec.TF32: 0.85,
			prec.BF16x32: 0.80, prec.FP16x32: 0.80, prec.FP16: 0.74,
		},
		TransferW: 25,
	}

	// H100: Haxane's H100 PCIe. Sustains a lower fraction of its GEMM peak
	// (Fig 1d) and does not reach TDP even at full occupancy (§VII-E).
	H100 = &GPUSpec{
		Name:          "H100",
		FP64NonTensor: 25.6e12,
		Peak: map[prec.Precision]float64{
			prec.FP64:    51.2e12,
			prec.FP32:    51.2e12,
			prec.TF32:    378e12,
			prec.BF16x32: 756e12,
			prec.FP16x32: 756e12,
			prec.FP16:    756e12,
		},
		GemmEff: 0.76,
		KernelEff: map[KernelKind]float64{
			KindGemm: 1.0, KindSyrk: 0.88, KindTrsm: 0.72, KindPotrf: 0.35,
		},
		LaunchOverhead: 4e-6,
		H2DBw:          45e9, D2HBw: 45e9, LinkLatency: 8e-6,
		PeerBw:   45e9,
		MemBytes: 80 << 30, MemBw: 2.0e12,
		IdleW: 58, TDP: 350,
		PowerFactor: map[prec.Precision]float64{
			prec.FP64: 0.88, prec.FP32: 0.85, prec.TF32: 0.75,
			prec.BF16x32: 0.70, prec.FP16x32: 0.70, prec.FP16: 0.65,
		},
		TransferW: 25,
	}
)

// Predefined nodes (§VII-A).
var (
	// SummitNode: 6×V100, dual-rail EDR InfiniBand.
	SummitNode = &NodeSpec{
		Name: "Summit", GPUs: 6, GPU: V100,
		NetBw: 23e9, NetLat: 1.5e-6, HostMem: 256 << 30,
	}
	// GuyotNode: 8×A100 single node.
	GuyotNode = &NodeSpec{
		Name: "Guyot", GPUs: 8, GPU: A100,
		NetBw: 23e9, NetLat: 1.5e-6, HostMem: 2063 << 30,
	}
	// HaxaneNode: 1×H100 PCIe; 63 GB of host memory bounds the largest
	// matrix (§VII-D).
	HaxaneNode = &NodeSpec{
		Name: "Haxane", GPUs: 1, GPU: H100,
		NetBw: 23e9, NetLat: 1.5e-6, HostMem: 63 << 30,
	}
)

// ByName returns the GPU spec for "V100", "A100" or "H100".
func ByName(name string) (*GPUSpec, error) {
	switch name {
	case "V100":
		return V100, nil
	case "A100":
		return A100, nil
	case "H100":
		return H100, nil
	}
	return nil, fmt.Errorf("hw: unknown GPU %q", name)
}

// NodeByName returns the node spec for "Summit", "Guyot" or "Haxane".
func NodeByName(name string) (*NodeSpec, error) {
	switch name {
	case "Summit":
		return SummitNode, nil
	case "Guyot":
		return GuyotNode, nil
	case "Haxane":
		return HaxaneNode, nil
	}
	return nil, fmt.Errorf("hw: unknown node %q", name)
}
