package hw

import (
	"math"
	"testing"

	"geompc/internal/prec"
)

func TestTableIPeaks(t *testing.T) {
	// Table I, with the §VII-A adjustment that FP64 on A100/H100 runs on
	// tensor cores at the FP32 rate.
	cases := []struct {
		gpu  *GPUSpec
		p    prec.Precision
		want float64 // Tflop/s
	}{
		{V100, prec.FP64, 7.8},
		{V100, prec.FP32, 15.7},
		{V100, prec.FP16, 125},
		{A100, prec.FP64, 19.5},
		{A100, prec.FP32, 19.5},
		{A100, prec.TF32, 156},
		{A100, prec.FP16, 312},
		{A100, prec.BF16x32, 312},
		{H100, prec.FP64, 51.2},
		{H100, prec.FP32, 51.2},
		{H100, prec.TF32, 378},
		{H100, prec.FP16, 756},
	}
	for _, c := range cases {
		if got := c.gpu.SupportedPeak(c.p) / 1e12; math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s %v peak = %g, want %g Tflop/s", c.gpu.Name, c.p, got, c.want)
		}
	}
}

func TestV100FallbackForTF32(t *testing.T) {
	if V100.Supports(prec.TF32) {
		t.Error("V100 must not support TF32")
	}
	// TF32 on V100 falls back to a supported higher-precision path.
	got := V100.SupportedPeak(prec.TF32)
	if got != V100.Peak[prec.FP32] && got != V100.Peak[prec.FP16x32] {
		t.Errorf("V100 TF32 fallback peak = %g", got)
	}
}

func TestTableIITransferTimes(t *testing.T) {
	// Table II: moving a 2048² tile to one V100 — 0.67 ms in FP64,
	// 0.34 ms in FP32, 0.17 ms in FP16.
	elems := int64(2048 * 2048)
	cases := []struct {
		p      prec.Precision
		wantMs float64
	}{
		{prec.FP64, 0.67}, {prec.FP32, 0.34}, {prec.FP16, 0.17},
	}
	for _, c := range cases {
		got := V100.H2DTime(elems*int64(c.p.InputBytes())) * 1e3
		if math.Abs(got-c.wantMs) > 0.05*c.wantMs {
			t.Errorf("H2D %v: %.3f ms, want %.2f ms (Table II)", c.p, got, c.wantMs)
		}
	}
}

func TestTableIIGemmTimes(t *testing.T) {
	// Table II: GEMM on 2048..10240 matrices runs at (near) peak on V100.
	sizes := []float64{2048, 4096, 6144, 8192, 10240}
	wantFP64 := []float64{2.2, 17.62, 59.47, 140.96, 275.32}
	wantFP16 := []float64{0.14, 1.1, 3.71, 8.8, 17.18}
	for i, n := range sizes {
		flops := 2 * n * n * n
		got := V100.KernelTime(KindGemm, prec.FP64, flops) * 1e3
		if math.Abs(got-wantFP64[i])/wantFP64[i] > 0.10 {
			t.Errorf("FP64 GEMM %g: %.2f ms, want %.2f (Table II)", n, got, wantFP64[i])
		}
		got16 := V100.KernelTime(KindGemm, prec.FP16, flops) * 1e3
		if math.Abs(got16-wantFP16[i])/wantFP16[i] > 0.15 {
			t.Errorf("FP16 GEMM %g: %.3f ms, want %.2f (Table II)", n, got16, wantFP16[i])
		}
	}
}

func TestKernelTimeOrdering(t *testing.T) {
	flops := 2.0 * 1024 * 1024 * 1024
	for _, g := range []*GPUSpec{V100, A100, H100} {
		t64 := g.KernelTime(KindGemm, prec.FP64, flops)
		t32 := g.KernelTime(KindGemm, prec.FP32, flops)
		t16 := g.KernelTime(KindGemm, prec.FP16, flops)
		if !(t16 < t32 && t32 <= t64) {
			t.Errorf("%s: kernel times not ordered: %g %g %g", g.Name, t64, t32, t16)
		}
		// POTRF is less efficient than GEMM at the same flop count.
		if g.KernelTime(KindPotrf, prec.FP64, flops) <= t64 {
			t.Errorf("%s: POTRF not slower than GEMM", g.Name)
		}
	}
}

func TestConvertTimeMemoryBound(t *testing.T) {
	n := 2048 * 2048
	ct := V100.ConvertTime(n, prec.FP64, prec.FP16)
	// 4M elements × 10 bytes / 900 GB/s ≈ 47 µs plus launch.
	want := float64(n)*10/900e9 + V100.LaunchOverhead
	if math.Abs(ct-want) > 1e-9 {
		t.Errorf("ConvertTime = %g, want %g", ct, want)
	}
	// Conversion must be far cheaper than the FP64 transfer it saves.
	if ct > V100.H2DTime(int64(n)*8)/5 {
		t.Error("conversion not clearly cheaper than the transfer it optimizes")
	}
}

func TestPowerModel(t *testing.T) {
	for _, g := range []*GPUSpec{V100, A100, H100} {
		p64 := g.IdleW + g.DynPower(prec.FP64)
		if p64 > g.TDP+1e-9 {
			t.Errorf("%s: FP64 power %g exceeds TDP %g", g.Name, p64, g.TDP)
		}
		if g.DynPower(prec.FP16) >= g.DynPower(prec.FP64) {
			t.Errorf("%s: FP16 dynamic power not below FP64", g.Name)
		}
	}
	// H100 §VII-E: does not reach TDP even flat out.
	if H100.IdleW+H100.DynPower(prec.FP64) > 0.95*H100.TDP {
		t.Error("H100 reaches TDP, contradicting §VII-E")
	}
	// Energy per flop must drop steeply with precision (the Fig 10 driver).
	for _, g := range []*GPUSpec{V100, A100, H100} {
		jpf64 := (g.IdleW + g.DynPower(prec.FP64)) / (g.SupportedPeak(prec.FP64) * g.GemmEff)
		jpf16 := (g.IdleW + g.DynPower(prec.FP16)) / (g.SupportedPeak(prec.FP16) * g.GemmEff)
		if jpf16 > jpf64/3 {
			t.Errorf("%s: FP16 J/flop %g not ≪ FP64 %g", g.Name, jpf16, jpf64)
		}
	}
}

func TestNodeSpecs(t *testing.T) {
	if SummitNode.GPUs != 6 || SummitNode.GPU != V100 {
		t.Error("Summit node wrong")
	}
	if GuyotNode.GPUs != 8 || GuyotNode.GPU != A100 {
		t.Error("Guyot node wrong")
	}
	if HaxaneNode.GPUs != 1 || HaxaneNode.GPU != H100 {
		t.Error("Haxane node wrong")
	}
	// Haxane host memory (63 GB) must be below a 122,880² FP32 matrix ×2 —
	// the constraint §VII-D cites for the H100 speedup cap.
	if HaxaneNode.HostMem >= 122880*122880*8 {
		t.Error("Haxane host memory does not bound the FP64 matrix")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"V100", "A100", "H100"} {
		if g, err := ByName(n); err != nil || g.Name != n {
			t.Errorf("ByName(%s) failed: %v", n, err)
		}
	}
	if _, err := ByName("K80"); err == nil {
		t.Error("ByName accepted unknown GPU")
	}
	for _, n := range []string{"Summit", "Guyot", "Haxane"} {
		if nd, err := NodeByName(n); err != nil || nd.Name != n {
			t.Errorf("NodeByName(%s) failed", n)
		}
	}
	if _, err := NodeByName("Frontier"); err == nil {
		t.Error("NodeByName accepted unknown node")
	}
}
