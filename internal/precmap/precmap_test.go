package precmap

import (
	"math"
	"testing"

	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

func TestSelectPrecision(t *testing.T) {
	ladder := prec.CholeskySet
	// Huge ratio: nothing admissible below FP64.
	if got := SelectPrecision(1.0, 1e-9, ladder); got != prec.FP64 {
		t.Errorf("ratio 1, u_req 1e-9: %v, want FP64", got)
	}
	// Tiny ratio: everything admissible; lowest wins.
	if got := SelectPrecision(1e-12, 1e-4, ladder); got != prec.FP16 {
		t.Errorf("tiny ratio: %v, want FP16", got)
	}
	// Boundary: ratio just below u_req/eps(FP32) selects FP32 when FP16
	// family is excluded by its larger eps.
	ureq := 1e-9
	ratio := ureq / prec.FP32.Eps() * 0.99
	if got := SelectPrecision(ratio, ureq, ladder); got != prec.FP32 {
		t.Errorf("FP32 boundary: %v, want FP32", got)
	}
	// Just above the FP32 threshold falls back to FP64.
	ratio = ureq / prec.FP32.Eps() * 1.01
	if got := SelectPrecision(ratio, ureq, ladder); got != prec.FP64 {
		t.Errorf("above FP32 threshold: %v, want FP64", got)
	}
}

func TestSelectPrecisionMonotoneInUReq(t *testing.T) {
	// Looser accuracy must never select a higher precision.
	ladder := prec.CholeskySet
	for _, ratio := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 1} {
		pTight := SelectPrecision(ratio, 1e-9, ladder)
		pLoose := SelectPrecision(ratio, 1e-4, ladder)
		if pLoose.Eps() < pTight.Eps() {
			t.Errorf("ratio %g: loose u_req chose higher precision %v than tight %v", ratio, pLoose, pTight)
		}
	}
}

// decayKernelMap builds a kernel map that mimics a decaying covariance:
// precision drops with distance from the diagonal.
func decayKernelMap(nt int) [][]prec.Precision {
	norm := func(i, j int) float64 {
		return math.Exp(-2 * float64(i-j))
	}
	return NewKernelMap(nt, norm, 1.0, 1e-4, prec.CholeskySet)
}

func TestNewKernelMapDiagonalPinned(t *testing.T) {
	k := decayKernelMap(8)
	for i := 0; i < 8; i++ {
		if k[i][i] != prec.FP64 {
			t.Errorf("diagonal tile (%d,%d) = %v, want FP64", i, i, k[i][i])
		}
	}
	// Monotone band structure: precision must not increase away from the
	// diagonal within a column for a decaying norm.
	for j := 0; j < 8; j++ {
		for i := j + 2; i < 8; i++ {
			if k[i][j].Eps() < k[i-1][j].Eps() {
				t.Errorf("precision increased away from diagonal at (%d,%d): %v after %v",
					i, j, k[i][j], k[i-1][j])
			}
		}
	}
}

func TestStorageMapRule(t *testing.T) {
	m := New(decayKernelMap(8), 1e-4)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			want := m.Kernel[i][j].StoragePrecision()
			if m.Storage[i][j] != want {
				t.Errorf("storage (%d,%d) = %v, want %v", i, j, m.Storage[i][j], want)
			}
		}
	}
}

func TestCommMapDiagonalRule(t *testing.T) {
	// Column with an FP64 off-diagonal successor → POTRF comm FP64 (TTC);
	// all-lower column → FP32 (STC).
	nt := 6
	kernel := Uniform(nt, prec.FP16x32) // off-diagonal all FP16_32
	kernel[1][0] = prec.FP64            // one FP64 TRSM below POTRF(0,0)
	m := New(kernel, 1e-9)
	if m.Comm[0][0] != prec.FP64 || m.STC[0][0] {
		t.Errorf("POTRF(0,0): comm %v stc %v, want FP64/TTC", m.Comm[0][0], m.STC[0][0])
	}
	// Column 1 has only FP16_32 TRSMs → comm FP32, STC.
	if m.Comm[1][1] != prec.FP32 || !m.STC[1][1] {
		t.Errorf("POTRF(1,1): comm %v stc %v, want FP32/STC", m.Comm[1][1], m.STC[1][1])
	}
	// Last diagonal has no successors.
	if m.Comm[nt-1][nt-1] != prec.FP64 || m.STC[nt-1][nt-1] {
		t.Errorf("final POTRF comm/STC wrong: %v %v", m.Comm[nt-1][nt-1], m.STC[nt-1][nt-1])
	}
}

func TestCommMapTrsmSTC(t *testing.T) {
	// All off-diagonal FP16: every TRSM's successors are FP16 GEMMs, so
	// comm = FP16 < storage FP32 → STC everywhere off-diagonal.
	nt := 6
	m := New(Uniform(nt, prec.FP16), 1e-2)
	for k := 0; k <= nt-2; k++ {
		for i := k + 1; i < nt; i++ {
			if m.Comm[i][k] != prec.FP16 {
				t.Errorf("comm(%d,%d) = %v, want FP16", i, k, m.Comm[i][k])
			}
			if !m.STC[i][k] {
				t.Errorf("STC(%d,%d) = false, want true", i, k)
			}
		}
	}
}

func TestCommMapTrsmTTCWhenSuccessorHigher(t *testing.T) {
	// Tile (2,0): successors include GEMM target (2,1) (row) and (n,2)
	// (column). Make (2,1) FP64 kernel: comm must clamp to storage (TTC).
	nt := 4
	kernel := Uniform(nt, prec.FP16)
	kernel[2][1] = prec.FP64
	m := New(kernel, 1e-2)
	// storage of (2,0) is FP32 (FP16-family kernel).
	if m.Comm[2][0] != prec.FP32 || m.STC[2][0] {
		t.Errorf("comm(2,0) = %v stc=%v, want FP32/TTC", m.Comm[2][0], m.STC[2][0])
	}
	// Tile (1,0): row targets: none (n from 1 to 0); column targets (2,1)=FP64,
	// (3,1)=FP16. First column check hits FP64 → clamp to storage FP32, TTC.
	if m.Comm[1][0] != prec.FP32 || m.STC[1][0] {
		t.Errorf("comm(1,0) = %v stc=%v, want FP32/TTC", m.Comm[1][0], m.STC[1][0])
	}
}

func TestCommNeverBelowSuccessorNeed(t *testing.T) {
	// Property: for every TRSM tile, comm precision is at least the highest
	// GEMM-successor kernel precision (capped by storage).
	m := New(decayKernelMap(10), 1e-4)
	nt := m.NT
	for k := 0; k <= nt-2; k++ {
		for i := k + 1; i < nt; i++ {
			need := prec.FP16
			for n := k + 1; n < i; n++ {
				need = prec.Higher(need, m.Kernel[i][n])
			}
			for n := i + 1; n < nt; n++ {
				need = prec.Higher(need, m.Kernel[n][i])
			}
			if need.Eps() < m.Storage[i][k].Eps() {
				need = m.Storage[i][k] // capped
			}
			if m.Comm[i][k].Eps() > need.Eps() {
				t.Errorf("comm(%d,%d) = %v below successor need %v", i, k, m.Comm[i][k], need)
			}
		}
	}
}

func TestCommNeverAboveStorage(t *testing.T) {
	m := New(decayKernelMap(12), 1e-4)
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			if m.Comm[i][j].Eps() < m.Storage[i][j].Eps() {
				t.Errorf("comm(%d,%d) = %v exceeds storage %v", i, j, m.Comm[i][j], m.Storage[i][j])
			}
			if m.STC[i][j] != m.Comm[i][j].Lower(m.Storage[i][j]) {
				t.Errorf("STC flag inconsistent at (%d,%d)", i, j)
			}
		}
	}
}

func TestCountsAndFractions(t *testing.T) {
	nt := 8
	m := New(Uniform(nt, prec.FP16), 1e-2)
	c := m.Counts()
	if c[prec.FP64] != nt {
		t.Errorf("FP64 count %d, want %d (diagonal)", c[prec.FP64], nt)
	}
	if c[prec.FP16] != nt*(nt+1)/2-nt {
		t.Errorf("FP16 count %d", c[prec.FP16])
	}
	f := m.Fractions()
	var sum float64
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %g", sum)
	}
}

func TestSTCCount(t *testing.T) {
	nt := 5
	m := New(Uniform(nt, prec.FP16), 1e-2)
	stc, total := m.STCCount()
	if total != nt*(nt+1)/2-1 {
		t.Errorf("total tasks %d, want %d", total, nt*(nt+1)/2-1)
	}
	if stc == 0 {
		t.Error("no STC tasks in all-FP16 map")
	}
}

func TestUniformAll(t *testing.T) {
	k := UniformAll(4, prec.FP32)
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			if k[i][j] != prec.FP32 {
				t.Errorf("(%d,%d) = %v", i, j, k[i][j])
			}
		}
	}
}

func TestFromMatrixMatchesEstimator(t *testing.T) {
	// The sampled estimator's kernel map must largely agree with the exact
	// map on a small matrix.
	rng := stats.NewRNG(1, 0)
	n, ts := 128, 16
	locs := geo.GenerateLocations(n, 2, rng)
	k := geo.SqExp{Dimension: 2}
	theta := []float64{1, 0.02}
	d, _ := tile.NewDesc(n, ts, 1, 1)
	m := tile.NewMatrix(d, false)
	m.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, k, theta, 1e-10, tl.Data, tl.N)
	})
	exact := FromMatrix(m, 1e-6, prec.CholeskySet)

	normFn, global := EstimateTileNorms(locs, d, k, theta, 1e-10, 64, stats.NewRNG(2, 0))
	est := NewKernelMap(d.NT, normFn, global, 1e-6, prec.CholeskySet)

	agree, total := 0, 0
	for i := 0; i < d.NT; i++ {
		for j := 0; j <= i; j++ {
			total++
			if exact[i][j] == est[i][j] {
				agree++
			}
		}
	}
	if float64(agree)/float64(total) < 0.8 {
		t.Errorf("sampled map agrees on only %d/%d tiles", agree, total)
	}
}

func TestEstimateTileNormsGlobalAccuracy(t *testing.T) {
	rng := stats.NewRNG(3, 0)
	n, ts := 96, 16
	locs := geo.GenerateLocations(n, 2, rng)
	k := geo.Matern{Dimension: 2}
	theta := []float64{1, 0.1, 0.5}
	d, _ := tile.NewDesc(n, ts, 1, 1)
	m := tile.NewMatrix(d, false)
	m.Fill(func(tl *tile.Tile, r0, c0 int) {
		geo.CovTile(locs, r0, c0, tl.M, tl.N, k, theta, 0, tl.Data, tl.N)
	})
	_, exactGlobal := m.TileNorms()
	// With samples ≥ tile area the estimator is exact.
	_, estGlobal := EstimateTileNorms(locs, d, k, theta, 0, ts*ts, stats.NewRNG(4, 0))
	if math.Abs(estGlobal-exactGlobal) > 1e-9*exactGlobal {
		t.Errorf("exact-path estimator global %g, want %g", estGlobal, exactGlobal)
	}
	// Sampled estimator within 25%.
	_, sampGlobal := EstimateTileNorms(locs, d, k, theta, 0, 32, stats.NewRNG(5, 0))
	if math.Abs(sampGlobal-exactGlobal) > 0.25*exactGlobal {
		t.Errorf("sampled global %g too far from exact %g", sampGlobal, exactGlobal)
	}
}
