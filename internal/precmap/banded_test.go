package precmap

import (
	"testing"

	"geompc/internal/prec"
)

func TestBandedKernelMap(t *testing.T) {
	k, err := BandedKernelMap(6, 1, 2, prec.FP16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i, j int
		want prec.Precision
	}{
		{0, 0, prec.FP64}, {1, 0, prec.FP64}, // within fp64 band
		{2, 0, prec.FP32}, {3, 0, prec.FP32}, // within fp32 band
		{4, 0, prec.FP16}, {5, 0, prec.FP16}, // beyond
		{5, 4, prec.FP64},
	}
	for _, c := range cases {
		if got := k[c.i][c.j]; got != c.want {
			t.Errorf("(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestBandedValidation(t *testing.T) {
	if _, err := BandedKernelMap(4, -1, 0, prec.FP16); err == nil {
		t.Error("negative band accepted")
	}
	if _, err := BandedKernelMap(4, 1, 1, prec.FP32); err == nil {
		t.Error("FP32 as 'low' accepted")
	}
}

func TestMatchBandsToMap(t *testing.T) {
	// Adaptive-like map: FP64 up to distance 2 in one column only, FP32 up
	// to distance 4.
	nt := 8
	ref := Uniform(nt, prec.FP16)
	ref[2][0] = prec.FP64 // distance 2
	ref[5][1] = prec.FP32 // distance 4
	b64, b32 := MatchBandsToMap(ref)
	if b64 != 2 {
		t.Errorf("fp64 band %d, want 2", b64)
	}
	if b64+b32 != 4 {
		t.Errorf("fp32 extent %d, want 4", b64+b32)
	}
	// The matched banded map must dominate the reference tile-wise.
	banded, err := BandedKernelMap(nt, b64, b32, prec.FP16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			if banded[i][j].Eps() > ref[i][j].Eps() {
				t.Errorf("banded (%d,%d)=%v less precise than reference %v",
					i, j, banded[i][j], ref[i][j])
			}
		}
	}
}

func TestMatchBandsAllFP32WithinFP64(t *testing.T) {
	// FP32 tiles closer than the FP64 extent: fp32Band must be 0.
	nt := 6
	ref := Uniform(nt, prec.FP16)
	ref[3][0] = prec.FP64 // distance 3
	ref[1][0] = prec.FP32 // distance 1 < 3
	b64, b32 := MatchBandsToMap(ref)
	if b64 != 3 || b32 != 0 {
		t.Errorf("bands %d/%d, want 3/0", b64, b32)
	}
}
