package precmap

import (
	"fmt"

	"geompc/internal/prec"
)

// BandedKernelMap builds the band-based precision assignment of the prior
// work the paper improves on (Abdulah et al., HiPC'19 / TPDS'21 — refs
// [12], [13]): precision depends only on the tile's distance from the
// diagonal, exploiting the band data-sparsity pattern of the covariance:
//
//	|i−j| ≤ fp64Band           → FP64
//	|i−j| ≤ fp64Band+fp32Band  → FP32
//	otherwise                  → low
//
// Unlike the norm-adaptive map, banding is blind to the actual correlation
// decay, so it either over-spends precision (wide bands) or risks accuracy
// (narrow bands) whenever the decay is anisotropic or the ordering is
// imperfect — the ablation the bench package quantifies.
func BandedKernelMap(nt, fp64Band, fp32Band int, low prec.Precision) ([][]prec.Precision, error) {
	if fp64Band < 0 || fp32Band < 0 {
		return nil, fmt.Errorf("precmap: negative band widths %d/%d", fp64Band, fp32Band)
	}
	if low == prec.FP64 || low == prec.FP32 {
		return nil, fmt.Errorf("precmap: banded low precision must be a half format, got %v", low)
	}
	k := lowerTri[prec.Precision](nt)
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			switch d := i - j; {
			case d <= fp64Band:
				k[i][j] = prec.FP64
			case d <= fp64Band+fp32Band:
				k[i][j] = prec.FP32
			default:
				k[i][j] = low
			}
		}
	}
	return k, nil
}

// MatchBandsToMap returns the narrowest band widths whose banded map is at
// least as precise as the reference map on every tile — the fair "same
// accuracy guarantee" comparison point for the adaptive-vs-banded ablation.
func MatchBandsToMap(ref [][]prec.Precision) (fp64Band, fp32Band int) {
	nt := len(ref)
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			d := i - j
			switch ref[i][j] {
			case prec.FP64:
				if d > fp64Band {
					fp64Band = d
				}
			case prec.FP32:
				if d > fp32Band {
					fp32Band = d
				}
			}
		}
	}
	// fp32Band is measured from the diagonal; convert to width beyond the
	// FP64 band.
	if fp32Band > fp64Band {
		fp32Band -= fp64Band
	} else {
		fp32Band = 0
	}
	return fp64Band, fp32Band
}
