package precmap

import "geompc/internal/obs"

// Signature returns an FNV-1a hash over every decision the maps feed into a
// factorization's task specs: the kernel, storage and communication
// precision plus the STC flag of each lower-triangle tile. Two Maps with
// equal signatures produce identical task systems (same kernel precisions,
// wire formats, conversion counts), so a compiled plan keyed by this
// signature replays bit-exactly. UReq is deliberately excluded — it only
// influences how Kernel was chosen, not what the engine executes.
func (m *Maps) Signature() uint64 {
	var d obs.Digest
	d.WriteInt64(int64(m.NT))
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			d.WriteUint64(m.tileBits(i, j))
		}
	}
	return d.Sum()
}

// tileBits packs one tile's derived decisions into a comparable word.
func (m *Maps) tileBits(i, j int) uint64 {
	v := uint64(m.Kernel[i][j]) | uint64(m.Storage[i][j])<<8 | uint64(m.Comm[i][j])<<16
	if m.STC[i][j] {
		v |= 1 << 24
	}
	return v
}

// DiffTiles returns the lower-triangle tiles (i,j) whose derived decisions
// differ between m and o, in row-major order. This is the seed of plan
// invalidation: because Algorithm 2's comm map is nonlocal (a downstream
// GEMM tile's kernel precision can raise an upstream TRSM tile's broadcast
// precision), the diff must run over the full derived maps, never over the
// kernel map alone. When the tilings disagree every tile of m is returned —
// nothing is shareable across shapes.
func (m *Maps) DiffTiles(o *Maps) [][2]int {
	var out [][2]int
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			if o == nil || o.NT != m.NT || m.tileBits(i, j) != o.tileBits(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
