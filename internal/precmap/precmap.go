// Package precmap implements the paper's precision-selection machinery:
//
//   - the tile-centric kernel-precision map based on the Higham–Mary rule
//     ‖A_ij‖·NT/‖A‖ ≤ u_req/u_low (§V),
//   - the storage-precision map (FP16-family tiles stored in FP32, §V),
//   - Algorithm 2: the communication-precision map that decides, per POTRF
//     and TRSM task, whether sender-side conversion (STC) or receiver-side
//     conversion (TTC) applies (§VI),
//   - a location-aware sampled tile-norm estimator so precision maps can be
//     computed at Summit scale without materializing the matrix (phantom
//     mode).
//
// Reproduction note on Algorithm 2: the paper's pseudocode writes the row
// broadcast check as "for n = k+1 to m", which would include tile (m,m) —
// the DSYRK target that always executes in FP64 — and would therefore clamp
// every TRSM's communication precision to its storage precision, making STC
// unreachable. That contradicts §VI's own Fig 4, where TRSM tasks do apply
// STC. We therefore read the row bound as exclusive (n = k+1 .. m−1, GEMM
// successors only) and account for the always-FP64 SYRK successor by
// initializing the TRSM tile's communication precision at the tile's *own*
// kernel precision rather than FP16: the Higham–Mary rule already certifies
// that tile's data at that precision, so the SYRK update — whose error is
// ‖A_mk‖²·u_wire, second order in the bounded tile norm — stays within the
// u_req budget, while genuinely low-norm tiles still down-cast to FP16.
package precmap

import (
	"fmt"
	"math"

	"geompc/internal/geo"
	"geompc/internal/prec"
	"geompc/internal/stats"
	"geompc/internal/tile"
)

// Maps bundles the three per-tile precision maps of a factorization. All
// maps cover the lower triangle: index [i][j] with j ≤ i.
type Maps struct {
	NT      int
	UReq    float64            // application-required accuracy u_req
	Kernel  [][]prec.Precision // precision of the numerical kernel on each tile
	Storage [][]prec.Precision // precision each tile is generated/stored in
	Comm    [][]prec.Precision // Algorithm 2: precision of communications issued by the task on each tile
	STC     [][]bool           // true where sender-side conversion applies (comm < storage)
}

// lowerTri allocates a lower-triangular [][]T.
func lowerTri[T any](nt int) [][]T {
	m := make([][]T, nt)
	for i := range m {
		m[i] = make([]T, i+1)
	}
	return m
}

// SelectPrecision returns the lowest precision on the ladder (ordered
// highest first) whose unit roundoff satisfies the Higham–Mary rule for a
// tile with the given norm ratio r = ‖A_ij‖·NT/‖A‖: r ≤ u_req/u_low.
// The first ladder entry is the fallback when no reduction is admissible.
func SelectPrecision(ratio, ureq float64, ladder []prec.Precision) prec.Precision {
	if len(ladder) == 0 {
		panic("precmap: empty precision ladder")
	}
	best := ladder[0]
	for _, p := range ladder {
		if ratio <= ureq/p.Eps() {
			best = p
		}
	}
	return best
}

// NewKernelMap builds the kernel-precision map for an NT×NT tiling from a
// per-tile Frobenius-norm oracle and the global norm. Diagonal tiles are
// pinned to FP64 (strongest correlations, §V); off-diagonal tiles take the
// lowest admissible precision from ladder.
func NewKernelMap(nt int, norm func(i, j int) float64, globalNorm, ureq float64, ladder []prec.Precision) [][]prec.Precision {
	if globalNorm <= 0 {
		panic(fmt.Sprintf("precmap: non-positive global norm %g", globalNorm))
	}
	k := lowerTri[prec.Precision](nt)
	for i := 0; i < nt; i++ {
		k[i][i] = prec.FP64
		for j := 0; j < i; j++ {
			ratio := norm(i, j) * float64(nt) / globalNorm
			k[i][j] = SelectPrecision(ratio, ureq, ladder)
		}
	}
	return k
}

// New derives the full Maps (storage map, Algorithm 2 comm map, STC flags)
// from a kernel-precision map.
func New(kernel [][]prec.Precision, ureq float64) *Maps {
	nt := len(kernel)
	m := &Maps{
		NT:      nt,
		UReq:    ureq,
		Kernel:  kernel,
		Storage: lowerTri[prec.Precision](nt),
		Comm:    lowerTri[prec.Precision](nt),
		STC:     lowerTri[bool](nt),
	}
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			m.Storage[i][j] = kernel[i][j].StoragePrecision()
		}
	}
	m.buildCommMap()
	return m
}

// buildCommMap is Algorithm 2. For each diagonal tile (k,k), the POTRF
// broadcast precision starts at FP32 (TRSM never runs below FP32) and is
// raised to FP64 if any successor TRSM in column k runs in FP64. For each
// off-diagonal tile (m,k), the TRSM broadcast precision starts at the
// tile's own kernel precision (covering the SYRK successor's consumption;
// see package comment) and is raised by the kernel precisions of the
// row-broadcast GEMMs (m,n), n = k+1..m−1 and the column-broadcast GEMMs
// (n,m), n = m+1..NT−1, clamped at the tile's storage precision (TTC) as
// soon as it is reached.
func (m *Maps) buildCommMap() {
	nt := m.NT
	// Diagonal tiles: POTRF(k,k) broadcasts to TRSMs in column k.
	for k := 0; k < nt; k++ {
		c := prec.FP32
		for i := k + 1; i < nt; i++ {
			if m.Kernel[i][k] == prec.FP64 {
				c = prec.FP64
				break
			}
		}
		if k == nt-1 {
			// No successors; the tile issues no communication. Record
			// storage precision for uniformity.
			c = prec.FP64
		}
		m.Comm[k][k] = c
		m.STC[k][k] = c.Lower(m.Storage[k][k])
	}
	// Off-diagonal tiles: TRSM(m,k) broadcasts to GEMMs in row m and
	// column m. The floor is the tile's own kernel precision, which bounds
	// the SYRK consumer's error (see package comment).
	for k := 0; k <= nt-2; k++ {
		for i := k + 1; i < nt; i++ {
			storage := m.Storage[i][k]
			c := prec.Higher(m.Kernel[i][k], prec.FP16)
			done := !c.Lower(storage)
			if done {
				c = storage
			}
			for n := k + 1; n < i && !done; n++ { // row broadcast
				c = prec.Higher(c, m.Kernel[i][n])
				if !c.Lower(storage) {
					c = storage
					done = true
				}
			}
			for n := i + 1; n < nt && !done; n++ { // column broadcast
				c = prec.Higher(c, m.Kernel[n][i])
				if !c.Lower(storage) {
					c = storage
					done = true
				}
			}
			m.Comm[i][k] = c
			m.STC[i][k] = c.Lower(storage)
		}
	}
}

// Counts returns the number of lower-triangle tiles whose kernel executes
// in each precision — the percentages annotated on Fig 7.
func (m *Maps) Counts() map[prec.Precision]int {
	c := make(map[prec.Precision]int)
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			c[m.Kernel[i][j]]++
		}
	}
	return c
}

// Fractions returns Counts normalized by the lower-triangle tile count.
func (m *Maps) Fractions() map[prec.Precision]float64 {
	total := float64(m.NT * (m.NT + 1) / 2)
	out := make(map[prec.Precision]float64)
	for p, n := range m.Counts() {
		out[p] = float64(n) / total
	}
	return out
}

// STCCount returns how many tasks (POTRF and TRSM, one per lower tile
// except the last diagonal) apply sender-side conversion.
func (m *Maps) STCCount() (stc, total int) {
	for i := 0; i < m.NT; i++ {
		for j := 0; j <= i; j++ {
			if i == j && i == m.NT-1 {
				continue // final POTRF issues no communication
			}
			total++
			if m.STC[i][j] {
				stc++
			}
		}
	}
	return stc, total
}

// Uniform returns a kernel map with FP64 on the diagonal and p on all
// off-diagonal tiles — the two-precision extremes (FP64/FP16_32,
// FP64/FP16) benchmarked in Fig 8, or full FP64/FP32 baselines when
// p is FP64/FP32.
func Uniform(nt int, p prec.Precision) [][]prec.Precision {
	k := lowerTri[prec.Precision](nt)
	for i := 0; i < nt; i++ {
		k[i][i] = prec.FP64
		for j := 0; j < i; j++ {
			k[i][j] = p
		}
	}
	return k
}

// UniformAll returns a kernel map with p everywhere, including the
// diagonal — the pure FP64/FP32 baselines.
func UniformAll(nt int, p prec.Precision) [][]prec.Precision {
	k := lowerTri[prec.Precision](nt)
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			k[i][j] = p
		}
	}
	return k
}

// FromMatrix computes exact tile norms from a numeric tiled matrix and
// returns the kernel map for the given required accuracy.
func FromMatrix(m *tile.Matrix, ureq float64, ladder []prec.Precision) [][]prec.Precision {
	norms, global := m.TileNorms()
	return NewKernelMap(m.NT, func(i, j int) float64 {
		return norms[i*(i+1)/2+j]
	}, global, ureq, ladder)
}

// EstimateTileNorms estimates the Frobenius norm of every lower tile of the
// covariance matrix Σ(θ) over locs — without materializing any tile — by
// sampling `samples` entries per tile and scaling by the tile area. It
// returns a norm oracle and the implied global norm. This powers precision
// maps at Summit scale (Fig 7's 409,600² matrix has 84·10⁹ entries; 256
// samples per tile need only ~5·10⁶ kernel evaluations).
func EstimateTileNorms(locs []geo.Point, d tile.Desc, k geo.Kernel, theta []float64, nugget float64, samples int, rng *stats.RNG) (norm func(i, j int) float64, global float64) {
	nt := d.NT
	norms := lowerTri[float64](nt)
	var ss float64
	for i := 0; i < nt; i++ {
		for j := 0; j <= i; j++ {
			m, n := d.TileDim(i), d.TileDim(j)
			r0, c0 := i*d.TS, j*d.TS
			var sumsq float64
			cnt := samples
			if m*n <= samples {
				// Small tile: exact.
				cnt = m * n
				for a := 0; a < m; a++ {
					for b := 0; b < n; b++ {
						v := covEntry(locs, r0+a, c0+b, k, theta, nugget)
						sumsq += v * v
					}
				}
			} else {
				for s := 0; s < samples; s++ {
					a, b := rng.IntN(m), rng.IntN(n)
					v := covEntry(locs, r0+a, c0+b, k, theta, nugget)
					sumsq += v * v
				}
			}
			est := sumsq / float64(cnt) * float64(m*n)
			norms[i][j] = sqrt64(est)
			if i == j {
				ss += est
			} else {
				ss += 2 * est
			}
		}
	}
	return func(i, j int) float64 { return norms[i][j] }, sqrt64(ss)
}

func covEntry(locs []geo.Point, gi, gj int, k geo.Kernel, theta []float64, nugget float64) float64 {
	if gi == gj {
		return k.Cov(0, theta) + nugget
	}
	return k.Cov(locs[gi].Dist(locs[gj]), theta)
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
