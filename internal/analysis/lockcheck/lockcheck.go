// Package lockcheck guards the two lock mistakes the stock vet passes miss
// and that matter in this repo's concurrent paths (the metrics registry read
// by trace export while workers update it, and the linalg parallel pool):
//
//   - a sync.Mutex/RWMutex Lock (or RLock) with no matching Unlock the
//     analyzer can see reaching function exit: either a deferred Unlock
//     after the Lock in the same block, or a plain Unlock later in the same
//     statement list (the straight-line bracket idiom used throughout
//     internal/obs). An Unlock hidden inside one branch of an if/switch
//     does not count — that is exactly the shape that leaks a lock on the
//     other branch.
//
//   - passing a value (not pointer) whose type transitively contains a
//     mutex to an interface-typed parameter — fmt.Printf("%+v", engine) is
//     the classic: the copylocks vet check misses it because the copy
//     happens at the interface boxing, and the copied lock state tears.
package lockcheck

import (
	"go/ast"
	"go/types"

	"geompc/internal/analysis"
)

// Analyzer is the lockcheck instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "flags Lock calls with no dominated or deferred Unlock, and mutex-bearing values boxed into interfaces",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockPairs(pass, fd)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkInterfaceBoxing(pass, call)
			}
			return true
		})
	}
}

// lockSite is one Lock/Unlock call, located by the statement list (block)
// holding it and its index there.
type lockSite struct {
	recv     string // receiver expression as written, e.g. "r.mu"
	method   string
	pos      int // index within block
	block    *ast.BlockStmt
	deferred bool
	node     ast.Node
}

// checkLockPairs walks fd's blocks and verifies every Lock/RLock is
// bracketed by an Unlock/RUnlock on the same receiver.
func checkLockPairs(pass *analysis.Pass, fd *ast.FuncDecl) {
	var locks, unlocks []lockSite
	var walkBlock func(b *ast.BlockStmt)
	record := func(b *ast.BlockStmt, i int, call *ast.CallExpr, deferred bool) {
		recv, method, ok := analysis.MutexMethod(pass.Info, call)
		if !ok {
			return
		}
		site := lockSite{recv: recv, method: method, pos: i, block: b, deferred: deferred, node: call}
		switch method {
		case "Lock", "RLock":
			if !deferred {
				locks = append(locks, site)
			}
		case "Unlock", "RUnlock":
			unlocks = append(unlocks, site)
		}
	}
	walkBlock = func(b *ast.BlockStmt) {
		if b == nil {
			return
		}
		for i, s := range b.List {
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					record(b, i, call, false)
				}
			case *ast.DeferStmt:
				record(b, i, s.Call, true)
			}
			// Recurse into nested blocks; nested sites keep their own block.
			ast.Inspect(s, func(n ast.Node) bool {
				if inner, ok := n.(*ast.BlockStmt); ok {
					walkBlock(inner)
					return false
				}
				return true
			})
		}
	}
	walkBlock(fd.Body)

	for _, l := range locks {
		if !bracketed(l, unlocks) {
			pass.Reportf(l.node.Pos(), "%s.%s has no deferred or same-block %s before function exit — a panic or early return leaks the lock", l.recv, l.method, unlockName(l.method))
		}
	}
}

// bracketed reports whether some unlock releases l: a matching deferred or
// plain Unlock later in l's own statement list.
func bracketed(l lockSite, unlocks []lockSite) bool {
	want := unlockName(l.method)
	for _, u := range unlocks {
		if u.recv != l.recv || u.method != want {
			continue
		}
		if u.block == l.block && u.pos > l.pos {
			return true
		}
	}
	return false
}

func unlockName(lock string) string {
	if lock == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// checkInterfaceBoxing flags call arguments that copy a mutex-bearing value
// into an interface parameter.
func checkInterfaceBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) {
			continue // already boxed upstream; the copy happened there
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if analysis.ContainsMutex(at.Type) {
			pass.Reportf(arg.Pos(), "passing %s by value copies its mutex into an interface — pass a pointer (vet's copylocks cannot see this boxing)", types.ExprString(arg))
		}
	}
}

// paramType returns the static type of argument i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}
