package lockcheck_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/lockcheck"
)

// TestFixture covers bracketed pairs (deferred and straight-line), a
// branch-only unlock, a missing unlock, an RLock/Unlock mismatch, the
// nolint hand-off pattern, and mutex copies through interface boxing.
func TestFixture(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "lockcheck")
	checkertest.Run(t, dir, "geompc/internal/obs", lockcheck.Analyzer)
}
