// Package preccast enforces the precision-safety contract: the Higham–Mary
// rule (‖A_ij‖·NT/‖A‖ ≤ u_req/u_low) evaluated by the precision selector is
// the *only* decision point allowed to lower precision, and the audited
// conversion API — prec.Quantize and the internal/fp16 rounding kernels —
// is the only code allowed to implement the lowering. These are the software
// analogues of the paper's STC/TTC conversion points: every byte that moves
// at reduced precision passes through them, which is what makes the error
// accounting and the per-precision byte counters trustworthy.
//
// Outside the allowlisted packages (fp16, prec, linalg — the quantizing
// kernels), the analyzer flags:
//
//   - lossy numeric conversions: float32(x) from a float64 expression, and
//     uint16(x) from any float (the raw-FP16-bits smell). Constant
//     conversions are exact at compile time and exempt.
//
//   - literal half-precision bit-twiddling: shifting or masking
//     math.Float32bits results (>>16 BF16 truncation, mantissa masks for
//     TF32/FP16) — rounding must come from fp16.BF16Round/TF32Round/Round.
package preccast

import (
	"go/ast"

	"geompc/internal/analysis"
)

// Analyzer is the preccast instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name: "preccast",
	Doc:  "flags lossy numeric down-casts and half-precision bit-twiddling outside the audited conversion API",
	Run:  run,
}

// allowPkgs implement the audited conversion API (fp16, prec) or are its
// quantizing consumers (the linalg mixed-precision kernels, whose packing
// loops are the STC conversion points themselves).
var allowPkgs = map[string]bool{
	"fp16": true, "prec": true, "linalg": true,
}

func run(pass *analysis.Pass) {
	if allowPkgs[analysis.PkgBase(pass)] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.BinaryExpr:
				checkBitTwiddle(pass, n)
			}
			return true
		})
	}
}

// checkConversion flags float64→float32 and float→uint16 conversions.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	desc, ok := analysis.LossyConversion(pass.Info, call)
	if !ok {
		return
	}
	if desc == "float64→float32 conversion" {
		pass.Reportf(call.Pos(), "lossy float64→float32 conversion outside the audited precision API — use prec.Quantize or an internal/fp16 rounding kernel (the STC/TTC conversion points)")
		return
	}
	pass.Reportf(call.Pos(), "float→uint16 conversion outside internal/fp16 — raw FP16/BF16 bit patterns must come from fp16.FromFloat32")
}

// checkBitTwiddle flags shift/mask arithmetic applied directly to
// math.Float32bits results: `bits >> 16` is a literal BF16 truncation,
// mantissa masks a literal TF32/FP16 round-to-zero.
func checkBitTwiddle(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if analysis.FloatBitsTwiddle(pass.Info, bin) {
		pass.Reportf(bin.Pos(), "literal half-precision bit-twiddling on math.Float32bits — use fp16.BF16Round/TF32Round/FromFloat32 so the conversion stays audited")
	}
}
