package preccast_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/preccast"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src", "preccast"}, elem...)...)
}

// TestOutside: in an unaudited package every lossy down-cast and
// bit-twiddle is flagged; exact conversions and constants are not.
func TestOutside(t *testing.T) {
	checkertest.Run(t, fixture("outside"), "geompc/internal/mle", preccast.Analyzer)
}

// TestAudited: the same expressions inside the conversion API are the
// implementation, not a violation.
func TestAudited(t *testing.T) {
	checkertest.Run(t, fixture("audited"), "geompc/internal/fp16", preccast.Analyzer)
}
