package contractcheck_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis"
	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/contractcheck"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src", "contractcheck"}, elem...)...)
}

// TestBackendContract loads a fixture solver package declaring Backend and
// an implementation package: the implementation whose Solve reads the wall
// clock is flagged at the method declaration, the deterministic one and
// the non-implementing lookalike are not.
func TestBackendContract(t *testing.T) {
	checkertest.RunDirs(t, []analysis.DirSpec{
		{Dir: fixture("solver"), ImportPath: "geompc/internal/solver"},
		{Dir: fixture("backends"), ImportPath: "geompc/internal/cgsolve"},
	}, contractcheck.Analyzer)
}
