// Package contractcheck machine-checks DESIGN.md §6i: every solver backend
// must be deterministic. The solver registry dispatches through the
// solver.Backend interface, the engine folds each backend's Result into the
// golden run digest, and the plan cache replays cached Results bit-for-bit
// — so a backend whose Solve wanders through time.Now, the global rand
// source or an order-leaking map range breaks three subsystems at once,
// none of them at the backend's own package.
//
// The check is structural, not name-based: a named type is a backend iff it
// (or its pointer) satisfies an interface named Backend declared in a
// package whose base name is "solver" — the same types.Implements test the
// registry's compile-time `var _ solver.Backend` assertions rely on. For
// each implementation found in the package under analysis, the contract
// methods (Solve, SolveCached) are resolved to their call-graph nodes and
// required to be transitively nondeterminism-free under deterflow's
// whole-program summary; a violation is reported at the method's
// declaration with the call chain down to the root source. Sites under a
// reasoned //geompc:nolint are audited, exactly as in deterflow.
package contractcheck

import (
	"go/types"
	"path"

	"geompc/internal/analysis"
	"geompc/internal/analysis/deterflow"
)

// Analyzer is the contractcheck instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name:    "contractcheck",
	Doc:     "requires every solver.Backend implementation's Solve/SolveCached to be transitively nondeterminism-free (DESIGN.md §6i)",
	Prepare: prepare,
	Run:     run,
}

// ContractMethods are the Backend methods bound by the determinism
// contract. Name() is exempt: it returns a static registry key.
var ContractMethods = map[string]bool{"Solve": true, "SolveCached": true}

func prepare(prog *analysis.Program) { deterflow.Facts(prog) }

// backendInterfaces finds every interface named Backend declared in a
// package whose base is "solver", as seen from pkg's own type-check
// universe (each root re-checks its dependencies, so interface identity
// only holds within one universe).
func backendInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		if path.Base(p.Path()) == "solver" {
			if obj, ok := p.Scope().Lookup("Backend").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					out = append(out, iface)
				}
			}
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(pkg)
	return out
}

func run(pass *analysis.Pass) {
	ifaces := backendInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return
	}
	facts := deterflow.Facts(pass.Prog)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue // the contract binds implementations, not the interface
		}
		for _, iface := range ifaces {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			checkBackend(pass, named, facts)
			break
		}
	}
}

// checkBackend verifies one implementation's contract methods.
func checkBackend(pass *analysis.Pass, named *types.Named, facts map[*analysis.Func]*analysis.Taint) {
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		m, ok := mset.At(i).Obj().(*types.Func)
		if !ok || !ContractMethods[m.Name()] {
			continue
		}
		fn := pass.Prog.FuncOf(m)
		if fn == nil {
			continue // embedded promotion from outside the loaded source
		}
		t := facts[fn]
		if t == nil {
			continue
		}
		pass.Reportf(fn.Pos, "solver backend %s: %s is not deterministic (%s) — DESIGN.md §6i requires bit-reproducible Solve/SolveCached; seed the source, sort the iteration, or suppress the root with a reasoned //geompc:nolint",
			named.Obj().Name(), m.Name(), pass.Prog.Chain(fn, facts))
	}
}
