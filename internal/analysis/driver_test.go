package analysis

import (
	"go/ast"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stub flags every call to a function literally named boom, so the driver's
// suppression logic can be tested without dragging in a real analyzer.
var stub = &Analyzer{
	Name: "stub",
	Doc:  "flags calls to boom",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
						pass.Reportf(call.Pos(), "boom call")
					}
				}
				return true
			})
		}
	},
}

// loadSource type-checks one source string as a package.
func loadSource(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "geompc/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func runStub(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return Run([]*Package{loadSource(t, src)}, []*Analyzer{stub})
}

const header = "package fixture\n\nfunc boom() {}\nfunc ok() {}\n\n"

func messages(ds []Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func wantOne(t *testing.T, ds []Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range ds {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("no %s diagnostic containing %q in %v", analyzer, substr, messages(ds))
}

// TestNolintSuppresses: a well-formed directive removes the diagnostic and
// produces nothing else, both trailing and on the line above.
func TestNolintSuppresses(t *testing.T) {
	for _, src := range []string{
		header + "func f() { boom() //geompc:nolint stub fixture needs the call\n}\n",
		header + "func f() {\n\t//geompc:nolint stub fixture needs the call\n\tboom()\n}\n",
	} {
		if ds := runStub(t, src); len(ds) != 0 {
			t.Errorf("want no diagnostics, got %v", messages(ds))
		}
	}
}

// TestNolintWrongAnalyzer: naming an unknown analyzer is a diagnostic of
// its own, and the suppression does not take effect.
func TestNolintWrongAnalyzer(t *testing.T) {
	ds := runStub(t, header+"func f() { boom() //geompc:nolint stob typo in the name\n}\n")
	if len(ds) != 2 {
		t.Fatalf("want 2 diagnostics (stub + nolint), got %v", messages(ds))
	}
	wantOne(t, ds, "stub", "boom call")
	wantOne(t, ds, NolintAnalyzerName, `unknown analyzer "stob"`)
}

// TestNolintMissingReason: the reason is mandatory; without it the
// directive neither suppresses nor passes.
func TestNolintMissingReason(t *testing.T) {
	ds := runStub(t, header+"func f() { boom() //geompc:nolint stub\n}\n")
	if len(ds) != 2 {
		t.Fatalf("want 2 diagnostics (stub + nolint), got %v", messages(ds))
	}
	wantOne(t, ds, "stub", "boom call")
	wantOne(t, ds, NolintAnalyzerName, "missing its mandatory reason")
}

// TestNolintExpired: a directive whose diagnostic is gone must be deleted.
func TestNolintExpired(t *testing.T) {
	ds := runStub(t, header+"func f() { ok() //geompc:nolint stub this used to be a boom call\n}\n")
	if len(ds) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", messages(ds))
	}
	wantOne(t, ds, NolintAnalyzerName, "expired //geompc:nolint")
}

// TestNolintBare: a directive with no analyzer at all.
func TestNolintBare(t *testing.T) {
	ds := runStub(t, header+"func f() { boom() //geompc:nolint\n}\n")
	wantOne(t, ds, NolintAnalyzerName, "needs an analyzer name and a reason")
	wantOne(t, ds, "stub", "boom call")
}

// TestNolintCannotSuppressNolint: the meta-analyzer name is reserved.
func TestNolintCannotSuppressNolint(t *testing.T) {
	ds := runStub(t, header+"func f() { ok() //geompc:nolint nolint because I say so\n}\n")
	wantOne(t, ds, NolintAnalyzerName, "cannot be suppressed")
}

// TestDiagnosticOrder: diagnostics come back sorted by position regardless
// of analyzer registration order.
func TestDiagnosticOrder(t *testing.T) {
	src := header + "func f() { boom(); boom() }\n\nfunc g() { boom() }\n"
	ds := runStub(t, src)
	if len(ds) != 3 {
		t.Fatalf("want 3 diagnostics, got %v", messages(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Pos.Line < ds[i-1].Pos.Line ||
			(ds[i].Pos.Line == ds[i-1].Pos.Line && ds[i].Pos.Column < ds[i-1].Pos.Column) {
			t.Errorf("diagnostics out of order: %v before %v", ds[i-1], ds[i])
		}
	}
}

// TestLoadDirRejectsEmpty guards the fixture loader's error path.
func TestLoadDirRejectsEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "x"); err == nil {
		t.Fatal("LoadDir on an empty dir must fail")
	}
}

// TestSourceImporterAvailable pins the framework's core assumption: the
// stdlib source importer can resolve std packages without export data.
func TestSourceImporterAvailable(t *testing.T) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	if _, err := imp.Import("sort"); err != nil {
		t.Fatalf("source importer cannot load sort: %v", err)
	}
}
