package analysis_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis"
)

const cgPath = "geompc/internal/fixture"

func loadCallgraph(t *testing.T) *analysis.Program {
	t.Helper()
	pkg, err := analysis.LoadDir(filepath.Join("testdata", "src", "callgraph"), cgPath)
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	return analysis.ProgramFromPackages([]*analysis.Package{pkg})
}

// edgeTargets collects the IDs fn's edges reach, keyed by edge kind.
func edgeTargets(fn *analysis.Func) (calls, refs map[string]bool) {
	calls, refs = map[string]bool{}, map[string]bool{}
	for _, e := range fn.Edges {
		if e.Kind == analysis.EdgeCall {
			calls[e.Callee.ID] = true
		} else {
			refs[e.Callee.ID] = true
		}
	}
	return calls, refs
}

// TestInterfaceDispatch: a call through an interface resolves to every
// in-program implementation with a matching method.
func TestInterfaceDispatch(t *testing.T) {
	prog := loadCallgraph(t)
	fn := prog.FuncByID(cgPath + ".Dispatch")
	if fn == nil {
		t.Fatal("Dispatch not in graph")
	}
	calls, _ := edgeTargets(fn)
	for _, want := range []string{cgPath + ".(fast).Run", cgPath + ".(slow).Run"} {
		if !calls[want] {
			t.Errorf("Dispatch missing dispatch edge to %s (have %v)", want, calls)
		}
	}
}

// TestClosures: literals become their own nodes, named in source order, and
// calling a named literal produces a call edge to its node.
func TestClosures(t *testing.T) {
	prog := loadCallgraph(t)
	fn := prog.FuncByID(cgPath + ".Closures")
	if fn == nil {
		t.Fatal("Closures not in graph")
	}
	calls, refs := edgeTargets(fn)
	if !calls[cgPath+".Closures$1"] {
		t.Errorf("call to named literal add not resolved: calls=%v", calls)
	}
	if !refs[cgPath+".Closures$1"] {
		t.Errorf("binding the named literal should also be a ref edge: refs=%v", refs)
	}
	if !calls[cgPath+".Closures$2"] {
		t.Errorf("immediately-invoked literal not a call edge: calls=%v", calls)
	}
	if refs[cgPath+".Closures$2"] {
		t.Error("immediately-invoked literal double-counted as a ref")
	}
	inner := prog.FuncByID(cgPath + ".Closures$2$1")
	if inner == nil {
		t.Fatal("nested literal has no node")
	}
	outer := prog.FuncByID(cgPath + ".Closures$2")
	oc, _ := edgeTargets(outer)
	if !oc[inner.ID] {
		t.Errorf("nested literal call not attributed to its parent literal: %v", oc)
	}
}

// TestMethodValue: binding s.Run is a ref edge (a may-call for value-flow
// analyzers), not a call edge.
func TestMethodValue(t *testing.T) {
	prog := loadCallgraph(t)
	fn := prog.FuncByID(cgPath + ".MethodValue")
	if fn == nil {
		t.Fatal("MethodValue not in graph")
	}
	calls, refs := edgeTargets(fn)
	target := cgPath + ".(slow).Run"
	if !refs[target] {
		t.Errorf("method value binding missing ref edge to %s: refs=%v", target, refs)
	}
	if calls[target] {
		t.Error("method value binding wrongly recorded as a call")
	}
}

// TestRecursiveSCC: mutual recursion collapses into one component, and the
// caller's component comes later in bottom-up order.
func TestRecursiveSCC(t *testing.T) {
	prog := loadCallgraph(t)
	comp := map[string]int{}
	for i, scc := range prog.SCCs() {
		for _, fn := range scc {
			comp[fn.ID] = i
		}
	}
	even, odd, top := comp[cgPath+".Even"], comp[cgPath+".Odd"], comp[cgPath+".Top"]
	if even != odd {
		t.Errorf("Even (scc %d) and Odd (scc %d) not in one component", even, odd)
	}
	if top <= even {
		t.Errorf("caller Top (scc %d) not after callee component (scc %d) in bottom-up order", top, even)
	}
}

// TestFlowSummary: a synthetic taint planted at one root propagates to
// every transitive caller — through the interface dispatch and the SCC —
// and Chain renders the path.
func TestFlowSummary(t *testing.T) {
	prog := loadCallgraph(t)
	root := prog.FuncByID(cgPath + ".(slow).Run")
	if root == nil {
		t.Fatal("root not in graph")
	}
	facts := prog.Flow(analysis.FlowSpec{
		Key: "test",
		Direct: func(fn *analysis.Func) *analysis.Taint {
			if fn == root {
				return &analysis.Taint{What: "planted", Pos: fn.Pos, CallPos: fn.Pos}
			}
			return nil
		},
	})
	if facts[root] == nil {
		t.Fatal("root lost its own taint")
	}
	dispatch := prog.FuncByID(cgPath + ".Dispatch")
	if facts[dispatch] == nil {
		t.Error("taint did not flow through interface dispatch")
	}
	mv := prog.FuncByID(cgPath + ".MethodValue")
	if facts[mv] == nil {
		t.Error("taint did not flow through the method-value ref edge")
	}
	if clean := prog.FuncByID(cgPath + ".Even"); facts[clean] != nil {
		t.Errorf("unrelated function tainted: %s", facts[clean].What)
	}
	chain := prog.Chain(dispatch, facts)
	if chain == "" {
		t.Error("empty chain for tainted function")
	}
}

// TestFlowCallsOnly: with CallsOnly set, ref edges do not propagate.
func TestFlowCallsOnly(t *testing.T) {
	prog := loadCallgraph(t)
	root := prog.FuncByID(cgPath + ".(slow).Run")
	facts := prog.Flow(analysis.FlowSpec{
		Key:       "test-callsonly",
		CallsOnly: true,
		Direct: func(fn *analysis.Func) *analysis.Taint {
			if fn == root {
				return &analysis.Taint{What: "planted", Pos: fn.Pos, CallPos: fn.Pos}
			}
			return nil
		},
	})
	if facts[prog.FuncByID(cgPath+".Dispatch")] == nil {
		t.Error("dispatch call edge should still propagate under CallsOnly")
	}
	if facts[prog.FuncByID(cgPath+".MethodValue")] != nil {
		t.Error("ref edge propagated despite CallsOnly")
	}
}

// TestFlowBlock: a Block hook stops propagation across the matched edge.
func TestFlowBlock(t *testing.T) {
	prog := loadCallgraph(t)
	root := prog.FuncByID(cgPath + ".Even")
	facts := prog.Flow(analysis.FlowSpec{
		Key: "test-block",
		Direct: func(fn *analysis.Func) *analysis.Taint {
			if fn == root {
				return &analysis.Taint{What: "planted", Pos: fn.Pos, CallPos: fn.Pos}
			}
			return nil
		},
		Block: func(fn *analysis.Func, e analysis.Edge) bool {
			return fn.ID == cgPath+".Top"
		},
	})
	if facts[prog.FuncByID(cgPath+".Odd")] == nil {
		t.Error("taint should circulate inside the SCC")
	}
	if facts[prog.FuncByID(cgPath+".Top")] != nil {
		t.Error("Block hook did not stop propagation into Top")
	}
}
