package analysis

// Site detectors shared by the intraprocedural analyzers (preccast,
// detercheck) and their interprocedural counterparts (precflow, deterflow):
// both layers must agree on what a lossy conversion or an order-leaking map
// range *is*, or a finding could appear at one layer and be invisible to
// the other.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// InspectOwn walks fn's own body, skipping nested function literals — each
// literal is its own call-graph node and analyzes its own body. When fn
// itself is a literal, its body is the root and still walked.
func InspectOwn(fn *Func, visit func(ast.Node) bool) {
	body := fn.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return visit(n)
	})
}

// LossyConversion reports whether call is a lossy numeric conversion
// outside the audited API's shape: float64→float32, or float→uint16 (the
// raw-FP16-bits smell). Constant conversions are exact at compile time and
// exempt. The returned description names the conversion.
func LossyConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	target, ok := IsConversion(info, call)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	arg := call.Args[0]
	if IsConstant(info, arg) {
		return "", false
	}
	tb, ok := target.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	from := BasicKind(info, arg)
	switch tb.Kind() {
	case types.Float32:
		if from == types.Float64 {
			return "float64→float32 conversion", true
		}
	case types.Uint16:
		if from == types.Float32 || from == types.Float64 {
			return "float→uint16 conversion", true
		}
	}
	return "", false
}

// FloatBitsTwiddle reports whether bin shifts or masks a math.Float32bits
// result — `bits >> 16` is a literal BF16 truncation, mantissa masks a
// literal TF32/FP16 round-to-zero.
func FloatBitsTwiddle(info *types.Info, bin *ast.BinaryExpr) bool {
	switch bin.Op {
	case token.SHR, token.AND, token.AND_NOT:
	default:
		return false
	}
	call, ok := bin.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := CalleePkgFunc(info, call)
	return ok && pkg == "math" && name == "Float32bits"
}

// MapRangeEscapes reports whether rng iterates a map in an order that can
// escape: the body is neither provably order-insensitive (map writes and
// deletes keyed by the range variable, integer counter updates) nor the
// collect-into-slices-then-sort idiom. encl is the enclosing function body
// searched for the laundering sort call.
func MapRangeEscapes(info *types.Info, encl ast.Node, rng *ast.RangeStmt) bool {
	if !IsMap(info, rng.X) {
		return false
	}
	if orderInsensitiveBody(info, rng.Body.List) {
		return false
	}
	if targets, ok := appendOnlyBody(info, rng.Body.List); ok && sortedAfter(info, encl, rng.End(), targets) {
		return false
	}
	return true
}

// orderInsensitiveBody reports whether every statement commutes across
// iterations: map index writes and deletes (distinct keys per iteration),
// integer/bool counter updates, and continue. Floating-point accumulation is
// deliberately not on the list — float addition does not commute bit-exactly.
func orderInsensitiveBody(info *types.Info, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(info, s) {
				return false
			}
		case *ast.IncDecStmt:
			if !integerKind(BasicKind(info, s.X)) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !IsBuiltinCall(info, call, "delete") {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	if _, isIndex := s.Lhs[0].(*ast.IndexExpr); isIndex {
		// m[k] = v / m[k] += v: one key per iteration, order-free as long as
		// the indexed container is a map (slice writes at computed indexes
		// would also be fine, but keep to the common case).
		return IsMap(info, s.Lhs[0].(*ast.IndexExpr).X)
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return integerKind(BasicKind(info, s.Lhs[0]))
	}
	return false
}

func integerKind(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// appendOnlyBody reports whether the body only appends to local slices,
// returning the rendered append targets.
func appendOnlyBody(info *types.Info, stmts []ast.Stmt) (targets []string, ok bool) {
	for _, s := range stmts {
		as, isAssign := s.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return nil, false
		}
		call, isCall := as.Rhs[0].(*ast.CallExpr)
		if !isCall || !IsBuiltinCall(info, call, "append") || len(call.Args) == 0 {
			return nil, false
		}
		lhs := types.ExprString(as.Lhs[0])
		if lhs != types.ExprString(call.Args[0]) {
			return nil, false
		}
		targets = append(targets, lhs)
	}
	return targets, len(targets) > 0
}

// sortedAfter reports whether, after pos, the enclosing body calls into
// package sort or slices with one of the append targets among the
// arguments — the collect-then-sort idiom that launders map order away.
func sortedAfter(info *types.Info, encl ast.Node, pos token.Pos, targets []string) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		pkg, _, ok := CalleePkgFunc(info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			a := types.ExprString(arg)
			for _, t := range targets {
				if a == t {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
