package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Name       string
}

// LoadPackages enumerates patterns with `go list` inside dir and returns one
// type-checked Package per match, in import-path order. Only non-test Go
// files are analyzed: the determinism and precision contracts bind
// production code, and tests are where seeded randomness is deliberately
// allowed. Type checking uses the source importer, so the loader needs no
// export data and works in a cold build cache.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go list %v: %v: %s", patterns, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as one
// package with the given import path. Used by the fixture runner
// (checkertest) and the geompclint smoke test, where fixtures live under
// testdata and are invisible to `go list`. The explicit import path matters:
// analyzers scope themselves by package path (e.g. detercheck's
// virtual-clock package set), so fixtures choose which regime they test by
// the path they claim.
func LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return checkFiles(fset, imp, importPath, matches)
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
