package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// The loader. LoadProgram enumerates the full dependency closure with
// `go list -deps -json` and type-checks every package exactly once with a
// shared cache, parallelizing across independent subtrees of the import
// DAG — the old per-root source importer re-checked shared dependencies
// and ran serially, which dominated `make lint` wall-clock. Module-local
// packages keep their ASTs and type info (the call graph needs them);
// standard-library packages contribute types only.
//
// Only non-test Go files are analyzed: the determinism and precision
// contracts bind production code, and tests are where seeded randomness is
// deliberately allowed.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// LoadProgram loads patterns and their full dependency closure from dir
// and returns the whole-program view: Roots are the pattern matches, All
// is every module-local package (ASTs retained), and every dependency is
// type-checked exactly once.
func LoadProgram(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	rootList, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	rootSet := make(map[string]bool, len(rootList))
	module := ""
	for _, lp := range rootList {
		rootSet[lp.ImportPath] = true
		if lp.Module != nil && lp.Module.Path != "" {
			module = lp.Module.Path
		}
	}

	ld := newLoader(listed, module)
	if err := ld.checkAll(); err != nil {
		return nil, err
	}

	prog := &Program{Module: module}
	for _, lp := range listed {
		pkg := ld.astPkgs[lp.ImportPath]
		if pkg == nil {
			continue
		}
		prog.All = append(prog.All, pkg)
		if rootSet[lp.ImportPath] {
			prog.Roots = append(prog.Roots, pkg)
		}
	}
	sort.Slice(prog.All, func(i, j int) bool { return prog.All[i].Path < prog.All[j].Path })
	sort.Slice(prog.Roots, func(i, j int) bool { return prog.Roots[i].Path < prog.Roots[j].Path })
	return prog, nil
}

// LoadPackages is the PR 5 entry point, preserved for the per-package
// analyzers' tests: the roots of LoadProgram.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return prog.Roots, nil
}

// goList runs `go list -json` with args in dir and decodes the stream.
// Packages without Go files (e.g. "unsafe" has one; pseudo-packages don't)
// are kept — the checker special-cases them.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go list %v: %v: %s", args, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %v", args, err)
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// loader type-checks a dependency-closed package set bottom-up with a
// bounded worker pool. types.Package results are the shared cache; each
// package is parsed and checked exactly once no matter how many packages
// import it.
type loader struct {
	fset   *token.FileSet
	module string
	byPath map[string]*listedPackage

	mu      sync.Mutex
	typed   map[string]*types.Package
	astPkgs map[string]*Package
	failed  error
}

func newLoader(listed []listedPackage, module string) *loader {
	ld := &loader{
		fset:    token.NewFileSet(),
		module:  module,
		byPath:  make(map[string]*listedPackage, len(listed)),
		typed:   make(map[string]*types.Package, len(listed)),
		astPkgs: make(map[string]*Package),
	}
	for i := range listed {
		lp := &listed[i]
		ld.byPath[lp.ImportPath] = lp
	}
	return ld
}

// checkAll schedules the DAG: a package becomes ready when every listed
// import is done. Workers are bounded by GOMAXPROCS.
func (ld *loader) checkAll() error {
	// Dependency counts restricted to the listed closure.
	waiting := make(map[string]int, len(ld.byPath))
	dependents := make(map[string][]string, len(ld.byPath))
	var ready []string
	for path, lp := range ld.byPath {
		n := 0
		for _, imp := range lp.Imports {
			imp = ld.resolveImport(lp, imp)
			if imp == path {
				continue
			}
			if _, ok := ld.byPath[imp]; ok {
				n++
				dependents[imp] = append(dependents[imp], path)
			}
		}
		waiting[path] = n
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(ld.byPath) {
		workers = len(ld.byPath)
	}
	if workers < 1 {
		workers = 1
	}
	queue := make(chan string, len(ld.byPath))
	done := make(chan string, len(ld.byPath))
	for _, p := range ready {
		queue <- p
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range queue {
				ld.checkOne(path)
				done <- path
			}
		}()
	}
	for finished := 0; finished < len(ld.byPath); finished++ {
		path := <-done
		deps := dependents[path]
		sort.Strings(deps)
		for _, d := range deps {
			waiting[d]--
			if waiting[d] == 0 {
				queue <- d
			}
		}
	}
	close(queue)
	wg.Wait()
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.failed
}

// resolveImport applies go list's ImportMap (vendoring, "C" shims).
func (ld *loader) resolveImport(lp *listedPackage, imp string) string {
	if lp.ImportMap != nil {
		if mapped, ok := lp.ImportMap[imp]; ok {
			return mapped
		}
	}
	return imp
}

// checkOne parses and type-checks a single package; its imports are
// guaranteed complete by the scheduler.
func (ld *loader) checkOne(path string) {
	lp := ld.byPath[path]
	if path == "unsafe" {
		ld.mu.Lock()
		ld.typed[path] = types.Unsafe
		ld.mu.Unlock()
		return
	}
	if len(lp.GoFiles) == 0 {
		return
	}
	ld.mu.Lock()
	if ld.failed != nil {
		ld.mu.Unlock()
		return
	}
	ld.mu.Unlock()

	paths := make([]string, 0, len(lp.GoFiles))
	for _, f := range lp.GoFiles {
		paths = append(paths, filepath.Join(lp.Dir, f))
	}
	var files []*ast.File
	for _, fp := range paths {
		f, err := parser.ParseFile(ld.fset, fp, nil, parser.ParseComments)
		if err != nil {
			ld.fail(err)
			return
		}
		files = append(files, f)
	}
	local := ld.module != "" && (path == ld.module || len(path) > len(ld.module) && path[:len(ld.module)+1] == ld.module+"/")
	var info *types.Info
	if local {
		info = NewInfo()
	}
	conf := types.Config{Importer: &loaderImporter{ld: ld, lp: lp}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		ld.fail(fmt.Errorf("type-checking %s: %v", path, err))
		return
	}
	ld.mu.Lock()
	ld.typed[path] = tpkg
	if local {
		ld.astPkgs[path] = &Package{Path: path, Fset: ld.fset, Files: files, Pkg: tpkg, Info: info}
	}
	ld.mu.Unlock()
}

func (ld *loader) fail(err error) {
	ld.mu.Lock()
	if ld.failed == nil {
		ld.failed = err
	}
	ld.mu.Unlock()
}

// loaderImporter serves completed packages from the shared cache.
type loaderImporter struct {
	ld *loader
	lp *listedPackage
}

func (li *loaderImporter) Import(imp string) (*types.Package, error) {
	imp = li.ld.resolveImport(li.lp, imp)
	if imp == "unsafe" {
		return types.Unsafe, nil
	}
	li.ld.mu.Lock()
	pkg := li.ld.typed[imp]
	li.ld.mu.Unlock()
	if pkg == nil {
		return nil, fmt.Errorf("import %q not yet checked (dependency scheduling bug)", imp)
	}
	return pkg, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as one
// package with the given import path. Used by the fixture runner
// (checkertest) and the geompclint smoke test, where fixtures live under
// testdata and are invisible to `go list`. The explicit import path matters:
// analyzers scope themselves by package path (e.g. detercheck's
// virtual-clock package set), so fixtures choose which regime they test by
// the path they claim.
func LoadDir(dir, importPath string) (*Package, error) {
	pkgs, err := LoadDirs(DirSpec{Dir: dir, ImportPath: importPath})
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// DirSpec names one fixture directory and the import path it claims.
type DirSpec struct {
	Dir        string
	ImportPath string
}

// LoadDirs type-checks several fixture directories as one mini-program, in
// the given order; later fixtures may import earlier ones by their claimed
// import path (how the interprocedural fixtures model cross-package call
// chains, e.g. a "solver" package and an implementation package). Standard
// library imports fall back to the source importer.
func LoadDirs(specs ...DirSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	fixtures := make(map[string]*types.Package)
	imp := &fixtureImporter{std: std, fixtures: fixtures}
	var out []*Package
	for _, spec := range specs {
		matches, err := filepath.Glob(filepath.Join(spec.Dir, "*.go"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		if len(matches) == 0 {
			return nil, fmt.Errorf("no .go files in %s", spec.Dir)
		}
		var files []*ast.File
		for _, path := range matches {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(spec.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", spec.ImportPath, err)
		}
		fixtures[spec.ImportPath] = tpkg
		out = append(out, &Package{Path: spec.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info})
	}
	return out, nil
}

// fixtureImporter resolves fixture import paths before the stdlib.
type fixtureImporter struct {
	std      types.Importer
	fixtures map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.fixtures[path]; ok {
		return pkg, nil
	}
	return fi.std.Import(path)
}
