package analysis

// The driver: runs a set of analyzers over loaded packages, applies
// //geompc:nolint suppression, and turns directive misuse into diagnostics
// of its own. Suppressions are deliberately strict — a suppression that
// names no known analyzer, gives no reason, or no longer suppresses
// anything is each reported, so the directive inventory can never rot.

// NolintAnalyzerName is the pseudo-analyzer name under which the driver
// reports directive misuse (unknown analyzer, missing reason, expired
// suppression). It is a reserved name: nolint diagnostics cannot themselves
// be suppressed.
const NolintAnalyzerName = "nolint"

// Run applies every analyzer to every package and returns the surviving
// diagnostics in stable (file, line, column) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var nolints []*Nolint
		for _, f := range pkg.Files {
			nolints = append(nolints, parseNolints(pkg.Fset, f)...)
		}

		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}

		for _, d := range diags {
			if !suppressed(d, nolints, known) {
				out = append(out, d)
			}
		}
		out = append(out, directiveDiagnostics(pkg, nolints, known)...)
	}
	sortDiagnostics(out)
	return out
}

// suppressed reports whether a well-formed nolint directive covers d, and
// marks the directive used. Malformed directives (unknown analyzer, missing
// reason) never suppress: the code stays flagged until the directive is
// fixed, so a typo cannot silently disable a check.
func suppressed(d Diagnostic, nolints []*Nolint, known map[string]bool) bool {
	for _, n := range nolints {
		if n.File != d.Pos.Filename || n.Line != d.Pos.Line || n.Analyzer != d.Analyzer {
			continue
		}
		if !known[n.Analyzer] || n.Reason == "" {
			continue
		}
		n.used = true
		return true
	}
	return false
}

// directiveDiagnostics reports misused nolint directives for one package.
func directiveDiagnostics(pkg *Package, nolints []*Nolint, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(n *Nolint, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: NolintAnalyzerName}, Fset: pkg.Fset}
		p.Reportf(n.Pos, format, args...)
		out = append(out, p.diags...)
	}
	for _, n := range nolints {
		switch {
		case n.Analyzer == "":
			report(n, "//geompc:nolint needs an analyzer name and a reason")
		case n.Analyzer == NolintAnalyzerName:
			report(n, "nolint diagnostics cannot be suppressed")
		case !known[n.Analyzer]:
			report(n, "unknown analyzer %q in //geompc:nolint directive", n.Analyzer)
		case n.Reason == "":
			report(n, "//geompc:nolint %s is missing its mandatory reason", n.Analyzer)
		case !n.used:
			report(n, "expired //geompc:nolint: no %s diagnostic on this line — delete the directive", n.Analyzer)
		}
	}
	return out
}
