package analysis

import (
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// The driver: runs a set of analyzers over a loaded program, applies
// //geompc:nolint suppression, and turns directive misuse into diagnostics
// of its own. Suppressions are deliberately strict — a suppression that
// names no known analyzer, gives no reason, or no longer suppresses
// anything is each reported, so the directive inventory can never rot.
//
// Interprocedural analyzers run in two phases: every Prepare hook first
// (serial, whole program — call-graph construction and summary dataflow
// happen here, memoized on the Program), then every (package, analyzer)
// Run in parallel across packages. Runs only read the memoized summaries,
// so the parallel phase is race-free, and the final (file, line, column)
// sort makes the output independent of scheduling.

// NolintAnalyzerName is the pseudo-analyzer name under which the driver
// reports directive misuse (unknown analyzer, missing reason, expired
// suppression). It is a reserved name: nolint diagnostics cannot themselves
// be suppressed.
const NolintAnalyzerName = "nolint"

// Run applies every analyzer to every package and returns the surviving
// diagnostics in stable (file, line, column) order. The packages are
// treated as a self-contained program (fixtures and driver tests).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(ProgramFromPackages(pkgs), analyzers)
}

// RunProgram applies every analyzer to the program's root packages.
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog.indexNolints()
	for _, a := range analyzers {
		if a.Prepare != nil {
			a.Prepare(prog)
		}
	}

	perPkg := make([][]Diagnostic, len(prog.Roots))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range prog.Roots {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = runPackage(prog, pkg, analyzers, known)
		}(i, pkg)
	}
	wg.Wait()

	var out []Diagnostic
	for _, ds := range perPkg {
		out = append(out, ds...)
	}
	sortDiagnostics(out)
	return out
}

// runPackage runs every analyzer over one package, applies that package's
// suppressions, and reports its directive misuse.
func runPackage(prog *Program, pkg *Package, analyzers []*Analyzer, known map[string]bool) []Diagnostic {
	nolints := prog.pkgNolints[pkg]
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, Prog: prog}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(d, nolints, known) {
			out = append(out, d)
		}
	}
	out = append(out, directiveDiagnostics(pkg, nolints, known)...)
	return out
}

// suppressed reports whether a well-formed nolint directive covers d, and
// marks the directive used. Malformed directives (unknown analyzer, missing
// reason) never suppress: the code stays flagged until the directive is
// fixed, so a typo cannot silently disable a check.
func suppressed(d Diagnostic, nolints []*Nolint, known map[string]bool) bool {
	for _, n := range nolints {
		if n.File != d.Pos.Filename || n.Line != d.Pos.Line || n.Analyzer != d.Analyzer {
			continue
		}
		if !known[n.Analyzer] || n.Reason == "" {
			continue
		}
		n.used = true
		return true
	}
	return false
}

// directiveDiagnostics reports misused nolint directives for one package.
func directiveDiagnostics(pkg *Package, nolints []*Nolint, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(n *Nolint, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: NolintAnalyzerName}, Fset: pkg.Fset}
		p.Reportf(n.Pos, format, args...)
		out = append(out, p.diags...)
	}
	for _, n := range nolints {
		switch {
		case n.Analyzer == "":
			report(n, "//geompc:nolint needs an analyzer name and a reason")
		case n.Analyzer == NolintAnalyzerName:
			report(n, "nolint diagnostics cannot be suppressed")
		case !known[n.Analyzer]:
			report(n, "unknown analyzer %q in //geompc:nolint directive", n.Analyzer)
		case n.Reason == "":
			report(n, "//geompc:nolint %s is missing its mandatory reason", n.Analyzer)
		case !n.used:
			report(n, "expired //geompc:nolint: no %s diagnostic on this line — delete the directive", n.Analyzer)
		}
	}
	return out
}

// indexNolints parses every directive in the program once: per package for
// the driver's suppression filtering, and by (file, line) for the summary
// engines' root-site suppression checks.
func (p *Program) indexNolints() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pkgNolints != nil {
		return
	}
	p.pkgNolints = make(map[*Package][]*Nolint, len(p.All))
	p.nolintIdx = make(map[string]map[int][]*Nolint)
	for _, pkg := range p.All {
		var ns []*Nolint
		for _, f := range pkg.Files {
			ns = append(ns, parseNolints(pkg.Fset, f)...)
		}
		p.pkgNolints[pkg] = ns
		for _, n := range ns {
			lines := p.nolintIdx[n.File]
			if lines == nil {
				lines = make(map[int][]*Nolint)
				p.nolintIdx[n.File] = lines
			}
			lines[n.Line] = append(lines[n.Line], n)
		}
	}
}

// SuppressedAt reports whether a well-formed directive naming one of the
// given analyzers covers the source line of pos, and marks it used. The
// summary engines call this on candidate root sites: a site a human has
// audited and suppressed must not taint its callers — otherwise every
// suppression would just move the finding one call up the graph.
func (p *Program) SuppressedAt(fset *token.FileSet, pos token.Pos, analyzers ...string) bool {
	p.indexNolints()
	position := fset.Position(pos)
	p.mu.Lock()
	defer p.mu.Unlock()
	hit := false
	for _, n := range p.nolintIdx[position.Filename][position.Line] {
		if n.Reason == "" {
			continue
		}
		for _, a := range analyzers {
			if n.Analyzer == a {
				n.used = true
				hit = true
			}
		}
	}
	return hit
}

// Suppression is one well-formed //geompc:nolint directive, for the
// `geompclint -suppressions` inventory.
type Suppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	// Active reports whether the directive suppressed a diagnostic or
	// sanitized a summary root in the run that preceded the query; an
	// inactive entry is an expired directive (itself a diagnostic).
	Active bool `json:"active"`
}

// Suppressions lists every well-formed directive in the program's root
// packages in (file, line) order. Call after RunProgram so Active reflects
// the run.
func (p *Program) Suppressions() []Suppression {
	p.indexNolints()
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Suppression
	for _, pkg := range p.Roots {
		for _, n := range p.pkgNolints[pkg] {
			if n.Analyzer == "" || n.Reason == "" {
				continue
			}
			out = append(out, Suppression{File: n.File, Line: n.Line, Analyzer: n.Analyzer, Reason: n.Reason, Active: n.used})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
