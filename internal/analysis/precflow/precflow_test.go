package precflow_test

import (
	"path/filepath"
	"testing"

	"geompc/internal/analysis"
	"geompc/internal/analysis/checkertest"
	"geompc/internal/analysis/precflow"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src", "precflow"}, elem...)...)
}

// TestLoweringChains loads the audited conversion package (base "fp16"), a
// helper with a buried unaudited lowering, and a consumer: every chain that
// reaches the raw cast is flagged (call and reference), while routes
// through the audited API and reasoned suppressions stay clean.
func TestLoweringChains(t *testing.T) {
	checkertest.RunDirs(t, []analysis.DirSpec{
		{Dir: fixture("fp16"), ImportPath: "geompc/internal/fp16"},
		{Dir: fixture("geo"), ImportPath: "geompc/internal/geo"},
		{Dir: fixture("consumer"), ImportPath: "geompc/internal/mle"},
	}, precflow.Analyzer)
}
