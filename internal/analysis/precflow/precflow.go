// Package precflow is the interprocedural half of the precision-safety
// contract. preccast flags a lossy down-cast where it is written; precflow
// flags the *call chains* that reach one, so a float32(x) wrapped in a
// helper — or hidden behind an interface-typed abstraction — is caught at
// every unaudited entry point into it:
//
//   - A lowering site is what preccast flags: a non-constant
//     float64→float32 or float→uint16 conversion, or shift/mask
//     bit-twiddling on math.Float32bits. Sites under a reasoned
//     //geompc:nolint for preccast or precflow are audited and clean.
//
//   - The audited conversion API sanitizes: any edge crossing from outside
//     into internal/fp16, internal/prec or internal/linalg (the paper's
//     STC/TTC conversion points and their quantizing kernels) stops
//     propagation — calling prec.Quantize is the *correct* way to lower
//     precision and never taints the caller.
//
// Facts propagate bottom-up over call-graph SCCs through static calls,
// interface dispatch, closures and method values. A finding is a call or
// reference, in a package outside the audited set, to a function (also
// outside it) whose summary reaches a lowering; the root site itself stays
// preccast's finding, so a fix at the root clears both layers.
package precflow

import (
	"go/ast"
	"go/token"
	"path/filepath"

	"geompc/internal/analysis"
)

// Name is the analyzer name, usable in //geompc:nolint directives.
const Name = "precflow"

// Analyzer is the precflow instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name:    Name,
	Doc:     "flags call chains that reach a lossy precision lowering outside the audited prec/fp16/linalg conversion API",
	Prepare: prepare,
	Run:     run,
}

// AuditedPkgs implement the audited conversion API (fp16, prec) or are its
// quantizing consumers (the linalg mixed-precision kernels, whose packing
// loops are the STC conversion points themselves). Same set as preccast.
var AuditedPkgs = map[string]bool{
	"fp16": true, "prec": true, "linalg": true,
}

// Facts computes (or returns) the lowering summary: for each function, the
// earliest unaudited lowering it can reach, or nil.
func Facts(prog *analysis.Program) map[*analysis.Func]*analysis.Taint {
	return prog.Flow(analysis.FlowSpec{
		Key: "lowering",
		Direct: func(fn *analysis.Func) *analysis.Taint {
			return directLowering(prog, fn)
		},
		Block: func(fn *analysis.Func, e analysis.Edge) bool {
			// Crossing into the audited API is the sanctioned conversion
			// point; inside the audited set everything may flow.
			return !AuditedPkgs[pkgBaseOf(fn)] && AuditedPkgs[pkgBaseOf(e.Callee)]
		},
	})
}

func prepare(prog *analysis.Program) { Facts(prog) }

func pkgBaseOf(fn *analysis.Func) string { return filepath.Base(fn.Pkg.Path) }

// directLowering finds the function's first lossy site.
func directLowering(prog *analysis.Program, fn *analysis.Func) *analysis.Taint {
	var taint *analysis.Taint
	record := func(pos token.Pos, what string) {
		if taint != nil {
			return
		}
		if prog.SuppressedAt(fn.Pkg.Fset, pos, "preccast", Name) {
			return
		}
		taint = &analysis.Taint{What: what, Pos: pos, CallPos: pos}
	}
	analysis.InspectOwn(fn, func(n ast.Node) bool {
		if taint != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc, ok := analysis.LossyConversion(fn.Pkg.Info, n); ok {
				record(n.Pos(), desc)
			}
		case *ast.BinaryExpr:
			if analysis.FloatBitsTwiddle(fn.Pkg.Info, n) {
				record(n.Pos(), "math.Float32bits bit-twiddling")
			}
		}
		return true
	})
	return taint
}

// run reports, for each function outside the audited packages, every call
// or reference that reaches an unaudited lowering.
func run(pass *analysis.Pass) {
	if AuditedPkgs[analysis.PkgBase(pass)] {
		return
	}
	facts := Facts(pass.Prog)
	pkgPath := pass.Pkg.Path()
	seen := make(map[token.Pos]bool)
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg.Path != pkgPath {
			continue
		}
		for _, e := range fn.Edges {
			if seen[e.Pos] {
				continue
			}
			if AuditedPkgs[pkgBaseOf(e.Callee)] {
				continue // the sanctioned conversion API
			}
			t := facts[e.Callee]
			if t == nil {
				continue
			}
			seen[e.Pos] = true
			verb := "call to"
			if e.Kind == analysis.EdgeRef {
				verb = "reference to"
			}
			pass.Reportf(e.Pos, "%s %s reaches an unaudited %s (%s) — route the lowering through prec.Quantize or an internal/fp16 rounding kernel (the STC/TTC conversion points)",
				verb, e.Callee.Name, t.What, pass.Prog.Chain(e.Callee, facts))
		}
	}
}
