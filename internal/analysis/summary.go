package analysis

// Summary-based interprocedural dataflow. Each flow analyzer describes its
// lattice with a FlowSpec — what counts as a "bad" site inside a function
// body (Direct), how body-less extern callees behave (Extern), and which
// edges refuse to propagate (Block, the sanitizer hook: e.g. precflow cuts
// every edge that crosses into the audited conversion API). The engine
// then computes one fact per function bottom-up over the call-graph SCCs:
//
//	fact(f) = earliest of { Direct(f) } ∪ { Extern(f,e) } ∪
//	          { propagate(e) : e ∈ edges(f), fact(callee(e)) ≠ nil, ¬Block(e) }
//
// "Earliest" is by source position inside f, so the reported reason is the
// first one a reader of the function meets, and it is deterministic. Facts
// are monotone (nil → non-nil, then position can only move earlier), so
// the within-SCC fixpoint for recursion and mutual recursion terminates.
//
// A fact carries its provenance: the root site plus a Via pointer to the
// next function toward it, which Chain() unwinds into the human-readable
// call path shown in diagnostics.

import (
	"fmt"
	"go/token"
	"strings"
)

// Taint is one function's dataflow fact: the first reason the function has
// the property (performs an unaudited lowering, is nondeterministic,
// allocates, ...), or absent entirely (a nil *Taint).
type Taint struct {
	// What describes the root site ("time.Now()", "make").
	What string
	// Pos is the root site's position (in Via's package when Via != nil).
	Pos token.Pos
	// Via is the next function on the path to the root; nil when the root
	// site is in this function's own body.
	Via *Func
	// CallPos is the call/ref position inside this function that reaches
	// Via (== Pos when Via is nil).
	CallPos token.Pos
}

// FlowSpec describes one interprocedural property.
type FlowSpec struct {
	// Key names the computation in the program memo cache.
	Key string
	// Direct returns the function's own earliest bad site, or nil.
	Direct func(fn *Func) *Taint
	// Extern models a body-less callee; nil means "clean".
	Extern func(fn *Func, e ExternEdge) *Taint
	// Block reports edges that must not propagate (sanitizers). Nil
	// blocks nothing.
	Block func(fn *Func, e Edge) bool
	// CallsOnly restricts propagation to EdgeCall edges. Flow properties
	// about *values* (nondeterminism, precision) also ride EdgeRef edges —
	// handing out a tainted closure taints the holder — while properties
	// about *executing* (allocation) only follow real calls.
	CallsOnly bool
}

// Flow computes (or returns the memoized) facts for spec over the whole
// program.
func (p *Program) Flow(spec FlowSpec) map[*Func]*Taint {
	return p.Memo("flow/"+spec.Key, func() any {
		return p.computeFlow(spec)
	}).(map[*Func]*Taint)
}

func (p *Program) computeFlow(spec FlowSpec) map[*Func]*Taint {
	facts := make(map[*Func]*Taint, len(p.Funcs()))
	eval := func(fn *Func) *Taint {
		best := spec.Direct(fn)
		consider := func(t *Taint) {
			if t == nil {
				return
			}
			if best == nil || t.CallPos < best.CallPos {
				best = t
			}
		}
		for i := range fn.Extern {
			e := fn.Extern[i]
			if spec.CallsOnly && e.Kind != EdgeCall {
				continue
			}
			if spec.Extern == nil {
				continue
			}
			if t := spec.Extern(fn, e); t != nil {
				consider(&Taint{What: t.What, Pos: e.Pos, CallPos: e.Pos})
			}
		}
		for i := range fn.Edges {
			e := fn.Edges[i]
			if spec.CallsOnly && e.Kind != EdgeCall {
				continue
			}
			if spec.Block != nil && spec.Block(fn, e) {
				continue
			}
			if ct := facts[e.Callee]; ct != nil {
				consider(&Taint{What: ct.What, Pos: ct.Pos, Via: e.Callee, CallPos: e.Pos})
			}
		}
		return best
	}

	for _, scc := range p.SCCs() {
		// Iterate the component to a fixpoint: facts only strengthen
		// (nil → set, CallPos only decreases), so this terminates.
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				next := eval(fn)
				prev := facts[fn]
				if next == nil {
					continue
				}
				if prev == nil || next.CallPos < prev.CallPos {
					facts[fn] = next
					changed = true
				}
			}
		}
	}
	return facts
}

// Chain renders the call path from fn's fact down to its root site:
// "a → b → c: time.Now() at foo.go:12". The final position is rendered
// with a base filename so fixture output is path-independent.
func (p *Program) Chain(fn *Func, facts map[*Func]*Taint) string {
	t := facts[fn]
	if t == nil {
		return ""
	}
	var hops []string
	cur := t
	last := fn
	for cur != nil && cur.Via != nil {
		hops = append(hops, cur.Via.Name)
		last = cur.Via
		cur = facts[cur.Via]
		if len(hops) > 16 { // defensive bound; cycles have stable facts
			break
		}
	}
	root := "?"
	what := t.What
	if cur != nil {
		what = cur.What
		pos := last.Pkg.Fset.Position(cur.Pos)
		root = fmt.Sprintf("%s at %s:%d", what, basename(pos.Filename), pos.Line)
	} else {
		root = what
	}
	if len(hops) == 0 {
		return root
	}
	return strings.Join(hops, " → ") + ": " + root
}

func basename(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
