// Package hotalloc protects the allocation-free fast paths built in the
// performance PRs — the event/ready heaps, the TaskSpec freelist, the dense
// residency tables, the FP16 quantizer — from silent regression. A function
// opts in by carrying //geompc:hot in its doc comment; inside it the
// analyzer flags the expressions that heap-allocate (or may, once escape
// analysis gives up):
//
//   - slice and map composite literals, and &T{} pointer literals
//   - make and new
//   - function literals (closures capture and escape)
//   - append whose destination is not the slice being appended to — the
//     self-append `s = append(s, x)` is the amortized-reuse idiom and is
//     allowed, anything else copies or grows a fresh backing array
//
// The benchmarks in BENCH_kernels.json catch allocation regressions after
// the fact; hotalloc catches them in review, and keeps working when a
// benchmark's allocs/op happens to round to zero.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"geompc/internal/analysis"
)

// Analyzer is the hotalloc instance registered with the driver.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating expressions inside functions marked //geompc:hot",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, fd := range analysis.HotFuncs(f) {
			if fd.Body != nil {
				checkHotFunc(pass, fd)
			}
		}
	}
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// selfAppends maps append CallExprs already vetted as self-appends by
	// their enclosing assignment, so the expression walk skips them.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			markSelfAppends(pass.Info, n, selfAppend)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&%s{} allocates in //geompc:hot %s — reuse a freelist entry", litName(pass.Info, cl), name)
					return false // don't double-report the inner literal
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in //geompc:hot %s", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in //geompc:hot %s", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in //geompc:hot %s — closures capture and escape", name)
			return false
		case *ast.CallExpr:
			switch {
			case analysis.IsBuiltinCall(pass.Info, n, "make"):
				pass.Reportf(n.Pos(), "make allocates in //geompc:hot %s — preallocate in the cold setup path", name)
			case analysis.IsBuiltinCall(pass.Info, n, "new"):
				pass.Reportf(n.Pos(), "new allocates in //geompc:hot %s — reuse a freelist entry", name)
			case analysis.IsBuiltinCall(pass.Info, n, "append") && !selfAppend[n]:
				pass.Reportf(n.Pos(), "append to a different destination in //geompc:hot %s — only the amortized self-append s = append(s, x) is allocation-stable", name)
			}
		}
		return true
	})
}

// markSelfAppends records `x = append(x, ...)` (single assignment, plain =,
// destination textually identical to the appendee) as the allowed idiom.
func markSelfAppends(info *types.Info, as *ast.AssignStmt, selfAppend map[*ast.CallExpr]bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !analysis.IsBuiltinCall(info, call, "append") || len(call.Args) == 0 {
		return
	}
	if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
		selfAppend[call] = true
	}
}

func litName(info *types.Info, cl *ast.CompositeLit) string {
	if tv, ok := info.Types[cl]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "T"
}
